// Package stwave is a from-scratch Go reproduction of "Spatiotemporal
// Wavelet Compression for Visualization of Scientific Simulation Data"
// (Li, Sane, Orf, Mininni, Clyne, Childs — IEEE CLUSTER 2017).
//
// The implementation lives under internal/: the windowed spatiotemporal
// compressor (internal/core) on top of lifting-scheme wavelet transforms
// (internal/wavelet, internal/transform) and coefficient thresholding
// (internal/compress); the simulation substrates that generate evaluation
// data (internal/sim/...); the visualization analyses (internal/flow,
// internal/isosurface); the tiered-storage model and container format
// (internal/storage); the concurrent HTTP volume server (internal/server,
// cmd/stserve); and the experiment harness reproducing every figure and
// table of the paper (internal/experiments).
//
// See README.md for a guided tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results.
package stwave

package stwave

// One benchmark per table and figure of the paper, plus ablation benches
// for the design choices DESIGN.md calls out. Each experiment benchmark
// runs the corresponding internal/experiments runner at test scale and
// reports headline quality numbers via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the whole evaluation.

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"stwave/internal/core"
	"stwave/internal/experiments"
	"stwave/internal/grid"
	"stwave/internal/server"
	"stwave/internal/storage"
	"stwave/internal/transform"
	"stwave/internal/wavelet"
)

func benchScale() experiments.Scale { return experiments.TestScale() }

// BenchmarkFig2KernelWindow regenerates Figures 2a/2b (kernel and window
// size study on Ghost velocity-x).
func BenchmarkFig2KernelWindow(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig2(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		base := r.Row("3D", 32)
		sweet := r.Row("4D CDF 9/7 ws=20", 32)
		if base != nil && sweet != nil && sweet.NRMSE > 0 {
			b.ReportMetric(base.NRMSE/sweet.NRMSE, "3D/4D-err@32:1")
		}
	}
}

// BenchmarkFig2cTemporalResolution regenerates Figure 2c (temporal
// resolution study).
func BenchmarkFig2cTemporalResolution(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig2c(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		full := r.Row(core.Spatiotemporal4D, 1, 32)
		quarter := r.Row(core.Spatiotemporal4D, 4, 32)
		if full != nil && quarter != nil && full.NRMSE > 0 {
			b.ReportMetric(quarter.NRMSE/full.NRMSE, "res1/4-over-res1-err")
		}
	}
}

// BenchmarkFig3Datasets regenerates all six panels of Figure 3.
func BenchmarkFig3Datasets(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3(sc, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if row := r.Row("a", core.Spatiotemporal4D, 1, 32); row != nil {
			b.ReportMetric(row.NRMSE, "ghost-4D-NRMSE@32:1")
		}
	}
}

// BenchmarkTable1Performance regenerates Table I (I/O and compute cost).
func BenchmarkTable1Performance(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable1(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		if row := r.ProjectedRow("Raw"); row != nil {
			b.ReportMetric(row.TotalIO.Seconds(), "proj-raw-io-s")
		}
		if row := r.ProjectedRow("4D"); row != nil {
			b.ReportMetric(row.TotalIO.Seconds(), "proj-4D-io-s")
		}
	}
}

// BenchmarkTable2Pathlines regenerates Table II (pathline deviation).
func BenchmarkTable2Pathlines(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable2(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		r3 := r.Row(128, core.Spatial3D)
		r4 := r.Row(128, core.Spatiotemporal4D)
		if r3 != nil && r4 != nil {
			b.ReportMetric(r3.Errors[2], "3D-D150@128:1-pct")
			b.ReportMetric(r4.Errors[2], "4D-D150@128:1-pct")
		}
	}
}

// BenchmarkTable3Isosurface regenerates Table III (isosurface area error).
func BenchmarkTable3Isosurface(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable3(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		if row := r.Row("Cloud Mixing Ratio", 32); row != nil {
			b.ReportMetric(row.Error3D, "cloud-3D@32:1-pct")
			b.ReportMetric(row.Error4D, "cloud-4D@32:1-pct")
		}
	}
}

// --- Ablation and throughput benches -----------------------------------

func coherentBenchWindow(d grid.Dims, slices int) *grid.Window {
	rng := rand.New(rand.NewSource(42))
	w := grid.NewWindow(d)
	base := grid.NewField3D(d.Nx, d.Ny, d.Nz)
	for i := range base.Data {
		base.Data[i] = rng.NormFloat64()
	}
	// Smooth the base field so it compresses like simulation output.
	for pass := 0; pass < 2; pass++ {
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 1; x < d.Nx; x++ {
					i := base.Index(x, y, z)
					base.Data[i] = 0.5*base.Data[i] + 0.5*base.Data[i-1]
				}
			}
		}
	}
	for t := 0; t < slices; t++ {
		f := base.Clone()
		scale := 1 + 0.02*float64(t)
		for i := range f.Data {
			f.Data[i] *= scale
		}
		if err := w.Append(f, float64(t)); err != nil {
			panic(err)
		}
	}
	return w
}

// BenchmarkAblationJointVsPerSliceBudget compares the paper's joint
// whole-window coefficient budget against per-slice budgeting in 4D mode.
func BenchmarkAblationJointVsPerSliceBudget(b *testing.B) {
	w := coherentBenchWindow(grid.Dims{Nx: 24, Ny: 24, Nz: 24}, 20)
	for _, perSlice := range []bool{false, true} {
		name := "joint"
		if perSlice {
			name = "per-slice"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.PerSliceBudget = perSlice
			comp, err := core.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := comp.CompressWindow(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTemporalLevels sweeps the temporal transform depth.
func BenchmarkAblationTemporalLevels(b *testing.B) {
	w := coherentBenchWindow(grid.Dims{Nx: 20, Ny: 20, Nz: 20}, 20)
	maxLvl := wavelet.MaxLevels(wavelet.CDF97, 20)
	for lvl := 0; lvl <= maxLvl; lvl++ {
		b.Run(fmt.Sprintf("levels-%d", lvl), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.TemporalLevels = lvl
			comp, err := core.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := comp.CompressWindow(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWorkers measures parallel scaling of the 4D transform.
func BenchmarkAblationWorkers(b *testing.B) {
	w := coherentBenchWindow(grid.Dims{Nx: 32, Ny: 32, Nz: 32}, 20)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			spec := transform.Spec{
				SpatialKernel:  wavelet.CDF97,
				SpatialLevels:  -1,
				TemporalKernel: wavelet.CDF97,
				TemporalLevels: -1,
				Workers:        workers,
			}
			for i := 0; i < b.N; i++ {
				work := w.Clone()
				if err := transform.Forward4D(work, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompressorThroughput measures end-to-end samples/sec of the two
// modes at the sweet spot.
func BenchmarkCompressorThroughput(b *testing.B) {
	w := coherentBenchWindow(grid.Dims{Nx: 32, Ny: 32, Nz: 32}, 20)
	for _, mode := range []core.Mode{core.Spatial3D, core.Spatiotemporal4D} {
		b.Run(mode.String(), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Mode = mode
			comp, err := core.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(w.TotalSamples()) * 8)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := comp.CompressWindow(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecompress measures reconstruction cost.
func BenchmarkDecompress(b *testing.B) {
	w := coherentBenchWindow(grid.Dims{Nx: 32, Ny: 32, Nz: 32}, 20)
	comp, err := core.New(core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cw, err := comp.CompressWindow(w)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(w.TotalSamples()) * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decompress(cw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSlice measures the HTTP slice endpoint hot (window cache
// populated — the steady-state serving path) and cold (cache flushed every
// iteration, so each request pays a full ReadWindow + Decompress). The gap
// between the two is the cache's value; hot should be well over 10x
// faster.
func BenchmarkServeSlice(b *testing.B) {
	d := grid.Dims{Nx: 32, Ny: 32, Nz: 32}
	const slices, windowSize = 20, 10
	path := filepath.Join(b.TempDir(), "bench.stw")
	cont, err := storage.CreateContainer(path)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.WindowSize = windowSize
	writer, err := core.NewWriter(opts, d, func(w *core.CompressedWindow) error {
		_, err := cont.Append(w)
		return err
	})
	if err != nil {
		b.Fatal(err)
	}
	for i, s := range coherentBenchWindow(d, slices).Slices {
		if err := writer.WriteSlice(s, float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := writer.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := cont.Close(); err != nil {
		b.Fatal(err)
	}

	srv := server.New(server.DefaultConfig())
	if err := srv.Mount("bench", path); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	handler := srv.Handler()

	serve := func(t int) {
		req := httptest.NewRequest("GET", fmt.Sprintf("/v1/bench/slice?t=%d", t), nil)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}

	b.Run("hot", func(b *testing.B) {
		serve(3) // warm the cache
		b.SetBytes(int64(d.Len()) * 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serve(3)
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.SetBytes(int64(d.Len()) * 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.Cache().Flush()
			serve(3)
		}
	})
}

// BenchmarkCompareBaselines regenerates the rate-distortion comparison
// across compressor families (extension experiment).
func BenchmarkCompareBaselines(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunComparison(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rows := r.TechniqueRows("wavelet-4D+fl"); len(rows) > 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(last.Ratio, "4D+fl-real-ratio")
		}
	}
}

// BenchmarkP3EqualStorage regenerates the P3 equal-storage study.
func BenchmarkP3EqualStorage(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunP3(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) > 0 {
			row := r.Rows[len(r.Rows)-1]
			if row.Odd4D > 0 {
				b.ReportMetric(row.Odd3D/row.Odd4D, "heldout-3D/4D-err")
			}
		}
	}
}

// BenchmarkSeamProfile regenerates the window-seam diagnostic.
func BenchmarkSeamProfile(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSeamProfile(sc, 10, 32, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.EdgeToCenterRatio(), "edge/center-err")
	}
}

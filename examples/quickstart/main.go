// Quickstart: compress a time-varying scalar field with spatiotemporal (4D)
// wavelet compression and compare against the spatial-only (3D) baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/metrics"
	"stwave/internal/sim/synth"
)

func main() {
	// 1. Make some temporally coherent data: 20 slices of a synthetic
	// turbulence-like field on a 32^3 grid.
	field, err := synth.NewField(synth.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	window := field.ScalarWindow(32, 32, 32, 20, 0, 1.0)
	fmt.Printf("data: %d slices of %v (%d samples)\n",
		window.Len(), window.Dims, window.TotalSamples())

	// 2. Compress with the paper's sweet-spot configuration: 4D, CDF 9/7
	// spatial + temporal, window size 20 — here at 32:1.
	opts := core.DefaultOptions() // Mode=4D, CDF 9/7, WindowSize=20, 32:1
	comp, err := core.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	recon4D, compressed, err := comp.RoundTrip(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4D compressed: %d of %d coefficients kept, %d bytes encoded\n",
		compressed.RetainedCoefficients(), window.TotalSamples(),
		compressed.EncodedSizeBytes())

	// 3. Compress the same data with the conventional 3D baseline.
	opts3 := opts
	opts3.Mode = core.Spatial3D
	comp3, err := core.New(opts3)
	if err != nil {
		log.Fatal(err)
	}
	recon3D, _, err := comp3.RoundTrip(window)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare reconstruction errors.
	nrmse := func(recon *grid.Window) float64 {
		ac := metrics.NewAccumulator()
		for i := range window.Slices {
			if err := ac.Add(window.Slices[i].Data, recon.Slices[i].Data); err != nil {
				log.Fatal(err)
			}
		}
		return ac.NRMSE()
	}
	e4 := nrmse(recon4D)
	e3 := nrmse(recon3D)
	fmt.Printf("NRMSE at 32:1 — 3D: %.4e, 4D: %.4e (%.1fx better)\n", e3, e4, e3/e4)
	fmt.Println("The 4D advantage is the paper's P1: more accuracy per stored byte.")
}

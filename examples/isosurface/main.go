// Isosurface: reproduce the paper's Section VI-B analysis in miniature —
// extract an isosurface of the tornado's cloud mixing ratio from original,
// 3D-compressed, and 4D-compressed data and compare total surface areas.
//
//	go run ./examples/isosurface
package main

import (
	"fmt"
	"log"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/isosurface"
	"stwave/internal/sim/tornado"
)

func main() {
	model, err := tornado.NewModel(tornado.DefaultConfig(32, 32, 20))
	if err != nil {
		log.Fatal(err)
	}
	cfg := model.Config()

	// A window of 18 cloud-mixing-ratio slices (the paper's window size).
	const windowSize = 18
	d := grid.Dims{Nx: cfg.Nx, Ny: cfg.Ny, Nz: cfg.Nz}
	window := grid.NewWindow(d)
	for i := 0; i < windowSize; i++ {
		t := 8502 + float64(i)
		if err := window.Append(model.CloudMixingRatio(t), t); err != nil {
			log.Fatal(err)
		}
	}

	dx, dy, dz := model.Spacing()
	opt := isosurface.Options{SpacingX: dx, SpacingY: dy, SpacingZ: dz}
	const isovalue = 1.0 // g/kg: the visible cloud edge
	evalIdx := windowSize / 2

	baseMesh, err := isosurface.Extract(window.Slices[evalIdx], isovalue, opt)
	if err != nil {
		log.Fatal(err)
	}
	baseArea := baseMesh.SurfaceArea()
	fmt.Printf("baseline cloud isosurface: %d triangles, %.3g m^2\n",
		len(baseMesh.Triangles), baseArea)

	fmt.Printf("%-8s %10s %10s\n", "ratio", "3D error", "4D error")
	for _, ratio := range []float64{8, 16, 32, 64, 128} {
		var errs [2]float64
		for i, mode := range []core.Mode{core.Spatial3D, core.Spatiotemporal4D} {
			opts := core.DefaultOptions()
			opts.Mode = mode
			opts.WindowSize = windowSize
			opts.Ratio = ratio
			comp, err := core.New(opts)
			if err != nil {
				log.Fatal(err)
			}
			recon, _, err := comp.RoundTrip(window)
			if err != nil {
				log.Fatal(err)
			}
			mesh, err := isosurface.Extract(recon.Slices[evalIdx], isovalue, opt)
			if err != nil {
				log.Fatal(err)
			}
			errs[i] = isosurface.AreaError(baseArea, mesh.SurfaceArea())
		}
		fmt.Printf("%6g:1 %9.2f%% %9.2f%%\n", ratio, errs[0], errs[1])
	}
	fmt.Println("Error is (1 - SA/SA_baseline) x 100; closer to 0 preserves more surface detail.")
}

// Pathlines: reproduce the paper's Section VI-A analysis in miniature —
// advect particles through original, 3D-compressed, and 4D-compressed
// tornado winds and score each compressed version with the first-deviation
// metric.
//
//	go run ./examples/pathlines
package main

import (
	"fmt"
	"log"

	"stwave/internal/core"
	"stwave/internal/flow"
	"stwave/internal/grid"
	"stwave/internal/sim/tornado"
)

func main() {
	// Tornado wind field sampled at the collaborator cadence of 2 s.
	model, err := tornado.NewModel(tornado.DefaultConfig(28, 28, 18))
	if err != nil {
		log.Fatal(err)
	}
	cfg := model.Config()
	const slices = 30
	const t0 = 8502.0 // the paper's first time slice, in seconds

	d := grid.Dims{Nx: cfg.Nx, Ny: cfg.Ny, Nz: cfg.Nz}
	uW, vW, wW := grid.NewWindow(d), grid.NewWindow(d), grid.NewWindow(d)
	for i := 0; i < slices; i++ {
		t := t0 + 2*float64(i)
		u, v, w := model.Velocity(t)
		must(uW.Append(u, t))
		must(vW.Append(v, t))
		must(wW.Append(w, t))
	}

	dx, dy, dz := model.Spacing()
	dom := flow.Domain{
		Origin:  flow.Vec3{X: model.CellX(0), Y: model.CellY(0), Z: model.CellZ(0)},
		Spacing: flow.Vec3{X: dx, Y: dy, Z: dz},
	}
	mkSeries := func(u, v, w *grid.Window) *flow.VectorSeries {
		var sl []flow.VectorSlice
		for i := range u.Slices {
			sl = append(sl, flow.VectorSlice{U: u.Slices[i], V: v.Slices[i], W: w.Slices[i], Time: u.Times[i]})
		}
		vs, err := flow.NewVectorSeries(dom, sl)
		if err != nil {
			log.Fatal(err)
		}
		return vs
	}
	baseline := mkSeries(uW, vW, wW)

	// A rake of particles near the tornado's base.
	cx, cy := cfg.Lx/3, cfg.Ly/3
	seeds := flow.Rake(
		flow.Vec3{X: cx - 2*cfg.CoreRadius, Y: cy, Z: 0.03 * cfg.Lz},
		flow.Vec3{X: cx + 2*cfg.CoreRadius, Y: cy, Z: 0.03 * cfg.Lz},
		24)
	opt := flow.AdvectOptions{Dt: 0.05, Steps: int((2 * (slices - 1)) / 0.05)}
	basePaths, err := flow.AdvectAll(baseline, seeds, t0, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advected %d particles for %.0f s through the original winds\n",
		len(seeds), basePaths[0].Duration())

	// Compress each velocity component at 32:1 in both modes and re-advect.
	compressAll := func(mode core.Mode) *flow.VectorSeries {
		opts := core.DefaultOptions()
		opts.Mode = mode
		opts.WindowSize = 18 // the paper's Section VI window
		opts.Ratio = 32
		comp, err := core.New(opts)
		if err != nil {
			log.Fatal(err)
		}
		roundTrip := func(seq *grid.Window) *grid.Window {
			size := opts.WindowSize
			if mode == core.Spatial3D {
				size = 1
			}
			chunks, err := seq.Partition(size)
			if err != nil {
				log.Fatal(err)
			}
			out := grid.NewWindow(seq.Dims)
			for _, ch := range chunks {
				recon, _, err := comp.RoundTrip(ch)
				if err != nil {
					log.Fatal(err)
				}
				for i := range recon.Slices {
					must(out.Append(recon.Slices[i], recon.Times[i]))
				}
			}
			return out
		}
		return mkSeries(roundTrip(uW), roundTrip(vW), roundTrip(wW))
	}

	thresholds := []float64{10, 50, 150, 300, 500}
	errors := map[core.Mode][]float64{}
	for _, mode := range []core.Mode{core.Spatial3D, core.Spatiotemporal4D} {
		series := compressAll(mode)
		paths, err := flow.AdvectAll(series, seeds, t0, opt)
		if err != nil {
			log.Fatal(err)
		}
		for _, dThresh := range thresholds {
			e, err := flow.MeanDeviationError(basePaths, paths, dThresh)
			if err != nil {
				log.Fatal(err)
			}
			errors[mode] = append(errors[mode], e)
		}
	}
	fmt.Printf("%-8s %9s %9s\n", "D (m)", "3D error", "4D error")
	for i, dThresh := range thresholds {
		fmt.Printf("%-8g %8.1f%% %8.1f%%\n", dThresh,
			errors[core.Spatial3D][i], errors[core.Spatiotemporal4D][i])
	}
	fmt.Println("Lower is better: pathlines from 4D-compressed winds track the originals longer.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

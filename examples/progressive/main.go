// Progressive: two access patterns beyond the paper's core pipeline —
// quality-progressive decoding with the embedded bitplane coder (decode any
// prefix of the stream) and multiresolution spatial previews (decode a
// 1/8^L-size approximation), plus fast single-slice random access from a 4D
// window.
//
//	go run ./examples/progressive
package main

import (
	"fmt"
	"log"

	"stwave/internal/coder"
	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/metrics"
	"stwave/internal/sim/synth"
	"stwave/internal/transform"
	"stwave/internal/wavelet"
)

func main() {
	field, err := synth.NewField(synth.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	window := field.ScalarWindow(32, 32, 32, 18, 0, 1.0)
	orig := window.Clone()

	// --- Progressive quality: transform, then embedded-encode all
	// coefficients. Any prefix of the stream decodes to a valid field.
	spec := transform.Spec{
		SpatialKernel:  wavelet.CDF97,
		SpatialLevels:  -1,
		TemporalKernel: wavelet.CDF97,
		TemporalLevels: -1,
	}
	if err := transform.Forward4D(window, spec); err != nil {
		log.Fatal(err)
	}
	coeffs := make([]float64, 0, window.TotalSamples())
	for _, s := range window.Slices {
		coeffs = append(coeffs, s.Data...)
	}
	stream, err := coder.Encode(coeffs, 20)
	if err != nil {
		log.Fatal(err)
	}
	rawBytes := window.TotalSamples() * 8
	fmt.Printf("embedded stream: %d bytes for %d raw bytes\n", len(stream), rawBytes)
	fmt.Printf("%-14s %12s\n", "prefix", "NRMSE")
	for _, frac := range []int{5, 10, 25, 50, 100} {
		cut := len(stream) * frac / 100
		if cut < 16 {
			cut = 16
		}
		dec, err := coder.Decode(stream[:cut])
		if err != nil {
			log.Fatal(err)
		}
		recon := grid.NewWindow(window.Dims)
		off := 0
		for i := range window.Slices {
			g := grid.NewField3D(window.Dims.Nx, window.Dims.Ny, window.Dims.Nz)
			copy(g.Data, dec[off:off+len(g.Data)])
			off += len(g.Data)
			if err := recon.Append(g, float64(i)); err != nil {
				log.Fatal(err)
			}
		}
		if err := transform.Inverse4D(recon, spec); err != nil {
			log.Fatal(err)
		}
		ac := metrics.NewAccumulator()
		for i := range orig.Slices {
			if err := ac.Add(orig.Slices[i].Data, recon.Slices[i].Data); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%3d%% (%6d B) %12.4e\n", frac, cut, ac.NRMSE())
	}

	// --- Multiresolution preview: extract coarse approximations of one
	// slice without full-resolution reconstruction cost.
	fmt.Printf("\nmultiresolution previews of slice 0 (%v):\n", orig.Dims)
	for levels := 0; levels <= 2; levels++ {
		c, err := transform.CoarseApproximation(orig.Slices[0], wavelet.CDF97, levels, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  level %d: %v (%d samples, 1/%d of full)\n",
			levels, c.Dims, c.Dims.Len(), orig.Dims.Len()/c.Dims.Len())
	}

	// --- Random access: decode one slice from a compressed 4D window
	// without paying the other slices' spatial inverse.
	opts := core.DefaultOptions()
	opts.WindowSize = 18
	opts.Ratio = 32
	comp, err := core.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	cw, err := comp.CompressWindow(orig)
	if err != nil {
		log.Fatal(err)
	}
	slice9, err := core.DecompressSlice(cw, 9)
	if err != nil {
		log.Fatal(err)
	}
	nr, err := metrics.NRMSE(orig.Slices[9].Data, slice9.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrandom access: slice 9 of 18 decoded alone, NRMSE %.4e\n", nr)
	fmt.Println("(inverse temporal over the window + one spatial inverse — the other 17 are skipped)")
}

// Serving quickstart: generate a small tornado dataset, compress it into a
// container (the simgen + stcomp pipeline, in-process), mount it with the
// stserve engine, and fetch slices and previews over real HTTP — printing
// cold-cache vs hot-cache latencies so the window cache's effect is
// visible.
//
//	go run ./examples/serve
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"stwave/internal/core"
	"stwave/internal/server"
	"stwave/internal/sim/tornado"
	"stwave/internal/storage"
)

func main() {
	// 1. Generate and compress a tornado cloud-mixing-ratio series:
	// 24x24x16 cells, 12 slices, windows of 6, 16:1 — what
	// `simgen -sim tornado | stcomp compress` would produce.
	dir, err := os.MkdirTemp("", "stserve-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "tornado.stw")

	model, err := tornado.NewModel(tornado.DefaultConfig(24, 24, 16))
	if err != nil {
		log.Fatal(err)
	}
	cont, err := storage.CreateContainer(path)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.WindowSize = 6
	opts.Ratio = 16
	first := model.CloudMixingRatio(8502)
	writer, err := core.NewWriter(opts, first.Dims, func(w *core.CompressedWindow) error {
		_, err := cont.Append(w)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		t := 8502 + float64(i)
		if err := writer.WriteSlice(model.CloudMixingRatio(t), t); err != nil {
			log.Fatal(err)
		}
	}
	if err := writer.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := cont.Close(); err != nil {
		log.Fatal(err)
	}
	st := writer.Stats()
	fmt.Printf("compressed %d slices of %v into %d windows (%d bytes)\n",
		st.SlicesIn, first.Dims, st.WindowsOut, st.BytesEncoded)

	// 2. Mount it and serve over HTTP on a random local port.
	srv := server.New(server.DefaultConfig())
	if err := srv.Mount("tornado", path); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// 3. Fetch the same slice twice: the first request decompresses a whole
	// window (cold), the second is served from the window cache (hot).
	cold := fetch(base + "/v1/tornado/slice?t=7")
	hot := fetch(base + "/v1/tornado/slice?t=7")
	fmt.Printf("slice t=7   cold: %8s  (X-Cache: %s)\n", cold.took, cold.cache)
	fmt.Printf("slice t=7   hot:  %8s  (X-Cache: %s)  %.0fx faster\n",
		hot.took, hot.cache, float64(cold.took)/float64(hot.took))

	// Another slice of the same window is also a hit: the cache holds
	// windows, not slices.
	same := fetch(base + "/v1/tornado/slice?t=9")
	fmt.Printf("slice t=9   warm: %8s  (X-Cache: %s, same window)\n", same.took, same.cache)

	// 4. A multiresolution preview (1/8 the samples) and a rendered
	// quick-look, both from the cached window.
	prev := fetch(base + "/v1/tornado/preview?t=7&levels=1")
	fmt.Printf("preview L1: %8s  (%d bytes, dims %s)\n", prev.took, prev.bytes, prev.dims)
	img := fetch(base + "/v1/tornado/render?t=7&kind=mip&format=ppm")
	fmt.Printf("MIP render: %8s  (%d bytes of PPM)\n\n", img.took, img.bytes)

	// 5. The engine's own accounting.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var snap server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics: %d requests, %d decompressions, %d cache hits, %d bytes served\n",
		snap.Requests, snap.Decompressions, snap.CacheHits, snap.BytesServed)
	fmt.Printf("cache:   %d window(s), %d bytes of %d budget\n",
		snap.Cache.Windows, snap.Cache.UsedBytes, snap.Cache.BudgetBytes)
}

type result struct {
	took  time.Duration
	cache string
	dims  string
	bytes int
}

func fetch(url string) result {
	start := time.Now()
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //stlint:ignore uncheckederr demo client; ReadAll already surfaced any transfer error
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %d: %s", url, resp.StatusCode, body)
	}
	return result{
		took:  time.Since(start),
		cache: resp.Header.Get("X-Cache"),
		dims:  resp.Header.Get("X-STW-Dims"),
		bytes: len(body),
	}
}

// Burstbuffer: reproduce the paper's Figure 1 workflow — a simulation
// streams time slices through an SSD staging area, windows are compressed
// spatiotemporally, and compressed windows land in a container on
// "permanent storage", with the Table I cost accounting.
//
//	go run ./examples/burstbuffer
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/sim/ghost"
	"stwave/internal/storage"
)

func main() {
	// A small forced-turbulence run as the "simulation code".
	solver, err := ghost.NewSolver(ghost.DefaultConfig(16))
	if err != nil {
		log.Fatal(err)
	}
	solver.Run(50)

	dir, err := os.MkdirTemp("", "stwave-bb-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	model := storage.DefaultModel()
	buffer, err := storage.NewBurstBuffer(dir, model, d)
	if err != nil {
		log.Fatal(err)
	}

	containerPath := filepath.Join(dir, "ghost-enstrophy.stw")
	container, err := storage.CreateContainer(containerPath)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions() // 4D, CDF 9/7, window 20, 32:1
	opts.Ratio = 16
	writer, err := core.NewWriter(opts, d, func(cw *core.CompressedWindow) error {
		idx, err := container.Append(cw)
		if err != nil {
			return err
		}
		if _, err := model.RecordWrite(storage.Permanent, cw.EncodedSizeBytes()); err != nil {
			return err
		}
		fmt.Printf("  flushed window %d: %d slices -> %d bytes on permanent storage\n",
			idx, cw.NumSlices(), cw.EncodedSizeBytes())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The simulation loop: every few steps a slice goes through the buffer
	// tier (real files on disk, modeled timing) and into the stream writer.
	const slices = 40
	fmt.Printf("simulating %d output steps...\n", slices)
	for i := 0; i < slices; i++ {
		f := solver.Enstrophy()
		id, err := buffer.PutSlice(f)
		if err != nil {
			log.Fatal(err)
		}
		staged, err := buffer.GetSlice(id)
		if err != nil {
			log.Fatal(err)
		}
		if err := writer.WriteSlice(staged, solver.Time()); err != nil {
			log.Fatal(err)
		}
		if err := buffer.Drop(id); err != nil {
			log.Fatal(err)
		}
		solver.Run(2)
	}
	if err := writer.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := container.Close(); err != nil {
		log.Fatal(err)
	}

	st := writer.Stats()
	rawBytes := int64(st.SlicesIn) * int64(d.Len()) * 4
	fmt.Printf("\nstream: %d slices in, %d windows out\n", st.SlicesIn, st.WindowsOut)
	fmt.Printf("raw data: %d bytes; encoded: %d bytes (%.1f:1 effective)\n",
		rawBytes, st.BytesEncoded, float64(rawBytes)/float64(st.BytesEncoded))
	fmt.Printf("modeled I/O — buffer W+R: %.3fs + %.3fs, permanent write: %.3fs, total: %.3fs\n",
		model.WriteTime(storage.Buffer).Seconds(),
		model.ReadTime(storage.Buffer).Seconds(),
		model.WriteTime(storage.Permanent).Seconds(),
		model.TotalIO().Seconds())

	// Random access: decode just the second window from the container.
	reader, err := storage.OpenContainer(containerPath)
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()
	cw, err := reader.ReadWindow(1)
	if err != nil {
		log.Fatal(err)
	}
	win, err := core.Decompress(cw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random access: window 1 decodes to %d slices starting at t=%.2f\n",
		win.Len(), win.Times[0])
}

package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-5); got != runtime.NumCPU() {
		t.Errorf("Workers(-5) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

func TestSplitHonorsBudgetOnce(t *testing.T) {
	cases := []struct {
		budget, n            int
		wantOuter, wantInner int
	}{
		{1, 10, 1, 1},
		{4, 10, 4, 1},
		{8, 2, 2, 4},
		{7, 3, 3, 2},
		{16, 1, 1, 16},
		{3, 0, 1, 3},
	}
	for _, c := range cases {
		outer, inner := Split(c.budget, c.n)
		if outer != c.wantOuter || inner != c.wantInner {
			t.Errorf("Split(%d, %d) = (%d, %d), want (%d, %d)",
				c.budget, c.n, outer, inner, c.wantOuter, c.wantInner)
		}
		if outer*inner > Workers(c.budget) {
			t.Errorf("Split(%d, %d) oversubscribes: %d * %d > %d",
				c.budget, c.n, outer, inner, Workers(c.budget))
		}
	}
}

// TestForCoversRangeExactlyOnce checks every index is visited exactly once
// across worker counts, grains, and sizes, including n smaller than grain.
func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 100, 1000} {
		for _, workers := range []int{1, 2, 3, 8} {
			for _, grain := range []int{1, 16, 64, 1000} {
				visits := make([]int32, n)
				For(n, workers, grain, func(start, end int) {
					for i := start; i < end; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("n=%d workers=%d grain=%d: index %d visited %d times",
							n, workers, grain, i, v)
					}
				}
			}
		}
	}
}

// TestForSequentialWhenUnderGrain asserts tiny loops never leave the
// calling goroutine: fn must be invoked exactly once with the full range.
func TestForSequentialWhenUnderGrain(t *testing.T) {
	calls := 0
	For(63, 8, 64, func(start, end int) {
		calls++
		if start != 0 || end != 63 {
			t.Errorf("sequential call got [%d,%d), want [0,63)", start, end)
		}
	})
	if calls != 1 {
		t.Errorf("got %d calls, want 1", calls)
	}
}

// TestForHeavySmallN asserts grain 1 parallelizes even tiny loops: with
// n=4 items and 4 workers, 4 distinct tasks run.
func TestForHeavySmallN(t *testing.T) {
	var mu sync.Mutex
	spans := 0
	For(4, 4, 1, func(start, end int) {
		mu.Lock()
		spans++
		mu.Unlock()
		if end-start != 1 {
			t.Errorf("task span [%d,%d), want single item", start, end)
		}
	})
	if spans != 4 {
		t.Errorf("got %d tasks, want 4", spans)
	}
}

func TestForGrainBoundsTaskCount(t *testing.T) {
	// 100 items at grain 40 justify at most 3 tasks even with 8 workers.
	var mu sync.Mutex
	tasks := 0
	For(100, 8, 40, func(start, end int) {
		mu.Lock()
		tasks++
		mu.Unlock()
	})
	if tasks > 3 {
		t.Errorf("got %d tasks, want <= 3 for n=100 grain=40", tasks)
	}
}

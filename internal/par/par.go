// Package par provides the pipeline's shared data-parallel loop. Every
// stage of the compression hot path — per-slice 3D transforms, temporal
// tiles, threshold chunks, sparse codec chunks — distributes work through
// For, so the worker budget is expressed the same way everywhere and a
// caller that already split the budget can hand a stage workers == 1 to
// keep it strictly sequential (no goroutines spawned at all).
//
// The old transform-internal helper used a fixed "n < 64 stays
// sequential" cutoff, which mis-served both extremes: a loop over 10
// temporal tiles that each transform a megabyte stayed serial, while a
// loop over 64 two-element rows would happily spawn goroutines. For
// instead takes a grain — the minimum number of items worth one task —
// so the caller states per-item weight explicitly: heavy loops pass
// grain 1, trivial loops pass something like 64.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values < 1 mean "use all CPUs".
func Workers(requested int) int {
	if requested >= 1 {
		return requested
	}
	return runtime.NumCPU()
}

// Split divides a worker budget between an outer loop of n items and the
// stages each item runs internally: outer workers cooperate on the items
// and every item's stage receives inner workers. outer*inner never
// exceeds Workers(budget), so a nested For cannot oversubscribe — the
// budget is honored once, at the split.
func Split(budget, n int) (outer, inner int) {
	w := Workers(budget)
	if n < 1 {
		n = 1
	}
	outer = w
	if outer > n {
		outer = n
	}
	inner = w / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// For splits [0, n) into contiguous chunks and runs fn(start, end) on each
// from at most `workers` goroutines. grain is the minimum number of items
// that justify one task: the loop stays sequential (fn(0, n) on the calling
// goroutine) whenever workers <= 1 or n <= grain, and no task is created
// for fewer than grain items. grain < 1 is treated as 1.
func For(n, workers, grain int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers = Workers(workers)
	if maxTasks := (n + grain - 1) / grain; workers > maxTasks {
		workers = maxTasks
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := chunk; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	// The calling goroutine takes the first chunk instead of idling in Wait.
	fn(0, chunk)
	wg.Wait()
}

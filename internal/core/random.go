package core

import (
	"fmt"

	"stwave/internal/grid"
	"stwave/internal/num"
	"stwave/internal/transform"
)

// DecompressSlice reconstructs a single time slice from a compressed
// window. The paper's Section V-E observes that spatiotemporal compression
// loses cheap random access because the inverse temporal transform needs
// every slice's coefficients; what it does NOT need is the expensive
// per-slice 3D inverse of the other slices. DecompressSlice therefore runs
// the temporal inverse over the whole window but the spatial inverse only
// for the requested slice — for a window of T slices this saves (T-1)/T of
// the spatial inverse cost, which dominates reconstruction time.
func DecompressSlice(cw *CompressedWindow, slice int) (*grid.Field3D, error) {
	return decompressSliceOf[float64](cw, slice)
}

// DecompressSlice32 is DecompressSlice at native single precision: the
// temporal inverse over the window and the single spatial inverse both
// run at 4 bytes per sample — the server's cold-slice fast path for
// float32 windows.
func DecompressSlice32(cw *CompressedWindow, slice int) (*grid.Field3D32, error) {
	return decompressSliceOf[float32](cw, slice)
}

// decompressSliceOf is the precision-generic single-slice reconstruction
// behind DecompressSlice and DecompressSlice32.
func decompressSliceOf[F num.Float](cw *CompressedWindow, slice int) (*grid.Field3DOf[F], error) {
	if slice < 0 || slice >= cw.NumSlices() {
		return nil, fmt.Errorf("core: slice %d out of range [0,%d)", slice, cw.NumSlices())
	}
	if !cw.Dims.Valid() {
		return nil, fmt.Errorf("core: invalid dims %v", cw.Dims)
	}
	w := grid.NewWindowOf[F](cw.Dims)
	if cw.Progressive() {
		// Level-major windows decode through the group scatter; shed
		// groups contribute zero detail. The zero-filled fields double
		// as the scatter target. Shapes are validated before any
		// dims-derived allocation.
		if err := validateLevelBlocks(cw); err != nil {
			return nil, err
		}
		datas := make([][]F, cw.NumSlices())
		for i := range datas {
			f := grid.NewField3DOf[F](cw.Dims.Nx, cw.Dims.Ny, cw.Dims.Nz)
			datas[i] = f.Data
			t := float64(i)
			if cw.Times != nil && i < len(cw.Times) {
				t = cw.Times[i]
			}
			if err := w.Append(f, t); err != nil {
				return nil, err
			}
		}
		if err := scatterLevels(cw, datas, cw.Dims, 0, cw.SpatialLevels, 1); err != nil {
			return nil, err
		}
	} else {
		for i, b := range cw.Blocks {
			if b.Total() != cw.Dims.Len() {
				return nil, fmt.Errorf("core: block %d has %d coefficients, grid needs %d", i, b.Total(), cw.Dims.Len())
			}
			f := grid.NewField3DOf[F](cw.Dims.Nx, cw.Dims.Ny, cw.Dims.Nz)
			if err := decodeBlockIntoOf(b, f.Data, 1); err != nil {
				return nil, err
			}
			t := float64(i)
			if cw.Times != nil && i < len(cw.Times) {
				t = cw.Times[i]
			}
			if err := w.Append(f, t); err != nil {
				return nil, err
			}
		}
	}
	if err := transform.InverseTemporal(w, cw.Opts.TemporalKernel, cw.TemporalLevels, cw.Opts.Workers); err != nil {
		return nil, err
	}
	target := w.Slices[slice]
	if err := transform.Inverse3D(target, cw.Opts.SpatialKernel, cw.SpatialLevels, cw.Opts.Workers); err != nil {
		return nil, err
	}
	return target, nil
}

package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Journal record framing (container format v3).
//
// A crash mid-run must not destroy the windows already appended to a
// container, so every window is framed as a self-delimiting journal
// record: the file is a recoverable sequence of records at every byte
// boundary, with or without its footer index. The frame is deliberately
// tiny (20 bytes) and carries two checksums — one over the payload, one
// over the frame header itself — so a recovery scan can distinguish a
// torn record, a corrupt payload, and trailing non-record bytes (the
// footer index, or garbage from a torn write):
//
//	[0:4]   record magic "STWR"
//	[4:12]  payload length (uint64 LE)
//	[12:16] payload CRC32-IEEE (uint32 LE)
//	[16:20] header CRC32-IEEE of bytes [0:16] (uint32 LE)
var RecordMagic = [4]byte{'S', 'T', 'W', 'R'}

// RecordHeaderSize is the fixed on-disk size of a record frame header.
const RecordHeaderSize = 20

// ErrNotRecord reports that bytes handed to ParseRecordHeader are not a
// valid record frame: wrong magic, wrong header checksum, or too short.
// Recovery scans use it to find the end of the durable record sequence.
var ErrNotRecord = errors.New("core: not a record frame")

// RecordHeader describes one journal record's payload.
type RecordHeader struct {
	Length     int64  // payload bytes following the header
	PayloadCRC uint32 // CRC32-IEEE of the payload
}

// EncodeRecordHeader serializes a record frame header.
func EncodeRecordHeader(h RecordHeader) [RecordHeaderSize]byte {
	// A negative length would serialize as an enormous unsigned count and
	// still pass the header CRC (computed over the wrong bytes), so treat
	// it as a programming error at the source.
	if h.Length < 0 {
		panic(fmt.Sprintf("core: negative record payload length %d", h.Length))
	}
	var b [RecordHeaderSize]byte
	copy(b[0:4], RecordMagic[:])
	binary.LittleEndian.PutUint64(b[4:12], uint64(h.Length))
	binary.LittleEndian.PutUint32(b[12:16], h.PayloadCRC)
	binary.LittleEndian.PutUint32(b[16:20], crc32.ChecksumIEEE(b[0:16]))
	return b
}

// ParseRecordHeader decodes and validates a record frame header. It
// returns ErrNotRecord (possibly wrapped) when b does not begin with a
// well-formed frame, so scanners can treat "no more records" as a clean
// stop condition rather than corruption.
func ParseRecordHeader(b []byte) (RecordHeader, error) {
	if len(b) < RecordHeaderSize {
		return RecordHeader{}, fmt.Errorf("%w: %d bytes, need %d", ErrNotRecord, len(b), RecordHeaderSize)
	}
	if [4]byte(b[0:4]) != RecordMagic {
		return RecordHeader{}, fmt.Errorf("%w: bad magic %q", ErrNotRecord, b[0:4])
	}
	if got, want := crc32.ChecksumIEEE(b[0:16]), binary.LittleEndian.Uint32(b[16:20]); got != want {
		return RecordHeader{}, fmt.Errorf("%w: header checksum mismatch", ErrNotRecord)
	}
	length := binary.LittleEndian.Uint64(b[4:12])
	if length > 1<<62 {
		return RecordHeader{}, fmt.Errorf("%w: implausible payload length %d", ErrNotRecord, length)
	}
	return RecordHeader{
		Length:     int64(length),
		PayloadCRC: binary.LittleEndian.Uint32(b[12:16]),
	}, nil
}

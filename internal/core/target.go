package core

import (
	"fmt"
	"math"

	"stwave/internal/grid"
	"stwave/internal/metrics"
)

// CompressToTarget finds the most aggressive compression ratio whose
// reconstruction NRMSE stays at or below targetNRMSE, by bisection over the
// ratio between minRatio and maxRatio. It returns the compressed window at
// the chosen ratio along with the achieved error.
//
// This inverts the paper's workflow — scientists often know the error they
// can tolerate, not the ratio that produces it. The search costs
// O(log(maxRatio/minRatio)) compress+decompress cycles.
func CompressToTarget(opts Options, w *grid.Window, targetNRMSE, minRatio, maxRatio float64) (*CompressedWindow, float64, error) {
	if targetNRMSE <= 0 || math.IsNaN(targetNRMSE) {
		return nil, 0, fmt.Errorf("core: target NRMSE must be positive, got %g", targetNRMSE)
	}
	if minRatio < 1 || maxRatio < minRatio {
		return nil, 0, fmt.Errorf("core: invalid ratio range [%g, %g]", minRatio, maxRatio)
	}

	tryRatio := func(ratio float64) (*CompressedWindow, float64, error) {
		o := opts
		o.Ratio = ratio
		comp, err := New(o)
		if err != nil {
			return nil, 0, err
		}
		recon, cw, err := comp.RoundTrip(w)
		if err != nil {
			return nil, 0, err
		}
		ac := metrics.NewAccumulator()
		for i := range w.Slices {
			if err := ac.Add(w.Slices[i].Data, recon.Slices[i].Data); err != nil {
				return nil, 0, err
			}
		}
		return cw, ac.NRMSE(), nil
	}

	// If even the loosest ratio misses the target, report it (callers may
	// accept it or store raw).
	bestCW, bestErr, err := tryRatio(minRatio)
	if err != nil {
		return nil, 0, err
	}
	if bestErr > targetNRMSE {
		return bestCW, bestErr, fmt.Errorf("core: NRMSE %.4g at minimum ratio %g exceeds target %.4g", bestErr, minRatio, targetNRMSE)
	}

	// Bisect in log-ratio space: error grows monotonically with ratio for
	// wavelet thresholding in practice.
	lo, hi := math.Log2(minRatio), math.Log2(maxRatio)
	for iter := 0; iter < 12 && hi-lo > 0.05; iter++ {
		mid := (lo + hi) / 2
		cw, e, err := tryRatio(math.Exp2(mid))
		if err != nil {
			return nil, 0, err
		}
		if e <= targetNRMSE {
			bestCW, bestErr = cw, e
			lo = mid
		} else {
			hi = mid
		}
	}
	return bestCW, bestErr, nil
}

package core

import (
	"fmt"
	"testing"

	"stwave/internal/grid"
)

func TestAsyncWriterMatchesSyncWriter(t *testing.T) {
	d := grid.Dims{Nx: 10, Ny: 10, Nz: 10}
	src := coherentWindow(d, 27, 0.3)
	opts := DefaultOptions()
	opts.WindowSize = 10
	opts.Ratio = 16

	runSync := func() []*CompressedWindow {
		var out []*CompressedWindow
		wr, err := NewWriter(opts, d, func(cw *CompressedWindow) error {
			out = append(out, cw)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range src.Slices {
			if err := wr.WriteSlice(s, src.Times[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	runAsync := func(workers int) []*CompressedWindow {
		var out []*CompressedWindow
		wr, err := NewAsyncWriter(opts, d, workers, func(cw *CompressedWindow) error {
			out = append(out, cw)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range src.Slices {
			if err := wr.WriteSlice(s, src.Times[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		if wr.SlicesIn() != 27 {
			t.Errorf("SlicesIn = %d", wr.SlicesIn())
		}
		return out
	}

	want := runSync()
	for _, workers := range []int{1, 4} {
		got := runAsync(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d windows, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].NumSlices() != want[i].NumSlices() {
				t.Fatalf("workers=%d window %d: %d slices vs %d", workers, i, got[i].NumSlices(), want[i].NumSlices())
			}
			// In-order delivery: times must be increasing across windows.
			if got[i].Times[0] != want[i].Times[0] {
				t.Fatalf("workers=%d window %d starts at t=%g, want %g (out of order?)",
					workers, i, got[i].Times[0], want[i].Times[0])
			}
			// Deterministic compression: identical retained sets.
			if got[i].RetainedCoefficients() != want[i].RetainedCoefficients() {
				t.Fatalf("workers=%d window %d: retained %d vs %d",
					workers, i, got[i].RetainedCoefficients(), want[i].RetainedCoefficients())
			}
		}
	}
}

func TestAsyncWriterSinkErrorPropagates(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	src := coherentWindow(d, 10, 0)
	opts := DefaultOptions()
	opts.WindowSize = 5
	wr, err := NewAsyncWriter(opts, d, 2, func(cw *CompressedWindow) error {
		return fmt.Errorf("sink exploded")
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range src.Slices {
		if err := wr.WriteSlice(s, src.Times[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Flush(); err == nil {
		t.Error("sink error not propagated through Flush")
	}
}

func TestAsyncWriterValidation(t *testing.T) {
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	sink := func(*CompressedWindow) error { return nil }
	if _, err := NewAsyncWriter(DefaultOptions(), d, 0, sink); err == nil {
		t.Error("expected error for zero workers")
	}
	if _, err := NewAsyncWriter(DefaultOptions(), d, 2, nil); err == nil {
		t.Error("expected error for nil sink")
	}
	if _, err := NewAsyncWriter(DefaultOptions(), grid.Dims{}, 2, sink); err == nil {
		t.Error("expected error for invalid dims")
	}
	wr, err := NewAsyncWriter(DefaultOptions(), d, 2, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.WriteSlice(grid.NewField3D(5, 4, 4), 0); err == nil {
		t.Error("expected error for mismatched dims")
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncWriter3DMode(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	src := coherentWindow(d, 6, 0)
	opts := DefaultOptions()
	opts.Mode = Spatial3D
	count := 0
	wr, err := NewAsyncWriter(opts, d, 3, func(cw *CompressedWindow) error {
		if cw.NumSlices() != 1 {
			t.Errorf("3D window has %d slices", cw.NumSlices())
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range src.Slices {
		if err := wr.WriteSlice(s, src.Times[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Errorf("emitted %d windows for 6 slices in 3D mode", count)
	}
}

package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"stwave/internal/grid"
)

func TestAsyncWriterMatchesSyncWriter(t *testing.T) {
	d := grid.Dims{Nx: 10, Ny: 10, Nz: 10}
	src := coherentWindow(d, 27, 0.3)
	opts := DefaultOptions()
	opts.WindowSize = 10
	opts.Ratio = 16

	runSync := func() []*CompressedWindow {
		var out []*CompressedWindow
		wr, err := NewWriter(opts, d, func(cw *CompressedWindow) error {
			out = append(out, cw)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range src.Slices {
			if err := wr.WriteSlice(s, src.Times[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	runAsync := func(workers int) []*CompressedWindow {
		var out []*CompressedWindow
		wr, err := NewAsyncWriter(opts, d, workers, func(cw *CompressedWindow) error {
			out = append(out, cw)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range src.Slices {
			if err := wr.WriteSlice(s, src.Times[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		if wr.SlicesIn() != 27 {
			t.Errorf("SlicesIn = %d", wr.SlicesIn())
		}
		return out
	}

	want := runSync()
	for _, workers := range []int{1, 4} {
		got := runAsync(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d windows, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].NumSlices() != want[i].NumSlices() {
				t.Fatalf("workers=%d window %d: %d slices vs %d", workers, i, got[i].NumSlices(), want[i].NumSlices())
			}
			// In-order delivery: times must be increasing across windows.
			if got[i].Times[0] != want[i].Times[0] {
				t.Fatalf("workers=%d window %d starts at t=%g, want %g (out of order?)",
					workers, i, got[i].Times[0], want[i].Times[0])
			}
			// Deterministic compression: identical retained sets.
			if got[i].RetainedCoefficients() != want[i].RetainedCoefficients() {
				t.Fatalf("workers=%d window %d: retained %d vs %d",
					workers, i, got[i].RetainedCoefficients(), want[i].RetainedCoefficients())
			}
		}
	}
}

func TestAsyncWriterSinkErrorPropagates(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	src := coherentWindow(d, 10, 0)
	opts := DefaultOptions()
	opts.WindowSize = 5
	wr, err := NewAsyncWriter(opts, d, 2, func(cw *CompressedWindow) error {
		return fmt.Errorf("sink exploded")
	})
	if err != nil {
		t.Fatal(err)
	}
	var early error
	for i, s := range src.Slices {
		if err := wr.WriteSlice(s, src.Times[i]); err != nil {
			// Fail-fast propagation: once the sink has failed, WriteSlice
			// may surface the sticky error before Flush.
			early = err
			break
		}
	}
	if err := wr.Flush(); err == nil {
		if early == nil {
			t.Error("sink error not propagated through WriteSlice or Flush")
		}
	}
	// Close after Flush is safe (idempotent drain) and reports the same
	// sticky error.
	if err := wr.Close(); err == nil {
		t.Error("Close after sink error returned nil")
	}
}

func TestAsyncWriterValidation(t *testing.T) {
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	sink := func(*CompressedWindow) error { return nil }
	if _, err := NewAsyncWriter(DefaultOptions(), d, 0, sink); err == nil {
		t.Error("expected error for zero workers")
	}
	if _, err := NewAsyncWriter(DefaultOptions(), d, 2, nil); err == nil {
		t.Error("expected error for nil sink")
	}
	if _, err := NewAsyncWriter(DefaultOptions(), grid.Dims{}, 2, sink); err == nil {
		t.Error("expected error for invalid dims")
	}
	wr, err := NewAsyncWriter(DefaultOptions(), d, 2, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.WriteSlice(grid.NewField3D(5, 4, 4), 0); err == nil {
		t.Error("expected error for mismatched dims")
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
}

// leakCheck snapshots the goroutine count and fails the test if, after a
// grace period for exiting goroutines to unwind, the count stays above the
// baseline — the regression guard for Pipeline's drain-on-error contract.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			runtime.GC()
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestPipelineSinkErrorDrains pins the hardened shutdown contract: after
// the sink fails, (a) the sink is never invoked again, (b) Submit keeps
// succeeding or fails fast but never deadlocks even with the job queue
// saturated, and (c) Close drains every worker without leaking goroutines.
func TestPipelineSinkErrorDrains(t *testing.T) {
	defer leakCheck(t)()
	var sinkCalls atomic.Int64
	boom := fmt.Errorf("sink exploded")
	p, err := NewPipeline(2, func(id int, cw *CompressedWindow) error {
		sinkCalls.Add(1)
		return boom
	})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the queue well past its depth; Submit must never block
	// forever even though the sink died on delivery 0.
	for i := 0; i < 64; i++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			p.Submit(func() (*CompressedWindow, error) { //stlint:ignore uncheckederr sticky error checked via Close below
				return &CompressedWindow{}, nil
			})
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("Submit deadlocked on a full queue after sink error")
		}
	}
	if err := p.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want sink error", err)
	}
	if got := sinkCalls.Load(); got != 1 {
		t.Fatalf("sink called %d times after first error, want exactly 1", got)
	}
	// Close is idempotent and keeps reporting the sticky error.
	if err := p.Close(); !errors.Is(err, boom) {
		t.Fatalf("second Close = %v, want sink error", err)
	}
}

// TestPipelineJobErrorDrains: same contract when a worker job (not the
// sink) fails — later jobs are skipped, earlier completed jobs that sort
// after the failure never reach the sink.
func TestPipelineJobErrorDrains(t *testing.T) {
	defer leakCheck(t)()
	boom := fmt.Errorf("job exploded")
	var delivered atomic.Int64
	p, err := NewPipeline(3, func(id int, cw *CompressedWindow) error {
		delivered.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		i := i
		_, serr := p.Submit(func() (*CompressedWindow, error) {
			if i == 0 {
				return nil, boom
			}
			return &CompressedWindow{}, nil
		})
		if serr != nil {
			break // fail-fast after the sticky error is legal
		}
	}
	if err := p.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want job error", err)
	}
	if got := delivered.Load(); got != 0 {
		t.Fatalf("sink received %d windows past a hole at id 0, want 0", got)
	}
}

// TestPipelineOrdered: out-of-order completion must still deliver in
// submission order.
func TestPipelineOrdered(t *testing.T) {
	defer leakCheck(t)()
	var got []int
	p, err := NewPipeline(4, func(id int, cw *CompressedWindow) error {
		got = append(got, id)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		i := i
		if _, err := p.Submit(func() (*CompressedWindow, error) {
			// Earlier jobs sleep longer so completions arrive reversed.
			time.Sleep(time.Duration(20-i) * time.Millisecond)
			return &CompressedWindow{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("delivery order %v not sequential", got)
		}
	}
}

// TestAsyncWriterCloseNoLeak: the abort path (Close without Flush) drops
// the partial window and leaks nothing.
func TestAsyncWriterCloseNoLeak(t *testing.T) {
	defer leakCheck(t)()
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	src := coherentWindow(d, 7, 0)
	opts := DefaultOptions()
	opts.WindowSize = 5
	count := 0
	wr, err := NewAsyncWriter(opts, d, 2, func(cw *CompressedWindow) error {
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range src.Slices {
		if err := wr.WriteSlice(s, src.Times[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("delivered %d windows, want 1 full window (partial dropped on abort)", count)
	}
}

func TestAsyncWriter3DMode(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	src := coherentWindow(d, 6, 0)
	opts := DefaultOptions()
	opts.Mode = Spatial3D
	count := 0
	wr, err := NewAsyncWriter(opts, d, 3, func(cw *CompressedWindow) error {
		if cw.NumSlices() != 1 {
			t.Errorf("3D window has %d slices", cw.NumSlices())
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range src.Slices {
		if err := wr.WriteSlice(s, src.Times[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Errorf("emitted %d windows for 6 slices in 3D mode", count)
	}
}

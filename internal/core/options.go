// Package core implements the paper's primary contribution: windowed
// spatiotemporal (4D) wavelet compression of time-varying scalar fields,
// alongside the conventional per-slice spatial (3D) baseline it is compared
// against.
//
// The pipeline follows Section IV-A / Figure 1 of the paper:
//
//  1. time slices are accumulated into a window of fixed size T
//  2. each slice undergoes a 3D non-standard wavelet decomposition
//  3. (4D mode only) a 1D wavelet transform is applied along time at every
//     grid point of the window
//  4. coefficients are thresholded to the target n:1 ratio — per slice in
//     3D mode, over the whole window in 4D mode — and sparsely encoded
//
// Decompression reverses the steps; note that 4D mode cannot reconstruct a
// single slice without decoding its whole window (the random-access cost
// the paper discusses in Section V-E).
package core

import (
	"fmt"

	"stwave/internal/codec"
	"stwave/internal/grid"
	"stwave/internal/transform"
	"stwave/internal/wavelet"
)

// Mode selects spatial-only or spatiotemporal compression.
type Mode int

const (
	// Spatial3D compresses each time slice independently (the baseline).
	Spatial3D Mode = iota
	// Spatiotemporal4D adds the temporal transform and thresholds the
	// whole window jointly (the paper's contribution).
	Spatiotemporal4D
)

// String returns "3D" or "4D", the labels the paper's tables use.
func (m Mode) String() string {
	switch m {
	case Spatial3D:
		return "3D"
	case Spatiotemporal4D:
		return "4D"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Precision selects the sample precision the pipeline runs at end to end:
// transform, threshold, encode, and decode all move samples of this width.
// Float64 is the reference oracle; Float32 halves the bytes on every
// memory-bound stage at the cost of float32 rounding in the transform.
type Precision int

const (
	// Float64 is the double-precision reference pipeline (the default).
	Float64 Precision = iota
	// Float32 is the single-precision fast path. Coefficient formats are
	// unchanged (they always stored float32 values), so only the window
	// header records which pipeline produced a stream.
	Float32
)

// String returns the CLI-facing name ("f64" / "f32").
func (p Precision) String() string {
	switch p {
	case Float64:
		return "f64"
	case Float32:
		return "f32"
	}
	return fmt.Sprintf("Precision(%d)", int(p))
}

// Valid reports whether p names a supported precision.
func (p Precision) Valid() bool { return p == Float64 || p == Float32 }

// SampleBytes returns the width of one sample at this precision.
func (p Precision) SampleBytes() int {
	if p == Float32 {
		return 4
	}
	return 8
}

// ParsePrecision resolves a CLI name ("f64", "f32"; "float64"/"float32"
// accepted as aliases). The empty string means Float64.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64", "float64":
		return Float64, nil
	case "f32", "float32":
		return Float32, nil
	}
	return 0, fmt.Errorf("core: unknown precision %q (want f64 or f32)", s)
}

// Options configures a Compressor.
type Options struct {
	// Mode selects 3D (per-slice) or 4D (windowed spatiotemporal)
	// compression.
	Mode Mode
	// SpatialKernel is the wavelet used by the per-slice 3D step. The
	// paper uses CDF 9/7 throughout.
	SpatialKernel wavelet.Kernel
	// TemporalKernel is the wavelet used along the time axis in 4D mode.
	TemporalKernel wavelet.Kernel
	// WindowSize is the number of time slices per compression window in 4D
	// mode (the paper studies 10, 20, 40 and uses 18 in Section VI).
	// Ignored in 3D mode.
	WindowSize int
	// Ratio is the target compression ratio n in n:1 (8 means keep 1/8 of
	// the coefficients). Must be >= 1.
	Ratio float64
	// SpatialLevels bounds the 3D transform depth; -1 means the Equation 2
	// maximum for the grid.
	SpatialLevels int
	// TemporalLevels bounds the temporal transform depth; -1 means the
	// Equation 2 maximum for the window size.
	TemporalLevels int
	// Workers bounds parallelism; <= 0 uses all CPUs.
	Workers int
	// PerSliceBudget, when true in 4D mode, thresholds each slice's
	// coefficients separately instead of ranking the whole window jointly.
	// This is an ablation knob: the paper's 4D method uses a joint budget.
	PerSliceBudget bool
	// Codec selects the coefficient backend that encodes thresholded
	// coefficients and serializes them (recorded per window, so readers
	// resolve it from the stream). Nil means codec.Default() (sparse).
	Codec codec.Codec
	// Progressive stores windows in the level-major (v4) layout: the
	// approximation cube and each detail shell become independently
	// addressable byte ranges, so readers can fetch and decode a coarse
	// reconstruction from a byte prefix and refine incrementally (see
	// DecompressLevels / Refiner). Costs a level-offset table plus one
	// codec block header per (level, slice) pair; legacy readers reject
	// progressive windows typed rather than misparsing them.
	Progressive bool
	// Precision selects the pipeline's sample width (Float64 unless set).
	// It declares which entry points a configuration is meant for —
	// CompressWindow at Float64, CompressWindow32 at Float32 — and is what
	// the streaming writers and CLIs switch on. The error-bounded mode
	// (MaxErr) is defined on the float64 oracle only.
	Precision Precision
	// MaxErr, when > 0, replaces the Ratio budget with an error-bounded
	// mode: coefficients are thresholded adaptively per band and the
	// bound is verified on the exact encoded stream (inverse transform
	// of the codec roundtrip), tightening until the maximum absolute
	// reconstruction error is <= MaxErr everywhere. Ratio is ignored.
	MaxErr float64
	// ROI optionally designates a region of interest that must meet a
	// tighter error bound than the MaxErr background. Requires MaxErr
	// mode.
	ROI *ROIBounds
}

// ROIBounds is a half-open box [X0,X1)x[Y0,Y1)x[Z0,Z1) in grid
// coordinates with its own error bound — the feature-preservation knob
// of the error-bounded mode: background coefficients are thresholded
// against Options.MaxErr, coefficients whose spatial support touches the
// box against the tighter MaxErr here.
type ROIBounds struct {
	X0, Y0, Z0 int
	X1, Y1, Z1 int
	MaxErr     float64
}

// Valid reports whether the box is non-empty with non-negative origin.
func (r ROIBounds) Valid() bool {
	return r.X0 >= 0 && r.Y0 >= 0 && r.Z0 >= 0 &&
		r.X1 > r.X0 && r.Y1 > r.Y0 && r.Z1 > r.Z0
}

// Contains reports whether grid point (x, y, z) lies in the box.
func (r ROIBounds) Contains(x, y, z int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1 && z >= r.Z0 && z < r.Z1
}

// DefaultOptions returns the paper's "sweet spot" configuration from
// Section V-B1: 4D compression, CDF 9/7 both spatially and temporally,
// window size 20, ratio 32:1.
func DefaultOptions() Options {
	return Options{
		Mode:           Spatiotemporal4D,
		SpatialKernel:  wavelet.CDF97,
		TemporalKernel: wavelet.CDF97,
		WindowSize:     20,
		Ratio:          32,
		SpatialLevels:  -1,
		TemporalLevels: -1,
	}
}

// Validate reports the first configuration problem found.
func (o Options) Validate() error {
	if o.Mode != Spatial3D && o.Mode != Spatiotemporal4D {
		return fmt.Errorf("core: invalid mode %d", int(o.Mode))
	}
	if !o.SpatialKernel.Valid() {
		return fmt.Errorf("core: invalid spatial kernel %d", int(o.SpatialKernel))
	}
	if o.Mode == Spatiotemporal4D {
		if !o.TemporalKernel.Valid() {
			return fmt.Errorf("core: invalid temporal kernel %d", int(o.TemporalKernel))
		}
		if o.WindowSize < 2 {
			return fmt.Errorf("core: 4D mode requires window size >= 2, got %d", o.WindowSize)
		}
	}
	if o.Ratio < 1 {
		return fmt.Errorf("core: ratio must be >= 1, got %g", o.Ratio)
	}
	if o.SpatialLevels < -1 {
		return fmt.Errorf("core: invalid spatial levels %d", o.SpatialLevels)
	}
	if o.TemporalLevels < -1 {
		return fmt.Errorf("core: invalid temporal levels %d", o.TemporalLevels)
	}
	if o.MaxErr < 0 {
		return fmt.Errorf("core: negative max error bound %g", o.MaxErr)
	}
	if !o.Precision.Valid() {
		return fmt.Errorf("core: invalid precision %d", int(o.Precision))
	}
	if o.Precision == Float32 && o.MaxErr > 0 {
		return fmt.Errorf("core: error-bounded mode (MaxErr) requires the float64 pipeline; drop MaxErr or use f64 precision")
	}
	if o.ROI != nil {
		if o.MaxErr <= 0 {
			return fmt.Errorf("core: ROI bounds require error-bounded mode (MaxErr > 0)")
		}
		if !o.ROI.Valid() {
			return fmt.Errorf("core: invalid ROI box [%d,%d)x[%d,%d)x[%d,%d)",
				o.ROI.X0, o.ROI.X1, o.ROI.Y0, o.ROI.Y1, o.ROI.Z0, o.ROI.Z1)
		}
		if o.ROI.MaxErr <= 0 || o.ROI.MaxErr > o.MaxErr {
			return fmt.Errorf("core: ROI max error %g must be in (0, %g] (no looser than background)",
				o.ROI.MaxErr, o.MaxErr)
		}
	}
	return nil
}

// codec resolves the configured coefficient backend, defaulting to sparse.
func (o Options) codec() codec.Codec {
	if o.Codec != nil {
		return o.Codec
	}
	return codec.Default()
}

// spec builds the transform configuration for a concrete window length.
// Temporal levels are bounded by the actual window length so short final
// windows still transform correctly.
func (o Options) spec(d grid.Dims, windowLen int) transform.Spec {
	s := transform.Spec{
		SpatialKernel:  o.SpatialKernel,
		SpatialLevels:  o.SpatialLevels,
		TemporalKernel: o.TemporalKernel,
		TemporalLevels: 0,
		Workers:        o.Workers,
	}
	if s.SpatialLevels < 0 {
		s.SpatialLevels = transform.Levels3D(o.SpatialKernel, d)
	}
	if o.Mode == Spatiotemporal4D {
		max := transform.LevelsTemporal(o.TemporalKernel, windowLen)
		if o.TemporalLevels < 0 || o.TemporalLevels > max {
			s.TemporalLevels = max
		} else {
			s.TemporalLevels = o.TemporalLevels
		}
	}
	return s
}

package core

import (
	"context"
	"fmt"

	"stwave/internal/grid"
	"stwave/internal/num"
)

// Sink receives compressed windows as the stream writer flushes them —
// typically a storage tier, a file, or a test collector.
type Sink func(*CompressedWindow) error

// Writer accumulates time slices as a simulation emits them and compresses
// a window whenever WindowSize slices have been buffered — the Figure 1
// workflow. In 3D mode every slice is compressed individually the moment it
// arrives (no buffering).
//
// Writer is not safe for concurrent use; simulations emit slices in order.
type Writer = WriterOf[float64]

// Writer32 is the single-precision streaming writer: float32 slices are
// buffered and compressed without ever widening to float64, so a float32
// simulation source stays at 4 bytes per sample from fill to durable
// bytes.
type Writer32 = WriterOf[float32]

// WriterOf is the precision-generic streaming writer behind Writer and
// Writer32.
type WriterOf[F num.Float] struct {
	comp    *Compressor
	sink    Sink
	dims    grid.Dims
	pending *grid.WindowOf[F]
	ctx     context.Context

	// Stats accumulated across the stream.
	slicesIn       int
	windowsOut     int
	bytesEncoded   int64
	bytesIdeal     int64
	peakBufferSize int64
}

// NewWriter creates a streaming writer feeding compressed windows to sink.
func NewWriter(opts Options, dims grid.Dims, sink Sink) (*Writer, error) {
	return newWriterOf[float64](opts, dims, sink)
}

// NewWriter32 creates a single-precision streaming writer. Options with
// MaxErr set are rejected (the error-bounded mode runs on the float64
// oracle).
func NewWriter32(opts Options, dims grid.Dims, sink Sink) (*Writer32, error) {
	return NewWriterOf[float32](opts, dims, sink)
}

// NewWriterOf creates a streaming writer at either sample precision — the
// generic entry behind NewWriter and NewWriter32 for callers that are
// themselves generic over the precision.
func NewWriterOf[F num.Float](opts Options, dims grid.Dims, sink Sink) (*WriterOf[F], error) {
	if num.Is32[F]() && opts.MaxErr > 0 {
		return nil, fmt.Errorf("core: error-bounded mode (MaxErr) requires the float64 pipeline")
	}
	return newWriterOf[F](opts, dims, sink)
}

func newWriterOf[F num.Float](opts Options, dims grid.Dims, sink Sink) (*WriterOf[F], error) {
	comp, err := New(opts)
	if err != nil {
		return nil, err
	}
	if !dims.Valid() {
		return nil, fmt.Errorf("core: invalid dims %v", dims)
	}
	if sink == nil {
		return nil, fmt.Errorf("core: nil sink")
	}
	return &WriterOf[F]{comp: comp, sink: sink, dims: dims, ctx: context.Background()}, nil
}

// SetContext installs the context used when compressing flushed windows.
// Pass a context carrying an obs trace root to record per-window spans
// across the whole stream (the stcomp -trace path). Call before the first
// WriteSlice; a nil ctx resets to context.Background().
func (w *WriterOf[F]) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background() //stlint:ignore ctxflow nil resets to a fresh root by documented contract
	}
	w.ctx = ctx
}

// WriteSlice appends one time slice at simulation time t. The slice is
// cloned during compression, so the caller may reuse its buffer after the
// call returns. When a window fills, it is compressed and flushed to the
// sink before WriteSlice returns.
func (w *WriterOf[F]) WriteSlice(f *grid.Field3DOf[F], t float64) error {
	if f.Dims != w.dims {
		return fmt.Errorf("core: slice dims %v != writer dims %v", f.Dims, w.dims)
	}
	w.slicesIn++

	if w.comp.opts.Mode == Spatial3D {
		// No temporal buffering: compress the single slice immediately.
		win := grid.NewWindowOf[F](w.dims)
		if err := win.Append(f, t); err != nil {
			return err
		}
		return w.flushWindow(win)
	}

	if w.pending == nil {
		w.pending = grid.NewWindowOf[F](w.dims)
	}
	// Buffer a private copy: the simulation will overwrite its buffers.
	if err := w.pending.Append(f.Clone(), t); err != nil {
		return err
	}
	if sz := int64(w.pending.TotalSamples()) * int64(num.SampleBytes[F]()); sz > w.peakBufferSize {
		w.peakBufferSize = sz
	}
	if w.pending.Len() >= w.comp.opts.WindowSize {
		win := w.pending
		w.pending = nil
		return w.flushWindow(win)
	}
	return nil
}

// Flush compresses any partially-filled window. Call once at end of stream.
func (w *WriterOf[F]) Flush() error {
	if w.pending == nil || w.pending.Len() == 0 {
		return nil
	}
	win := w.pending
	w.pending = nil
	return w.flushWindow(win)
}

func (w *WriterOf[F]) flushWindow(win *grid.WindowOf[F]) error {
	cw, err := compressWindowOf(w.ctx, w.comp, win)
	if err != nil {
		return err
	}
	w.windowsOut++
	w.bytesEncoded += cw.EncodedSizeBytes()
	w.bytesIdeal += cw.IdealSizeBytes()
	return w.sink(cw)
}

// Stats reports stream totals.
type Stats struct {
	SlicesIn       int
	WindowsOut     int
	PendingSlices  int
	BytesEncoded   int64
	BytesIdeal     int64
	PeakBufferSize int64
}

// Stats returns a snapshot of the writer's counters.
func (w *WriterOf[F]) Stats() Stats {
	pending := 0
	if w.pending != nil {
		pending = w.pending.Len()
	}
	return Stats{
		SlicesIn:       w.slicesIn,
		WindowsOut:     w.windowsOut,
		PendingSlices:  pending,
		BytesEncoded:   w.bytesEncoded,
		BytesIdeal:     w.bytesIdeal,
		PeakBufferSize: w.peakBufferSize,
	}
}

package core

import (
	"fmt"

	"stwave/internal/codec"
	"stwave/internal/compress"
	"stwave/internal/num"
	"stwave/internal/par"
)

// Precision dispatch. The compress/decompress orchestration is written
// once, generically over num.Float; these helpers route each stage to its
// concrete per-precision implementation at the stage boundary (one
// interface conversion per window, never per sample), so the float64 hot
// loops are the exact code that ran before the float32 path existed.

// precisionOf maps the type parameter to the header enum.
func precisionOf[F num.Float]() Precision {
	if num.Is32[F]() {
		return Float32
	}
	return Float64
}

// encodeSlicesOf routes to the codec's native encode path for F.
func encodeSlicesOf[F num.Float](cdc codec.Codec, datas [][]F, workers int) ([]codec.Block, error) {
	switch d := any(datas).(type) {
	case [][]float64:
		return cdc.EncodeSlices(d, workers)
	case [][]float32:
		return cdc.EncodeSlices32(d, workers)
	}
	return nil, fmt.Errorf("core: unsupported sample type %T", datas)
}

// decodeBlockIntoOf routes to the block's native decode path for F.
func decodeBlockIntoOf[F num.Float](b codec.Block, out []F, workers int) error {
	switch o := any(out).(type) {
	case []float64:
		return b.DecodeInto(o, workers)
	case []float32:
		return b.DecodeInto32(o, workers)
	}
	return fmt.Errorf("core: unsupported sample type %T", out)
}

// thresholdSlicesOf routes to the precision's joint threshold.
func thresholdSlicesOf[F num.Float](datas [][]F, keep, workers int) {
	switch d := any(datas).(type) {
	case [][]float64:
		compress.ThresholdSlices(d, keep, workers)
	case [][]float32:
		compress.ThresholdSlices32(d, keep, workers)
	}
}

// thresholdOf applies the ratio budget at precision F: per-slice for 3D
// (and for the PerSliceBudget ablation), jointly over the whole window for
// 4D — the generic body of Compressor.threshold.
func thresholdOf[F num.Float](o Options, datas [][]F, workers int) error {
	if o.Mode == Spatial3D || o.PerSliceBudget {
		if len(datas) == 0 {
			return nil
		}
		keep, err := compress.KeepCount(len(datas[0]), o.Ratio)
		if err != nil {
			return err
		}
		par.For(len(datas), workers, 1, func(start, end int) {
			for i := start; i < end; i++ {
				thresholdSlicesOf(datas[i:i+1], keep, 1)
			}
		})
		return nil
	}
	total := 0
	for _, d := range datas {
		total += len(d)
	}
	keep, err := compress.KeepCount(total, o.Ratio)
	if err != nil {
		return err
	}
	thresholdSlicesOf(datas, keep, workers)
	return nil
}

package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"stwave/internal/codec"
	"stwave/internal/grid"
	"stwave/internal/wavelet"
)

// On-disk format of a CompressedWindow:
//
//	[0:4]   magic "STWV"
//	[4]     codec format ID (1 = sparse, 2 = deflate, 3 = entropy; the
//	        historical "format version" byte — version 1 files were raw
//	        sparse blocks and version 2 DEFLATE-framed blocks, so old
//	        containers decode unchanged through the codec registry).
//	        The high bit (0x80) marks the v4 progressive (level-major)
//	        layout, which inserts a level-offset table after the slice
//	        times — see progressive.go. Bit 0x40 marks a float32-pipeline
//	        window (v5): the coefficient payload is byte-identical to the
//	        float64 layout (blocks always stored float32 values), but the
//	        window reconstructs natively through the single-precision
//	        inverse transform. Legacy v2-v4 containers never set either
//	        bit and decode unchanged; pre-v5 readers reject flagged bytes
//	        as an unknown format version rather than misparsing.
//	[5]     mode (0 = 3D, 1 = 4D)
//	[6]     spatial kernel
//	[7]     temporal kernel
//	[8:12]  spatial levels (int32 LE)
//	[12:16] temporal levels (int32 LE)
//	[16:24] ratio (float64 LE)
//	[24:36] dims nx, ny, nz (uint32 LE each)
//	[36:40] number of slices (uint32 LE)
//	then numSlices float64 times, then numSlices blocks in the codec's
//	own framing.
var magic = [4]byte{'S', 'T', 'W', 'V'}

// precisionFlag marks the header codec-ID byte of a float32-pipeline (v5)
// window. It shares byte 4 with progressiveFlag; registered codec IDs are
// validated against both bits before writing.
const precisionFlag = 0x40

// headerFlags masks the layout/precision bits out of the codec-ID byte.
const headerFlags = progressiveFlag | precisionFlag

// WriteTo serializes the compressed window through its codec (Opts.Codec;
// sparse when unset). It implements io.WriterTo.
func (cw *CompressedWindow) WriteTo(w io.Writer) (int64, error) {
	return cw.writeTo(w, cw.Codec())
}

// WriteToDeflated serializes the window with each block passed through the
// DEFLATE entropy stage — the significance bitmap compresses to almost
// nothing at high ratios. It only applies to sparse-family blocks; windows
// encoded by other backends (which are already entropy-coded) refuse it.
func (cw *CompressedWindow) WriteToDeflated(w io.Writer) (int64, error) {
	return cw.writeTo(w, codec.Deflate())
}

// Header field ranges shared by the encoder guard and the decoder's
// forged-header validation: a value outside these bounds cannot be
// represented in the fixed-width header without silent truncation.
const (
	maxHeaderLevels = 64      // decomposition levels; MaxLevels caps far below this
	maxHeaderAxis   = 1 << 20 // per-axis dimension (far beyond any real grid)
	maxHeaderSlices = 1 << 20 // time slices per window
)

// buildHeader validates and assembles the 40-byte common header. The
// caller ORs progressiveFlag into byte 4 for the level-major layout.
// Rejecting unrepresentable fields before any bytes are written matters:
// a truncated mode, level count, or dimension would pass every
// downstream checksum (computed over the wrong bytes) and only fail at
// reconstruction.
func (cw *CompressedWindow) buildHeader(cdc codec.Codec, numSlices int) ([]byte, error) {
	if cw.Opts.Mode < 0 || cw.Opts.Mode > 0xff ||
		cw.Opts.SpatialKernel < 0 || cw.Opts.SpatialKernel > 0xff ||
		cw.Opts.TemporalKernel < 0 || cw.Opts.TemporalKernel > 0xff {
		return nil, fmt.Errorf("core: mode %d or kernel %d/%d outside header byte range",
			cw.Opts.Mode, cw.Opts.SpatialKernel, cw.Opts.TemporalKernel)
	}
	if cw.SpatialLevels < 0 || cw.SpatialLevels > maxHeaderLevels ||
		cw.TemporalLevels < 0 || cw.TemporalLevels > maxHeaderLevels {
		return nil, fmt.Errorf("core: decomposition levels %d/%d outside header range [0, %d]",
			cw.SpatialLevels, cw.TemporalLevels, maxHeaderLevels)
	}
	if cw.Dims.Nx > maxHeaderAxis || cw.Dims.Ny > maxHeaderAxis || cw.Dims.Nz > maxHeaderAxis {
		return nil, fmt.Errorf("core: dims %v exceed header axis cap %d", cw.Dims, maxHeaderAxis)
	}
	if numSlices > maxHeaderSlices {
		return nil, fmt.Errorf("core: %d slices exceed header cap %d", numSlices, maxHeaderSlices)
	}
	if id := cdc.ID(); byte(id)&headerFlags != 0 {
		return nil, fmt.Errorf("core: codec ID %d collides with a header flag bit", id)
	}
	if !cw.Precision.Valid() {
		return nil, fmt.Errorf("core: invalid precision %d", int(cw.Precision))
	}
	hdr := make([]byte, 40)
	copy(hdr[0:4], magic[:])
	hdr[4] = byte(cdc.ID())
	if cw.Precision == Float32 {
		hdr[4] |= precisionFlag
	}
	hdr[5] = byte(cw.Opts.Mode)
	hdr[6] = byte(cw.Opts.SpatialKernel)
	hdr[7] = byte(cw.Opts.TemporalKernel)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(cw.SpatialLevels))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(cw.TemporalLevels))
	binary.LittleEndian.PutUint64(hdr[16:24], math.Float64bits(cw.Opts.Ratio))
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(cw.Dims.Nx))
	binary.LittleEndian.PutUint32(hdr[28:32], uint32(cw.Dims.Ny))
	binary.LittleEndian.PutUint32(hdr[32:36], uint32(cw.Dims.Nz))
	binary.LittleEndian.PutUint32(hdr[36:40], uint32(numSlices))
	return hdr, nil
}

func (cw *CompressedWindow) writeTo(w io.Writer, cdc codec.Codec) (int64, error) {
	if cw.Progressive() {
		return cw.writeToProgressive(w, cdc)
	}
	hdr, err := cw.buildHeader(cdc, len(cw.Blocks))
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var written int64
	n, err := bw.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, err
	}
	var tb [8]byte
	for i := 0; i < len(cw.Blocks); i++ {
		t := float64(i)
		if cw.Times != nil && i < len(cw.Times) {
			t = cw.Times[i]
		}
		binary.LittleEndian.PutUint64(tb[:], math.Float64bits(t))
		n, err = bw.Write(tb[:])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	for i, b := range cw.Blocks {
		bn, err := cdc.WriteBlock(w, b)
		written += bn
		if err != nil {
			return written, fmt.Errorf("core: writing block %d: %w", i, err)
		}
	}
	return written, nil
}

// WindowInfo summarizes a serialized window from its fixed-size header
// alone — enough to size buffers, map time indices to windows, and decide
// cache admission without decoding any coefficient payload.
type WindowInfo struct {
	Dims           grid.Dims
	NumSlices      int
	Mode           Mode
	SpatialKernel  wavelet.Kernel
	TemporalKernel wavelet.Kernel
	// Codec is the coefficient backend the window's blocks are encoded
	// with (the header's format ID byte, already registry-validated).
	Codec codec.ID
	// SpatialLevels is the spatial decomposition depth recorded in the
	// header — the number of addressable refinement levels of a
	// progressive window.
	SpatialLevels int
	// Progressive marks a v4 level-major window: its payload is grouped
	// by detail level behind a level-offset table, so byte prefixes
	// decode to coarse reconstructions (see ReadWindowLevelTable).
	Progressive bool
	// Precision records which pipeline produced the window (the header's
	// 0x40 flag); legacy headers never set it and report Float64.
	Precision Precision
	// Gap is non-nil when the container entry is a journaled gap marker
	// (a window shed under backpressure) rather than a compressed window.
	// For gaps NumSlices carries the dropped slice count so timeline
	// accounting works uniformly; Dims, Mode, kernels, and Codec are zero.
	Gap *GapMarker
}

// RawSizeBytes returns the size of the window once fully decompressed at
// its native precision — the memory cost of holding it in a
// decompressed-window cache (half as much for Float32 windows).
func (wi WindowInfo) RawSizeBytes() int64 {
	return int64(wi.Dims.Len()) * int64(wi.NumSlices) * int64(wi.Precision.SampleBytes())
}

// ReadWindowInfo parses only the 40-byte header of a serialized window. It
// validates the same invariants as ReadCompressedWindow's header path but
// reads nothing beyond the header, so it is cheap enough to run over every
// window of a large container at startup. Gap marker entries (shed
// windows) are recognized and returned with Gap set instead of erroring,
// so timeline scans account for them without decoding heuristics.
func ReadWindowInfo(r io.Reader) (WindowInfo, error) {
	hdr := make([]byte, 40)
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return WindowInfo{}, fmt.Errorf("core: reading header: %w", err)
	}
	if [4]byte(hdr[0:4]) == GapMagic {
		gb := make([]byte, GapMarkerSize)
		copy(gb, hdr[:4])
		if _, err := io.ReadFull(r, gb[4:]); err != nil {
			return WindowInfo{}, fmt.Errorf("core: reading gap marker: %w", err)
		}
		g, err := ParseGapMarker(gb)
		if err != nil {
			return WindowInfo{}, err
		}
		return WindowInfo{NumSlices: g.Slices, Gap: &g}, nil
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return WindowInfo{}, fmt.Errorf("core: reading header: %w", err)
	}
	if [4]byte(hdr[0:4]) != magic {
		return WindowInfo{}, fmt.Errorf("core: bad magic %q", hdr[0:4])
	}
	wi := WindowInfo{
		Mode:           Mode(hdr[5]),
		SpatialKernel:  wavelet.Kernel(hdr[6]),
		TemporalKernel: wavelet.Kernel(hdr[7]),
		Codec:          codec.ID(hdr[4] &^ headerFlags),
		Progressive:    hdr[4]&progressiveFlag != 0,
		Precision:      Float64,
	}
	if hdr[4]&precisionFlag != 0 {
		wi.Precision = Float32
	}
	if _, err := codec.ByID(wi.Codec); err != nil {
		return WindowInfo{}, fmt.Errorf("core: unsupported format version %d: %w", hdr[4], err)
	}
	spatialLevels := binary.LittleEndian.Uint32(hdr[8:12])
	if spatialLevels > maxHeaderLevels {
		return WindowInfo{}, fmt.Errorf("core: implausible spatial levels %d in header", spatialLevels)
	}
	wi.SpatialLevels = int(spatialLevels)
	wi.Dims = grid.Dims{
		Nx: int(binary.LittleEndian.Uint32(hdr[24:28])),
		Ny: int(binary.LittleEndian.Uint32(hdr[28:32])),
		Nz: int(binary.LittleEndian.Uint32(hdr[32:36])),
	}
	wi.NumSlices = int(binary.LittleEndian.Uint32(hdr[36:40]))
	if !wi.Dims.Valid() {
		return WindowInfo{}, fmt.Errorf("core: invalid dims %v in header", wi.Dims)
	}
	if wi.Dims.Nx > maxHeaderAxis || wi.Dims.Ny > maxHeaderAxis || wi.Dims.Nz > maxHeaderAxis {
		return WindowInfo{}, fmt.Errorf("core: implausible dims %v in header", wi.Dims)
	}
	if wi.NumSlices < 1 || wi.NumSlices > maxHeaderSlices {
		return WindowInfo{}, fmt.Errorf("core: implausible slice count %d", wi.NumSlices)
	}
	if wi.Mode != Spatial3D && wi.Mode != Spatiotemporal4D {
		return WindowInfo{}, fmt.Errorf("core: invalid mode %d in header", int(wi.Mode))
	}
	if !wi.SpatialKernel.Valid() || !wi.TemporalKernel.Valid() {
		return WindowInfo{}, fmt.Errorf("core: invalid kernel in header")
	}
	return wi, nil
}

// ReadCompressedWindow deserializes a window written by WriteTo. The codec
// is resolved from the header's format ID, so windows decode transparently
// whatever backend wrote them; the resolved codec lands in Opts.Codec and
// is reused on re-serialization. Progressive (v4) windows are recognized
// by the header's progressive bit and parsed through their level-offset
// table; legacy v2/v3 windows take the slice-major path below, unchanged.
func ReadCompressedWindow(r io.Reader) (*CompressedWindow, error) {
	return readCompressedWindow(r, -1, false)
}

// readCompressedWindow parses either layout. maxLevel >= 0 stops reading
// after that level group (progressive windows only); requireProgressive
// rejects legacy windows with ErrNotProgressive instead of reading them
// fully.
func readCompressedWindow(r io.Reader, maxLevel int, requireProgressive bool) (*CompressedWindow, error) {
	hdr := make([]byte, 40)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("core: reading header: %w", err)
	}
	if [4]byte(hdr[0:4]) == GapMagic {
		return nil, ErrGapWindow
	}
	if [4]byte(hdr[0:4]) != magic {
		return nil, fmt.Errorf("core: bad magic %q", hdr[0:4])
	}
	progressive := hdr[4]&progressiveFlag != 0
	if requireProgressive && !progressive {
		return nil, ErrNotProgressive
	}
	cdc, err := codec.ByID(codec.ID(hdr[4] &^ headerFlags))
	if err != nil {
		return nil, fmt.Errorf("core: unsupported format version %d: %w", hdr[4], err)
	}
	cw := &CompressedWindow{}
	if hdr[4]&precisionFlag != 0 {
		cw.Precision = Float32
	}
	cw.Opts.Precision = cw.Precision
	cw.Opts.Codec = cdc
	cw.Opts.Mode = Mode(hdr[5])
	cw.Opts.SpatialKernel = wavelet.Kernel(hdr[6])
	cw.Opts.TemporalKernel = wavelet.Kernel(hdr[7])
	spatialLevels := binary.LittleEndian.Uint32(hdr[8:12])
	temporalLevels := binary.LittleEndian.Uint32(hdr[12:16])
	if spatialLevels > maxHeaderLevels || temporalLevels > maxHeaderLevels {
		return nil, fmt.Errorf("core: implausible decomposition levels %d/%d in header", spatialLevels, temporalLevels)
	}
	cw.SpatialLevels = int(spatialLevels)
	cw.TemporalLevels = int(temporalLevels)
	cw.Opts.Ratio = math.Float64frombits(binary.LittleEndian.Uint64(hdr[16:24]))
	cw.Dims = grid.Dims{
		Nx: int(binary.LittleEndian.Uint32(hdr[24:28])),
		Ny: int(binary.LittleEndian.Uint32(hdr[28:32])),
		Nz: int(binary.LittleEndian.Uint32(hdr[32:36])),
	}
	numSlices := int(binary.LittleEndian.Uint32(hdr[36:40]))
	if !cw.Dims.Valid() {
		return nil, fmt.Errorf("core: invalid dims %v in header", cw.Dims)
	}
	// Per-axis cap prevents integer overflow in Dims.Len() and bounds
	// allocations against forged headers (2^20 per axis is far beyond any
	// real grid).
	if cw.Dims.Nx > maxHeaderAxis || cw.Dims.Ny > maxHeaderAxis || cw.Dims.Nz > maxHeaderAxis {
		return nil, fmt.Errorf("core: implausible dims %v in header", cw.Dims)
	}
	if numSlices < 1 || numSlices > maxHeaderSlices {
		return nil, fmt.Errorf("core: implausible slice count %d", numSlices)
	}
	if cw.Opts.Mode != Spatial3D && cw.Opts.Mode != Spatiotemporal4D {
		return nil, fmt.Errorf("core: invalid mode %d in header", int(cw.Opts.Mode))
	}
	if !cw.Opts.SpatialKernel.Valid() || !cw.Opts.TemporalKernel.Valid() {
		return nil, fmt.Errorf("core: invalid kernel in header")
	}
	cw.Times = make([]float64, numSlices)
	var tb [8]byte
	for i := range cw.Times {
		if _, err := io.ReadFull(r, tb[:]); err != nil {
			return nil, fmt.Errorf("core: reading time %d: %w", i, err)
		}
		cw.Times[i] = math.Float64frombits(binary.LittleEndian.Uint64(tb[:]))
	}
	if progressive {
		return readProgressiveBody(r, cdc, cw, numSlices, maxLevel)
	}
	cw.Blocks = make([]codec.Block, numSlices)
	for i := range cw.Blocks {
		b, err := cdc.ReadBlock(r)
		if err != nil {
			return nil, fmt.Errorf("core: reading block %d: %w", i, err)
		}
		if b.Total() != cw.Dims.Len() {
			return nil, fmt.Errorf("core: block %d size %d != grid size %d", i, b.Total(), cw.Dims.Len())
		}
		cw.Blocks[i] = b
	}
	return cw, nil
}

package core

import (
	"math"
	"testing"

	"stwave/internal/grid"
	"stwave/internal/metrics"
)

func TestCompressToTargetMeetsBound(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	w := coherentWindow(d, 20, 0.4)
	opts := DefaultOptions()
	for _, target := range []float64{1e-2, 1e-3, 1e-4} {
		cw, achieved, err := CompressToTarget(opts, w, target, 1, 512)
		if err != nil {
			t.Fatalf("target %g: %v", target, err)
		}
		if achieved > target {
			t.Errorf("target %g: achieved NRMSE %g exceeds target", target, achieved)
		}
		// Verify the reported error against a fresh decompression.
		recon, err := Decompress(cw)
		if err != nil {
			t.Fatal(err)
		}
		ac := metrics.NewAccumulator()
		for i := range w.Slices {
			if err := ac.Add(w.Slices[i].Data, recon.Slices[i].Data); err != nil {
				t.Fatal(err)
			}
		}
		if math.Abs(ac.NRMSE()-achieved) > 1e-12 {
			t.Errorf("target %g: reported %g but recomputed %g", target, achieved, ac.NRMSE())
		}
	}
}

func TestCompressToTargetPrefersTighterRatios(t *testing.T) {
	d := grid.Dims{Nx: 12, Ny: 12, Nz: 12}
	w := coherentWindow(d, 20, 0.2)
	opts := DefaultOptions()
	loose, _, err := CompressToTarget(opts, w, 1e-2, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	tight, _, err := CompressToTarget(opts, w, 1e-5, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	if loose.RetainedCoefficients() >= tight.RetainedCoefficients() {
		t.Errorf("loose target retained %d coefficients, tight retained %d — loose should keep fewer",
			loose.RetainedCoefficients(), tight.RetainedCoefficients())
	}
}

func TestCompressToTargetUnreachable(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	w := coherentWindow(d, 10, 0.1)
	opts := DefaultOptions()
	opts.WindowSize = 10
	// With minRatio 64 even the loosest setting cannot hit 1e-12 NRMSE.
	cw, achieved, err := CompressToTarget(opts, w, 1e-12, 64, 512)
	if err == nil {
		t.Fatalf("expected unreachable-target error, got NRMSE %g", achieved)
	}
	if cw == nil {
		t.Error("unreachable target must still return the best-effort window")
	}
}

func TestCompressToTargetValidation(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	w := coherentWindow(d, 10, 0)
	opts := DefaultOptions()
	opts.WindowSize = 10
	if _, _, err := CompressToTarget(opts, w, 0, 1, 128); err == nil {
		t.Error("expected error for zero target")
	}
	if _, _, err := CompressToTarget(opts, w, 1e-3, 0.5, 128); err == nil {
		t.Error("expected error for minRatio < 1")
	}
	if _, _, err := CompressToTarget(opts, w, 1e-3, 128, 8); err == nil {
		t.Error("expected error for inverted range")
	}
}

func TestDecompressSliceMatchesFull(t *testing.T) {
	d := grid.Dims{Nx: 12, Ny: 10, Nz: 8}
	w := coherentWindow(d, 18, 0.6)
	opts := DefaultOptions()
	opts.WindowSize = 18
	opts.Ratio = 16
	comp, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(cw)
	if err != nil {
		t.Fatal(err)
	}
	for _, slice := range []int{0, 5, 17} {
		single, err := DecompressSlice(cw, slice)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single.Data {
			if single.Data[i] != full.Slices[slice].Data[i] {
				t.Fatalf("slice %d sample %d: DecompressSlice %g != full %g",
					slice, i, single.Data[i], full.Slices[slice].Data[i])
			}
		}
	}
}

func TestDecompressSliceWorksFor3DMode(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	w := coherentWindow(d, 1, 0)
	opts := Options{Mode: Spatial3D, SpatialKernel: DefaultOptions().SpatialKernel, Ratio: 8, SpatialLevels: -1}
	comp, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecompressSlice(cw, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(cw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if f.Data[i] != full.Slices[0].Data[i] {
			t.Fatal("3D-mode DecompressSlice differs from full decompress")
		}
	}
}

func TestDecompressSliceValidation(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	w := coherentWindow(d, 5, 0)
	opts := DefaultOptions()
	opts.WindowSize = 5
	comp, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressSlice(cw, -1); err == nil {
		t.Error("expected error for negative index")
	}
	if _, err := DecompressSlice(cw, 5); err == nil {
		t.Error("expected error for out-of-range index")
	}
}

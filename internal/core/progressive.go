package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"stwave/internal/codec"
	"stwave/internal/grid"
	"stwave/internal/num"
	"stwave/internal/obs"
	"stwave/internal/par"
	"stwave/internal/scratch"
	"stwave/internal/transform"
)

// Progressive (v4) window layout. The 40-byte header is shared with the
// legacy layout, with the progressiveFlag bit set on the codec ID byte so
// pre-v4 readers fail typed ("unsupported format version") instead of
// misparsing the payload. After the per-slice times comes a level-offset
// table, then the coefficient payload reordered level-major:
//
//	[0:4]   level-table magic "STLT"
//	[4]     group count G (1 <= G <= spatial levels + 1; G below the
//	        maximum means the finest levels were shed, e.g. under
//	        ingest backpressure, and decode as zeros)
//	[5:8]   reserved (zero)
//	then G 12-byte extents: payload byte length (uint64 LE) + CRC32-IEEE
//	(uint32 LE) of that group's payload region, then the G group payload
//	regions back to back. Group g holds the blocks of every time slice
//	(slice-major within the group) for level group g of LevelGroups, so
//	any payload prefix covering groups 0..K is a complete, independently
//	verifiable K-level reconstruction.
const (
	// progressiveFlag marks the header codec-ID byte of a level-major
	// (v4) window.
	progressiveFlag = 0x80

	levelTableHeaderSize = 8
	levelExtentSize      = 12

	// maxGroupBytes bounds a single level group's payload length against
	// forged tables: far beyond any real window, small enough that the
	// sum over maxHeaderLevels+1 groups cannot overflow int64.
	maxGroupBytes = int64(1) << 40
)

var levelTableMagic = [4]byte{'S', 'T', 'L', 'T'}

// ErrNotProgressive reports a level-addressed operation on a window
// stored in the legacy slice-major layout.
var ErrNotProgressive = fmt.Errorf("core: window is not progressive (no level-major layout)")

// LevelExtent locates one level group's payload region inside a
// serialized progressive window: Length bytes whose CRC32-IEEE checksum
// is CRC. Extents come from untrusted container bytes — every consumer
// must bounds-check Length before using it to size reads.
type LevelExtent struct {
	Length int64
	CRC    uint32
}

// LevelTable is the parsed level-offset table of a progressive window.
type LevelTable struct {
	Extents []LevelExtent
}

// PrefixBytes returns the payload bytes covering groups 0..maxLevel —
// the partial-read size for a level-K request. maxLevel is clamped to
// the available groups.
func (t LevelTable) PrefixBytes(maxLevel int) int64 {
	var n int64
	for g, ext := range t.Extents {
		if g > maxLevel {
			break
		}
		n += ext.Length
	}
	return n
}

// EncodedSize returns the serialized size of the table itself.
func (t LevelTable) EncodedSize() int64 {
	return levelTableHeaderSize + int64(len(t.Extents))*levelExtentSize
}

// Progressive reports whether the window is stored level-major (the v4
// layout with an addressable byte range per detail level).
func (cw *CompressedWindow) Progressive() bool { return len(cw.LevelBlocks) > 0 }

// DropFinestLevel returns a shallow copy of a progressive window without
// its finest retained detail level — the free degrade step the ingest
// ladder takes before paying for a recompression rung. The blocks are
// shared with the receiver. It reports false (returning the receiver
// unchanged) for legacy windows and for windows already reduced to the
// approximation group alone.
func (cw *CompressedWindow) DropFinestLevel() (*CompressedWindow, bool) {
	if !cw.Progressive() || len(cw.LevelBlocks) <= 1 {
		return cw, false
	}
	out := *cw
	out.LevelBlocks = cw.LevelBlocks[:len(cw.LevelBlocks)-1]
	return &out, true
}

// writeToProgressive serializes the level-major layout: common header
// (with the progressive bit), times, level-offset table, then one
// contiguous payload region per level group.
func (cw *CompressedWindow) writeToProgressive(w io.Writer, cdc codec.Codec) (int64, error) {
	numSlices := cw.NumSlices()
	hdr, err := cw.buildHeader(cdc, numSlices)
	if err != nil {
		return 0, err
	}
	hdr[4] |= progressiveFlag
	if err := validateLevelGeometry(cw.Dims, cw.SpatialLevels, len(cw.LevelBlocks)); err != nil {
		return 0, err
	}
	for g, row := range cw.LevelBlocks {
		if len(row) != numSlices {
			return 0, fmt.Errorf("core: level group %d has %d blocks, window has %d slices", g, len(row), numSlices)
		}
	}

	// The table precedes the payload, so group lengths and checksums are
	// computed into a buffer first. Windows are encoded-size objects that
	// already live in memory as blocks; buffering the payload once costs
	// roughly the window's encoded size.
	var payload bytes.Buffer
	extents := make([]LevelExtent, len(cw.LevelBlocks))
	for g, row := range cw.LevelBlocks {
		start := int64(payload.Len())
		h := crc32.NewIEEE()
		mw := io.MultiWriter(&payload, h)
		for i, b := range row {
			if _, err := cdc.WriteBlock(mw, b); err != nil {
				return 0, fmt.Errorf("core: writing level %d block %d: %w", g, i, err)
			}
		}
		extents[g] = LevelExtent{Length: int64(payload.Len()) - start, CRC: h.Sum32()}
	}

	var written int64
	n, err := w.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, err
	}
	times := make([]byte, 8*numSlices)
	for i := 0; i < numSlices; i++ {
		t := float64(i)
		if cw.Times != nil && i < len(cw.Times) {
			t = cw.Times[i]
		}
		binary.LittleEndian.PutUint64(times[i*8:], math.Float64bits(t))
	}
	n, err = w.Write(times)
	written += int64(n)
	if err != nil {
		return written, err
	}
	if len(extents) > math.MaxUint8 {
		return written, fmt.Errorf("core: %d level groups overflow the table's count byte", len(extents))
	}
	table := make([]byte, levelTableHeaderSize+levelExtentSize*len(extents))
	copy(table[0:4], levelTableMagic[:])
	table[4] = byte(len(extents))
	for g, ext := range extents {
		if ext.Length < 0 {
			return written, fmt.Errorf("core: negative level group %d length %d", g, ext.Length)
		}
		off := levelTableHeaderSize + g*levelExtentSize
		binary.LittleEndian.PutUint64(table[off:off+8], uint64(ext.Length))
		binary.LittleEndian.PutUint32(table[off+8:off+12], ext.CRC)
	}
	n, err = w.Write(table)
	written += int64(n)
	if err != nil {
		return written, err
	}
	pn, err := io.Copy(w, &payload)
	written += pn
	return written, err
}

// parseLevelTable reads and validates a level-offset table. spatialLevels
// bounds the admissible group count; every extent length is checked
// against maxGroupBytes before anything is sized from it.
func parseLevelTable(r io.Reader, spatialLevels int) (LevelTable, error) {
	hdr := make([]byte, levelTableHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return LevelTable{}, fmt.Errorf("core: reading level table: %w", err)
	}
	if [4]byte(hdr[0:4]) != levelTableMagic {
		return LevelTable{}, fmt.Errorf("core: bad level table magic %q", hdr[0:4])
	}
	groups := int(hdr[4])
	if groups < 1 || groups > spatialLevels+1 {
		return LevelTable{}, fmt.Errorf("core: level table declares %d groups, header permits [1, %d]",
			groups, spatialLevels+1)
	}
	if hdr[5] != 0 || hdr[6] != 0 || hdr[7] != 0 {
		return LevelTable{}, fmt.Errorf("core: nonzero reserved bytes in level table header")
	}
	ents := make([]byte, levelExtentSize*groups)
	if _, err := io.ReadFull(r, ents); err != nil {
		return LevelTable{}, fmt.Errorf("core: reading level table extents: %w", err)
	}
	table := LevelTable{Extents: make([]LevelExtent, groups)}
	for g := range table.Extents {
		off := g * levelExtentSize
		length := binary.LittleEndian.Uint64(ents[off : off+8])
		if length > uint64(maxGroupBytes) {
			return LevelTable{}, fmt.Errorf("core: level group %d length %d exceeds cap %d", g, length, maxGroupBytes)
		}
		table.Extents[g] = LevelExtent{
			Length: int64(length),
			CRC:    binary.LittleEndian.Uint32(ents[off+8 : off+12]),
		}
	}
	return table, nil
}

// ReadWindowLevelTable parses the header, slice times, and level-offset
// table of a serialized progressive window, returning the window info,
// the table, and the byte offset at which group 0's payload begins. It
// reads nothing beyond the table, so a container can locate any level
// prefix from a few hundred bytes. Legacy windows return
// ErrNotProgressive.
func ReadWindowLevelTable(r io.Reader) (WindowInfo, LevelTable, int64, error) {
	wi, err := ReadWindowInfo(r)
	if err != nil {
		return WindowInfo{}, LevelTable{}, 0, err
	}
	if wi.Gap != nil {
		return WindowInfo{}, LevelTable{}, 0, ErrGapWindow
	}
	if !wi.Progressive {
		return WindowInfo{}, LevelTable{}, 0, ErrNotProgressive
	}
	timesLen := int64(wi.NumSlices) * 8
	if _, err := io.CopyN(io.Discard, r, timesLen); err != nil {
		return WindowInfo{}, LevelTable{}, 0, fmt.Errorf("core: skipping slice times: %w", err)
	}
	table, err := parseLevelTable(r, wi.SpatialLevels)
	if err != nil {
		return WindowInfo{}, LevelTable{}, 0, err
	}
	payloadStart := 40 + timesLen + table.EncodedSize()
	return wi, table, payloadStart, nil
}

// readProgressiveBody parses the level table and group payloads of a
// progressive window whose header and times have been consumed.
// maxLevel < 0 reads every group; otherwise reading stops after group
// maxLevel (clamped to the groups present), which is what makes a
// partial container read decode without ever touching finer bytes. Each
// group region is length-bounded and CRC-verified independently, so a
// truncated or forged stream fails typed at the first bad group.
func readProgressiveBody(r io.Reader, cdc codec.Codec, cw *CompressedWindow, numSlices, maxLevel int) (*CompressedWindow, error) {
	table, err := parseLevelTable(r, cw.SpatialLevels)
	if err != nil {
		return nil, err
	}
	groups := LevelGroups(cw.Dims, cw.SpatialLevels)
	readGroups := len(table.Extents)
	if maxLevel >= 0 && maxLevel+1 < readGroups {
		readGroups = maxLevel + 1
	}
	cw.LevelBlocks = make([][]codec.Block, readGroups)
	for g := 0; g < readGroups; g++ {
		ext := table.Extents[g]
		if ext.Length < 0 || ext.Length > maxGroupBytes {
			return nil, fmt.Errorf("core: level group %d length %d out of range", g, ext.Length)
		}
		lr := &io.LimitedReader{R: r, N: ext.Length}
		h := crc32.NewIEEE()
		tr := io.TeeReader(lr, h)
		row := make([]codec.Block, numSlices)
		for i := range row {
			b, err := cdc.ReadBlock(tr)
			if err != nil {
				return nil, fmt.Errorf("core: reading level %d block %d: %w", g, i, err)
			}
			if b.Total() != groups[g].Count {
				return nil, fmt.Errorf("core: level %d block %d has %d coefficients, group needs %d",
					g, i, b.Total(), groups[g].Count)
			}
			row[i] = b
		}
		if lr.N != 0 {
			return nil, fmt.Errorf("core: level group %d payload has %d undeclared trailing bytes", g, lr.N)
		}
		if sum := h.Sum32(); sum != ext.CRC {
			return nil, fmt.Errorf("core: level group %d checksum mismatch: got %08x, table says %08x", g, sum, ext.CRC)
		}
		cw.LevelBlocks[g] = row
	}
	return cw, nil
}

// ReadCompressedWindowLevels deserializes only level groups 0..maxLevel
// of a progressive window — the partial-decode read path. The returned
// window decodes (via DecompressLevels) up to maxLevel; finer groups are
// absent as if they had been shed. The reader needs to supply only the
// byte prefix covering those groups (see ReadWindowLevelTable /
// LevelTable.PrefixBytes); nothing past group maxLevel is read. Legacy
// windows fail with ErrNotProgressive.
func ReadCompressedWindowLevels(r io.Reader, maxLevel int) (*CompressedWindow, error) {
	if maxLevel < 0 {
		return nil, fmt.Errorf("core: negative level %d", maxLevel)
	}
	return readCompressedWindow(r, maxLevel, true)
}

// encodeProgressiveOf gathers thresholded full-grid coefficient slices
// into level groups (coarsest first) and encodes one block per (group,
// slice) pair — the level-major layout, at either precision. The
// per-group gather buffers come from the scratch pool.
func encodeProgressiveOf[F num.Float](cdc codec.Codec, datas [][]F, dims grid.Dims, spatialLevels, workers int) ([][]codec.Block, error) {
	groups := LevelGroups(dims, spatialLevels)
	t := len(datas)
	levelBlocks := make([][]codec.Block, len(groups))
	encodeGroup := func(g int, lg LevelGroup) ([]codec.Block, error) {
		slab := scratch.FloatsOf[F](t * lg.Count)
		defer scratch.PutFloatsOf(slab)
		gdatas := make([][]F, t)
		for i, d := range datas {
			buf := slab[i*lg.Count : (i+1)*lg.Count : (i+1)*lg.Count]
			if n := gatherGroup(buf, d, dims, lg); n != lg.Count {
				return nil, fmt.Errorf("core: level group %d gathered %d of %d coefficients", g, n, lg.Count)
			}
			gdatas[i] = buf
		}
		blocks, err := encodeSlicesOf(cdc, gdatas, workers)
		if err != nil {
			return nil, fmt.Errorf("core: %s encode of level group %d: %w", cdc.Name(), g, err)
		}
		return blocks, nil
	}
	for g, lg := range groups {
		blocks, err := encodeGroup(g, lg)
		if err != nil {
			return nil, err
		}
		levelBlocks[g] = blocks
	}
	return levelBlocks, nil
}

// validateLevelBlocks checks the shape of every present level group —
// row length and per-block coefficient counts against the header's
// geometry — BEFORE any dims-derived buffer is sized. Block totals are
// bounded by the bytes actually parsed, so running this first keeps a
// forged header from driving allocations (the PR 6 hardening
// discipline).
func validateLevelBlocks(cw *CompressedWindow) error {
	if err := validateLevelGeometry(cw.Dims, cw.SpatialLevels, len(cw.LevelBlocks)); err != nil {
		return err
	}
	groups := LevelGroups(cw.Dims, cw.SpatialLevels)
	t := cw.NumSlices()
	for g, row := range cw.LevelBlocks {
		if len(row) != t {
			return fmt.Errorf("core: level group %d has %d blocks, window has %d slices", g, len(row), t)
		}
		for i, b := range row {
			if b.Total() != groups[g].Count {
				return fmt.Errorf("core: level %d block %d has %d coefficients, group needs %d",
					g, i, b.Total(), groups[g].Count)
			}
		}
	}
	return nil
}

// scatterLevels decodes the window's level groups 0..maxLevel into
// coefficient-space slice buffers laid out for dims sub (which must be
// CoarseDims(cw.Dims, L-maxLevel) or any larger approximation cube).
// Groups beyond those present decode as zeros; datas must arrive
// zero-filled. firstLevel skips groups below it (the refinement path,
// whose coarser groups are already in place).
func scatterLevels[F num.Float](cw *CompressedWindow, datas [][]F, sub grid.Dims, firstLevel, maxLevel, workers int) error {
	groups := LevelGroups(cw.Dims, cw.SpatialLevels)
	last := maxLevel
	if last > len(cw.LevelBlocks)-1 {
		last = len(cw.LevelBlocks) - 1
	}
	if last < firstLevel {
		return nil
	}
	maxCount := 0
	for g := firstLevel; g <= last; g++ {
		if groups[g].Count > maxCount {
			maxCount = groups[g].Count
		}
	}
	t := len(datas)
	errs := make([]error, t)
	outer, inner := par.Split(workers, t)
	par.For(t, outer, 1, func(start, end int) {
		buf := scratch.FloatsOf[F](maxCount)
		defer scratch.PutFloatsOf(buf)
		for i := start; i < end; i++ {
			for g := firstLevel; g <= last; g++ {
				lg := groups[g]
				b := cw.LevelBlocks[g][i]
				if b.Total() != lg.Count {
					errs[i] = fmt.Errorf("core: level %d block %d has %d coefficients, group needs %d",
						g, i, b.Total(), lg.Count)
					return
				}
				if err := decodeBlockIntoOf(b, buf[:lg.Count], inner); err != nil {
					errs[i] = err
					return
				}
				scatterGroup(datas[i], sub, buf[:lg.Count], lg)
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// approxRescale undoes the approximation band's per-level sqrt(2)^3
// amplitude gain for the levels left un-inverted by a partial decode,
// matching transform.CoarseApproximation's convention so a level-K
// reconstruction is directly comparable to a coarse preview of the
// original field.
func approxRescale[F num.Float](datas [][]F, skippedLevels, workers int) {
	if skippedLevels <= 0 {
		return
	}
	scale := F(math.Pow(math.Sqrt2, -3*float64(skippedLevels)))
	par.For(len(datas), workers, 1, func(start, end int) {
		for i := start; i < end; i++ {
			d := datas[i]
			for j := range d {
				d[j] *= scale
			}
		}
	})
}

// DecompressLevels reconstructs a progressive window from its level
// groups 0..maxLevel alone: the result has CoarseDims(cw.Dims,
// L-maxLevel) extents per slice (all slices and their timeline are
// preserved — the temporal transform is fully inverted) and never
// decodes a block finer than maxLevel. maxLevel = SpatialLevels is a
// full-resolution decode, bit-identical to Decompress. Groups the
// window no longer carries (shed or not fetched) reconstruct as zero
// detail. Legacy windows fail with ErrNotProgressive.
func DecompressLevels(cw *CompressedWindow, maxLevel int) (*grid.Window, error) {
	return DecompressLevelsCtx(context.Background(), cw, maxLevel)
}

// DecompressLevelsCtx is DecompressLevels with context propagation for
// tracing spans, mirroring DecompressCtx.
func DecompressLevelsCtx(ctx context.Context, cw *CompressedWindow, maxLevel int) (*grid.Window, error) {
	return decompressLevelsOf[float64](ctx, cw, maxLevel)
}

// DecompressLevels32 is DecompressLevels at native single precision —
// the partial-decode path of the float32 pipeline.
func DecompressLevels32(cw *CompressedWindow, maxLevel int) (*grid.Window32, error) {
	return decompressLevelsOf[float32](context.Background(), cw, maxLevel)
}

// DecompressLevels32Ctx is DecompressLevels32 with context propagation.
func DecompressLevels32Ctx(ctx context.Context, cw *CompressedWindow, maxLevel int) (*grid.Window32, error) {
	return decompressLevelsOf[float32](ctx, cw, maxLevel)
}

// decompressLevelsOf is the precision-generic level-bounded decode behind
// DecompressLevelsCtx and DecompressLevels32.
func decompressLevelsOf[F num.Float](ctx context.Context, cw *CompressedWindow, maxLevel int) (*grid.WindowOf[F], error) {
	if !cw.Progressive() {
		return nil, ErrNotProgressive
	}
	if cw.NumSlices() == 0 {
		return nil, fmt.Errorf("core: empty compressed window")
	}
	if !cw.Dims.Valid() {
		return nil, fmt.Errorf("core: invalid dims %v", cw.Dims)
	}
	L := cw.SpatialLevels
	if maxLevel < 0 || maxLevel > L {
		return nil, fmt.Errorf("core: level %d out of range [0, %d]", maxLevel, L)
	}
	if err := validateLevelBlocks(cw); err != nil {
		return nil, err
	}
	ctx, sp := obs.Start(ctx, "core.decompress_levels")
	defer sp.End()

	sub := transform.CoarseDims(cw.Dims, L-maxLevel)
	t, s := cw.NumSlices(), sub.Len()
	workers := par.Workers(cw.Opts.Workers)
	slab := make([]F, t*s)
	fields := make([]grid.Field3DOf[F], t)
	slices := make([]*grid.Field3DOf[F], t)
	datas := make([][]F, t)
	times := make([]float64, t)
	for i := range fields {
		d := slab[i*s : (i+1)*s : (i+1)*s]
		fields[i] = grid.Field3DOf[F]{Dims: sub, Data: d}
		slices[i] = &fields[i]
		datas[i] = d
		times[i] = float64(i)
		if cw.Times != nil && i < len(cw.Times) {
			times[i] = cw.Times[i]
		}
	}
	if err := scatterLevels(cw, datas, sub, 0, maxLevel, workers); err != nil {
		return nil, err
	}
	w := &grid.WindowOf[F]{Dims: sub, Slices: slices, Times: times}
	spec := transform.Spec{
		SpatialKernel:  cw.Opts.SpatialKernel,
		SpatialLevels:  maxLevel,
		TemporalKernel: cw.Opts.TemporalKernel,
		TemporalLevels: cw.TemporalLevels,
		Workers:        cw.Opts.Workers,
	}
	if err := transform.Inverse4DCtx(ctx, w, spec); err != nil {
		return nil, fmt.Errorf("core: inverse transform: %w", err)
	}
	approxRescale(datas, L-maxLevel, workers)
	if maxLevel < L {
		obs.Default().Counter("core.partial_decodes_total").Add(1)
	}
	obs.Default().Counter("core.decompress_windows_total").Add(1)
	return w, nil
}

// Refiner incrementally reconstructs a progressive window: start at a
// coarse level, then Advance as finer groups become worth decoding (or
// their bytes arrive), paying only for the newly added groups each time.
// The refined state lives in coefficient space, so an Advance from K to
// K' is a corner copy plus the new groups' scatter — no inverse
// transform is repeated until Materialize.
type Refiner struct {
	cw      *CompressedWindow
	level   int
	coeff   *grid.Window
	workers int // resolved once at construction; Advance/Materialize reuse it
}

// NewRefiner prepares incremental reconstruction of cw. No blocks are
// decoded until the first Advance.
func NewRefiner(cw *CompressedWindow) (*Refiner, error) {
	if !cw.Progressive() {
		return nil, ErrNotProgressive
	}
	if cw.NumSlices() == 0 {
		return nil, fmt.Errorf("core: empty compressed window")
	}
	if err := validateLevelBlocks(cw); err != nil {
		return nil, err
	}
	return &Refiner{cw: cw, level: -1, workers: par.Workers(cw.Opts.Workers)}, nil
}

// Level returns the finest level group applied so far; -1 before the
// first Advance.
func (r *Refiner) Level() int { return r.level }

// Advance extends the refined state through level group toLevel, which
// must be finer than the current level and at most SpatialLevels.
func (r *Refiner) Advance(toLevel int) error {
	L := r.cw.SpatialLevels
	if toLevel <= r.level || toLevel > L {
		return fmt.Errorf("core: refine level %d out of range (%d, %d]", toLevel, r.level, L)
	}
	sub := transform.CoarseDims(r.cw.Dims, L-toLevel)
	t, s := r.cw.NumSlices(), sub.Len()
	workers := r.workers
	slab := make([]float64, t*s)
	fields := make([]grid.Field3D, t)
	slices := make([]*grid.Field3D, t)
	datas := make([][]float64, t)
	times := make([]float64, t)
	for i := range fields {
		d := slab[i*s : (i+1)*s : (i+1)*s]
		fields[i] = grid.Field3D{Dims: sub, Data: d}
		slices[i] = &fields[i]
		datas[i] = d
		times[i] = float64(i)
		if r.cw.Times != nil && i < len(r.cw.Times) {
			times[i] = r.cw.Times[i]
		}
	}
	if r.coeff != nil {
		// Carry the already-decoded coarse cube into the corner of the
		// finer layout: coefficient coordinates are resolution-stable in
		// the Mallat corner layout.
		old := r.coeff.Dims
		for i := range datas {
			src := r.coeff.Slices[i].Data
			for z := 0; z < old.Nz; z++ {
				for y := 0; y < old.Ny; y++ {
					srcBase := (z*old.Ny + y) * old.Nx
					dstBase := (z*sub.Ny + y) * sub.Nx
					copy(datas[i][dstBase:dstBase+old.Nx], src[srcBase:srcBase+old.Nx])
				}
			}
		}
	}
	if err := scatterLevels(r.cw, datas, sub, r.level+1, toLevel, workers); err != nil {
		return err
	}
	r.coeff = &grid.Window{Dims: sub, Slices: slices, Times: times}
	r.level = toLevel
	return nil
}

// Materialize inverts a copy of the refined coefficient state into
// sample space at the current level's resolution. The refiner remains
// usable for further Advance calls. A full refinement (level ==
// SpatialLevels) materializes bit-identically to Decompress.
func (r *Refiner) Materialize() (*grid.Window, error) {
	if r.level < 0 {
		return nil, fmt.Errorf("core: refiner has no levels applied; call Advance first")
	}
	w := r.coeff.Clone()
	spec := transform.Spec{
		SpatialKernel:  r.cw.Opts.SpatialKernel,
		SpatialLevels:  r.level,
		TemporalKernel: r.cw.Opts.TemporalKernel,
		TemporalLevels: r.cw.TemporalLevels,
		Workers:        r.cw.Opts.Workers,
	}
	if err := transform.Inverse4D(w, spec); err != nil {
		return nil, fmt.Errorf("core: inverse transform: %w", err)
	}
	datas := make([][]float64, len(w.Slices))
	for i, f := range w.Slices {
		datas[i] = f.Data
	}
	approxRescale(datas, r.cw.SpatialLevels-r.level, r.workers)
	return w, nil
}

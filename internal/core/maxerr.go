package core

import (
	"fmt"
	"math"

	"stwave/internal/codec"
	"stwave/internal/grid"
	"stwave/internal/par"
	"stwave/internal/scratch"
	"stwave/internal/transform"
)

// Error-bounded thresholding (Options.MaxErr): instead of ranking
// coefficients to a ratio budget, each coefficient is dropped when its
// magnitude falls under a per-band threshold, and the resulting bound is
// then *verified* on the exact encoded stream — codec roundtrip followed
// by the inverse transform, compared sample-by-sample against the
// original window. Verification is what makes the bound honest: wavelet
// band gains, accumulation across dropped coefficients, and codec
// quantization (the sparse backend stores float32 values, the entropy
// backend quantizes) all land in the measured error, so the loop
// tightens the violating class's threshold and re-verifies until the
// bound holds. A bound below the codec's quantization floor is reported
// as a typed error rather than silently missed.

// maxErrIters bounds the tighten-and-verify loop; each iteration halves
// a violating threshold, so 24 iterations cover a 2^24 tightening range
// before the bound is declared unreachable.
const maxErrIters = 24

// supportMargin is the half-width, in cells at a coefficient's own
// level, of the spatial support attributed to it for ROI
// classification: CDF 9/7's 9-tap filter reaches 4 samples either side,
// so any coefficient whose (conservatively widened) support touches the
// ROI box is held to the ROI bound.
const supportMargin = 4

const (
	depthMask   = 0x7f
	roiClassBit = 0x80
)

// axisBands returns, for one axis of length n under a levels-deep
// transform, the per-coordinate band depth (deepest approximation cube
// containing the coordinate) and the fine-coordinate support interval
// [lo, hi) of the coefficient along that axis. A Mallat coordinate in
// the level-(m+1) detail band at band offset xb sits over spatial
// position (2*xb+1)*2^m; an approximation coordinate x sits over
// x*2^levels. The margin widens the interval by the lifting filter's
// reach so ROI classification errs toward the tighter bound.
func axisBands(n, levels int) (depth []int, lo, hi []int) {
	cube := make([]int, levels+1)
	cube[0] = n
	for m := 1; m <= levels; m++ {
		cube[m] = (cube[m-1] + 1) / 2
	}
	depth = make([]int, n)
	lo = make([]int, n)
	hi = make([]int, n)
	shift := func(v, s int) int {
		// Coordinates are bounded by maxHeaderAxis (2^20); a shift past
		// 21 bits already covers any axis, so cap it to keep the
		// arithmetic in range for forged 64-level headers.
		if s > 21 {
			s = 21
		}
		return v << s
	}
	for x := 0; x < n; x++ {
		m := 0
		for m < levels && x < cube[m+1] {
			m++
		}
		depth[x] = m
		var center, reach int
		if m == levels {
			center = shift(x, levels)
			reach = shift(supportMargin+1, levels)
		} else {
			xb := x - cube[m+1]
			center = shift(2*xb+1, m)
			reach = shift(supportMargin+1, m+1)
		}
		lo[x] = center - reach
		hi[x] = center + reach + 1
	}
	return depth, lo, hi
}

// classifySpatial labels every grid point of the Mallat layout with its
// band depth (the deepest approximation cube containing it; the
// approximation band itself gets depth L) in the low bits, and the ROI
// class bit when the coefficient's spatial support intersects roi.
func classifySpatial(d grid.Dims, levels int, roi *ROIBounds) []uint8 {
	dx, lox, hix := axisBands(d.Nx, levels)
	dy, loy, hiy := axisBands(d.Ny, levels)
	dz, loz, hiz := axisBands(d.Nz, levels)

	class := make([]uint8, d.Len())
	idx := 0
	for z := 0; z < d.Nz; z++ {
		zHit := roi != nil && hiz[z] > roi.Z0 && loz[z] < roi.Z1
		for y := 0; y < d.Ny; y++ {
			yHit := zHit && hiy[y] > roi.Y0 && loy[y] < roi.Y1
			for x := 0; x < d.Nx; x++ {
				m := dx[x]
				if dy[y] < m {
					m = dy[y]
				}
				if dz[z] < m {
					m = dz[z]
				}
				cl := uint8(m)
				if yHit && hix[x] > roi.X0 && lox[x] < roi.X1 {
					cl |= roiClassBit
				}
				class[idx] = cl
				idx++
			}
		}
	}
	return class
}

// temporalDepths returns the temporal band depth of each slice index
// after a levels-deep in-place 1D pyramid over t slices: detail indices
// created at level l get depth l, the final approximation prefix gets
// the full depth. The pyramid lengths mirror the temporal transform's
// ((n+1)/2 halving).
func temporalDepths(t, levels int) []int {
	ed := make([]int, t)
	n := t
	depth := 0
	for l := 0; l < levels && n >= 2; l++ {
		h := (n + 1) / 2
		for i := h; i < n; i++ {
			ed[i] = l + 1
		}
		n = h
		depth = l + 1
	}
	for i := 0; i < n && depth > 0; i++ {
		ed[i] = depth
	}
	return ed
}

// thresholdMaxErr runs the error-bounded threshold-encode-verify loop
// over the transformed coefficients in datas, filling cw's block layout
// (progressive or slice-major per Options) with the verified encoding
// and recording the achieved error maxima. orig is the untransformed
// window the bound is measured against; datas are consumed as scratch.
func (c *Compressor) thresholdMaxErr(orig *grid.Window, datas [][]float64, spec transform.Spec, workers int, cw *CompressedWindow) error {
	dims := orig.Dims
	t, s := len(datas), dims.Len()
	levels := spec.SpatialLevels
	roi := c.opts.ROI
	if roi != nil && (roi.X1 > dims.Nx || roi.Y1 > dims.Ny || roi.Z1 > dims.Nz) {
		return fmt.Errorf("core: ROI box [%d,%d)x[%d,%d)x[%d,%d) exceeds grid %v",
			roi.X0, roi.X1, roi.Y0, roi.Y1, roi.Z0, roi.Z1, dims)
	}
	class := classifySpatial(dims, levels, roi)
	et := temporalDepths(t, spec.TemporalLevels)

	// gain[e] = sqrt(2)^e: the amplitude a unit sample contributes to a
	// band with combined spatial+temporal depth e, used to translate the
	// sample-space bound into per-band coefficient thresholds. The
	// verification pass below is authoritative; the weights only steer
	// how quickly it converges.
	maxExp := 3*levels + spec.TemporalLevels + 1
	gain := make([]float64, maxExp+1)
	for e := range gain {
		gain[e] = math.Pow(math.Sqrt2, float64(e))
	}

	saved := scratch.Floats(t * s)
	defer scratch.PutFloats(saved)
	for i, d := range datas {
		copy(saved[i*s:(i+1)*s], d)
	}
	vslab := scratch.Floats(t * s)
	defer scratch.PutFloats(vslab)
	vfields := make([]grid.Field3D, t)
	vslices := make([]*grid.Field3D, t)
	vdatas := make([][]float64, t)
	for i := range vfields {
		d := vslab[i*s : (i+1)*s : (i+1)*s]
		vfields[i] = grid.Field3D{Dims: dims, Data: d}
		vslices[i] = &vfields[i]
		vdatas[i] = d
	}
	vw := &grid.Window{Dims: dims, Slices: vslices, Times: orig.Times}

	cdc := c.opts.codec()
	tauBG := c.opts.MaxErr / 2
	tauROI := 0.0
	if roi != nil {
		tauROI = roi.MaxErr / 2
	}
	var bgMax, roiMax float64
	roiTightenings := 0
	for iter := 0; iter < maxErrIters; iter++ {
		// Restore the full coefficient set and drop everything under the
		// current per-class thresholds.
		par.For(t, workers, 1, func(start, end int) {
			for i := start; i < end; i++ {
				d := datas[i]
				copy(d, saved[i*s:(i+1)*s])
				te := et[i]
				for j, v := range d {
					cl := class[j]
					tau := tauBG
					if cl&roiClassBit != 0 {
						tau = tauROI
					}
					if math.Abs(v) <= tau*gain[3*int(cl&depthMask)+te] {
						d[j] = 0
					}
				}
			}
		})

		// Encode exactly as the window will be stored, then decode the
		// encoded blocks back: the verified stream is the written stream.
		var blocks []codec.Block
		var levelBlocks [][]codec.Block
		var err error
		if c.opts.Progressive {
			levelBlocks, err = encodeProgressiveOf(cdc, datas, dims, levels, workers)
		} else {
			blocks, err = cdc.EncodeSlices(datas, workers)
			if err != nil {
				err = fmt.Errorf("core: %s encode: %w", cdc.Name(), err)
			}
		}
		if err != nil {
			return err
		}
		if c.opts.Progressive {
			tmp := &CompressedWindow{Dims: dims, Opts: c.opts, SpatialLevels: levels, LevelBlocks: levelBlocks}
			if err := scatterLevels(tmp, vdatas, dims, 0, levels, workers); err != nil {
				return err
			}
		} else {
			errs := make([]error, t)
			outer, inner := par.Split(workers, t)
			par.For(t, outer, 1, func(start, end int) {
				for i := start; i < end; i++ {
					errs[i] = blocks[i].DecodeInto(vdatas[i], inner)
				}
			})
			for _, derr := range errs {
				if derr != nil {
					return derr
				}
			}
		}
		if err := transform.Inverse4D(vw, spec); err != nil {
			return fmt.Errorf("core: verification inverse transform: %w", err)
		}

		bgMax, roiMax = measureMaxErr(orig, vw, roi, workers)
		bgOK := bgMax <= c.opts.MaxErr
		roiOK := roi == nil || roiMax <= roi.MaxErr
		if bgOK && roiOK {
			cw.Blocks = blocks
			cw.LevelBlocks = levelBlocks
			cw.MaxErrAchieved = bgMax
			cw.ROIMaxErrAchieved = roiMax
			return nil
		}
		if !bgOK {
			tauBG /= 2
		}
		if !roiOK {
			tauROI /= 2
			roiTightenings++
			// If several ROI tightenings have not closed the gap, the
			// residual comes from background-class coefficients whose
			// support spills into the box (the classification margin is
			// conservative, not exact) — tighten those too.
			if roiTightenings >= 4 {
				tauBG /= 2
			}
		}
		if (tauBG > 0 && tauBG < math.SmallestNonzeroFloat64*1e16) ||
			(tauROI > 0 && tauROI < math.SmallestNonzeroFloat64*1e16) {
			break
		}
	}
	return fmt.Errorf("core: error bound unreachable for codec %s (achieved background %g > %g or ROI %g): "+
		"the codec's quantization floor may exceed the requested bound", cdc.Name(), bgMax, c.opts.MaxErr, roiMax)
}

// measureMaxErr returns the maximum absolute sample error outside and
// inside the ROI box (roiMax is zero when roi is nil).
func measureMaxErr(orig, recon *grid.Window, roi *ROIBounds, workers int) (bgMax, roiMax float64) {
	t := len(orig.Slices)
	d := orig.Dims
	bg := make([]float64, t)
	ri := make([]float64, t)
	par.For(t, workers, 1, func(start, end int) {
		for i := start; i < end; i++ {
			a, b := orig.Slices[i].Data, recon.Slices[i].Data
			var mbg, mroi float64
			idx := 0
			for z := 0; z < d.Nz; z++ {
				for y := 0; y < d.Ny; y++ {
					inRow := roi != nil && z >= roi.Z0 && z < roi.Z1 && y >= roi.Y0 && y < roi.Y1
					for x := 0; x < d.Nx; x++ {
						e := math.Abs(a[idx] - b[idx])
						if inRow && x >= roi.X0 && x < roi.X1 {
							if e > mroi {
								mroi = e
							}
						} else if e > mbg {
							mbg = e
						}
						idx++
					}
				}
			}
			bg[i], ri[i] = mbg, mroi
		}
	})
	for i := 0; i < t; i++ {
		if bg[i] > bgMax {
			bgMax = bg[i]
		}
		if ri[i] > roiMax {
			roiMax = ri[i]
		}
	}
	return bgMax, roiMax
}

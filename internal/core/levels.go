package core

import (
	"fmt"

	"stwave/internal/grid"
	"stwave/internal/num"
	"stwave/internal/transform"
)

// LevelGroup describes one independently addressable band group of the
// level-major progressive layout. Group 0 is the approximation cube left
// after all spatial levels; group g > 0 is the detail shell produced by
// spatial level L-g+1 — the coefficients inside cube Outer but outside
// cube Inner of the Mallat corner layout. Groups are ordered coarsest
// first, so a byte prefix of the level-major payload always carries a
// complete low-resolution reconstruction.
type LevelGroup struct {
	// Outer is the approximation-cube extent bounding the group
	// (CoarseDims of the grid at L-g levels).
	Outer grid.Dims
	// Inner is the next-coarser cube excluded from the group; the zero
	// value for group 0, whose shell is the whole approximation cube.
	Inner grid.Dims
	// Count is the number of coefficients in the group.
	Count int
}

// LevelGroups partitions a grid's Mallat corner layout into
// spatialLevels+1 level groups: the approximation cube plus one detail
// shell per level, coarsest first. The group counts always sum to
// d.Len(), so gathering every group is a permutation of the full
// coefficient set.
func LevelGroups(d grid.Dims, spatialLevels int) []LevelGroup {
	if spatialLevels < 0 {
		spatialLevels = 0
	}
	groups := make([]LevelGroup, spatialLevels+1)
	for g := 0; g <= spatialLevels; g++ {
		outer := transform.CoarseDims(d, spatialLevels-g)
		lg := LevelGroup{Outer: outer}
		if g > 0 {
			lg.Inner = transform.CoarseDims(d, spatialLevels-g+1)
		}
		lg.Count = outer.Len() - lg.Inner.Len()
		groups[g] = lg
	}
	return groups
}

// groupRows invokes fn(srcRowBase, x0, n) for every canonical-order row
// run of the group within a grid of dims rowDims, where srcRowBase is
// the flat index of (0, y, z) in that grid, x0 the first X coordinate of
// the run, and n its length. rowDims must contain the group's Outer
// cube. Iteration order is z-major then y — the canonical gather order
// shared by the encoder, the decoder, and the format specification.
func groupRows(g LevelGroup, rowDims grid.Dims, fn func(rowBase, x0, n int)) {
	for z := 0; z < g.Outer.Nz; z++ {
		for y := 0; y < g.Outer.Ny; y++ {
			x0 := 0
			if z < g.Inner.Nz && y < g.Inner.Ny {
				x0 = g.Inner.Nx
			}
			n := g.Outer.Nx - x0
			if n <= 0 {
				continue
			}
			fn((z*rowDims.Ny+y)*rowDims.Nx, x0, n)
		}
	}
}

// gatherGroup copies the group's coefficients out of a full-grid Mallat
// layout (dims full) into dst in canonical order, returning the number
// of coefficients written. dst must have room for g.Count values.
func gatherGroup[F num.Float](dst, src []F, full grid.Dims, g LevelGroup) int {
	n := 0
	groupRows(g, full, func(rowBase, x0, runLen int) {
		copy(dst[n:n+runLen], src[rowBase+x0:rowBase+x0+runLen])
		n += runLen
	})
	return n
}

// scatterGroup writes the group's canonical-order coefficients from src
// into a Mallat layout of dims sub. sub may be any approximation cube
// that contains g.Outer — scattering into CoarseDims(d, L-K) places the
// group at the same (x, y, z) coordinates it occupied in the full grid,
// which is what makes partial reconstruction a plain K-level inverse.
func scatterGroup[F num.Float](dst []F, sub grid.Dims, src []F, g LevelGroup) int {
	n := 0
	groupRows(g, sub, func(rowBase, x0, runLen int) {
		copy(dst[rowBase+x0:rowBase+x0+runLen], src[n:n+runLen])
		n += runLen
	})
	return n
}

// validateLevelGeometry checks that a group partition is consistent with
// the grid it claims to cover — the guard both serialization paths run
// before trusting group counts.
func validateLevelGeometry(d grid.Dims, spatialLevels int, numGroups int) error {
	if numGroups < 1 || numGroups > spatialLevels+1 {
		return fmt.Errorf("core: %d level groups outside [1, %d] for %d spatial levels",
			numGroups, spatialLevels+1, spatialLevels)
	}
	if !d.Valid() {
		return fmt.Errorf("core: invalid dims %v", d)
	}
	return nil
}

package core

import (
	"bytes"
	"math"
	"testing"

	"stwave/internal/codec"
	"stwave/internal/grid"
	"stwave/internal/wavelet"
)

// coherentWindow32 is coherentWindow filled at float32: the same smooth
// spatiotemporal field, narrowed once at the fill point the way a
// single-precision solver would produce it.
func coherentWindow32(d grid.Dims, slices int, phase float64) *grid.Window32 {
	w := grid.NewWindowOf[float32](d)
	for t := 0; t < slices; t++ {
		f := grid.NewField3DOf[float32](d.Nx, d.Ny, d.Nz)
		tt := float64(t) * 0.05
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 0; x < d.Nx; x++ {
					fx := float64(x) / float64(d.Nx)
					fy := float64(y) / float64(d.Ny)
					fz := float64(z) / float64(d.Nz)
					v := math.Sin(2*math.Pi*(fx+tt)+phase)*math.Cos(2*math.Pi*fy) +
						0.5*math.Sin(2*math.Pi*(2*fz-tt))
					f.Set(x, y, z, float32(v))
				}
			}
		}
		if err := w.Append(f, float64(t)); err != nil {
			panic(err)
		}
	}
	return w
}

func windows32BitIdentical(t *testing.T, a, b *grid.Window32, label string) {
	t.Helper()
	if a.Dims != b.Dims || len(a.Slices) != len(b.Slices) {
		t.Fatalf("%s: shape mismatch: %v/%d vs %v/%d", label, a.Dims, len(a.Slices), b.Dims, len(b.Slices))
	}
	for i := range a.Slices {
		av, bv := a.Slices[i].Data, b.Slices[i].Data
		for j := range av {
			if math.Float32bits(av[j]) != math.Float32bits(bv[j]) {
				t.Fatalf("%s: slice %d sample %d differs: %g vs %g", label, i, j, av[j], bv[j])
			}
		}
	}
}

// window32NRMSE computes the range-normalized RMSE between two float32
// windows in float64 accumulation.
func window32NRMSE(t *testing.T, orig, recon *grid.Window32) float64 {
	t.Helper()
	var sum float64
	var n int
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range orig.Slices {
		a, b := orig.Slices[i].Data, recon.Slices[i].Data
		if len(a) != len(b) {
			t.Fatalf("slice %d length mismatch", i)
		}
		for j := range a {
			d := float64(a[j]) - float64(b[j])
			sum += d * d
			n++
			lo = math.Min(lo, float64(a[j]))
			hi = math.Max(hi, float64(a[j]))
		}
	}
	if hi <= lo {
		return 0
	}
	return math.Sqrt(sum/float64(n)) / (hi - lo)
}

func TestPrecisionStringsAndParse(t *testing.T) {
	if Float64.String() != "f64" || Float32.String() != "f32" {
		t.Fatalf("precision strings: %q %q", Float64.String(), Float32.String())
	}
	if Float64.SampleBytes() != 8 || Float32.SampleBytes() != 4 {
		t.Fatalf("sample bytes: %d %d", Float64.SampleBytes(), Float32.SampleBytes())
	}
	for _, tc := range []struct {
		in   string
		want Precision
	}{
		{"", Float64}, {"f64", Float64}, {"float64", Float64},
		{"f32", Float32}, {"float32", Float32},
	} {
		got, err := ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePrecision(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("ParsePrecision accepted f16")
	}
}

func TestFloat32CompressSerializeRoundTrip(t *testing.T) {
	d := grid.Dims{Nx: 14, Ny: 12, Nz: 10}
	w := coherentWindow32(d, 10, 0.3)
	for _, cdc := range []codec.Codec{codec.Sparse(), codec.Entropy()} {
		o := DefaultOptions()
		o.WindowSize = 10
		o.Ratio = 8
		o.Codec = cdc
		o.Precision = Float32
		c, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		cw, err := c.CompressWindow32(w)
		if err != nil {
			t.Fatalf("%s: compress32: %v", cdc.Name(), err)
		}
		if cw.Precision != Float32 {
			t.Fatalf("%s: compressed window precision = %v, want Float32", cdc.Name(), cw.Precision)
		}

		var buf bytes.Buffer
		if _, err := cw.WriteTo(&buf); err != nil {
			t.Fatalf("%s: write: %v", cdc.Name(), err)
		}
		raw := buf.Bytes()
		if raw[4]&0x40 == 0 {
			t.Fatalf("%s: header byte 4 = %#x, precision flag not set", cdc.Name(), raw[4])
		}

		wi, err := ReadWindowInfo(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: window info: %v", cdc.Name(), err)
		}
		if wi.Precision != Float32 {
			t.Fatalf("%s: WindowInfo precision = %v, want Float32", cdc.Name(), wi.Precision)
		}
		if want := int64(d.Len()) * 10 * 4; wi.RawSizeBytes() != want {
			t.Fatalf("%s: raw size %d, want %d (4 bytes/sample)", cdc.Name(), wi.RawSizeBytes(), want)
		}

		back, err := ReadCompressedWindow(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: read: %v", cdc.Name(), err)
		}
		if back.Precision != Float32 || back.Opts.Precision != Float32 {
			t.Fatalf("%s: deserialized precision %v/%v, want Float32", cdc.Name(), back.Precision, back.Opts.Precision)
		}

		a, err := Decompress32(cw)
		if err != nil {
			t.Fatalf("%s: decompress32: %v", cdc.Name(), err)
		}
		b, err := Decompress32(back)
		if err != nil {
			t.Fatalf("%s: decompress32 (deserialized): %v", cdc.Name(), err)
		}
		windows32BitIdentical(t, a, b, cdc.Name()+" f32 serialize roundtrip")
		if e := window32NRMSE(t, w, a); e > 0.05 {
			t.Fatalf("%s: f32 NRMSE %g too large", cdc.Name(), e)
		}
	}
}

func TestLegacyFloat64HeaderHasNoPrecisionFlag(t *testing.T) {
	d := grid.Dims{Nx: 10, Ny: 8, Nz: 6}
	w := coherentWindow(d, 8, 0)
	o := DefaultOptions()
	o.WindowSize = 8
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if raw[4]&0x40 != 0 {
		t.Fatalf("float64 window set the precision flag: header byte 4 = %#x", raw[4])
	}
	back, err := ReadCompressedWindow(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if back.Precision != Float64 {
		t.Fatalf("float64 container read back as %v", back.Precision)
	}
}

func TestFloat32ProgressiveLevels(t *testing.T) {
	d := grid.Dims{Nx: 13, Ny: 11, Nz: 9}
	w := coherentWindow32(d, 10, 0.7)
	o := DefaultOptions()
	o.WindowSize = 10
	o.Ratio = 8
	o.Progressive = true
	o.Workers = 2
	o.Precision = Float32
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.CompressWindow32(w)
	if err != nil {
		t.Fatal(err)
	}
	if !cw.Progressive() {
		t.Fatal("window is not progressive")
	}

	full, err := Decompress32(cw)
	if err != nil {
		t.Fatal(err)
	}
	viaLevels, err := DecompressLevels32(cw, cw.SpatialLevels)
	if err != nil {
		t.Fatal(err)
	}
	windows32BitIdentical(t, full, viaLevels, "f32 progressive full refine")

	coarse, err := DecompressLevels32(cw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse.Slices) != len(full.Slices) {
		t.Fatalf("coarse window has %d slices, want %d", len(coarse.Slices), len(full.Slices))
	}
	if coarse.Dims == full.Dims {
		t.Fatalf("level-0 decode did not coarsen dims: %v", coarse.Dims)
	}

	var buf bytes.Buffer
	if _, err := cw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCompressedWindow(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Decompress32(back)
	if err != nil {
		t.Fatal(err)
	}
	windows32BitIdentical(t, full, again, "f32 progressive serialize roundtrip")
}

func TestFloat32MaxErrRejected(t *testing.T) {
	o := DefaultOptions()
	o.MaxErr = 1e-3
	o.Precision = Float32
	if err := o.Validate(); err == nil {
		t.Fatal("Validate accepted MaxErr at Float32")
	}
	o.Precision = Float64
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	if _, err := NewWriter32(o, d, func(*CompressedWindow) error { return nil }); err == nil {
		t.Fatal("NewWriter32 accepted MaxErr options")
	}
	if _, err := NewAsyncWriter32(o, d, 2, func(*CompressedWindow) error { return nil }); err == nil {
		t.Fatal("NewAsyncWriter32 accepted MaxErr options")
	}
}

func TestFloat32WorkerBitDeterminism(t *testing.T) {
	d := grid.Dims{Nx: 15, Ny: 9, Nz: 7}
	w := coherentWindow32(d, 10, 0.1)
	var ref []byte
	for _, workers := range []int{1, 2, 4, 7} {
		o := DefaultOptions()
		o.WindowSize = 10
		o.Ratio = 10
		o.Workers = workers
		o.Precision = Float32
		c, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		cw, err := c.CompressWindow32(w.Clone())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := cw.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("workers=%d produced different serialized bytes", workers)
		}
	}
}

func TestDecompressSlice32MatchesFull(t *testing.T) {
	d := grid.Dims{Nx: 12, Ny: 10, Nz: 8}
	w := coherentWindow32(d, 10, 0.4)
	o := DefaultOptions()
	o.WindowSize = 10
	o.Ratio = 8
	o.Precision = Float32
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.CompressWindow32(w)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress32(cw)
	if err != nil {
		t.Fatal(err)
	}
	for _, slice := range []int{0, 5, 9} {
		f, err := DecompressSlice32(cw, slice)
		if err != nil {
			t.Fatal(err)
		}
		for j := range f.Data {
			if math.Float32bits(f.Data[j]) != math.Float32bits(full.Slices[slice].Data[j]) {
				t.Fatalf("slice %d sample %d differs from full decode", slice, j)
			}
		}
	}
}

func TestWriter32Stream(t *testing.T) {
	d := grid.Dims{Nx: 10, Ny: 8, Nz: 6}
	o := DefaultOptions()
	o.WindowSize = 4
	var got []*CompressedWindow
	w, err := NewWriter32(o, d, func(cw *CompressedWindow) error {
		got = append(got, cw)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	src := coherentWindow32(d, 10, 0.2)
	for i, f := range src.Slices {
		if err := w.WriteSlice(f, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d windows, want 3 (4+4+2 slices)", len(got))
	}
	for i, cw := range got {
		if cw.Precision != Float32 {
			t.Fatalf("window %d precision %v, want Float32", i, cw.Precision)
		}
	}
	st := w.Stats()
	if st.SlicesIn != 10 || st.WindowsOut != 3 || st.PendingSlices != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if want := int64(d.Len()) * 4 * 4; st.PeakBufferSize != want {
		t.Fatalf("peak buffer %d bytes, want %d (float32 samples)", st.PeakBufferSize, want)
	}
}

func TestAsyncWriter32MatchesSync(t *testing.T) {
	d := grid.Dims{Nx: 10, Ny: 8, Nz: 6}
	o := DefaultOptions()
	o.WindowSize = 5
	o.Workers = 2

	serialize := func(cw *CompressedWindow) []byte {
		var buf bytes.Buffer
		if _, err := cw.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var syncOut [][]byte
	sw, err := NewWriter32(o, d, func(cw *CompressedWindow) error {
		syncOut = append(syncOut, serialize(cw))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var asyncOut [][]byte
	aw, err := NewAsyncWriter32(o, d, 3, func(cw *CompressedWindow) error {
		asyncOut = append(asyncOut, serialize(cw))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	src := coherentWindow32(d, 10, 0.6)
	for i, f := range src.Slices {
		if err := sw.WriteSlice(f, float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := aw.WriteSlice(f, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := aw.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(syncOut) != len(asyncOut) {
		t.Fatalf("sync %d windows vs async %d", len(syncOut), len(asyncOut))
	}
	for i := range syncOut {
		if !bytes.Equal(syncOut[i], asyncOut[i]) {
			t.Fatalf("window %d differs between sync and async f32 writers", i)
		}
	}
}

// widen64 lifts a float32 window to float64 bit-exactly, so both
// pipelines see numerically identical inputs.
func widen64(w *grid.Window32) *grid.Window {
	out := grid.NewWindow(w.Dims)
	for i, s := range w.Slices {
		f := grid.NewField3D(w.Dims.Nx, w.Dims.Ny, w.Dims.Nz)
		for j, v := range s.Data {
			f.Data[j] = float64(v)
		}
		if err := out.Append(f, w.Times[i]); err != nil {
			panic(err)
		}
	}
	return out
}

// TestFloat32PipelineMatchesOracle runs the full compress/decompress
// round trip at both precisions on identical inputs, over every window
// shape the pipeline ships (1/10/20/40 slices) and both kernels, and
// requires the float32 reconstruction to match the float64 oracle:
//
//   - the reported quality (PSNR, i.e. -20*log10(NRMSE)) must agree
//     within 0.2 dB — the "equal reported PSNR" acceptance bar; and
//   - the two reconstructions must agree to below the compression error
//     itself, so precision is never the dominant loss term.
//
// The bound is analytic in origin: away from threshold ties, float32
// rounding contributes O(levels*eps32) ~ 1e-6 relative error (see the
// wavelet and transform oracle tests); at the cutoff, the kept sets may
// differ and each swap costs the cutoff magnitude, which is what the
// thresholding already discards — so the cross error is bounded by the
// compression-error scale and the reported quality is unchanged.
func TestFloat32PipelineMatchesOracle(t *testing.T) {
	d := grid.Dims{Nx: 14, Ny: 12, Nz: 10}
	for _, kernel := range []wavelet.Kernel{wavelet.CDF97, wavelet.CDF53} {
		for _, slices := range []int{1, 10, 20, 40} {
			w32 := coherentWindow32(d, slices, 0.3)
			w64 := widen64(w32)

			o := DefaultOptions()
			o.WindowSize = slices
			if slices == 1 {
				// A single-slice window is the per-slice 3D mode.
				o.Mode = Spatial3D
				o.WindowSize = DefaultOptions().WindowSize
			}
			o.Ratio = 8
			o.SpatialKernel = kernel
			o.TemporalKernel = kernel
			c, err := New(o)
			if err != nil {
				t.Fatal(err)
			}
			cw64, err := c.CompressWindow(w64)
			if err != nil {
				t.Fatalf("%v slices=%d: f64 compress: %v", kernel, slices, err)
			}
			recon64, err := Decompress(cw64)
			if err != nil {
				t.Fatalf("%v slices=%d: f64 decompress: %v", kernel, slices, err)
			}

			o32 := o
			o32.Precision = Float32
			c32, err := New(o32)
			if err != nil {
				t.Fatal(err)
			}
			cw32, err := c32.CompressWindow32(w32)
			if err != nil {
				t.Fatalf("%v slices=%d: f32 compress: %v", kernel, slices, err)
			}
			recon32, err := Decompress32(cw32)
			if err != nil {
				t.Fatalf("%v slices=%d: f32 decompress: %v", kernel, slices, err)
			}

			nrmse64 := windowNRMSE(t, w64, recon64)
			nrmse32 := window32NRMSE(t, w32, recon32)
			if nrmse64 <= 0 {
				t.Fatalf("%v slices=%d: degenerate f64 NRMSE %g", kernel, slices, nrmse64)
			}
			dbDiff := math.Abs(20 * math.Log10(nrmse32/nrmse64))
			if dbDiff > 0.2 {
				t.Errorf("%v slices=%d: PSNR differs by %.3f dB (f64 NRMSE %g, f32 NRMSE %g)",
					kernel, slices, dbDiff, nrmse64, nrmse32)
			}

			// Cross-reconstruction agreement: narrow the f64 oracle output
			// and compare sample-wise against the f32 reconstruction.
			var sum float64
			var n int
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := range recon64.Slices {
				a, b := recon64.Slices[i].Data, recon32.Slices[i].Data
				for j := range a {
					diff := a[j] - float64(b[j])
					sum += diff * diff
					n++
					lo = math.Min(lo, a[j])
					hi = math.Max(hi, a[j])
				}
			}
			// The two pipelines may keep slightly different coefficient
			// sets near the threshold cutoff (float32 magnitudes tie-break
			// differently), and a swapped coefficient perturbs the
			// reconstruction by the cutoff magnitude — the compression-
			// error scale. Away from ties the disagreement is at rounding
			// scale, so the cross-reconstruction error stays strictly
			// below the compression error; equality of reported PSNR above
			// is the quality bar.
			cross := math.Sqrt(sum/float64(n)) / (hi - lo)
			if cross > 0.5*nrmse64 {
				t.Errorf("%v slices=%d: f32-vs-f64 reconstruction NRMSE %g exceeds half the compression error %g",
					kernel, slices, cross, nrmse64)
			}
		}
	}
}

package core

import (
	"math"
	"testing"

	"stwave/internal/grid"
	"stwave/internal/num"
)

// benchWindow builds a temporally coherent window matching the perf
// suite's workload shape.
func benchWindow(n, slices int) *grid.Window {
	d := grid.Dims{Nx: n, Ny: n, Nz: n}
	w := grid.NewWindow(d)
	for t := 0; t < slices; t++ {
		f := grid.NewField3D(n, n, n)
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					f.Data[f.Index(x, y, z)] = math.Sin(0.3*float64(x)+0.1*float64(t)) *
						math.Cos(0.2*float64(y)) * math.Sin(0.25*float64(z)+0.05*float64(t))
				}
			}
		}
		if err := w.Append(f, float64(t)); err != nil {
			panic(err)
		}
	}
	return w
}

func benchWindow32(src *grid.Window) *grid.Window32 {
	w := grid.NewWindow32(src.Dims)
	for i, s := range src.Slices {
		f := grid.NewField3D32(src.Dims.Nx, src.Dims.Ny, src.Dims.Nz)
		num.Convert(f.Data, s.Data)
		if err := w.Append(f, src.Times[i]); err != nil {
			panic(err)
		}
	}
	return w
}

func benchCompressor(b *testing.B) *Compressor {
	opts := DefaultOptions()
	opts.WindowSize = 5
	opts.Ratio = 32
	comp, err := New(opts)
	if err != nil {
		b.Fatal(err)
	}
	return comp
}

func BenchmarkCompressWindow(b *testing.B) {
	w := benchWindow(24, 10)
	comp := benchCompressor(b)
	b.SetBytes(int64(w.TotalSamples()) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.CompressWindow(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressWindow32(b *testing.B) {
	w := benchWindow32(benchWindow(24, 10))
	comp := benchCompressor(b)
	b.SetBytes(int64(w.TotalSamples()) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.CompressWindow32(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressWindow(b *testing.B) {
	w := benchWindow(24, 10)
	comp := benchCompressor(b)
	cw, err := comp.CompressWindow(w)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(w.TotalSamples()) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(cw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressWindow32(b *testing.B) {
	w := benchWindow32(benchWindow(24, 10))
	comp := benchCompressor(b)
	cw, err := comp.CompressWindow32(w)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(w.TotalSamples()) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress32(cw); err != nil {
			b.Fatal(err)
		}
	}
}

package core_test

import (
	"fmt"
	"math"

	"stwave/internal/core"
	"stwave/internal/grid"
)

// buildWindow makes a deterministic smooth time-varying field.
func buildWindow() *grid.Window {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	w := grid.NewWindow(d)
	for t := 0; t < 20; t++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 0; x < d.Nx; x++ {
					phase := 2 * math.Pi * (float64(x)/16 + 0.02*float64(t))
					f.Set(x, y, z, math.Sin(phase)*math.Cos(2*math.Pi*float64(y)/16))
				}
			}
		}
		if err := w.Append(f, float64(t)); err != nil {
			panic(err)
		}
	}
	return w
}

// Example demonstrates the basic compress/decompress round trip with the
// paper's sweet-spot configuration.
func Example() {
	window := buildWindow()

	comp, err := core.New(core.DefaultOptions()) // 4D, CDF 9/7, window 20, 32:1
	if err != nil {
		panic(err)
	}
	compressed, err := comp.CompressWindow(window)
	if err != nil {
		panic(err)
	}
	recon, err := core.Decompress(compressed)
	if err != nil {
		panic(err)
	}

	fmt.Printf("slices: %d -> %d\n", window.Len(), recon.Len())
	fmt.Printf("kept %d of %d coefficients\n",
		compressed.RetainedCoefficients(), window.TotalSamples())
	// Output:
	// slices: 20 -> 20
	// kept 2560 of 81920 coefficients
}

// ExampleNewWriter shows the streaming interface a simulation would use.
func ExampleNewWriter() {
	window := buildWindow()
	flushed := 0
	writer, err := core.NewWriter(core.DefaultOptions(), window.Dims,
		func(cw *core.CompressedWindow) error {
			flushed++
			return nil
		})
	if err != nil {
		panic(err)
	}
	for i, s := range window.Slices {
		if err := writer.WriteSlice(s, float64(i)); err != nil {
			panic(err)
		}
	}
	if err := writer.Flush(); err != nil {
		panic(err)
	}
	fmt.Printf("windows flushed: %d\n", flushed)
	// Output:
	// windows flushed: 1
}

// ExampleDecompressSlice shows single-slice random access from a 4D window.
func ExampleDecompressSlice() {
	window := buildWindow()
	comp, err := core.New(core.DefaultOptions())
	if err != nil {
		panic(err)
	}
	compressed, err := comp.CompressWindow(window)
	if err != nil {
		panic(err)
	}
	slice, err := core.DecompressSlice(compressed, 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("decoded one %v slice from a %d-slice window\n",
		slice.Dims, compressed.NumSlices())
	// Output:
	// decoded one 16x16x16 slice from a 20-slice window
}

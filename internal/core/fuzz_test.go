package core

import (
	"bytes"
	"testing"

	"stwave/internal/grid"
)

// FuzzRecordFrame hammers the record-frame header codec: ParseRecordHeader
// must never panic or read past its input, must reject anything that is
// not a well-formed frame with ErrNotRecord semantics, and any header it
// accepts must re-encode to the identical bytes (the property recovery
// scans rely on to find the end of the durable journal).
func FuzzRecordFrame(f *testing.F) {
	valid := EncodeRecordHeader(RecordHeader{Length: 4096, PayloadCRC: 0xdeadbeef})
	f.Add(valid[:])
	f.Add([]byte("STWR"))
	f.Add([]byte{})
	f.Add(make([]byte, RecordHeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseRecordHeader(data)
		if err != nil {
			return
		}
		if h.Length < 0 {
			t.Fatalf("accepted negative payload length %d", h.Length)
		}
		reenc := EncodeRecordHeader(h)
		if !bytes.Equal(reenc[:], data[:RecordHeaderSize]) {
			t.Fatalf("accepted header does not round-trip: parsed %+v, re-encoded % x, input % x",
				h, reenc[:], data[:RecordHeaderSize])
		}
	})
}

// FuzzGapMarker hammers the gap-marker codec the same way FuzzRecordFrame
// hammers record frames: ParseGapMarker must never panic, must reject
// malformed input with ErrNotGap semantics, and any marker it accepts must
// re-encode to the identical bytes — the property the ingest crash matrix
// relies on when it reconciles a recovered container's timeline.
func FuzzGapMarker(f *testing.F) {
	valid := GapMarker{Slices: 20, T0: 40, T1: 59, Reason: GapShed}.Encode()
	f.Add(valid[:])
	f.Add([]byte("STWG"))
	f.Add([]byte{})
	f.Add(make([]byte, GapMarkerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseGapMarker(data)
		if err != nil {
			return
		}
		if g.Slices < 1 {
			t.Fatalf("accepted non-positive slice count %d", g.Slices)
		}
		reenc := g.Encode()
		if !bytes.Equal(reenc[:], data[:GapMarkerSize]) {
			t.Fatalf("accepted marker does not round-trip: parsed %+v, re-encoded % x, input % x",
				g, reenc[:], data[:GapMarkerSize])
		}
	})
}

// FuzzReadCompressedWindow hammers the window deserializer with mutated
// inputs: it must return an error or a valid window, never panic, and any
// window it accepts must decompress without panicking.
func FuzzReadCompressedWindow(f *testing.F) {
	// Seed with a real serialized window.
	w := coherentWindow(grid.Dims{Nx: 6, Ny: 5, Nz: 4}, 6, 0.2)
	opts := DefaultOptions()
	opts.WindowSize = 6
	opts.Ratio = 4
	comp, err := New(opts)
	if err != nil {
		f.Fatal(err)
	}
	cw, err := comp.CompressWindow(w)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cw.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("STWV"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		cw, err := ReadCompressedWindow(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: decompression may fail but must not panic, and a
		// success must produce the declared shape.
		win, err := Decompress(cw)
		if err != nil {
			return
		}
		if win.Len() != cw.NumSlices() {
			t.Fatalf("decompressed %d slices, header says %d", win.Len(), cw.NumSlices())
		}
		for _, s := range win.Slices {
			if s.Dims != cw.Dims {
				t.Fatalf("slice dims %v != header %v", s.Dims, cw.Dims)
			}
		}
	})
}

// FuzzLevelTable hammers the progressive (v4) level-offset table parser
// and the partial-decode read path: forged group counts, lengths, and
// checksums must fail typed — never panic, never allocate from an
// attacker-controlled length — and anything the parser accepts must
// decode (fully and at level 0) without panicking.
func FuzzLevelTable(f *testing.F) {
	// Seed with a real progressive window.
	w := coherentWindow(grid.Dims{Nx: 6, Ny: 5, Nz: 4}, 6, 0.2)
	opts := DefaultOptions()
	opts.WindowSize = 6
	opts.Ratio = 4
	opts.Progressive = true
	comp, err := New(opts)
	if err != nil {
		f.Fatal(err)
	}
	cw, err := comp.CompressWindow(w)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cw.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("STWV"))
	f.Add([]byte("STLT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if wi, table, start, err := ReadWindowLevelTable(bytes.NewReader(data)); err == nil {
			if len(table.Extents) < 1 || len(table.Extents) > wi.SpatialLevels+1 {
				t.Fatalf("accepted table with %d groups for %d levels", len(table.Extents), wi.SpatialLevels)
			}
			if start < 40 {
				t.Fatalf("accepted payload start %d before the header end", start)
			}
			if table.PrefixBytes(len(table.Extents)-1) < 0 {
				t.Fatal("accepted table with negative total payload")
			}
		}
		if cw, err := ReadCompressedWindowLevels(bytes.NewReader(data), 0); err == nil {
			if _, err := DecompressLevels(cw, 0); err != nil {
				_ = err // partial decode may fail typed, never panic
			}
		}
		cw, err := ReadCompressedWindow(bytes.NewReader(data))
		if err != nil {
			return
		}
		if _, err := Decompress(cw); err != nil {
			return
		}
	})
}

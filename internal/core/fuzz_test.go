package core

import (
	"bytes"
	"testing"

	"stwave/internal/grid"
)

// FuzzReadCompressedWindow hammers the window deserializer with mutated
// inputs: it must return an error or a valid window, never panic, and any
// window it accepts must decompress without panicking.
func FuzzReadCompressedWindow(f *testing.F) {
	// Seed with a real serialized window.
	w := coherentWindow(grid.Dims{Nx: 6, Ny: 5, Nz: 4}, 6, 0.2)
	opts := DefaultOptions()
	opts.WindowSize = 6
	opts.Ratio = 4
	comp, err := New(opts)
	if err != nil {
		f.Fatal(err)
	}
	cw, err := comp.CompressWindow(w)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cw.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("STWV"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		cw, err := ReadCompressedWindow(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: decompression may fail but must not panic, and a
		// success must produce the declared shape.
		win, err := Decompress(cw)
		if err != nil {
			return
		}
		if win.Len() != cw.NumSlices() {
			t.Fatalf("decompressed %d slices, header says %d", win.Len(), cw.NumSlices())
		}
		for _, s := range win.Slices {
			if s.Dims != cw.Dims {
				t.Fatalf("slice dims %v != header %v", s.Dims, cw.Dims)
			}
		}
	})
}

package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Gap markers (container format v3, payload kind "STWG").
//
// The streaming ingest path's shed policy drops whole windows when the
// storage tier cannot keep up with the solver. Dropping bytes is
// acceptable; silently shifting every later window's position on the
// timeline is not — a reader asking for slice 480 must never be handed
// slice 460 because twenty slices were shed an hour earlier. So a shed
// window leaves a journaled gap marker in its place: a tiny self-checking
// payload recording how many slices are missing and the simulation-time
// span they covered. The marker rides the same record framing and footer
// index as a compressed window, so crash recovery, fsck, and degraded
// serving all account for it with the machinery they already have (the
// alignment discipline PR 2 established for corrupt windows).
//
// On-disk payload layout (GapMarkerSize bytes):
//
//	[0:4]   magic "STWG"
//	[4]     version (1)
//	[5]     reason code
//	[6:8]   reserved (zero)
//	[8:12]  dropped slice count (uint32 LE)
//	[12:20] start simulation time (float64 LE)
//	[20:28] end simulation time (float64 LE)
//	[28:32] CRC32-IEEE of bytes [0:28] (uint32 LE)
//
// The trailing CRC is redundant with the record frame's payload CRC but
// makes the marker self-validating wherever it is found — a recovery scan
// that lost the frame header can still recognize an intact marker.
var GapMagic = [4]byte{'S', 'T', 'W', 'G'}

// GapMarkerSize is the fixed serialized size of a gap marker payload.
const GapMarkerSize = 32

const gapVersion = 1

// ErrNotGap reports that bytes handed to ParseGapMarker are not a valid
// gap marker: wrong magic, wrong version, bad checksum, or too short.
var ErrNotGap = errors.New("core: not a gap marker")

// ErrGapWindow tags reads of container entries that hold a gap marker
// instead of a compressed window. Callers use errors.Is to route gaps to
// timeline accounting instead of treating them as corruption.
var ErrGapWindow = errors.New("core: entry is a gap marker, not a window")

// GapReason records why a window was shed.
type GapReason uint8

const (
	// GapShed: the backpressure policy dropped the window because storage
	// was behind and the memory budget was exhausted.
	GapShed GapReason = iota
	// GapWriteFailed: the window compressed fine but could not be
	// appended (e.g. ENOSPC after retries) and the policy chose to record
	// the loss and move on rather than abort the run.
	GapWriteFailed
)

// String names the reason for reports.
func (r GapReason) String() string {
	switch r {
	case GapShed:
		return "shed"
	case GapWriteFailed:
		return "write-failed"
	}
	return fmt.Sprintf("GapReason(%d)", int(r))
}

// GapMarker describes one shed window: the slices that are not in the
// container, and where on the timeline they would have been.
type GapMarker struct {
	// Slices is how many time slices the shed window held (>= 1).
	Slices int
	// T0 and T1 are the simulation times of the first and last shed
	// slices.
	T0, T1 float64
	// Reason records why the window was shed.
	Reason GapReason
}

// Encode serializes the marker.
func (g GapMarker) Encode() [GapMarkerSize]byte {
	// An unrepresentable slice count is a programming error at the
	// source, same contract as EncodeRecordHeader's negative length.
	if g.Slices < 1 || g.Slices > math.MaxUint32 {
		panic(fmt.Sprintf("core: gap marker slice count %d outside [1, 2^32)", g.Slices))
	}
	var b [GapMarkerSize]byte
	copy(b[0:4], GapMagic[:])
	b[4] = gapVersion
	b[5] = byte(g.Reason)
	binary.LittleEndian.PutUint32(b[8:12], uint32(g.Slices))
	binary.LittleEndian.PutUint64(b[12:20], math.Float64bits(g.T0))
	binary.LittleEndian.PutUint64(b[20:28], math.Float64bits(g.T1))
	binary.LittleEndian.PutUint32(b[28:32], crc32.ChecksumIEEE(b[0:28]))
	return b
}

// IsGapPayload reports whether b begins with the gap marker magic — the
// cheap pre-test readers use to route a container entry before parsing.
func IsGapPayload(b []byte) bool {
	return len(b) >= 4 && [4]byte(b[0:4]) == GapMagic
}

// ParseGapMarker decodes and validates a gap marker payload. Exactly
// GapMarkerSize bytes must be present and self-consistent; anything else
// returns ErrNotGap (possibly wrapped) so scanners can treat "not a gap"
// as a clean classification result rather than corruption.
func ParseGapMarker(b []byte) (GapMarker, error) {
	if len(b) < GapMarkerSize {
		return GapMarker{}, fmt.Errorf("%w: %d bytes, need %d", ErrNotGap, len(b), GapMarkerSize)
	}
	if [4]byte(b[0:4]) != GapMagic {
		return GapMarker{}, fmt.Errorf("%w: bad magic %q", ErrNotGap, b[0:4])
	}
	if got, want := crc32.ChecksumIEEE(b[0:28]), binary.LittleEndian.Uint32(b[28:32]); got != want {
		return GapMarker{}, fmt.Errorf("%w: checksum mismatch", ErrNotGap)
	}
	if b[4] != gapVersion {
		return GapMarker{}, fmt.Errorf("%w: unsupported version %d", ErrNotGap, b[4])
	}
	if b[6] != 0 || b[7] != 0 {
		return GapMarker{}, fmt.Errorf("%w: nonzero reserved bytes", ErrNotGap)
	}
	slices := binary.LittleEndian.Uint32(b[8:12])
	if slices < 1 {
		return GapMarker{}, fmt.Errorf("%w: zero slice count", ErrNotGap)
	}
	g := GapMarker{
		Slices: int(slices),
		T0:     math.Float64frombits(binary.LittleEndian.Uint64(b[12:20])),
		T1:     math.Float64frombits(binary.LittleEndian.Uint64(b[20:28])),
		Reason: GapReason(b[5]),
	}
	if g.Reason != GapShed && g.Reason != GapWriteFailed {
		return GapMarker{}, fmt.Errorf("%w: unknown reason %d", ErrNotGap, b[5])
	}
	return g, nil
}

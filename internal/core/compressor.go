package core

import (
	"context"
	"fmt"
	"time"

	"stwave/internal/codec"
	"stwave/internal/grid"
	"stwave/internal/num"
	"stwave/internal/obs"
	"stwave/internal/par"
	"stwave/internal/scratch"
	"stwave/internal/transform"
)

// observeThroughput records one stage's throughput in MB/s (raw float64
// bytes moved divided by wall time) into the process-wide registry. Calls
// with a non-positive elapsed time are dropped rather than recorded as
// infinities.
func observeThroughput(name string, rawBytes int64, elapsed time.Duration) {
	if elapsed <= 0 {
		return
	}
	mb := float64(rawBytes) / (1 << 20)
	obs.Default().Histogram(name).Observe(mb / elapsed.Seconds())
}

// Compressor applies windowed wavelet compression with a fixed
// configuration. It is safe for concurrent use by multiple goroutines: all
// state is per-call.
type Compressor struct {
	opts Options
}

// New validates opts and returns a ready Compressor.
func New(opts Options) (*Compressor, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Compressor{opts: opts}, nil
}

// Options returns the compressor's configuration.
func (c *Compressor) Options() Options { return c.opts }

// CompressedWindow is the compressed form of one window of time slices,
// carrying everything needed for standalone reconstruction.
type CompressedWindow struct {
	Dims  grid.Dims
	Times []float64
	// Opts records the configuration used, with levels resolved to the
	// concrete values applied (never -1).
	Opts Options
	// SpatialLevels / TemporalLevels are the resolved transform depths.
	SpatialLevels  int
	TemporalLevels int
	// Blocks holds one encoded coefficient block per time slice, produced
	// by the window's codec (Opts.Codec; sparse when unset). Empty for
	// progressive windows, which carry LevelBlocks instead.
	Blocks []codec.Block
	// LevelBlocks holds the level-major progressive encoding: one row
	// per level group (coarsest first, see LevelGroups), one block per
	// time slice within each row. Rows may stop short of
	// SpatialLevels+1 when finer levels were shed. Exactly one of
	// Blocks / LevelBlocks is populated.
	LevelBlocks [][]codec.Block
	// Precision records which pipeline produced the window: Float32
	// windows were transformed, thresholded, and encoded entirely at
	// single precision and decode natively through Decompress32. The flag
	// is serialized in the window header; legacy containers (which never
	// set it) read back as Float64.
	Precision Precision
	// MaxErrAchieved / ROIMaxErrAchieved record the verified maximum
	// absolute reconstruction errors (background / ROI) measured at
	// compress time by the error-bounded mode. Informational only: they
	// are not serialized. Zero when Ratio-mode thresholding was used.
	MaxErrAchieved    float64
	ROIMaxErrAchieved float64
}

// NumSlices returns the number of time slices in the window.
func (cw *CompressedWindow) NumSlices() int {
	if len(cw.Blocks) > 0 {
		return len(cw.Blocks)
	}
	if len(cw.LevelBlocks) > 0 {
		return len(cw.LevelBlocks[0])
	}
	return 0
}

// eachBlock visits every encoded block of the window in either layout.
func (cw *CompressedWindow) eachBlock(fn func(codec.Block)) {
	for _, b := range cw.Blocks {
		fn(b)
	}
	for _, row := range cw.LevelBlocks {
		for _, b := range row {
			fn(b)
		}
	}
}

// Codec returns the coefficient backend the window's blocks belong to.
func (cw *CompressedWindow) Codec() codec.Codec { return cw.Opts.codec() }

// EncodedSizeBytes returns the true serialized payload size of all blocks
// (headers included).
func (cw *CompressedWindow) EncodedSizeBytes() int64 {
	var n int64
	cw.eachBlock(func(b codec.Block) { n += b.EncodedSizeBytes() })
	return n
}

// IdealSizeBytes returns the paper's accounting: 4 bytes per retained
// coefficient, ignoring significance-map overhead. Backends whose blocks
// don't expose the idealized column (it is a sparse-format notion) report
// their true encoded size instead, which never overstates the advantage.
func (cw *CompressedWindow) IdealSizeBytes() int64 {
	var n int64
	cw.eachBlock(func(b codec.Block) {
		if is, ok := b.(codec.IdealSizer); ok {
			n += is.IdealSizeBytes()
		} else {
			n += b.EncodedSizeBytes()
		}
	})
	return n
}

// DeflatedSizeBytes returns the size after the DEFLATE entropy stage
// (framed per block) — the third size accounting next to IdealSizeBytes and
// EncodedSizeBytes. Blocks that don't support the DEFLATE stage (already
// entropy-coded backends gain nothing from it) report their encoded size.
func (cw *CompressedWindow) DeflatedSizeBytes() (int64, error) {
	var n int64
	var firstErr error
	cw.eachBlock(func(b codec.Block) {
		if firstErr != nil {
			return
		}
		ds, ok := b.(codec.DeflatedSizer)
		if !ok {
			n += b.EncodedSizeBytes()
			return
		}
		d, err := ds.DeflatedSizeBytes()
		if err != nil {
			firstErr = err
			return
		}
		n += d
	})
	if firstErr != nil {
		return 0, firstErr
	}
	return n, nil
}

// RetainedCoefficients returns the total number of surviving coefficients.
func (cw *CompressedWindow) RetainedCoefficients() int {
	n := 0
	cw.eachBlock(func(b codec.Block) { n += b.Retained() })
	return n
}

// CompressWindow compresses the window according to the compressor's mode.
// The window's slices are not modified (they are cloned internally). In 4D
// mode the window length should normally equal Options.WindowSize, but any
// length >= 1 is accepted: temporal levels adapt to the actual length
// (shorter final windows at end of simulation).
func (c *Compressor) CompressWindow(w *grid.Window) (*CompressedWindow, error) {
	return c.CompressWindowCtx(context.Background(), w)
}

// CompressWindowCtx is CompressWindow with context propagation: when ctx
// carries a trace, the transform, threshold, and encode stages each record
// a span, and stage throughputs land in the process-wide metrics registry
// either way.
//
// The working copy of the window lives in one pooled slab carved into
// per-slice fields, so the hot path allocates O(1) regardless of window
// size; the coefficient view is handed to the slice-aware threshold and
// encode stages directly, with no gather/scatter copies.
func (c *Compressor) CompressWindowCtx(ctx context.Context, w *grid.Window) (*CompressedWindow, error) {
	return compressWindowOf(ctx, c, w)
}

// CompressWindow32 compresses a float32 window through the
// single-precision pipeline: transform, threshold, and encode all move
// 4-byte samples, halving the bytes on every memory-bound stage. The
// error-bounded mode (MaxErr) is defined on the float64 oracle and is
// rejected here.
func (c *Compressor) CompressWindow32(w *grid.Window32) (*CompressedWindow, error) {
	return c.CompressWindow32Ctx(context.Background(), w)
}

// CompressWindow32Ctx is CompressWindow32 with context propagation.
func (c *Compressor) CompressWindow32Ctx(ctx context.Context, w *grid.Window32) (*CompressedWindow, error) {
	return compressWindowOf(ctx, c, w)
}

// CompressWindowOf is the precision-generic entry point for callers that
// are themselves generic over the sample type (the streaming ingest
// engine). It is exactly CompressWindowCtx / CompressWindow32Ctx,
// selected by F.
func CompressWindowOf[F num.Float](ctx context.Context, c *Compressor, w *grid.WindowOf[F]) (*CompressedWindow, error) {
	return compressWindowOf(ctx, c, w)
}

// compressWindowOf is the precision-generic compress orchestration shared
// by CompressWindowCtx (F = float64) and CompressWindow32Ctx (F =
// float32). Stage implementations are dispatched to their concrete
// per-precision code (see precision.go), so the float64 instantiation runs
// exactly the loops it always has.
func compressWindowOf[F num.Float](ctx context.Context, c *Compressor, w *grid.WindowOf[F]) (*CompressedWindow, error) {
	if w.Len() == 0 {
		return nil, fmt.Errorf("core: cannot compress an empty window")
	}
	ctx, sp := obs.Start(ctx, "core.compress_window")
	defer sp.End()
	t, s := w.Len(), w.Dims.Len()
	slab := scratch.FloatsOf[F](t * s)
	defer scratch.PutFloatsOf(slab)
	fields := make([]grid.Field3DOf[F], t)
	slices := make([]*grid.Field3DOf[F], t)
	datas := make([][]F, t)
	for i := range fields {
		d := slab[i*s : (i+1)*s : (i+1)*s]
		copy(d, w.Slices[i].Data)
		fields[i] = grid.Field3DOf[F]{Dims: w.Dims, Data: d}
		slices[i] = &fields[i]
		datas[i] = d
	}
	work := &grid.WindowOf[F]{Dims: w.Dims, Slices: slices, Times: w.Times}
	spec := c.opts.spec(work.Dims, work.Len())
	workers := par.Workers(c.opts.Workers)
	rawBytes := int64(work.TotalSamples()) * int64(num.SampleBytes[F]())

	if err := transform.Forward4DCtx(ctx, work, spec); err != nil {
		return nil, fmt.Errorf("core: forward transform: %w", err)
	}

	cdc := c.opts.codec()
	cw := &CompressedWindow{
		Dims:           work.Dims,
		Times:          append([]float64(nil), work.Times...),
		Opts:           c.opts,
		SpatialLevels:  spec.SpatialLevels,
		TemporalLevels: spec.TemporalLevels,
		Precision:      precisionOf[F](),
	}

	if c.opts.MaxErr > 0 {
		// Error-bounded mode: threshold and encode fuse into one
		// verified loop, because the bound is checked on the exact
		// encoded stream (codec quantization included). The mode is
		// defined on the float64 oracle only.
		w64, okW := any(w).(*grid.Window)
		datas64, okD := any(datas).([][]float64)
		if !okW || !okD {
			return nil, fmt.Errorf("core: error-bounded mode (MaxErr) requires the float64 pipeline")
		}
		_, spTh := obs.Start(ctx, "core.threshold_maxerr")
		start := time.Now()
		err := c.thresholdMaxErr(w64, datas64, spec, workers, cw)
		spTh.End()
		if err != nil {
			return nil, err
		}
		observeThroughput("compress.threshold_mb_per_s", rawBytes, time.Since(start))
	} else {
		_, spTh := obs.Start(ctx, "core.threshold")
		start := time.Now()
		if err := thresholdOf(c.opts, datas, workers); err != nil {
			spTh.End()
			return nil, err
		}
		observeThroughput("compress.threshold_mb_per_s", rawBytes, time.Since(start))
		spTh.End()

		_, spEnc := obs.Start(ctx, "core.encode")
		start = time.Now()
		if c.opts.Progressive {
			levelBlocks, err := encodeProgressiveOf(cdc, datas, work.Dims, spec.SpatialLevels, workers)
			if err != nil {
				spEnc.End()
				return nil, err
			}
			cw.LevelBlocks = levelBlocks
		} else {
			blocks, err := encodeSlicesOf(cdc, datas, workers)
			if err != nil {
				spEnc.End()
				return nil, fmt.Errorf("core: %s encode: %w", cdc.Name(), err)
			}
			cw.Blocks = blocks
		}
		elapsed := time.Since(start)
		observeThroughput("compress.encode_mb_per_s", rawBytes, elapsed)
		observeThroughput("codec.encode_mb_per_s."+cdc.Name(), rawBytes, elapsed)
		spEnc.End()
	}
	if enc := cw.EncodedSizeBytes(); enc > 0 {
		obs.Default().Gauge("codec.ratio." + cdc.Name()).Set(float64(rawBytes) / float64(enc))
	}
	obs.Default().Counter("core.compress_windows_total").Add(1)
	return cw, nil
}

// Decompress reconstructs the window from its compressed form. The result is
// a fully-allocated window independent of cw.
func Decompress(cw *CompressedWindow) (*grid.Window, error) {
	return DecompressCtx(context.Background(), cw)
}

// DecompressCtx is Decompress with context propagation: the sparse-decode
// and inverse-transform stages record spans under any trace carried by
// ctx, and decode throughput lands in the process-wide metrics registry.
//
// Windows of either precision decode through this path (blocks widen
// their float32 values exactly); use Decompress32 for the native
// single-precision reconstruction of a Float32 window.
func DecompressCtx(ctx context.Context, cw *CompressedWindow) (*grid.Window, error) {
	return decompressOf[float64](ctx, cw)
}

// Decompress32 reconstructs the window natively at single precision:
// blocks decode straight into float32 slabs and the inverse transform
// runs at 4 bytes per sample. It is the bit-faithful reconstruction of a
// window compressed by CompressWindow32.
func Decompress32(cw *CompressedWindow) (*grid.Window32, error) {
	return Decompress32Ctx(context.Background(), cw)
}

// Decompress32Ctx is Decompress32 with context propagation.
func Decompress32Ctx(ctx context.Context, cw *CompressedWindow) (*grid.Window32, error) {
	return decompressOf[float32](ctx, cw)
}

// decompressOf is the precision-generic decompress orchestration behind
// DecompressCtx (F = float64) and Decompress32Ctx (F = float32).
func decompressOf[F num.Float](ctx context.Context, cw *CompressedWindow) (*grid.WindowOf[F], error) {
	if cw.NumSlices() == 0 {
		return nil, fmt.Errorf("core: empty compressed window")
	}
	if !cw.Dims.Valid() {
		return nil, fmt.Errorf("core: invalid dims %v", cw.Dims)
	}
	if cw.Progressive() {
		// Full-resolution decode of a level-major window: scatter every
		// group and invert — the operations (and bits) match the legacy
		// path exactly.
		return decompressLevelsOf[F](ctx, cw, cw.SpatialLevels)
	}
	ctx, sp := obs.Start(ctx, "core.decompress")
	defer sp.End()
	_, spDec := obs.Start(ctx, "core.decode_blocks")
	defer spDec.End()
	start := time.Now()
	t, s := len(cw.Blocks), cw.Dims.Len()
	for i, b := range cw.Blocks {
		if b.Total() != s {
			return nil, fmt.Errorf("core: block %d has %d coefficients, grid needs %d", i, b.Total(), s)
		}
	}
	// The result window is carved from a single backing slab: the caller
	// owns it, so it cannot come from the pool, but one allocation replaces
	// one per slice and the blocks decode into it in parallel.
	slab := make([]F, t*s)
	fields := make([]grid.Field3DOf[F], t)
	slices := make([]*grid.Field3DOf[F], t)
	times := make([]float64, t)
	workers := par.Workers(cw.Opts.Workers)
	errs := make([]error, t)
	outer, inner := par.Split(workers, t)
	par.For(t, outer, 1, func(start, end int) {
		for i := start; i < end; i++ {
			d := slab[i*s : (i+1)*s : (i+1)*s]
			errs[i] = decodeBlockIntoOf(cw.Blocks[i], d, inner)
			fields[i] = grid.Field3DOf[F]{Dims: cw.Dims, Data: d}
			slices[i] = &fields[i]
			times[i] = float64(i)
			if cw.Times != nil && i < len(cw.Times) {
				times[i] = cw.Times[i]
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	w := &grid.WindowOf[F]{Dims: cw.Dims, Slices: slices, Times: times}
	spDec.End()
	decElapsed := time.Since(start)
	rawBytes := int64(w.TotalSamples()) * int64(num.SampleBytes[F]())
	observeThroughput("compress.decode_mb_per_s", rawBytes, decElapsed)
	observeThroughput("codec.decode_mb_per_s."+cw.Codec().Name(), rawBytes, decElapsed)
	spec := transform.Spec{
		SpatialKernel:  cw.Opts.SpatialKernel,
		SpatialLevels:  cw.SpatialLevels,
		TemporalKernel: cw.Opts.TemporalKernel,
		TemporalLevels: cw.TemporalLevels,
		Workers:        cw.Opts.Workers,
	}
	if err := transform.Inverse4DCtx(ctx, w, spec); err != nil {
		return nil, fmt.Errorf("core: inverse transform: %w", err)
	}
	obs.Default().Counter("core.decompress_windows_total").Add(1)
	return w, nil
}

// RoundTrip compresses then decompresses a window — the operation every
// error-evaluation experiment performs. It never modifies w.
func (c *Compressor) RoundTrip(w *grid.Window) (*grid.Window, *CompressedWindow, error) {
	cw, err := c.CompressWindow(w)
	if err != nil {
		return nil, nil, err
	}
	recon, err := Decompress(cw)
	if err != nil {
		return nil, nil, err
	}
	return recon, cw, nil
}

package core

import (
	"bytes"
	"io"
	"math"
	"testing"

	"stwave/internal/codec"
	"stwave/internal/grid"
	"stwave/internal/transform"
	"stwave/internal/wavelet"
)

// progressiveGeometries is the Table-1-shaped fixture set the refinement
// property is proven over: the paper's cubic windows plus odd extents,
// a flat pancake grid (exercises axis-dependent level budgets), and a
// short end-of-stream window.
var progressiveGeometries = []struct {
	name   string
	dims   grid.Dims
	slices int
}{
	{"cube16x10", grid.Dims{Nx: 16, Ny: 16, Nz: 16}, 10},
	{"odd15x9x7", grid.Dims{Nx: 15, Ny: 10, Nz: 9}, 7},
	{"flat32x4", grid.Dims{Nx: 32, Ny: 32, Nz: 4}, 6},
	{"short-window", grid.Dims{Nx: 16, Ny: 16, Nz: 16}, 3},
}

var progressiveCodecs = []codec.Codec{codec.Sparse(), codec.Deflate(), codec.Entropy()}

func progressiveOpts(cdc codec.Codec, slices int) Options {
	o := DefaultOptions()
	o.WindowSize = slices
	o.Ratio = 16
	o.Codec = cdc
	o.Progressive = true
	o.Workers = 2
	return o
}

func windowsBitIdentical(t *testing.T, a, b *grid.Window, label string) {
	t.Helper()
	if a.Dims != b.Dims || len(a.Slices) != len(b.Slices) {
		t.Fatalf("%s: shape mismatch: %v/%d vs %v/%d", label, a.Dims, len(a.Slices), b.Dims, len(b.Slices))
	}
	for i := range a.Slices {
		av, bv := a.Slices[i].Data, b.Slices[i].Data
		for j := range av {
			if math.Float64bits(av[j]) != math.Float64bits(bv[j]) {
				t.Fatalf("%s: slice %d sample %d differs: %g vs %g", label, i, j, av[j], bv[j])
			}
		}
	}
}

// TestLevelGroupsPartition proves the level groups tile the grid exactly
// and that gather/scatter round-trips the Mallat layout.
func TestLevelGroupsPartition(t *testing.T) {
	for _, g := range progressiveGeometries {
		levels := transform.Levels3D(wavelet.CDF97, g.dims)
		groups := LevelGroups(g.dims, levels)
		if len(groups) != levels+1 {
			t.Fatalf("%s: %d groups for %d levels", g.name, len(groups), levels)
		}
		total := 0
		for _, lg := range groups {
			total += lg.Count
		}
		if total != g.dims.Len() {
			t.Fatalf("%s: group counts sum to %d, grid has %d", g.name, total, g.dims.Len())
		}
		src := make([]float64, g.dims.Len())
		for i := range src {
			src[i] = float64(i + 1)
		}
		dst := make([]float64, g.dims.Len())
		for _, lg := range groups {
			buf := make([]float64, lg.Count)
			if n := gatherGroup(buf, src, g.dims, lg); n != lg.Count {
				t.Fatalf("%s: gathered %d of %d", g.name, n, lg.Count)
			}
			scatterGroup(dst, g.dims, buf, lg)
		}
		for i := range src {
			if src[i] != dst[i] {
				t.Fatalf("%s: gather/scatter not a permutation at %d", g.name, i)
			}
		}
	}
}

// TestProgressiveFullDecodeMatchesLegacy proves the level-major layout
// is lossless relative to the slice-major one: the same window
// compressed both ways decodes bit-identically for the value-exact
// codecs (sparse, deflate). The entropy codec quantizes per block, so
// regrouping blocks by level legitimately shifts values within its
// quantization step; for it the comparison is a tight tolerance
// instead.
func TestProgressiveFullDecodeMatchesLegacy(t *testing.T) {
	for _, cdc := range progressiveCodecs {
		for _, g := range progressiveGeometries {
			w := coherentWindow(g.dims, g.slices, 0.3)

			legacyOpts := progressiveOpts(cdc, g.slices)
			legacyOpts.Progressive = false
			lc, err := New(legacyOpts)
			if err != nil {
				t.Fatal(err)
			}
			lr, _, err := lc.RoundTrip(w)
			if err != nil {
				t.Fatalf("%s/%s legacy: %v", cdc.Name(), g.name, err)
			}

			pc, err := New(progressiveOpts(cdc, g.slices))
			if err != nil {
				t.Fatal(err)
			}
			pcw, err := pc.CompressWindow(w)
			if err != nil {
				t.Fatalf("%s/%s progressive compress: %v", cdc.Name(), g.name, err)
			}
			if !pcw.Progressive() {
				t.Fatalf("%s/%s: window not progressive", cdc.Name(), g.name)
			}
			pr, err := Decompress(pcw)
			if err != nil {
				t.Fatalf("%s/%s progressive decompress: %v", cdc.Name(), g.name, err)
			}
			if cdc.ID() == codec.IDEntropy {
				for i := range lr.Slices {
					for j := range lr.Slices[i].Data {
						if d := math.Abs(lr.Slices[i].Data[j] - pr.Slices[i].Data[j]); d > 1e-3 {
							t.Fatalf("%s/%s: slice %d sample %d differs by %g beyond quantization",
								cdc.Name(), g.name, i, j, d)
						}
					}
				}
				continue
			}
			windowsBitIdentical(t, lr, pr, cdc.Name()+"/"+g.name)
		}
	}
}

// TestProgressiveRefineBitIdentical is the ISSUE's property test:
// decoding levels 0..K then refining with K+1..L is bit-identical to a
// full decode, for every codec and window geometry, at every
// intermediate K.
func TestProgressiveRefineBitIdentical(t *testing.T) {
	for _, cdc := range progressiveCodecs {
		for _, g := range progressiveGeometries {
			w := coherentWindow(g.dims, g.slices, 1.1)
			c, err := New(progressiveOpts(cdc, g.slices))
			if err != nil {
				t.Fatal(err)
			}
			cw, err := c.CompressWindow(w)
			if err != nil {
				t.Fatal(err)
			}
			full, err := Decompress(cw)
			if err != nil {
				t.Fatal(err)
			}
			L := cw.SpatialLevels
			for k := 0; k <= L; k++ {
				r, err := NewRefiner(cw)
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Advance(k); err != nil {
					t.Fatalf("%s/%s advance to %d: %v", cdc.Name(), g.name, k, err)
				}
				// The coarse materialization must match DecompressLevels.
				coarseA, err := r.Materialize()
				if err != nil {
					t.Fatal(err)
				}
				coarseB, err := DecompressLevels(cw, k)
				if err != nil {
					t.Fatal(err)
				}
				windowsBitIdentical(t, coarseB, coarseA, "coarse materialize")
				if k < L {
					if err := r.Advance(L); err != nil {
						t.Fatalf("%s/%s refine %d->%d: %v", cdc.Name(), g.name, k, L, err)
					}
				}
				refined, err := r.Materialize()
				if err != nil {
					t.Fatal(err)
				}
				windowsBitIdentical(t, full, refined,
					cdc.Name()+"/"+g.name+" refine path")
			}
		}
	}
}

// TestDecompressLevelsGeometry checks coarse reconstructions have the
// approximation-cube extents and track a coarse preview of the original
// field (approxRescale applied), at every level.
func TestDecompressLevelsGeometry(t *testing.T) {
	g := progressiveGeometries[0]
	w := coherentWindow(g.dims, g.slices, 0.0)
	c, err := New(progressiveOpts(codec.Sparse(), g.slices))
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= cw.SpatialLevels; k++ {
		coarse, err := DecompressLevels(cw, k)
		if err != nil {
			t.Fatal(err)
		}
		want := transform.CoarseDims(g.dims, cw.SpatialLevels-k)
		if coarse.Dims != want {
			t.Fatalf("level %d dims %v, want %v", k, coarse.Dims, want)
		}
		if len(coarse.Slices) != g.slices {
			t.Fatalf("level %d has %d slices, want %d", k, len(coarse.Slices), g.slices)
		}
		// The rescaled approximation must be the same magnitude as the
		// field itself (a wildly scaled result means the sqrt(2)^3L gain
		// went uncorrected).
		var maxAbs float64
		for _, f := range coarse.Slices {
			for _, v := range f.Data {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
		}
		if maxAbs < 0.1 || maxAbs > 10 {
			t.Fatalf("level %d amplitude %g outside the field's O(1) range", k, maxAbs)
		}
	}
	if _, err := DecompressLevels(cw, cw.SpatialLevels+1); err == nil {
		t.Fatal("accepted level beyond SpatialLevels")
	}
}

// TestProgressiveSerializeRoundTrip proves v4 bytes decode to the same
// samples, that partial reads through the level table decode exactly
// like an in-memory partial decode while reading strictly fewer bytes,
// and that a reader stopped at level K never touches later bytes.
func TestProgressiveSerializeRoundTrip(t *testing.T) {
	for _, cdc := range progressiveCodecs {
		g := progressiveGeometries[1] // odd dims: the unfriendly case
		w := coherentWindow(g.dims, g.slices, 0.7)
		c, err := New(progressiveOpts(cdc, g.slices))
		if err != nil {
			t.Fatal(err)
		}
		cw, err := c.CompressWindow(w)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := cw.WriteTo(&buf); err != nil {
			t.Fatalf("%s: write: %v", cdc.Name(), err)
		}
		raw := buf.Bytes()

		back, err := ReadCompressedWindow(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: read: %v", cdc.Name(), err)
		}
		if !back.Progressive() {
			t.Fatalf("%s: deserialized window lost progressive layout", cdc.Name())
		}
		a, err := Decompress(cw)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Decompress(back)
		if err != nil {
			t.Fatal(err)
		}
		windowsBitIdentical(t, a, b, cdc.Name()+" serialize roundtrip")

		wi, table, payloadStart, err := ReadWindowLevelTable(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: level table: %v", cdc.Name(), err)
		}
		if !wi.Progressive || wi.SpatialLevels != cw.SpatialLevels {
			t.Fatalf("%s: level-table info %+v inconsistent", cdc.Name(), wi)
		}
		if got := payloadStart + table.PrefixBytes(len(table.Extents)-1); got != int64(len(raw)) {
			t.Fatalf("%s: table accounts for %d bytes, stream has %d", cdc.Name(), got, len(raw))
		}
		for k := 0; k < len(table.Extents); k++ {
			prefix := raw[:payloadStart+table.PrefixBytes(k)]
			if k < len(table.Extents)-1 && len(prefix) >= len(raw) {
				t.Fatalf("%s: level %d prefix does not save bytes", cdc.Name(), k)
			}
			pcw, err := ReadCompressedWindowLevels(bytes.NewReader(prefix), k)
			if err != nil {
				t.Fatalf("%s: partial read level %d: %v", cdc.Name(), k, err)
			}
			pa, err := DecompressLevels(pcw, k)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := DecompressLevels(cw, k)
			if err != nil {
				t.Fatal(err)
			}
			windowsBitIdentical(t, pb, pa, cdc.Name()+" partial read")
		}
	}
}

// TestDropFinestLevel exercises the ingest degrade step: shedding the
// finest group shrinks the encoding, survives serialization, and still
// decodes at full dims (with zeroed fine detail).
func TestDropFinestLevel(t *testing.T) {
	g := progressiveGeometries[0]
	w := coherentWindow(g.dims, g.slices, 0.5)
	c, err := New(progressiveOpts(codec.Sparse(), g.slices))
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	full := cw.EncodedSizeBytes()
	shed, ok := cw.DropFinestLevel()
	if !ok {
		t.Fatal("DropFinestLevel refused a full progressive window")
	}
	if shed.EncodedSizeBytes() >= full {
		t.Fatalf("shedding did not shrink: %d -> %d", full, shed.EncodedSizeBytes())
	}
	if shed.NumSlices() != cw.NumSlices() {
		t.Fatal("shedding changed the slice count")
	}
	var buf bytes.Buffer
	if _, err := shed.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCompressedWindow(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.LevelBlocks) != len(shed.LevelBlocks) {
		t.Fatalf("shed window round-tripped with %d groups, want %d", len(back.LevelBlocks), len(shed.LevelBlocks))
	}
	recon, err := Decompress(back)
	if err != nil {
		t.Fatal(err)
	}
	if recon.Dims != g.dims {
		t.Fatalf("shed decode dims %v, want %v", recon.Dims, g.dims)
	}
	// A window shed to the bare approximation refuses further drops.
	for {
		next, ok := shed.DropFinestLevel()
		if !ok {
			break
		}
		shed = next
	}
	if len(shed.LevelBlocks) != 1 {
		t.Fatalf("drop chain stopped at %d groups, want 1", len(shed.LevelBlocks))
	}
}

// TestProgressiveLegacyInterop: legacy windows refuse level-addressed
// APIs typed, and a legacy byte stream still decodes unchanged (the
// backward-compatibility contract of the codec registry).
func TestProgressiveLegacyInterop(t *testing.T) {
	g := progressiveGeometries[0]
	w := coherentWindow(g.dims, g.slices, 0.2)
	o := progressiveOpts(codec.Sparse(), g.slices)
	o.Progressive = false
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	if cw.Progressive() {
		t.Fatal("legacy options produced a progressive window")
	}
	if _, err := DecompressLevels(cw, 0); err != ErrNotProgressive {
		t.Fatalf("DecompressLevels on legacy window: %v, want ErrNotProgressive", err)
	}
	if _, err := NewRefiner(cw); err != ErrNotProgressive {
		t.Fatalf("NewRefiner on legacy window: %v, want ErrNotProgressive", err)
	}
	var buf bytes.Buffer
	if _, err := cw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadWindowLevelTable(bytes.NewReader(buf.Bytes())); err != ErrNotProgressive {
		t.Fatalf("ReadWindowLevelTable on legacy bytes: %v, want ErrNotProgressive", err)
	}
	if _, err := ReadCompressedWindowLevels(bytes.NewReader(buf.Bytes()), 0); err != ErrNotProgressive {
		t.Fatalf("ReadCompressedWindowLevels on legacy bytes: %v, want ErrNotProgressive", err)
	}
	back, err := ReadCompressedWindow(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Decompress(cw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompress(back)
	if err != nil {
		t.Fatal(err)
	}
	windowsBitIdentical(t, a, b, "legacy serialize roundtrip")
}

// TestProgressiveTruncation: corrupting or truncating the level-major
// stream fails typed at the right group, never panics, and flipping a
// payload byte trips the per-group CRC.
func TestProgressiveTruncation(t *testing.T) {
	g := progressiveGeometries[0]
	w := coherentWindow(g.dims, g.slices, 0.9)
	c, err := New(progressiveOpts(codec.Sparse(), g.slices))
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	_, table, payloadStart, err := ReadWindowLevelTable(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Full read of a truncated stream fails cleanly.
	if _, err := ReadCompressedWindow(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("accepted truncated progressive stream")
	}
	// A partial read for level 0 must fail if even the level-0 region is cut.
	short := payloadStart + table.PrefixBytes(0) - 1
	if _, err := ReadCompressedWindowLevels(bytes.NewReader(raw[:short]), 0); err == nil {
		t.Fatal("accepted truncated level-0 region")
	}
	// Flip one payload byte inside group 0: the group CRC must catch it.
	corrupt := append([]byte(nil), raw...)
	corrupt[payloadStart+1] ^= 0xff
	if _, err := ReadCompressedWindowLevels(bytes.NewReader(corrupt), 0); err == nil {
		t.Fatal("accepted corrupted level-0 payload")
	}
	// Forge a huge group length: must fail typed, not allocate or panic.
	forged := append([]byte(nil), raw...)
	off := int(payloadStart) - len(table.Extents)*12
	for i := 0; i < 8; i++ {
		forged[off+i] = 0xff
	}
	if _, err := ReadCompressedWindow(bytes.NewReader(forged)); err == nil {
		t.Fatal("accepted forged group length")
	}
}

// TestReadCompressedWindowLevelsStopsReading proves the partial reader
// never touches bytes past the requested level group — the contract the
// server's byte-savings accounting depends on.
func TestReadCompressedWindowLevelsStopsReading(t *testing.T) {
	g := progressiveGeometries[0]
	w := coherentWindow(g.dims, g.slices, 0.4)
	c, err := New(progressiveOpts(codec.Sparse(), g.slices))
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	_, table, payloadStart, err := ReadWindowLevelTable(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	cr := &countingReader{r: bytes.NewReader(raw)}
	if _, err := ReadCompressedWindowLevels(cr, 0); err != nil {
		t.Fatal(err)
	}
	want := payloadStart + table.PrefixBytes(0)
	if cr.n > want {
		t.Fatalf("level-0 read consumed %d bytes, table bounds it at %d", cr.n, want)
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

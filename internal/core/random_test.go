package core

import (
	"math"
	"testing"

	"stwave/internal/grid"
)

func boundaryTestWindow(d grid.Dims, slices int) *grid.Window {
	w := grid.NewWindow(d)
	for ts := 0; ts < slices; ts++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		for i := range f.Data {
			f.Data[i] = math.Sin(float64(i)*0.07 + float64(ts)*0.31)
		}
		if err := w.Append(f, float64(ts)); err != nil {
			panic(err)
		}
	}
	return w
}

// TestDecompressSliceWindowBoundaries exercises the positions where the
// temporal transform's boundary handling matters most: the first and last
// slice of a full window, and every slice of short tail windows down to a
// single slice.
func TestDecompressSliceWindowBoundaries(t *testing.T) {
	d := grid.Dims{Nx: 10, Ny: 10, Nz: 10}
	opts := DefaultOptions()
	opts.WindowSize = 8
	opts.Ratio = 8
	comp, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, slices := range []int{8, 3, 2, 1} {
		cw, err := comp.CompressWindow(boundaryTestWindow(d, slices))
		if err != nil {
			t.Fatalf("window of %d slices: %v", slices, err)
		}
		full, err := Decompress(cw)
		if err != nil {
			t.Fatal(err)
		}
		for _, slice := range []int{0, slices - 1} {
			single, err := DecompressSlice(cw, slice)
			if err != nil {
				t.Fatalf("%d slices, slice %d: %v", slices, slice, err)
			}
			for i := range single.Data {
				if math.Abs(single.Data[i]-full.Slices[slice].Data[i]) > 1e-12 {
					t.Fatalf("%d slices, slice %d, sample %d: single %g != full %g",
						slices, slice, i, single.Data[i], full.Slices[slice].Data[i])
				}
			}
		}
	}
}

// TestDecompressSliceOneSliceWindow pins down the degenerate case: a
// 1-slice window has no temporal structure at all, and single-slice access
// must still reconstruct it exactly as Decompress does.
func TestDecompressSliceOneSliceWindow(t *testing.T) {
	d := grid.Dims{Nx: 12, Ny: 12, Nz: 12}
	opts := DefaultOptions()
	opts.Ratio = 4
	comp, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(boundaryTestWindow(d, 1))
	if err != nil {
		t.Fatal(err)
	}
	if cw.TemporalLevels != 0 {
		t.Errorf("1-slice window has %d temporal levels, want 0", cw.TemporalLevels)
	}
	full, err := Decompress(cw)
	if err != nil {
		t.Fatal(err)
	}
	single, err := DecompressSlice(cw, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range single.Data {
		if single.Data[i] != full.Slices[0].Data[i] {
			t.Fatalf("sample %d: %g != %g", i, single.Data[i], full.Slices[0].Data[i])
		}
	}
}

// TestDecompressSliceTemporalSubsampling reconstructs every other slice
// (temporal resolution 1/2, the paper's Figure 2c access pattern) via
// DecompressSlice and checks agreement with the slices of one full
// Decompress.
func TestDecompressSliceTemporalSubsampling(t *testing.T) {
	d := grid.Dims{Nx: 10, Ny: 10, Nz: 10}
	opts := DefaultOptions()
	opts.WindowSize = 8
	opts.Ratio = 16
	comp, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	orig := boundaryTestWindow(d, 8)
	cw, err := comp.CompressWindow(orig)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(cw)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := full.Subsample(2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < sub.Len(); k++ {
		slice := 2 * k
		single, err := DecompressSlice(cw, slice)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single.Data {
			if math.Abs(single.Data[i]-sub.Slices[k].Data[i]) > 1e-12 {
				t.Fatalf("slice %d sample %d: single %g != subsampled full %g",
					slice, i, single.Data[i], sub.Slices[k].Data[i])
			}
		}
	}
}

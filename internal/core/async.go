package core

import (
	"fmt"
	"sync"

	"stwave/internal/grid"
)

// AsyncWriter is a pipelined variant of Writer: windows are compressed on a
// background worker pool while the simulation keeps producing slices —
// overlapping the paper's "Comp. Time" with the solve, which is how a
// production in-transit pipeline would hide the Table I compute cost.
// Compressed windows are delivered to the sink strictly in window order
// regardless of which worker finishes first.
//
// WriteSlice and Flush must be called from a single goroutine; the sink is
// also invoked from a single (internal) goroutine.
type AsyncWriter struct {
	comp    *Compressor
	sink    Sink
	dims    grid.Dims
	pending *grid.Window

	jobs     chan asyncJob
	resultCh chan asyncResult
	done     chan struct{}
	sinkErr  error

	nextWindow int // next window id to assign
	slicesIn   int
}

type asyncJob struct {
	id  int
	win *grid.Window
}

type asyncResult struct {
	id  int
	cw  *CompressedWindow
	err error
}

// NewAsyncWriter creates a pipelined writer with the given number of
// compression workers (>= 1) and a bounded queue of the same depth.
func NewAsyncWriter(opts Options, dims grid.Dims, workers int, sink Sink) (*AsyncWriter, error) {
	comp, err := New(opts)
	if err != nil {
		return nil, err
	}
	if !dims.Valid() {
		return nil, fmt.Errorf("core: invalid dims %v", dims)
	}
	if sink == nil {
		return nil, fmt.Errorf("core: nil sink")
	}
	if workers < 1 {
		return nil, fmt.Errorf("core: async writer needs >= 1 worker, got %d", workers)
	}
	// In 3D mode each slice is its own 1-slice window for pipelining.
	aw := &AsyncWriter{
		comp:     comp,
		sink:     sink,
		dims:     dims,
		jobs:     make(chan asyncJob, workers),
		resultCh: make(chan asyncResult, workers),
		done:     make(chan struct{}),
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range aw.jobs {
				cw, err := aw.comp.CompressWindow(job.win)
				aw.resultCh <- asyncResult{id: job.id, cw: cw, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(aw.resultCh)
	}()
	// Sequencer: delivers results to the sink in id order.
	go func() {
		defer close(aw.done)
		next := 0
		buffered := map[int]*CompressedWindow{}
		for res := range aw.resultCh {
			if res.err != nil {
				if aw.sinkErr == nil {
					aw.sinkErr = res.err
				}
				continue
			}
			buffered[res.id] = res.cw
			for {
				cw, ok := buffered[next]
				if !ok {
					break
				}
				delete(buffered, next)
				if err := aw.sink(cw); err != nil && aw.sinkErr == nil {
					aw.sinkErr = err
				}
				next++
			}
		}
	}()
	return aw, nil
}

// WriteSlice appends one slice; full windows are queued for background
// compression. The slice is cloned, so the caller may reuse its buffer.
func (aw *AsyncWriter) WriteSlice(f *grid.Field3D, t float64) error {
	if f.Dims != aw.dims {
		return fmt.Errorf("core: slice dims %v != writer dims %v", f.Dims, aw.dims)
	}
	aw.slicesIn++
	if aw.pending == nil {
		aw.pending = grid.NewWindow(aw.dims)
	}
	if err := aw.pending.Append(f.Clone(), t); err != nil {
		return err
	}
	target := aw.comp.opts.WindowSize
	if aw.comp.opts.Mode == Spatial3D {
		target = 1
	}
	if aw.pending.Len() >= target {
		aw.enqueue()
	}
	return nil
}

func (aw *AsyncWriter) enqueue() {
	win := aw.pending
	aw.pending = nil
	aw.jobs <- asyncJob{id: aw.nextWindow, win: win}
	aw.nextWindow++
}

// Flush queues any partial window, waits for all background work, and
// returns the first error encountered by a worker or the sink. The writer
// cannot be used afterwards.
func (aw *AsyncWriter) Flush() error {
	if aw.pending != nil && aw.pending.Len() > 0 {
		aw.enqueue()
	}
	close(aw.jobs)
	<-aw.done
	return aw.sinkErr
}

// SlicesIn reports the number of slices accepted.
func (aw *AsyncWriter) SlicesIn() int { return aw.slicesIn }

package core

import (
	"context"
	"fmt"
	"sync"

	"stwave/internal/grid"
	"stwave/internal/num"
)

// Pipeline is the reusable compress-and-deliver engine behind AsyncWriter
// and the streaming ingest path: a bounded worker pool runs jobs (each
// producing one CompressedWindow) concurrently, and a single sequencer
// goroutine delivers the results to the sink strictly in submission order
// regardless of which worker finishes first — overlapping the paper's
// "Comp. Time" with the solve, the way a production in-transit pipeline
// hides the Table I compute cost.
//
// Failure semantics are designed for clean drains under storage faults:
// the first error (from a job or from the sink) sticks, the sink is never
// invoked again after it, workers stop doing work (they keep consuming
// jobs so a blocked Submit always unblocks), and Close drains everything
// without leaking goroutines or deadlocking on a full job queue. Submit
// fails fast once the pipeline is failed, so producers learn about a bad
// sink at the next window boundary instead of at Flush.
//
// Submit and Close must be called from a single goroutine; the sink is
// invoked from a single (internal) goroutine.
type Pipeline struct {
	jobs     chan pipelineJob
	done     chan struct{}
	failed   chan struct{} // closed after err is set
	failOnce sync.Once
	err      error

	next   int
	closed bool
}

type pipelineJob struct {
	id  int
	run func() (*CompressedWindow, error)
}

type pipelineResult struct {
	id  int
	cw  *CompressedWindow
	err error
}

// NewPipeline starts workers (>= 1) goroutines consuming a job queue of
// the same depth, delivering in-order to sink. The sink receives the job
// id assigned by Submit alongside the window.
func NewPipeline(workers int, sink func(id int, cw *CompressedWindow) error) (*Pipeline, error) {
	if workers < 1 {
		return nil, fmt.Errorf("core: pipeline needs >= 1 worker, got %d", workers)
	}
	if sink == nil {
		return nil, fmt.Errorf("core: nil sink")
	}
	p := &Pipeline{
		jobs:   make(chan pipelineJob, workers),
		done:   make(chan struct{}),
		failed: make(chan struct{}),
	}
	results := make(chan pipelineResult, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range p.jobs {
				if p.Err() != nil {
					// The pipeline already failed: consume the job so a
					// blocked Submit or Close can make progress, but skip
					// the (expensive) work.
					results <- pipelineResult{id: job.id, err: p.Err()}
					continue
				}
				cw, err := job.run()
				results <- pipelineResult{id: job.id, cw: cw, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	// Sequencer: delivers results to the sink in id order. After the first
	// error it keeps draining results (so workers never block on a full
	// results channel) but never calls the sink again — a journal must not
	// be appended past a hole.
	go func() {
		defer close(p.done)
		next := 0
		buffered := map[int]*CompressedWindow{}
		for res := range results {
			if p.Err() != nil {
				continue
			}
			if res.err != nil {
				p.fail(res.err)
				continue
			}
			buffered[res.id] = res.cw
			for {
				cw, ok := buffered[next]
				if !ok {
					break
				}
				delete(buffered, next)
				if err := sink(next, cw); err != nil {
					p.fail(err)
					break
				}
				next++
			}
		}
	}()
	return p, nil
}

// fail records the pipeline's first error and marks it failed.
func (p *Pipeline) fail(err error) {
	p.failOnce.Do(func() {
		p.err = err
		close(p.failed)
	})
}

// Err returns the sticky first error, or nil while the pipeline is
// healthy. Safe to call from any goroutine.
func (p *Pipeline) Err() error {
	select {
	case <-p.failed:
		return p.err
	default:
		return nil
	}
}

// Submit queues one job and returns the sequence id its result will be
// delivered under. It blocks while the job queue is full (workers always
// drain it, so the wait is bounded by in-flight work, not by the sink).
// Once the pipeline has failed, Submit drops the job and returns the
// sticky error immediately.
func (p *Pipeline) Submit(run func() (*CompressedWindow, error)) (int, error) {
	if p.closed {
		return 0, fmt.Errorf("core: submit on closed pipeline")
	}
	if err := p.Err(); err != nil {
		return 0, err
	}
	id := p.next
	p.next++
	p.jobs <- pipelineJob{id: id, run: run}
	return id, nil
}

// Close stops accepting jobs, waits for every in-flight job and delivery
// to finish (workers and sequencer exit; nothing leaks), and returns the
// pipeline's sticky error. Close is idempotent.
func (p *Pipeline) Close() error {
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	<-p.done
	return p.Err()
}

// AsyncWriter is a pipelined variant of Writer: windows are compressed on
// a background worker pool while the simulation keeps producing slices,
// and compressed windows are delivered to the sink strictly in window
// order. It is a thin window-batching layer over Pipeline.
//
// WriteSlice, Flush, and Close must be called from a single goroutine;
// the sink is also invoked from a single (internal) goroutine.
type AsyncWriter = AsyncWriterOf[float64]

// AsyncWriter32 is the pipelined writer of the single-precision pipeline:
// float32 slices buffer and compress at 4 bytes per sample end to end.
type AsyncWriter32 = AsyncWriterOf[float32]

// AsyncWriterOf is the precision-generic pipelined writer behind
// AsyncWriter and AsyncWriter32.
type AsyncWriterOf[F num.Float] struct {
	comp    *Compressor
	dims    grid.Dims
	pending *grid.WindowOf[F]
	pipe    *Pipeline

	slicesIn int
}

// NewAsyncWriter creates a pipelined writer with the given number of
// compression workers (>= 1) and a bounded queue of the same depth.
func NewAsyncWriter(opts Options, dims grid.Dims, workers int, sink Sink) (*AsyncWriter, error) {
	return newAsyncWriterOf[float64](opts, dims, workers, sink)
}

// NewAsyncWriter32 creates a pipelined single-precision writer. Options
// with MaxErr set are rejected (the error-bounded mode runs on the
// float64 oracle).
func NewAsyncWriter32(opts Options, dims grid.Dims, workers int, sink Sink) (*AsyncWriter32, error) {
	if opts.MaxErr > 0 {
		return nil, fmt.Errorf("core: error-bounded mode (MaxErr) requires the float64 pipeline")
	}
	return newAsyncWriterOf[float32](opts, dims, workers, sink)
}

func newAsyncWriterOf[F num.Float](opts Options, dims grid.Dims, workers int, sink Sink) (*AsyncWriterOf[F], error) {
	comp, err := New(opts)
	if err != nil {
		return nil, err
	}
	if !dims.Valid() {
		return nil, fmt.Errorf("core: invalid dims %v", dims)
	}
	if sink == nil {
		return nil, fmt.Errorf("core: nil sink")
	}
	pipe, err := NewPipeline(workers, func(_ int, cw *CompressedWindow) error {
		return sink(cw)
	})
	if err != nil {
		return nil, err
	}
	return &AsyncWriterOf[F]{comp: comp, dims: dims, pipe: pipe}, nil
}

// WriteSlice appends one slice; full windows are queued for background
// compression. The slice is cloned, so the caller may reuse its buffer.
// Once a worker or the sink has failed, WriteSlice reports the sticky
// error immediately instead of buffering toward a Flush that cannot
// succeed.
func (aw *AsyncWriterOf[F]) WriteSlice(f *grid.Field3DOf[F], t float64) error {
	if f.Dims != aw.dims {
		return fmt.Errorf("core: slice dims %v != writer dims %v", f.Dims, aw.dims)
	}
	aw.slicesIn++
	if aw.pending == nil {
		aw.pending = grid.NewWindowOf[F](aw.dims)
	}
	if err := aw.pending.Append(f.Clone(), t); err != nil {
		return err
	}
	target := aw.comp.opts.WindowSize
	if aw.comp.opts.Mode == Spatial3D {
		// In 3D mode each slice is its own 1-slice window for pipelining.
		target = 1
	}
	if aw.pending.Len() >= target {
		return aw.enqueue()
	}
	return nil
}

func (aw *AsyncWriterOf[F]) enqueue() error {
	win := aw.pending
	aw.pending = nil
	_, err := aw.pipe.Submit(func() (*CompressedWindow, error) {
		return compressWindowOf(context.Background(), aw.comp, win)
	})
	return err
}

// Flush queues any partial window, waits for all background work, and
// returns the first error encountered by a worker or the sink. The writer
// cannot be used afterwards.
func (aw *AsyncWriterOf[F]) Flush() error {
	if aw.pending != nil && aw.pending.Len() > 0 {
		if err := aw.enqueue(); err != nil {
			aw.pipe.Close()
			return err
		}
	}
	return aw.pipe.Close()
}

// Close drains background work without flushing any partial window — the
// abort path after an error. Like Flush, the writer cannot be used
// afterwards. Close is idempotent.
func (aw *AsyncWriterOf[F]) Close() error {
	aw.pending = nil
	return aw.pipe.Close()
}

// SlicesIn reports the number of slices accepted.
func (aw *AsyncWriterOf[F]) SlicesIn() int { return aw.slicesIn }

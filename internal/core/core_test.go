package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"stwave/internal/grid"
	"stwave/internal/metrics"
	"stwave/internal/wavelet"
)

// coherentWindow builds a window whose slices evolve smoothly in space and
// time — the regime where the paper's 4D compression shines.
func coherentWindow(d grid.Dims, slices int, phase float64) *grid.Window {
	w := grid.NewWindow(d)
	for t := 0; t < slices; t++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		tt := float64(t) * 0.05
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 0; x < d.Nx; x++ {
					fx := float64(x) / float64(d.Nx)
					fy := float64(y) / float64(d.Ny)
					fz := float64(z) / float64(d.Nz)
					v := math.Sin(2*math.Pi*(fx+tt)+phase)*math.Cos(2*math.Pi*fy) +
						0.5*math.Sin(2*math.Pi*(2*fz-tt))
					f.Set(x, y, z, v)
				}
			}
		}
		if err := w.Append(f, float64(t)); err != nil {
			panic(err)
		}
	}
	return w
}

// noisyWindow builds temporally incoherent data (independent noise per
// slice) — the regime where 4D compression loses its edge.
func noisyWindow(rng *rand.Rand, d grid.Dims, slices int) *grid.Window {
	w := grid.NewWindow(d)
	for t := 0; t < slices; t++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		for i := range f.Data {
			f.Data[i] = rng.NormFloat64()
		}
		if err := w.Append(f, float64(t)); err != nil {
			panic(err)
		}
	}
	return w
}

func windowNRMSE(t *testing.T, orig, recon *grid.Window) float64 {
	t.Helper()
	ac := metrics.NewAccumulator()
	for i := range orig.Slices {
		if err := ac.Add(orig.Slices[i].Data, recon.Slices[i].Data); err != nil {
			t.Fatal(err)
		}
	}
	return ac.NRMSE()
}

func TestOptionsValidate(t *testing.T) {
	good := DefaultOptions()
	if err := good.Validate(); err != nil {
		t.Errorf("DefaultOptions invalid: %v", err)
	}
	bad := []Options{
		func() Options { o := DefaultOptions(); o.Mode = Mode(7); return o }(),
		func() Options { o := DefaultOptions(); o.SpatialKernel = wavelet.Kernel(9); return o }(),
		func() Options { o := DefaultOptions(); o.TemporalKernel = wavelet.Kernel(9); return o }(),
		func() Options { o := DefaultOptions(); o.WindowSize = 1; return o }(),
		func() Options { o := DefaultOptions(); o.Ratio = 0.5; return o }(),
		func() Options { o := DefaultOptions(); o.SpatialLevels = -2; return o }(),
		func() Options { o := DefaultOptions(); o.TemporalLevels = -3; return o }(),
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d validated", i)
		}
	}
	// 3D mode ignores temporal settings entirely.
	o3 := Options{Mode: Spatial3D, SpatialKernel: wavelet.CDF97, Ratio: 8, SpatialLevels: -1, TemporalLevels: -1}
	if err := o3.Validate(); err != nil {
		t.Errorf("3D options invalid: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if Spatial3D.String() != "3D" || Spatiotemporal4D.String() != "4D" {
		t.Error("mode labels must match the paper's table headings")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode formatting")
	}
}

func TestCompressorRejectsEmptyWindow(t *testing.T) {
	c, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompressWindow(grid.NewWindow(grid.Dims{Nx: 4, Ny: 4, Nz: 4})); err == nil {
		t.Error("expected error for empty window")
	}
}

func TestRoundTripDoesNotModifyInput(t *testing.T) {
	d := grid.Dims{Nx: 12, Ny: 10, Nz: 8}
	w := coherentWindow(d, 10, 0)
	orig := w.Clone()
	c, err := New(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RoundTrip(w); err != nil {
		t.Fatal(err)
	}
	for i := range w.Slices {
		for j := range w.Slices[i].Data {
			if w.Slices[i].Data[j] != orig.Slices[i].Data[j] {
				t.Fatal("RoundTrip modified the input window")
			}
		}
	}
}

func TestRatioControlsRetainedCoefficients(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	w := coherentWindow(d, 20, 0)
	total := w.TotalSamples()
	for _, ratio := range []float64{8, 16, 32, 64, 128} {
		opts := DefaultOptions()
		opts.Ratio = ratio
		c, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		cw, err := c.CompressWindow(w)
		if err != nil {
			t.Fatal(err)
		}
		want := int(float64(total) / ratio)
		if got := cw.RetainedCoefficients(); got != want {
			t.Errorf("ratio %g: retained %d, want %d", ratio, got, want)
		}
	}
}

func Test3DAnd4DRetainSameBudget(t *testing.T) {
	// Section V-A4: "the total number of retained coefficients stays the
	// same no matter spatial or spatiotemporal compression."
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	w := coherentWindow(d, 16, 0)
	for _, mode := range []Mode{Spatial3D, Spatiotemporal4D} {
		opts := DefaultOptions()
		opts.Mode = mode
		opts.WindowSize = 16
		opts.Ratio = 16
		c, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		cw, err := c.CompressWindow(w)
		if err != nil {
			t.Fatal(err)
		}
		want := w.TotalSamples() / 16
		if got := cw.RetainedCoefficients(); got != want {
			t.Errorf("%v: retained %d, want %d", mode, got, want)
		}
	}
}

func TestLosslessAtRatio1(t *testing.T) {
	d := grid.Dims{Nx: 10, Ny: 10, Nz: 10}
	w := coherentWindow(d, 10, 1)
	opts := DefaultOptions()
	opts.WindowSize = 10
	opts.Ratio = 1
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := c.RoundTrip(w)
	if err != nil {
		t.Fatal(err)
	}
	// Ratio 1 keeps all coefficients; the only loss is float32 encoding.
	if e := windowNRMSE(t, w, recon); e > 1e-6 {
		t.Errorf("ratio 1 NRMSE = %g, want < 1e-6 (float32 quantization only)", e)
	}
}

// The paper's headline claim: on coherent data, 4D compression roughly
// halves the error of 3D at equal storage (P1).
func Test4DBeats3DOnCoherentData(t *testing.T) {
	d := grid.Dims{Nx: 20, Ny: 20, Nz: 20}
	w := coherentWindow(d, 20, 0.3)
	errFor := func(mode Mode) float64 {
		opts := DefaultOptions()
		opts.Mode = mode
		opts.WindowSize = 20
		opts.Ratio = 32
		c, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		recon, _, err := c.RoundTrip(w)
		if err != nil {
			t.Fatal(err)
		}
		return windowNRMSE(t, w, recon)
	}
	e3 := errFor(Spatial3D)
	e4 := errFor(Spatiotemporal4D)
	if e4 >= e3 {
		t.Errorf("4D NRMSE %.4g not better than 3D %.4g on coherent data", e4, e3)
	}
	if e4 > e3/1.5 {
		t.Logf("note: 4D/3D error ratio = %.2f (paper reports ~0.5 on res=1 data)", e4/e3)
	}
}

// On temporally incoherent (noise) data the 4D advantage must vanish or
// reverse — the paper's Section V-E limitation.
func Test4DAdvantageVanishesOnNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := grid.Dims{Nx: 12, Ny: 12, Nz: 12}
	w := noisyWindow(rng, d, 20)
	errFor := func(mode Mode) float64 {
		opts := DefaultOptions()
		opts.Mode = mode
		opts.WindowSize = 20
		opts.Ratio = 8
		c, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		recon, _, err := c.RoundTrip(w)
		if err != nil {
			t.Fatal(err)
		}
		return windowNRMSE(t, w, recon)
	}
	e3 := errFor(Spatial3D)
	e4 := errFor(Spatiotemporal4D)
	// 4D must not be dramatically better on pure noise; allow parity.
	if e4 < e3*0.8 {
		t.Errorf("4D NRMSE %.4g suspiciously better than 3D %.4g on incoherent noise", e4, e3)
	}
}

func TestPerSliceBudgetAblation(t *testing.T) {
	d := grid.Dims{Nx: 12, Ny: 12, Nz: 12}
	w := coherentWindow(d, 20, 0.7)
	opts := DefaultOptions()
	opts.WindowSize = 20
	opts.Ratio = 32
	opts.PerSliceBudget = true
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	// Budget must still match in total, distributed evenly per slice.
	perSlice := d.Len() / 32
	for i, b := range cw.Blocks {
		if b.Retained() != perSlice {
			t.Errorf("slice %d retained %d, want %d with per-slice budget", i, b.Retained(), perSlice)
		}
	}
	if _, err := Decompress(cw); err != nil {
		t.Fatal(err)
	}
}

func TestShortFinalWindowAdaptsTemporalLevels(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	w := coherentWindow(d, 7, 0) // shorter than WindowSize 20
	opts := DefaultOptions()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	recon, cw, err := c.RoundTrip(w)
	if err != nil {
		t.Fatal(err)
	}
	if cw.TemporalLevels > wavelet.MaxLevels(wavelet.CDF97, 7) {
		t.Errorf("temporal levels %d too deep for 7 slices", cw.TemporalLevels)
	}
	if e := windowNRMSE(t, w, recon); e > 0.2 {
		t.Errorf("short-window NRMSE %g unexpectedly large", e)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	d := grid.Dims{Nx: 9, Ny: 7, Nz: 5}
	w := coherentWindow(d, 10, 0.2)
	opts := DefaultOptions()
	opts.WindowSize = 10
	opts.Ratio = 8
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := cw.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Errorf("WriteTo returned %d, buffer has %d", n, buf.Len())
	}
	cw2, err := ReadCompressedWindow(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cw2.Dims != cw.Dims || cw2.NumSlices() != cw.NumSlices() {
		t.Fatalf("header mismatch: %v/%d vs %v/%d", cw2.Dims, cw2.NumSlices(), cw.Dims, cw.NumSlices())
	}
	if cw2.SpatialLevels != cw.SpatialLevels || cw2.TemporalLevels != cw.TemporalLevels {
		t.Error("levels not preserved")
	}
	if cw2.Opts.Ratio != cw.Opts.Ratio {
		t.Error("ratio not preserved")
	}
	r1, err := Decompress(cw)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Decompress(cw2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Slices {
		for j := range r1.Slices[i].Data {
			if r1.Slices[i].Data[j] != r2.Slices[i].Data[j] {
				t.Fatal("deserialized window decompresses differently")
			}
		}
	}
}

func TestReadCompressedWindowRejectsGarbage(t *testing.T) {
	if _, err := ReadCompressedWindow(bytes.NewReader([]byte("not a window"))); err == nil {
		t.Error("expected error for bad magic")
	}
	if _, err := ReadCompressedWindow(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestStreamWriter4D(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	var got []*CompressedWindow
	opts := DefaultOptions()
	opts.WindowSize = 10
	opts.Ratio = 8
	wr, err := NewWriter(opts, d, func(cw *CompressedWindow) error {
		got = append(got, cw)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	src := coherentWindow(d, 25, 0)
	for i, s := range src.Slices {
		if err := wr.WriteSlice(s, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 {
		t.Fatalf("before flush: %d windows, want 2", len(got))
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("after flush: %d windows, want 3", len(got))
	}
	wantLens := []int{10, 10, 5}
	for i, cw := range got {
		if cw.NumSlices() != wantLens[i] {
			t.Errorf("window %d has %d slices, want %d", i, cw.NumSlices(), wantLens[i])
		}
	}
	st := wr.Stats()
	if st.SlicesIn != 25 || st.WindowsOut != 3 || st.PendingSlices != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.PeakBufferSize != int64(10*d.Len())*8 {
		t.Errorf("peak buffer = %d, want %d", st.PeakBufferSize, 10*d.Len()*8)
	}
	// Times must be preserved through windows.
	if got[2].Times[0] != 20 {
		t.Errorf("third window starts at t=%g, want 20", got[2].Times[0])
	}
}

func TestStreamWriter3DFlushesImmediately(t *testing.T) {
	d := grid.Dims{Nx: 6, Ny: 6, Nz: 6}
	count := 0
	opts := Options{Mode: Spatial3D, SpatialKernel: wavelet.CDF97, Ratio: 8, SpatialLevels: -1}
	wr, err := NewWriter(opts, d, func(cw *CompressedWindow) error {
		count++
		if cw.NumSlices() != 1 {
			t.Errorf("3D window has %d slices", cw.NumSlices())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	src := coherentWindow(d, 5, 0)
	for i, s := range src.Slices {
		if err := wr.WriteSlice(s, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if count != 5 {
		t.Errorf("3D mode flushed %d windows for 5 slices", count)
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Error("3D flush emitted extra windows")
	}
}

func TestStreamWriterValidation(t *testing.T) {
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	if _, err := NewWriter(DefaultOptions(), d, nil); err == nil {
		t.Error("expected error for nil sink")
	}
	if _, err := NewWriter(DefaultOptions(), grid.Dims{}, func(*CompressedWindow) error { return nil }); err == nil {
		t.Error("expected error for invalid dims")
	}
	wr, err := NewWriter(DefaultOptions(), d, func(*CompressedWindow) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := wr.WriteSlice(grid.NewField3D(5, 4, 4), 0); err == nil {
		t.Error("expected error for mismatched slice dims")
	}
}

// P2 in miniature: 4D at 2x the ratio should be comparable to 3D.
func TestP2StorageHalving(t *testing.T) {
	d := grid.Dims{Nx: 20, Ny: 20, Nz: 20}
	w := coherentWindow(d, 20, 0.1)
	errFor := func(mode Mode, ratio float64) float64 {
		opts := DefaultOptions()
		opts.Mode = mode
		opts.WindowSize = 20
		opts.Ratio = ratio
		c, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		recon, _, err := c.RoundTrip(w)
		if err != nil {
			t.Fatal(err)
		}
		return windowNRMSE(t, w, recon)
	}
	e3at64 := errFor(Spatial3D, 64)
	e4at128 := errFor(Spatiotemporal4D, 128)
	// The paper finds 4D@128:1 comparable to 3D@64:1 on coherent data.
	if e4at128 > e3at64*1.5 {
		t.Errorf("P2 violated: 4D@128:1 NRMSE %.4g vs 3D@64:1 %.4g", e4at128, e3at64)
	}
}

func TestDeflatedSerializationRoundTrip(t *testing.T) {
	d := grid.Dims{Nx: 10, Ny: 8, Nz: 6}
	w := coherentWindow(d, 12, 0.4)
	opts := DefaultOptions()
	opts.WindowSize = 12
	opts.Ratio = 64
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	var raw, defl bytes.Buffer
	if _, err := cw.WriteTo(&raw); err != nil {
		t.Fatal(err)
	}
	n, err := cw.WriteToDeflated(&defl)
	if err != nil {
		t.Fatal(err)
	}
	if int64(defl.Len()) != n {
		t.Errorf("WriteToDeflated returned %d, wrote %d", n, defl.Len())
	}
	if defl.Len() >= raw.Len() {
		t.Errorf("deflated %d bytes not below raw %d at 64:1", defl.Len(), raw.Len())
	}
	cw2, err := ReadCompressedWindow(&defl)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Decompress(cw)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Decompress(cw2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Slices {
		for j := range r1.Slices[i].Data {
			if r1.Slices[i].Data[j] != r2.Slices[i].Data[j] {
				t.Fatal("deflated round trip decompresses differently")
			}
		}
	}
}

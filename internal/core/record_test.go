package core

import (
	"errors"
	"hash/crc32"
	"testing"
)

func TestRecordHeaderRoundTrip(t *testing.T) {
	payload := []byte("spatiotemporal wavelet window payload")
	h := RecordHeader{Length: int64(len(payload)), PayloadCRC: crc32.ChecksumIEEE(payload)}
	b := EncodeRecordHeader(h)
	got, err := ParseRecordHeader(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip: got %+v, want %+v", got, h)
	}
}

func TestParseRecordHeaderRejects(t *testing.T) {
	good := EncodeRecordHeader(RecordHeader{Length: 10, PayloadCRC: 42})

	short := good[:RecordHeaderSize-1]
	if _, err := ParseRecordHeader(short); !errors.Is(err, ErrNotRecord) {
		t.Errorf("short header: err = %v, want ErrNotRecord", err)
	}

	badMagic := good
	badMagic[0] ^= 0xFF
	if _, err := ParseRecordHeader(badMagic[:]); !errors.Is(err, ErrNotRecord) {
		t.Errorf("bad magic: err = %v, want ErrNotRecord", err)
	}

	// Flip one bit anywhere in the protected region: the header CRC must
	// catch it.
	for bit := 0; bit < 16*8; bit++ {
		b := EncodeRecordHeader(RecordHeader{Length: 1 << 20, PayloadCRC: 0xDEADBEEF})
		b[bit/8] ^= 1 << (bit % 8)
		if _, err := ParseRecordHeader(b[:]); !errors.Is(err, ErrNotRecord) {
			t.Fatalf("bit flip at %d accepted", bit)
		}
	}

	// Corrupt the CRC field itself.
	badCRC := EncodeRecordHeader(RecordHeader{Length: 5, PayloadCRC: 1})
	badCRC[16] ^= 0x01
	if _, err := ParseRecordHeader(badCRC[:]); !errors.Is(err, ErrNotRecord) {
		t.Errorf("bad header CRC: err = %v, want ErrNotRecord", err)
	}
}

package core

import (
	"math"
	"testing"

	"stwave/internal/codec"
	"stwave/internal/grid"
)

func maxErrOpts(bound float64) Options {
	o := DefaultOptions()
	o.WindowSize = 8
	o.MaxErr = bound
	o.Workers = 2
	return o
}

// maxAbsErrSplit measures the achieved maximum absolute error inside and
// outside the ROI box (background only when roi is nil).
func maxAbsErrSplit(t *testing.T, orig, recon *grid.Window, roi *ROIBounds) (bg, in float64) {
	t.Helper()
	d := orig.Dims
	for i := range orig.Slices {
		a, b := orig.Slices[i].Data, recon.Slices[i].Data
		idx := 0
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 0; x < d.Nx; x++ {
					e := math.Abs(a[idx] - b[idx])
					if roi != nil && roi.Contains(x, y, z) {
						if e > in {
							in = e
						}
					} else if e > bg {
						bg = e
					}
					idx++
				}
			}
		}
	}
	return bg, in
}

// TestMaxErrBoundHolds: the error-bounded mode's contract, verified
// end-to-end through an independent decompression, for each codec.
func TestMaxErrBoundHolds(t *testing.T) {
	dims := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	w := coherentWindow(dims, 8, 0.4)
	for _, cdc := range []codec.Codec{codec.Sparse(), codec.Entropy()} {
		const bound = 1e-2
		o := maxErrOpts(bound)
		o.Codec = cdc
		c, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		recon, cw, err := c.RoundTrip(w)
		if err != nil {
			t.Fatalf("%s: %v", cdc.Name(), err)
		}
		bg, _ := maxAbsErrSplit(t, w, recon, nil)
		if bg > bound {
			t.Fatalf("%s: achieved max error %g exceeds bound %g", cdc.Name(), bg, bound)
		}
		if cw.MaxErrAchieved > bound || cw.MaxErrAchieved <= 0 {
			t.Fatalf("%s: recorded achieved error %g inconsistent with bound %g", cdc.Name(), cw.MaxErrAchieved, bound)
		}
		// The mode must actually compress: a bound this loose should drop
		// a large share of coefficients.
		total := dims.Len() * 8
		if kept := cw.RetainedCoefficients(); kept >= total/2 {
			t.Fatalf("%s: error-bounded mode kept %d of %d coefficients — thresholds not applied?", cdc.Name(), kept, total)
		}
	}
}

// TestMaxErrROITighterBound: the ROI box must meet its stricter bound
// while the background meets the looser one, and the ROI must come out
// at least as accurate as the background.
func TestMaxErrROITighterBound(t *testing.T) {
	dims := grid.Dims{Nx: 24, Ny: 24, Nz: 24}
	w := coherentWindow(dims, 8, 0.8)
	roi := &ROIBounds{X0: 8, Y0: 8, Z0: 8, X1: 16, Y1: 16, Z1: 16, MaxErr: 5e-4}
	o := maxErrOpts(2e-2)
	o.ROI = roi
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	recon, cw, err := c.RoundTrip(w)
	if err != nil {
		t.Fatal(err)
	}
	bg, in := maxAbsErrSplit(t, w, recon, roi)
	if bg > o.MaxErr {
		t.Fatalf("background error %g exceeds bound %g", bg, o.MaxErr)
	}
	if in > roi.MaxErr {
		t.Fatalf("ROI error %g exceeds ROI bound %g", in, roi.MaxErr)
	}
	if cw.ROIMaxErrAchieved > roi.MaxErr {
		t.Fatalf("recorded ROI error %g exceeds ROI bound %g", cw.ROIMaxErrAchieved, roi.MaxErr)
	}
}

// TestMaxErrProgressive: error-bounded thresholds compose with the
// level-major layout — the verification loop runs on the grouped
// encoding, so the stored stream is the verified one.
func TestMaxErrProgressive(t *testing.T) {
	dims := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	w := coherentWindow(dims, 8, 0.1)
	const bound = 1e-2
	o := maxErrOpts(bound)
	o.Progressive = true
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	recon, cw, err := c.RoundTrip(w)
	if err != nil {
		t.Fatal(err)
	}
	if !cw.Progressive() {
		t.Fatal("progressive option ignored in error-bounded mode")
	}
	bg, _ := maxAbsErrSplit(t, w, recon, nil)
	if bg > bound {
		t.Fatalf("achieved max error %g exceeds bound %g", bg, bound)
	}
}

// TestMaxErrUnreachableBound: a bound below the sparse codec's float32
// quantization floor must fail typed instead of looping forever or
// silently missing the bound.
func TestMaxErrUnreachableBound(t *testing.T) {
	dims := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	w := coherentWindow(dims, 4, 0.0)
	o := maxErrOpts(1e-12)
	o.WindowSize = 4
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompressWindow(w); err == nil {
		t.Fatal("accepted an error bound below the codec quantization floor")
	}
}

// TestMaxErrOptionValidation covers the new Options surface.
func TestMaxErrOptionValidation(t *testing.T) {
	bad := []Options{
		func() Options { o := DefaultOptions(); o.MaxErr = -1; return o }(),
		func() Options {
			o := DefaultOptions()
			o.ROI = &ROIBounds{X0: 0, Y0: 0, Z0: 0, X1: 4, Y1: 4, Z1: 4, MaxErr: 1e-3}
			return o // ROI without MaxErr mode
		}(),
		func() Options {
			o := DefaultOptions()
			o.MaxErr = 1e-2
			o.ROI = &ROIBounds{X0: 4, Y0: 0, Z0: 0, X1: 4, Y1: 4, Z1: 4, MaxErr: 1e-3}
			return o // empty box
		}(),
		func() Options {
			o := DefaultOptions()
			o.MaxErr = 1e-3
			o.ROI = &ROIBounds{X0: 0, Y0: 0, Z0: 0, X1: 4, Y1: 4, Z1: 4, MaxErr: 1e-2}
			return o // ROI looser than background
		}(),
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	good := DefaultOptions()
	good.MaxErr = 1e-2
	good.ROI = &ROIBounds{X0: 1, Y0: 1, Z0: 1, X1: 2, Y1: 2, Z1: 2, MaxErr: 1e-3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid ROI options rejected: %v", err)
	}
}

package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestGapMarkerRoundTrip(t *testing.T) {
	for _, g := range []GapMarker{
		{Slices: 1, T0: 0, T1: 0, Reason: GapShed},
		{Slices: 20, T0: 40, T1: 59, Reason: GapShed},
		{Slices: 7, T0: -3.5, T1: 12.25, Reason: GapWriteFailed},
	} {
		b := g.Encode()
		got, err := ParseGapMarker(b[:])
		if err != nil {
			t.Fatalf("ParseGapMarker(%+v): %v", g, err)
		}
		if got != g {
			t.Fatalf("round trip: got %+v, want %+v", got, g)
		}
		if !IsGapPayload(b[:]) {
			t.Fatalf("IsGapPayload rejected a valid marker")
		}
	}
}

func TestGapMarkerRejectsDamage(t *testing.T) {
	valid := GapMarker{Slices: 20, T0: 0, T1: 19, Reason: GapShed}.Encode()
	cases := map[string][]byte{
		"empty":     {},
		"short":     valid[:GapMarkerSize-1],
		"bad magic": append([]byte("STWX"), valid[4:]...),
	}
	// Any single flipped bit must be caught by the CRC (or the magic).
	for i := 0; i < GapMarkerSize; i++ {
		b := append([]byte(nil), valid[:]...)
		b[i] ^= 0x01
		cases[fmt.Sprintf("flip@%d", i)] = b
	}
	for name, b := range cases {
		if _, err := ParseGapMarker(b); !errors.Is(err, ErrNotGap) {
			t.Errorf("%s: got %v, want ErrNotGap", name, err)
		}
	}
}

func TestReadWindowInfoGap(t *testing.T) {
	g := GapMarker{Slices: 20, T0: 40, T1: 59, Reason: GapShed}
	b := g.Encode()
	wi, err := ReadWindowInfo(bytes.NewReader(b[:]))
	if err != nil {
		t.Fatalf("ReadWindowInfo on gap payload: %v", err)
	}
	if wi.Gap == nil || *wi.Gap != g {
		t.Fatalf("Gap = %+v, want %+v", wi.Gap, g)
	}
	if wi.NumSlices != g.Slices {
		t.Fatalf("NumSlices = %d, want %d (timeline accounting)", wi.NumSlices, g.Slices)
	}
	if wi.RawSizeBytes() != 0 {
		t.Fatalf("gap RawSizeBytes = %d, want 0", wi.RawSizeBytes())
	}
	// ReadCompressedWindow reads a full 40-byte window header before
	// branching, so pad the 32-byte marker; the magic routing is what is
	// under test.
	padded := append(append([]byte(nil), b[:]...), make([]byte, 8)...)
	if _, err := ReadCompressedWindow(bytes.NewReader(padded)); !errors.Is(err, ErrGapWindow) {
		t.Fatalf("ReadCompressedWindow on gap payload: %v, want ErrGapWindow", err)
	}
}

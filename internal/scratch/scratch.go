// Package scratch is the pipeline's shared scratch-buffer arena: a set of
// size-classed sync.Pools for the temporary float64, float32, and uint64 slices the
// compression hot path burns through (transform tile slabs, threshold
// candidate buffers, cloned work windows). Reusing them drives the
// steady-state allocation count of core.CompressWindow toward zero.
//
// Buffers are pooled by power-of-two capacity class. Get functions return
// a slice of exactly the requested length whose contents are arbitrary —
// callers must fully overwrite before reading. Put functions accept any
// slice; buffers whose capacity is not a pooled class (or that are too
// small to be worth keeping) are dropped on the floor, so it is always
// safe to Put a buffer that came from somewhere else.
package scratch

import (
	"math/bits"
	"sync"

	"stwave/internal/num"
)

// minClass is the smallest pooled capacity (1 << minClass). Buffers under
// 256 elements are cheaper to allocate than to pool.
const minClass = 8

// maxClass is the largest pooled capacity exponent (1 << maxClass
// elements, 128 Mi — a 2 GiB float64 buffer). Larger requests allocate
// directly and are never pooled.
const maxClass = 27

// pools[c] holds *[]T buffers of capacity exactly 1 << c.
var (
	floatPools   [maxClass + 1]sync.Pool
	float32Pools [maxClass + 1]sync.Pool
	uint64Pools  [maxClass + 1]sync.Pool
	// Box pools recycle the *[]T header boxes between Get and Put: a
	// pointer round-trips through a sync.Pool without allocating, but
	// boxing a fresh slice header on every Put would cost one small heap
	// allocation per call — exactly the steady-state garbage this package
	// exists to remove.
	floatBoxes   sync.Pool
	float32Boxes sync.Pool
	uint64Boxes  sync.Pool
)

// class returns the pool class for a request of n elements: the smallest
// c with 1<<c >= n, clamped to minClass. ok is false when n is too large
// to pool.
func class(n int) (c int, ok bool) {
	if n <= 1<<minClass {
		return minClass, true
	}
	c = bits.Len(uint(n - 1))
	return c, c <= maxClass
}

// putClass returns the pool class a buffer of capacity cap belongs to:
// pooled classes have exactly power-of-two capacity. ok is false for
// foreign capacities, which are dropped rather than pooled.
func putClass(capacity int) (c int, ok bool) {
	if capacity < 1<<minClass || capacity&(capacity-1) != 0 {
		return 0, false
	}
	c = bits.Len(uint(capacity)) - 1
	return c, c <= maxClass
}

// Floats returns a float64 slice of length n with arbitrary contents.
func Floats(n int) []float64 {
	if c, ok := class(n); ok {
		if p, _ := floatPools[c].Get().(*[]float64); p != nil {
			s := *p
			*p = nil
			floatBoxes.Put(p)
			return s[:n]
		}
		return make([]float64, n, 1<<c)
	}
	return make([]float64, n)
}

// PutFloats returns a buffer to the arena for reuse.
func PutFloats(s []float64) {
	if c, ok := putClass(cap(s)); ok {
		p, _ := floatBoxes.Get().(*[]float64)
		if p == nil {
			p = new([]float64)
		}
		*p = s[:cap(s)]
		floatPools[c].Put(p)
	}
}

// Floats32 returns a float32 slice of length n with arbitrary contents.
func Floats32(n int) []float32 {
	if c, ok := class(n); ok {
		if p, _ := float32Pools[c].Get().(*[]float32); p != nil {
			s := *p
			*p = nil
			float32Boxes.Put(p)
			return s[:n]
		}
		return make([]float32, n, 1<<c)
	}
	return make([]float32, n)
}

// PutFloats32 returns a buffer to the arena for reuse.
func PutFloats32(s []float32) {
	if c, ok := putClass(cap(s)); ok {
		p, _ := float32Boxes.Get().(*[]float32)
		if p == nil {
			p = new([]float32)
		}
		*p = s[:cap(s)]
		float32Pools[c].Put(p)
	}
}

// FloatsOf returns a slice of length n at precision F with arbitrary
// contents — the precision-generic pipeline stages' view of the arena.
// The pointer-based type switch dispatches to the concrete pool without
// boxing the slice itself.
func FloatsOf[F num.Float](n int) []F {
	var s []F
	switch p := any(&s).(type) {
	case *[]float64:
		*p = Floats(n)
	case *[]float32:
		*p = Floats32(n)
	}
	return s
}

// PutFloatsOf returns a precision-generic buffer to the arena for reuse.
func PutFloatsOf[F num.Float](s []F) {
	switch p := any(&s).(type) {
	case *[]float64:
		PutFloats(*p)
	case *[]float32:
		PutFloats32(*p)
	}
}

// Uint64s returns a uint64 slice of length n with arbitrary contents.
func Uint64s(n int) []uint64 {
	if c, ok := class(n); ok {
		if p, _ := uint64Pools[c].Get().(*[]uint64); p != nil {
			s := *p
			*p = nil
			uint64Boxes.Put(p)
			return s[:n]
		}
		return make([]uint64, n, 1<<c)
	}
	return make([]uint64, n)
}

// PutUint64s returns a buffer to the arena for reuse.
func PutUint64s(s []uint64) {
	if c, ok := putClass(cap(s)); ok {
		p, _ := uint64Boxes.Get().(*[]uint64)
		if p == nil {
			p = new([]uint64)
		}
		*p = s[:cap(s)]
		uint64Pools[c].Put(p)
	}
}

package scratch

import (
	"testing"
)

func TestFloatsLengthAndReuse(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 1000, 1 << 12, 1<<12 + 1} {
		s := Floats(n)
		if len(s) != n {
			t.Fatalf("Floats(%d) len = %d", n, len(s))
		}
		PutFloats(s)
		s2 := Floats(n)
		if len(s2) != n {
			t.Fatalf("Floats(%d) after Put len = %d", n, len(s2))
		}
		PutFloats(s2)
	}
}

func TestUint64sLength(t *testing.T) {
	s := Uint64s(300)
	if len(s) != 300 || cap(s) != 512 {
		t.Fatalf("Uint64s(300) len=%d cap=%d, want 300/512", len(s), cap(s))
	}
	PutUint64s(s)
}

func TestPutForeignBufferSafe(t *testing.T) {
	// Odd-capacity buffers must be dropped, not pooled: a later Get must
	// still return a correctly-sized slice.
	PutFloats(make([]float64, 300)) // cap 300 is not a power of two
	s := Floats(260)
	if len(s) != 260 || cap(s) < 260 {
		t.Fatalf("Floats(260) after foreign Put: len=%d cap=%d", len(s), cap(s))
	}
	PutFloats(nil) // must not panic
}

func TestClassBoundaries(t *testing.T) {
	if c, ok := class(1); !ok || c != minClass {
		t.Errorf("class(1) = %d, %v", c, ok)
	}
	if c, ok := class(1 << minClass); !ok || c != minClass {
		t.Errorf("class(256) = %d, %v", c, ok)
	}
	if c, ok := class(1<<minClass + 1); !ok || c != minClass+1 {
		t.Errorf("class(257) = %d, %v", c, ok)
	}
	if _, ok := class(1<<maxClass + 1); ok {
		t.Error("class above maxClass should not pool")
	}
	// Oversized requests still work, unpooled.
	if _, ok := putClass(3000); ok {
		t.Error("putClass(3000) should reject non-power-of-two capacity")
	}
}

package codec

import (
	"fmt"
	"io"

	"stwave/internal/entropy"
	"stwave/internal/par"
)

// entropyCodec is the quantize → entropy-code backend from
// internal/entropy. Params tune only the encode side; decoding is fully
// self-describing (quantizer step, Huffman table, and chunk layout all
// live in the block headers), so the registry's default instance reads
// blocks produced with any Params.
type entropyCodec struct {
	params entropy.Params
}

// Entropy returns the entropy backend (format ID 3) with default
// parameters: 16 magnitude bits and a per-block adaptive step.
func Entropy() Codec { return entropyCodec{params: entropy.DefaultParams()} }

// EntropyWith returns an entropy backend that encodes with the given
// parameters. It validates them now, so a misconfigured CLI flag fails at
// startup rather than on the first window.
func EntropyWith(p entropy.Params) (Codec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return entropyCodec{params: p}, nil
}

func (entropyCodec) ID() ID       { return IDEntropy }
func (entropyCodec) Name() string { return "entropy" }

func (c entropyCodec) EncodeSlices(datas [][]float64, workers int) ([]Block, error) {
	blocks := make([]Block, len(datas))
	errs := make([]error, len(datas))
	// Slices encode concurrently and each slice's chunks encode
	// concurrently below that; Split keeps the product within the budget.
	outer, inner := par.Split(workers, len(datas))
	par.For(len(datas), outer, 1, func(start, end int) {
		for i := start; i < end; i++ {
			b, err := entropy.Encode(datas[i], c.params, inner)
			blocks[i], errs[i] = b, err
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("codec: encoding slice %d: %w", i, err)
		}
	}
	return blocks, nil
}

func (c entropyCodec) EncodeSlices32(datas [][]float32, workers int) ([]Block, error) {
	blocks := make([]Block, len(datas))
	errs := make([]error, len(datas))
	outer, inner := par.Split(workers, len(datas))
	par.For(len(datas), outer, 1, func(start, end int) {
		for i := start; i < end; i++ {
			b, err := entropy.Encode32(datas[i], c.params, inner)
			blocks[i], errs[i] = b, err
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("codec: encoding slice %d: %w", i, err)
		}
	}
	return blocks, nil
}

func (c entropyCodec) WriteBlock(w io.Writer, b Block) (int64, error) {
	eb, ok := b.(*entropy.Block)
	if !ok {
		return 0, fmt.Errorf("codec: entropy cannot write a %T block", b)
	}
	return eb.WriteTo(w)
}

func (c entropyCodec) ReadBlock(r io.Reader) (Block, error) {
	return entropy.Read(r)
}

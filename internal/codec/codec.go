// Package codec defines the pluggable boundary between the compression
// core and coefficient backends: a Codec turns thresholded coefficient
// slices into Blocks and moves Blocks to and from streams, identified on
// disk by a one-byte format ID recorded in every serialized window
// header. The core pipeline (internal/core) and the container store
// (internal/storage) speak only these interfaces, so a new backend — like
// the quantize → Huffman coder in internal/entropy, or a future neural
// coder — drops in without touching either layer.
//
// Three backends ship: "sparse" (bitmap + raw float32 values, the
// original format), "deflate" (the same blocks through a DEFLATE frame),
// and "entropy" (quantized, Huffman/exp-Golomb coded — roughly half the
// size of sparse at equal reported error). All three encode and decode
// chunk-parallel under the internal/par worker budget and produce
// bit-identical streams at every worker count.
package codec

import (
	"fmt"
	"io"
	"sort"
)

// ID is the on-disk format identifier of a codec. It is recorded as the
// version byte of every serialized window header, so a reader can resolve
// the right backend before touching any payload bytes.
type ID byte

const (
	// IDSparse is the original format: significance bitmap + raw float32
	// values (serialized window format version 1).
	IDSparse ID = 1
	// IDDeflate is the sparse encoding wrapped in a DEFLATE frame
	// (serialized window format version 2).
	IDDeflate ID = 2
	// IDEntropy is the quantize → canonical-Huffman backend from
	// internal/entropy (serialized window format version 3).
	IDEntropy ID = 3
)

// String returns the codec's registered name, or a numeric form for
// unknown IDs.
func (id ID) String() string {
	if c, err := ByID(id); err == nil {
		return c.Name()
	}
	return fmt.Sprintf("codec(%d)", byte(id))
}

// Block is one encoded coefficient slice. Implementations are immutable
// after construction and safe for concurrent reads.
type Block interface {
	// Total returns the number of coefficients the block covers.
	Total() int
	// Retained returns the number of surviving (nonzero) coefficients.
	Retained() int
	// EncodedSizeBytes returns the exact serialized size of the block.
	EncodedSizeBytes() int64
	// DecodeInto expands the block into out (length must equal Total) on
	// up to workers goroutines, zeroing discarded positions. Output is
	// identical for every worker count.
	DecodeInto(out []float64, workers int) error
	// DecodeInto32 is DecodeInto at single precision: the float32 pipeline's
	// native decode path, with no widen-then-narrow round trip. For blocks
	// that store exact float32 values (sparse, entropy-lossless) the output
	// bits equal the encoded input bits.
	DecodeInto32(out []float32, workers int) error
}

// IdealSizer is implemented by blocks that can report the paper's
// idealized accounting (4 bytes per retained coefficient, no
// significance-map overhead).
type IdealSizer interface {
	IdealSizeBytes() int64
}

// DeflatedSizer is implemented by blocks that can report their size after
// a DEFLATE entropy stage without keeping the bytes.
type DeflatedSizer interface {
	DeflatedSizeBytes() (int64, error)
}

// Codec encodes thresholded coefficient slices into Blocks and moves
// Blocks to and from byte streams. Implementations are stateless and safe
// for concurrent use.
type Codec interface {
	// ID returns the codec's on-disk format identifier.
	ID() ID
	// Name returns the codec's stable CLI-facing name ("sparse",
	// "entropy", ...).
	Name() string
	// EncodeSlices encodes one Block per coefficient slice on up to
	// workers goroutines. Zero-valued coefficients are treated as
	// discarded. Output is bit-identical for every worker count.
	EncodeSlices(datas [][]float64, workers int) ([]Block, error)
	// EncodeSlices32 is EncodeSlices at single precision. The serialized
	// bytes are identical to encoding the exactly-widened float64 copies —
	// the on-disk formats never stored more than float32 values — so a
	// reader cannot tell which precision produced a stream.
	EncodeSlices32(datas [][]float32, workers int) ([]Block, error)
	// WriteBlock serializes one of this codec's blocks. It fails on
	// blocks produced by a different codec.
	WriteBlock(w io.Writer, b Block) (int64, error)
	// ReadBlock deserializes one block, consuming exactly the block's
	// bytes from r — safe to call repeatedly on one stream. Corrupt or
	// forged input returns an error, never panics.
	ReadBlock(r io.Reader) (Block, error)
}

// The static registry. Codecs are compiled in, not plugged at runtime, so
// plain maps without locking are enough; they are populated at init and
// read-only afterwards.
var (
	byID   = map[ID]Codec{}
	byName = map[string]Codec{}
)

func register(c Codec) {
	if _, dup := byID[c.ID()]; dup {
		panic(fmt.Sprintf("codec: duplicate ID %d", byte(c.ID())))
	}
	if _, dup := byName[c.Name()]; dup {
		panic(fmt.Sprintf("codec: duplicate name %q", c.Name()))
	}
	byID[c.ID()] = c
	byName[c.Name()] = c
}

func init() {
	register(Sparse())
	register(Deflate())
	register(Entropy())
}

// ByID resolves a codec from its on-disk format identifier.
func ByID(id ID) (Codec, error) {
	c, ok := byID[id]
	if !ok {
		return nil, fmt.Errorf("codec: unknown format ID %d", byte(id))
	}
	return c, nil
}

// ByName resolves a codec from its CLI-facing name.
func ByName(name string) (Codec, error) {
	c, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("codec: unknown codec %q (have %v)", name, Names())
	}
	return c, nil
}

// Default returns the default backend (sparse — the original format).
func Default() Codec { return byID[IDSparse] }

// Names returns the registered codec names, sorted.
func Names() []string {
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

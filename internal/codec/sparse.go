package codec

import (
	"fmt"
	"io"

	"stwave/internal/compress"
)

// SparseBlock adapts *compress.SparseBlock to the Block interface (the
// underlying type predates it: Total is a field there and DecodeInto
// takes no worker count). It also forwards the ideal and deflated size
// accountings, so existing harness columns keep working through the
// interface.
type SparseBlock struct {
	*compress.SparseBlock
}

// WrapSparse adapts an existing sparse block to the Block interface.
func WrapSparse(b *compress.SparseBlock) SparseBlock { return SparseBlock{b} }

// Total returns the number of coefficients the block covers.
func (b SparseBlock) Total() int { return b.SparseBlock.Total }

// DecodeInto expands the block into out on up to workers goroutines.
func (b SparseBlock) DecodeInto(out []float64, workers int) error {
	return b.DecodeIntoP(out, workers)
}

// DecodeInto32 expands the block into a float32 slice, reproducing the
// stored float32 values bit-for-bit.
func (b SparseBlock) DecodeInto32(out []float32, workers int) error {
	return b.DecodeInto32P(out, workers)
}

// sparseCodec is the original backend: significance bitmap + raw float32
// values, chunk-parallel through compress.EncodeBlocks/DecodeIntoP.
type sparseCodec struct{}

// Sparse returns the sparse backend (format ID 1, the default).
func Sparse() Codec { return sparseCodec{} }

func (sparseCodec) ID() ID       { return IDSparse }
func (sparseCodec) Name() string { return "sparse" }

func (sparseCodec) EncodeSlices(datas [][]float64, workers int) ([]Block, error) {
	return wrapAll(compress.EncodeBlocks(datas, workers)), nil
}

func (sparseCodec) EncodeSlices32(datas [][]float32, workers int) ([]Block, error) {
	return wrapAll(compress.EncodeBlocks32(datas, workers)), nil
}

func (sparseCodec) WriteBlock(w io.Writer, b Block) (int64, error) {
	sb, err := asSparse(b, "sparse")
	if err != nil {
		return 0, err
	}
	return sb.WriteTo(w)
}

func (sparseCodec) ReadBlock(r io.Reader) (Block, error) {
	sb, err := compress.ReadSparseBlock(r)
	if err != nil {
		return nil, err
	}
	return WrapSparse(sb), nil
}

// deflateCodec shares the sparse encoding but frames every block through
// DEFLATE on the wire. Block sizes still report the raw sparse encoding
// (EncodedSizeBytes is a property of the blocks, which are shared with
// the sparse backend); the on-disk savings show up in the written byte
// counts and in DeflatedSizeBytes.
type deflateCodec struct{}

// Deflate returns the DEFLATE-framed sparse backend (format ID 2).
func Deflate() Codec { return deflateCodec{} }

func (deflateCodec) ID() ID       { return IDDeflate }
func (deflateCodec) Name() string { return "deflate" }

func (deflateCodec) EncodeSlices(datas [][]float64, workers int) ([]Block, error) {
	return wrapAll(compress.EncodeBlocks(datas, workers)), nil
}

func (deflateCodec) EncodeSlices32(datas [][]float32, workers int) ([]Block, error) {
	return wrapAll(compress.EncodeBlocks32(datas, workers)), nil
}

func (deflateCodec) WriteBlock(w io.Writer, b Block) (int64, error) {
	sb, err := asSparse(b, "deflate")
	if err != nil {
		return 0, err
	}
	return sb.WriteDeflated(w)
}

func (deflateCodec) ReadBlock(r io.Reader) (Block, error) {
	sb, err := compress.ReadDeflatedSparseBlock(r)
	if err != nil {
		return nil, err
	}
	return WrapSparse(sb), nil
}

func wrapAll(sbs []*compress.SparseBlock) []Block {
	blocks := make([]Block, len(sbs))
	for i, sb := range sbs {
		blocks[i] = WrapSparse(sb)
	}
	return blocks
}

func asSparse(b Block, codecName string) (*compress.SparseBlock, error) {
	sb, ok := b.(SparseBlock)
	if !ok {
		return nil, fmt.Errorf("codec: %s cannot write a %T block", codecName, b)
	}
	return sb.SparseBlock, nil
}

package codec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"stwave/internal/compress"
	"stwave/internal/entropy"
	"stwave/internal/fbits"
)

func testSlices(t *testing.T, nslices, n int) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(nslices)*1000 + int64(n)))
	datas := make([][]float64, nslices)
	for s := range datas {
		d := make([]float64, n)
		for i := 0; i < n/16; i++ {
			d[rng.Intn(n)] = rng.NormFloat64()
		}
		datas[s] = d
	}
	return datas
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"sparse", "deflate", "entropy"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, c.Name())
		}
		back, err := ByID(c.ID())
		if err != nil {
			t.Fatalf("ByID(%d): %v", c.ID(), err)
		}
		if back.Name() != name {
			t.Fatalf("ByID(%d) resolved %q, want %q", c.ID(), back.Name(), name)
		}
	}
	if _, err := ByName("zstd"); err == nil {
		t.Fatal("unknown codec name resolved")
	}
	if _, err := ByID(200); err == nil {
		t.Fatal("unknown codec ID resolved")
	}
	if Default().ID() != IDSparse {
		t.Fatalf("default codec is %v, want sparse", Default().ID())
	}
	if got := ID(200).String(); got != "codec(200)" {
		t.Fatalf("unknown ID String() = %q", got)
	}
	if got := IDEntropy.String(); got != "entropy" {
		t.Fatalf("IDEntropy.String() = %q", got)
	}
}

func TestCodecRoundtrip(t *testing.T) {
	datas := testSlices(t, 4, 5000)
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		blocks, err := c.EncodeSlices(datas, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(blocks) != len(datas) {
			t.Fatalf("%s: %d blocks for %d slices", name, len(blocks), len(datas))
		}
		var buf bytes.Buffer
		for _, b := range blocks {
			if _, err := c.WriteBlock(&buf, b); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		for si, want := range datas {
			b, err := c.ReadBlock(&buf)
			if err != nil {
				t.Fatalf("%s slice %d: %v", name, si, err)
			}
			if b.Total() != len(want) {
				t.Fatalf("%s slice %d: total %d, want %d", name, si, b.Total(), len(want))
			}
			out := make([]float64, len(want))
			if err := b.DecodeInto(out, 3); err != nil {
				t.Fatalf("%s slice %d: %v", name, si, err)
			}
			// All shipped codecs keep at least float32 precision on the
			// fixture's magnitude range (entropy's 16-bit default is only
			// coarser than that beyond ~2^16 dynamic range).
			for i := range want {
				w32 := float64(float32(want[i]))
				tol := math.Abs(w32) * 1e-3
				if name == "entropy" {
					tol += 1e-3
				}
				if math.Abs(out[i]-w32) > tol {
					t.Fatalf("%s slice %d i=%d: got %g, want ~%g", name, si, i, out[i], w32)
				}
			}
		}
		if buf.Len() != 0 {
			t.Fatalf("%s: %d trailing bytes after all blocks", name, buf.Len())
		}
	}
}

func TestEntropyLosslessMatchesSparseBitExactly(t *testing.T) {
	datas := testSlices(t, 3, 8000)
	lossless, err := EntropyWith(entropy.Params{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	sBlocks, err := Sparse().EncodeSlices(datas, 4)
	if err != nil {
		t.Fatal(err)
	}
	eBlocks, err := lossless.EncodeSlices(datas, 4)
	if err != nil {
		t.Fatal(err)
	}
	for si := range datas {
		if sBlocks[si].Retained() != eBlocks[si].Retained() {
			t.Fatalf("slice %d: sparse retained %d, entropy %d", si, sBlocks[si].Retained(), eBlocks[si].Retained())
		}
		a := make([]float64, len(datas[si]))
		b := make([]float64, len(datas[si]))
		if err := sBlocks[si].DecodeInto(a, 2); err != nil {
			t.Fatal(err)
		}
		if err := eBlocks[si].DecodeInto(b, 2); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !fbits.Same(a[i], b[i]) {
				t.Fatalf("slice %d i=%d: sparse %x, entropy %x", si, i,
					math.Float64bits(a[i]), math.Float64bits(b[i]))
			}
		}
	}
}

func TestWriteBlockRejectsForeignBlocks(t *testing.T) {
	datas := testSlices(t, 1, 100)
	eBlocks, err := Entropy().EncodeSlices(datas, 1)
	if err != nil {
		t.Fatal(err)
	}
	sBlocks, err := Sparse().EncodeSlices(datas, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Sparse().WriteBlock(&buf, eBlocks[0]); err == nil {
		t.Fatal("sparse accepted an entropy block")
	}
	if _, err := Entropy().WriteBlock(&buf, sBlocks[0]); err == nil {
		t.Fatal("entropy accepted a sparse block")
	}
}

func TestEntropyWithValidates(t *testing.T) {
	if _, err := EntropyWith(entropy.Params{BitDepth: 1}); err == nil {
		t.Fatal("invalid params accepted")
	}
	c, err := EntropyWith(entropy.Params{BitDepth: 12, ErrorBound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() != IDEntropy {
		t.Fatalf("tuned entropy codec has ID %v", c.ID())
	}
}

func TestWrapSparseAccessors(t *testing.T) {
	sb := compress.NewSparseBlock([]float64{0, 1.5, 0, -2})
	b := WrapSparse(sb)
	if b.Total() != 4 || b.Retained() != 2 {
		t.Fatalf("wrapped accessors: total %d retained %d", b.Total(), b.Retained())
	}
	if b.EncodedSizeBytes() != sb.EncodedSizeBytes() {
		t.Fatal("EncodedSizeBytes not forwarded")
	}
	var is IdealSizer = b
	if is.IdealSizeBytes() != sb.IdealSizeBytes() {
		t.Fatal("IdealSizeBytes not forwarded")
	}
	var ds DeflatedSizer = b
	if _, err := ds.DeflatedSizeBytes(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDeterministicAcrossWorkers(t *testing.T) {
	datas := testSlices(t, 5, 40000)
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var ref []byte
		for _, workers := range []int{1, 2, 7, 16} {
			blocks, err := c.EncodeSlices(datas, workers)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			for _, b := range blocks {
				if _, err := c.WriteBlock(&buf, b); err != nil {
					t.Fatal(err)
				}
			}
			if ref == nil {
				ref = buf.Bytes()
			} else if !bytes.Equal(ref, buf.Bytes()) {
				t.Fatalf("%s: workers=%d stream differs from workers=1", name, workers)
			}
		}
	}
}

package codec

import (
	"bytes"
	"testing"
)

// FuzzCodecDecode: arbitrary bytes through every registered codec's
// ReadBlock must never panic, and whatever a codec accepts must satisfy
// the Block invariants and decode (or fail) cleanly.
func FuzzCodecDecode(f *testing.F) {
	coeffs := make([]float64, 400)
	coeffs[7], coeffs[350] = 0.5, -1.25
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		blocks, err := c.EncodeSlices([][]float64{coeffs}, 1)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := c.WriteBlock(&buf, blocks[0]); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("STE"))
	f.Add(make([]byte, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, name := range Names() {
			c, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			b, err := c.ReadBlock(bytes.NewReader(data))
			if err != nil {
				continue
			}
			if b.Retained() > b.Total() {
				t.Fatalf("%s: retained %d > total %d accepted", name, b.Retained(), b.Total())
			}
			out := make([]float64, b.Total())
			_ = b.DecodeInto(out, 2) // error or success both fine; no panic
		}
	})
}

package entropy

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"slices"

	"stwave/internal/fbits"
	"stwave/internal/par"
	"stwave/internal/scratch"
)

// On-disk layout of an entropy-coded coefficient block:
//
//	[0:3]   magic "STE"
//	[3]     version 1
//	[4]     flags (bit 0: lossless)
//	[5]     bit depth (magnitude classes before escape; 0 when lossless)
//	[6]     gap exp-Golomb order
//	[7]     Huffman alphabet size (0 when lossless or no retained values)
//	[8:16]  total coefficient count N (uint64 LE)
//	[16:24] retained coefficient count K (uint64 LE)
//	[24:32] quantization step (float64 LE bits; 0.0 when lossless)
//	[32:36] chunk count (uint32 LE; always ceil(N/chunkSize))
//	then one byte per alphabet symbol: canonical Huffman code length
//	then one uint32 LE per chunk: payload byte length
//	then the chunk payloads, each an independently decodable bitstream
//
// Each chunk covers a fixed range of chunkSize coefficients and carries,
// MSB-first: its retained count (exp-Golomb order 0), then per retained
// coefficient an index gap (exp-Golomb of the header's order) followed by
// the value — 32 raw float32 bits when lossless, otherwise a Huffman
// magnitude class, class-1 refinement bits, and a sign bit, with classes
// beyond the bit depth escaping to exp-Golomb. Chunks share the one
// block-wide quantizer and Huffman table (both derived from global
// statistics), so the stream is bit-identical no matter how many workers
// encoded it, and any subset of chunks can decode in parallel.

const (
	blockMagic0, blockMagic1, blockMagic2 = 'S', 'T', 'E'
	blockVersion                          = 1
	headerSize                            = 36

	flagLossless = 1 << 0

	// chunkSize is the per-task granule of the parallel encode and decode
	// passes — the same granule the sparse backend uses, so the two
	// backends parallelize identically.
	chunkSize = 1 << 15

	// maxBlockTotal caps N against forged headers: one block is one 3D
	// field, and 2^31 samples is a 1290³ grid (mirrors the sparse
	// backend's cap). The bound is exclusive — Read rejects totals >=
	// maxBlockTotal — so an accepted total always fits in int, even on
	// 32-bit platforms.
	maxBlockTotal = 1 << 31

	// maxChunkPayload caps one chunk's payload length against forged
	// headers. An honest chunk cannot exceed ~100 bits per coefficient
	// (escape path worst case); 1 MiB per 32 Ki coefficients is ~256
	// bits each.
	maxChunkPayload = 1 << 20
)

// Block is the in-memory form of an entropy-coded coefficient slice. It
// is immutable after construction and safe for concurrent reads.
type Block struct {
	total    int
	retained int
	lossless bool
	bitDepth int
	gapK     uint8
	step     float64
	lengths  []uint8  // canonical Huffman code lengths (lossy path)
	chunkLen []uint32 // payload byte length per chunk
	payload  []byte   // concatenated chunk payloads
}

// Total returns the number of coefficients the block covers.
func (b *Block) Total() int { return b.total }

// Retained returns the number of surviving (nonzero) coefficients.
func (b *Block) Retained() int { return b.retained }

// Lossless reports whether the block stores exact float32 bits.
func (b *Block) Lossless() bool { return b.lossless }

// Step returns the quantization step (0 for lossless blocks).
func (b *Block) Step() float64 { return b.step }

// EncodedSizeBytes returns the exact serialized size of the block.
func (b *Block) EncodedSizeBytes() int64 {
	return headerSize + int64(len(b.lengths)) + 4*int64(len(b.chunkLen)) + int64(len(b.payload))
}

// numChunks returns ceil(n/chunkSize).
func numChunks(n int) int { return (n + chunkSize - 1) / chunkSize }

// chunkBounds returns chunk ci's coefficient range within a block of n.
func chunkBounds(ci, n int) (lo, hi int) {
	lo = ci * chunkSize
	hi = lo + chunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// magClass returns the magnitude class of a quantized level's absolute
// value: 0 for 0, otherwise the number of significant bits.
func magClass(mag uint64) int { return bits.Len64(mag) }

// Encode entropy-codes one thresholded coefficient slice on up to workers
// goroutines. Zero-valued coefficients are treated as discarded, exactly
// as the sparse backend does. The output is bit-identical for every
// worker count.
func Encode(coeffs []float64, p Params, workers int) (*Block, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(coeffs)
	if n >= maxBlockTotal {
		return nil, fmt.Errorf("entropy: %d coefficients exceed the format cap %d", n, maxBlockTotal)
	}
	b := &Block{
		total:    n,
		lossless: p.Lossless,
		bitDepth: p.BitDepth,
	}
	if p.Lossless {
		b.bitDepth = 0
	}
	nch := numChunks(n)
	b.chunkLen = make([]uint32, nch)
	if n == 0 {
		return b, nil
	}

	// Pass 1: per-chunk survivor counts and magnitude maxima. The maxima
	// buffer comes from the shared scratch arena; every slot is written
	// before it is read.
	counts := make([]int, nch)
	maxs := scratch.Floats(nch)
	defer scratch.PutFloats(maxs)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			lo, hi := chunkBounds(ci, n)
			k, m := 0, 0.0
			for _, v := range coeffs[lo:hi] {
				if !fbits.Zero(v) {
					k++
					if a := math.Abs(v); a > m {
						m = a
					}
				}
			}
			counts[ci], maxs[ci] = k, m
		}
	})
	maxMag := 0.0
	for ci := range counts {
		b.retained += counts[ci]
		if maxs[ci] > maxMag {
			maxMag = maxs[ci]
		}
	}
	q := p.newQuantizer(maxMag)
	b.step = q.Step
	b.gapK = gapOrder(n, b.retained)

	var codes []uint64
	if !p.Lossless && b.retained > 0 {
		// Pass 2: global magnitude-class histogram → canonical Huffman.
		// Per-chunk histograms merge in chunk order, so the table is a
		// pure function of the data.
		nsyms := b.bitDepth + 2 // classes 0..bitDepth plus the escape symbol
		hists := make([][]uint64, nch)
		par.For(nch, workers, 1, func(start, end int) {
			for ci := start; ci < end; ci++ {
				lo, hi := chunkBounds(ci, n)
				h := scratch.Uint64s(nsyms)
				clear(h)
				for _, v := range coeffs[lo:hi] {
					if fbits.Zero(v) {
						continue
					}
					h[classSymbol(q.Quantize(v), b.bitDepth)]++
				}
				hists[ci] = h
			}
		})
		hist := make([]int64, nsyms)
		for _, h := range hists {
			for s, c := range h {
				hist[s] += int64(c) //stlint:ignore trunccast per-chunk symbol counts are bounded by chunkSize
			}
			scratch.PutUint64s(h)
		}
		b.lengths = huffBuildLengths(hist)
		codes = huffCodes(b.lengths)
	}

	// Pass 3: encode every chunk into its own bitstream.
	chunks := make([][]byte, nch)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			chunks[ci] = encodeChunk(coeffs, ci, b, q, codes, counts[ci])
		}
	})
	totalBytes := 0
	for ci, c := range chunks {
		if len(c) > maxChunkPayload {
			// Unreachable for honest inputs (see maxChunkPayload), but a
			// wrapped uint32 length would corrupt the stream silently.
			return nil, fmt.Errorf("entropy: chunk %d payload %d exceeds format cap %d", ci, len(c), maxChunkPayload)
		}
		b.chunkLen[ci] = uint32(len(c))
		totalBytes += len(c)
	}
	b.payload = make([]byte, 0, totalBytes)
	for _, c := range chunks {
		b.payload = append(b.payload, c...)
	}
	return b, nil
}

// gapOrder picks the exp-Golomb order for index gaps from the mean gap
// n/k: order ≈ log2(mean) keeps typical gap codes near their entropy.
func gapOrder(n, k int) uint8 {
	if k <= 0 || n <= k {
		return 0
	}
	o := bits.Len64(uint64(n/k)) - 1 //stlint:ignore trunccast k > 0 and n > k are checked above, so the quotient is positive
	if o > 30 {
		o = 30
	}
	return uint8(o)
}

// classSymbol maps a quantized level to its Huffman symbol: the magnitude
// class for in-range levels, the escape symbol (bitDepth+1) beyond.
func classSymbol(level int64, bitDepth int) int {
	mag := levelMag(level)
	c := magClass(mag)
	if c > bitDepth {
		return bitDepth + 1
	}
	return c
}

// levelMag returns |level| as a uint64. Levels are clamped to ±2^62 by
// the quantizer, so negation cannot overflow.
func levelMag(level int64) uint64 {
	if level < 0 {
		return uint64(-level) //stlint:ignore trunccast negated only on the negative branch; the quantizer clamps to ±2^62
	}
	return uint64(level)
}

// encodeChunk produces chunk ci's bitstream: retained count, then
// (gap, value) pairs.
func encodeChunk(coeffs []float64, ci int, b *Block, q Quantizer, codes []uint64, kc int) []byte {
	n := b.total
	lo, hi := chunkBounds(ci, n)
	if kc == 0 {
		// An empty chunk still writes its zero count so the decoder can
		// process chunks independently.
		var w BitWriter
		w.WriteExpGolomb(0, 0)
		return w.Bytes()
	}
	w := BitWriter{buf: make([]byte, 0, 16+kc*6)}
	w.WriteExpGolomb(uint64(kc), 0) //stlint:ignore trunccast kc is a non-negative survivor count
	prev := lo - 1
	esc := len(codes) - 1 // the escape symbol is the table's last entry (b.bitDepth+1)
	for i := lo; i < hi; i++ {
		v := coeffs[i]
		if fbits.Zero(v) {
			continue
		}
		w.WriteExpGolomb(uint64(i-prev-1), uint(b.gapK)) //stlint:ignore trunccast gap between ascending indices is non-negative
		prev = i
		if b.lossless {
			w.WriteBits(uint64(math.Float32bits(float32(v))), 32) //stlint:ignore trunccast the raw-float32 lossless mode stores 32-bit samples by contract
			continue
		}
		level := q.Quantize(v)
		mag := levelMag(level)
		c := magClass(mag)
		if c > b.bitDepth {
			w.WriteBits(codes[esc], uint(b.lengths[esc]))
			w.WriteExpGolomb(mag-1<<uint(b.bitDepth), 0)
		} else {
			w.WriteBits(codes[c], uint(b.lengths[c]))
			if c > 0 {
				w.WriteBits(mag-1<<uint(c-1), uint(c-1)) //stlint:ignore trunccast c > 0 on this branch
			}
		}
		if c > 0 {
			if level < 0 {
				w.WriteBit(1)
			} else {
				w.WriteBit(0)
			}
		}
	}
	return w.Bytes()
}

// DecodeInto expands the block into out (which must have length Total)
// on up to workers goroutines, zeroing discarded positions. Output is
// identical for every worker count.
func (b *Block) DecodeInto(out []float64, workers int) error {
	if len(out) != b.total {
		return fmt.Errorf("entropy: DecodeInto length %d != total %d", len(out), b.total)
	}
	n := b.total
	if n == 0 {
		return nil
	}
	var dec *huffDecoder
	if !b.lossless && b.retained > 0 {
		var err error
		dec, err = newHuffDecoder(b.lengths)
		if err != nil {
			return err
		}
	}
	q := Quantizer{Step: b.step}
	if !b.lossless && (!(q.Step > 0) || math.IsInf(q.Step, 0)) {
		return fmt.Errorf("entropy: corrupt block: non-positive quantization step %g", q.Step)
	}
	nch := numChunks(n)
	if len(b.chunkLen) != nch {
		return fmt.Errorf("entropy: corrupt block: %d chunks for %d coefficients (want %d)", len(b.chunkLen), n, nch)
	}
	// Chunk payload offsets, validated against the payload length once so
	// the parallel pass can slice without checks.
	offs := make([]int, nch+1)
	for ci, ln := range b.chunkLen {
		offs[ci+1] = offs[ci] + int(ln)
	}
	if offs[nch] != len(b.payload) {
		return fmt.Errorf("entropy: corrupt block: chunk lengths sum to %d, payload is %d bytes", offs[nch], len(b.payload))
	}
	errs := make([]error, nch)
	kcs := make([]int, nch)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			kcs[ci], errs[ci] = b.decodeChunk(out, ci, b.payload[offs[ci]:offs[ci+1]], dec, q)
		}
	})
	k := 0
	for ci := range errs {
		if errs[ci] != nil {
			return fmt.Errorf("entropy: chunk %d: %w", ci, errs[ci])
		}
		k += kcs[ci]
	}
	if k != b.retained {
		return fmt.Errorf("entropy: corrupt block: chunks carry %d values, header claims %d", k, b.retained)
	}
	return nil
}

// decodeChunk expands one chunk's bitstream into out[lo:hi], returning
// the number of values it carried.
func (b *Block) decodeChunk(out []float64, ci int, payload []byte, dec *huffDecoder, q Quantizer) (int, error) {
	lo, hi := chunkBounds(ci, b.total)
	for i := lo; i < hi; i++ {
		out[i] = 0
	}
	r := NewBitReader(payload)
	kcU, err := r.ReadExpGolomb(0)
	if err != nil {
		return 0, err
	}
	if kcU > uint64(hi-lo) { //stlint:ignore trunccast chunkBounds always yields lo < hi
		return 0, fmt.Errorf("entropy: chunk claims %d values for %d coefficients", kcU, hi-lo)
	}
	kc := int(kcU)
	pos := lo - 1
	for j := 0; j < kc; j++ {
		gap, err := r.ReadExpGolomb(uint(b.gapK))
		if err != nil {
			return 0, err
		}
		// The next index is pos+1+gap and must stay < hi. pos is at most
		// hi-1 here, so hi-pos-1 is non-negative and the uint64 conversion
		// is safe; an honest encoder only emits gap <= hi-pos-2.
		if gap >= uint64(hi-pos-1) { //stlint:ignore trunccast pos <= hi-1 here per the invariant above
			return 0, fmt.Errorf("entropy: index gap %d runs past chunk end", gap)
		}
		pos += 1 + int(gap)
		if pos >= hi {
			// Unreachable while the gap guard above holds; bounding the
			// index itself keeps every out[pos] write provably in range
			// even if the gap arithmetic is ever reshaped.
			return 0, fmt.Errorf("entropy: decoded index %d runs past chunk end", pos)
		}
		if b.lossless {
			vbits, err := r.ReadBits(32)
			if err != nil {
				return 0, err
			}
			out[pos] = float64(math.Float32frombits(uint32(vbits))) //stlint:ignore trunccast ReadBits(32) yields at most 32 bits
			continue
		}
		sym, err := dec.Decode(r)
		if err != nil {
			return 0, err
		}
		var mag uint64
		switch {
		case sym == 0:
			out[pos] = 0
			continue // class 0 carries no sign bit
		case sym <= b.bitDepth:
			extra := uint64(0)
			if sym > 1 {
				extra, err = r.ReadBits(uint(sym - 1)) //stlint:ignore trunccast sym > 1 on this branch
				if err != nil {
					return 0, err
				}
			}
			mag = 1<<uint(sym-1) | extra //stlint:ignore trunccast sym >= 1: the zero class continues above
		default: // escape
			over, err := r.ReadExpGolomb(0)
			if err != nil {
				return 0, err
			}
			if over > uint64(quantMagCap) {
				return 0, fmt.Errorf("entropy: escape magnitude %d exceeds quantizer range", over)
			}
			mag = over + 1<<uint(b.bitDepth)
		}
		sign, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		level := int64(mag) //stlint:ignore trunccast mag is bounded by quantMagCap + 2^31 < 2^63
		if sign == 1 {
			level = -level
		}
		out[pos] = q.Dequantize(level)
	}
	return kc, nil
}

// WriteTo serializes the block. It implements io.WriterTo.
func (b *Block) WriteTo(w io.Writer) (int64, error) {
	if b.total < 0 || b.retained < 0 {
		return 0, fmt.Errorf("entropy: negative block counts (total %d, retained %d)", b.total, b.retained)
	}
	if len(b.chunkLen) > math.MaxUint32 {
		return 0, fmt.Errorf("entropy: %d chunks exceed the uint32 header field", len(b.chunkLen))
	}
	if len(b.lengths) > 0xff {
		return 0, fmt.Errorf("entropy: %d-symbol alphabet exceeds the byte header field", len(b.lengths))
	}
	hdr := make([]byte, headerSize, headerSize+len(b.lengths)+4*len(b.chunkLen))
	hdr[0], hdr[1], hdr[2] = blockMagic0, blockMagic1, blockMagic2
	hdr[3] = blockVersion
	if b.lossless {
		hdr[4] |= flagLossless
	}
	hdr[5] = byte(b.bitDepth) //stlint:ignore trunccast bit depth is validated to [2, 31] at encode
	hdr[6] = b.gapK
	hdr[7] = byte(len(b.lengths))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(b.total))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(b.retained))
	binary.LittleEndian.PutUint64(hdr[24:32], math.Float64bits(b.step))
	binary.LittleEndian.PutUint32(hdr[32:36], uint32(len(b.chunkLen)))
	hdr = append(hdr, b.lengths...)
	var lb [4]byte
	for _, ln := range b.chunkLen {
		binary.LittleEndian.PutUint32(lb[:], ln)
		hdr = append(hdr, lb[:]...)
	}
	var written int64
	n, err := w.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, err
	}
	n, err = w.Write(b.payload)
	written += int64(n)
	return written, err
}

// Read deserializes a block written by WriteTo. It reads exactly the
// block's serialized bytes from r — safe to call repeatedly on one
// stream — and validates every header field before allocating, so forged
// or corrupt streams fail cleanly here or in DecodeInto, never panic.
func Read(r io.Reader) (*Block, error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("entropy: reading block header: %w", err)
	}
	if hdr[0] != blockMagic0 || hdr[1] != blockMagic1 || hdr[2] != blockMagic2 {
		return nil, fmt.Errorf("entropy: bad block magic %q", hdr[0:3])
	}
	if hdr[3] != blockVersion {
		return nil, fmt.Errorf("entropy: unsupported block version %d", hdr[3])
	}
	b := &Block{
		lossless: hdr[4]&flagLossless != 0,
		bitDepth: int(hdr[5]),
		gapK:     hdr[6],
	}
	nsyms := int(hdr[7])
	totalU := binary.LittleEndian.Uint64(hdr[8:16])
	retainedU := binary.LittleEndian.Uint64(hdr[16:24])
	b.step = math.Float64frombits(binary.LittleEndian.Uint64(hdr[24:32]))
	nchU := binary.LittleEndian.Uint32(hdr[32:36])
	if totalU >= maxBlockTotal {
		return nil, fmt.Errorf("entropy: implausible block size %d samples", totalU)
	}
	if retainedU > totalU {
		return nil, fmt.Errorf("entropy: corrupt header (total=%d retained=%d)", totalU, retainedU)
	}
	b.total = int(totalU)
	b.retained = int(retainedU)
	if int(nchU) != numChunks(b.total) {
		return nil, fmt.Errorf("entropy: header claims %d chunks for %d coefficients (want %d)", nchU, b.total, numChunks(b.total))
	}
	if b.lossless {
		if b.bitDepth != 0 || nsyms != 0 {
			return nil, fmt.Errorf("entropy: lossless block with quantizer fields set")
		}
	} else {
		if b.bitDepth < 2 || b.bitDepth > 31 {
			return nil, fmt.Errorf("entropy: bit depth %d outside [2, 31]", b.bitDepth)
		}
		if b.retained > 0 && nsyms != b.bitDepth+2 {
			return nil, fmt.Errorf("entropy: %d-symbol alphabet for bit depth %d (want %d)", nsyms, b.bitDepth, b.bitDepth+2)
		}
		if !(b.step > 0) || math.IsInf(b.step, 0) {
			return nil, fmt.Errorf("entropy: non-positive quantization step %g", b.step)
		}
	}
	if b.gapK > 30 {
		return nil, fmt.Errorf("entropy: gap order %d outside [0, 30]", b.gapK)
	}
	if nsyms > 0 {
		b.lengths = make([]uint8, nsyms)
		if _, err := io.ReadFull(r, b.lengths); err != nil {
			return nil, fmt.Errorf("entropy: reading huffman table: %w", err)
		}
		// Validate the table now so a corrupt block fails at read time,
		// not at first decode.
		if _, err := newHuffDecoder(b.lengths); err != nil {
			return nil, err
		}
	}
	nch := int(nchU)
	b.chunkLen = make([]uint32, nch)
	var payloadBytes int64
	if nch > 0 {
		lens := make([]byte, 4*nch)
		if _, err := io.ReadFull(r, lens); err != nil {
			return nil, fmt.Errorf("entropy: reading chunk lengths: %w", err)
		}
		for ci := range b.chunkLen {
			ln := binary.LittleEndian.Uint32(lens[4*ci:])
			if ln > maxChunkPayload {
				return nil, fmt.Errorf("entropy: chunk %d payload %d exceeds format cap %d", ci, ln, maxChunkPayload)
			}
			b.chunkLen[ci] = ln
			payloadBytes += int64(ln)
		}
	}
	if payloadBytes >= math.MaxInt {
		return nil, fmt.Errorf("entropy: chunk lengths sum to %d bytes, beyond addressable payload", payloadBytes)
	}
	// Read the payload one chunk at a time rather than trusting the summed
	// header lengths with a single up-front make(): a forged header can
	// claim ~64 GiB (65536 chunks at the 1 MiB per-chunk cap) while
	// carrying no payload at all, so memory must only grow as bytes
	// actually arrive off the stream.
	prealloc := payloadBytes
	if prealloc > maxChunkPayload {
		prealloc = maxChunkPayload
	}
	b.payload = make([]byte, 0, prealloc)
	for ci, ln := range b.chunkLen {
		off := len(b.payload)
		b.payload = slices.Grow(b.payload, int(ln))[:off+int(ln)]
		if _, err := io.ReadFull(r, b.payload[off:]); err != nil {
			return nil, fmt.Errorf("entropy: reading chunk %d payload (%d of %d bytes): %w", ci, ln, payloadBytes, err)
		}
	}
	return b, nil
}

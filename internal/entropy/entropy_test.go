package entropy

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"stwave/internal/fbits"
)

func TestBitWriterReaderRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type field struct {
		v uint64
		n uint
	}
	var fields []field
	var w BitWriter
	for i := 0; i < 2000; i++ {
		n := uint(rng.Intn(64) + 1)
		v := rng.Uint64()
		if n < 64 {
			v &= (1 << n) - 1
		}
		fields = append(fields, field{v, n})
		w.WriteBits(v, n)
	}
	r := NewBitReader(w.Bytes())
	for i, f := range fields {
		got, err := r.ReadBits(f.n)
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		if got != f.v {
			t.Fatalf("field %d: wrote %#x (%d bits), read %#x", i, f.v, f.n, got)
		}
	}
}

func TestBitReaderTruncation(t *testing.T) {
	r := NewBitReader([]byte{0xff})
	if _, err := r.ReadBits(9); err == nil {
		t.Fatal("9-bit read from 1 byte succeeded")
	}
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("8-bit read from 1 byte failed: %v", err)
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("read past end succeeded")
	}
}

func TestExpGolombRoundtrip(t *testing.T) {
	values := []uint64{0, 1, 2, 3, 7, 8, 255, 256, 1 << 20, 1<<62 - 1, 1 << 62}
	for k := uint(0); k <= 12; k++ {
		var w BitWriter
		for _, v := range values {
			w.WriteExpGolomb(v, k)
		}
		r := NewBitReader(w.Bytes())
		for _, v := range values {
			got, err := r.ReadExpGolomb(k)
			if err != nil {
				t.Fatalf("k=%d v=%d: %v", k, v, err)
			}
			if got != v {
				t.Fatalf("k=%d: wrote %d, read %d", k, v, got)
			}
		}
	}
}

func TestExpGolombRejectsOverlongPrefix(t *testing.T) {
	// 9 zero bytes = a 72-zero prefix, implying a value beyond 64 bits.
	r := NewBitReader(make([]byte, 9))
	if _, err := r.ReadExpGolomb(0); err == nil {
		t.Fatal("overlong exp-golomb prefix accepted")
	}
}

func TestHuffmanRoundtrip(t *testing.T) {
	cases := [][]int64{
		{10, 20, 30, 40},
		{1, 1, 1, 1, 1, 1, 1},
		{1000, 1, 0, 0, 1, 999},
		{0, 0, 5, 0}, // single live symbol
		{1 << 40, 1, 1, 1 << 39, 7},
	}
	for ci, freqs := range cases {
		lengths := huffBuildLengths(freqs)
		codes := huffCodes(lengths)
		dec, err := newHuffDecoder(lengths)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		var w BitWriter
		var want []int
		for s, f := range freqs {
			if f == 0 {
				continue
			}
			for rep := 0; rep < 3; rep++ {
				w.WriteBits(codes[s], uint(lengths[s]))
				want = append(want, s)
			}
		}
		r := NewBitReader(w.Bytes())
		for i, s := range want {
			got, err := dec.Decode(r)
			if err != nil {
				t.Fatalf("case %d sym %d: %v", ci, i, err)
			}
			if got != s {
				t.Fatalf("case %d: wrote symbol %d, decoded %d", ci, s, got)
			}
		}
	}
}

func TestHuffmanKraftValidation(t *testing.T) {
	// Three one-bit codes overcommit the code space.
	if _, err := newHuffDecoder([]uint8{1, 1, 1}); err == nil {
		t.Fatal("overcommitted huffman table accepted")
	}
	if _, err := newHuffDecoder([]uint8{1, 200}); err == nil {
		t.Fatal("code length beyond cap accepted")
	}
	if _, err := newHuffDecoder([]uint8{1, 2, 2}); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
}

func TestHuffmanDeterministicUnderTies(t *testing.T) {
	freqs := []int64{5, 5, 5, 5, 5, 5}
	first := huffBuildLengths(freqs)
	for i := 0; i < 10; i++ {
		if got := huffBuildLengths(freqs); !bytes.Equal(got, first) {
			t.Fatalf("run %d: lengths %v != %v", i, got, first)
		}
	}
}

func TestQuantizerErrorBound(t *testing.T) {
	p := Params{BitDepth: 12, ErrorBound: 1e-3}
	q := p.newQuantizer(50)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := (rng.Float64() - 0.5) * 100
		rec := q.Dequantize(q.Quantize(v))
		if math.Abs(rec-v) > p.ErrorBound*(1+1e-12) {
			t.Fatalf("v=%g rec=%g err=%g > bound %g", v, rec, math.Abs(rec-v), p.ErrorBound)
		}
	}
}

func TestQuantizerDegenerateInputs(t *testing.T) {
	q := Params{BitDepth: 16}.newQuantizer(0)
	if !(q.Step > 0) {
		t.Fatalf("degenerate maxMag produced step %g", q.Step)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300, -1e300} {
		level := q.Quantize(v) // must not panic and must stay in range
		if level > quantMagCap || level < -quantMagCap {
			t.Fatalf("Quantize(%g) = %d outside cap", v, level)
		}
	}
	if (Params{}).Validate() == nil {
		t.Fatal("zero Params validated")
	}
}

// testCoeffs builds a thresholded-looking slice: mostly zeros with a
// seeded sparse scatter of smooth-decay values, like real wavelet detail
// coefficients after thresholding.
func testCoeffs(n, k int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := 0; i < k; i++ {
		pos := rng.Intn(n)
		out[pos] = (rng.Float64() - 0.5) * math.Exp(-10*rng.Float64())
	}
	return out
}

func TestBlockRoundtripLossless(t *testing.T) {
	for _, n := range []int{0, 1, 100, chunkSize, chunkSize + 1, 3*chunkSize + 17} {
		coeffs := testCoeffs(n, n/10, int64(n)+1)
		b, err := Encode(coeffs, Params{Lossless: true}, 4)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		out := make([]float64, n)
		if err := b.DecodeInto(out, 4); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range coeffs {
			want := float64(float32(coeffs[i]))
			if !fbits.Same(out[i], want) {
				t.Fatalf("n=%d i=%d: want %x, got %x", n, i, math.Float64bits(want), math.Float64bits(out[i]))
			}
		}
	}
}

func TestBlockRoundtripLossyWithinBound(t *testing.T) {
	coeffs := testCoeffs(2*chunkSize+123, 4000, 42)
	p := Params{BitDepth: 14, ErrorBound: 1e-6}
	b, err := Encode(coeffs, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(coeffs))
	if err := b.DecodeInto(out, 4); err != nil {
		t.Fatal(err)
	}
	for i, v := range coeffs {
		if fbits.Zero(v) {
			if !fbits.Zero(out[i]) {
				t.Fatalf("i=%d: discarded coefficient decoded to %g", i, out[i])
			}
			continue
		}
		if math.Abs(out[i]-v) > p.ErrorBound*(1+1e-9) {
			t.Fatalf("i=%d: err %g > bound %g", i, math.Abs(out[i]-v), p.ErrorBound)
		}
	}
}

func TestBlockRoundtripBitDepthMode(t *testing.T) {
	coeffs := testCoeffs(chunkSize+55, 2000, 9)
	p := Params{BitDepth: 16}
	b, err := Encode(coeffs, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// In bit-depth mode the step adapts to the block's own max magnitude,
	// so the bound is step/2 for every in-range value.
	bound := b.Step() / 2 * (1 + 1e-9)
	out := make([]float64, len(coeffs))
	if err := b.DecodeInto(out, 4); err != nil {
		t.Fatal(err)
	}
	for i, v := range coeffs {
		if fbits.Zero(v) {
			continue
		}
		if math.Abs(out[i]-v) > bound {
			t.Fatalf("i=%d: err %g > step/2 %g", i, math.Abs(out[i]-v), bound)
		}
	}
}

func TestBlockDeterministicAcrossWorkers(t *testing.T) {
	coeffs := testCoeffs(4*chunkSize+321, 9000, 11)
	for _, p := range []Params{{Lossless: true}, {BitDepth: 16}, {BitDepth: 10, ErrorBound: 1e-5}} {
		var ref []byte
		for _, workers := range []int{1, 2, 3, 8, 16} {
			b, err := Encode(coeffs, p, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			var buf bytes.Buffer
			if _, err := b.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = buf.Bytes()
			} else if !bytes.Equal(ref, buf.Bytes()) {
				t.Fatalf("params %+v: workers=%d stream differs from workers=1", p, workers)
			}
			// Decode side too: every worker count fills out identically.
			out := make([]float64, len(coeffs))
			if err := b.DecodeInto(out, workers); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestBlockSerializeRoundtrip(t *testing.T) {
	coeffs := testCoeffs(chunkSize*2+7, 3000, 5)
	for _, p := range []Params{{Lossless: true}, {BitDepth: 16}} {
		b, err := Encode(coeffs, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		wn, err := b.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if wn != b.EncodedSizeBytes() {
			t.Fatalf("WriteTo wrote %d bytes, EncodedSizeBytes says %d", wn, b.EncodedSizeBytes())
		}
		// Append trailing garbage: Read must consume exactly the block.
		buf.WriteString("TRAILER")
		rd := bytes.NewReader(buf.Bytes())
		got, err := Read(rd)
		if err != nil {
			t.Fatal(err)
		}
		if rd.Len() != len("TRAILER") {
			t.Fatalf("Read over-consumed: %d trailing bytes left, want %d", rd.Len(), len("TRAILER"))
		}
		if got.Total() != b.Total() || got.Retained() != b.Retained() {
			t.Fatalf("counts changed across serialize: %d/%d vs %d/%d", got.Total(), got.Retained(), b.Total(), b.Retained())
		}
		a, c := make([]float64, len(coeffs)), make([]float64, len(coeffs))
		if err := b.DecodeInto(a, 2); err != nil {
			t.Fatal(err)
		}
		if err := got.DecodeInto(c, 2); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if !fbits.Same(a[i], c[i]) {
				t.Fatalf("i=%d: decode differs across serialize", i)
			}
		}
	}
}

func TestBlockOutliersEscape(t *testing.T) {
	// One huge outlier among small values: with a fixed error bound the
	// outlier's level exceeds the bit depth and must take the escape path
	// without losing accuracy beyond the bound.
	coeffs := make([]float64, chunkSize)
	for i := 0; i < 100; i++ {
		coeffs[i*300] = 1e-4
	}
	coeffs[7] = 1e6
	p := Params{BitDepth: 8, ErrorBound: 1e-5}
	b, err := Encode(coeffs, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(coeffs))
	if err := b.DecodeInto(out, 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[7]-1e6) > p.ErrorBound*(1+1e-9) {
		t.Fatalf("outlier reconstructed as %g", out[7])
	}
}

func TestBlockRejectsWrongLength(t *testing.T) {
	b, err := Encode(make([]float64, 100), Params{BitDepth: 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.DecodeInto(make([]float64, 99), 1); err == nil {
		t.Fatal("short output accepted")
	}
}

// forgeGapOverflowBlock builds a lossless block whose single chunk claims
// one value with an index gap of `gap`: with pos starting at lo-1 the
// decoded index is exactly gap, so gap == total lands one past the end.
func forgeGapOverflowBlock(total int, gap uint64) *Block {
	var w BitWriter
	w.WriteExpGolomb(1, 0)   // kc = 1
	w.WriteExpGolomb(gap, 0) // forged index gap
	w.WriteBits(0, 32)       // float32 payload for the lossless path
	payload := w.Bytes()
	return &Block{
		total:    total,
		retained: 1,
		lossless: true,
		chunkLen: []uint32{uint32(len(payload))}, //stlint:ignore trunccast hand-built payload is a few bytes
		payload:  payload,
	}
}

// TestDecodeRejectsGapReachingChunkEnd is the PoC for the decoder's index
// bounds check: a forged chunk whose one gap lands exactly on the chunk
// end (pos+1+gap == hi) must fail typed instead of writing out[total].
func TestDecodeRejectsGapReachingChunkEnd(t *testing.T) {
	const n = 100
	b := forgeGapOverflowBlock(n, n)
	out := make([]float64, n)
	if err := b.DecodeInto(out, 1); err == nil {
		t.Fatal("gap landing on the chunk end accepted")
	}
	// The same stream through the serialized path must fail typed too.
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rb, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return // rejecting already at Read is fine
	}
	if err := rb.DecodeInto(out, 1); err == nil {
		t.Fatal("serialized gap-overflow stream accepted")
	}
}

// TestDecodeRejectsGapCrossingChunkBoundary: in a multi-chunk block a
// forged gap whose index lands in the neighboring chunk's range must fail
// typed — otherwise the write races with the goroutine decoding that chunk.
func TestDecodeRejectsGapCrossingChunkBoundary(t *testing.T) {
	n := chunkSize + 10
	var w0 BitWriter
	w0.WriteExpGolomb(1, 0)
	w0.WriteExpGolomb(chunkSize, 0) // decoded index = chunkSize: chunk 1's range
	w0.WriteBits(0, 32)
	p0 := w0.Bytes()
	var w1 BitWriter
	w1.WriteExpGolomb(0, 0) // chunk 1 carries nothing
	p1 := w1.Bytes()
	b := &Block{
		total:    n,
		retained: 1,
		lossless: true,
		chunkLen: []uint32{uint32(len(p0)), uint32(len(p1))}, //stlint:ignore trunccast hand-built payloads are a few bytes
		payload:  append(append([]byte(nil), p0...), p1...),
	}
	out := make([]float64, n)
	for _, workers := range []int{1, 2} {
		if err := b.DecodeInto(out, workers); err == nil {
			t.Fatalf("workers=%d: gap crossing the chunk boundary accepted", workers)
		}
	}
}

// TestDecodeAcceptsLastIndexInChunk guards the other side of the bounds
// check: a value at the final coefficient of a chunk is legitimate and
// must keep round-tripping.
func TestDecodeAcceptsLastIndexInChunk(t *testing.T) {
	for _, n := range []int{1, 100, chunkSize, chunkSize + 1} {
		coeffs := make([]float64, n)
		coeffs[n-1] = 0.75
		b, err := Encode(coeffs, Params{Lossless: true}, 2)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		out := make([]float64, n)
		if err := b.DecodeInto(out, 2); err != nil {
			t.Fatalf("n=%d: last-index value rejected: %v", n, err)
		}
		if out[n-1] != 0.75 {
			t.Fatalf("n=%d: last-index value decoded as %g", n, out[n-1])
		}
	}
}

// forgeLosslessHeader serializes a syntactically valid lossless block
// header claiming the given total (with retained = total) followed by the
// given chunk-length fields — and no payload.
func forgeLosslessHeader(total uint64, chunkLens []uint32) []byte {
	hdr := make([]byte, headerSize)
	hdr[0], hdr[1], hdr[2] = blockMagic0, blockMagic1, blockMagic2
	hdr[3] = blockVersion
	hdr[4] = flagLossless
	binary.LittleEndian.PutUint64(hdr[8:16], total)
	binary.LittleEndian.PutUint64(hdr[16:24], total)
	binary.LittleEndian.PutUint32(hdr[32:36], uint32(len(chunkLens))) //stlint:ignore trunccast test headers carry a handful of chunks
	var lb [4]byte
	for _, ln := range chunkLens {
		binary.LittleEndian.PutUint32(lb[:], ln)
		hdr = append(hdr, lb[:]...)
	}
	return hdr
}

// TestReadRejectsForgedPayloadSum: a header whose chunk lengths sum to far
// more payload than the stream carries must fail at the first missing
// chunk — memory grows only as payload bytes actually arrive, never from
// the claimed sum alone.
func TestReadRejectsForgedPayloadSum(t *testing.T) {
	nch := 10
	lens := make([]uint32, nch)
	for i := range lens {
		lens[i] = maxChunkPayload
	}
	hdr := forgeLosslessHeader(uint64(nch*chunkSize), lens)
	if _, err := Read(bytes.NewReader(hdr)); err == nil {
		t.Fatal("forged payload sum with no payload bytes accepted")
	}
}

// TestReadRejectsTotalAtCap: totals at or above maxBlockTotal must be
// rejected before narrowing to int — 2^31 overflows int on 32-bit
// platforms.
func TestReadRejectsTotalAtCap(t *testing.T) {
	hdr := forgeLosslessHeader(uint64(maxBlockTotal), nil)
	if _, err := Read(bytes.NewReader(hdr)); err == nil {
		t.Fatal("total == 2^31 accepted")
	}
}

func TestReadRejectsCorruptHeaders(t *testing.T) {
	coeffs := testCoeffs(200, 50, 1)
	b, err := Encode(coeffs, Params{BitDepth: 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Flipping any single header byte must fail cleanly at Read or
	// DecodeInto — never panic, never silently succeed with bad counts.
	for off := 0; off < headerSize; off++ {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xff
		blk, err := Read(bytes.NewReader(bad))
		if err != nil {
			continue
		}
		out := make([]float64, blk.Total())
		_ = blk.DecodeInto(out, 2) // error or success both fine; no panic
	}
}

// Package entropy implements the quantize → entropy-code stage of the
// pipeline: a uniform scalar quantizer (configurable bit depth or absolute
// error bound, plus an exact lossless mode) feeding a canonical Huffman
// coder over magnitude classes with an exponential-Golomb escape path for
// outliers. It is the coefficient backend behind the "entropy" codec in
// internal/codec, and roughly halves on-disk size against the sparse
// float32 backend at equal reported error (the WaveRange observation the
// ROADMAP's first open item calls for).
//
// The unit of coding is a Block: one thresholded coefficient slice, mostly
// zeros, encoded as (gap, value) pairs. Retained positions are coded as
// exponential-Golomb gaps; retained values are quantized and coded as a
// Huffman magnitude class plus raw refinement bits and a sign. Blocks are
// internally split into fixed-size coefficient chunks that encode and
// decode independently, so both directions parallelize under the
// internal/par worker budget while producing bit-identical streams at
// every worker count.
package entropy

import (
	"fmt"
	"math/bits"
)

// BitWriter appends bits MSB-first to a growing byte buffer. The zero
// value is ready to use; Bytes returns the finished stream with the final
// partial byte zero-padded.
type BitWriter struct {
	buf  []byte
	acc  uint64 // staged bits, left-aligned within the low `nacc` bits
	nacc uint   // number of staged bits in acc (< 8 after any Write)
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 64]; bits of v above the low n are ignored.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	// Drain whole output bytes while the staged bits plus the remaining
	// input cover one. acc always holds fewer than 8 bits between calls.
	for w.nacc+n >= 8 {
		take := 8 - w.nacc // bits of v consumed by this output byte
		shift := n - take
		w.buf = append(w.buf, byte(w.acc<<take|v>>shift)) //stlint:ignore trunccast packing exactly the top 8 staged bits into one output byte
		w.acc, w.nacc = 0, 0
		n = shift
		if n < 64 {
			v &= (1 << n) - 1
		}
	}
	if n > 0 {
		w.acc = w.acc<<n | v
		w.nacc += n
	}
}

// WriteBit appends a single bit (any nonzero b writes 1).
func (w *BitWriter) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

// WriteExpGolomb appends v in order-k exponential-Golomb form: with
// v' = v + 2^k and n = bits.Len(v'), it writes n-1-k zero bits followed by
// the n bits of v'. Order 0 codes 0 as "1", 1 as "010", 2 as "011"…;
// higher orders trade a longer minimum code for flatter growth, which
// suits streams whose typical value is near 2^k.
func (w *BitWriter) WriteExpGolomb(v uint64, k uint) {
	if k > 62 {
		k = 62
	}
	// v + 2^k can overflow uint64 only for v > 2^64 - 2^k; callers code
	// magnitudes clamped far below that (see Quantizer), but saturate
	// defensively instead of wrapping into a malformed stream.
	if v > ^uint64(0)-(1<<k) {
		v = ^uint64(0) - (1 << k)
	}
	vp := v + 1<<k
	n := uint(bits.Len64(vp)) //stlint:ignore trunccast bits.Len64 of a nonzero value is in [1, 64]
	zeros := n - 1 - k
	for zeros > 0 {
		take := zeros
		if take > 32 {
			take = 32
		}
		w.WriteBits(0, take)
		zeros -= take
	}
	w.WriteBits(vp, n)
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.nacc) } //stlint:ignore trunccast acc holds fewer than 8 bits between calls

// Bytes returns the finished stream, zero-padding the final partial byte.
// The writer may not be used after Bytes.
func (w *BitWriter) Bytes() []byte {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.nacc))) //stlint:ignore trunccast zero-padding the final partial byte is the contract
		w.acc, w.nacc = 0, 0
	}
	return w.buf
}

// Reset drops all written bits but keeps the underlying buffer capacity,
// so a pooled writer can be reused across chunks without reallocating.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.acc, w.nacc = 0, 0
}

// BitReader consumes bits MSB-first from a byte slice. Reads past the end
// of the buffer return errors rather than padding, so a truncated or
// corrupt stream is always detected.
type BitReader struct {
	buf []byte
	pos int // bit cursor
}

// NewBitReader reads bits from buf. The reader does not copy buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// errTruncated is the error for any read past the end of the stream.
var errTruncated = fmt.Errorf("entropy: bitstream truncated")

// ReadBits reads n bits (n in [0, 64]) MSB-first.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, fmt.Errorf("entropy: cannot read %d bits at once", n)
	}
	if r.pos+int(n) > len(r.buf)*8 {
		return 0, errTruncated
	}
	var v uint64
	pos := r.pos
	for rem := n; rem > 0; {
		byteIdx := pos >> 3
		bitOff := uint(pos & 7)
		avail := 8 - bitOff
		take := avail
		if take > rem {
			take = rem
		}
		chunk := uint64(r.buf[byteIdx]>>(avail-take)) & ((1 << take) - 1)
		v = v<<take | chunk
		pos += int(take)
		rem -= take
	}
	r.pos = pos
	return v, nil
}

// ReadBit reads a single bit.
func (r *BitReader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// ReadExpGolomb reads one order-k exponential-Golomb value written by
// WriteExpGolomb. Streams whose zero-run implies a value beyond 64 bits
// are rejected as corrupt.
func (r *BitReader) ReadExpGolomb(k uint) (uint64, error) {
	if k > 62 {
		k = 62
	}
	zeros := uint(0)
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros+k+1 > 64 {
			return 0, fmt.Errorf("entropy: exp-golomb prefix of %d zeros exceeds 64-bit range", zeros)
		}
	}
	n := zeros + k + 1 // total code length including the marker bit read above
	rest, err := r.ReadBits(n - 1)
	if err != nil {
		return 0, err
	}
	vp := 1<<(n-1) | rest
	return vp - 1<<k, nil
}

// Remaining returns the number of unread bits.
func (r *BitReader) Remaining() int { return len(r.buf)*8 - r.pos }

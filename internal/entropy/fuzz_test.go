package entropy

import (
	"bytes"
	"math"
	"testing"
)

// FuzzEntropyRoundtrip: quantize → encode → decode → dequantize must never
// panic and must reconstruct every retained coefficient within the
// quantizer's error bound (step/2 in adaptive bit-depth mode).
func FuzzEntropyRoundtrip(f *testing.F) {
	f.Add([]byte{}, uint8(16))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(8))
	seed := make([]byte, 8*6)
	for i, v := range []float64{0, 1.5, -2.25, 1e-9, -1e12, math.Pi} {
		binary := math.Float64bits(v)
		for j := 0; j < 8; j++ {
			seed[8*i+j] = byte(binary >> (8 * j))
		}
	}
	f.Add(seed, uint8(12))

	f.Fuzz(func(t *testing.T, data []byte, depth uint8) {
		coeffs := make([]float64, len(data)/8)
		for i := range coeffs {
			var u uint64
			for j := 0; j < 8; j++ {
				u |= uint64(data[8*i+j]) << (8 * j)
			}
			v := math.Float64frombits(u)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0 // thresholded coefficients are always finite
			}
			coeffs[i] = v
		}
		p := Params{BitDepth: int(depth%30) + 2}
		b, err := Encode(coeffs, p, 2)
		if err != nil {
			t.Fatalf("encode rejected valid params: %v", err)
		}
		out := make([]float64, len(coeffs))
		if err := b.DecodeInto(out, 2); err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		// The adaptive step guarantees |err| <= step/2 for every retained
		// value; the relative slack absorbs the float64 division rounding.
		bound := b.Step()/2 + math.Abs(b.Step())*1e-9
		for i, v := range coeffs {
			diff := math.Abs(out[i] - v)
			if diff > bound+math.Abs(v)*1e-12 {
				t.Fatalf("i=%d v=%g: err %g > bound %g (step %g)", i, v, diff, bound, b.Step())
			}
		}
	})
}

// FuzzBlockRead: arbitrary bytes through Read/DecodeInto must never panic;
// whatever Read accepts must decode or fail cleanly.
func FuzzBlockRead(f *testing.F) {
	coeffs := make([]float64, 300)
	coeffs[3], coeffs[250] = 0.5, -1.25
	for _, p := range []Params{{Lossless: true}, {BitDepth: 12}} {
		b, err := Encode(coeffs, p, 1)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("STE"))
	// Regression seed: a forged chunk claiming one value whose index gap
	// lands exactly on the chunk end previously wrote out[total] and
	// panicked inside DecodeInto's parallel pass.
	{
		fb := forgeGapOverflowBlock(100, 100)
		var buf bytes.Buffer
		if _, err := fb.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if b.Retained() > b.Total() {
			t.Fatalf("retained %d > total %d accepted", b.Retained(), b.Total())
		}
		out := make([]float64, b.Total())
		_ = b.DecodeInto(out, 2)
	})
}

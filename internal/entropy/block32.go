package entropy

import (
	"fmt"
	"math"

	"stwave/internal/fbits"
	"stwave/internal/par"
	"stwave/internal/scratch"
)

// float32 encode/decode paths. The wire format is unchanged — the
// quantizer step and Huffman statistics were always derived from exact
// float64 views of the coefficients, and widening a float32 to float64 is
// exact, so Encode32 over a float32 slice produces a byte stream
// bit-identical to Encode over the widened copy of the same slice. That
// makes the single-precision pipeline free at this layer: no slab-widening
// pass on encode, no narrow pass on decode, and lossless blocks round-trip
// the exact float32 bits in both directions. Structure mirrors block.go;
// the two files must be changed together.

// Encode32 entropy-codes one thresholded float32 coefficient slice on up
// to workers goroutines. Zero-valued coefficients are treated as
// discarded. The output is bit-identical for every worker count, and
// bit-identical to Encode over the exactly-widened slice.
func Encode32(coeffs []float32, p Params, workers int) (*Block, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(coeffs)
	if n >= maxBlockTotal {
		return nil, fmt.Errorf("entropy: %d coefficients exceed the format cap %d", n, maxBlockTotal)
	}
	b := &Block{
		total:    n,
		lossless: p.Lossless,
		bitDepth: p.BitDepth,
	}
	if p.Lossless {
		b.bitDepth = 0
	}
	nch := numChunks(n)
	b.chunkLen = make([]uint32, nch)
	if n == 0 {
		return b, nil
	}

	// Pass 1: per-chunk survivor counts and magnitude maxima. Maxima are
	// tracked as float64 — widening is exact, and the quantizer step is a
	// float64 property of the block regardless of sample precision.
	counts := make([]int, nch)
	maxs := scratch.Floats(nch)
	defer scratch.PutFloats(maxs)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			lo, hi := chunkBounds(ci, n)
			k, m := 0, 0.0
			for _, v := range coeffs[lo:hi] {
				if !fbits.Zero32(v) {
					k++
					if a := math.Abs(float64(v)); a > m {
						m = a
					}
				}
			}
			counts[ci], maxs[ci] = k, m
		}
	})
	maxMag := 0.0
	for ci := range counts {
		b.retained += counts[ci]
		if maxs[ci] > maxMag {
			maxMag = maxs[ci]
		}
	}
	q := p.newQuantizer(maxMag)
	b.step = q.Step
	b.gapK = gapOrder(n, b.retained)

	var codes []uint64
	if !p.Lossless && b.retained > 0 {
		// Pass 2: global magnitude-class histogram → canonical Huffman.
		nsyms := b.bitDepth + 2
		hists := make([][]uint64, nch)
		par.For(nch, workers, 1, func(start, end int) {
			for ci := start; ci < end; ci++ {
				lo, hi := chunkBounds(ci, n)
				h := scratch.Uint64s(nsyms)
				clear(h)
				for _, v := range coeffs[lo:hi] {
					if fbits.Zero32(v) {
						continue
					}
					h[classSymbol(q.Quantize(float64(v)), b.bitDepth)]++
				}
				hists[ci] = h
			}
		})
		hist := make([]int64, nsyms)
		for _, h := range hists {
			for s, c := range h {
				hist[s] += int64(c) //stlint:ignore trunccast per-chunk symbol counts are bounded by chunkSize
			}
			scratch.PutUint64s(h)
		}
		b.lengths = huffBuildLengths(hist)
		codes = huffCodes(b.lengths)
	}

	// Pass 3: encode every chunk into its own bitstream.
	chunks := make([][]byte, nch)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			chunks[ci] = encodeChunk32(coeffs, ci, b, q, codes, counts[ci])
		}
	})
	totalBytes := 0
	for ci, c := range chunks {
		if len(c) > maxChunkPayload {
			return nil, fmt.Errorf("entropy: chunk %d payload %d exceeds format cap %d", ci, len(c), maxChunkPayload)
		}
		b.chunkLen[ci] = uint32(len(c))
		totalBytes += len(c)
	}
	b.payload = make([]byte, 0, totalBytes)
	for _, c := range chunks {
		b.payload = append(b.payload, c...)
	}
	return b, nil
}

// encodeChunk32 produces chunk ci's bitstream from float32 coefficients.
func encodeChunk32(coeffs []float32, ci int, b *Block, q Quantizer, codes []uint64, kc int) []byte {
	n := b.total
	lo, hi := chunkBounds(ci, n)
	if kc == 0 {
		var w BitWriter
		w.WriteExpGolomb(0, 0)
		return w.Bytes()
	}
	w := BitWriter{buf: make([]byte, 0, 16+kc*6)}
	w.WriteExpGolomb(uint64(kc), 0) //stlint:ignore trunccast kc is a non-negative survivor count
	prev := lo - 1
	esc := len(codes) - 1
	for i := lo; i < hi; i++ {
		v := coeffs[i]
		if fbits.Zero32(v) {
			continue
		}
		w.WriteExpGolomb(uint64(i-prev-1), uint(b.gapK)) //stlint:ignore trunccast gap between ascending indices is non-negative
		prev = i
		if b.lossless {
			w.WriteBits(uint64(math.Float32bits(v)), 32)
			continue
		}
		level := q.Quantize(float64(v))
		mag := levelMag(level)
		c := magClass(mag)
		if c > b.bitDepth {
			w.WriteBits(codes[esc], uint(b.lengths[esc]))
			w.WriteExpGolomb(mag-1<<uint(b.bitDepth), 0)
		} else {
			w.WriteBits(codes[c], uint(b.lengths[c]))
			if c > 0 {
				w.WriteBits(mag-1<<uint(c-1), uint(c-1)) //stlint:ignore trunccast c > 0 on this branch
			}
		}
		if c > 0 {
			if level < 0 {
				w.WriteBit(1)
			} else {
				w.WriteBit(0)
			}
		}
	}
	return w.Bytes()
}

// DecodeInto32 expands the block into a float32 slice of length Total on
// up to workers goroutines, zeroing discarded positions. Lossless blocks
// reproduce the stored float32 bits exactly; lossy reconstructions round
// once from the float64 dequantized value. Output is identical for every
// worker count.
func (b *Block) DecodeInto32(out []float32, workers int) error {
	if len(out) != b.total {
		return fmt.Errorf("entropy: DecodeInto32 length %d != total %d", len(out), b.total)
	}
	n := b.total
	if n == 0 {
		return nil
	}
	var dec *huffDecoder
	if !b.lossless && b.retained > 0 {
		var err error
		dec, err = newHuffDecoder(b.lengths)
		if err != nil {
			return err
		}
	}
	q := Quantizer{Step: b.step}
	if !b.lossless && (!(q.Step > 0) || math.IsInf(q.Step, 0)) {
		return fmt.Errorf("entropy: corrupt block: non-positive quantization step %g", q.Step)
	}
	nch := numChunks(n)
	if len(b.chunkLen) != nch {
		return fmt.Errorf("entropy: corrupt block: %d chunks for %d coefficients (want %d)", len(b.chunkLen), n, nch)
	}
	offs := make([]int, nch+1)
	for ci, ln := range b.chunkLen {
		offs[ci+1] = offs[ci] + int(ln)
	}
	if offs[nch] != len(b.payload) {
		return fmt.Errorf("entropy: corrupt block: chunk lengths sum to %d, payload is %d bytes", offs[nch], len(b.payload))
	}
	errs := make([]error, nch)
	kcs := make([]int, nch)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			kcs[ci], errs[ci] = b.decodeChunk32(out, ci, b.payload[offs[ci]:offs[ci+1]], dec, q)
		}
	})
	k := 0
	for ci := range errs {
		if errs[ci] != nil {
			return fmt.Errorf("entropy: chunk %d: %w", ci, errs[ci])
		}
		k += kcs[ci]
	}
	if k != b.retained {
		return fmt.Errorf("entropy: corrupt block: chunks carry %d values, header claims %d", k, b.retained)
	}
	return nil
}

// decodeChunk32 expands one chunk's bitstream into out[lo:hi], returning
// the number of values it carried.
func (b *Block) decodeChunk32(out []float32, ci int, payload []byte, dec *huffDecoder, q Quantizer) (int, error) {
	lo, hi := chunkBounds(ci, b.total)
	for i := lo; i < hi; i++ {
		out[i] = 0
	}
	r := NewBitReader(payload)
	kcU, err := r.ReadExpGolomb(0)
	if err != nil {
		return 0, err
	}
	if kcU > uint64(hi-lo) { //stlint:ignore trunccast chunkBounds always yields lo < hi
		return 0, fmt.Errorf("entropy: chunk claims %d values for %d coefficients", kcU, hi-lo)
	}
	kc := int(kcU)
	pos := lo - 1
	for j := 0; j < kc; j++ {
		gap, err := r.ReadExpGolomb(uint(b.gapK))
		if err != nil {
			return 0, err
		}
		if gap >= uint64(hi-pos-1) { //stlint:ignore trunccast pos <= hi-1 here, as in decodeChunk
			return 0, fmt.Errorf("entropy: index gap %d runs past chunk end", gap)
		}
		pos += 1 + int(gap)
		if pos >= hi {
			return 0, fmt.Errorf("entropy: decoded index %d runs past chunk end", pos)
		}
		if b.lossless {
			vbits, err := r.ReadBits(32)
			if err != nil {
				return 0, err
			}
			out[pos] = math.Float32frombits(uint32(vbits)) //stlint:ignore trunccast ReadBits(32) yields at most 32 bits
			continue
		}
		sym, err := dec.Decode(r)
		if err != nil {
			return 0, err
		}
		var mag uint64
		switch {
		case sym == 0:
			out[pos] = 0
			continue // class 0 carries no sign bit
		case sym <= b.bitDepth:
			extra := uint64(0)
			if sym > 1 {
				extra, err = r.ReadBits(uint(sym - 1)) //stlint:ignore trunccast sym > 1 on this branch
				if err != nil {
					return 0, err
				}
			}
			mag = 1<<uint(sym-1) | extra //stlint:ignore trunccast sym >= 1: the zero class continues above
		default: // escape
			over, err := r.ReadExpGolomb(0)
			if err != nil {
				return 0, err
			}
			if over > uint64(quantMagCap) {
				return 0, fmt.Errorf("entropy: escape magnitude %d exceeds quantizer range", over)
			}
			mag = over + 1<<uint(b.bitDepth)
		}
		sign, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		level := int64(mag) //stlint:ignore trunccast mag is bounded by quantMagCap + 2^31 < 2^63
		if sign == 1 {
			level = -level
		}
		out[pos] = float32(q.Dequantize(level)) //stlint:ignore trunccast single rounding from the float64 reconstruction is the f32 contract
	}
	return kc, nil
}

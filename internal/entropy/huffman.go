package entropy

import (
	"fmt"
	"sort"
)

// Canonical Huffman over a small alphabet (magnitude classes plus an
// escape symbol — at most a few dozen symbols). Only code lengths cross
// the wire, one byte per symbol; both sides derive the same canonical
// codes from them, and the decoder validates the lengths (Kraft
// inequality) before trusting a single payload bit.

// maxHuffLen bounds code lengths. A Huffman tree over s leaves is at most
// s-1 deep, and the alphabet never exceeds 33 symbols, so 40 leaves slack
// on top of that is unreachable; the bound exists to reject forged tables.
const maxHuffLen = 63

// huffBuildLengths computes deterministic Huffman code lengths for the
// given symbol frequencies. Zero-frequency symbols get length 0 (no
// code). Ties are broken by symbol/creation order, so the result is a
// pure function of freqs — bit-identical streams at every worker count
// depend on this.
func huffBuildLengths(freqs []int64) []uint8 {
	n := len(freqs)
	lengths := make([]uint8, n)
	type node struct {
		freq        int64
		seq         int // stable tie-break: leaves by symbol, internals by creation
		left, right int // node indices; -1 for leaves
		sym         int
	}
	nodes := make([]node, 0, 2*n)
	live := make([]int, 0, n) // indices of nodes not yet merged
	for s, f := range freqs {
		if f > 0 {
			nodes = append(nodes, node{freq: f, seq: s, left: -1, right: -1, sym: s})
			live = append(live, len(nodes)-1)
		}
	}
	switch len(live) {
	case 0:
		return lengths
	case 1:
		// A single distinct symbol still needs one bit per occurrence so
		// the decoder can count values off the stream.
		lengths[nodes[live[0]].sym] = 1
		return lengths
	}
	// The alphabet is tiny (≤ 33 symbols), so a linear scan per merge is
	// cheaper and simpler than a heap.
	for len(live) > 1 {
		min1, min2 := -1, -1 // positions in live of the two smallest nodes
		for i, ni := range live {
			nd := nodes[ni]
			better := func(pos int) bool {
				o := nodes[live[pos]]
				return nd.freq < o.freq || (nd.freq == o.freq && nd.seq < o.seq)
			}
			switch {
			case min1 < 0 || better(min1):
				min1, min2 = i, min1
			case min2 < 0 || better(min2):
				min2 = i
			}
		}
		a, b := live[min1], live[min2]
		nodes = append(nodes, node{freq: nodes[a].freq + nodes[b].freq, seq: len(nodes), left: a, right: b})
		// Replace the two merged entries with the new internal node.
		merged := len(nodes) - 1
		keep := live[:0]
		for _, ni := range live {
			if ni != a && ni != b {
				keep = append(keep, ni)
			}
		}
		live = append(keep, merged)
	}
	// Depth-first walk assigns leaf depths as code lengths.
	type frame struct{ node, depth int }
	stack := []frame{{live[0], 0}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[fr.node]
		if nd.left < 0 {
			d := fr.depth
			if d == 0 {
				d = 1
			}
			lengths[nd.sym] = uint8(d) //stlint:ignore trunccast depth is bounded by the alphabet size (≤ 33)
			continue
		}
		stack = append(stack, frame{nd.left, fr.depth + 1}, frame{nd.right, fr.depth + 1})
	}
	return lengths
}

// huffCodes derives the canonical codes for a set of code lengths: symbols
// sorted by (length, symbol) receive consecutive code values, shifted left
// at each length increase. Returns one code per symbol (valid only where
// lengths[sym] > 0).
func huffCodes(lengths []uint8) []uint64 {
	type sl struct {
		sym int
		ln  uint8
	}
	order := make([]sl, 0, len(lengths))
	for s, ln := range lengths {
		if ln > 0 {
			order = append(order, sl{s, ln})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].ln != order[j].ln {
			return order[i].ln < order[j].ln
		}
		return order[i].sym < order[j].sym
	})
	codes := make([]uint64, len(lengths))
	var code uint64
	var prev uint8
	for _, e := range order {
		code <<= uint(e.ln - prev)
		codes[e.sym] = code
		code++
		prev = e.ln
	}
	return codes
}

// huffDecoder decodes canonical Huffman symbols bit by bit using the
// first-code-per-length tables.
type huffDecoder struct {
	maxLen   uint8
	first    [maxHuffLen + 1]uint64 // first canonical code of each length
	count    [maxHuffLen + 1]int    // symbols of each length
	symBase  [maxHuffLen + 1]int    // offset of each length's first symbol in syms
	syms     []int                  // symbols sorted by (length, symbol)
	nonEmpty bool
}

// newHuffDecoder validates lengths (bounds and the Kraft inequality) and
// builds the canonical decoding tables. Forged tables whose lengths
// overcommit the code space are rejected here, so Decode never indexes out
// of range.
func newHuffDecoder(lengths []uint8) (*huffDecoder, error) {
	d := &huffDecoder{}
	var kraft uint64 // in units of 2^-maxHuffLen
	for s, ln := range lengths {
		if ln == 0 {
			continue
		}
		if ln > maxHuffLen {
			return nil, fmt.Errorf("entropy: huffman code length %d exceeds cap %d", ln, maxHuffLen)
		}
		kraft += uint64(1) << (maxHuffLen - ln)
		if kraft > uint64(1)<<maxHuffLen {
			return nil, fmt.Errorf("entropy: huffman table overcommits code space (symbol %d)", s)
		}
		d.count[ln]++
		if ln > d.maxLen {
			d.maxLen = ln
		}
		d.nonEmpty = true
	}
	if !d.nonEmpty {
		return d, nil
	}
	d.syms = make([]int, 0, len(lengths))
	var code uint64
	for ln := uint8(1); ln <= d.maxLen; ln++ {
		code <<= 1
		d.first[ln] = code
		d.symBase[ln] = len(d.syms)
		for s, l := range lengths {
			if l == ln {
				d.syms = append(d.syms, s)
			}
		}
		code += uint64(d.count[ln]) //stlint:ignore trunccast canonical code counts are non-negative
	}
	return d, nil
}

// Decode reads one symbol from r.
func (d *huffDecoder) Decode(r *BitReader) (int, error) {
	if !d.nonEmpty {
		return 0, fmt.Errorf("entropy: decode with empty huffman table")
	}
	var code uint64
	for ln := uint8(1); ln <= d.maxLen; ln++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(bit)
		if d.count[ln] > 0 && code >= d.first[ln] && code-d.first[ln] < uint64(d.count[ln]) {
			return d.syms[d.symBase[ln]+int(code-d.first[ln])], nil
		}
	}
	return 0, fmt.Errorf("entropy: invalid huffman code in stream")
}

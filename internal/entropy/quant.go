package entropy

import (
	"fmt"
	"math"
)

// Params configures the quantize → entropy-code stage. The zero value is
// not valid; start from DefaultParams.
type Params struct {
	// BitDepth is the number of magnitude bits per quantized value before
	// the escape path kicks in, and — when ErrorBound is zero — also sets
	// the quantization step per block: step = maxMag / (2^BitDepth - 1),
	// so the largest coefficient of the block uses all BitDepth bits and
	// the absolute error is bounded by step/2. Must be in [2, 31].
	BitDepth int
	// ErrorBound, when > 0, fixes the absolute quantization error bound
	// directly: step = 2*ErrorBound regardless of the block's magnitude
	// range. Values needing more than BitDepth magnitude bits take the
	// exponential-Golomb escape path, so a generous bound stays honest for
	// outliers instead of clamping them.
	ErrorBound float64
	// Lossless stores the exact float32 bits of every retained value (the
	// same precision the sparse backend keeps), so the entropy backend
	// round-trips bit-identically to it. Gap coding of the significance
	// map still applies, so lossless blocks remain smaller than sparse
	// ones at high ratios.
	Lossless bool
}

// DefaultParams returns the shipped configuration: 16 magnitude bits with
// a per-block adaptive step. The quantization SNR (~6 dB per bit) sits far
// below thresholding error at every ratio the paper studies, so reported
// PSNR matches the sparse backend while values cost ~2 bytes instead of 4.
func DefaultParams() Params {
	return Params{BitDepth: 16}
}

// Validate reports the first configuration problem found.
func (p Params) Validate() error {
	if p.Lossless {
		return nil
	}
	if p.BitDepth < 2 || p.BitDepth > 31 {
		return fmt.Errorf("entropy: bit depth must be in [2, 31], got %d", p.BitDepth)
	}
	if p.ErrorBound < 0 || math.IsNaN(p.ErrorBound) || math.IsInf(p.ErrorBound, 0) {
		return fmt.Errorf("entropy: invalid error bound %g", p.ErrorBound)
	}
	return nil
}

// Quantizer maps coefficients to integer levels with a fixed uniform step.
// The zero Step means lossless (no quantization at all).
type Quantizer struct {
	Step float64
}

// quantMagCap bounds |level| so that magnitude arithmetic (negation,
// +1 offsets in the escape path) can never overflow int64/uint64 even on
// adversarial inputs. 2^62 levels is unreachably far beyond any useful
// bit depth.
const quantMagCap = int64(1) << 62

// newQuantizer resolves the step for a block whose largest coefficient
// magnitude is maxMag. Lossless params yield the zero (pass-through)
// quantizer.
func (p Params) newQuantizer(maxMag float64) Quantizer {
	if p.Lossless {
		return Quantizer{}
	}
	if p.ErrorBound > 0 {
		return Quantizer{Step: 2 * p.ErrorBound}
	}
	levels := float64(uint64(1)<<uint(p.BitDepth) - 1) //stlint:ignore trunccast BitDepth is validated to [2, 31] before any quantizer is built
	if maxMag <= 0 || math.IsInf(maxMag, 0) || math.IsNaN(maxMag) {
		// Degenerate block (all zeros, or garbage magnitudes): any positive
		// step works, every value escapes or quantizes safely.
		return Quantizer{Step: 1}
	}
	step := maxMag / levels
	if step <= 0 || math.IsInf(step, 0) {
		// maxMag in the subnormal range can underflow the division; fall
		// back to the smallest positive normal step.
		step = math.SmallestNonzeroFloat64 * levels
	}
	return Quantizer{Step: step}
}

// Quantize maps v to its level: round(v/Step), saturated to ±quantMagCap.
// NaN maps to level 0. Deterministic for any input.
func (q Quantizer) Quantize(v float64) int64 {
	x := v / q.Step
	if math.IsNaN(x) {
		return 0
	}
	if x >= float64(quantMagCap) {
		return quantMagCap
	}
	if x <= -float64(quantMagCap) {
		return -quantMagCap
	}
	return int64(math.Round(x))
}

// Dequantize maps a level back to its reconstruction value level*Step.
func (q Quantizer) Dequantize(level int64) float64 {
	return float64(level) * q.Step
}

// Package num holds the floating-point type constraint shared by the
// precision-generic pipeline stages, plus the slice conversion helpers
// used at precision boundaries. The pipeline runs end-to-end in either
// float32 or float64; float64 is the reference oracle and float32 the
// bandwidth-halving fast path, so every stage that touches coefficient
// slabs is generic over this constraint.
package num

// Float constrains a type parameter to the two supported coefficient
// precisions.
type Float interface{ ~float32 | ~float64 }

// SampleBytes returns the in-memory size of one sample of F (4 or 8).
func SampleBytes[F Float]() int {
	if _, ok := any(F(0)).(float32); ok {
		return 4
	}
	return 8
}

// Is32 reports whether F is the single-precision instantiation.
func Is32[F Float]() bool {
	_, ok := any(F(0)).(float32)
	return ok
}

// Convert copies src into dst with a per-element value conversion
// (correctly rounded when narrowing). The slices must have equal length.
func Convert[D, S Float](dst []D, src []S) {
	if len(src) == 0 {
		return
	}
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] = D(v)
	}
}

// Widen returns a freshly allocated []float64 copy of src.
func Widen[F Float](src []F) []float64 {
	out := make([]float64, len(src))
	for i, v := range src {
		out[i] = float64(v)
	}
	return out
}

// Narrow returns a freshly allocated []float32 copy of src (correctly
// rounded per element).
func Narrow[F Float](src []F) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}

package isosurface

import (
	"fmt"

	"stwave/internal/fbits"
	"stwave/internal/grid"
)

// ExtractSurfaceNets computes the isosurface with the (naive) surface nets
// algorithm — a dual method: every cell crossed by the surface contributes
// one vertex (the average of its edge-crossing points), and every grid edge
// with a sign change stitches the four cells sharing it into a quad. It
// produces smoother, lower-triangle-count meshes than marching tetrahedra
// and serves as an independent cross-check for the surface-area metric
// (two very different algorithms should agree on area within discretization
// error — a property the tests assert).
//
// Quads touching the grid boundary (where fewer than four cells share the
// edge) are skipped, so the mesh is the surface restricted to the interior.
func ExtractSurfaceNets(f *grid.Field3D, isovalue float64, opt Options) (*Mesh, error) {
	d := f.Dims
	if d.Nx < 2 || d.Ny < 2 || d.Nz < 2 {
		return nil, fmt.Errorf("isosurface: grid %v too small", d)
	}
	sx, sy, sz := opt.SpacingX, opt.SpacingY, opt.SpacingZ
	if fbits.Zero(sx) {
		sx = 1
	}
	if fbits.Zero(sy) {
		sy = 1
	}
	if fbits.Zero(sz) {
		sz = 1
	}
	cx, cy, cz := d.Nx-1, d.Ny-1, d.Nz-1 // cell counts
	cellIdx := func(x, y, z int) int { return (z*cy+y)*cx + x }
	verts := make(map[int]Vec3)

	// Cube edges as corner-pair offsets (12 edges).
	type edge struct{ a, b [3]int }
	edges := []edge{
		{[3]int{0, 0, 0}, [3]int{1, 0, 0}}, {[3]int{0, 1, 0}, [3]int{1, 1, 0}},
		{[3]int{0, 0, 1}, [3]int{1, 0, 1}}, {[3]int{0, 1, 1}, [3]int{1, 1, 1}},
		{[3]int{0, 0, 0}, [3]int{0, 1, 0}}, {[3]int{1, 0, 0}, [3]int{1, 1, 0}},
		{[3]int{0, 0, 1}, [3]int{0, 1, 1}}, {[3]int{1, 0, 1}, [3]int{1, 1, 1}},
		{[3]int{0, 0, 0}, [3]int{0, 0, 1}}, {[3]int{1, 0, 0}, [3]int{1, 0, 1}},
		{[3]int{0, 1, 0}, [3]int{0, 1, 1}}, {[3]int{1, 1, 0}, [3]int{1, 1, 1}},
	}

	// Pass 1: one vertex per crossed cell.
	for z := 0; z < cz; z++ {
		for y := 0; y < cy; y++ {
			for x := 0; x < cx; x++ {
				var sum Vec3
				count := 0
				for _, e := range edges {
					ax, ay, az := x+e.a[0], y+e.a[1], z+e.a[2]
					bx, by, bz := x+e.b[0], y+e.b[1], z+e.b[2]
					va := f.At(ax, ay, az)
					vb := f.At(bx, by, bz)
					inA, inB := va >= isovalue, vb >= isovalue
					if inA == inB {
						continue
					}
					t := 0.5
					if !fbits.Eq(vb, va) {
						t = (isovalue - va) / (vb - va)
					}
					sum.X += (float64(ax) + t*float64(bx-ax)) * sx
					sum.Y += (float64(ay) + t*float64(by-ay)) * sy
					sum.Z += (float64(az) + t*float64(bz-az)) * sz
					count++
				}
				if count > 0 {
					inv := 1 / float64(count)
					verts[cellIdx(x, y, z)] = Vec3{sum.X * inv, sum.Y * inv, sum.Z * inv}
				}
			}
		}
	}

	mesh := &Mesh{}
	quad := func(c0, c1, c2, c3 int) {
		v0, ok0 := verts[c0]
		v1, ok1 := verts[c1]
		v2, ok2 := verts[c2]
		v3, ok3 := verts[c3]
		if !ok0 || !ok1 || !ok2 || !ok3 {
			return
		}
		mesh.Triangles = append(mesh.Triangles,
			Triangle{A: v0, B: v1, C: v2},
			Triangle{A: v0, B: v2, C: v3},
		)
	}

	// Pass 2: stitch quads across sign-changing grid edges (interior only).
	// X-directed edges at sample (x,y,z)-(x+1,y,z) join cells
	// (x, y-1..y, z-1..z).
	for z := 1; z < cz; z++ {
		for y := 1; y < cy; y++ {
			for x := 0; x < cx; x++ {
				a := f.At(x, y, z) >= isovalue
				b := f.At(x+1, y, z) >= isovalue
				if a == b {
					continue
				}
				quad(cellIdx(x, y-1, z-1), cellIdx(x, y, z-1), cellIdx(x, y, z), cellIdx(x, y-1, z))
			}
		}
	}
	// Y-directed edges join cells (x-1..x, y, z-1..z).
	for z := 1; z < cz; z++ {
		for y := 0; y < cy; y++ {
			for x := 1; x < cx; x++ {
				a := f.At(x, y, z) >= isovalue
				b := f.At(x, y+1, z) >= isovalue
				if a == b {
					continue
				}
				quad(cellIdx(x-1, y, z-1), cellIdx(x, y, z-1), cellIdx(x, y, z), cellIdx(x-1, y, z))
			}
		}
	}
	// Z-directed edges join cells (x-1..x, y-1..y, z).
	for z := 0; z < cz; z++ {
		for y := 1; y < cy; y++ {
			for x := 1; x < cx; x++ {
				a := f.At(x, y, z) >= isovalue
				b := f.At(x, y, z+1) >= isovalue
				if a == b {
					continue
				}
				quad(cellIdx(x-1, y-1, z), cellIdx(x, y-1, z), cellIdx(x, y, z), cellIdx(x-1, y, z))
			}
		}
	}
	return mesh, nil
}

package isosurface

import (
	"bytes"
	"math"
	"testing"

	"stwave/internal/grid"
)

func sphereField(n int, r float64) *grid.Field3D {
	// Signed distance-like field: value = r - distance from center; the
	// zero isosurface is a sphere of radius r (in grid units).
	f := grid.NewField3D(n, n, n)
	c := float64(n-1) / 2
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				dx, dy, dz := float64(x)-c, float64(y)-c, float64(z)-c
				f.Set(x, y, z, r-math.Sqrt(dx*dx+dy*dy+dz*dz))
			}
		}
	}
	return f
}

func TestTriangleArea(t *testing.T) {
	tr := Triangle{A: Vec3{0, 0, 0}, B: Vec3{1, 0, 0}, C: Vec3{0, 1, 0}}
	if got := tr.Area(); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("area = %g, want 0.5", got)
	}
	degenerate := Triangle{A: Vec3{1, 1, 1}, B: Vec3{1, 1, 1}, C: Vec3{2, 2, 2}}
	if got := degenerate.Area(); got != 0 {
		t.Errorf("degenerate area = %g", got)
	}
}

func TestExtractValidation(t *testing.T) {
	if _, err := Extract(grid.NewField3D(1, 4, 4), 0, Options{}); err == nil {
		t.Error("expected error for degenerate grid")
	}
}

func TestEmptyWhenIsovalueOutsideRange(t *testing.T) {
	f := grid.NewField3D(4, 4, 4)
	f.Fill(1)
	m, err := Extract(f, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Triangles) != 0 {
		t.Errorf("isovalue above all data produced %d triangles", len(m.Triangles))
	}
	m, err = Extract(f, -5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Triangles) != 0 {
		t.Errorf("isovalue below all data produced %d triangles", len(m.Triangles))
	}
}

func TestPlaneAreaExact(t *testing.T) {
	// Field = z - 2.5: the zero isosurface is the plane z = 2.5 crossing a
	// (n-1)² cross-section, area (n-1)² in grid units.
	n := 9
	f := grid.NewField3D(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				f.Set(x, y, z, float64(z)-2.5)
			}
		}
	}
	m, err := Extract(f, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64((n - 1) * (n - 1))
	if got := m.SurfaceArea(); math.Abs(got-want) > 1e-9 {
		t.Errorf("plane area = %g, want %g", got, want)
	}
}

func TestSphereAreaConverges(t *testing.T) {
	// The zero level set of (r - |x-c|) is a sphere: area 4πr².
	areaErr := func(n int, r float64) float64 {
		f := sphereField(n, r)
		m, err := Extract(f, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := 4 * math.Pi * r * r
		return math.Abs(m.SurfaceArea()-want) / want
	}
	coarse := areaErr(16, 5)
	fine := areaErr(48, 15) // same relative radius, 3x resolution
	if coarse > 0.05 {
		t.Errorf("coarse sphere area off by %.3f, want < 5%%", coarse)
	}
	if fine > 0.02 {
		t.Errorf("fine sphere area off by %.3f, want < 2%%", fine)
	}
	if fine >= coarse {
		t.Errorf("no convergence: fine error %.4f >= coarse %.4f", fine, coarse)
	}
}

func TestSpacingScalesArea(t *testing.T) {
	f := sphereField(16, 5)
	m1, err := Extract(f, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Extract(f, 0, Options{SpacingX: 2, SpacingY: 2, SpacingZ: 2})
	if err != nil {
		t.Fatal(err)
	}
	ratio := m2.SurfaceArea() / m1.SurfaceArea()
	if math.Abs(ratio-4) > 1e-9 {
		t.Errorf("doubling spacing scaled area by %g, want 4", ratio)
	}
}

func TestAnisotropicSpacing(t *testing.T) {
	// Plane z = const with spacing (2, 3, 1): area = (n-1)²·2·3.
	n := 5
	f := grid.NewField3D(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				f.Set(x, y, z, float64(z)-1.5)
			}
		}
	}
	m, err := Extract(f, 0, Options{SpacingX: 2, SpacingY: 3, SpacingZ: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := float64((n-1)*(n-1)) * 6
	if got := m.SurfaceArea(); math.Abs(got-want) > 1e-9 {
		t.Errorf("anisotropic plane area = %g, want %g", got, want)
	}
}

func TestMeshIsClosedForInteriorSurface(t *testing.T) {
	// A closed surface has even triangle counts per tetrahedron and no
	// boundary edges; as a cheap proxy, verify the extracted sphere's area
	// is stable under isovalue perturbation (no holes popping).
	f := sphereField(24, 8)
	m0, err := Extract(f, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Extract(f, 0.01, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(m0.SurfaceArea()-m1.SurfaceArea()) / m0.SurfaceArea()
	if rel > 0.01 {
		t.Errorf("area jumped %.4f under tiny isovalue change", rel)
	}
}

func TestAreaError(t *testing.T) {
	if got := AreaError(100, 100); got != 0 {
		t.Errorf("perfect fit error = %g", got)
	}
	if got := AreaError(100, 95); math.Abs(got-5) > 1e-12 {
		t.Errorf("5%% smaller surface: error = %g, want 5", got)
	}
	if got := AreaError(100, 110); math.Abs(got+10) > 1e-12 {
		t.Errorf("10%% larger surface: error = %g, want -10", got)
	}
	if got := AreaError(0, 0); got != 0 {
		t.Errorf("0/0 error = %g", got)
	}
	if got := AreaError(0, 5); !math.IsInf(got, -1) {
		t.Errorf("nonzero/0 error = %g, want -Inf", got)
	}
}

func BenchmarkExtractSphere32(b *testing.B) {
	f := sphereField(32, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(f, 0, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSurfaceNetsSphereAreaAgreesWithMarchingTetrahedra(t *testing.T) {
	f := sphereField(32, 11)
	mt, err := Extract(f, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sn, err := ExtractSurfaceNets(f, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * math.Pi * 11 * 11
	mtArea, snArea := mt.SurfaceArea(), sn.SurfaceArea()
	if rel := math.Abs(snArea-want) / want; rel > 0.05 {
		t.Errorf("surface nets sphere area off by %.3f", rel)
	}
	// Two independent algorithms must agree within a few percent.
	if rel := math.Abs(snArea-mtArea) / mtArea; rel > 0.06 {
		t.Errorf("surface nets (%.4g) and marching tetrahedra (%.4g) disagree by %.3f", snArea, mtArea, rel)
	}
	// Dual meshes are far leaner than simplicial ones.
	if len(sn.Triangles) >= len(mt.Triangles) {
		t.Errorf("surface nets has %d triangles vs MT %d — dual should be leaner", len(sn.Triangles), len(mt.Triangles))
	}
}

func TestSurfaceNetsPlane(t *testing.T) {
	n := 10
	f := grid.NewField3D(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				f.Set(x, y, z, float64(z)-4.5)
			}
		}
	}
	m, err := ExtractSurfaceNets(f, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Interior-only stitching drops the boundary quads: the z-edge loop
	// runs x,y over [1, n-2], giving (n-2)^2 unit quads.
	want := float64((n - 2) * (n - 2))
	if got := m.SurfaceArea(); math.Abs(got-want) > 1e-9 {
		t.Errorf("plane area %g, want %g (interior quads)", got, want)
	}
}

func TestSurfaceNetsEmptyAndValidation(t *testing.T) {
	f := grid.NewField3D(4, 4, 4)
	f.Fill(1)
	m, err := ExtractSurfaceNets(f, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Triangles) != 0 {
		t.Error("isovalue outside range produced triangles")
	}
	if _, err := ExtractSurfaceNets(grid.NewField3D(1, 4, 4), 0, Options{}); err == nil {
		t.Error("expected error for degenerate grid")
	}
}

func TestSTLRoundTrip(t *testing.T) {
	f := sphereField(16, 5)
	m, err := Extract(f, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteSTL(&buf, "sphere"); err != nil {
		t.Fatal(err)
	}
	wantSize := 84 + 50*len(m.Triangles)
	if buf.Len() != wantSize {
		t.Errorf("STL size %d, want %d", buf.Len(), wantSize)
	}
	back, err := ReadSTL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Triangles) != len(m.Triangles) {
		t.Fatalf("round trip triangle count %d vs %d", len(back.Triangles), len(m.Triangles))
	}
	// Areas agree to float32 precision.
	if rel := math.Abs(back.SurfaceArea()-m.SurfaceArea()) / m.SurfaceArea(); rel > 1e-5 {
		t.Errorf("round trip area differs by %.3g", rel)
	}
}

func TestReadSTLRejectsGarbage(t *testing.T) {
	if _, err := ReadSTL(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("expected error for truncated header")
	}
	// Valid header, implausible count.
	data := make([]byte, 84)
	data[80], data[81], data[82], data[83] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := ReadSTL(bytes.NewReader(data)); err == nil {
		t.Error("expected error for implausible count")
	}
	// Count says 1 facet but no payload.
	data = make([]byte, 84)
	data[80] = 1
	if _, err := ReadSTL(bytes.NewReader(data)); err == nil {
		t.Error("expected error for truncated facets")
	}
}

func TestFacetNormalDegenerate(t *testing.T) {
	nx, ny, nz := facetNormal(Triangle{A: Vec3{1, 1, 1}, B: Vec3{1, 1, 1}, C: Vec3{1, 1, 1}})
	if nx != 0 || ny != 0 || nz != 0 {
		t.Error("degenerate facet normal not zero")
	}
	nx, ny, nz = facetNormal(Triangle{A: Vec3{0, 0, 0}, B: Vec3{1, 0, 0}, C: Vec3{0, 1, 0}})
	if math.Abs(nz-1) > 1e-15 || nx != 0 || ny != 0 {
		t.Errorf("xy triangle normal (%g,%g,%g), want (0,0,1)", nx, ny, nz)
	}
}

package isosurface

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"stwave/internal/fbits"
)

// WriteSTL serializes the mesh as binary STL — the lowest-common-denominator
// triangle format every mesh viewer (ParaView, MeshLab, CAD tools) reads.
// Normals are computed per facet from the winding order.
func (m *Mesh) WriteSTL(w io.Writer, name string) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var header [80]byte
	copy(header[:], name)
	if _, err := bw.Write(header[:]); err != nil {
		return err
	}
	if len(m.Triangles) > math.MaxUint32 {
		return fmt.Errorf("isosurface: %d triangles exceed STL's uint32 count", len(m.Triangles))
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(m.Triangles)))
	if _, err := bw.Write(n[:]); err != nil {
		return err
	}
	writeVec := func(x, y, z float64) error {
		var b [12]byte
		binary.LittleEndian.PutUint32(b[0:4], math.Float32bits(float32(x)))
		binary.LittleEndian.PutUint32(b[4:8], math.Float32bits(float32(y)))
		binary.LittleEndian.PutUint32(b[8:12], math.Float32bits(float32(z)))
		_, err := bw.Write(b[:])
		return err
	}
	for _, t := range m.Triangles {
		nx, ny, nz := facetNormal(t)
		if err := writeVec(nx, ny, nz); err != nil {
			return err
		}
		for _, v := range [3]Vec3{t.A, t.B, t.C} {
			if err := writeVec(v.X, v.Y, v.Z); err != nil {
				return err
			}
		}
		if _, err := bw.Write([]byte{0, 0}); err != nil { // attribute bytes
			return err
		}
	}
	return bw.Flush()
}

// facetNormal returns the unit normal of the triangle (zero for degenerate
// facets).
func facetNormal(t Triangle) (nx, ny, nz float64) {
	ux, uy, uz := t.B.X-t.A.X, t.B.Y-t.A.Y, t.B.Z-t.A.Z
	vx, vy, vz := t.C.X-t.A.X, t.C.Y-t.A.Y, t.C.Z-t.A.Z
	nx = uy*vz - uz*vy
	ny = uz*vx - ux*vz
	nz = ux*vy - uy*vx
	l := math.Sqrt(nx*nx + ny*ny + nz*nz)
	if fbits.Zero(l) {
		return 0, 0, 0
	}
	return nx / l, ny / l, nz / l
}

// ReadSTL parses a binary STL back into a mesh (for round-trip testing and
// for loading externally-generated reference surfaces).
func ReadSTL(r io.Reader) (*Mesh, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var header [80]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return nil, fmt.Errorf("isosurface: reading STL header: %w", err)
	}
	var nb [4]byte
	if _, err := io.ReadFull(br, nb[:]); err != nil {
		return nil, fmt.Errorf("isosurface: reading STL count: %w", err)
	}
	count := binary.LittleEndian.Uint32(nb[:])
	if count > 1<<28 {
		return nil, fmt.Errorf("isosurface: implausible STL triangle count %d", count)
	}
	mesh := &Mesh{Triangles: make([]Triangle, 0, count)}
	buf := make([]byte, 50) // 12 normal + 36 vertices + 2 attr
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("isosurface: reading facet %d: %w", i, err)
		}
		vec := func(off int) Vec3 {
			return Vec3{
				X: float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))),
				Y: float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4:]))),
				Z: float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[off+8:]))),
			}
		}
		mesh.Triangles = append(mesh.Triangles, Triangle{A: vec(12), B: vec(24), C: vec(36)})
	}
	return mesh, nil
}

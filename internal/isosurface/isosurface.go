// Package isosurface extracts isosurfaces from scalar fields and measures
// their total surface area — the paper's Section VI-B analysis metric
// ("we opted to use the total surface area of the isosurfaces as our
// accuracy metric").
//
// Extraction uses marching tetrahedra: every grid cell is split into six
// tetrahedra and each tetrahedron contributes 0, 1, or 2 triangles
// depending on which of its corners exceed the isovalue, with vertex
// positions linearly interpolated along crossed edges. Marching tetrahedra
// avoids the ambiguous cases of marching cubes and needs no case tables,
// and converges to the same surface area with grid refinement.
package isosurface

import (
	"fmt"
	"math"

	"stwave/internal/fbits"
	"stwave/internal/grid"
)

// Vec3 is a point in physical space.
type Vec3 struct {
	X, Y, Z float64
}

// Triangle is one extracted surface triangle.
type Triangle struct {
	A, B, C Vec3
}

// Area returns the triangle's area.
func (t Triangle) Area() float64 {
	ux, uy, uz := t.B.X-t.A.X, t.B.Y-t.A.Y, t.B.Z-t.A.Z
	vx, vy, vz := t.C.X-t.A.X, t.C.Y-t.A.Y, t.C.Z-t.A.Z
	cx := uy*vz - uz*vy
	cy := uz*vx - ux*vz
	cz := ux*vy - uy*vx
	return 0.5 * math.Sqrt(cx*cx+cy*cy+cz*cz)
}

// Mesh is an extracted isosurface.
type Mesh struct {
	Triangles []Triangle
}

// SurfaceArea returns the summed triangle area.
func (m *Mesh) SurfaceArea() float64 {
	var a float64
	for _, t := range m.Triangles {
		a += t.Area()
	}
	return a
}

// The six tetrahedra of a cube, as corner indices into the cube's 8
// vertices (bit 0 = +x, bit 1 = +y, bit 2 = +z). This is the standard
// diagonal (0,7) decomposition.
var cubeTets = [6][4]int{
	{0, 5, 1, 7},
	{0, 1, 3, 7},
	{0, 3, 2, 7},
	{0, 2, 6, 7},
	{0, 6, 4, 7},
	{0, 4, 5, 7},
}

// Options configures extraction.
type Options struct {
	// Spacing maps grid indices to physical coordinates; zero values
	// default to 1.
	SpacingX, SpacingY, SpacingZ float64
}

// Extract computes the isosurface of f at isovalue. The mesh is in physical
// coordinates (grid index times spacing).
func Extract(f *grid.Field3D, isovalue float64, opt Options) (*Mesh, error) {
	d := f.Dims
	if d.Nx < 2 || d.Ny < 2 || d.Nz < 2 {
		return nil, fmt.Errorf("isosurface: grid %v too small", d)
	}
	sx, sy, sz := opt.SpacingX, opt.SpacingY, opt.SpacingZ
	if fbits.Zero(sx) {
		sx = 1
	}
	if fbits.Zero(sy) {
		sy = 1
	}
	if fbits.Zero(sz) {
		sz = 1
	}
	mesh := &Mesh{}
	var corners [8]Vec3
	var values [8]float64
	for z := 0; z < d.Nz-1; z++ {
		for y := 0; y < d.Ny-1; y++ {
			for x := 0; x < d.Nx-1; x++ {
				for c := 0; c < 8; c++ {
					cx := x + (c & 1)
					cy := y + (c >> 1 & 1)
					cz := z + (c >> 2 & 1)
					corners[c] = Vec3{float64(cx) * sx, float64(cy) * sy, float64(cz) * sz}
					values[c] = f.At(cx, cy, cz)
				}
				for _, tet := range cubeTets {
					marchTet(mesh, &corners, &values, tet, isovalue)
				}
			}
		}
	}
	return mesh, nil
}

// marchTet emits the triangles for one tetrahedron.
func marchTet(mesh *Mesh, corners *[8]Vec3, values *[8]float64, tet [4]int, iso float64) {
	var inside [4]bool
	count := 0
	for i, ci := range tet {
		if values[ci] >= iso {
			inside[i] = true
			count++
		}
	}
	if count == 0 || count == 4 {
		return
	}
	// Edge interpolation helper between tet-local vertices a and b.
	cross := func(a, b int) Vec3 {
		va, vb := values[tet[a]], values[tet[b]]
		pa, pb := corners[tet[a]], corners[tet[b]]
		t := 0.5
		if !fbits.Eq(vb, va) {
			t = (iso - va) / (vb - va)
		}
		return Vec3{
			X: pa.X + t*(pb.X-pa.X),
			Y: pa.Y + t*(pb.Y-pa.Y),
			Z: pa.Z + t*(pb.Z-pa.Z),
		}
	}
	// Collect the tet-local indices of inside/outside vertices.
	var in, out []int
	for i := 0; i < 4; i++ {
		if inside[i] {
			in = append(in, i)
		} else {
			out = append(out, i)
		}
	}
	switch count {
	case 1:
		// One inside: single triangle on the three edges from it.
		a := in[0]
		mesh.Triangles = append(mesh.Triangles, Triangle{
			A: cross(a, out[0]), B: cross(a, out[1]), C: cross(a, out[2]),
		})
	case 3:
		// One outside: single triangle on the three edges to it.
		a := out[0]
		mesh.Triangles = append(mesh.Triangles, Triangle{
			A: cross(in[0], a), B: cross(in[1], a), C: cross(in[2], a),
		})
	case 2:
		// Two in, two out: quad split into two triangles.
		p00 := cross(in[0], out[0])
		p01 := cross(in[0], out[1])
		p10 := cross(in[1], out[0])
		p11 := cross(in[1], out[1])
		mesh.Triangles = append(mesh.Triangles,
			Triangle{A: p00, B: p01, C: p11},
			Triangle{A: p00, B: p11, C: p10},
		)
	}
}

// AreaError implements the paper's metric: (1 - SA/SA_baseline) * 100
// percent. 0 is a perfect fit; positive means the test surface is smaller
// than the baseline, negative larger.
func AreaError(baselineArea, testArea float64) float64 {
	if fbits.Zero(baselineArea) {
		if fbits.Zero(testArea) {
			return 0
		}
		return math.Inf(-1)
	}
	return (1 - testArea/baselineArea) * 100
}

package grid

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func randField(rng *rand.Rand, nx, ny, nz int) *Field3D {
	f := NewField3D(nx, ny, nz)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	return f
}

func TestDims(t *testing.T) {
	d := Dims{4, 5, 6}
	if d.Len() != 120 {
		t.Errorf("Len = %d, want 120", d.Len())
	}
	if !d.Valid() {
		t.Error("expected valid dims")
	}
	if (Dims{0, 5, 6}).Valid() {
		t.Error("expected invalid dims with zero extent")
	}
	if d.String() != "4x5x6" {
		t.Errorf("String = %q", d.String())
	}
}

func TestFieldIndexing(t *testing.T) {
	f := NewField3D(3, 4, 5)
	f.Set(2, 3, 4, 7.5)
	if got := f.At(2, 3, 4); got != 7.5 {
		t.Errorf("At = %g, want 7.5", got)
	}
	if got := f.Index(2, 3, 4); got != len(f.Data)-1 {
		t.Errorf("Index of last corner = %d, want %d", got, len(f.Data)-1)
	}
	if got := f.Index(0, 0, 0); got != 0 {
		t.Errorf("Index of origin = %d, want 0", got)
	}
	// X-fastest ordering: (1,0,0) is adjacent to (0,0,0).
	if got := f.Index(1, 0, 0); got != 1 {
		t.Errorf("Index(1,0,0) = %d, want 1 (X-fastest)", got)
	}
}

func TestFromData(t *testing.T) {
	data := make([]float64, 24)
	f, err := FromData(2, 3, 4, data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dims != (Dims{2, 3, 4}) {
		t.Errorf("dims = %v", f.Dims)
	}
	if _, err := FromData(2, 3, 4, make([]float64, 23)); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := FromData(0, 3, 4, nil); err == nil {
		t.Error("expected invalid-dims error")
	}
}

func TestNewField3DPanicsOnInvalidDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid dims")
		}
	}()
	NewField3D(-1, 2, 3)
}

func TestCloneIsDeep(t *testing.T) {
	f := NewField3D(2, 2, 2)
	f.Fill(1)
	c := f.Clone()
	c.Data[0] = 99
	if f.Data[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestMinMaxRange(t *testing.T) {
	f := NewField3D(2, 2, 1)
	copy(f.Data, []float64{3, -1, 7, math.NaN()})
	min, max := f.MinMax()
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%g, %g), want (-1, 7)", min, max)
	}
	if f.Range() != 8 {
		t.Errorf("Range = %g, want 8", f.Range())
	}
}

func TestAddScaled(t *testing.T) {
	f := NewField3D(2, 1, 1)
	g := NewField3D(2, 1, 1)
	f.Data[0], f.Data[1] = 1, 2
	g.Data[0], g.Data[1] = 10, 20
	if err := f.AddScaled(0.5, g); err != nil {
		t.Fatal(err)
	}
	if f.Data[0] != 6 || f.Data[1] != 12 {
		t.Errorf("AddScaled result %v", f.Data)
	}
	h := NewField3D(3, 1, 1)
	if err := f.AddScaled(1, h); err == nil {
		t.Error("expected dims-mismatch error")
	}
}

func TestWindowAppendAndRange(t *testing.T) {
	w := NewWindow(Dims{2, 2, 1})
	a := NewField3D(2, 2, 1)
	a.Fill(1)
	b := NewField3D(2, 2, 1)
	b.Fill(5)
	if err := w.Append(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(b, 1); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 || w.TotalSamples() != 8 {
		t.Errorf("Len=%d TotalSamples=%d", w.Len(), w.TotalSamples())
	}
	if w.Range() != 4 {
		t.Errorf("window Range = %g, want 4", w.Range())
	}
	bad := NewField3D(3, 2, 1)
	if err := w.Append(bad, 2); err == nil {
		t.Error("expected dims-mismatch error")
	}
}

func TestWindowSubsample(t *testing.T) {
	w := NewWindow(Dims{1, 1, 1})
	for i := 0; i < 10; i++ {
		f := NewField3D(1, 1, 1)
		f.Data[0] = float64(i)
		if err := w.Append(f, float64(i)*2); err != nil {
			t.Fatal(err)
		}
	}
	half, err := w.Subsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if half.Len() != 5 {
		t.Fatalf("subsample(2) len = %d, want 5", half.Len())
	}
	for i, s := range half.Slices {
		if s.Data[0] != float64(2*i) {
			t.Errorf("subsample slice %d = %g, want %g", i, s.Data[0], float64(2*i))
		}
		if half.Times[i] != float64(4*i) {
			t.Errorf("subsample time %d = %g, want %g", i, half.Times[i], float64(4*i))
		}
	}
	quarter, err := w.Subsample(4)
	if err != nil {
		t.Fatal(err)
	}
	if quarter.Len() != 3 { // slices 0,4,8
		t.Errorf("subsample(4) len = %d, want 3", quarter.Len())
	}
	if _, err := w.Subsample(0); err == nil {
		t.Error("expected error for stride 0")
	}
}

func TestWindowPartition(t *testing.T) {
	w := NewWindow(Dims{1, 1, 1})
	for i := 0; i < 23; i++ {
		f := NewField3D(1, 1, 1)
		f.Data[0] = float64(i)
		if err := w.Append(f, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	chunks, err := w.Partition(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("partition count = %d, want 3", len(chunks))
	}
	wantLens := []int{10, 10, 3}
	for i, c := range chunks {
		if c.Len() != wantLens[i] {
			t.Errorf("chunk %d len = %d, want %d", i, c.Len(), wantLens[i])
		}
	}
	if chunks[2].Slices[2].Data[0] != 22 {
		t.Error("last chunk does not preserve order")
	}
	if _, err := w.Partition(0); err == nil {
		t.Error("expected error for size 0")
	}
}

func TestGatherScatterSeries(t *testing.T) {
	w := NewWindow(Dims{2, 1, 1})
	for i := 0; i < 4; i++ {
		f := NewField3D(2, 1, 1)
		f.Data[0] = float64(i)
		f.Data[1] = float64(i) * 10
		if err := w.Append(f, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]float64, 4)
	got := w.GatherSeries(1, buf)
	want := []float64{0, 10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GatherSeries = %v, want %v", got, want)
		}
	}
	for i := range got {
		got[i] += 1
	}
	w.ScatterSeries(1, got)
	if w.Slices[2].Data[1] != 21 {
		t.Errorf("ScatterSeries did not write back: %g", w.Slices[2].Data[1])
	}
}

func TestWindowCloneIsDeep(t *testing.T) {
	w := NewWindow(Dims{1, 1, 1})
	f := NewField3D(1, 1, 1)
	f.Data[0] = 1
	if err := w.Append(f, 0); err != nil {
		t.Fatal(err)
	}
	c := w.Clone()
	c.Slices[0].Data[0] = 99
	c.Times[0] = 99
	if w.Slices[0].Data[0] != 1 || w.Times[0] != 0 {
		t.Error("window Clone shares storage")
	}
}

func TestRawFloat32RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := randField(rng, 4, 3, 2)
	var buf bytes.Buffer
	if err := f.WriteRawFloat32(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 4*3*2*4 {
		t.Errorf("serialized size = %d, want %d", buf.Len(), 4*3*2*4)
	}
	g, err := ReadRawFloat32(&buf, 4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-g.Data[i]) > 1e-6 {
			t.Fatalf("sample %d: %g vs %g", i, f.Data[i], g.Data[i])
		}
	}
}

func TestRawFloat64RoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := randField(rng, 3, 3, 3)
	var buf bytes.Buffer
	if err := f.WriteRawFloat64(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadRawFloat64(&buf, 3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatalf("sample %d: %g vs %g (float64 round trip must be exact)", i, f.Data[i], g.Data[i])
		}
	}
}

func TestReadRawTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(make([]byte, 10)) // not enough for 2x2x2 float32
	if _, err := ReadRawFloat32(&buf, 2, 2, 2); err == nil {
		t.Error("expected error on truncated input")
	}
}

func TestSaveLoadRawFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vol.raw")
	rng := rand.New(rand.NewSource(3))
	f := randField(rng, 5, 4, 3)
	if err := f.SaveRawFile(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != f.RawSizeBytes(4) {
		t.Errorf("file size %d, want %d", info.Size(), f.RawSizeBytes(4))
	}
	g, err := LoadRawFile(path, 5, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-g.Data[i]) > 1e-6 {
			t.Fatalf("sample %d mismatch", i)
		}
	}
}

// Property: Subsample(1) is the identity; Partition chunks reassemble to the
// original slice sequence.
func TestQuickWindowInvariants(t *testing.T) {
	prop := func(nRaw, sizeRaw uint8) bool {
		n := int(nRaw)%50 + 1
		size := int(sizeRaw)%10 + 1
		w := NewWindow(Dims{1, 1, 1})
		for i := 0; i < n; i++ {
			f := NewField3D(1, 1, 1)
			f.Data[0] = float64(i)
			if err := w.Append(f, float64(i)); err != nil {
				return false
			}
		}
		same, err := w.Subsample(1)
		if err != nil || same.Len() != n {
			return false
		}
		chunks, err := w.Partition(size)
		if err != nil {
			return false
		}
		total, idx := 0, 0
		for _, c := range chunks {
			total += c.Len()
			if c.Len() > size {
				return false
			}
			for _, s := range c.Slices {
				if s.Data[0] != float64(idx) {
					return false
				}
				idx++
			}
		}
		return total == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResampleIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := randField(rng, 5, 6, 7)
	g, err := f.Resample(5, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if math.Abs(f.Data[i]-g.Data[i]) > 1e-12 {
			t.Fatalf("identity resample changed sample %d", i)
		}
	}
}

func TestResampleLinearFieldExact(t *testing.T) {
	// Trilinear resampling reproduces a trilinear function exactly at any
	// resolution.
	f := NewField3D(4, 4, 4)
	fn := func(x, y, z float64) float64 { return 1 + 2*x - y + 0.5*z }
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				f.Set(x, y, z, fn(float64(x), float64(y), float64(z)))
			}
		}
	}
	up, err := f.Resample(7, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 5; z++ {
		gz := float64(z) * 3.0 / 4.0
		for y := 0; y < 10; y++ {
			gy := float64(y) * 3.0 / 9.0
			for x := 0; x < 7; x++ {
				gx := float64(x) * 3.0 / 6.0
				want := fn(gx, gy, gz)
				if got := up.At(x, y, z); math.Abs(got-want) > 1e-12 {
					t.Fatalf("resample(%d,%d,%d) = %g, want %g", x, y, z, got, want)
				}
			}
		}
	}
}

func TestResampleCornersPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := randField(rng, 6, 6, 6)
	g, err := f.Resample(13, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.At(0, 0, 0)-f.At(0, 0, 0)) > 1e-12 {
		t.Error("origin corner not preserved")
	}
	if math.Abs(g.At(12, 8, 3)-f.At(5, 5, 5)) > 1e-12 {
		t.Error("far corner not preserved")
	}
}

func TestResampleValidation(t *testing.T) {
	f := NewField3D(4, 4, 4)
	if _, err := f.Resample(0, 4, 4); err == nil {
		t.Error("expected error for zero extent")
	}
}

package grid

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"stwave/internal/num"
)

// Raw volume I/O. Simulation outputs and the paper's accounting both use
// 4-byte (float32) samples; float64 variants are provided for lossless
// round-tripping of solver state.
//
// All readers and writers move data in fixed-size slabs — one buffered
// syscall-sized chunk at a time, converted in place — instead of the
// per-sample 4/8-byte loop the original implementation used. On the
// float32 pipeline a float32 file fills a Field3D32 with no intermediate
// float64 widen pass at all.

// ioSlab is the number of samples converted per buffered chunk (256 KiB
// at float32): large enough to amortize the write syscall, small enough
// to stay cache-resident while converting.
const ioSlab = 1 << 16

// WriteRawFloat32 streams the field as little-endian float32 samples
// (rounding once per sample when F is float64).
func (f *Field3DOf[F]) WriteRawFloat32(w io.Writer) error {
	buf := make([]byte, 4*ioSlab)
	data := f.Data
	for len(data) > 0 {
		n := len(data)
		if n > ioSlab {
			n = ioSlab
		}
		for i, v := range data[:n] {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
		}
		if _, err := w.Write(buf[:4*n]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// WriteRawFloat64 streams the field as little-endian float64 samples.
func (f *Field3DOf[F]) WriteRawFloat64(w io.Writer) error {
	buf := make([]byte, 8*ioSlab)
	data := f.Data
	for len(data) > 0 {
		n := len(data)
		if n > ioSlab {
			n = ioSlab
		}
		for i, v := range data[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(float64(v)))
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// readRaw fills data from r, decoding bytesPer-sized little-endian samples
// slab by slab via dec.
func readRaw[F num.Float](r io.Reader, data []F, bytesPer int, dec func(dst []F, src []byte)) error {
	buf := make([]byte, bytesPer*ioSlab)
	total := len(data)
	for off := 0; off < total; {
		n := total - off
		if n > ioSlab {
			n = ioSlab
		}
		if _, err := io.ReadFull(r, buf[:bytesPer*n]); err != nil {
			return fmt.Errorf("grid: reading samples %d..%d/%d: %w", off, off+n, total, err)
		}
		dec(data[off:off+n], buf)
		off += n
	}
	return nil
}

// ReadRawFloat32Of reads nx*ny*nz little-endian float32 samples into a new
// field at precision F. With F = float32 the samples land in the field
// bit-for-bit with no widening; with F = float64 each is widened exactly.
func ReadRawFloat32Of[F num.Float](r io.Reader, nx, ny, nz int) (*Field3DOf[F], error) {
	f := NewField3DOf[F](nx, ny, nz)
	err := readRaw(r, f.Data, 4, func(dst []F, src []byte) {
		for i := range dst {
			dst[i] = F(math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:])))
		}
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadRawFloat32 reads nx*ny*nz little-endian float32 samples into a new
// float64 field.
func ReadRawFloat32(r io.Reader, nx, ny, nz int) (*Field3D, error) {
	return ReadRawFloat32Of[float64](r, nx, ny, nz)
}

// ReadRawFloat64Of reads nx*ny*nz little-endian float64 samples into a new
// field at precision F (rounding once per sample when F is float32).
func ReadRawFloat64Of[F num.Float](r io.Reader, nx, ny, nz int) (*Field3DOf[F], error) {
	f := NewField3DOf[F](nx, ny, nz)
	err := readRaw(r, f.Data, 8, func(dst []F, src []byte) {
		for i := range dst {
			dst[i] = F(math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:])))
		}
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadRawFloat64 reads nx*ny*nz little-endian float64 samples into a new
// float64 field.
func ReadRawFloat64(r io.Reader, nx, ny, nz int) (*Field3D, error) {
	return ReadRawFloat64Of[float64](r, nx, ny, nz)
}

// SaveRawFile writes the field to path as float32 samples.
func (f *Field3DOf[F]) SaveRawFile(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.WriteRawFloat32(file); err != nil {
		return err
	}
	return file.Close()
}

// LoadRawFileOf reads a float32 raw volume from path at precision F.
func LoadRawFileOf[F num.Float](path string, nx, ny, nz int) (*Field3DOf[F], error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return ReadRawFloat32Of[F](file, nx, ny, nz)
}

// LoadRawFile reads a float32 raw volume from path into a float64 field.
func LoadRawFile(path string, nx, ny, nz int) (*Field3D, error) {
	return LoadRawFileOf[float64](path, nx, ny, nz)
}

// RawSizeBytes returns the on-disk size of the field at the given bytes per
// sample (4 for float32, 8 for float64).
func (f *Field3DOf[F]) RawSizeBytes(bytesPerSample int) int64 {
	return int64(f.Dims.Len()) * int64(bytesPerSample)
}

package grid

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Raw volume I/O. Simulation outputs and the paper's accounting both use
// 4-byte (float32) samples; float64 variants are provided for lossless
// round-tripping of solver state.

// WriteRawFloat32 streams the field as little-endian float32 samples.
func (f *Field3D) WriteRawFloat32(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf [4]byte
	for _, v := range f.Data {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(float32(v)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteRawFloat64 streams the field as little-endian float64 samples.
func (f *Field3D) WriteRawFloat64(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf [8]byte
	for _, v := range f.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRawFloat32 reads nx*ny*nz little-endian float32 samples into a new
// field.
func ReadRawFloat32(r io.Reader, nx, ny, nz int) (*Field3D, error) {
	f := NewField3D(nx, ny, nz)
	br := bufio.NewReaderSize(r, 1<<16)
	var buf [4]byte
	for i := range f.Data {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("grid: reading sample %d/%d: %w", i, len(f.Data), err)
		}
		f.Data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[:])))
	}
	return f, nil
}

// ReadRawFloat64 reads nx*ny*nz little-endian float64 samples into a new
// field.
func ReadRawFloat64(r io.Reader, nx, ny, nz int) (*Field3D, error) {
	f := NewField3D(nx, ny, nz)
	br := bufio.NewReaderSize(r, 1<<16)
	var buf [8]byte
	for i := range f.Data {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("grid: reading sample %d/%d: %w", i, len(f.Data), err)
		}
		f.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return f, nil
}

// SaveRawFile writes the field to path as float32 samples.
func (f *Field3D) SaveRawFile(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.WriteRawFloat32(file); err != nil {
		return err
	}
	return file.Close()
}

// LoadRawFile reads a float32 raw volume from path.
func LoadRawFile(path string, nx, ny, nz int) (*Field3D, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return ReadRawFloat32(file, nx, ny, nz)
}

// RawSizeBytes returns the on-disk size of the field at the given bytes per
// sample (4 for float32, 8 for float64).
func (f *Field3D) RawSizeBytes(bytesPerSample int) int64 {
	return int64(f.Dims.Len()) * int64(bytesPerSample)
}

package grid

import "fmt"

// Resample produces a new field of the given extents by trilinear
// interpolation of f, with the two grids aligned at their corners. Used to
// compare multiresolution previews against full-resolution data and to
// bring staggered variables onto a common grid.
func (f *Field3DOf[F]) Resample(nx, ny, nz int) (*Field3DOf[F], error) {
	d := Dims{Nx: nx, Ny: ny, Nz: nz}
	if !d.Valid() {
		return nil, fmt.Errorf("grid: invalid resample dims %v", d)
	}
	out := NewField3DOf[F](nx, ny, nz)
	scale := func(dstN, srcN int) float64 {
		if dstN <= 1 {
			return 0
		}
		return float64(srcN-1) / float64(dstN-1)
	}
	sx := scale(nx, f.Dims.Nx)
	sy := scale(ny, f.Dims.Ny)
	sz := scale(nz, f.Dims.Nz)
	for z := 0; z < nz; z++ {
		gz := float64(z) * sz
		for y := 0; y < ny; y++ {
			gy := float64(y) * sy
			for x := 0; x < nx; x++ {
				out.Set(x, y, z, F(f.interp(float64(x)*sx, gy, gz)))
			}
		}
	}
	return out, nil
}

// interp evaluates the field at fractional grid coordinates with clamping.
func (f *Field3DOf[F]) interp(gx, gy, gz float64) float64 {
	clamp := func(v float64, n int) (int, float64) {
		if v < 0 {
			v = 0
		}
		if v > float64(n-1) {
			v = float64(n - 1)
		}
		i := int(v)
		if i > n-2 {
			i = n - 2
		}
		if i < 0 {
			i = 0
		}
		return i, v - float64(i)
	}
	if f.Dims.Nx == 1 && f.Dims.Ny == 1 && f.Dims.Nz == 1 {
		return float64(f.Data[0])
	}
	x0, fx := clamp(gx, max2(f.Dims.Nx, 2))
	y0, fy := clamp(gy, max2(f.Dims.Ny, 2))
	z0, fz := clamp(gz, max2(f.Dims.Nz, 2))
	at := func(x, y, z int) float64 {
		if x >= f.Dims.Nx {
			x = f.Dims.Nx - 1
		}
		if y >= f.Dims.Ny {
			y = f.Dims.Ny - 1
		}
		if z >= f.Dims.Nz {
			z = f.Dims.Nz - 1
		}
		return float64(f.At(x, y, z))
	}
	c00 := at(x0, y0, z0) + fx*(at(x0+1, y0, z0)-at(x0, y0, z0))
	c10 := at(x0, y0+1, z0) + fx*(at(x0+1, y0+1, z0)-at(x0, y0+1, z0))
	c01 := at(x0, y0, z0+1) + fx*(at(x0+1, y0, z0+1)-at(x0, y0, z0+1))
	c11 := at(x0, y0+1, z0+1) + fx*(at(x0+1, y0+1, z0+1)-at(x0, y0+1, z0+1))
	c0 := c00 + fy*(c10-c00)
	c1 := c01 + fy*(c11-c01)
	return c0 + fz*(c1-c0)
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package grid

import (
	"fmt"

	"stwave/internal/num"
)

// WindowOf is an ordered group of time slices of one variable, all on the
// same grid — the unit the paper's spatiotemporal compressor operates on
// (Section IV-A, Figure 1) — at sample precision F. Simulation times stay
// float64 at both precisions: they are metadata, not coefficient traffic.
type WindowOf[F num.Float] struct {
	Dims   Dims
	Slices []*Field3DOf[F]
	// Times holds the simulation time of each slice; optional (nil means
	// uniformly spaced unit steps). When present, len(Times) == len(Slices).
	Times []float64
}

// Window is the double-precision window of the reference pipeline.
type Window = WindowOf[float64]

// Window32 is the single-precision window of the float32 fast path.
type Window32 = WindowOf[float32]

// NewWindowOf creates an empty window for the given grid extents at
// precision F.
func NewWindowOf[F num.Float](d Dims) *WindowOf[F] {
	return &WindowOf[F]{Dims: d}
}

// NewWindow creates an empty float64 window for the given grid extents.
func NewWindow(d Dims) *Window {
	return NewWindowOf[float64](d)
}

// NewWindow32 creates an empty float32 window for the given grid extents.
func NewWindow32(d Dims) *Window32 {
	return NewWindowOf[float32](d)
}

// Append adds a slice to the window at simulation time t. The slice's dims
// must match the window's.
func (w *WindowOf[F]) Append(f *Field3DOf[F], t float64) error {
	if f.Dims != w.Dims {
		return fmt.Errorf("grid: slice dims %v do not match window dims %v", f.Dims, w.Dims)
	}
	w.Slices = append(w.Slices, f)
	w.Times = append(w.Times, t)
	return nil
}

// Len returns the number of time slices currently in the window.
func (w *WindowOf[F]) Len() int { return len(w.Slices) }

// TotalSamples returns the number of scalar samples across all slices.
func (w *WindowOf[F]) TotalSamples() int { return w.Len() * w.Dims.Len() }

// Clone deep-copies the window.
func (w *WindowOf[F]) Clone() *WindowOf[F] {
	c := &WindowOf[F]{Dims: w.Dims, Slices: make([]*Field3DOf[F], len(w.Slices))}
	for i, s := range w.Slices {
		c.Slices[i] = s.Clone()
	}
	if w.Times != nil {
		c.Times = append([]float64(nil), w.Times...)
	}
	return c
}

// Widen returns a float64 copy of the window.
func (w *WindowOf[F]) Widen() *Window {
	c := &Window{Dims: w.Dims, Slices: make([]*Field3D, len(w.Slices))}
	for i, s := range w.Slices {
		c.Slices[i] = s.Widen()
	}
	if w.Times != nil {
		c.Times = append([]float64(nil), w.Times...)
	}
	return c
}

// Narrow returns a float32 copy of the window, rounding each sample.
func (w *WindowOf[F]) Narrow() *Window32 {
	c := &Window32{Dims: w.Dims, Slices: make([]*Field3D32, len(w.Slices))}
	for i, s := range w.Slices {
		c.Slices[i] = s.Narrow()
	}
	if w.Times != nil {
		c.Times = append([]float64(nil), w.Times...)
	}
	return c
}

// Range returns the global max-min across all slices (the normalization used
// for window-wide error metrics).
func (w *WindowOf[F]) Range() F {
	if w.Len() == 0 {
		return 0
	}
	min, max := w.Slices[0].MinMax()
	for _, s := range w.Slices[1:] {
		lo, hi := s.MinMax()
		if lo < min {
			min = lo
		}
		if hi > max {
			max = hi
		}
	}
	return max - min
}

// Subsample returns a new window containing every stride-th slice starting
// from slice 0 — the paper's temporal-resolution reduction ("res=1/2" is
// stride 2, "res=1/4" is stride 4). The returned window shares slice storage
// with w.
func (w *WindowOf[F]) Subsample(stride int) (*WindowOf[F], error) {
	if stride < 1 {
		return nil, fmt.Errorf("grid: subsample stride must be >= 1, got %d", stride)
	}
	out := NewWindowOf[F](w.Dims)
	for i := 0; i < len(w.Slices); i += stride {
		out.Slices = append(out.Slices, w.Slices[i])
		if w.Times != nil {
			out.Times = append(out.Times, w.Times[i])
		} else {
			out.Times = append(out.Times, float64(i))
		}
	}
	return out, nil
}

// Partition splits the window into consecutive chunks of at most size
// slices, in order — the paper's fixed-size temporal windows. The final
// chunk may be shorter. Chunks share slice storage with w.
func (w *WindowOf[F]) Partition(size int) ([]*WindowOf[F], error) {
	if size < 1 {
		return nil, fmt.Errorf("grid: partition size must be >= 1, got %d", size)
	}
	var out []*WindowOf[F]
	for start := 0; start < len(w.Slices); start += size {
		end := start + size
		if end > len(w.Slices) {
			end = len(w.Slices)
		}
		chunk := NewWindowOf[F](w.Dims)
		chunk.Slices = w.Slices[start:end]
		if w.Times != nil {
			chunk.Times = w.Times[start:end]
		}
		out = append(out, chunk)
	}
	return out, nil
}

// GatherSeries copies the time series at linear grid index p across all
// slices into dst (len(dst) must be >= w.Len()) and returns the filled
// prefix. Used by the temporal transform step.
func (w *WindowOf[F]) GatherSeries(p int, dst []F) []F {
	n := len(w.Slices)
	for t := 0; t < n; t++ {
		dst[t] = w.Slices[t].Data[p]
	}
	return dst[:n]
}

// ScatterSeries writes src back to grid index p across slices.
func (w *WindowOf[F]) ScatterSeries(p int, src []F) {
	for t := range src {
		w.Slices[t].Data[p] = src[t]
	}
}

package grid

import "fmt"

// Window is an ordered group of time slices of one variable, all on the same
// grid — the unit the paper's spatiotemporal compressor operates on
// (Section IV-A, Figure 1).
type Window struct {
	Dims   Dims
	Slices []*Field3D
	// Times holds the simulation time of each slice; optional (nil means
	// uniformly spaced unit steps). When present, len(Times) == len(Slices).
	Times []float64
}

// NewWindow creates an empty window for the given grid extents.
func NewWindow(d Dims) *Window {
	return &Window{Dims: d}
}

// Append adds a slice to the window at simulation time t. The slice's dims
// must match the window's.
func (w *Window) Append(f *Field3D, t float64) error {
	if f.Dims != w.Dims {
		return fmt.Errorf("grid: slice dims %v do not match window dims %v", f.Dims, w.Dims)
	}
	w.Slices = append(w.Slices, f)
	w.Times = append(w.Times, t)
	return nil
}

// Len returns the number of time slices currently in the window.
func (w *Window) Len() int { return len(w.Slices) }

// TotalSamples returns the number of scalar samples across all slices.
func (w *Window) TotalSamples() int { return w.Len() * w.Dims.Len() }

// Clone deep-copies the window.
func (w *Window) Clone() *Window {
	c := &Window{Dims: w.Dims, Slices: make([]*Field3D, len(w.Slices))}
	for i, s := range w.Slices {
		c.Slices[i] = s.Clone()
	}
	if w.Times != nil {
		c.Times = append([]float64(nil), w.Times...)
	}
	return c
}

// Range returns the global max-min across all slices (the normalization used
// for window-wide error metrics).
func (w *Window) Range() float64 {
	if w.Len() == 0 {
		return 0
	}
	min, max := w.Slices[0].MinMax()
	for _, s := range w.Slices[1:] {
		lo, hi := s.MinMax()
		if lo < min {
			min = lo
		}
		if hi > max {
			max = hi
		}
	}
	return max - min
}

// Subsample returns a new window containing every stride-th slice starting
// from slice 0 — the paper's temporal-resolution reduction ("res=1/2" is
// stride 2, "res=1/4" is stride 4). The returned window shares slice storage
// with w.
func (w *Window) Subsample(stride int) (*Window, error) {
	if stride < 1 {
		return nil, fmt.Errorf("grid: subsample stride must be >= 1, got %d", stride)
	}
	out := NewWindow(w.Dims)
	for i := 0; i < len(w.Slices); i += stride {
		out.Slices = append(out.Slices, w.Slices[i])
		if w.Times != nil {
			out.Times = append(out.Times, w.Times[i])
		} else {
			out.Times = append(out.Times, float64(i))
		}
	}
	return out, nil
}

// Partition splits the window into consecutive chunks of at most size
// slices, in order — the paper's fixed-size temporal windows. The final
// chunk may be shorter. Chunks share slice storage with w.
func (w *Window) Partition(size int) ([]*Window, error) {
	if size < 1 {
		return nil, fmt.Errorf("grid: partition size must be >= 1, got %d", size)
	}
	var out []*Window
	for start := 0; start < len(w.Slices); start += size {
		end := start + size
		if end > len(w.Slices) {
			end = len(w.Slices)
		}
		chunk := NewWindow(w.Dims)
		chunk.Slices = w.Slices[start:end]
		if w.Times != nil {
			chunk.Times = w.Times[start:end]
		}
		out = append(out, chunk)
	}
	return out, nil
}

// GatherSeries copies the time series at linear grid index p across all
// slices into dst (len(dst) must be >= w.Len()) and returns the filled
// prefix. Used by the temporal transform step.
func (w *Window) GatherSeries(p int, dst []float64) []float64 {
	n := len(w.Slices)
	for t := 0; t < n; t++ {
		dst[t] = w.Slices[t].Data[p]
	}
	return dst[:n]
}

// ScatterSeries writes src back to grid index p across slices.
func (w *Window) ScatterSeries(p int, src []float64) {
	for t := range src {
		w.Slices[t].Data[p] = src[t]
	}
}

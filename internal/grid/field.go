// Package grid provides the data containers used throughout stwave: scalar
// fields on 3D rectilinear grids, temporal windows of such fields, and
// helpers for temporal subsampling and raw-file (de)serialization.
//
// All fields store samples in X-fastest (C-contiguous with X innermost)
// order: index = (z*Ny + y)*Nx + x. This matches the raw-volume conventions
// of VAPOR and most simulation dumps.
//
// The containers are generic over the sample precision (num.Float):
// Field3D and Window are aliases for the float64 instantiation — the
// reference-oracle precision every pre-existing call site uses — while
// Field3D32 / Window32 name the single-precision fast path that halves
// memory traffic end-to-end.
package grid

import (
	"fmt"
	"math"

	"stwave/internal/num"
)

// Dims describes the extent of a 3D grid.
type Dims struct {
	Nx, Ny, Nz int
}

// Len returns the number of grid points.
func (d Dims) Len() int { return d.Nx * d.Ny * d.Nz }

// Valid reports whether all extents are positive.
func (d Dims) Valid() bool { return d.Nx > 0 && d.Ny > 0 && d.Nz > 0 }

// String renders the dims as "NxXNyXNz".
func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.Nx, d.Ny, d.Nz) }

// Field3DOf is a scalar field sampled on a 3D rectilinear grid, with
// samples stored at precision F.
type Field3DOf[F num.Float] struct {
	Dims Dims
	// Data holds Dims.Len() samples in X-fastest order.
	Data []F
}

// Field3D is the double-precision field every reference path operates on.
type Field3D = Field3DOf[float64]

// Field3D32 is the single-precision field of the float32 fast path.
type Field3D32 = Field3DOf[float32]

// NewField3DOf allocates a zeroed field with the given extents at
// precision F.
func NewField3DOf[F num.Float](nx, ny, nz int) *Field3DOf[F] {
	d := Dims{nx, ny, nz}
	if !d.Valid() {
		panic(fmt.Sprintf("grid: invalid dims %v", d))
	}
	return &Field3DOf[F]{Dims: d, Data: make([]F, d.Len())}
}

// NewField3D allocates a zeroed float64 field with the given extents.
func NewField3D(nx, ny, nz int) *Field3D {
	return NewField3DOf[float64](nx, ny, nz)
}

// NewField3D32 allocates a zeroed float32 field with the given extents.
func NewField3D32(nx, ny, nz int) *Field3D32 {
	return NewField3DOf[float32](nx, ny, nz)
}

// FromDataOf wraps an existing sample slice as a field. The slice is not
// copied; len(data) must equal nx*ny*nz.
func FromDataOf[F num.Float](nx, ny, nz int, data []F) (*Field3DOf[F], error) {
	d := Dims{nx, ny, nz}
	if !d.Valid() {
		return nil, fmt.Errorf("grid: invalid dims %v", d)
	}
	if len(data) != d.Len() {
		return nil, fmt.Errorf("grid: data length %d does not match dims %v (%d)", len(data), d, d.Len())
	}
	return &Field3DOf[F]{Dims: d, Data: data}, nil
}

// FromData wraps an existing float64 sample slice as a field.
func FromData(nx, ny, nz int, data []float64) (*Field3D, error) {
	return FromDataOf(nx, ny, nz, data)
}

// Widen returns a float64 copy of the field (the identity copy when F is
// already float64).
func (f *Field3DOf[F]) Widen() *Field3D {
	out := &Field3D{Dims: f.Dims, Data: make([]float64, len(f.Data))}
	num.Convert(out.Data, f.Data)
	return out
}

// Narrow returns a float32 copy of the field, rounding each sample.
func (f *Field3DOf[F]) Narrow() *Field3D32 {
	out := &Field3D32{Dims: f.Dims, Data: make([]float32, len(f.Data))}
	num.Convert(out.Data, f.Data)
	return out
}

// Index returns the linear index of point (x, y, z).
func (f *Field3DOf[F]) Index(x, y, z int) int {
	return (z*f.Dims.Ny+y)*f.Dims.Nx + x
}

// At returns the sample at (x, y, z).
func (f *Field3DOf[F]) At(x, y, z int) F { return f.Data[f.Index(x, y, z)] }

// Set stores v at (x, y, z).
func (f *Field3DOf[F]) Set(x, y, z int, v F) { f.Data[f.Index(x, y, z)] = v }

// Clone returns a deep copy of the field.
func (f *Field3DOf[F]) Clone() *Field3DOf[F] {
	c := &Field3DOf[F]{Dims: f.Dims, Data: make([]F, len(f.Data))}
	copy(c.Data, f.Data)
	return c
}

// MinMax returns the smallest and largest sample values. NaNs are ignored;
// an all-NaN or empty field returns (+Inf, -Inf).
func (f *Field3DOf[F]) MinMax() (min, max F) {
	min, max = F(math.Inf(1)), F(math.Inf(-1))
	for _, v := range f.Data {
		if math.IsNaN(float64(v)) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Range returns max-min of the field's samples, used to normalize error
// metrics ("errors are normalized by the range of the data").
func (f *Field3DOf[F]) Range() F {
	min, max := f.MinMax()
	return max - min
}

// Fill sets every sample to v.
func (f *Field3DOf[F]) Fill(v F) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// AddScaled accumulates a*g into f point-wise. Dims must match.
func (f *Field3DOf[F]) AddScaled(a F, g *Field3DOf[F]) error {
	if f.Dims != g.Dims {
		return fmt.Errorf("grid: dims mismatch %v vs %v", f.Dims, g.Dims)
	}
	for i := range f.Data {
		f.Data[i] += a * g.Data[i]
	}
	return nil
}

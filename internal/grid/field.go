// Package grid provides the data containers used throughout stwave: scalar
// fields on 3D rectilinear grids, temporal windows of such fields, and
// helpers for temporal subsampling and raw-file (de)serialization.
//
// All fields store samples in X-fastest (C-contiguous with X innermost)
// order: index = (z*Ny + y)*Nx + x. This matches the raw-volume conventions
// of VAPOR and most simulation dumps.
package grid

import (
	"fmt"
	"math"
)

// Dims describes the extent of a 3D grid.
type Dims struct {
	Nx, Ny, Nz int
}

// Len returns the number of grid points.
func (d Dims) Len() int { return d.Nx * d.Ny * d.Nz }

// Valid reports whether all extents are positive.
func (d Dims) Valid() bool { return d.Nx > 0 && d.Ny > 0 && d.Nz > 0 }

// String renders the dims as "NxXNyXNz".
func (d Dims) String() string { return fmt.Sprintf("%dx%dx%d", d.Nx, d.Ny, d.Nz) }

// Field3D is a scalar field sampled on a 3D rectilinear grid.
type Field3D struct {
	Dims Dims
	// Data holds Dims.Len() samples in X-fastest order.
	Data []float64
}

// NewField3D allocates a zeroed field with the given extents.
func NewField3D(nx, ny, nz int) *Field3D {
	d := Dims{nx, ny, nz}
	if !d.Valid() {
		panic(fmt.Sprintf("grid: invalid dims %v", d))
	}
	return &Field3D{Dims: d, Data: make([]float64, d.Len())}
}

// FromData wraps an existing sample slice as a field. The slice is not
// copied; len(data) must equal nx*ny*nz.
func FromData(nx, ny, nz int, data []float64) (*Field3D, error) {
	d := Dims{nx, ny, nz}
	if !d.Valid() {
		return nil, fmt.Errorf("grid: invalid dims %v", d)
	}
	if len(data) != d.Len() {
		return nil, fmt.Errorf("grid: data length %d does not match dims %v (%d)", len(data), d, d.Len())
	}
	return &Field3D{Dims: d, Data: data}, nil
}

// Index returns the linear index of point (x, y, z).
func (f *Field3D) Index(x, y, z int) int {
	return (z*f.Dims.Ny+y)*f.Dims.Nx + x
}

// At returns the sample at (x, y, z).
func (f *Field3D) At(x, y, z int) float64 { return f.Data[f.Index(x, y, z)] }

// Set stores v at (x, y, z).
func (f *Field3D) Set(x, y, z int, v float64) { f.Data[f.Index(x, y, z)] = v }

// Clone returns a deep copy of the field.
func (f *Field3D) Clone() *Field3D {
	c := &Field3D{Dims: f.Dims, Data: make([]float64, len(f.Data))}
	copy(c.Data, f.Data)
	return c
}

// MinMax returns the smallest and largest sample values. NaNs are ignored;
// an all-NaN or empty field returns (+Inf, -Inf).
func (f *Field3D) MinMax() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range f.Data {
		if math.IsNaN(v) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Range returns max-min of the field's samples, used to normalize error
// metrics ("errors are normalized by the range of the data").
func (f *Field3D) Range() float64 {
	min, max := f.MinMax()
	return max - min
}

// Fill sets every sample to v.
func (f *Field3D) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// AddScaled accumulates a*g into f point-wise. Dims must match.
func (f *Field3D) AddScaled(a float64, g *Field3D) error {
	if f.Dims != g.Dims {
		return fmt.Errorf("grid: dims mismatch %v vs %v", f.Dims, g.Dims)
	}
	for i := range f.Data {
		f.Data[i] += a * g.Data[i]
	}
	return nil
}

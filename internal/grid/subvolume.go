package grid

import "fmt"

// SubVolume copies the box [x0, x0+nx) x [y0, y0+ny) x [z0, z0+nz) into a
// new field. Region-of-interest extraction is how the paper's Tornado
// analysis works: "the tornado domain analyzed in this paper is
// significantly smaller than the full model domain" — scientists crop to
// the region of interest before (or after) compression.
func (f *Field3DOf[F]) SubVolume(x0, y0, z0, nx, ny, nz int) (*Field3DOf[F], error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("grid: subvolume extents must be positive, got %dx%dx%d", nx, ny, nz)
	}
	if x0 < 0 || y0 < 0 || z0 < 0 ||
		x0+nx > f.Dims.Nx || y0+ny > f.Dims.Ny || z0+nz > f.Dims.Nz {
		return nil, fmt.Errorf("grid: subvolume [%d:%d, %d:%d, %d:%d] outside %v",
			x0, x0+nx, y0, y0+ny, z0, z0+nz, f.Dims)
	}
	out := NewField3DOf[F](nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			srcBase := ((z0+z)*f.Dims.Ny+(y0+y))*f.Dims.Nx + x0
			dstBase := (z*ny + y) * nx
			copy(out.Data[dstBase:dstBase+nx], f.Data[srcBase:srcBase+nx])
		}
	}
	return out, nil
}

// SubWindow applies SubVolume to every slice, preserving times.
func (w *WindowOf[F]) SubWindow(x0, y0, z0, nx, ny, nz int) (*WindowOf[F], error) {
	out := NewWindowOf[F](Dims{Nx: nx, Ny: ny, Nz: nz})
	for i, s := range w.Slices {
		sub, err := s.SubVolume(x0, y0, z0, nx, ny, nz)
		if err != nil {
			return nil, fmt.Errorf("grid: slice %d: %w", i, err)
		}
		t := float64(i)
		if w.Times != nil {
			t = w.Times[i]
		}
		if err := out.Append(sub, t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SliceXY extracts the 2D plane z = k as a Ny x Nx row-major sample grid
// (for rendering and quick inspection).
func (f *Field3DOf[F]) SliceXY(k int) ([][]F, error) {
	if k < 0 || k >= f.Dims.Nz {
		return nil, fmt.Errorf("grid: z index %d outside [0,%d)", k, f.Dims.Nz)
	}
	out := make([][]F, f.Dims.Ny)
	for y := 0; y < f.Dims.Ny; y++ {
		row := make([]F, f.Dims.Nx)
		base := (k*f.Dims.Ny + y) * f.Dims.Nx
		copy(row, f.Data[base:base+f.Dims.Nx])
		out[y] = row
	}
	return out, nil
}

package flow_test

import (
	"fmt"

	"stwave/internal/flow"
	"stwave/internal/grid"
)

// Example demonstrates pathline advection through a time-varying field and
// the paper's first-deviation error metric.
func Example() {
	// Two time slices of a uniform flow accelerating from 1 to 3 m/s.
	mk := func(u0, t float64) flow.VectorSlice {
		u := grid.NewField3D(8, 8, 8)
		v := grid.NewField3D(8, 8, 8)
		w := grid.NewField3D(8, 8, 8)
		u.Fill(u0)
		return flow.VectorSlice{U: u, V: v, W: w, Time: t}
	}
	series, err := flow.NewVectorSeries(
		flow.Domain{Spacing: flow.Vec3{X: 10, Y: 10, Z: 10}},
		[]flow.VectorSlice{mk(1, 0), mk(3, 10)})
	if err != nil {
		panic(err)
	}

	seeds := flow.Rake(flow.Vec3{X: 0, Y: 35, Z: 35}, flow.Vec3{X: 0, Y: 40, Z: 35}, 3)
	paths, err := flow.AdvectAll(series, seeds, 0, flow.AdvectOptions{Dt: 0.1, Steps: 100})
	if err != nil {
		panic(err)
	}
	// Mean velocity over [0,10] is 2 m/s -> particles travel 20 m in x.
	fmt.Printf("seeds: %d, duration: %.0f s, end x: %.1f\n",
		len(paths), paths[0].Duration(), paths[0].End().X)

	// The deviation metric scores a pathline against a reference.
	err2, _ := flow.DeviationError(paths[0], paths[0], 1.0)
	fmt.Printf("self deviation: %.0f%%\n", err2)
	// Output:
	// seeds: 3, duration: 10 s, end x: 20.0
	// self deviation: 0%
}

package flow

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"stwave/internal/grid"
)

// uniformSeries builds a series with constant velocity (u0, v0, w0) on an
// n³ grid spanning [0, L]³ over the given time span.
func uniformSeries(t *testing.T, n int, L float64, u0, v0, w0 float64, times []float64) *VectorSeries {
	t.Helper()
	sp := L / float64(n-1)
	var slices []VectorSlice
	for _, tt := range times {
		u := grid.NewField3D(n, n, n)
		v := grid.NewField3D(n, n, n)
		w := grid.NewField3D(n, n, n)
		u.Fill(u0)
		v.Fill(v0)
		w.Fill(w0)
		slices = append(slices, VectorSlice{U: u, V: v, W: w, Time: tt})
	}
	vs, err := NewVectorSeries(Domain{Spacing: Vec3{sp, sp, sp}}, slices)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

// rotationSeries builds a rigid-rotation field u = -Ω(y-c), v = Ω(x-c)
// about the domain center.
func rotationSeries(t *testing.T, n int, L, omega float64, times []float64) *VectorSeries {
	t.Helper()
	sp := L / float64(n-1)
	c := L / 2
	var slices []VectorSlice
	for _, tt := range times {
		u := grid.NewField3D(n, n, n)
		v := grid.NewField3D(n, n, n)
		w := grid.NewField3D(n, n, n)
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				Y := float64(y) * sp
				for x := 0; x < n; x++ {
					X := float64(x) * sp
					u.Set(x, y, z, -omega*(Y-c))
					v.Set(x, y, z, omega*(X-c))
				}
			}
		}
		slices = append(slices, VectorSlice{U: u, V: v, W: w, Time: tt})
	}
	vs, err := NewVectorSeries(Domain{Spacing: Vec3{sp, sp, sp}}, slices)
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

func TestNewVectorSeriesValidation(t *testing.T) {
	if _, err := NewVectorSeries(Domain{Spacing: Vec3{1, 1, 1}}, nil); err == nil {
		t.Error("expected error for empty series")
	}
	u := grid.NewField3D(4, 4, 4)
	sl := []VectorSlice{{U: u, V: u, W: u, Time: 0}}
	if _, err := NewVectorSeries(Domain{Spacing: Vec3{0, 1, 1}}, sl); err == nil {
		t.Error("expected error for zero spacing")
	}
	bad := []VectorSlice{
		{U: u, V: u, W: u, Time: 0},
		{U: grid.NewField3D(5, 4, 4), V: u, W: u, Time: 1},
	}
	if _, err := NewVectorSeries(Domain{Spacing: Vec3{1, 1, 1}}, bad); err == nil {
		t.Error("expected error for dims mismatch")
	}
	nonMono := []VectorSlice{
		{U: u, V: u, W: u, Time: 1},
		{U: u, V: u, W: u, Time: 1},
	}
	if _, err := NewVectorSeries(Domain{Spacing: Vec3{1, 1, 1}}, nonMono); err == nil {
		t.Error("expected error for non-increasing times")
	}
}

func TestTrilinearExactOnLinearField(t *testing.T) {
	// Trilinear interpolation reproduces any trilinear function exactly.
	f := grid.NewField3D(5, 5, 5)
	fn := func(x, y, z float64) float64 { return 2 + 3*x - y + 0.5*z + 0.25*x*y*z }
	for z := 0; z < 5; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 5; x++ {
				f.Set(x, y, z, fn(float64(x), float64(y), float64(z)))
			}
		}
	}
	pts := [][3]float64{{1.5, 2.25, 3.75}, {0, 0, 0}, {4, 4, 4}, {0.1, 3.9, 2.5}}
	for _, p := range pts {
		got := trilinear(f, p[0], p[1], p[2])
		want := fn(p[0], p[1], p[2])
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("trilinear(%v) = %g, want %g", p, got, want)
		}
	}
}

func TestTrilinearClampsOutside(t *testing.T) {
	f := grid.NewField3D(3, 3, 3)
	f.Fill(7)
	if got := trilinear(f, -5, 10, 1); got != 7 {
		t.Errorf("clamped sample = %g, want 7", got)
	}
}

func TestVelocityTimeInterpolation(t *testing.T) {
	// Two slices with different constant velocities: half-way in time the
	// velocity is the average.
	n := 4
	mk := func(val float64) VectorSlice {
		u := grid.NewField3D(n, n, n)
		v := grid.NewField3D(n, n, n)
		w := grid.NewField3D(n, n, n)
		u.Fill(val)
		return VectorSlice{U: u, V: v, W: w}
	}
	a := mk(1)
	a.Time = 0
	b := mk(3)
	b.Time = 2
	vs, err := NewVectorSeries(Domain{Spacing: Vec3{1, 1, 1}}, []VectorSlice{a, b})
	if err != nil {
		t.Fatal(err)
	}
	p := Vec3{1.5, 1.5, 1.5}
	if got := vs.VelocityAt(p, 1).X; math.Abs(got-2) > 1e-12 {
		t.Errorf("interpolated u = %g, want 2", got)
	}
	// Clamped outside the time range.
	if got := vs.VelocityAt(p, -5).X; got != 1 {
		t.Errorf("before-range u = %g, want 1", got)
	}
	if got := vs.VelocityAt(p, 99).X; got != 3 {
		t.Errorf("after-range u = %g, want 3", got)
	}
}

func TestAdvectUniformFlow(t *testing.T) {
	vs := uniformSeries(t, 8, 100, 2, -1, 0.5, []float64{0, 10})
	pl, err := Advect(vs, Vec3{10, 50, 20}, 0, AdvectOptions{Dt: 0.1, Steps: 50})
	if err != nil {
		t.Fatal(err)
	}
	end := pl.End()
	want := Vec3{10 + 2*5, 50 - 1*5, 20 + 0.5*5}
	if end.Dist(want) > 1e-9 {
		t.Errorf("end = %+v, want %+v", end, want)
	}
	if pl.Duration() != 5 {
		t.Errorf("duration = %g, want 5", pl.Duration())
	}
}

// RK4 through a steady rigid rotation must trace a circle with fourth-order
// accuracy: after a full revolution the particle returns to its start.
func TestAdvectRigidRotationClosesCircle(t *testing.T) {
	omega := 0.5
	vs := rotationSeries(t, 33, 100, omega, []float64{0, 1000})
	seed := Vec3{70, 50, 50} // radius 20 around center (50,50,50)
	period := 2 * math.Pi / omega
	steps := 2000
	dt := period / float64(steps)
	pl, err := Advect(vs, seed, 0, AdvectOptions{Dt: dt, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if d := pl.End().Dist(seed); d > 0.05 {
		t.Errorf("after one revolution particle is %.4g away from start", d)
	}
	// Radius must be conserved along the path.
	c := Vec3{50, 50, 50}
	r0 := seed.Dist(c)
	for i, p := range pl.Points {
		if math.Abs(p.Dist(c)-r0) > 0.3 {
			t.Fatalf("radius drifted to %g at step %d", p.Dist(c), i)
		}
	}
}

func TestAdvectValidation(t *testing.T) {
	vs := uniformSeries(t, 4, 10, 1, 0, 0, []float64{0, 1})
	if _, err := Advect(vs, Vec3{}, 0, AdvectOptions{Dt: 0, Steps: 5}); err == nil {
		t.Error("expected error for zero Dt")
	}
	if _, err := Advect(vs, Vec3{}, 0, AdvectOptions{Dt: 0.1, Steps: 0}); err == nil {
		t.Error("expected error for zero steps")
	}
}

func TestStopAtBoundary(t *testing.T) {
	vs := uniformSeries(t, 8, 10, 5, 0, 0, []float64{0, 100})
	pl, err := Advect(vs, Vec3{9, 5, 5}, 0, AdvectOptions{Dt: 0.1, Steps: 100, StopAtBoundary: true})
	if err != nil {
		t.Fatal(err)
	}
	end := pl.End()
	if end.X > 10 {
		t.Errorf("particle escaped to x=%g with StopAtBoundary", end.X)
	}
	if len(pl.Points) != 101 {
		t.Errorf("stopped pathline has %d points, want 101 (padded)", len(pl.Points))
	}
}

func TestRake(t *testing.T) {
	seeds := Rake(Vec3{0, 0, 0}, Vec3{10, 0, 0}, 48)
	if len(seeds) != 48 {
		t.Fatalf("rake count = %d", len(seeds))
	}
	if seeds[0].X != 0 || seeds[47].X != 10 {
		t.Errorf("rake endpoints %g..%g", seeds[0].X, seeds[47].X)
	}
	gap := seeds[1].X - seeds[0].X
	for i := 1; i < len(seeds); i++ {
		if math.Abs(seeds[i].X-seeds[i-1].X-gap) > 1e-12 {
			t.Fatal("rake not evenly spaced")
		}
	}
	if got := Rake(Vec3{1, 2, 3}, Vec3{9, 9, 9}, 1); len(got) != 1 || got[0] != (Vec3{1, 2, 3}) {
		t.Error("single-seed rake should return the start point")
	}
	if Rake(Vec3{}, Vec3{}, 0) != nil {
		t.Error("zero-count rake should be nil")
	}
}

func TestDeviationErrorMetric(t *testing.T) {
	mk := func(positions ...float64) *Pathline {
		pl := &Pathline{Dt: 1}
		for _, x := range positions {
			pl.Points = append(pl.Points, Vec3{X: x})
		}
		return pl
	}
	base := mk(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0) // 10 seconds
	// Deviates beyond D=1 at t=6 (index 6): error = (1 - 6/10)*100 = 40%.
	test := mk(0, 0, 0, 0, 0, 0, 2, 2, 0, 0, 0)
	e, err := DeviationError(base, test, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-40) > 1e-12 {
		t.Errorf("deviation error = %g, want 40 (the paper's worked example)", e)
	}
	// Never deviates: 0%.
	if e, _ := DeviationError(base, base, 1); e != 0 {
		t.Errorf("self-deviation = %g", e)
	}
	// Deviates immediately: 100%.
	bad := mk(5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5)
	if e, _ := DeviationError(base, bad, 1); e != 100 {
		t.Errorf("immediate deviation = %g, want 100", e)
	}
	// Mismatched lengths rejected.
	if _, err := DeviationError(base, mk(0, 0), 1); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := DeviationError(base, test, -1); err == nil {
		t.Error("expected error for negative threshold")
	}
}

func TestMeanDeviationError(t *testing.T) {
	mk := func(positions ...float64) *Pathline {
		pl := &Pathline{Dt: 1}
		for _, x := range positions {
			pl.Points = append(pl.Points, Vec3{X: x})
		}
		return pl
	}
	base := []*Pathline{
		mk(0, 0, 0, 0, 0),
		mk(0, 0, 0, 0, 0),
	}
	tests := []*Pathline{
		mk(0, 0, 0, 0, 0), // 0%
		mk(9, 9, 9, 9, 9), // 100%
	}
	e, err := MeanDeviationError(base, tests, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e != 50 {
		t.Errorf("mean deviation = %g, want 50", e)
	}
	if _, err := MeanDeviationError(base, tests[:1], 1); err == nil {
		t.Error("expected count-mismatch error")
	}
	if e, err := MeanDeviationError(nil, nil, 1); err != nil || e != 0 {
		t.Errorf("empty mean = %g, %v", e, err)
	}
}

// A smaller threshold D must never produce a smaller error (monotonicity the
// paper's Table II exhibits: errors shrink from D=10 to D=500).
func TestDeviationMonotoneInThreshold(t *testing.T) {
	vs := rotationSeries(t, 17, 100, 0.3, []float64{0, 100})
	// Perturbed copy of the field to create a deviating pathline.
	vs2 := rotationSeries(t, 17, 100, 0.31, []float64{0, 100})
	opt := AdvectOptions{Dt: 0.05, Steps: 400}
	base, err := Advect(vs, Vec3{70, 50, 50}, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	test, err := Advect(vs2, Vec3{70, 50, 50}, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, d := range []float64{0.5, 1, 2, 5, 10} {
		e, err := DeviationError(base, test, d)
		if err != nil {
			t.Fatal(err)
		}
		if e > prev {
			t.Errorf("error %g at D=%g exceeds error %g at smaller D", e, d, prev)
		}
		prev = e
	}
}

func TestStreamlineMatchesPathlineInSteadyFlow(t *testing.T) {
	// In a steady field, streamlines and pathlines coincide.
	vs := rotationSeries(t, 17, 100, 0.3, []float64{0, 1000})
	opt := AdvectOptions{Dt: 0.05, Steps: 200}
	seed := Vec3{65, 50, 50}
	path, err := Advect(vs, seed, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Streamline(vs, seed, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range path.Points {
		if d := path.Points[i].Dist(stream.Points[i]); d > 1e-9 {
			t.Fatalf("steady flow: streamline deviates from pathline by %g at step %d", d, i)
		}
	}
}

func TestStreamlineDiffersInUnsteadyFlow(t *testing.T) {
	// Velocity that reverses over time: the pathline feels the reversal,
	// the streamline (frozen at t=0) does not.
	n := 9
	mkSlice := func(u0 float64, tt float64) VectorSlice {
		u := grid.NewField3D(n, n, n)
		v := grid.NewField3D(n, n, n)
		w := grid.NewField3D(n, n, n)
		u.Fill(u0)
		return VectorSlice{U: u, V: v, W: w, Time: tt}
	}
	vs, err := NewVectorSeries(Domain{Spacing: Vec3{1, 1, 1}},
		[]VectorSlice{mkSlice(1, 0), mkSlice(-1, 10)})
	if err != nil {
		t.Fatal(err)
	}
	opt := AdvectOptions{Dt: 0.1, Steps: 100} // 10 time units
	seed := Vec3{4, 4, 4}
	path, err := Advect(vs, seed, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Streamline(vs, seed, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Streamline moves +x at speed 1 for 10 units; pathline decelerates and
	// turns around.
	if math.Abs(stream.End().X-14) > 1e-9 {
		t.Errorf("streamline end %g, want 14", stream.End().X)
	}
	if path.End().X >= stream.End().X-1 {
		t.Errorf("pathline (%g) did not feel the reversal vs streamline (%g)", path.End().X, stream.End().X)
	}
}

func TestStreamlineValidation(t *testing.T) {
	vs := uniformSeries(t, 4, 10, 1, 0, 0, []float64{0, 1})
	if _, err := Streamline(vs, Vec3{}, 0, AdvectOptions{Dt: 0, Steps: 3}); err == nil {
		t.Error("expected error for zero Dt")
	}
	if _, err := Streamline(vs, Vec3{}, 0, AdvectOptions{Dt: 0.1, Steps: 0}); err == nil {
		t.Error("expected error for zero steps")
	}
}

func TestWritePathlinesVTK(t *testing.T) {
	vs := uniformSeries(t, 4, 10, 1, 0, 0, []float64{0, 10})
	opt := AdvectOptions{Dt: 1, Steps: 3}
	pls, err := AdvectAll(vs, []Vec3{{1, 1, 1}, {2, 2, 2}}, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePathlinesVTK(&buf, pls, "test pathlines"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET POLYDATA",
		"POINTS 8 float",
		"LINES 2 10",
		"POINT_DATA 8",
		"SCALARS t float",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VTK output missing %q", want)
		}
	}
	// First point of first line is the seed.
	if !strings.Contains(out, "1 1 1\n") {
		t.Error("seed point missing from POINTS")
	}
	// Connectivity of the second polyline references global indices 4-7.
	if !strings.Contains(out, "4 4 5 6 7") {
		t.Error("second polyline connectivity wrong")
	}
}

func TestBackwardAdvectionInvertsForward(t *testing.T) {
	// In a steady flow, advecting forward then backward from the endpoint
	// returns to the seed (RK4 is time-reversible to high accuracy).
	vs := rotationSeries(t, 33, 100, 0.4, []float64{0, 1000})
	seed := Vec3{68, 50, 50}
	fwd := AdvectOptions{Dt: 0.05, Steps: 200}
	pl, err := Advect(vs, seed, 0, fwd)
	if err != nil {
		t.Fatal(err)
	}
	endTime := float64(fwd.Steps) * fwd.Dt
	back, err := Advect(vs, pl.End(), endTime, AdvectOptions{Dt: 0.05, Steps: 200, Backward: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := back.End().Dist(seed); d > 1e-4 {
		t.Errorf("backward advection returned %.3g away from the seed", d)
	}
}

func TestBackwardUniformFlow(t *testing.T) {
	vs := uniformSeries(t, 8, 100, 2, 0, 0, []float64{0, 100})
	pl, err := Advect(vs, Vec3{50, 50, 50}, 50, AdvectOptions{Dt: 0.5, Steps: 20, Backward: true})
	if err != nil {
		t.Fatal(err)
	}
	// 10 s backward through u=2 moves -20 in x.
	if math.Abs(pl.End().X-30) > 1e-9 {
		t.Errorf("backward end x = %g, want 30", pl.End().X)
	}
}

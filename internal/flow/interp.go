// Package flow implements the particle-advection analysis of the paper's
// Section VI-A: Runge-Kutta 4 pathline integration through a time series of
// gridded velocity slices, with trilinear interpolation in space and linear
// interpolation between time slices, rake seeding, and the paper's
// first-deviation error metric.
package flow

import (
	"fmt"
	"math"

	"stwave/internal/grid"
)

// Vec3 is a position or velocity in physical coordinates (meters, m/s).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Scale returns a * s.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Dist returns the Euclidean distance between two points.
func (a Vec3) Dist(b Vec3) float64 {
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Domain maps physical coordinates onto a rectilinear grid: point p sits at
// fractional grid index (p - Origin) / Spacing.
type Domain struct {
	Origin  Vec3
	Spacing Vec3
}

// VectorSlice is one time slice of a vector field.
type VectorSlice struct {
	U, V, W *grid.Field3D
	Time    float64
}

// VectorSeries is a time-ordered sequence of vector slices on a common grid
// and domain — the data a pathline integration consumes.
type VectorSeries struct {
	Domain Domain
	Slices []VectorSlice
}

// NewVectorSeries validates and wraps the slices (must be non-empty, share
// dims, and have strictly increasing times).
func NewVectorSeries(dom Domain, slices []VectorSlice) (*VectorSeries, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("flow: empty vector series")
	}
	if dom.Spacing.X <= 0 || dom.Spacing.Y <= 0 || dom.Spacing.Z <= 0 {
		return nil, fmt.Errorf("flow: spacing must be positive, got %+v", dom.Spacing)
	}
	d := slices[0].U.Dims
	for i, s := range slices {
		if s.U.Dims != d || s.V.Dims != d || s.W.Dims != d {
			return nil, fmt.Errorf("flow: slice %d dims mismatch", i)
		}
		if i > 0 && s.Time <= slices[i-1].Time {
			return nil, fmt.Errorf("flow: non-increasing times at slice %d", i)
		}
	}
	return &VectorSeries{Domain: dom, Slices: slices}, nil
}

// Dims returns the grid extents.
func (vs *VectorSeries) Dims() grid.Dims { return vs.Slices[0].U.Dims }

// TimeBounds returns the first and last slice times.
func (vs *VectorSeries) TimeBounds() (t0, t1 float64) {
	return vs.Slices[0].Time, vs.Slices[len(vs.Slices)-1].Time
}

// trilinear interpolates field f at fractional grid coordinates (gx, gy,
// gz), clamping to the grid boundary.
func trilinear(f *grid.Field3D, gx, gy, gz float64) float64 {
	d := f.Dims
	clampf := func(v float64, n int) (int, float64) {
		if v < 0 {
			v = 0
		}
		if v > float64(n-1) {
			v = float64(n - 1)
		}
		i := int(v)
		if i > n-2 {
			i = n - 2
		}
		if i < 0 {
			i = 0
		}
		return i, v - float64(i)
	}
	if d.Nx == 1 || d.Ny == 1 || d.Nz == 1 {
		// Degenerate axes: nearest sample.
		xi := int(math.Round(math.Max(0, math.Min(gx, float64(d.Nx-1)))))
		yi := int(math.Round(math.Max(0, math.Min(gy, float64(d.Ny-1)))))
		zi := int(math.Round(math.Max(0, math.Min(gz, float64(d.Nz-1)))))
		return f.At(xi, yi, zi)
	}
	x0, fx := clampf(gx, d.Nx)
	y0, fy := clampf(gy, d.Ny)
	z0, fz := clampf(gz, d.Nz)
	c000 := f.At(x0, y0, z0)
	c100 := f.At(x0+1, y0, z0)
	c010 := f.At(x0, y0+1, z0)
	c110 := f.At(x0+1, y0+1, z0)
	c001 := f.At(x0, y0, z0+1)
	c101 := f.At(x0+1, y0, z0+1)
	c011 := f.At(x0, y0+1, z0+1)
	c111 := f.At(x0+1, y0+1, z0+1)
	c00 := c000 + fx*(c100-c000)
	c10 := c010 + fx*(c110-c010)
	c01 := c001 + fx*(c101-c001)
	c11 := c011 + fx*(c111-c011)
	c0 := c00 + fy*(c10-c00)
	c1 := c01 + fy*(c11-c01)
	return c0 + fz*(c1-c0)
}

// VelocityAt evaluates the velocity at physical point p and time t:
// trilinear in space, linear between the two bracketing time slices
// ("velocity values between time slices were calculated using linear
// interpolation", Section VI-A). Outside the time range the nearest slice
// is used; outside the spatial domain values clamp to the boundary.
func (vs *VectorSeries) VelocityAt(p Vec3, t float64) Vec3 {
	gx := (p.X - vs.Domain.Origin.X) / vs.Domain.Spacing.X
	gy := (p.Y - vs.Domain.Origin.Y) / vs.Domain.Spacing.Y
	gz := (p.Z - vs.Domain.Origin.Z) / vs.Domain.Spacing.Z

	// Locate bracketing slices by binary search.
	n := len(vs.Slices)
	lo, hi := 0, n-1
	if t <= vs.Slices[0].Time {
		return vs.sampleSlice(0, gx, gy, gz)
	}
	if t >= vs.Slices[n-1].Time {
		return vs.sampleSlice(n-1, gx, gy, gz)
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if vs.Slices[mid].Time <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	a := vs.sampleSlice(lo, gx, gy, gz)
	b := vs.sampleSlice(hi, gx, gy, gz)
	frac := (t - vs.Slices[lo].Time) / (vs.Slices[hi].Time - vs.Slices[lo].Time)
	return a.Add(b.Sub(a).Scale(frac))
}

func (vs *VectorSeries) sampleSlice(i int, gx, gy, gz float64) Vec3 {
	s := vs.Slices[i]
	return Vec3{
		X: trilinear(s.U, gx, gy, gz),
		Y: trilinear(s.V, gx, gy, gz),
		Z: trilinear(s.W, gx, gy, gz),
	}
}

// InDomain reports whether p lies within the physical extent of the grid.
func (vs *VectorSeries) InDomain(p Vec3) bool {
	d := vs.Dims()
	o := vs.Domain.Origin
	sp := vs.Domain.Spacing
	return p.X >= o.X && p.X <= o.X+sp.X*float64(d.Nx-1) &&
		p.Y >= o.Y && p.Y <= o.Y+sp.Y*float64(d.Ny-1) &&
		p.Z >= o.Z && p.Z <= o.Z+sp.Z*float64(d.Nz-1)
}

package flow

import (
	"fmt"

	"stwave/internal/fbits"
)

// DeviationError implements the paper's Section VI-A pathline metric. Let T
// be the total advection time and t0 the first time the test pathline
// deviates more than distance D from its baseline; the error is
//
//	(1.0 - t0/T) * 100   [percent]
//
// A pathline that never strays beyond D scores 0%; one that deviates
// immediately scores 100%. ("We designed an error metric that would value
// the case where a pathline stays close to its baseline throughout its
// entire trajectory, over one that deviates early but later returns.")
func DeviationError(baseline, test *Pathline, d float64) (float64, error) {
	if len(baseline.Points) != len(test.Points) {
		return 0, fmt.Errorf("flow: pathlines have %d vs %d points; advect with identical options", len(baseline.Points), len(test.Points))
	}
	if !fbits.Eq(baseline.Dt, test.Dt) {
		return 0, fmt.Errorf("flow: pathlines have different Dt (%g vs %g)", baseline.Dt, test.Dt)
	}
	if d < 0 {
		return 0, fmt.Errorf("flow: negative distance threshold %g", d)
	}
	n := len(baseline.Points)
	if n < 2 {
		return 0, nil
	}
	total := baseline.Duration()
	for i := 0; i < n; i++ {
		if baseline.Points[i].Dist(test.Points[i]) > d {
			t0 := float64(i) * baseline.Dt
			return (1 - t0/total) * 100, nil
		}
	}
	return 0, nil
}

// MeanDeviationError averages the deviation metric over paired pathlines —
// the per-cell numbers of the paper's Table II ("each evaluation percentage
// is averaged from all 144 seed particles").
func MeanDeviationError(baselines, tests []*Pathline, d float64) (float64, error) {
	if len(baselines) != len(tests) {
		return 0, fmt.Errorf("flow: %d baselines vs %d tests", len(baselines), len(tests))
	}
	if len(baselines) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range baselines {
		e, err := DeviationError(baselines[i], tests[i], d)
		if err != nil {
			return 0, fmt.Errorf("flow: pathline %d: %w", i, err)
		}
		sum += e
	}
	return sum / float64(len(baselines)), nil
}

package flow

import (
	"fmt"
)

// Pathline records a particle trajectory at uniform time steps.
type Pathline struct {
	// Seed is the starting position.
	Seed Vec3
	// Dt is the integration step.
	Dt float64
	// T0 is the start time.
	T0 float64
	// Points holds the positions, Points[0] == Seed.
	Points []Vec3
}

// Duration returns the total advected time.
func (p *Pathline) Duration() float64 {
	if len(p.Points) < 2 {
		return 0
	}
	return float64(len(p.Points)-1) * p.Dt
}

// End returns the final position.
func (p *Pathline) End() Vec3 { return p.Points[len(p.Points)-1] }

// AdvectOptions configures pathline integration.
type AdvectOptions struct {
	// Dt is the RK4 step size (the paper uses 0.01 s).
	Dt float64
	// Steps is the number of RK4 steps to take.
	Steps int
	// StopAtBoundary halts a particle when it exits the spatial domain
	// (it keeps its last position so pathline comparisons stay aligned).
	StopAtBoundary bool
	// Backward integrates against the flow with time running backward from
	// t0 — the mode used for source identification and attracting
	// Lagrangian coherent structures (backward FTLE).
	Backward bool
}

// Advect integrates one particle from seed starting at time t0 using
// classical RK4 through the time-interpolated velocity field.
func Advect(vs *VectorSeries, seed Vec3, t0 float64, opt AdvectOptions) (*Pathline, error) {
	if opt.Dt <= 0 {
		return nil, fmt.Errorf("flow: Dt must be positive, got %g", opt.Dt)
	}
	if opt.Steps < 1 {
		return nil, fmt.Errorf("flow: Steps must be >= 1, got %d", opt.Steps)
	}
	pl := &Pathline{Seed: seed, Dt: opt.Dt, T0: t0, Points: make([]Vec3, 1, opt.Steps+1)}
	pl.Points[0] = seed
	p := seed
	t := t0
	h := opt.Dt
	if opt.Backward {
		h = -opt.Dt
	}
	stopped := false
	for s := 0; s < opt.Steps; s++ {
		if !stopped {
			k1 := vs.VelocityAt(p, t)
			k2 := vs.VelocityAt(p.Add(k1.Scale(h/2)), t+h/2)
			k3 := vs.VelocityAt(p.Add(k2.Scale(h/2)), t+h/2)
			k4 := vs.VelocityAt(p.Add(k3.Scale(h)), t+h)
			incr := k1.Add(k2.Scale(2)).Add(k3.Scale(2)).Add(k4).Scale(h / 6)
			next := p.Add(incr)
			if opt.StopAtBoundary && !vs.InDomain(next) {
				stopped = true
			} else {
				p = next
			}
		}
		pl.Points = append(pl.Points, p)
		t += h
	}
	return pl, nil
}

// Rake seeds `count` particles evenly along the segment [a, b] — the
// paper's seeding pattern ("densely seeding along a line segment").
func Rake(a, b Vec3, count int) []Vec3 {
	if count < 1 {
		return nil
	}
	if count == 1 {
		return []Vec3{a}
	}
	seeds := make([]Vec3, count)
	for i := range seeds {
		f := float64(i) / float64(count-1)
		seeds[i] = a.Add(b.Sub(a).Scale(f))
	}
	return seeds
}

// AdvectAll integrates every seed and returns the pathlines in order.
func AdvectAll(vs *VectorSeries, seeds []Vec3, t0 float64, opt AdvectOptions) ([]*Pathline, error) {
	out := make([]*Pathline, len(seeds))
	for i, s := range seeds {
		pl, err := Advect(vs, s, t0, opt)
		if err != nil {
			return nil, fmt.Errorf("flow: seed %d: %w", i, err)
		}
		out[i] = pl
	}
	return out, nil
}

package flow

import (
	"bufio"
	"fmt"
	"io"
)

// WritePathlinesVTK writes pathlines as a legacy-ASCII VTK PolyData file
// (polylines), the format ParaView and VisIt load directly — so the
// pathline analyses this library computes can be inspected in the same
// tools the paper's authors used. Each pathline becomes one polyline; a
// point scalar "t" carries the advection time for color-mapping.
func WritePathlinesVTK(w io.Writer, pathlines []*Pathline, title string) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	totalPts := 0
	for _, pl := range pathlines {
		totalPts += len(pl.Points)
	}
	if _, err := fmt.Fprintf(bw, "# vtk DataFile Version 3.0\n%s\nASCII\nDATASET POLYDATA\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "POINTS %d float\n", totalPts); err != nil {
		return err
	}
	for _, pl := range pathlines {
		for _, p := range pl.Points {
			if _, err := fmt.Fprintf(bw, "%g %g %g\n", p.X, p.Y, p.Z); err != nil {
				return err
			}
		}
	}
	// LINES section: one polyline per pathline.
	sizeField := len(pathlines) + totalPts
	if _, err := fmt.Fprintf(bw, "LINES %d %d\n", len(pathlines), sizeField); err != nil {
		return err
	}
	offset := 0
	for _, pl := range pathlines {
		if _, err := fmt.Fprintf(bw, "%d", len(pl.Points)); err != nil {
			return err
		}
		for i := range pl.Points {
			if _, err := fmt.Fprintf(bw, " %d", offset+i); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
		offset += len(pl.Points)
	}
	// Advection time as point data.
	if _, err := fmt.Fprintf(bw, "POINT_DATA %d\nSCALARS t float 1\nLOOKUP_TABLE default\n", totalPts); err != nil {
		return err
	}
	for _, pl := range pathlines {
		for i := range pl.Points {
			if _, err := fmt.Fprintf(bw, "%g\n", pl.T0+float64(i)*pl.Dt); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

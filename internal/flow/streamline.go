package flow

import "fmt"

// Streamline integrates a curve tangent to the velocity field *frozen at a
// single instant* — the steady-field counterpart of a pathline. For
// time-varying data the two differ, and comparing them is a standard
// unsteadiness diagnostic; for compression studies streamlines isolate the
// spatial component of velocity error from the temporal one.
func Streamline(vs *VectorSeries, seed Vec3, frozenTime float64, opt AdvectOptions) (*Pathline, error) {
	if opt.Dt <= 0 {
		return nil, fmt.Errorf("flow: Dt must be positive, got %g", opt.Dt)
	}
	if opt.Steps < 1 {
		return nil, fmt.Errorf("flow: Steps must be >= 1, got %d", opt.Steps)
	}
	pl := &Pathline{Seed: seed, Dt: opt.Dt, T0: frozenTime, Points: make([]Vec3, 1, opt.Steps+1)}
	pl.Points[0] = seed
	p := seed
	stopped := false
	vel := func(q Vec3) Vec3 { return vs.VelocityAt(q, frozenTime) }
	for s := 0; s < opt.Steps; s++ {
		if !stopped {
			k1 := vel(p)
			k2 := vel(p.Add(k1.Scale(opt.Dt / 2)))
			k3 := vel(p.Add(k2.Scale(opt.Dt / 2)))
			k4 := vel(p.Add(k3.Scale(opt.Dt)))
			next := p.Add(k1.Add(k2.Scale(2)).Add(k3.Scale(2)).Add(k4).Scale(opt.Dt / 6))
			if opt.StopAtBoundary && !vs.InDomain(next) {
				stopped = true
			} else {
				p = next
			}
		}
		pl.Points = append(pl.Points, p)
	}
	return pl, nil
}

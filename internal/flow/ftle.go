package flow

import (
	"fmt"
	"math"
)

// FTLE computes the finite-time Lyapunov exponent field over a 2D seed
// plane: a grid of particles is advected through the time-varying flow, and
// the largest singular value of the flow-map gradient (estimated by central
// differences between neighboring particle end positions) gives the local
// exponential separation rate
//
//	FTLE = ln(sigma_max) / |T|
//
// FTLE ridges mark Lagrangian coherent structures; because the flow map
// integrates velocity errors over the full advection time, FTLE is among
// the analyses most sensitive to compression loss — exactly the class of
// "algorithms that are sensitive to cumulative errors over time" the
// paper's introduction motivates.
//
// The seed plane spans origin + i*du + j*dv for i < nu, j < nv; the result
// is an nu x nv row-major field (row j, column i).
type FTLEPlane struct {
	Nu, Nv int
	// Values[j*Nu+i] is the FTLE at seed (i, j); boundary seeds (no
	// central difference available) hold NaN.
	Values []float64
}

// FTLEOptions configures the computation.
type FTLEOptions struct {
	// Advect controls the particle integration.
	Advect AdvectOptions
	// T0 is the seeding time.
	T0 float64
}

// ComputeFTLE advects the seed plane and evaluates the FTLE.
func ComputeFTLE(vs *VectorSeries, origin, du, dv Vec3, nu, nv int, opt FTLEOptions) (*FTLEPlane, error) {
	if nu < 3 || nv < 3 {
		return nil, fmt.Errorf("flow: FTLE plane needs at least 3x3 seeds, got %dx%d", nu, nv)
	}
	ends := make([]Vec3, nu*nv)
	for j := 0; j < nv; j++ {
		for i := 0; i < nu; i++ {
			seed := origin.Add(du.Scale(float64(i))).Add(dv.Scale(float64(j)))
			pl, err := Advect(vs, seed, opt.T0, opt.Advect)
			if err != nil {
				return nil, err
			}
			ends[j*nu+i] = pl.End()
		}
	}
	totalT := float64(opt.Advect.Steps) * opt.Advect.Dt
	lenU := math.Sqrt(du.X*du.X + du.Y*du.Y + du.Z*du.Z)
	lenV := math.Sqrt(dv.X*dv.X + dv.Y*dv.Y + dv.Z*dv.Z)

	out := &FTLEPlane{Nu: nu, Nv: nv, Values: make([]float64, nu*nv)}
	for i := range out.Values {
		out.Values[i] = math.NaN()
	}
	for j := 1; j < nv-1; j++ {
		for i := 1; i < nu-1; i++ {
			// Flow-map gradient columns: dPhi/du and dPhi/dv by central
			// differences of end positions.
			dU := ends[j*nu+i+1].Sub(ends[j*nu+i-1]).Scale(1 / (2 * lenU))
			dV := ends[(j+1)*nu+i].Sub(ends[(j-1)*nu+i]).Scale(1 / (2 * lenV))
			// Cauchy-Green tensor C = G^T G for the 3x2 gradient G.
			a := dU.X*dU.X + dU.Y*dU.Y + dU.Z*dU.Z
			b := dU.X*dV.X + dU.Y*dV.Y + dU.Z*dV.Z
			c := dV.X*dV.X + dV.Y*dV.Y + dV.Z*dV.Z
			// Largest eigenvalue of [[a b][b c]].
			disc := math.Sqrt((a-c)*(a-c)/4 + b*b)
			lmax := (a+c)/2 + disc
			if lmax < 1e-300 {
				lmax = 1e-300
			}
			out.Values[j*nu+i] = math.Log(math.Sqrt(lmax)) / math.Abs(totalT)
		}
	}
	return out, nil
}

// Max returns the largest finite FTLE value (the ridge strength).
func (p *FTLEPlane) Max() float64 {
	m := math.Inf(-1)
	for _, v := range p.Values {
		if !math.IsNaN(v) && v > m {
			m = v
		}
	}
	return m
}

// MeanAbsDiff compares two FTLE planes point-wise over their finite
// entries, returning the mean absolute difference — the natural error
// metric for FTLE fields from compressed data.
func (p *FTLEPlane) MeanAbsDiff(q *FTLEPlane) (float64, error) {
	if p.Nu != q.Nu || p.Nv != q.Nv {
		return 0, fmt.Errorf("flow: FTLE planes %dx%d vs %dx%d", p.Nu, p.Nv, q.Nu, q.Nv)
	}
	var sum float64
	n := 0
	for i := range p.Values {
		a, b := p.Values[i], q.Values[i]
		if math.IsNaN(a) || math.IsNaN(b) {
			continue
		}
		sum += math.Abs(a - b)
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

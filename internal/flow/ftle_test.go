package flow

import (
	"math"
	"testing"

	"stwave/internal/grid"
)

// saddleSeries builds the steady linear saddle flow u = λx', v = -λy'
// (about the domain center), whose FTLE is exactly λ everywhere.
func saddleSeries(t *testing.T, n int, L, lambda float64) *VectorSeries {
	t.Helper()
	sp := L / float64(n-1)
	c := L / 2
	mk := func() (*grid.Field3D, *grid.Field3D, *grid.Field3D) {
		u := grid.NewField3D(n, n, n)
		v := grid.NewField3D(n, n, n)
		w := grid.NewField3D(n, n, n)
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				Y := float64(y) * sp
				for x := 0; x < n; x++ {
					X := float64(x) * sp
					u.Set(x, y, z, lambda*(X-c))
					v.Set(x, y, z, -lambda*(Y-c))
				}
			}
		}
		return u, v, w
	}
	u0, v0, w0 := mk()
	u1, v1, w1 := mk()
	vs, err := NewVectorSeries(Domain{Spacing: Vec3{sp, sp, sp}}, []VectorSlice{
		{U: u0, V: v0, W: w0, Time: 0},
		{U: u1, V: v1, W: w1, Time: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

func TestFTLEOnLinearSaddle(t *testing.T) {
	lambda := 0.05
	vs := saddleSeries(t, 33, 100, lambda)
	opt := FTLEOptions{Advect: AdvectOptions{Dt: 0.1, Steps: 100}}
	// Seed a small plane near the center so particles stay in-domain.
	p, err := ComputeFTLE(vs,
		Vec3{X: 45, Y: 45, Z: 50}, Vec3{X: 1}, Vec3{Y: 1}, 11, 11, opt)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < 10; j++ {
		for i := 1; i < 10; i++ {
			got := p.Values[j*11+i]
			if math.Abs(got-lambda) > 0.003 {
				t.Fatalf("FTLE at (%d,%d) = %g, want %g (linear saddle)", i, j, got, lambda)
			}
		}
	}
	if m := p.Max(); math.Abs(m-lambda) > 0.003 {
		t.Errorf("Max = %g", m)
	}
}

func TestFTLEZeroForUniformFlow(t *testing.T) {
	vs := uniformSeries(t, 9, 100, 1, 0.5, 0, []float64{0, 1000})
	opt := FTLEOptions{Advect: AdvectOptions{Dt: 0.1, Steps: 50}}
	p, err := ComputeFTLE(vs,
		Vec3{X: 20, Y: 20, Z: 50}, Vec3{X: 2}, Vec3{Y: 2}, 5, 5, opt)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < 4; j++ {
		for i := 1; i < 4; i++ {
			if v := math.Abs(p.Values[j*5+i]); v > 1e-9 {
				t.Fatalf("uniform flow FTLE = %g at (%d,%d), want 0", v, i, j)
			}
		}
	}
}

func TestFTLEBoundaryIsNaN(t *testing.T) {
	vs := uniformSeries(t, 9, 100, 0, 0, 0, []float64{0, 10})
	opt := FTLEOptions{Advect: AdvectOptions{Dt: 0.1, Steps: 10}}
	p, err := ComputeFTLE(vs, Vec3{X: 40, Y: 40, Z: 50}, Vec3{X: 1}, Vec3{Y: 1}, 4, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(p.Values[0]) || !math.IsNaN(p.Values[15]) {
		t.Error("boundary seeds must be NaN")
	}
}

func TestFTLEValidation(t *testing.T) {
	vs := uniformSeries(t, 5, 10, 0, 0, 0, []float64{0, 1})
	opt := FTLEOptions{Advect: AdvectOptions{Dt: 0.1, Steps: 5}}
	if _, err := ComputeFTLE(vs, Vec3{}, Vec3{X: 1}, Vec3{Y: 1}, 2, 5, opt); err == nil {
		t.Error("expected error for tiny plane")
	}
	bad := FTLEOptions{Advect: AdvectOptions{Dt: 0, Steps: 5}}
	if _, err := ComputeFTLE(vs, Vec3{}, Vec3{X: 1}, Vec3{Y: 1}, 5, 5, bad); err == nil {
		t.Error("expected error for invalid advection options")
	}
}

func TestFTLEMeanAbsDiff(t *testing.T) {
	a := &FTLEPlane{Nu: 3, Nv: 3, Values: make([]float64, 9)}
	b := &FTLEPlane{Nu: 3, Nv: 3, Values: make([]float64, 9)}
	for i := range a.Values {
		a.Values[i] = math.NaN()
		b.Values[i] = math.NaN()
	}
	a.Values[4] = 1.0
	b.Values[4] = 1.5
	d, err := a.MeanAbsDiff(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-15 {
		t.Errorf("MeanAbsDiff = %g, want 0.5", d)
	}
	if _, err := a.MeanAbsDiff(&FTLEPlane{Nu: 2, Nv: 2, Values: make([]float64, 4)}); err == nil {
		t.Error("expected dims mismatch error")
	}
	empty := &FTLEPlane{Nu: 3, Nv: 3, Values: make([]float64, 9)}
	for i := range empty.Values {
		empty.Values[i] = math.NaN()
	}
	if d, err := empty.MeanAbsDiff(empty); err != nil || d != 0 {
		t.Errorf("all-NaN diff = %g, %v", d, err)
	}
}

func TestBackwardFTLEOnLinearSaddle(t *testing.T) {
	// The backward-time FTLE of the saddle equals λ as well: contraction
	// forward in time is expansion backward (attracting LCS).
	lambda := 0.05
	vs := saddleSeries(t, 33, 100, lambda)
	opt := FTLEOptions{
		T0:     10, // start inside the time range, integrate backward
		Advect: AdvectOptions{Dt: 0.1, Steps: 100, Backward: true},
	}
	p, err := ComputeFTLE(vs,
		Vec3{X: 45, Y: 45, Z: 50}, Vec3{X: 1}, Vec3{Y: 1}, 9, 9, opt)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < 8; j++ {
		for i := 1; i < 8; i++ {
			got := p.Values[j*9+i]
			if math.Abs(got-lambda) > 0.003 {
				t.Fatalf("backward FTLE at (%d,%d) = %g, want %g", i, j, got, lambda)
			}
		}
	}
}

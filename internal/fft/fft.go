// Package fft implements radix-2 fast Fourier transforms for the
// pseudo-spectral Navier-Stokes solver in internal/sim/ghost. Only
// power-of-two lengths are supported, which is all the solver needs.
//
// Conventions: Forward computes X[k] = sum_n x[n] exp(-2πi kn/N) (no
// scaling); Inverse computes x[n] = (1/N) sum_k X[k] exp(+2πi kn/N), so
// Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Plan caches twiddle factors and the bit-reversal permutation for a fixed
// transform length. A Plan is safe for concurrent use.
type Plan struct {
	n       int
	rev     []int
	twiddle []complex128 // twiddle[j] = exp(-2πi j / n), j < n/2
}

// NewPlan creates a plan for length n (must be a power of two).
func NewPlan(n int) (*Plan, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("fft: length %d is not a power of two", n)
	}
	p := &Plan{n: n, rev: make([]int, n), twiddle: make([]complex128, n/2)}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range p.rev {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	for j := range p.twiddle {
		angle := -2 * math.Pi * float64(j) / float64(n)
		p.twiddle[j] = complex(math.Cos(angle), math.Sin(angle))
	}
	return p, nil
}

// Len returns the transform length.
func (p *Plan) Len() int { return p.n }

// Forward transforms x in place. len(x) must equal the plan length.
func (p *Plan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse applies the inverse transform in place, including the 1/N scale.
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= scale
	}
}

func (p *Plan) transform(x []complex128, inverse bool) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: input length %d != plan length %d", len(x), n))
	}
	// Bit-reversal permutation.
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley-Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				t := w * x[k+half]
				x[k+half] = x[k] - t
				x[k] = x[k] + t
				tw += step
			}
		}
	}
}

// naiveDFT computes the O(n^2) reference transform; exported for tests via
// DFTReference.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * complex(math.Cos(angle), math.Sin(angle))
		}
		out[k] = sum
	}
	if inverse {
		scale := complex(1/float64(n), 0)
		for i := range out {
			out[i] *= scale
		}
	}
	return out
}

// DFTReference computes the direct O(n^2) DFT (forward, unscaled) for
// validation.
func DFTReference(x []complex128) []complex128 { return naiveDFT(x, false) }

package fft

import (
	"fmt"
	"runtime"
	"sync"
)

// Plan3 performs 3D FFTs on cubic complex arrays of side n stored in
// X-fastest order: index = (z*n + y)*n + x. Transforms along each axis are
// parallelized across lines.
type Plan3 struct {
	n       int
	plan    *Plan
	workers int
}

// NewPlan3 creates a 3D plan for an n^3 cube. workers <= 0 uses all CPUs.
func NewPlan3(n, workers int) (*Plan3, error) {
	p, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Plan3{n: n, plan: p, workers: workers}, nil
}

// Len returns the cube side length.
func (p *Plan3) Len() int { return p.n }

// Forward transforms the cube in place along X, Y, then Z.
func (p *Plan3) Forward(a []complex128) { p.transform(a, false) }

// Inverse applies the inverse 3D transform in place (scaled by 1/n^3).
func (p *Plan3) Inverse(a []complex128) { p.transform(a, true) }

func (p *Plan3) transform(a []complex128, inverse bool) {
	n := p.n
	if len(a) != n*n*n {
		panic(fmt.Sprintf("fft: cube length %d != %d^3", len(a), n))
	}
	oneD := func(line []complex128) {
		if inverse {
			p.plan.Inverse(line)
		} else {
			p.plan.Forward(line)
		}
	}
	// X axis: contiguous lines.
	p.parallelLines(n*n, func(li int, buf []complex128) {
		start := li * n
		oneD(a[start : start+n])
	})
	// Y axis: stride n.
	p.parallelLines(n*n, func(li int, buf []complex128) {
		x := li % n
		z := li / n
		base := z*n*n + x
		for y := 0; y < n; y++ {
			buf[y] = a[base+y*n]
		}
		oneD(buf)
		for y := 0; y < n; y++ {
			a[base+y*n] = buf[y]
		}
	})
	// Z axis: stride n*n.
	p.parallelLines(n*n, func(li int, buf []complex128) {
		x := li % n
		y := li / n
		base := y*n + x
		for z := 0; z < n; z++ {
			buf[z] = a[base+z*n*n]
		}
		oneD(buf)
		for z := 0; z < n; z++ {
			a[base+z*n*n] = buf[z]
		}
	})
}

func (p *Plan3) parallelLines(lines int, fn func(li int, buf []complex128)) {
	workers := p.workers
	if workers > lines {
		workers = lines
	}
	if workers <= 1 {
		buf := make([]complex128, p.n)
		for li := 0; li < lines; li++ {
			fn(li, buf)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (lines + workers - 1) / workers
	for start := 0; start < lines; start += chunk {
		end := start + chunk
		if end > lines {
			end = lines
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			buf := make([]complex128, p.n)
			for li := s; li < e; li++ {
				fn(li, buf)
			}
		}(start, end)
	}
	wg.Wait()
}

package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 12, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestNewPlanRejectsNonPow2(t *testing.T) {
	if _, err := NewPlan(12); err == nil {
		t.Error("expected error for n=12")
	}
	if _, err := NewPlan(0); err == nil {
		t.Error("expected error for n=0")
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randComplex(rng, n)
		want := DFTReference(x)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: FFT deviates from DFT by %.3g", n, e)
		}
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 16, 256, 1024} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		x := randComplex(rng, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if e := maxErr(x, y); e > 1e-10*float64(n) {
			t.Errorf("n=%d: round trip error %.3g", n, e)
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 256
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := randComplex(rng, n)
	var timeEnergy float64
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	p.Forward(x)
	var freqEnergy float64
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy)/timeEnergy > 1e-12 {
		t.Errorf("Parseval violated: %g vs %g", timeEnergy, freqEnergy)
	}
}

func TestSingleModeTransform(t *testing.T) {
	// exp(2πi k0 n / N) transforms to a delta at k0.
	n := 64
	k0 := 5
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n)
	for i := range x {
		angle := 2 * math.Pi * float64(k0) * float64(i) / float64(n)
		x[i] = cmplx.Exp(complex(0, angle))
	}
	p.Forward(x)
	for k := range x {
		want := complex(0, 0)
		if k == k0 {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(x[k]-want) > 1e-9 {
			t.Errorf("bin %d = %v, want %v", k, x[k], want)
		}
	}
}

func TestPlan3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 8
	p, err := NewPlan3(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := randComplex(rng, n*n*n)
	y := append([]complex128(nil), x...)
	p.Forward(y)
	p.Inverse(y)
	if e := maxErr(x, y); e > 1e-9 {
		t.Errorf("3D round trip error %.3g", e)
	}
}

func TestPlan3MatchesSeparableDFT(t *testing.T) {
	// A separable single mode exp(2πi(ax+by+cz)/n) must transform to a
	// single nonzero bin at (a,b,c).
	n := 8
	a, b, c := 2, 3, 1
	p, err := NewPlan3(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, n*n*n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for xx := 0; xx < n; xx++ {
				angle := 2 * math.Pi * (float64(a*xx) + float64(b*y) + float64(c*z)) / float64(n)
				x[(z*n+y)*n+xx] = cmplx.Exp(complex(0, angle))
			}
		}
	}
	p.Forward(x)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for xx := 0; xx < n; xx++ {
				idx := (z*n+y)*n + xx
				want := complex(0, 0)
				if xx == a && y == b && z == c {
					want = complex(float64(n*n*n), 0)
				}
				if cmplx.Abs(x[idx]-want) > 1e-6 {
					t.Fatalf("bin (%d,%d,%d) = %v, want %v", xx, y, z, x[idx], want)
				}
			}
		}
	}
}

func TestPlan3ParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 16
	ser, err := NewPlan3(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewPlan3(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := randComplex(rng, n*n*n)
	a := append([]complex128(nil), x...)
	b := append([]complex128(nil), x...)
	ser.Forward(a)
	par.Forward(b)
	if e := maxErr(a, b); e != 0 {
		t.Errorf("parallel 3D FFT differs from serial by %g", e)
	}
}

// Property: linearity of the transform.
func TestQuickFFTLinearity(t *testing.T) {
	p, err := NewPlan(64)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64, aRaw, bRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := complex(float64(aRaw)/16, 0)
		b := complex(float64(bRaw)/16, 0)
		x := randComplex(rng, 64)
		y := randComplex(rng, 64)
		combo := make([]complex128, 64)
		for i := range combo {
			combo[i] = a*x[i] + b*y[i]
		}
		p.Forward(combo)
		p.Forward(x)
		p.Forward(y)
		for i := range combo {
			if cmplx.Abs(combo[i]-(a*x[i]+b*y[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	p, err := NewPlan(1024)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	x := randComplex(rng, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
		p.Inverse(x)
	}
}

func BenchmarkFFT3D32(b *testing.B) {
	p, err := NewPlan3(32, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x := randComplex(rng, 32*32*32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
		p.Inverse(x)
	}
}

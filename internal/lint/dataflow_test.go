package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFlowFunc type-checks src (a complete file) and returns the body
// of the function named fn plus the package's types.Info.
func parseFlowFunc(t *testing.T, src, fn string) (*ast.BlockStmt, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("flow", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fd.Body, info
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil
}

// markTransfer sets bit 1 on a variable's key at "x = x" assignments and
// is otherwise inert — enough to observe which paths reach where.
func markTransfer(info *types.Info) (transferFunc, func(name string) string) {
	keys := map[string]string{}
	tf := func(n ast.Node, st absState, report bool) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return
		}
		k := flowKey(info, as.Lhs[0])
		if k == "" {
			return
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			keys[id.Name] = k
		}
		st[k] |= 1
	}
	return tf, func(name string) string { return keys[name] }
}

func TestCFGBranchJoin(t *testing.T) {
	body, info := parseFlowFunc(t, `package p
func f(c bool) int {
	a := 0
	b := 0
	if c {
		a = 1
	} else {
		b = 1
	}
	return a + b
}`, "f")
	g := buildCFG(body, info)
	if g.unstructured {
		t.Fatal("straight-line function reported unstructured")
	}
	tf, keyOf := markTransfer(info)
	exit := solveForward(g, tf)
	for _, v := range []string{"a", "b"} {
		if exit[keyOf(v)]&1 == 0 {
			t.Errorf("exit state lost the %s assignment across the branch join: %v", v, exit)
		}
	}
}

func TestCFGLoopTerminatesAndJoins(t *testing.T) {
	body, info := parseFlowFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		s = s + i
	}
	return s
}`, "f")
	g := buildCFG(body, info)
	tf, keyOf := markTransfer(info)
	exit := solveForward(g, tf)
	if exit[keyOf("s")]&1 == 0 {
		t.Errorf("loop-body assignment did not reach exit: %v", exit)
	}
}

func TestCFGPanicPathDoesNotReachExit(t *testing.T) {
	body, info := parseFlowFunc(t, `package p
func f(c bool) int {
	a := 0
	if c {
		b := 1
		_ = b
		panic("dead end")
	}
	return a
}`, "f")
	g := buildCFG(body, info)
	tf, keyOf := markTransfer(info)
	exit := solveForward(g, tf)
	if exit[keyOf("a")]&1 == 0 {
		t.Errorf("live path assignment missing at exit: %v", exit)
	}
	if k := keyOf("b"); k != "" && exit[k]&1 != 0 {
		t.Errorf("panic-terminated path leaked state into the exit join: %v", exit)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	body, info := parseFlowFunc(t, `package p
func f(n int) int {
	a := 0
	switch n {
	case 0:
		a = 1
		fallthrough
	case 1:
		a = 2
	default:
	}
	return a
}`, "f")
	g := buildCFG(body, info)
	tf, keyOf := markTransfer(info)
	exit := solveForward(g, tf)
	if exit[keyOf("a")]&1 == 0 {
		t.Errorf("switch-case assignment missing at exit: %v", exit)
	}
}

func TestCFGGotoIsUnstructured(t *testing.T) {
	body, info := parseFlowFunc(t, `package p
func f() int {
	a := 0
loop:
	a++
	if a < 3 {
		goto loop
	}
	return a
}`, "f")
	if g := buildCFG(body, info); !g.unstructured {
		t.Fatal("goto-bearing function not flagged unstructured")
	}
}

func TestFlowKeyShadowing(t *testing.T) {
	body, info := parseFlowFunc(t, `package p
func f() int {
	x := 1
	{
		x := 2
		_ = x
	}
	return x
}`, "f")
	var keys []string
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if ok {
			if k := flowKey(info, as.Lhs[0]); k != "" {
				keys = append(keys, k)
			}
		}
		return true
	})
	if len(keys) != 2 || keys[0] == keys[1] {
		t.Fatalf("shadowed variables must get distinct keys, got %v", keys)
	}
}

func TestKillDerived(t *testing.T) {
	st := absState{"v1": 1, "v1.total": 2, "v1.len": 3, "v12": 4}
	killDerived(st, "v1")
	if _, ok := st["v1"]; ok {
		t.Error("base key survived")
	}
	if _, ok := st["v1.total"]; ok {
		t.Error("field key survived")
	}
	if _, ok := st["v12"]; !ok {
		t.Error("sibling key with shared prefix was wrongly killed")
	}
}

func TestJoinIntoReportsChange(t *testing.T) {
	dst := absState{"a": 1}
	if joinInto(dst, absState{"a": 1}) {
		t.Error("no-op join reported change")
	}
	if !joinInto(dst, absState{"a": 2, "b": 1}) || dst["a"] != 3 || dst["b"] != 1 {
		t.Errorf("join result wrong: %v", dst)
	}
}

func TestEachFuncBodyVisitsLiterals(t *testing.T) {
	body, _ := parseFlowFunc(t, `package p
func f() func() {
	g := func() {}
	return g
}`, "f")
	_ = body
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "u.go", `package p
func a() { _ = func() { _ = func() {} } }
func b() {}`, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var visits []string
	eachFuncBody([]*ast.File{file}, func(decl *ast.FuncDecl, lit *ast.FuncLit, b *ast.BlockStmt) {
		name := "lit"
		if lit == nil {
			name = decl.Name.Name
		} else if decl != nil {
			name = "lit-in-" + decl.Name.Name
		}
		visits = append(visits, name)
	})
	got := strings.Join(visits, ",")
	if got != "a,lit-in-a,lit-in-a,b" {
		t.Fatalf("visit order %q, want a,lit-in-a,lit-in-a,b", got)
	}
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// TruncCast flags integer conversions in the encode/record paths that can
// silently change the value: narrowing to a smaller width, signed to
// unsigned (a negative wraps to a huge length), and unsigned to signed at
// the same width (a forged length wraps negative). This is the exact bug
// class that corrupts container frames — a record length or slice count
// truncated on encode passes every checksum, because the checksum is
// computed over the already-wrong bytes.
//
// A conversion is accepted when the value is provably in range:
//
//   - a constant that fits the destination type
//   - an operand masked with a constant that fits (x & 0xff)
//   - a relational bounds guard on the same expression earlier in the
//     enclosing function (if n > math.MaxUint32 { ... } before uint32(n))
//
// Float conversions are covered too: float32(x) of a float64 operand
// silently rounds, which on the same encode paths is the widen-then-
// narrow round trip the native float32 pipeline exists to avoid (see
// checkFloatNarrow).
//
// The analyzer runs only on packages named by Config.TruncScope (the
// encode/record paths); an empty scope means every package.
var TruncCast = &Analyzer{
	Name: "trunccast",
	Doc:  "narrowing integer and float conversions in encode/record paths need a bounds guard or documented contract",
	Run:  runTruncCast,
}

func runTruncCast(pass *Pass) {
	if !truncInScope(pass.Config.TruncScope, pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		// Walk per declaration so each conversion knows its enclosing
		// function body — the region searched for bounds guards.
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					checkTruncIn(pass, d.Body, d.Body)
				}
			case *ast.GenDecl:
				checkTruncIn(pass, d, nil)
			}
		}
	}
}

// checkTruncIn reports unguarded narrowing conversions under root;
// guardScope (usually the enclosing function body) is searched for bounds
// guards that precede each conversion. A nil guardScope means no guards
// are reachable (package-level declarations).
func checkTruncIn(pass *Pass, root ast.Node, guardScope ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		dst, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || dst.Info()&(types.IsInteger|types.IsFloat) == 0 {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		atv, ok := pass.TypesInfo.Types[arg]
		if !ok {
			return true
		}
		src, ok := atv.Type.Underlying().(*types.Basic)
		if !ok {
			return true
		}
		if dst.Info()&types.IsFloat != 0 {
			checkFloatNarrow(pass, call, dst, src, arg, atv)
			return true
		}
		if src.Info()&types.IsInteger == 0 {
			return true
		}
		reason := truncRisk(dst, src)
		if reason == "" {
			return true
		}
		if atv.Value != nil && constFits(atv.Value, dst) {
			return true
		}
		if maskedInRange(pass.TypesInfo, arg, dst) {
			return true
		}
		// len and cap are non-negative by definition, so converting them to
		// a type at least as wide cannot change the value; only genuine
		// narrowing of a length is worth a guard.
		if intBits(dst) >= intBits(src) && isLenOrCap(pass.TypesInfo, arg) {
			return true
		}
		if boundedByMin(pass.TypesInfo, arg, dst) {
			return true
		}
		if guardScope != nil && hasBoundsGuard(pass, guardScope, arg, call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(), "%s(%s) %s without a preceding bounds guard on %q",
			tv.Type, types.ExprString(call.Args[0]), reason, types.ExprString(arg))
		return true
	})
}

// checkFloatNarrow reports float32 conversions of a float64 operand. On
// the encode paths in TruncScope such a conversion silently rounds — the
// widen-then-narrow round trip the native float32 pipeline exists to
// avoid, and a double rounding the single-rounding error bound in
// DESIGN §13 does not cover. A constant exactly representable at 32 bits
// is accepted; a deliberate format-level narrowing carries an
// stlint:ignore with its contract.
func checkFloatNarrow(pass *Pass, call *ast.CallExpr, dst, src *types.Basic, arg ast.Expr, atv types.TypeAndValue) {
	if dst.Kind() != types.Float32 || src.Kind() != types.Float64 {
		return
	}
	if atv.Value != nil && floatFits32(atv.Value) {
		return
	}
	pass.Reportf(call.Pos(), "float32(%s) silently rounds float64; keep the f32 path native, or annotate the one documented rounding",
		types.ExprString(call.Args[0]))
}

// floatFits32 reports whether constant v round-trips through float32
// exactly, so the conversion cannot change the value.
func floatFits32(v constant.Value) bool {
	if v.Kind() != constant.Float && v.Kind() != constant.Int {
		return false
	}
	f, _ := constant.Float64Val(v)
	return float64(float32(f)) == f //stlint:ignore floateq exact round-trip representability is the point of the check
}

func truncInScope(scope []string, pkgPath string) bool {
	if len(scope) == 0 {
		return true
	}
	for _, s := range scope {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

// intBits returns the value width of an integer kind; int, uint and
// uintptr are treated as 64-bit, their widest platform size.
func intBits(b *types.Basic) int {
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	default:
		return 64
	}
}

func isUnsignedKind(b *types.Basic) bool {
	return b.Info()&types.IsUnsigned != 0
}

// truncRisk classifies a src→dst integer conversion; "" means the
// conversion can never change the value.
func truncRisk(dst, src *types.Basic) string {
	db, sb := intBits(dst), intBits(src)
	du, su := isUnsignedKind(dst), isUnsignedKind(src)
	switch {
	case db < sb:
		return "narrows " + src.Name()
	case !su && du:
		return "drops the sign of " + src.Name()
	case su && !du && db <= sb:
		return "can wrap " + src.Name() + " negative"
	}
	return ""
}

// constFits reports whether constant v is exactly representable in dst.
func constFits(v constant.Value, dst *types.Basic) bool {
	if v.Kind() != constant.Int {
		return false
	}
	return representableInt(v, dst)
}

func representableInt(v constant.Value, dst *types.Basic) bool {
	bits := intBits(dst)
	if isUnsignedKind(dst) {
		u, ok := constant.Uint64Val(v)
		if !ok {
			return false
		}
		return bits == 64 || u < 1<<uint(bits)
	}
	i, ok := constant.Int64Val(v)
	if !ok {
		return false
	}
	if bits == 64 {
		return true
	}
	limit := int64(1) << uint(bits-1)
	return i >= -limit && i < limit
}

// maskedInRange reports whether arg is `x & C` (or `C & x`) with a
// constant C that fits dst, which bounds the value regardless of x.
func maskedInRange(info *types.Info, arg ast.Expr, dst *types.Basic) bool {
	bin, ok := arg.(*ast.BinaryExpr)
	if !ok || bin.Op != token.AND {
		return false
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if tv, ok := info.Types[side]; ok && tv.Value != nil && constFits(tv.Value, dst) {
			return true
		}
	}
	return false
}

// isLenOrCap reports whether arg is a call of the builtin len or cap,
// whose results are non-negative by the language spec.
func isLenOrCap(info *types.Info, arg ast.Expr) bool {
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && (b.Name() == "len" || b.Name() == "cap")
}

// boundedByMin reports whether arg is a builtin min(...) call that proves
// the value fits dst: at least one operand is a constant representable in
// dst (an upper bound), and every non-constant operand is unsigned (so
// the result cannot be negative either).
func boundedByMin(info *types.Info, arg ast.Expr, dst *types.Basic) bool {
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "min" {
		return false
	}
	hasConstBound := false
	for _, a := range call.Args {
		tv, ok := info.Types[a]
		if !ok {
			return false
		}
		if tv.Value != nil {
			if constFits(tv.Value, dst) {
				hasConstBound = true
			}
			continue
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || !isUnsignedKind(b) {
			return false
		}
	}
	return hasConstBound
}

// hasBoundsGuard reports whether a relational comparison mentioning the
// same expression as arg appears in guardScope before pos. The comparison
// direction is not modeled: any earlier `<, <=, >, >=` on the value is
// taken as evidence the range was considered, which keeps the check
// honest without a dataflow engine.
func hasBoundsGuard(pass *Pass, guardScope ast.Node, arg ast.Expr, pos token.Pos) bool {
	want := types.ExprString(arg)
	found := false
	ast.Inspect(guardScope, func(n ast.Node) bool {
		if found {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || bin.End() > pos {
			return true
		}
		switch bin.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			if types.ExprString(ast.Unparen(bin.X)) == want || types.ExprString(ast.Unparen(bin.Y)) == want {
				found = true
			}
		}
		return true
	})
	return found
}

package lint

import (
	"go/ast"
	"go/types"
)

// LockVal flags sync.Mutex and sync.RWMutex values (or any type that
// transitively embeds one by value) being copied. Beyond go vet's
// copylocks shapes — by-value parameters, receivers, and assignments — it
// also flags the copies vet does not model: channel sends, map stores and
// loads, composite-literal captures, range-clause element copies, and
// by-value returns of existing values.
//
// Constructing a fresh value (a composite literal, or the zero value from
// a declaration without initializer) is not a copy and is never flagged:
// the whole point of the rule is that a lock that may already be in use
// must not fork.
var LockVal = &Analyzer{
	Name: "lockval",
	Doc:  "sync.Mutex/RWMutex must not be copied: by-value params/receivers, sends, map stores, range clauses",
	Run:  runLockVal,
}

func runLockVal(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkLockFields(pass, n.Recv, "receiver")
				}
				if n.Type.Params != nil {
					checkLockFields(pass, n.Type.Params, "parameter")
				}
			case *ast.FuncLit:
				if n.Type.Params != nil {
					checkLockFields(pass, n.Type.Params, "parameter")
				}
			case *ast.SendStmt:
				checkLockCopy(pass, n.Value, "channel send copies")
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkLockCopy(pass, rhs, "assignment copies")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkLockCopy(pass, v, "initialization copies")
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := exprOrDefType(pass.TypesInfo, n.Value); t != nil {
						if lock := lockPathOf(t); lock != "" {
							pass.Reportf(n.For, "range clause copies %s (contains %s); iterate by index or use pointers",
								t, lock)
						}
					}
				}
			case *ast.CallExpr:
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				for _, arg := range n.Args {
					checkLockCopy(pass, arg, "call passes")
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					checkLockCopy(pass, res, "return copies")
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					checkLockCopy(pass, elt, "composite literal copies")
				}
			}
			return true
		})
	}
}

// checkLockFields reports fields (parameters, receivers) whose declared
// type holds a lock by value.
func checkLockFields(pass *Pass, fields *ast.FieldList, kind string) {
	for _, field := range fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		lock := lockPath(tv.Type)
		if lock == "" {
			continue
		}
		names := "it"
		if len(field.Names) > 0 {
			names = field.Names[0].Name
		}
		pass.Reportf(field.Pos(), "%s %s passes lock by value: %s contains %s; use a pointer",
			kind, names, tv.Type, lock)
	}
}

// checkLockCopy reports expr when it denotes an *existing* value (not a
// fresh composite literal or call result) whose type holds a lock.
func checkLockCopy(pass *Pass, expr ast.Expr, action string) {
	if !isExistingValue(expr) {
		return
	}
	tv, ok := pass.TypesInfo.Types[ast.Unparen(expr)]
	if !ok {
		return
	}
	lock := lockPath(tv.Type)
	if lock == "" {
		return
	}
	pass.Reportf(expr.Pos(), "%s %s by value (contains %s); use a pointer", action, tv.Type, lock)
}

// isExistingValue reports whether expr denotes storage that may already
// be shared: a variable, field, element, or dereference. Composite
// literals, conversions, calls, and &x are not value copies of a live
// lock.
func isExistingValue(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name != "_"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// exprOrDefType resolves an expression's type, falling back to the
// defined object for idents in defining position (range clause LHS).
func exprOrDefType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if o := info.Defs[id]; o != nil {
			return o.Type()
		}
		if o := info.Uses[id]; o != nil {
			return o.Type()
		}
	}
	return nil
}

// lockPathOf is lockPath on an already-resolved type.
func lockPathOf(t types.Type) string {
	return lockPathSeen(t, map[types.Type]bool{})
}

// lockPath reports the first sync lock type found by value inside t
// ("sync.Mutex", "sync.RWMutex"), or "" when t holds no lock.
func lockPath(t types.Type) string {
	return lockPathSeen(t, map[types.Type]bool{})
}

func lockPathSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex":
				return "sync." + obj.Name()
			}
		}
		return lockPathSeen(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockPathSeen(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockPathSeen(u.Elem(), seen)
	}
	return ""
}

package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

// TestWriteJSONSchema pins the machine-readable output contract: an
// array of objects with exactly the file/line/column/analyzer/message
// keys, in input order.
func TestWriteJSONSchema(t *testing.T) {
	findings := []Finding{
		{
			Pos:      token.Position{Filename: "internal/core/record.go", Line: 42, Column: 7},
			Analyzer: "trunccast",
			Message:  "uint32(n) narrows int",
		},
		{
			Pos:      token.Position{Filename: "cmd/stcomp/main.go", Line: 9, Column: 2},
			Analyzer: "uncheckederr",
			Message:  "discarded error from (*os.File).Close",
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, findings); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != len(findings) {
		t.Fatalf("decoded %d objects, want %d", len(decoded), len(findings))
	}
	wantKeys := []string{"file", "line", "column", "analyzer", "message"}
	for i, obj := range decoded {
		if len(obj) != len(wantKeys) {
			t.Errorf("object %d has keys %v, want exactly %v", i, obj, wantKeys)
		}
		for _, k := range wantKeys {
			if _, ok := obj[k]; !ok {
				t.Errorf("object %d missing key %q", i, k)
			}
		}
	}
	if got := decoded[0]["file"]; got != "internal/core/record.go" {
		t.Errorf("file = %v, want internal/core/record.go", got)
	}
	if got := decoded[0]["line"]; got != float64(42) {
		t.Errorf("line = %v, want 42", got)
	}
	if got := decoded[1]["analyzer"]; got != "uncheckederr" {
		t.Errorf("analyzer = %v, want uncheckederr", got)
	}
}

// TestWriteJSONEmpty: no findings must encode as [], not null, so
// consumers can range over the result unconditionally.
func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded == nil {
		t.Fatalf("empty findings encoded as null, want []: %s", buf.String())
	}
	if len(decoded) != 0 {
		t.Fatalf("decoded %d objects, want 0", len(decoded))
	}
}

package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// A Package is one type-checked package ready for analysis. Only non-test
// Go files are loaded: the invariants stlint proves are about the pipeline
// itself, and test files legitimately use exact float comparisons against
// golden values.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// exportLookup resolves compiled export data for imports. Packages named
// by the initial `go list -deps -export` run are served from its table;
// anything else (for example a testdata package importing a module
// package the main patterns did not reach) is resolved lazily with a
// one-off `go list -export` invocation.
type exportLookup struct {
	dir string

	mu      sync.Mutex
	exports map[string]string
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		out, err := goList(l.dir, "-export", "-f", "{{.Export}}", path)
		if err != nil {
			return nil, fmt.Errorf("lint: resolving export data for %q: %w", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		l.mu.Lock()
		l.exports[path] = file
		l.mu.Unlock()
	}
	return os.Open(file)
}

func goList(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg != "" {
			return nil, fmt.Errorf("go list %s: %v: %s", strings.Join(args, " "), err, msg)
		}
		return nil, fmt.Errorf("go list %s: %v", strings.Join(args, " "), err)
	}
	return out, nil
}

// Load type-checks every package matched by patterns (for example
// "./...") relative to dir. It shells out to `go list -deps -export` once
// to obtain compiled export data for all imports, then parses and
// type-checks the matched packages from source with the standard
// library's go/types — no golang.org/x/tools dependency.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,DepOnly"}, patterns...)
	out, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	lookup := &exportLookup{dir: dir, exports: map[string]string{}}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Export != "" {
			lookup.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup.lookup)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func check(fset *token.FileSet, imp types.Importer, t listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	typPkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", t.ImportPath, err)
	}
	return &Package{
		Path:      t.ImportPath,
		Dir:       t.Dir,
		Fset:      fset,
		Files:     files,
		Types:     typPkg,
		TypesInfo: info,
	}, nil
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces cancellation threading through the pipeline's ...Ctx
// entry points (the PR 4 convention): a function that receives a
// context must pass that context — or one derived from it — to the
// stages it calls, and library packages must never mint a fresh root
// context, which silently severs the caller's deadlines and traces.
//
// Checked per declared function (closures are analyzed as part of their
// enclosing declaration):
//
//   - a function named ...Ctx must take a context.Context parameter and
//     must actually use it
//   - context.Background() / context.TODO() are findings inside any
//     function that already has a context parameter (or is named ...Ctx);
//     ctx-less compatibility shims that forward to their Ctx variant with
//     a fresh root remain legal
//   - a context-typed call argument must be derived from the incoming
//     context (the parameter itself, a variable assigned from it, e.g.
//     via context.WithTimeout). Context-typed struct fields count as
//     derived: they were checked where they were stored.
//
// Scope is opt-in via Config.CtxScope: binaries and tests create root
// contexts legitimately.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "...Ctx entry points must thread their incoming context; no fresh root contexts in library packages",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if len(pass.Config.CtxScope) == 0 || !pathInScope(pass.Config.CtxScope, pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if ok && decl.Body != nil {
				checkCtxFlow(pass, decl)
			}
		}
	}
}

func checkCtxFlow(pass *Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	ctxName := strings.HasSuffix(decl.Name.Name, "Ctx")
	params := ctxParams(info, decl.Type)
	if ctxName && len(params) == 0 {
		pass.Reportf(decl.Name.Pos(), "function %s is named as a context variant but takes no context.Context", decl.Name.Name)
		return
	}
	if len(params) == 0 {
		return // ctx-less shim: free to mint a root context
	}

	// derived: the incoming contexts plus everything assigned from them.
	derived := map[types.Object]bool{}
	for _, p := range params {
		derived[p] = true
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if ft, ok := n.(*ast.FuncLit); ok {
			for _, p := range ctxParams(info, ft.Type) {
				derived[p] = true
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				rhs := as.Rhs[0]
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				}
				if !mentionsDerived(info, rhs, derived) {
					continue
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil && !derived[obj] {
						derived[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	used := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if derived[info.ObjectOf(n)] {
				used = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && funcPackagePath(fn) == "context" {
				if fn.Name() == "Background" || fn.Name() == "TODO" {
					pass.Reportf(n.Pos(), "context.%s inside a function that already has a ctx; minting a root context severs cancellation", fn.Name())
					return true
				}
			}
			for _, a := range n.Args {
				checkCtxArg(pass, a, derived)
			}
		}
		return true
	})
	if !used {
		pass.Reportf(decl.Name.Pos(), "function %s takes a context.Context but never threads it anywhere", decl.Name.Name)
	}
}

// checkCtxArg flags context-typed call arguments not derived from the
// incoming context.
func checkCtxArg(pass *Pass, arg ast.Expr, derived map[types.Object]bool) {
	info := pass.TypesInfo
	tv, ok := info.Types[arg]
	if !ok || !isContextType(tv.Type) {
		return
	}
	if mentionsDerived(info, arg, derived) {
		return
	}
	// Stored contexts (s.ctx) were threaded at the store; calls minting
	// roots are reported at the call itself.
	skip := false
	ast.Inspect(arg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if t, ok := info.Types[n]; ok && isContextType(t.Type) {
				skip = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && funcPackagePath(fn) == "context" {
				skip = true
			}
		}
		return !skip
	})
	if skip {
		return
	}
	pass.Reportf(arg.Pos(), "context argument %q is not derived from this function's incoming ctx", types.ExprString(arg))
}

func mentionsDerived(info *types.Info, e ast.Expr, derived map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && derived[info.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// ctxParams returns the *types.Var objects of ft's context.Context
// parameters.
func ctxParams(info *types.Info, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := info.ObjectOf(name); obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantExpectation is one `// want "regexp"` assertion in a golden file.
type wantExpectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseWants extracts want expectations from a loaded package. A comment
// may carry several patterns: // want `a` `b`. Patterns use Go string or
// backquote syntax and match against "[analyzer] message".
func parseWants(t *testing.T, pkg *Package) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" {
						break
					}
					quoted, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want pattern %q: %v", pos.Filename, pos.Line, rest, err)
					}
					pat, err := strconv.Unquote(quoted)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %q: %v", pos.Filename, pos.Line, quoted, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: compiling want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &wantExpectation{
						file:    pos.Filename,
						line:    pos.Line,
						pattern: re,
					})
					rest = rest[len(quoted):]
				}
			}
		}
	}
	return wants
}

// runGolden loads ./testdata/<name>, runs the given analyzers, and
// checks findings against the package's want comments, both directions.
func runGolden(t *testing.T, name string, cfg Config, analyzers ...*Analyzer) {
	t.Helper()
	pkgs, err := Load(".", "./testdata/"+name)
	if err != nil {
		t.Fatalf("loading testdata/%s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for testdata/%s, want 1", len(pkgs), name)
	}
	findings := RunPackage(cfg, pkgs[0], analyzers)
	wants := parseWants(t, pkgs[0])
	if len(wants) == 0 {
		t.Fatalf("testdata/%s has no want assertions; the golden corpus must demonstrate the analyzer firing", name)
	}

	for _, f := range findings {
		text := fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)
		matched := false
		for _, w := range wants {
			if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.pattern.MatchString(text) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func TestGoldenUncheckedErr(t *testing.T) { runGolden(t, "uncheckederr", Config{}, UncheckedErr) }
func TestGoldenFloatEq(t *testing.T)      { runGolden(t, "floateq", Config{}, FloatEq) }
func TestGoldenTruncCast(t *testing.T)    { runGolden(t, "trunccast", Config{}, TruncCast) }
func TestGoldenLockVal(t *testing.T)      { runGolden(t, "lockval", Config{}, LockVal) }
func TestGoldenDeferClose(t *testing.T)   { runGolden(t, "deferclose", Config{}, DeferClose) }

// TestGoldenExportedDoc opts the corpus into DocScope explicitly: an
// empty scope disables the analyzer, which is also what keeps it away
// from the other corpora's deliberately undocumented exports.
func TestGoldenExportedDoc(t *testing.T) {
	runGolden(t, "exporteddoc", Config{DocScope: []string{"exporteddoc"}}, ExportedDoc)
}

// The dataflow analyzers opt their corpora in explicitly, mirroring how
// DefaultConfig scopes them to the pipeline packages.
func TestGoldenTaintLen(t *testing.T) {
	runGolden(t, "taintlen", Config{
		TaintReaders: []string{"BitReader"},
		TaintStructs: []string{"testdata/taintlen.Hdr"},
	}, TaintLen)
}

func TestGoldenScratchPool(t *testing.T) { runGolden(t, "scratchpool", Config{}, ScratchPool) }

func TestGoldenCtxFlow(t *testing.T) {
	runGolden(t, "ctxflow", Config{CtxScope: []string{"testdata/ctxflow"}}, CtxFlow)
}

func TestGoldenBudgetOwner(t *testing.T) {
	runGolden(t, "budgetowner", Config{
		BudgetScope:  []string{"testdata/budgetowner"},
		BudgetOwners: []string{"testdata/budgetowner.Owner"},
	}, BudgetOwner)
}

// TestGoldenSuiteRoster sanity-checks the full roster: each corpus is
// written so that only its own analyzer (plus deliberate cross-hits
// annotated in the corpus) fires, which catches analyzers bleeding
// findings into code they should not care about.
func TestGoldenSuiteRoster(t *testing.T) {
	if len(All) != 10 {
		t.Fatalf("analyzer roster has %d entries, want 10", len(All))
	}
	seen := map[string]bool{}
	for _, a := range All {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

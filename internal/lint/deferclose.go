package lint

import (
	"go/ast"
	"go/types"
)

// DeferClose tracks the results of the file- and container-opening
// functions and reports handles that can never be closed: no deferred
// Close, no direct Close call on any path, and no escape (returned,
// passed to another function, stored in a structure) that could transfer
// ownership. A handle assigned to the blank identifier is reported
// immediately — the descriptor is unreachable the moment it is opened.
//
// The check is deliberately conservative about ownership: any escape
// counts as "someone else closes it", so it only reports handles that are
// provably confined to the function and provably never closed.
var DeferClose = &Analyzer{
	Name: "deferclose",
	Doc:  "os.Open/os.Create/storage.OpenContainer results must be closed or handed off",
	Run:  runDeferClose,
}

// openerFuncs are the functions whose first result is a handle the caller
// owns until closed or handed off.
var openerFuncs = map[string]bool{
	"os.Open":                               true,
	"os.Create":                             true,
	"os.OpenFile":                           true,
	"os.CreateTemp":                         true,
	"stwave/internal/storage.OpenContainer": true,
	"stwave/internal/storage.CreateContainer":       true,
	"stwave/internal/storage.CreateContainerAtomic": true,
}

func runDeferClose(pass *Pass) {
	for _, file := range pass.Files {
		// Each open site is resolved against its top-level function body,
		// so a handle opened inside a closure may be closed (or escape)
		// anywhere in the enclosing function and vice versa.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if assign, ok := n.(*ast.AssignStmt); ok {
					checkOpenAssign(pass, fd.Body, assign)
				}
				return true
			})
		}
	}
}

// checkOpenAssign analyzes one `x, err := opener(...)` site within scope.
func checkOpenAssign(pass *Pass, scope *ast.BlockStmt, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || !openerFuncs[fn.FullName()] {
		return
	}
	if len(assign.Lhs) == 0 {
		return
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return // stored into a field or element: escapes
	}
	if id.Name == "_" {
		pass.Reportf(assign.Pos(), "%s result is discarded without Close; the handle leaks the moment it opens", fn.FullName())
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	closed, escapes := handleDisposition(pass.TypesInfo, scope, id, obj)
	if !closed && !escapes {
		pass.Reportf(assign.Pos(), "%s result %s is never closed (no defer, no reachable Close, no hand-off)", fn.FullName(), id.Name)
	}
}

// handleDisposition classifies every use of obj in scope: a Close call
// (direct or deferred, possibly inside a closure) marks it closed; any
// use other than a field/method access — return, call argument, send,
// composite literal, right-hand side of an assignment, &x — marks it
// escaped.
func handleDisposition(info *types.Info, scope *ast.BlockStmt, openIdent *ast.Ident, obj types.Object) (closed, escapes bool) {
	var stack []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || id == openIdent {
			return true
		}
		if info.Uses[id] != obj && info.Defs[id] != obj {
			return true
		}
		parent := stack[len(stack)-2]
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			if p.X == id {
				if p.Sel.Name == "Close" {
					if len(stack) >= 3 {
						if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == p {
							closed = true
							return true
						}
					}
					// f.Close used as a method value: treat as escape.
					escapes = true
				}
				return true // plain field/method access keeps ownership here
			}
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == id {
					return true // reassignment target, not a use of the open handle
				}
			}
			escapes = true
		default:
			escapes = true
		}
		return true
	}
	ast.Inspect(scope, walk)
	return closed, escapes
}

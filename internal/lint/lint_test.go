package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestRepoIsClean is the dogfooding gate: stlint over the whole module
// must produce zero findings. Every true positive has been fixed and
// every deliberate exception carries a //stlint:ignore with a reason, so
// any finding here is a regression.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short mode")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	cfg := DefaultConfig()
	var all []Finding
	for _, pkg := range pkgs {
		all = append(all, RunPackage(cfg, pkg, All)...)
	}
	for _, f := range all {
		t.Errorf("%s", f)
	}
	if len(all) > 0 {
		t.Errorf("stlint found %d unsuppressed findings; fix them or annotate with //stlint:ignore <analyzer> <reason>", len(all))
	}
}

// parseSynthetic builds a Package (syntax and fileset only — enough for
// the suppression machinery) from source text.
func parseSynthetic(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "synthetic.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing synthetic source: %v", err)
	}
	return &Package{Fset: fset, Files: []*ast.File{f}}
}

func findingAt(pkg *Package, line int, analyzer, msg string) Finding {
	return Finding{
		Pos:      token.Position{Filename: "synthetic.go", Line: line},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestSuppressionDirectives(t *testing.T) {
	src := `package p

func a() {} //stlint:ignore floateq exact comparison is the contract here

//stlint:ignore uncheckederr,deferclose best-effort cleanup on exit
func b() {}

//stlint:ignore all this line is exempt from everything
func c() {}

//stlint:ignore floateq
func malformedNoReason() {}

//stlint:ignore
func malformedEmpty() {}
`
	pkg := parseSynthetic(t, src)

	cases := []struct {
		name       string
		finding    Finding
		suppressed bool
	}{
		{"same line", findingAt(pkg, 3, "floateq", "x"), true},
		{"same line wrong analyzer", findingAt(pkg, 3, "trunccast", "x"), false},
		{"next line first name", findingAt(pkg, 6, "uncheckederr", "x"), true},
		{"next line second name", findingAt(pkg, 6, "deferclose", "x"), true},
		{"next line unlisted name", findingAt(pkg, 6, "lockval", "x"), false},
		{"all keyword", findingAt(pkg, 9, "trunccast", "x"), true},
		{"two lines below directive", findingAt(pkg, 7, "uncheckederr", "x"), false},
		{"malformed directive suppresses nothing", findingAt(pkg, 12, "floateq", "x"), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := applySuppressions(pkg, []Finding{tc.finding}, nil)
			kept := false
			for _, f := range out {
				if f.Analyzer == tc.finding.Analyzer && f.Pos.Line == tc.finding.Pos.Line {
					kept = true
				}
			}
			if kept == tc.suppressed {
				t.Errorf("finding %v: suppressed=%v, want %v", tc.finding, !kept, tc.suppressed)
			}
		})
	}
}

func TestMalformedDirectivesAreReported(t *testing.T) {
	src := `package p

//stlint:ignore floateq
func noReason() {}

//stlint:ignore
func empty() {}
`
	pkg := parseSynthetic(t, src)
	out := applySuppressions(pkg, nil, nil)
	if len(out) != 2 {
		t.Fatalf("got %d findings for 2 malformed directives: %v", len(out), out)
	}
	for _, f := range out {
		if f.Analyzer != "stlint" {
			t.Errorf("malformed directive reported under %q, want stlint", f.Analyzer)
		}
		if !strings.Contains(f.Message, "malformed stlint:ignore") {
			t.Errorf("unexpected message %q", f.Message)
		}
	}
}

func TestStaleDirectivesAreReported(t *testing.T) {
	src := `package p

func a() {} //stlint:ignore floateq exact comparison is the contract here

func b() {} //stlint:ignore trunccast narrowing is deliberate

func c() {} //stlint:ignore lockval copies a guard
`
	pkg := parseSynthetic(t, src)
	ran := map[string]bool{"floateq": true, "trunccast": true}
	live := findingAt(pkg, 3, "floateq", "x")
	out := applySuppressions(pkg, []Finding{live}, ran)
	// The floateq directive matched a finding; trunccast ran and matched
	// nothing (stale); lockval did not run, so its silence proves nothing.
	if len(out) != 1 {
		t.Fatalf("got %d findings, want exactly the stale trunccast report: %v", len(out), out)
	}
	f := out[0]
	if f.Analyzer != "stlint" || f.Pos.Line != 5 || !strings.Contains(f.Message, "stale stlint:ignore") || !strings.Contains(f.Message, "trunccast") {
		t.Errorf("unexpected stale report: %v", f)
	}
}

func TestStaleAllDirectiveNeedsFullRoster(t *testing.T) {
	src := `package p

func a() {} //stlint:ignore all this line is exempt from everything
`
	pkg := parseSynthetic(t, src)

	partial := map[string]bool{"floateq": true}
	if out := applySuppressions(pkg, nil, partial); len(out) != 0 {
		t.Errorf("partial run audited an %q directive: %v", "all", out)
	}

	full := map[string]bool{}
	for _, a := range All {
		full[a.Name] = true
	}
	out := applySuppressions(pkg, nil, full)
	if len(out) != 1 || !strings.Contains(out[0].Message, "stale stlint:ignore") {
		t.Errorf("full run did not report the unused %q directive: %v", "all", out)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:      token.Position{Filename: "internal/core/record.go", Line: 42, Column: 7},
		Analyzer: "trunccast",
		Message:  "uint32(n) narrows int",
	}
	if got, want := f.String(), "internal/core/record.go:42: [trunccast] uint32(n) narrows int"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// BudgetOwner mechanically enforces DESIGN §6's single-owner worker-
// budget rule: exactly one function per pipeline — the entry point —
// resolves the machine-wide parallelism budget; every inner stage
// accepts its share as a plain int parameter and subdivides with
// par.Split. Two stages independently calling runtime.NumCPU
// oversubscribe the machine quadratically, which is precisely the bug
// class PR 5's design review banned.
//
// Inside Config.BudgetScope packages:
//
//   - calls to par.Workers, runtime.NumCPU, or runtime.GOMAXPROCS are
//     findings unless the enclosing declared function is listed in
//     Config.BudgetOwners ("path-suffix.FuncName" entries); closures
//     are governed by their enclosing declaration
//   - the workers argument of par.For / par.Split in a non-owner must
//     be a share handed in from above: derived from an int parameter
//     (of the function or an enclosing closure) or from a par.Split
//     result. The literal 1 (explicitly serial) is allowed; any other
//     constant is a hardcoded budget and is flagged.
//
// Scope is opt-in via Config.BudgetScope.
var BudgetOwner = &Analyzer{
	Name: "budgetowner",
	Doc:  "only pipeline entry points may resolve a worker budget; inner stages accept shares (DESIGN §6)",
	Run:  runBudgetOwner,
}

func runBudgetOwner(pass *Pass) {
	if len(pass.Config.BudgetScope) == 0 || !pathInScope(pass.Config.BudgetScope, pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if ok && decl.Body != nil {
				checkBudget(pass, decl)
			}
		}
	}
}

func checkBudget(pass *Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	if isBudgetOwner(pass, decl) {
		return // owners may resolve and spend the budget freely
	}

	// derived: int parameters (shares handed in) and everything assigned
	// from them or from par.Split results.
	derived := map[types.Object]bool{}
	addIntParams(info, decl.Type, derived)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			addIntParams(info, fl.Type, derived)
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			fromSplit := len(as.Rhs) == 1 && isParCall(info, as.Rhs[0], "Split")
			for i, lhs := range as.Lhs {
				rhs := as.Rhs[0]
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				}
				if !fromSplit && !mentionsDerived(info, rhs, derived) {
					continue
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil && !derived[obj] {
						derived[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := budgetResolver(info, call); ok {
			pass.Reportf(call.Pos(), "%s resolves a worker budget outside a budget owner; accept a share as a parameter instead (DESIGN §6)", name)
			return true
		}
		var workersArg ast.Expr
		switch {
		case isParCall(info, call, "For") && len(call.Args) >= 2:
			workersArg = call.Args[1]
		case isParCall(info, call, "Split") && len(call.Args) >= 1:
			workersArg = call.Args[0]
		default:
			return true
		}
		if tv, ok := info.Types[workersArg]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && v == 1 {
				return true // explicitly serial
			}
			pass.Reportf(workersArg.Pos(), "hardcoded worker budget %q; inner stages must spend a share handed in from the budget owner (DESIGN §6)", types.ExprString(workersArg))
			return true
		}
		if !mentionsDerived(info, workersArg, derived) {
			pass.Reportf(workersArg.Pos(), "worker budget %q is not a share handed in from the budget owner (DESIGN §6)", types.ExprString(workersArg))
		}
		return true
	})
}

// isBudgetOwner matches decl against Config.BudgetOwners entries of the
// form "path-suffix.FuncName".
func isBudgetOwner(pass *Pass, decl *ast.FuncDecl) bool {
	pkg := pass.Pkg.Path()
	for _, entry := range pass.Config.BudgetOwners {
		dot := strings.LastIndex(entry, ".")
		if dot < 0 {
			continue
		}
		if decl.Name.Name == entry[dot+1:] && strings.HasSuffix(pkg, entry[:dot]) {
			return true
		}
	}
	return false
}

// budgetResolver reports whether call resolves a machine-wide budget.
func budgetResolver(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	switch funcPackagePath(fn) {
	case "runtime":
		if fn.Name() == "NumCPU" || fn.Name() == "GOMAXPROCS" {
			return "runtime." + fn.Name(), true
		}
	default:
		if strings.HasSuffix(funcPackagePath(fn), "internal/par") && fn.Name() == "Workers" {
			return "par.Workers", true
		}
	}
	return "", false
}

func isParCall(info *types.Info, e ast.Expr, name string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && strings.HasSuffix(funcPackagePath(fn), "internal/par") && fn.Name() == name
}

// addIntParams seeds derived with ft's integer-typed parameters.
func addIntParams(info *types.Info, ft *ast.FuncType, derived map[types.Object]bool) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			continue
		}
		for _, name := range field.Names {
			if obj := info.ObjectOf(name); obj != nil {
				derived[obj] = true
			}
		}
	}
}

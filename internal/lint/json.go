package lint

import (
	"encoding/json"
	"io"
)

// jsonFinding is the stable machine-readable shape of one finding, the
// contract behind `stlint -json`. Field names are part of the tool's
// interface: editors and CI annotators key on them, so renaming one is a
// breaking change.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON encodes findings as a JSON array, one object per finding,
// ordered as given. An empty or nil slice encodes as [] rather than
// null so consumers can always range over the result.
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

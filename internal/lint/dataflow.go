package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// This file is the dataflow half of the engine: a forward worklist solver
// over the CFGs cfg.go builds. Abstract states are maps from tracked
// value keys (local variables, selector paths like "b.total") to small
// bitmask lattice values whose join is bitwise OR — "tainted on some
// path" and "still live on some path" are exactly the may-facts the
// analyzers need. In-states only ever grow under join, so the fixpoint
// terminates even though transfer functions perform strong updates
// (assignments overwrite a key's value outright).

// absState maps tracked value keys to analyzer-defined lattice bits. A
// missing key is the bottom value (0).
type absState map[string]uint8

func (s absState) clone() absState {
	c := make(absState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// joinInto merges src into dst with per-key bitwise OR, reporting whether
// dst changed.
func joinInto(dst absState, src absState) bool {
	changed := false
	for k, v := range src {
		if dst[k]|v != dst[k] {
			dst[k] |= v
			changed = true
		}
	}
	return changed
}

// transferFunc advances the abstract state across one CFG node. During
// fixpoint iteration report is false; after convergence the solver runs
// one more pass over every reachable block with report true, so findings
// are emitted exactly once per program point from stable in-states.
type transferFunc func(n ast.Node, st absState, report bool)

// maxFlowPasses bounds fixpoint iteration defensively. The lattice is
// finite and in-states grow monotonically, so real functions converge in
// a handful of passes; the cap only guards against a transfer-function
// bug looping forever.
const maxFlowPasses = 64

// solveForward runs transfer to fixpoint over g and returns the merged
// state at g's virtual exit (the join over every return path). Blocks no
// path reaches keep a nil in-state and are never reported from.
func solveForward(g *funcCFG, transfer transferFunc) absState {
	in := map[*cfgBlock]absState{g.entry: {}}
	work := []*cfgBlock{g.entry}
	queued := map[*cfgBlock]bool{g.entry: true}
	for pass := 0; len(work) > 0 && pass < maxFlowPasses*len(g.blocks); pass++ {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := in[blk].clone()
		for _, n := range blk.nodes {
			transfer(n, out, false)
		}
		for _, succ := range blk.succs {
			if in[succ] == nil {
				in[succ] = out.clone()
			} else if !joinInto(in[succ], out) {
				continue
			}
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	// Reporting pass: once per reachable block, from the converged state.
	for _, blk := range g.blocks {
		st := in[blk]
		if st == nil {
			continue
		}
		st = st.clone()
		for _, n := range blk.nodes {
			transfer(n, st, true)
		}
	}
	exit := in[g.exit]
	if exit == nil {
		exit = absState{}
	}
	return exit
}

// --- tracked value keys ---

// flowKey canonicalizes an expression into a state key: identifiers
// resolve to their object (so shadowed names do not collide) and selector
// chains extend the base key with field names ("b.total"). Expressions
// the engine does not track — index loads, call results, literals —
// return "".
func flowKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if v, ok := obj.(*types.Var); ok {
			return fmt.Sprintf("v%p", v)
		}
		return ""
	case *ast.SelectorExpr:
		base := flowKey(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// killDerived removes every key rooted at k (k itself and k's fields):
// assigning to a variable invalidates facts about its fields.
func killDerived(st absState, k string) {
	delete(st, k)
	prefix := k + "."
	for key := range st {
		if len(key) > len(prefix) && key[:len(prefix)] == prefix {
			delete(st, key)
		}
	}
}

// eachFuncBody visits every function body in the package exactly once:
// declared functions and methods, plus each function literal as its own
// unit (the engine is intraprocedural; a literal's captured variables are
// not tracked across the closure boundary).
func eachFuncBody(files []*ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, file := range files {
		var enclosing *ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = n
				if n.Body != nil {
					fn(n, nil, n.Body)
				}
			case *ast.FuncLit:
				fn(enclosing, n, n.Body)
			}
			return true
		})
	}
}

// pathInScope reports whether pkgPath matches any scope substring; an
// empty scope matches everything (mirrors trunccast's convention).
func pathInScope(scope []string, pkgPath string) bool {
	return truncInScope(scope, pkgPath)
}

// recvTypeName returns the bare name of a method's receiver type (through
// one pointer), or "" for functions.
func recvTypeName(decl *ast.FuncDecl, info *types.Info) string {
	if decl == nil || decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	tv, ok := info.Types[decl.Recv.List[0].Type]
	if !ok {
		return ""
	}
	return namedTypeName(tv.Type)
}

// namedTypeName resolves t (through one pointer) to its named type's
// bare name, or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// ExportedDoc flags exported package-level identifiers — functions,
// methods on exported types, types, consts, and vars — that carry no doc
// comment, plus packages with no package comment at all. The
// observability and serving layers are operator-facing API surface: an
// undocumented exported name there is a gap in the operations story, not
// a style nit.
//
// Grouped const/var blocks are treated leniently: a doc comment on the
// block (or on the individual spec) covers every name inside it,
// matching how the standard library documents enum-like groups. Types
// always need their own comment, even inside a grouped declaration.
//
// Unlike trunccast's TruncScope, an empty Config.DocScope disables the
// analyzer entirely rather than widening it to every package: the doc
// bar is opt-in per package tree, and the golden corpora of the other
// analyzers must not be forced to document their deliberately buggy
// exports.
var ExportedDoc = &Analyzer{
	Name: "exporteddoc",
	Doc:  "exported identifiers and packages in the documented API surface need doc comments",
	Run:  runExportedDoc,
}

func runExportedDoc(pass *Pass) {
	if !docInScope(pass.Config.DocScope, pass.Pkg.Path()) {
		return
	}
	checkPackageDoc(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
	}
}

// docInScope reports whether pkgPath is covered by the DocScope list.
// Empty scope means no package is checked (see the ExportedDoc doc).
func docInScope(scope []string, pkgPath string) bool {
	for _, s := range scope {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

// checkPackageDoc reports when no file of the package carries a package
// comment. The finding lands on the package clause of the first file in
// filename order so the position is deterministic.
func checkPackageDoc(pass *Pass) {
	files := make([]*ast.File, len(pass.Files))
	copy(files, pass.Files)
	sort.Slice(files, func(i, j int) bool {
		return pass.Fset.Position(files[i].Package).Filename < pass.Fset.Position(files[j].Package).Filename
	})
	for _, f := range files {
		if f.Doc.Text() != "" {
			return
		}
	}
	if len(files) > 0 {
		pass.Reportf(files[0].Name.Pos(), "package %s has no package doc comment", pass.Pkg.Name())
	}
}

// checkFuncDoc reports exported functions and exported methods on
// exported types that lack a doc comment. Methods on unexported types
// are skipped: they are unreachable outside the package, so godoc never
// shows them.
func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc.Text() != "" {
		return
	}
	if d.Recv != nil {
		recv := receiverTypeName(d.Recv)
		if recv == "" || !ast.IsExported(recv) {
			return
		}
		pass.Reportf(d.Name.Pos(), "exported method (%s).%s has no doc comment", recv, d.Name.Name)
		return
	}
	pass.Reportf(d.Name.Pos(), "exported function %s has no doc comment", d.Name.Name)
}

// checkGenDoc reports undocumented exported names in a type, const, or
// var declaration. A doc comment on a const/var block covers the whole
// block; a type spec needs its own comment unless it is the sole spec of
// a documented declaration.
func checkGenDoc(pass *Pass, d *ast.GenDecl) {
	declDoc := d.Doc.Text() != ""
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if s.Doc.Text() != "" || (len(d.Specs) == 1 && declDoc) {
				continue
			}
			pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
		case *ast.ValueSpec:
			if declDoc || s.Doc.Text() != "" {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment", genDeclKind(d), name.Name)
				}
			}
		}
	}
}

// genDeclKind names a GenDecl's keyword for findings ("const", "var").
func genDeclKind(d *ast.GenDecl) string {
	return d.Tok.String()
}

// receiverTypeName unwraps a method receiver to its base type name,
// looking through pointers and type-parameter instantiations.
func receiverTypeName(recv *ast.FieldList) string {
	if len(recv.List) != 1 {
		return ""
	}
	expr := recv.List[0].Type
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// This golden corpus for the exporteddoc analyzer deliberately has no
// package comment: the blank line below detaches this comment group from
// the package clause, so the package-level finding fires.

package exporteddoc // want `\[exporteddoc\] package exporteddoc has no package doc comment`

// Documented carries a doc comment: no finding.
func Documented() {}

func Undocumented() {} // want `\[exporteddoc\] exported function Undocumented has no doc comment`

func unexported() {} // unexported: no finding

// Widget is a documented exported type.
type Widget struct{}

// Spin is documented: no finding.
func (w *Widget) Spin() {}

func (w *Widget) Stop() {} // want `\[exporteddoc\] exported method \(Widget\)\.Stop has no doc comment`

type gadget struct{}

// Run is exported but its receiver type is not: godoc never shows it.
func (g gadget) Run() {}

type Naked struct{} // want `\[exporteddoc\] exported type Naked has no doc comment`

// Grouped types need per-spec comments; this block comment is not enough.
type (
	// Inner is documented: no finding.
	Inner struct{}
	Outer struct{} // want `\[exporteddoc\] exported type Outer has no doc comment`
)

// A block doc comment covers every const in the group.
const (
	CoveredA = 1
	CoveredB = 2
)

const LoneConst = 3 // want `\[exporteddoc\] exported const LoneConst has no doc comment`

var Bare int // want `\[exporteddoc\] exported var Bare has no doc comment`

// DocumentedVar is documented: no finding.
var DocumentedVar int

var (
	// SpecDoc has a per-spec doc comment: no finding.
	SpecDoc  int
	BareSpec int // want `\[exporteddoc\] exported var BareSpec has no doc comment`
)

func use() { unexported(); gadget{}.Run(); use() }

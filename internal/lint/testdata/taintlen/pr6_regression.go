// Regression fixtures: the exact pre-fix shapes of the two PR 6
// CVE-style bugs in the entropy codec, plus their fixed counterparts.
// taintlen must flag both pre-fix shapes and stay quiet on the fixes —
// this file is the analyzer's reason to exist.
package taintlen

import (
	"encoding/binary"
	"errors"
	"io"
)

// preFixGapDecode is the entropy gap off-by-one (fixed in 429543e): the
// guard admits gap == hi-pos-1, after which pos advances to exactly hi
// and out[pos] indexes one past the end. The index is written without
// ever being bounded itself, only the gap was — and arithmetic over a
// loop-carried variable does not inherit the gap's bound.
func preFixGapDecode(br *BitReader, out []float32, hi int) error {
	pos := 0
	for pos < hi {
		gap := br.ReadBits(8)
		if gap >= uint64(hi-pos) {
			return errors.New("gap out of range")
		}
		pos += 1 + int(gap)
		out[pos] = 1 // want `untrusted value "pos" .* indexes out`
		pos++
	}
	return nil
}

// fixedGapDecode re-bounds the position itself after advancing — the
// shipped fix's shape. No finding.
func fixedGapDecode(br *BitReader, out []float32, hi int) error {
	pos := 0
	for pos < hi {
		gap := br.ReadBits(8)
		if gap >= uint64(hi-pos) {
			return errors.New("gap out of range")
		}
		pos += 1 + int(gap)
		if pos >= hi {
			return errors.New("position out of range")
		}
		out[pos] = 1 // explicitly re-bounded after advancing: no finding
		pos++
	}
	return nil
}

// preFixPayloadSum is the forged-payload-sum allocation DoS (fixed in
// 429543e): each chunk length is individually capped, but the sum of
// 2^16 capped lengths is still unbounded — per-item checks do not bound
// an accumulator, so the make is driven by attacker-controlled bytes.
func preFixPayloadSum(r io.Reader, hdr []byte, nChunks int) ([]byte, error) {
	payloadBytes := 0
	off := 0
	for i := 0; i < nChunks; i++ {
		ln := binary.LittleEndian.Uint32(hdr[off:])
		off += 4
		if ln > 1<<20 {
			return nil, errors.New("chunk too large")
		}
		payloadBytes += int(ln)
	}
	buf := make([]byte, payloadBytes) // want `untrusted value "payloadBytes" .* sizes make`
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// fixedPayloadSum bounds the accumulator itself on every step — the
// shipped fix's shape. No finding.
func fixedPayloadSum(r io.Reader, hdr []byte, nChunks int) ([]byte, error) {
	var payloadBytes int64
	off := 0
	for i := 0; i < nChunks; i++ {
		ln := binary.LittleEndian.Uint32(hdr[off:])
		off += 4
		if ln > 1<<20 {
			return nil, errors.New("chunk too large")
		}
		payloadBytes += int64(ln)
		if payloadBytes > 1<<30 {
			return nil, errors.New("payload too large")
		}
	}
	buf := make([]byte, payloadBytes) // the sum itself is bounded each step: no finding
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

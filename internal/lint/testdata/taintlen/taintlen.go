// Package taintlen is a golden test corpus for the taintlen analyzer.
package taintlen

import (
	"encoding/binary"
	"io"

	"stwave/internal/scratch"
)

func unboundedMake(hdr []byte) []float64 {
	n := binary.LittleEndian.Uint32(hdr)
	return make([]float64, n) // want `\[taintlen\] untrusted value "n" \(from encoding/binary\.Uint32\) sizes make`
}

func boundedMake(hdr []byte) []float64 {
	n := binary.LittleEndian.Uint32(hdr)
	if n > 1<<20 {
		return nil
	}
	return make([]float64, n) // bounded above: no finding
}

func unboundedIndex(hdr []byte, out []float64) {
	i := binary.LittleEndian.Uint16(hdr)
	out[i] = 1 // want `untrusted value "i" \(from encoding/binary\.Uint16\) indexes out`
}

func unboundedReslice(hdr, payload []byte) []byte {
	n := int(binary.LittleEndian.Uint32(hdr))
	return payload[:n] // want `untrusted value "n" \(from encoding/binary\.Uint32\) bounds a reslice of payload`
}

func boundedReslice(hdr, payload []byte) []byte {
	n := int(binary.LittleEndian.Uint32(hdr))
	if n > len(payload) {
		return nil
	}
	return payload[:n] // bounded against the buffer: no finding
}

func cappedByMin(hdr []byte) []byte {
	n := int(binary.LittleEndian.Uint32(hdr))
	return make([]byte, min(n, 4096)) // min caps the size: no finding
}

func maskedIsClean(hdr []byte, out []float64) {
	i := binary.LittleEndian.Uint64(hdr) & 0x3f
	out[i] = 1 // constant mask bounds the index: no finding
}

func constStepStaysChecked(hdr []byte) []byte {
	n := int(binary.LittleEndian.Uint32(hdr))
	if n > 1024 {
		return nil
	}
	return make([]byte, 4*n+16) // one constant step cannot break the proven bound: no finding
}

func unboundedCopyN(w io.Writer, r io.Reader, hdr []byte) {
	n := binary.LittleEndian.Uint64(hdr)
	io.CopyN(w, r, int64(n)) // want `untrusted value "int64\(n\)" \(from encoding/binary\.Uint64\) sizes io\.CopyN`
}

func unboundedScratch(hdr []byte) []float64 {
	n := int(binary.LittleEndian.Uint32(hdr))
	return scratch.Floats(n) // want `untrusted value "n" \(from encoding/binary\.Uint32\) sizes a scratch\.Floats buffer`
}

// BitReader mimics the entropy decoder's bit reader; its Read* methods
// are configured as taint sources.
type BitReader struct{ bits uint64 }

// ReadBits yields n raw bits; inside the reader's own methods the
// primitive reads are the implementation, not a source.
func (b *BitReader) ReadBits(n int) uint64 { return b.bits & (1<<n - 1) }

// ReadPair is exempt from its own ReadBits: no finding on the internal
// make below.
func (b *BitReader) ReadPair() []uint64 {
	n := b.ReadBits(4)
	return make([]uint64, n)
}

func unboundedFromReader(br *BitReader, out []uint64) {
	n := br.ReadBits(16)
	out[n] = 1 // want `untrusted value "n" \(from BitReader\.ReadBits\) indexes out`
}

func boundedFromReader(br *BitReader, out []uint64) {
	n := br.ReadBits(16)
	if n >= uint64(len(out)) {
		return
	}
	out[n] = 1 // bounded against the buffer: no finding
}

// Hdr mimics a decoded container header; its integer fields are
// configured as taint sources.
type Hdr struct {
	Total int
	Name  string
}

func unboundedHeaderField(h *Hdr) []byte {
	return make([]byte, h.Total) // want `untrusted value "h\.Total" \(from header field Hdr\.Total\) sizes make`
}

func boundedHeaderField(h *Hdr) []byte {
	if h.Total < 0 || h.Total > 1<<20 {
		return nil
	}
	return make([]byte, h.Total) // range-checked: no finding
}

func localStructIsClean() []byte {
	h := &Hdr{Total: 64}
	return make([]byte, h.Total) // locally built header, fields trusted: no finding
}

func zeroValueIsClean() []byte {
	var h Hdr
	h.Total = 32
	return make([]byte, h.Total) // zero value plus trusted store: no finding
}

func loopBoundIsClean(hdr []byte, out []float64) {
	n := int(binary.LittleEndian.Uint32(hdr))
	for i := 0; i < n && i < len(out); i++ {
		out[i] = 0 // the loop condition bounds i: no finding
	}
}

func suppressed(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	return make([]byte, n) //stlint:ignore taintlen corpus demonstrates suppression
}

// Package lockval is a golden test corpus for the lockval analyzer.
package lockval

import "sync"

// Guarded embeds a mutex by value, so copying a Guarded copies the lock.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Nested embeds Guarded, so the lock travels transitively.
type Nested struct {
	g Guarded
}

func byValueParam(g Guarded) { // want `\[lockval\] parameter g passes lock by value`
	_ = g.n
}

func (g Guarded) valueReceiver() int { // want `\[lockval\] receiver g passes lock by value`
	return g.n
}

func (g *Guarded) pointerReceiver() int { // pointer receiver: no finding
	return g.n
}

func pointerParam(g *Guarded) { // no finding
	_ = g.n
}

func nestedParam(n Nested) { // want `\[lockval\] parameter n passes lock by value`
	_ = n.g.n
}

func send(ch chan Guarded, g *Guarded) {
	ch <- *g // want `\[lockval\] channel send copies .*Guarded by value`
}

func mapStore(m map[string]Guarded, g *Guarded) {
	m["k"] = *g // want `\[lockval\] assignment copies .*Guarded by value`
}

func mapLoad(m map[string]Guarded) int {
	g := m["k"] // want `\[lockval\] assignment copies .*Guarded by value`
	return g.n
}

func rangeCopy(s []Guarded) int {
	total := 0
	for _, g := range s { // want `\[lockval\] range clause copies .*Guarded`
		total += g.n
	}
	return total
}

func rangeByIndex(s []Guarded) int {
	total := 0
	for i := range s { // no finding
		total += s[i].n
	}
	return total
}

func freshValue() *Guarded {
	g := Guarded{} // composite literal is a fresh value: no finding
	return &g
}

func callArg(g Guarded) { // want `\[lockval\] parameter g passes lock by value`
	byValueParam(g) // want `\[lockval\] call passes .*Guarded by value`
}

var global Guarded

func returnCopy() Guarded {
	return global // want `\[lockval\] return copies .*Guarded by value`
}

func compositeCapture(g *Guarded) []Guarded {
	return []Guarded{*g} // want `\[lockval\] composite literal copies .*Guarded by value`
}

func suppressedCopy(g *Guarded) {
	snapshot := *g //stlint:ignore lockval snapshot taken while holding the lock in the caller
	_ = snapshot.n
}

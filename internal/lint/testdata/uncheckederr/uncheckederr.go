// Package uncheckederr is a golden test corpus for the uncheckederr
// analyzer. Comments of the form `// want` assert expected findings.
package uncheckederr

import (
	"encoding/binary"
	"io"
	"os"
)

func discardStmt(name string) {
	os.Remove(name) // want `\[uncheckederr\] discarded error from os\.Remove`
}

func discardMethod(f *os.File) {
	f.Sync() // want `\[uncheckederr\] discarded error from \(\*os\.File\)\.Sync`
}

func blankAssign(w io.Writer) {
	_ = binary.Write(w, binary.LittleEndian, uint32(1)) // want `\[uncheckederr\] error from encoding/binary\.Write discarded with blank identifier`
}

func blankTuple(name string) {
	f, _ := os.Create(name) // want `\[uncheckederr\] error from os\.Create discarded with blank identifier`
	defer f.Close()
}

func overwritten(w io.Writer) error {
	err := binary.Write(w, binary.LittleEndian, uint32(1))
	err = binary.Write(w, binary.LittleEndian, uint32(2)) // want `\[uncheckederr\] error from encoding/binary\.Write assigned to err is overwritten before it is read`
	return err
}

func checkedBetween(w io.Writer) error {
	err := binary.Write(w, binary.LittleEndian, uint32(1))
	if err != nil {
		return err
	}
	err = binary.Write(w, binary.LittleEndian, uint32(2)) // read intervened: no finding
	return err
}

func checkedInline(name string) error {
	if err := os.Remove(name); err != nil { // no finding
		return err
	}
	return nil
}

func deferredCloseExempt(f *os.File) {
	defer f.Close() // defers are deferclose's concern: no finding
}

func unwatchedPackage(name string) {
	print(name) // builtin, not watched: no finding
}

func suppressed(name string) {
	os.Remove(name) //stlint:ignore uncheckederr removal of a best-effort temp file
}

// Package scratchpool is a golden test corpus for the scratchpool
// analyzer.
package scratchpool

import (
	"errors"

	"stwave/internal/scratch"
)

var errTest = errors.New("test")

func use(buf []float64) {
	for i := range buf {
		buf[i] = 0
	}
}

func balanced(n int) float64 {
	buf := scratch.Floats(n)
	s := 0.0
	for i := range buf {
		s += buf[i]
	}
	scratch.PutFloats(buf)
	return s
}

func leakOnError(n int, bad bool) error {
	buf := scratch.Floats(n) // want `scratch buffer "buf" is not returned to the pool on every path`
	if bad {
		return errTest // early return without a Put
	}
	scratch.PutFloats(buf)
	return nil
}

func leakEntirely(n int) {
	buf := scratch.Uint64s(n) // want `scratch buffer "buf" is not returned to the pool on every path`
	for i := range buf {
		buf[i] = uint64(i)
	}
}

func deferredPut(n int) {
	buf := scratch.Floats(n)
	defer scratch.PutFloats(buf)
	use(buf) // lending workspace to a callee is not an escape
}

func deferredClosurePut(n int, bad bool) error {
	buf := scratch.Floats(n)
	defer func() { scratch.PutFloats(buf) }()
	if bad {
		return errTest // the deferred closure still puts: no finding
	}
	use(buf)
	return nil
}

func panicPathIsExempt(n int, bad bool) {
	buf := scratch.Floats(n)
	if bad {
		panic("bad") // crash path may drop the buffer: no finding
	}
	scratch.PutFloats(buf)
}

func useAfterPut(n int) float64 {
	buf := scratch.Floats(n)
	scratch.PutFloats(buf)
	return buf[0] // want `scratch buffer "buf" is used after being returned to the pool`
}

func doublePut(n int) {
	buf := scratch.Floats(n)
	scratch.PutFloats(buf)
	scratch.PutFloats(buf) // want `scratch buffer "buf" is returned to the pool twice \(double put\)`
}

func deferAndPut(n int) {
	buf := scratch.Floats(n)
	defer scratch.PutFloats(buf)
	use(buf)
	scratch.PutFloats(buf) // want `scratch buffer "buf" is returned to the pool here and again by a deferred Put \(double put\)`
}

type holder struct{ data []float64 }

func storeEscapes(h *holder, n int) {
	buf := scratch.Floats(n)
	use(buf)
	h.data = buf // ownership handed to the holder: no finding
}

func returnEscapes(n int) []float64 {
	buf := scratch.Floats(n)
	return buf[:n/2] // returning a view hands ownership out: no finding
}

func directHandoff(n int) {
	use(scratch.Floats(n)) // result handed straight to the callee: no finding
}

func rename(n int) {
	buf := scratch.Floats(n)
	b2 := buf
	scratch.PutFloats(b2) // renamed ownership, put under the new name: no finding
}

func resliceKeeps(n int) {
	buf := scratch.Floats(n)
	buf = buf[:n/2]
	scratch.PutFloats(buf) // self-reslice keeps ownership: no finding
}

func putForeign(data []float64) {
	scratch.PutFloats(data) // returning a foreign buffer is documented as safe: no finding
}

func suppressedLeak(n int, bad bool) {
	buf := scratch.Floats(n) //stlint:ignore scratchpool corpus demonstrates suppression
	if bad {
		return
	}
	scratch.PutFloats(buf)
}

// Package budgetowner is a golden test corpus for the budgetowner
// analyzer. The test configures Owner as the package's sole budget
// owner.
package budgetowner

import (
	"runtime"

	"stwave/internal/par"
)

// Owner is the configured budget owner: it may resolve the machine
// budget and hand shares down. No findings.
func Owner(data []float64, requested int) {
	workers := par.Workers(requested)
	outer, inner := par.Split(workers, 2)
	stageShare(data, outer)
	stageSplit(data, inner)
}

func stageShare(data []float64, workers int) {
	par.For(len(data), workers, 64, func(start, end int) {}) // spends the share it was handed: no finding
}

func stageSplit(data []float64, workers int) {
	sub, _ := par.Split(workers, 4) // subdividing a share is how stages nest: no finding
	par.For(len(data), sub, 1, func(start, end int) {})
}

func stageClosure(data []float64, workers int) {
	run := func() {
		par.For(len(data), workers, 1, func(start, end int) {}) // captured share: no finding
	}
	run()
}

func rogueResolver(data []float64) {
	workers := par.Workers(0) // want `par\.Workers resolves a worker budget outside a budget owner`
	_ = workers
	_ = data
}

func rogueNumCPU() int {
	return runtime.NumCPU() // want `runtime\.NumCPU resolves a worker budget outside a budget owner`
}

func hardcodedBudget(data []float64) {
	par.For(len(data), 8, 1, func(start, end int) {}) // want `hardcoded worker budget "8"`
}

func serialIsFine(data []float64) {
	par.For(len(data), 1, 1, func(start, end int) {}) // explicitly serial: no finding
}

type opts struct{ W int }

func opaqueBudget(data []float64, o opts) {
	par.For(len(data), o.W, 1, func(start, end int) {}) // want `worker budget "o\.W" is not a share handed in from the budget owner`
}

func legacyStage(data []float64) {
	par.For(len(data), 4, 1, func(start, end int) {}) //stlint:ignore budgetowner corpus demonstrates suppression
}

// Package ctxflow is a golden test corpus for the ctxflow analyzer.
package ctxflow

import "context"

func stage(ctx context.Context) error {
	return ctx.Err()
}

var rootCtx = context.Background() // package scope: legal

func RunCtx(ctx context.Context) error {
	return stage(ctx) // threads the incoming ctx: no finding
}

func DerivedCtx(ctx context.Context) error {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	return stage(c) // derived from the incoming ctx: no finding
}

func MintsBackground(ctx context.Context) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return stage(context.Background()) // want `context\.Background inside a function that already has a ctx`
}

func DrainCtx() { // want `function DrainCtx is named as a context variant but takes no context\.Context`
}

func IgnoresCtx(ctx context.Context, n int) int { // want `function IgnoresCtx takes a context\.Context but never threads it anywhere`
	return n * 2
}

func PassesWrongCtx(ctx context.Context) error {
	if ctx.Err() != nil {
		return nil
	}
	return stage(rootCtx) // want `context argument "rootCtx" is not derived from this function's incoming ctx`
}

// Run is a ctx-less compatibility shim: minting a root context here is
// the documented pattern. No finding.
func Run(n int) error {
	_ = n
	return RunCtx(context.Background())
}

type task struct{ ctx context.Context }

func (t *task) runCtx(ctx context.Context) error {
	if ctx.Err() != nil {
		return nil
	}
	return stage(t.ctx) // stored ctx was threaded at the store: no finding
}

func ClosureCtx(ctx context.Context) error {
	run := func(c context.Context) error { return stage(c) }
	return run(ctx) // closure parameter threads the ctx: no finding
}

func LegacyCtx(ctx context.Context) error {
	if ctx.Err() != nil {
		return nil
	}
	return stage(context.TODO()) //stlint:ignore ctxflow corpus demonstrates suppression
}

// Package floateq is a golden test corpus for the floateq analyzer.
package floateq

import "math"

func equal(a, b float64) bool {
	return a == b // want `\[floateq\] == on float64 operands`
}

func notEqual(a, b float32) bool {
	return a != b // want `\[floateq\] != on float32 operands`
}

type Coeff float64

func namedFloat(a, b Coeff) bool {
	return a == b // want `\[floateq\] == on .*Coeff operands`
}

func literalZero(x float64) bool {
	return x == 0 // want `\[floateq\] == on float64 operands`
}

func nanIdiom(x float64) bool {
	return x != x // self-comparison is the exact-bit NaN test: no finding
}

func exactBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) // integer compare: no finding
}

func epsilon(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps // relational, not equality: no finding
}

func ints(a, b int) bool {
	return a == b // no finding
}

func constFolded() bool {
	return 1.0 == 2.0 // constant-folded: no finding
}

func switchOnFloat(x float64) int {
	switch x { // want `\[floateq\] switch on float64 compares cases with ==`
	case 0:
		return 0
	}
	return 1
}

func suppressedExact(a, b float64) bool {
	return a == b //stlint:ignore floateq golden-value comparison is this helper's documented contract
}

// Package deferclose is a golden test corpus for the deferclose analyzer.
package deferclose

import (
	"io"
	"os"

	"stwave/internal/storage"
)

func leaks(p string) (int64, error) {
	f, err := os.Open(p) // want `\[deferclose\] os\.Open result f is never closed`
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func leakedContainer(p string) (int, error) {
	r, err := storage.OpenContainer(p) // want `\[deferclose\] stwave/internal/storage\.OpenContainer result r is never closed`
	if err != nil {
		return 0, err
	}
	return r.NumWindows(), nil
}

func discardedHandle(p string) {
	_, _ = os.Open(p) // want `\[deferclose\] os\.Open result is discarded without Close`
}

func deferred(p string) error {
	f, err := os.Open(p) // no finding
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Stat()
	return err
}

func deferredInClosure(p string) error {
	f, err := os.Open(p) // no finding: closure closes it
	if err != nil {
		return err
	}
	defer func() {
		f.Close()
	}()
	return nil
}

func explicitClose(p string) error {
	f, err := os.Create(p) // no finding
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func handedOff(p string) (io.ReadCloser, error) {
	f, err := os.Open(p) // no finding: ownership transfers to the caller
	if err != nil {
		return nil, err
	}
	return f, nil
}

func passedAlong(p string) ([]byte, error) {
	f, err := os.Open(p) // no finding: escape via call argument is a hand-off
	if err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}

func suppressedLeak(p string) *os.File {
	f, _ := os.Open(p) //stlint:ignore deferclose,uncheckederr process-lifetime handle, closed by the OS at exit
	return f
}

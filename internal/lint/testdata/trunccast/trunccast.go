// Package trunccast is a golden test corpus for the trunccast analyzer.
package trunccast

import "encoding/binary"

func unguardedLen(b []byte, xs []float64) {
	binary.LittleEndian.PutUint32(b, uint32(len(xs))) // want `\[trunccast\] uint32\(len\(xs\)\) narrows int without a preceding bounds guard`
}

func guardedLen(b []byte, xs []float64) bool {
	if len(xs) > 1<<32-1 {
		return false
	}
	binary.LittleEndian.PutUint32(b, uint32(len(xs))) // guarded above: no finding
	return true
}

func signDrop(b []byte, n int64) {
	binary.LittleEndian.PutUint64(b, uint64(n)) // want `\[trunccast\] uint64\(n\) drops the sign of int64`
}

func guardedSignDrop(b []byte, n int64) {
	if n < 0 {
		panic("negative")
	}
	binary.LittleEndian.PutUint64(b, uint64(n)) // guarded above: no finding
}

func wrapNegative(u uint64) int64 {
	return int64(u) // want `\[trunccast\] int64\(u\) can wrap uint64 negative`
}

func guardedWrap(u uint64) int64 {
	if u > 1<<62 {
		return 0
	}
	return int64(u) // guarded above: no finding
}

func masked(n int) byte {
	return byte(n & 0xff) // mask bounds the value: no finding
}

func constantFits() uint16 {
	return uint16(512) // constant in range: no finding
}

func widening(n int32) int64 {
	return int64(n) // widening preserves every value: no finding
}

func unsignedWidening(n uint32) int {
	return int(n) // uint32 always fits in int64-wide int: no finding
}

func lenToUint64(b []byte, xs []float64) {
	binary.LittleEndian.PutUint64(b, uint64(len(xs))) // len is non-negative and fits: no finding
}

func capToUint64(xs []float64) uint64 {
	return uint64(cap(xs)) // cap is non-negative and fits: no finding
}

func minBounded(u uint64) int {
	return int(min(u, 1<<31)) // min with a fitting constant bounds the value: no finding
}

func minBoundedSigned(n int64) uint64 {
	return uint64(min(n, 1<<31)) // want `\[trunccast\] uint64\(min\(n, 1 << 31\)\) drops the sign of int64`
}

func minConstTooBig(u uint64) uint32 {
	return uint32(min(u, 1<<40)) // want `\[trunccast\] uint32\(min\(u, 1 << 40\)\) narrows uint64`
}

func suppressedReinterpret(n int32) uint32 {
	return uint32(n) //stlint:ignore trunccast two's-complement bit reinterpretation is the wire format
}

func floatNarrow(v float64) float32 {
	return float32(v) // want `\[trunccast\] float32\(v\) silently rounds float64`
}

func floatNarrowConstExact() float32 {
	return float32(1.5) // 1.5 is exactly representable at 32 bits: no finding
}

const inexact64 float64 = 0.1
const exact64 float64 = 1.5

func floatNarrowTypedConstInexact() float32 {
	return float32(inexact64) // want `\[trunccast\] float32\(inexact64\) silently rounds float64`
}

func floatNarrowTypedConstExact() float32 {
	return float32(exact64) // typed constant exactly representable at 32 bits: no finding
}

func floatWiden(v float32) float64 {
	return float64(v) // widening preserves every value: no finding
}

func floatSame(v float32) float32 {
	return float32(v) // same width: no finding
}

func suppressedRounding(v float64) float32 {
	return float32(v) //stlint:ignore trunccast the raw wire format is 32-bit by contract
}

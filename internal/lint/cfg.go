package lint

import (
	"go/ast"
	"go/types"
)

// This file builds the intraprocedural control-flow graphs the dataflow
// analyzers (taintlen, scratchpool) run over. One cfgBlock is a maximal
// straight-line sequence of statements and control-condition expressions;
// edges follow Go's structured control flow. The builder models if/else,
// for, range, switch (including fallthrough), type switch, select,
// labeled break/continue, return, and panic/os.Exit terminators. goto is
// the one construct it does not model: a function containing goto is
// marked unstructured and the flow analyzers skip it rather than guess.

// A cfgBlock is one straight-line run of AST nodes with its successor
// edges. Nodes are statements plus the condition expressions of the
// control statements that ended a predecessor block (if/for conditions,
// switch tags and case expressions), in execution order.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// A funcCFG is the control-flow graph of one function body. exit is a
// virtual empty block: every return statement and the fall-off end of the
// body flow into it, so a forward analysis reads the function's merged
// final state from exit's in-state. Blocks ending in panic or os.Exit do
// NOT reach exit — resources held there are reclaimed by the runtime, not
// by the function's normal epilogue.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock
	// unstructured is set when the body contains goto (or a labeled
	// statement used as a goto target); flow analyses should skip the
	// function instead of reporting from an incomplete graph.
	unstructured bool
}

type loopFrame struct {
	brk   *cfgBlock // break target
	cont  *cfgBlock // continue target (post block or loop head)
	label string    // non-empty for labeled loops/switches
}

type cfgBuilder struct {
	cfg   *funcCFG
	info  *types.Info
	loops []loopFrame
	// pendingLabel is the label of a LabeledStmt whose inner statement is
	// about to be built; the next loop/switch consumes it.
	pendingLabel string
}

// buildCFG constructs the CFG of one function body. info resolves
// identifiers so calls to the builtin panic and os.Exit can be treated as
// terminators.
func buildCFG(body *ast.BlockStmt, info *types.Info) *funcCFG {
	b := &cfgBuilder{cfg: &funcCFG{}, info: info}
	b.cfg.entry = b.newBlock()
	b.cfg.exit = &cfgBlock{}
	end := b.stmtList(body.List, b.cfg.entry)
	if end != nil {
		b.edge(end, b.cfg.exit)
	}
	b.cfg.blocks = append(b.cfg.blocks, b.cfg.exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

// stmtList builds a statement sequence starting in cur and returns the
// block control falls out of, or nil when every path terminated.
// Statements after a terminator are unreachable; they are still built
// (into a detached, predecessor-less block) so their nodes exist, but no
// state ever reaches them.
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, cur *cfgBlock) *cfgBlock {
	terminated := false
	for _, s := range stmts {
		if cur == nil {
			cur = b.newBlock() // detached: unreachable code
			terminated = true
		}
		cur = b.stmt(s, cur)
	}
	if terminated && cur != nil {
		// Control cannot actually leave an unreachable tail.
		return nil
	}
	return cur
}

// stmt builds one statement into cur and returns the block control flows
// out of (nil if the statement terminates every path).
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock) *cfgBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		join := b.newBlock()
		then := b.newBlock()
		b.edge(cur, then)
		if end := b.stmtList(s.Body.List, then); end != nil {
			b.edge(end, join)
		}
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els)
			if end := b.stmt(s.Else, els); end != nil {
				b.edge(end, join)
			}
		} else {
			b.edge(cur, join)
		}
		if len(predsOf(b.cfg, join)) == 0 {
			return nil // both branches terminated
		}
		return join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		if s.Post != nil {
			cont = b.newBlock()
			cont.nodes = append(cont.nodes, s.Post)
			b.edge(cont, head)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.loops = append(b.loops, loopFrame{brk: after, cont: cont, label: label})
		if end := b.stmtList(s.Body.List, body); end != nil {
			b.edge(end, cont)
		}
		b.loops = b.loops[:len(b.loops)-1]
		return after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		// The RangeStmt itself is the head node: transfer functions see
		// the range expression and the per-iteration key/value bindings.
		head.nodes = append(head.nodes, s)
		b.edge(cur, head)
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.loops = append(b.loops, loopFrame{brk: after, cont: head, label: label})
		if end := b.stmtList(s.Body.List, body); end != nil {
			b.edge(end, head)
		}
		b.loops = b.loops[:len(b.loops)-1]
		return after

	case *ast.SwitchStmt:
		return b.switchStmt(s.Init, s.Tag, s.Body, cur)

	case *ast.TypeSwitchStmt:
		return b.switchStmt(s.Init, nil, s.Body, cur, s.Assign)

	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock()
		b.loops = append(b.loops, loopFrame{brk: after, label: label})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(cur, blk)
			if cc.Comm != nil {
				blk.nodes = append(blk.nodes, cc.Comm)
			}
			if end := b.stmtList(cc.Body, blk); end != nil {
				b.edge(end, after)
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(s.Body.List) == 0 {
			return nil // select{} blocks forever
		}
		if len(predsOf(b.cfg, after)) == 0 {
			return nil
		}
		return after

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			return b.stmt(s.Stmt, cur)
		default:
			// A bare label is a goto target; the graph does not model it.
			b.cfg.unstructured = true
			return b.stmt(s.Stmt, cur)
		}

	case *ast.BranchStmt:
		return b.branchStmt(s, cur)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		b.edge(cur, b.cfg.exit)
		return nil

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, s)
		if isTerminatorCall(b.info, s.X) {
			return nil
		}
		return cur

	case *ast.EmptyStmt:
		return cur

	default:
		// Assign, Decl, IncDec, Defer, Go, Send: straight-line.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchStmt builds an expression or type switch: one block per case
// clause, all fed from the block that evaluated init and tag. extra
// carries a type switch's assign statement, evaluated with the tag.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, cur *cfgBlock, extra ...ast.Stmt) *cfgBlock {
	label := b.takeLabel()
	if init != nil {
		cur = b.stmt(init, cur)
	}
	if tag != nil {
		cur.nodes = append(cur.nodes, tag)
	}
	for _, e := range extra {
		cur.nodes = append(cur.nodes, e)
	}
	after := b.newBlock()
	b.loops = append(b.loops, loopFrame{brk: after, label: label})

	clauses := body.List
	heads := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		heads[i] = b.newBlock()
		b.edge(cur, heads[i])
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			heads[i].nodes = append(heads[i].nodes, e)
		}
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		end, fellThrough := b.clauseBody(cc.Body, heads[i])
		if end != nil {
			b.edge(end, after)
		}
		if fellThrough && i+1 < len(clauses) {
			// fallthrough enters the next clause's block; its case
			// expressions are re-seen, which only re-applies comparisons.
			b.edge(heads[i], heads[i+1])
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		b.edge(cur, after)
	}
	if len(predsOf(b.cfg, after)) == 0 {
		return nil
	}
	return after
}

// clauseBody builds one case clause body, reporting whether it ends in a
// fallthrough statement.
func (b *cfgBuilder) clauseBody(stmts []ast.Stmt, cur *cfgBlock) (end *cfgBlock, fellThrough bool) {
	if n := len(stmts); n > 0 {
		if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
			end = b.stmtList(stmts[:n-1], cur)
			return nil, end != nil
		}
	}
	return b.stmtList(stmts, cur), false
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt, cur *cfgBlock) *cfgBlock {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := b.findLoop(label, false); t != nil {
			b.edge(cur, t)
		} else {
			b.cfg.unstructured = true
		}
		return nil
	case "continue":
		if t := b.findLoop(label, true); t != nil {
			b.edge(cur, t)
		} else {
			b.cfg.unstructured = true
		}
		return nil
	case "fallthrough":
		// Handled by clauseBody; one outside a switch cannot compile.
		return nil
	default: // goto
		b.cfg.unstructured = true
		return nil
	}
}

// findLoop resolves a break/continue target. For continue, only loop
// frames (those with a continue target) qualify.
func (b *cfgBuilder) findLoop(label string, wantCont bool) *cfgBlock {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if wantCont && f.cont == nil {
			continue
		}
		if label != "" && f.label != label {
			continue
		}
		if wantCont {
			return f.cont
		}
		return f.brk
	}
	return nil
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// predsOf counts predecessors by scanning successor lists; the builder
// only needs it for "did any path reach this join" checks.
func predsOf(cfg *funcCFG, blk *cfgBlock) []*cfgBlock {
	var preds []*cfgBlock
	for _, c := range cfg.blocks {
		for _, s := range c.succs {
			if s == blk {
				preds = append(preds, c)
			}
		}
	}
	return preds
}

// isTerminatorCall reports whether e is a call that never returns: the
// builtin panic, or os.Exit / runtime.Goexit / log.Fatal*.
func isTerminatorCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := info.Uses[id].(*types.Builtin); ok {
			return bi.Name() == "panic"
		}
	}
	fn := calleeFunc(info, call)
	switch funcPackagePath(fn) {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
	}
	return false
}

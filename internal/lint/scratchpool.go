package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ScratchPool is the dataflow analyzer for scratch-arena discipline:
// every buffer taken from internal/scratch (Floats, Uint64s) must be
// returned (PutFloats, PutUint64s) on every path that reaches the
// function's exit — including early error returns — or have its
// ownership visibly handed off (stored into a struct, returned, sent on
// a channel, passed straight into a constructor). It also flags uses of
// a buffer after it was returned to the pool and double returns.
//
// Ownership model, tuned to this repository's conventions:
//
//   - buf := scratch.Floats(n) starts tracking; scratch.Floats(n) passed
//     directly as a call argument or stored into a field hands the
//     buffer off immediately and is not tracked (the callee/holder now
//     owns the Put, as in ingest's window recycling)
//   - passing a tracked buffer to a function call is NOT an escape: the
//     dominant pattern is lending workspace to a kernel and putting it
//     afterwards; likewise capture by a closure (par.For bodies)
//   - b2 := buf renames ownership (Put either, not both); buf = buf[:n]
//     keeps it; view := buf[:n] is a borrow (the original still owes the
//     Put); returning/sending/storing buf or a view of it escapes it
//   - defer scratch.PutFloats(buf) — directly or via a closure —
//     discharges the obligation on every path, including panics
//   - paths that end in panic/log.Fatal are exempt: the pool is a
//     cache, dropping a buffer on a crash path leaks nothing
//
// Put of an untracked slice is always allowed — the arena documents that
// returning foreign buffers is safe.
var ScratchPool = &Analyzer{
	Name: "scratchpool",
	Doc:  "scratch arena buffers must be returned to the pool on every exit path, never used after return",
	Run:  runScratchPool,
}

const (
	pLive     uint8 = 1 << iota // taken from the pool, not yet returned
	pReleased                   // returned to the pool
	pDeferred                   // a deferred Put will return it at exit
	pEscaped                    // ownership visibly handed off
)

func runScratchPool(pass *Pass) {
	eachFuncBody(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		f := &poolFlow{
			pass:   pass,
			getPos: map[string]token.Pos{},
			name:   map[string]string{},
		}
		g := buildCFG(body, pass.TypesInfo)
		if g.unstructured {
			return
		}
		exit := solveForward(g, f.transfer)
		for k, v := range exit {
			if v&pLive != 0 && v&(pDeferred|pEscaped) == 0 {
				pos, ok := f.getPos[k]
				if !ok {
					continue
				}
				f.pass.Reportf(pos, "scratch buffer %q is not returned to the pool on every path (missing scratch.Put… or defer)", f.name[k])
			}
		}
	})
}

type poolFlow struct {
	pass   *Pass
	getPos map[string]token.Pos // key → position of the Get, for leak findings
	name   map[string]string    // key → source name, for messages
}

func (f *poolFlow) transfer(n ast.Node, st absState, report bool) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		f.assign(s, st, report)
	case *ast.DeclStmt:
		f.declStmt(s, st, report)
	case *ast.DeferStmt:
		f.deferred(s, st, report)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			f.escape(r, st)
		}
		f.scan(s, st, report)
	case *ast.SendStmt:
		f.escape(s.Value, st)
		f.scan(s, st, report)
	default:
		f.scan(n, st, report)
	}
}

func (f *poolFlow) declStmt(s *ast.DeclStmt, st absState, report bool) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) != len(vs.Names) {
			continue
		}
		for i, name := range vs.Names {
			f.bindOne(name, vs.Values[i], st, report)
		}
	}
}

func (f *poolFlow) assign(s *ast.AssignStmt, st absState, report bool) {
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 && (s.Tok == token.ASSIGN || s.Tok == token.DEFINE) {
		f.bindOne(s.Lhs[0], s.Rhs[0], st, report)
		return
	}
	f.scan(s, st, report)
}

// bindOne handles one lhs = rhs pair: Get tracking, rename, reslice, and
// field-store escapes.
func (f *poolFlow) bindOne(lhs, rhs ast.Expr, st absState, report bool) {
	info := f.pass.TypesInfo
	// Only a bare identifier can take over ownership; a store into a
	// field or element is a handoff (escape) instead.
	lk := ""
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		lk = flowKey(info, id)
	}
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && f.isGet(call) {
		for _, a := range call.Args {
			f.scan(a, st, report)
		}
		if lk != "" {
			killDerived(st, lk)
			st[lk] = pLive
			f.getPos[lk] = call.Pos()
			f.name[lk] = types.ExprString(lhs)
		}
		// Non-ident destination: the holder owns the Put now.
		return
	}
	if rk := identKey(info, rhs); rk != "" && st[rk]&pLive != 0 {
		if lk == rk {
			return
		}
		if lk != "" { // rename: ownership moves to the new name
			killDerived(st, lk)
			st[lk] = st[rk]
			f.getPos[lk] = f.getPos[rk]
			f.name[lk] = types.ExprString(lhs)
			st[rk] = pEscaped
			return
		}
		st[rk] = pEscaped // stored into a field/element: handed off
		f.scan(lhs, st, report)
		return
	}
	if lk != "" && lk == viewKey(info, rhs) && st[lk]&pLive != 0 {
		return // buf = buf[:n] keeps ownership
	}
	f.scan(rhs, st, report)
	f.scan(lhs, st, report)
	// Overwriting a variable that still holds a live buffer loses the
	// only reference; the live bit stays set so the exit check reports
	// the leak at the Get.
}

// deferred handles defer statements: a direct Put, or a closure that
// puts, discharges the obligation for the keys it returns.
func (f *poolFlow) deferred(s *ast.DeferStmt, st absState, report bool) {
	if f.isPut(s.Call) {
		for _, a := range s.Call.Args {
			k := viewKey(f.pass.TypesInfo, a)
			if k == "" {
				continue
			}
			if report && st[k]&pDeferred != 0 {
				f.pass.Reportf(s.Call.Pos(), "scratch buffer %q already has a deferred return to the pool", types.ExprString(a))
			}
			st[k] |= pDeferred
		}
		return
	}
	if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && f.isPut(call) {
				for _, a := range call.Args {
					if k := viewKey(f.pass.TypesInfo, a); k != "" {
						st[k] |= pDeferred
					}
				}
			}
			return true
		})
		return
	}
	f.scan(s, st, report)
}

// scan walks a node looking for Put calls, composite-literal escapes,
// and uses of already-returned buffers. It does not descend into
// function literals (separate flow units).
func (f *poolFlow) scan(n ast.Node, st absState, report bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if f.isPut(x) {
				f.put(x, st, report)
				return false
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				f.escape(v, st)
			}
		case *ast.Ident:
			f.mention(x, st, report)
		}
		return true
	})
}

// put applies Put semantics to a direct (non-deferred) call.
func (f *poolFlow) put(call *ast.CallExpr, st absState, report bool) {
	for _, a := range call.Args {
		f.scan(a, st, false) // sizes/indexes inside the arg, minus the mention itself
		k := viewKey(f.pass.TypesInfo, a)
		if k == "" {
			continue
		}
		v, tracked := st[k]
		if !tracked {
			continue // foreign buffer: documented as safe to Put
		}
		if report {
			switch {
			case v&pDeferred != 0:
				f.pass.Reportf(call.Pos(), "scratch buffer %q is returned to the pool here and again by a deferred Put (double put)", types.ExprString(a))
			case v&pReleased != 0 && v&pLive == 0:
				f.pass.Reportf(call.Pos(), "scratch buffer %q is returned to the pool twice (double put)", types.ExprString(a))
			}
		}
		st[k] = (v &^ pLive) | pReleased
	}
}

// escape marks e's root buffer (through slicing views) as handed off.
func (f *poolFlow) escape(e ast.Expr, st absState) {
	if k := viewKey(f.pass.TypesInfo, e); k != "" && st[k]&pLive != 0 {
		st[k] = pEscaped
	}
}

// mention flags a read of a buffer that was already returned to the pool
// on every path reaching this point.
func (f *poolFlow) mention(id *ast.Ident, st absState, report bool) {
	if !report {
		return
	}
	k := flowKey(f.pass.TypesInfo, id)
	if k == "" {
		return
	}
	v, tracked := st[k]
	if tracked && v&pReleased != 0 && v&(pLive|pDeferred) == 0 {
		f.pass.Reportf(id.Pos(), "scratch buffer %q is used after being returned to the pool", id.Name)
	}
}

// identKey returns the flow key of a bare identifier or selector chain
// (no slicing), or "".
func identKey(info *types.Info, e ast.Expr) string {
	switch inner := ast.Unparen(e).(type) {
	case *ast.Ident:
		return flowKey(info, inner)
	case *ast.SelectorExpr:
		return flowKey(info, inner)
	}
	return ""
}

// viewKey resolves e through any number of slice expressions to the key
// of the buffer it views, or "".
func viewKey(info *types.Info, e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		default:
			return identKey(info, e)
		}
	}
}

func (f *poolFlow) isGet(call *ast.CallExpr) bool {
	return scratchCallee(f.pass.TypesInfo, call, "Floats", "Uint64s")
}

func (f *poolFlow) isPut(call *ast.CallExpr) bool {
	return scratchCallee(f.pass.TypesInfo, call, "PutFloats", "PutUint64s")
}

func scratchCallee(info *types.Info, call *ast.CallExpr, names ...string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || !strings.HasSuffix(funcPackagePath(fn), "internal/scratch") {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands, and switches
// on floating-point values. Coefficient thresholding, error metrics, and
// recovery comparisons must be exact-bit (math.Float64bits) or
// tolerance-based; a raw float compare silently diverges once values pass
// through the lossy transform pipeline.
//
// Two comparisons are exempt: constant-folded expressions (both operands
// known at compile time) and self-comparison (x != x), the standard NaN
// test.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "==/!= on float operands; use math.Float64bits, an epsilon helper, or a documented suppression",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				xt, xOk := pass.TypesInfo.Types[n.X]
				yt, yOk := pass.TypesInfo.Types[n.Y]
				if !xOk || !yOk {
					return true
				}
				if !isFloat(xt.Type) && !isFloat(yt.Type) {
					return true
				}
				if xt.Value != nil && yt.Value != nil {
					return true // constant-folded; exact by construction
				}
				if types.ExprString(n.X) == types.ExprString(n.Y) {
					return true // x != x: the NaN idiom is exact-bit by definition
				}
				pass.Reportf(n.OpPos, "%s on %s operands; use math.Float64bits or an epsilon helper",
					n.Op, floatOperandType(xt.Type, yt.Type))
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[n.Tag]; ok && isFloat(tv.Type) {
					pass.Reportf(n.Switch, "switch on %s compares cases with ==; use explicit range tests", tv.Type)
				}
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

func floatOperandType(x, y types.Type) string {
	if isFloat(x) {
		return x.String()
	}
	return y.String()
}

package lint

import (
	"go/ast"
	"go/types"
)

// UncheckedErr flags error results that are silently lost at call sites of
// the packages whose errors guard on-disk integrity: the container store,
// the fault-injection harness, and the OS/binary-encoding layers they sit
// on. Three shapes are reported:
//
//   - a call used as a bare statement, discarding an error result
//   - an error result assigned to the blank identifier
//   - an error assigned to a variable that is overwritten by another
//     watched call before anything reads it
//
// Calls in defer statements are exempt: read-path defer Close is
// idiomatic, and write-path close handling is deferclose's concern.
var UncheckedErr = &Analyzer{
	Name: "uncheckederr",
	Doc:  "error results from storage/faultio/os/io/encoding-binary calls must not be discarded or overwritten unread",
	Run:  runUncheckedErr,
}

// watchedErrPackages are the packages whose returned errors protect
// container integrity. fmt and log are deliberately absent: best-effort
// terminal output may ignore errors.
var watchedErrPackages = map[string]bool{
	"os":                      true,
	"io":                      true,
	"encoding/binary":         true,
	"stwave/internal/storage": true,
	"stwave/internal/faultio": true,
}

// watchedErrCall reports whether call invokes a function or method from a
// watched package that returns an error, and at which result index.
func watchedErrCall(info *types.Info, call *ast.CallExpr) (fn *types.Func, errIdx int, ok bool) {
	fn = calleeFunc(info, call)
	if fn == nil || !watchedErrPackages[funcPackagePath(fn)] {
		return nil, -1, false
	}
	errIdx = errorResultIndex(info, call)
	if errIdx < 0 {
		return nil, -1, false
	}
	return fn, errIdx, true
}

func runUncheckedErr(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn, _, ok := watchedErrCall(pass.TypesInfo, call); ok {
					pass.Reportf(n.Pos(), "discarded error from %s", fn.FullName())
				}
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, n)
			case *ast.BlockStmt:
				checkErrOverwrites(pass, n)
			}
			return true
		})
	}
}

// checkBlankErrAssign reports `_ = f()` and `x, _ := f()` where the blank
// sits in the error result position of a watched call.
func checkBlankErrAssign(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, errIdx, ok := watchedErrCall(pass.TypesInfo, call)
	if !ok || errIdx >= len(assign.Lhs) {
		return
	}
	if id, ok := assign.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(assign.Pos(), "error from %s discarded with blank identifier", fn.FullName())
	}
}

// checkErrOverwrites walks one block's statement list and reports error
// variables that receive a watched call's error and are overwritten by
// another watched call before any intervening read. Nested blocks are
// handled by their own visit, so control flow that conditionally
// overwrites is never (falsely) reported.
func checkErrOverwrites(pass *Pass, block *ast.BlockStmt) {
	type write struct {
		stmtIdx int
		fn      *types.Func
	}
	pending := map[types.Object]write{}
	for i, stmt := range block.List {
		assign, ok := stmt.(*ast.AssignStmt)
		if !ok {
			continue
		}
		if len(assign.Rhs) != 1 {
			continue
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			continue
		}
		fn, errIdx, ok := watchedErrCall(pass.TypesInfo, call)
		if !ok || errIdx >= len(assign.Lhs) {
			continue
		}
		id, ok := assign.Lhs[errIdx].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if prev, ok := pending[obj]; ok {
			between := block.List[prev.stmtIdx+1 : i]
			if !readsObject(pass.TypesInfo, between, obj) &&
				!readsObjectExpr(pass.TypesInfo, assign.Rhs[0], obj) {
				pass.Reportf(assign.Pos(),
					"error from %s assigned to %s is overwritten before it is read (previous value came from %s)",
					fn.FullName(), id.Name, prev.fn.FullName())
			}
		}
		pending[obj] = write{stmtIdx: i, fn: fn}
	}
}

// readsObject reports whether any statement in stmts reads obj. Writes —
// idents in the left-hand side of an assignment — do not count as reads,
// but reads nested anywhere else (conditions, call arguments, nested
// blocks, closures) do.
func readsObject(info *types.Info, stmts []ast.Stmt, obj types.Object) bool {
	for _, s := range stmts {
		if readsObjectExpr(info, s, obj) {
			return true
		}
	}
	return false
}

func readsObjectExpr(info *types.Info, root ast.Node, obj types.Object) bool {
	found := false
	skip := map[*ast.Ident]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					skip[id] = true
				}
			}
		case *ast.Ident:
			if skip[n] {
				return true
			}
			if info.Uses[n] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TaintLen is the dataflow analyzer for the repository's core CVE class:
// an integer decoded from attacker-shaped bytes — a container header
// field, a codec block header, a bit-stream length — flowing into memory
// sizing or indexing without a proven bound. Both PR 6 security fixes
// (the entropy gap off-by-one panic and the forged-payload-sum allocation
// DoS) were instances of exactly this flow; the analyzer encodes the
// post-mortem discipline mechanically.
//
// Untrusted sources (configurable, see Config):
//
//   - encoding/binary byte-order reads (Uint16/Uint32/Uint64) and varint
//     decodes — the container/record header surface
//   - Read* methods of bit-reader types named in Config.TaintReaders
//     (e.g. entropy.BitReader), outside the reader's own methods
//   - integer fields read from decoded header struct types named in
//     Config.TaintStructs, unless the struct was visibly constructed in
//     the current function (composite literal, new, or var zero value)
//
// Sinks: make sizes, slice/array/string indexing and slice-expression
// bounds (reads and writes), io.CopyN counts, slices.Grow reserves, and
// scratch arena allocation sizes.
//
// A tainted value is cleared by passing through an explicit comparison
// (any `<ʻ, `<=`, `>`, `>=`, `==`, `!=` that mentions it), a constant
// mask (x & C), a modulus with an untainted divisor, or the builtin min
// with any argument. Crucially, checkedness does NOT survive arithmetic
// between two non-constant operands: summing per-item lengths that were
// each individually capped re-taints the sum, which is precisely the
// forged-payload-sum shape (65536 chunks at the 1 MiB per-chunk cap is a
// 64 GiB allocation no per-chunk check prevents). A single arithmetic
// step with a constant operand preserves checkedness (4*nch cannot
// overflow a bound that was just proven), which keeps honest header math
// quiet. The analysis is flow-sensitive per function on the CFG in
// cfg.go; see DESIGN.md §8 for the model's documented limits.
var TaintLen = &Analyzer{
	Name: "taintlen",
	Doc:  "untrusted container/bit-stream integers need a bounding comparison before sizing or indexing memory",
	Run:  runTaintLen,
}

const (
	tChecked uint8 = 1 << iota // passed through an explicit comparison
	tTainted                   // from an untrusted source, unbounded
	tOwned                     // struct built locally; fields default clean
	tKnown                     // key explicitly assigned in this function
)

// taintValue masks a state entry down to its value lattice (clean /
// checked / tainted), hiding the bookkeeping bits.
func taintValue(v uint8) uint8 { return v & (tChecked | tTainted) }

func runTaintLen(pass *Pass) {
	if !pathInScope(pass.Config.TaintScope, pass.Pkg.Path()) {
		return
	}
	readers := map[string]bool{}
	for _, r := range pass.Config.TaintReaders {
		readers[r] = true
	}
	eachFuncBody(pass.Files, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		t := &taintFlow{
			pass:    pass,
			readers: readers,
			structs: pass.Config.TaintStructs,
			origin:  map[string]string{},
		}
		if rt := recvTypeName(decl, pass.TypesInfo); rt != "" && readers[rt] {
			// Inside the reader's own methods its primitive reads are the
			// implementation, not a taint source.
			t.exemptReader = rt
		}
		g := buildCFG(body, pass.TypesInfo)
		if g.unstructured {
			return
		}
		solveForward(g, t.transfer)
	})
}

type taintFlow struct {
	pass         *Pass
	readers      map[string]bool
	structs      []string
	exemptReader string
	// origin remembers, per state key, a human description of the source
	// the taint came from, for findings ("from entropy.BitReader.ReadExpGolomb").
	origin map[string]string
	// lastSource carries the most recent source description seen while
	// evaluating the right-hand side currently being bound.
	lastSource string
}

// transfer advances the taint state across one CFG node.
func (t *taintFlow) transfer(n ast.Node, st absState, report bool) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		t.assign(s, st, report)
	case *ast.DeclStmt:
		t.declStmt(s, st, report)
	case *ast.IncDecStmt:
		t.eval(s.X, st, report) // ±1 preserves the state; check index sinks
	case *ast.RangeStmt:
		t.eval(s.X, st, report)
		// Loop variables are fresh bindings; element loads are clean (a
		// documented model limit — containers do not carry taint).
		for _, lv := range []ast.Expr{s.Key, s.Value} {
			if lv != nil {
				t.bind(lv, 0, st, report)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			t.eval(r, st, report)
		}
	case *ast.ExprStmt:
		t.eval(s.X, st, report)
	case *ast.SendStmt:
		t.eval(s.Chan, st, report)
		t.eval(s.Value, st, report)
	case *ast.DeferStmt:
		t.call(s.Call, st, report)
	case *ast.GoStmt:
		t.call(s.Call, st, report)
	case ast.Expr:
		t.eval(s, st, report)
	}
}

func (t *taintFlow) declStmt(s *ast.DeclStmt, st absState, report bool) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		switch {
		case len(vs.Values) == len(vs.Names):
			for i, name := range vs.Names {
				t.bindRHS(name, vs.Values[i], st, report)
			}
		case len(vs.Values) == 0:
			// Zero values are locally owned: fields of a `var b Block`
			// are clean until something untrusted is stored into them.
			for _, name := range vs.Names {
				if k := flowKey(t.pass.TypesInfo, name); k != "" {
					killDerived(st, k)
					st[k] = tKnown | tOwned
				}
			}
		default: // n, err := f()
			v := t.eval(vs.Values[0], st, report)
			for _, name := range vs.Names {
				t.bind(name, v, st, report)
			}
		}
	}
}

func (t *taintFlow) assign(s *ast.AssignStmt, st absState, report bool) {
	switch {
	case s.Tok == token.ASSIGN || s.Tok == token.DEFINE:
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				t.bindRHS(s.Lhs[i], s.Rhs[i], st, report)
			}
			return
		}
		v := t.eval(s.Rhs[0], st, report) // x, err := f(): one value for all
		for _, l := range s.Lhs {
			t.bind(l, v, st, report)
		}
	default: // compound: +=, -=, *=, ...
		lv := t.eval(s.Lhs[0], st, report)
		rv := t.eval(s.Rhs[0], st, report)
		v := t.combine(binOpOf(s.Tok), lv, rv, false, t.isConst(s.Rhs[0]))
		t.bind(s.Lhs[0], v, st, report)
	}
}

// bindRHS evaluates one rhs and binds it to one lhs, recognizing locally
// constructed struct values (composite literals, new) whose fields then
// default to clean instead of the header-field taint.
func (t *taintFlow) bindRHS(lhs, rhs ast.Expr, st absState, report bool) {
	inner := ast.Unparen(rhs)
	if ue, ok := inner.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		inner = ast.Unparen(ue.X)
	}
	if cl, ok := inner.(*ast.CompositeLit); ok {
		k := flowKey(t.pass.TypesInfo, lhs)
		if k != "" {
			killDerived(st, k)
			st[k] = tKnown | tOwned
		}
		for _, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v := t.eval(kv.Value, st, report)
				if k != "" {
					if id, ok := kv.Key.(*ast.Ident); ok {
						fk := k + "." + id.Name
						st[fk] = taintValue(v) | tKnown
						if v&tTainted != 0 && t.lastSource != "" {
							t.origin[fk] = t.lastSource
						}
					}
				}
			} else {
				t.eval(el, st, report)
			}
		}
		return
	}
	if call, ok := inner.(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if bi, ok := t.pass.TypesInfo.Uses[id].(*types.Builtin); ok && bi.Name() == "new" {
				if k := flowKey(t.pass.TypesInfo, lhs); k != "" {
					killDerived(st, k)
					st[k] = tKnown | tOwned
				}
				return
			}
		}
	}
	t.lastSource = ""
	v := t.eval(rhs, st, report)
	t.bind(lhs, v, st, report)
}

// bind stores a value state into the key for lhs; non-key lhs (index and
// dereference targets) are evaluated so their index sinks are checked.
func (t *taintFlow) bind(lhs ast.Expr, v uint8, st absState, report bool) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	k := flowKey(t.pass.TypesInfo, lhs)
	if k == "" {
		t.eval(lhs, st, report)
		return
	}
	killDerived(st, k)
	st[k] = taintValue(v) | tKnown
	if v&tTainted != 0 && t.lastSource != "" {
		t.origin[k] = t.lastSource
	}
}

// eval computes the taint value of e, recording sink findings (when
// report is set) and applying comparison sanitization as it goes.
func (t *taintFlow) eval(e ast.Expr, st absState, report bool) uint8 {
	info := t.pass.TypesInfo
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return 0 // constants are clean by definition
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return t.eval(e.X, st, report)
	case *ast.Ident:
		if k := flowKey(info, e); k != "" {
			return taintValue(st[k])
		}
		return 0
	case *ast.SelectorExpr:
		if k := flowKey(info, e); k != "" {
			if v, ok := st[k]; ok && v&tKnown != 0 {
				return taintValue(v)
			}
			if base := flowKey(info, e.X); base != "" && st[base]&tOwned != 0 {
				return 0 // locally constructed struct: untouched fields are zero
			}
		} else {
			t.eval(e.X, st, report)
		}
		if desc, ok := t.taintField(e); ok {
			t.lastSource = desc
			return tTainted
		}
		return 0
	case *ast.CallExpr:
		return t.call(e, st, report)
	case *ast.BinaryExpr:
		return t.binary(e, st, report)
	case *ast.UnaryExpr:
		v := t.eval(e.X, st, report)
		switch e.Op {
		case token.SUB, token.XOR:
			if v != 0 {
				return tTainted // negation/complement escapes any proven bound
			}
		}
		return 0
	case *ast.IndexExpr:
		t.eval(e.X, st, report)
		iv := t.eval(e.Index, st, report)
		if iv&tTainted != 0 && report && indexableType(info, e.X) {
			t.reportSink(e.Index, "indexes "+types.ExprString(e.X), st)
		}
		return 0
	case *ast.SliceExpr:
		t.eval(e.X, st, report)
		for _, bound := range []ast.Expr{e.Low, e.High, e.Max} {
			if bound == nil {
				continue
			}
			if v := t.eval(bound, st, report); v&tTainted != 0 && report {
				t.reportSink(bound, "bounds a reslice of "+types.ExprString(e.X), st)
			}
		}
		return 0
	case *ast.StarExpr:
		t.eval(e.X, st, report)
		return 0
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			t.eval(el, st, report)
		}
		return 0
	case *ast.KeyValueExpr:
		t.eval(e.Value, st, report)
		return 0
	case *ast.TypeAssertExpr:
		t.eval(e.X, st, report)
		return 0
	}
	return 0 // literals, func lits (separate units), types
}

// binary handles comparisons (which sanitize their operands) and
// arithmetic (which propagates — and on two non-constant operands,
// escalates — taint).
func (t *taintFlow) binary(e *ast.BinaryExpr, st absState, report bool) uint8 {
	switch e.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		t.eval(e.X, st, report)
		t.eval(e.Y, st, report)
		t.sanitize(e.X, st)
		t.sanitize(e.Y, st)
		return 0
	case token.LAND, token.LOR:
		t.eval(e.X, st, report)
		t.eval(e.Y, st, report)
		return 0
	}
	lv := t.eval(e.X, st, report)
	rv := t.eval(e.Y, st, report)
	return t.combine(e.Op, lv, rv, t.isConst(e.X), t.isConst(e.Y))
}

// combine is the arithmetic transfer. The central rule: a bound proven by
// comparison survives one constant-operand step but NOT arithmetic
// between two variables — per-item caps do not bound a sum of items.
func (t *taintFlow) combine(op token.Token, lv, rv uint8, lConst, rConst bool) uint8 {
	if lv|rv == 0 {
		return 0
	}
	switch op {
	case token.AND:
		if lConst || rConst {
			return 0 // x & C is bounded by C
		}
	case token.REM:
		if rv == 0 {
			return 0 // x % m is bounded by an untainted m
		}
	case token.QUO, token.SHR:
		return lv // division/right-shift cannot grow the numerator
	}
	if lConst || rConst {
		if (lv|rv)&tTainted != 0 {
			return tTainted
		}
		return tChecked
	}
	if (lv|rv)&tTainted != 0 {
		return tTainted
	}
	if lv&tChecked != 0 && rv&tChecked != 0 {
		// Two independently bounded values combined escape their bounds:
		// this is how a loop accumulator (checked += checked) escalates
		// to tainted across the fixpoint even though each step was capped.
		return tTainted
	}
	return tChecked // one bounded operand, one trusted: base + offset stays bounded
}

// sanitize marks every tracked, currently tainted value mentioned inside
// one side of a comparison as checked.
func (t *taintFlow) sanitize(e ast.Expr, st absState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if k := flowKey(t.pass.TypesInfo, ex); k != "" {
			if st[k]&tTainted != 0 {
				st[k] = (st[k] &^ tTainted) | tChecked
			} else if sel, ok := ex.(*ast.SelectorExpr); ok && st[k]&tKnown == 0 {
				// A header field with no state yet is tainted by default;
				// the comparison is exactly what makes it trustworthy.
				if _, isTaint := t.taintField(sel); isTaint {
					st[k] = tChecked | tKnown
				}
			}
		}
		return true
	})
}

// call evaluates a call expression: conversions pass taint through,
// sources return it, allocation-shaped callees are sinks for it.
func (t *taintFlow) call(call *ast.CallExpr, st absState, report bool) uint8 {
	info := t.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return t.eval(call.Args[0], st, report) // conversion preserves state
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := info.Uses[id].(*types.Builtin); ok {
			return t.builtin(bi.Name(), call, st, report)
		}
	}
	// Evaluate arguments (their own sinks included) before classifying.
	vals := make([]uint8, len(call.Args))
	for i, a := range call.Args {
		vals[i] = t.eval(a, st, report)
	}
	fn := calleeFunc(info, call)
	if desc, ok := t.sourceCall(fn); ok {
		t.lastSource = desc
		return tTainted
	}
	if arg, what, ok := sinkArg(fn, call); ok && arg < len(vals) && vals[arg]&tTainted != 0 && report {
		t.reportSink(call.Args[arg], what, st)
	}
	return 0 // trust boundary: results of ordinary calls are the callee's problem
}

func (t *taintFlow) builtin(name string, call *ast.CallExpr, st absState, report bool) uint8 {
	switch name {
	case "make":
		for _, a := range call.Args[1:] {
			if v := t.eval(a, st, report); v&tTainted != 0 && report {
				t.reportSink(a, "sizes make", st)
			}
		}
		return 0
	case "min":
		best := uint8(tTainted)
		for _, a := range call.Args {
			if v := t.eval(a, st, report); taintRank(v) < taintRank(best) {
				best = taintValue(v)
			}
		}
		return best // min is bounded by its most-trusted argument
	case "max":
		out := uint8(0)
		for _, a := range call.Args {
			if v := t.eval(a, st, report); taintRank(v) > taintRank(out) {
				out = taintValue(v)
			}
		}
		return out
	default: // len, cap, append, copy, clear, panic, ...
		for _, a := range call.Args {
			t.eval(a, st, report)
		}
		return 0
	}
}

func taintRank(v uint8) int {
	switch {
	case v&tTainted != 0:
		return 2
	case v&tChecked != 0:
		return 1
	}
	return 0
}

// sourceCall classifies fn as an untrusted-integer source.
func (t *taintFlow) sourceCall(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	if funcPackagePath(fn) == "encoding/binary" {
		switch fn.Name() {
		case "Uint16", "Uint32", "Uint64", "ReadUvarint", "ReadVarint", "Uvarint", "Varint":
			return "encoding/binary." + fn.Name(), true
		}
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	rt := namedTypeName(sig.Recv().Type())
	if rt == "" || !t.readers[rt] || rt == t.exemptReader {
		return "", false
	}
	if strings.HasPrefix(fn.Name(), "Read") {
		return rt + "." + fn.Name(), true
	}
	return "", false
}

// sinkArg classifies fn as an allocation/count sink, returning which
// argument is the size.
func sinkArg(fn *types.Func, call *ast.CallExpr) (int, string, bool) {
	if fn == nil {
		return 0, "", false
	}
	switch funcPackagePath(fn) {
	case "io":
		if fn.Name() == "CopyN" && len(call.Args) == 3 {
			return 2, "sizes io.CopyN", true
		}
	case "slices":
		if fn.Name() == "Grow" && len(call.Args) == 2 {
			return 1, "sizes slices.Grow", true
		}
	}
	if strings.HasSuffix(funcPackagePath(fn), "internal/scratch") {
		if (fn.Name() == "Floats" || fn.Name() == "Uint64s") && len(call.Args) == 1 {
			return 0, "sizes a scratch." + fn.Name() + " buffer", true
		}
	}
	return 0, "", false
}

// taintField reports whether sel reads an integer field of a configured
// decoded-header struct type.
func (t *taintFlow) taintField(sel *ast.SelectorExpr) (string, bool) {
	s, ok := t.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	b, ok := s.Obj().Type().Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return "", false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for _, s := range t.structs {
		if strings.HasSuffix(qual, s) {
			return "header field " + named.Obj().Name() + "." + sel.Sel.Name, true
		}
	}
	return "", false
}

func (t *taintFlow) isConst(e ast.Expr) bool {
	tv, ok := t.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func indexableType(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok {
		return false
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

func (t *taintFlow) reportSink(e ast.Expr, what string, st absState) {
	src := "untrusted input"
	ast.Inspect(e, func(n ast.Node) bool {
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if k := flowKey(t.pass.TypesInfo, ex); k != "" {
			if o, ok := t.origin[k]; ok && st[k]&tTainted != 0 {
				src = o
				return false
			}
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if desc, ok := t.sourceCall(calleeFunc(t.pass.TypesInfo, n)); ok {
				src = desc
				return false
			}
		case *ast.SelectorExpr:
			if desc, ok := t.taintField(n); ok {
				src = desc
				return false
			}
		}
		return true
	})
	t.pass.Reportf(e.Pos(), "untrusted value %q (from %s) %s without a bounding comparison",
		types.ExprString(e), src, what)
}

// binOpOf maps a compound assignment token to its binary operator.
func binOpOf(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return tok
}

// Package lint implements stlint, a domain-aware static-analysis suite
// for this repository. The paper's accuracy and storage claims rest on
// bit-level invariants — lossless coefficient round-trips, checksum-framed
// container records, exact index arithmetic across windows — and this
// package encodes the bug classes that historically break them as
// compile-time checks:
//
//   - uncheckederr: error results from storage/fault-injection/OS/binary
//     I/O call sites that are discarded or overwritten unread
//   - floateq: ==/!= on floating-point operands (coefficient thresholding
//     must use math.Float64bits or an epsilon helper)
//   - trunccast: unguarded narrowing integer conversions in encode/record
//     paths, the bug class that corrupts container frames
//   - lockval: sync.Mutex/RWMutex copied by value, including copies
//     through channel sends, map stores, and range clauses that go vet's
//     copylocks pass does not model
//   - deferclose: opened files and containers whose Close is neither
//     deferred nor otherwise reachable
//   - exporteddoc: exported identifiers (and packages) in the documented
//     API surface — the observability, serving, and storage layers —
//     lacking doc comments
//
// The driver is built entirely on the standard library's go/parser and
// go/types (no golang.org/x/tools), matching the module's empty
// dependency set. Findings are suppressed line-by-line with
//
//	//stlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// where the reason is mandatory: an unexplained suppression is itself
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the short identifier used in findings and in
	// //stlint:ignore directives.
	Name string
	// Doc is a one-line description of what the analyzer proves.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// All is the analyzer roster, in reporting order.
var All = []*Analyzer{
	UncheckedErr,
	FloatEq,
	TruncCast,
	LockVal,
	DeferClose,
	ExportedDoc,
	TaintLen,
	ScratchPool,
	CtxFlow,
	BudgetOwner,
}

// Config tunes the suite to the repository being analyzed.
type Config struct {
	// TruncScope limits the trunccast analyzer to packages whose import
	// path contains one of these substrings — the encode/record paths
	// where a silent narrowing corrupts on-disk frames. Empty means all
	// packages.
	TruncScope []string
	// DocScope limits the exporteddoc analyzer to packages whose import
	// path contains one of these substrings — the operator-facing API
	// surface where undocumented exports are documentation bugs. Unlike
	// TruncScope, an empty DocScope checks nothing: the doc bar is
	// opt-in per package tree.
	DocScope []string
	// TaintScope limits the taintlen analyzer to packages whose import
	// path contains one of these substrings — the decode paths that
	// parse attacker-shaped bytes. Empty means all packages.
	TaintScope []string
	// TaintReaders names bit-reader types (bare type names) whose Read*
	// methods yield untrusted integers for taintlen, outside the
	// reader's own methods.
	TaintReaders []string
	// TaintStructs names decoded-header struct types, as import-path
	// suffixes like "internal/entropy.Block", whose integer fields are
	// untrusted for taintlen unless the struct was constructed locally.
	TaintStructs []string
	// CtxScope limits the ctxflow analyzer to library packages where
	// minting a fresh context.Background()/TODO() severs cancellation.
	// Empty checks nothing (opt-in, like DocScope): binaries and tests
	// legitimately create root contexts.
	CtxScope []string
	// BudgetScope limits the budgetowner analyzer to pipeline packages
	// governed by DESIGN §6's single-owner worker-budget rule. Empty
	// checks nothing (opt-in).
	BudgetScope []string
	// BudgetOwners lists the functions allowed to resolve a worker
	// budget (call par.Workers / runtime.NumCPU / runtime.GOMAXPROCS)
	// inside BudgetScope, as "path-suffix.FuncName" entries like
	// "internal/core.CompressWindowCtx".
	BudgetOwners []string
}

// DefaultConfig scopes the suite to this repository's pipeline layout.
func DefaultConfig() Config {
	return Config{
		TruncScope: []string{
			"internal/core",
			"internal/coder",
			"internal/storage",
			"internal/compress",
			"internal/faultio",
			"internal/codec",
			"internal/entropy",
			"cmd/stcomp",
		},
		DocScope: []string{
			"internal/obs",
			"internal/server",
			"internal/storage",
		},
		TaintScope: []string{
			"internal/storage",
			"internal/core",
			"internal/codec",
			"internal/entropy",
			"internal/compress",
		},
		TaintReaders: []string{"BitReader"},
		TaintStructs: []string{"internal/entropy.Block", "internal/core.LevelExtent"},
		CtxScope: []string{
			"internal/core",
			"internal/transform",
			"internal/server",
			"internal/ingest",
			"internal/codec",
			"internal/entropy",
		},
		BudgetScope: []string{
			"internal/transform",
			"internal/core",
			"internal/compress",
			"internal/codec",
			"internal/entropy",
			"internal/wavelet",
			"internal/ingest",
			"internal/server",
		},
		BudgetOwners: []string{
			// The precision-generic bodies are the shared entry points
			// behind both the float64 and float32 wrappers (CompressWindowCtx,
			// CompressWindow32Ctx, ...): each resolves the budget exactly once
			// per call and hands shares down, so they are the owners now.
			"internal/core.compressWindowOf",
			"internal/core.decompressOf",
			// Partial decode and refinement are decode entry points like
			// decompressOf; the Refiner resolves its budget once at
			// construction and reuses it across Advance/Materialize.
			"internal/core.decompressLevelsOf",
			"internal/core.NewRefiner",
			"internal/transform.Workers",
			// Server construction owns its resource envelope: the
			// decompress semaphore is sized once, not per request.
			"internal/server.DefaultConfig",
			"internal/server.New",
		},
	}
}

// A Finding is one diagnostic at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding as "file:line: [name] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Config    Config

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Findings runs the full analyzer roster over one package.
func (p *Package) Findings(cfg Config) []Finding {
	return RunPackage(cfg, p, All)
}

// RunPackage applies every analyzer in analyzers to one loaded package and
// returns the surviving findings: suppressed lines are dropped, malformed
// suppressions are reported, and the result is sorted by position.
func RunPackage(cfg Config, pkg *Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Config:    cfg,
			findings:  &findings,
		}
		a.Run(pass)
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	findings = applySuppressions(pkg, findings, ran)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// ignoreDirective is one parsed //stlint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers map[string]bool
	malformed string // non-empty description when the directive is unusable
}

const ignorePrefix = "stlint:ignore"

// parseIgnores extracts every stlint:ignore directive from a file,
// keyed by the line(s) it suppresses: the directive's own line and the
// line immediately after it (so a directive may sit on the offending
// line or alone on the line above).
func parseIgnores(fset *token.FileSet, file *ast.File) map[string][]*ignoreDirective {
	byLine := map[string][]*ignoreDirective{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
			if !ok {
				continue
			}
			d := &ignoreDirective{pos: fset.Position(c.Pos()), analyzers: map[string]bool{}}
			fields := strings.Fields(text)
			switch {
			case len(fields) == 0:
				d.malformed = "missing analyzer name and reason"
			case len(fields) == 1:
				d.malformed = fmt.Sprintf("suppressing %q without a reason", fields[0])
			default:
				for _, name := range strings.Split(fields[0], ",") {
					d.analyzers[name] = true
				}
			}
			for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
				key := lineKey(d.pos.Filename, line)
				byLine[key] = append(byLine[key], d)
			}
		}
	}
	return byLine
}

func lineKey(filename string, line int) string {
	return fmt.Sprintf("%s:%d", filename, line)
}

// applySuppressions drops findings covered by a well-formed ignore
// directive for their analyzer, reports malformed directives, and —
// when the directive's analyzers all ran — reports directives that
// suppressed nothing. Stale directives are debt: they read as "this
// line is exempt for a reason" when the finding they justified is long
// gone, and they silently mask future findings of the same analyzer on
// that line. ran is the set of analyzer names that actually executed;
// directives naming any analyzer that did not run (including "all"
// unless the full roster ran) are exempt from the staleness check, so a
// partial run never misreports.
func applySuppressions(pkg *Package, findings []Finding, ran map[string]bool) []Finding {
	byLine := map[string][]*ignoreDirective{}
	var ordered []*ignoreDirective
	seen := map[*ignoreDirective]bool{}
	for _, f := range pkg.Files {
		for key, ds := range parseIgnores(pkg.Fset, f) {
			byLine[key] = append(byLine[key], ds...)
			for _, d := range ds {
				if !seen[d] {
					seen[d] = true
					ordered = append(ordered, d)
				}
			}
		}
	}
	matched := map[*ignoreDirective]bool{}
	out := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, d := range byLine[lineKey(f.Pos.Filename, f.Pos.Line)] {
			if d.analyzers[f.Analyzer] || d.analyzers["all"] {
				matched[d] = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	allRan := true
	for _, a := range All {
		if !ran[a.Name] {
			allRan = false
		}
	}
	for _, d := range ordered {
		switch {
		case d.malformed != "":
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: "stlint",
				Message:  "malformed stlint:ignore directive: " + d.malformed,
			})
		case !matched[d] && auditable(d, ran, allRan):
			names := make([]string, 0, len(d.analyzers))
			for name := range d.analyzers {
				names = append(names, name)
			}
			sort.Strings(names)
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: "stlint",
				Message:  fmt.Sprintf("stale stlint:ignore directive: no %s finding left to suppress here", strings.Join(names, ",")),
			})
		}
	}
	return out
}

// auditable reports whether every analyzer a directive names actually
// executed, making "it matched nothing" meaningful.
func auditable(d *ignoreDirective, ran map[string]bool, allRan bool) bool {
	for name := range d.analyzers {
		if name == "all" {
			if !allRan {
				return false
			}
			continue
		}
		if !ran[name] {
			return false
		}
	}
	return true
}

// --- shared type helpers used by several analyzers ---

// isErrorType reports whether t is the built-in error interface (or an
// alias of it).
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeFunc resolves the *types.Func a call expression invokes, looking
// through parentheses. It returns nil for calls of function values,
// conversions, and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcPackagePath returns the import path of the package a function (or
// method) is declared in, or "" for builtins.
func funcPackagePath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// errorResultIndex returns the index of the first error-typed result of a
// call's callee signature, or -1. A signature with no results, or whose
// results contain no error, yields -1.
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return -1
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return i
		}
	}
	return -1
}

// Package render produces quick-look images from scalar fields: grayscale
// or false-color slices and maximum-intensity projections, written as
// PGM/PPM (stdlib-only formats every image tool reads). A visualization
// paper's repo needs a way to actually look at the data; this is the
// minimal honest version.
package render

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"stwave/internal/grid"
	"stwave/internal/num"
)

// Image is a row-major grayscale image with float64 intensities in [0, 1].
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the intensity at (x, y).
func (im *Image) At(x, y int) float64 { return im.Pix[y*im.W+x] }

// Set stores an intensity at (x, y), clamped to [0, 1].
func (im *Image) Set(x, y int, v float64) {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	im.Pix[y*im.W+x] = v
}

// normalize maps data values to [0,1] over the given range; a zero range
// maps everything to 0.5.
func normalize(v, lo, hi float64) float64 {
	if hi <= lo {
		return 0.5
	}
	return (v - lo) / (hi - lo)
}

// SliceXY renders the z=k plane of the field, normalized to the field's
// global min/max (so slices of one variable share a scale). Both sample
// precisions render directly; intensities are always float64.
func SliceXY[F num.Float](f *grid.Field3DOf[F], k int) (*Image, error) {
	plane, err := f.SliceXY(k)
	if err != nil {
		return nil, err
	}
	lo, hi := f.MinMax()
	im := NewImage(f.Dims.Nx, f.Dims.Ny)
	for y, row := range plane {
		for x, v := range row {
			im.Set(x, y, normalize(float64(v), float64(lo), float64(hi)))
		}
	}
	return im, nil
}

// MIPAxis selects the projection axis.
type MIPAxis int

const (
	// AlongZ projects onto the XY plane.
	AlongZ MIPAxis = iota
	// AlongY projects onto the XZ plane.
	AlongY
	// AlongX projects onto the YZ plane.
	AlongX
)

// MIP computes a maximum-intensity projection along the chosen axis. Both
// sample precisions project directly; intensities are always float64.
func MIP[F num.Float](f *grid.Field3DOf[F], axis MIPAxis) (*Image, error) {
	d := f.Dims
	flo, fhi := f.MinMax()
	lo, hi := float64(flo), float64(fhi)
	var w, h int
	switch axis {
	case AlongZ:
		w, h = d.Nx, d.Ny
	case AlongY:
		w, h = d.Nx, d.Nz
	case AlongX:
		w, h = d.Ny, d.Nz
	default:
		return nil, fmt.Errorf("render: unknown axis %d", int(axis))
	}
	im := NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = math.Inf(-1)
	}
	for z := 0; z < d.Nz; z++ {
		for y := 0; y < d.Ny; y++ {
			for x := 0; x < d.Nx; x++ {
				v := float64(f.At(x, y, z))
				var px, py int
				switch axis {
				case AlongZ:
					px, py = x, y
				case AlongY:
					px, py = x, z
				default:
					px, py = y, z
				}
				if idx := py*im.W + px; v > im.Pix[idx] {
					im.Pix[idx] = v
				}
			}
		}
	}
	for i, v := range im.Pix {
		im.Pix[i] = normalize(v, lo, hi)
	}
	return im, nil
}

// WritePGM writes the image as a binary PGM (8-bit grayscale).
func (im *Image) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	for _, v := range im.Pix {
		if err := bw.WriteByte(byte(math.Round(v * 255))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePPM writes the image as a binary PPM using a blue-white-red
// diverging colormap centered at 0.5 — the conventional palette for signed
// simulation fields.
func (im *Image) WritePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	for _, v := range im.Pix {
		r, g, b := divergingRGB(v)
		if err := bw.WriteByte(r); err != nil {
			return err
		}
		if err := bw.WriteByte(g); err != nil {
			return err
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// divergingRGB maps t in [0,1] through blue -> white -> red.
func divergingRGB(t float64) (r, g, b byte) {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	if t < 0.5 {
		// blue (0.23,0.30,0.75) to white
		f := t * 2
		return lerpByte(58, 255, f), lerpByte(76, 255, f), lerpByte(192, 255, f)
	}
	// white to red (0.71,0.02,0.15)
	f := (t - 0.5) * 2
	return lerpByte(255, 180, f), lerpByte(255, 4, f), lerpByte(255, 38, f)
}

func lerpByte(a, b int, f float64) byte {
	return byte(math.Round(float64(a) + f*float64(b-a)))
}

// ASCII renders the image as a text art string with the given width (for
// terminal previews); the aspect ratio is corrected for tall characters.
func (im *Image) ASCII(width int) string {
	if width < 1 || im.W == 0 || im.H == 0 {
		return ""
	}
	const ramp = " .:-=+*#%@"
	height := im.H * width / im.W / 2
	if height < 1 {
		height = 1
	}
	out := make([]byte, 0, (width+1)*height)
	for y := 0; y < height; y++ {
		sy := y * im.H / height
		for x := 0; x < width; x++ {
			sx := x * im.W / width
			v := im.At(sx, sy)
			idx := int(v * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			out = append(out, ramp[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}

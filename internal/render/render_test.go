package render

import (
	"bytes"
	"strings"
	"testing"

	"stwave/internal/grid"
)

func gradientField(nx, ny, nz int) *grid.Field3D {
	f := grid.NewField3D(nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				f.Set(x, y, z, float64(x+y+z))
			}
		}
	}
	return f
}

func TestImageSetClamps(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, -3)
	im.Set(1, 1, 7)
	if im.At(0, 0) != 0 || im.At(1, 1) != 1 {
		t.Errorf("clamping failed: %g, %g", im.At(0, 0), im.At(1, 1))
	}
}

func TestSliceXY(t *testing.T) {
	f := gradientField(4, 3, 2)
	im, err := SliceXY(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if im.W != 4 || im.H != 3 {
		t.Fatalf("image %dx%d", im.W, im.H)
	}
	// Values must increase along x (gradient) after normalization.
	if !(im.At(0, 0) < im.At(3, 0)) {
		t.Error("gradient not preserved")
	}
	if _, err := SliceXY(f, 5); err == nil {
		t.Error("expected error for out-of-range z")
	}
}

func TestMIPAxes(t *testing.T) {
	f := grid.NewField3D(4, 5, 6)
	f.Set(2, 3, 4, 10) // single bright voxel
	cases := []struct {
		axis MIPAxis
		w, h int
		x, y int
	}{
		{AlongZ, 4, 5, 2, 3},
		{AlongY, 4, 6, 2, 4},
		{AlongX, 5, 6, 3, 4},
	}
	for _, c := range cases {
		im, err := MIP(f, c.axis)
		if err != nil {
			t.Fatal(err)
		}
		if im.W != c.w || im.H != c.h {
			t.Fatalf("axis %d: image %dx%d, want %dx%d", c.axis, im.W, im.H, c.w, c.h)
		}
		if im.At(c.x, c.y) != 1 {
			t.Errorf("axis %d: bright voxel not projected to (%d,%d)", c.axis, c.x, c.y)
		}
	}
	if _, err := MIP(f, MIPAxis(9)); err == nil {
		t.Error("expected error for unknown axis")
	}
}

func TestWritePGM(t *testing.T) {
	f := gradientField(8, 4, 2)
	im, err := SliceXY(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := im.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n8 4\n255\n")) {
		t.Errorf("bad PGM header: %q", out[:12])
	}
	if len(out) != len("P5\n8 4\n255\n")+8*4 {
		t.Errorf("PGM size %d", len(out))
	}
}

func TestWritePPM(t *testing.T) {
	im := NewImage(2, 1)
	im.Set(0, 0, 0)
	im.Set(1, 0, 1)
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P6\n2 1\n255\n")) {
		t.Errorf("bad PPM header")
	}
	pix := out[len("P6\n2 1\n255\n"):]
	if len(pix) != 6 {
		t.Fatalf("PPM payload %d bytes", len(pix))
	}
	// t=0 is blue-ish (b >> r), t=1 red-ish (r >> b).
	if !(pix[2] > pix[0]) {
		t.Errorf("low end not blue: rgb=%v", pix[0:3])
	}
	if !(pix[3] > pix[5]) {
		t.Errorf("high end not red: rgb=%v", pix[3:6])
	}
}

func TestASCII(t *testing.T) {
	f := gradientField(16, 16, 1)
	im, err := SliceXY(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	art := im.ASCII(16)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) < 1 || len(lines[0]) != 16 {
		t.Fatalf("ascii shape: %d lines of %d", len(lines), len(lines[0]))
	}
	// Dark characters top-left, bright bottom-right.
	first := lines[0][0]
	last := lines[len(lines)-1][len(lines[0])-1]
	if first == last {
		t.Error("ascii gradient flat")
	}
	if im.ASCII(0) != "" {
		t.Error("zero width should render empty")
	}
}

func TestSubVolumeAndWindow(t *testing.T) {
	f := gradientField(6, 5, 4)
	sub, err := f.SubVolume(1, 2, 1, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Dims != (grid.Dims{Nx: 3, Ny: 2, Nz: 2}) {
		t.Fatalf("sub dims %v", sub.Dims)
	}
	for z := 0; z < 2; z++ {
		for y := 0; y < 2; y++ {
			for x := 0; x < 3; x++ {
				if sub.At(x, y, z) != f.At(x+1, y+2, z+1) {
					t.Fatalf("subvolume sample (%d,%d,%d) wrong", x, y, z)
				}
			}
		}
	}
	if _, err := f.SubVolume(4, 0, 0, 3, 1, 1); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := f.SubVolume(0, 0, 0, 0, 1, 1); err == nil {
		t.Error("expected error for zero extent")
	}

	w := grid.NewWindow(f.Dims)
	if err := w.Append(f, 3.5); err != nil {
		t.Fatal(err)
	}
	sw, err := w.SubWindow(1, 2, 1, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Len() != 1 || sw.Times[0] != 3.5 {
		t.Errorf("subwindow len %d time %g", sw.Len(), sw.Times[0])
	}
}

package metrics

import (
	"math"
	"math/rand"
	"testing"

	"stwave/internal/grid"
)

func smoothField3(n int) *grid.Field3D {
	f := grid.NewField3D(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				f.Set(x, y, z, math.Sin(0.5*float64(x))*math.Cos(0.4*float64(y))+0.1*float64(z))
			}
		}
	}
	return f
}

func TestSSIMIdenticalIsOne(t *testing.T) {
	f := smoothField3(16)
	s, err := SSIM3D(f, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-12 {
		t.Errorf("SSIM(f,f) = %g, want 1", s)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := smoothField3(16)
	addNoise := func(amp float64) *grid.Field3D {
		g := f.Clone()
		for i := range g.Data {
			g.Data[i] += amp * rng.NormFloat64()
		}
		return g
	}
	sLow, err := SSIM3D(f, addNoise(0.01), 4)
	if err != nil {
		t.Fatal(err)
	}
	sHigh, err := SSIM3D(f, addNoise(0.5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !(sHigh < sLow && sLow < 1) {
		t.Errorf("SSIM not monotone in noise: low=%g high=%g", sLow, sHigh)
	}
	if sHigh > 0.7 {
		t.Errorf("heavy noise SSIM %g suspiciously high", sHigh)
	}
}

func TestSSIMPenalizesBlurMoreThanNRMSEWould(t *testing.T) {
	// Box-blur the field: small point-wise error on smooth data but
	// structural loss where gradients live. SSIM must drop below 1.
	f := smoothField3(16)
	blurred := f.Clone()
	d := f.Dims
	for z := 1; z < d.Nz-1; z++ {
		for y := 1; y < d.Ny-1; y++ {
			for x := 1; x < d.Nx-1; x++ {
				sum := 0.0
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							sum += f.At(x+dx, y+dy, z+dz)
						}
					}
				}
				blurred.Set(x, y, z, sum/27)
			}
		}
	}
	s, err := SSIM3D(f, blurred, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s >= 0.999 {
		t.Errorf("blur SSIM %g — metric failed to notice structural loss", s)
	}
	if s < 0.5 {
		t.Errorf("blur SSIM %g implausibly low for mild blur", s)
	}
}

func TestSSIMConstantFields(t *testing.T) {
	f := grid.NewField3D(8, 8, 8)
	f.Fill(5)
	if s, err := SSIM3D(f, f.Clone(), 4); err != nil || s != 1 {
		t.Errorf("constant identical: %g, %v", s, err)
	}
	g := f.Clone()
	g.Data[0] = 6
	if s, err := SSIM3D(f, g, 4); err != nil || s != 0 {
		t.Errorf("constant mismatched: %g, %v", s, err)
	}
}

func TestSSIMValidation(t *testing.T) {
	f := grid.NewField3D(8, 8, 8)
	if _, err := SSIM3D(f, grid.NewField3D(9, 8, 8), 4); err == nil {
		t.Error("expected dims mismatch error")
	}
	if _, err := SSIM3D(f, f, 1); err == nil {
		t.Error("expected window-too-small error")
	}
	if _, err := SSIM3D(f, f, 20); err == nil {
		t.Error("expected window-too-large error")
	}
}

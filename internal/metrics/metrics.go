// Package metrics implements the point-wise error measurements used by the
// paper's evaluation: root mean square error and L-infinity norm, plus their
// range-normalized variants ("error values are normalized by the range of
// the data", Section V-B) and PSNR.
package metrics

import (
	"errors"
	"math"

	"stwave/internal/fbits"
)

// ErrLengthMismatch is returned when the two sample sets differ in length.
var ErrLengthMismatch = errors.New("metrics: sample sets have different lengths")

// RMSE returns sqrt(mean((a-b)^2)).
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	if len(a) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a))), nil
}

// LInf returns max_i |a_i - b_i|.
func LInf(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrLengthMismatch
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// Range returns max(a) - min(a); 0 for empty input.
func Range(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range a {
		if math.IsNaN(v) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return max - min
}

// NRMSE returns RMSE(a,b) normalized by the range of a (the original data).
// A zero-range original yields 0 if the data match exactly and +Inf
// otherwise.
func NRMSE(orig, recon []float64) (float64, error) {
	r, err := RMSE(orig, recon)
	if err != nil {
		return 0, err
	}
	return normalize(r, Range(orig)), nil
}

// NLInf returns the L-infinity norm normalized by the range of orig.
func NLInf(orig, recon []float64) (float64, error) {
	l, err := LInf(orig, recon)
	if err != nil {
		return 0, err
	}
	return normalize(l, Range(orig)), nil
}

func normalize(err, rng float64) float64 {
	if fbits.Zero(rng) {
		if fbits.Zero(err) {
			return 0
		}
		return math.Inf(1)
	}
	return err / rng
}

// PSNR returns the peak signal-to-noise ratio in dB, using the range of the
// original data as peak. Identical inputs yield +Inf.
func PSNR(orig, recon []float64) (float64, error) {
	r, err := RMSE(orig, recon)
	if err != nil {
		return 0, err
	}
	if fbits.Zero(r) {
		return math.Inf(1), nil
	}
	rng := Range(orig)
	if fbits.Zero(rng) {
		return math.Inf(-1), nil
	}
	return 20 * math.Log10(rng/r), nil
}

// Accumulator aggregates point-wise errors across multiple slices so that
// NRMSE/L-inf can be reported for a whole time span with a single global
// normalization, the way the paper reports per-test numbers.
type Accumulator struct {
	sumSq  float64
	maxAbs float64
	n      int64
	min    float64
	max    float64
	empty  bool
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{min: math.Inf(1), max: math.Inf(-1), empty: true}
}

// Add accumulates one original/reconstructed slice pair.
func (ac *Accumulator) Add(orig, recon []float64) error {
	if len(orig) != len(recon) {
		return ErrLengthMismatch
	}
	for i := range orig {
		d := orig[i] - recon[i]
		ac.sumSq += d * d
		if a := math.Abs(d); a > ac.maxAbs {
			ac.maxAbs = a
		}
		v := orig[i]
		if v < ac.min {
			ac.min = v
		}
		if v > ac.max {
			ac.max = v
		}
	}
	ac.n += int64(len(orig))
	ac.empty = ac.empty && len(orig) == 0
	return nil
}

// Count returns the number of samples accumulated.
func (ac *Accumulator) Count() int64 { return ac.n }

// RMSE returns the aggregate root mean square error.
func (ac *Accumulator) RMSE() float64 {
	if ac.n == 0 {
		return 0
	}
	return math.Sqrt(ac.sumSq / float64(ac.n))
}

// LInf returns the aggregate maximum absolute deviation.
func (ac *Accumulator) LInf() float64 { return ac.maxAbs }

// DataRange returns the range of all original samples seen.
func (ac *Accumulator) DataRange() float64 {
	if ac.empty || ac.n == 0 {
		return 0
	}
	return ac.max - ac.min
}

// NRMSE returns RMSE normalized by the global original-data range.
func (ac *Accumulator) NRMSE() float64 { return normalize(ac.RMSE(), ac.DataRange()) }

// NLInf returns LInf normalized by the global original-data range.
func (ac *Accumulator) NLInf() float64 { return normalize(ac.LInf(), ac.DataRange()) }

// PSNR returns the aggregate peak signal-to-noise ratio in dB,
// -20*log10(NRMSE). Zero aggregate error yields +Inf; a zero data range
// with nonzero error yields -Inf.
func (ac *Accumulator) PSNR() float64 {
	n := ac.NRMSE()
	if fbits.Zero(n) {
		return math.Inf(1)
	}
	if math.IsInf(n, 1) {
		return math.Inf(-1)
	}
	return -20 * math.Log10(n)
}

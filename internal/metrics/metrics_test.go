package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRMSE(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 3, 4}
	r, err := RMSE(a, b)
	if err != nil || r != 0 {
		t.Errorf("RMSE identical = %g, %v", r, err)
	}
	b = []float64{2, 3, 4, 5}
	r, err = RMSE(a, b)
	if err != nil || math.Abs(r-1) > 1e-15 {
		t.Errorf("RMSE uniform-offset-1 = %g, want 1", r)
	}
	if _, err := RMSE(a, b[:3]); err != ErrLengthMismatch {
		t.Errorf("expected ErrLengthMismatch, got %v", err)
	}
	if r, err := RMSE(nil, nil); err != nil || r != 0 {
		t.Errorf("RMSE(nil,nil) = %g, %v", r, err)
	}
}

func TestLInf(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, -3, 2}
	l, err := LInf(a, b)
	if err != nil || l != 3 {
		t.Errorf("LInf = %g, want 3", l)
	}
	if _, err := LInf(a, b[:2]); err != ErrLengthMismatch {
		t.Error("expected length mismatch")
	}
}

func TestRange(t *testing.T) {
	if r := Range([]float64{3, -2, 5}); r != 7 {
		t.Errorf("Range = %g, want 7", r)
	}
	if r := Range(nil); r != 0 {
		t.Errorf("Range(nil) = %g, want 0", r)
	}
	if r := Range([]float64{math.NaN(), 1, 2}); r != 1 {
		t.Errorf("Range with NaN = %g, want 1", r)
	}
	if r := Range([]float64{math.NaN()}); r != 0 {
		t.Errorf("Range(all NaN) = %g, want 0", r)
	}
}

func TestNRMSEAndNLInf(t *testing.T) {
	orig := []float64{0, 10}  // range 10
	recon := []float64{1, 10} // rmse = sqrt(1/2), linf = 1
	n, err := NRMSE(orig, recon)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(0.5) / 10
	if math.Abs(n-want) > 1e-15 {
		t.Errorf("NRMSE = %g, want %g", n, want)
	}
	l, err := NLInf(orig, recon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-0.1) > 1e-15 {
		t.Errorf("NLInf = %g, want 0.1", l)
	}
}

func TestNormalizeZeroRange(t *testing.T) {
	orig := []float64{5, 5, 5}
	if n, _ := NRMSE(orig, orig); n != 0 {
		t.Errorf("NRMSE identical constant = %g, want 0", n)
	}
	if n, _ := NRMSE(orig, []float64{5, 5, 6}); !math.IsInf(n, 1) {
		t.Errorf("NRMSE zero-range mismatch = %g, want +Inf", n)
	}
}

func TestPSNR(t *testing.T) {
	orig := []float64{0, 1}
	if p, _ := PSNR(orig, orig); !math.IsInf(p, 1) {
		t.Errorf("PSNR identical = %g, want +Inf", p)
	}
	recon := []float64{0.1, 1}
	p, err := PSNR(orig, recon)
	if err != nil {
		t.Fatal(err)
	}
	// rmse = 0.1/sqrt(2), range 1, psnr = 20*log10(sqrt(2)/0.1) ~ 23.01
	want := 20 * math.Log10(math.Sqrt2/0.1)
	if math.Abs(p-want) > 1e-9 {
		t.Errorf("PSNR = %g, want %g", p, want)
	}
}

func TestAccumulatorMatchesSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 1000
	orig := make([]float64, n)
	recon := make([]float64, n)
	for i := range orig {
		orig[i] = rng.NormFloat64() * 5
		recon[i] = orig[i] + rng.NormFloat64()*0.1
	}
	ac := NewAccumulator()
	// Feed in 3 uneven chunks.
	if err := ac.Add(orig[:100], recon[:100]); err != nil {
		t.Fatal(err)
	}
	if err := ac.Add(orig[100:700], recon[100:700]); err != nil {
		t.Fatal(err)
	}
	if err := ac.Add(orig[700:], recon[700:]); err != nil {
		t.Fatal(err)
	}
	wantNRMSE, _ := NRMSE(orig, recon)
	wantNLInf, _ := NLInf(orig, recon)
	if math.Abs(ac.NRMSE()-wantNRMSE) > 1e-12 {
		t.Errorf("accumulator NRMSE %g vs single-pass %g", ac.NRMSE(), wantNRMSE)
	}
	if math.Abs(ac.NLInf()-wantNLInf) > 1e-12 {
		t.Errorf("accumulator NLInf %g vs single-pass %g", ac.NLInf(), wantNLInf)
	}
	if ac.Count() != int64(n) {
		t.Errorf("Count = %d, want %d", ac.Count(), n)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	ac := NewAccumulator()
	if ac.NRMSE() != 0 || ac.NLInf() != 0 || ac.DataRange() != 0 {
		t.Errorf("empty accumulator: NRMSE=%g NLInf=%g range=%g", ac.NRMSE(), ac.NLInf(), ac.DataRange())
	}
	if err := ac.Add([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("expected ErrLengthMismatch, got %v", err)
	}
}

// Property: NRMSE <= NLInf for any data (mean deviation cannot exceed max).
func TestQuickNRMSELeqNLInf(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 2
		orig := make([]float64, n)
		recon := make([]float64, n)
		for i := range orig {
			orig[i] = rng.NormFloat64()
			recon[i] = orig[i] + rng.NormFloat64()*0.01
		}
		a, _ := NRMSE(orig, recon)
		b, _ := NLInf(orig, recon)
		return a <= b+1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: metrics are invariant under a common shift of both signals and
// scale linearly under a common positive scaling (normalized metrics are
// scale-invariant).
func TestQuickNormalizedScaleInvariance(t *testing.T) {
	prop := func(seed int64, scaleRaw uint8, shiftRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := float64(scaleRaw)/16 + 0.5
		shift := float64(shiftRaw)
		n := 64
		orig := make([]float64, n)
		recon := make([]float64, n)
		origT := make([]float64, n)
		reconT := make([]float64, n)
		for i := range orig {
			orig[i] = rng.NormFloat64()
			recon[i] = orig[i] + rng.NormFloat64()*0.05
			origT[i] = orig[i]*scale + shift
			reconT[i] = recon[i]*scale + shift
		}
		a, _ := NRMSE(orig, recon)
		b, _ := NRMSE(origT, reconT)
		return math.Abs(a-b) < 1e-9*(1+math.Abs(a))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package metrics

import (
	"fmt"
	"math"

	"stwave/internal/fbits"
	"stwave/internal/grid"
)

// SSIM3D computes a mean structural similarity index over two 3D fields by
// sliding a cubic window and averaging the per-window SSIM — the structural
// quality metric compression papers report alongside point-wise errors.
// SSIM weights local luminance, contrast, and structure; unlike NRMSE it
// penalizes blur and structural loss even when point-wise errors are small.
//
// windowSize is the cube edge (typical: 4-8); stride windowSize/2 gives
// overlapping windows. The dynamic range L is taken from the original
// field. Returns a value in [-1, 1]; 1 means identical.
func SSIM3D(orig, recon *grid.Field3D, windowSize int) (float64, error) {
	if orig.Dims != recon.Dims {
		return 0, fmt.Errorf("metrics: dims mismatch %v vs %v", orig.Dims, recon.Dims)
	}
	d := orig.Dims
	if windowSize < 2 {
		return 0, fmt.Errorf("metrics: SSIM window must be >= 2, got %d", windowSize)
	}
	if windowSize > d.Nx || windowSize > d.Ny || windowSize > d.Nz {
		return 0, fmt.Errorf("metrics: SSIM window %d exceeds grid %v", windowSize, d)
	}
	l := Range(orig.Data)
	if fbits.Zero(l) {
		// Constant original: identical reconstruction is perfect, anything
		// else has no meaningful structure to compare.
		for i := range orig.Data {
			if !fbits.Eq(orig.Data[i], recon.Data[i]) {
				return 0, nil
			}
		}
		return 1, nil
	}
	c1 := (0.01 * l) * (0.01 * l)
	c2 := (0.03 * l) * (0.03 * l)
	stride := windowSize / 2
	if stride < 1 {
		stride = 1
	}

	var sum float64
	count := 0
	nw := float64(windowSize * windowSize * windowSize)
	for z0 := 0; z0+windowSize <= d.Nz; z0 += stride {
		for y0 := 0; y0+windowSize <= d.Ny; y0 += stride {
			for x0 := 0; x0+windowSize <= d.Nx; x0 += stride {
				var muX, muY float64
				for z := z0; z < z0+windowSize; z++ {
					for y := y0; y < y0+windowSize; y++ {
						base := (z*d.Ny + y) * d.Nx
						for x := x0; x < x0+windowSize; x++ {
							muX += orig.Data[base+x]
							muY += recon.Data[base+x]
						}
					}
				}
				muX /= nw
				muY /= nw
				var varX, varY, cov float64
				for z := z0; z < z0+windowSize; z++ {
					for y := y0; y < y0+windowSize; y++ {
						base := (z*d.Ny + y) * d.Nx
						for x := x0; x < x0+windowSize; x++ {
							dx := orig.Data[base+x] - muX
							dy := recon.Data[base+x] - muY
							varX += dx * dx
							varY += dy * dy
							cov += dx * dy
						}
					}
				}
				varX /= nw - 1
				varY /= nw - 1
				cov /= nw - 1
				ssim := ((2*muX*muY + c1) * (2*cov + c2)) /
					((muX*muX + muY*muY + c1) * (varX + varY + c2))
				sum += ssim
				count++
			}
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("metrics: no SSIM windows fit grid %v", d)
	}
	mean := sum / float64(count)
	if math.IsNaN(mean) {
		return 0, fmt.Errorf("metrics: SSIM produced NaN")
	}
	return mean, nil
}

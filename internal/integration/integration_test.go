// Package integration exercises whole pipelines across modules: simulation
// output through the streaming compressor into container files and back,
// the progressive coder on top of real wavelet coefficients, the Lorenzo
// baseline against the wavelet codec on identical data, and fault
// injection on the on-disk formats.
package integration

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"stwave/internal/baseline"
	"stwave/internal/coder"
	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/metrics"
	"stwave/internal/sim/ghost"
	"stwave/internal/sim/synth"
	"stwave/internal/storage"
	"stwave/internal/transform"
	"stwave/internal/wavelet"
)

// ghostWindow runs a short solver and collects slices.
func ghostWindow(t *testing.T, n, slices int) *grid.Window {
	t.Helper()
	s, err := ghost.NewSolver(ghost.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30)
	w := grid.NewWindow(grid.Dims{Nx: n, Ny: n, Nz: n})
	for i := 0; i < slices; i++ {
		if err := w.Append(s.VelocityX(), s.Time()); err != nil {
			t.Fatal(err)
		}
		s.Run(2)
	}
	return w
}

// TestSimulationToContainerAndBack drives the full paper workflow:
// simulation -> stream writer -> container file -> random access decode ->
// error measurement.
func TestSimulationToContainerAndBack(t *testing.T) {
	src := ghostWindow(t, 16, 25)
	dir := t.TempDir()
	path := filepath.Join(dir, "ghost.stw")

	container, err := storage.CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.WindowSize = 10
	opts.Ratio = 16
	writer, err := core.NewWriter(opts, src.Dims, func(cw *core.CompressedWindow) error {
		_, err := container.Append(cw)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range src.Slices {
		if err := writer.WriteSlice(s, src.Times[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := container.Close(); err != nil {
		t.Fatal(err)
	}

	reader, err := storage.OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	if reader.NumWindows() != 3 { // 10 + 10 + 5
		t.Fatalf("container has %d windows, want 3", reader.NumWindows())
	}

	// Decode everything and measure aggregate error.
	ac := metrics.NewAccumulator()
	sliceIdx := 0
	for wi := 0; wi < reader.NumWindows(); wi++ {
		cw, err := reader.ReadWindow(wi)
		if err != nil {
			t.Fatal(err)
		}
		recon, err := core.Decompress(cw)
		if err != nil {
			t.Fatal(err)
		}
		for _, rs := range recon.Slices {
			if err := ac.Add(src.Slices[sliceIdx].Data, rs.Data); err != nil {
				t.Fatal(err)
			}
			sliceIdx++
		}
	}
	if sliceIdx != 25 {
		t.Fatalf("decoded %d slices, want 25", sliceIdx)
	}
	if e := ac.NRMSE(); e <= 0 || e > 0.05 {
		t.Errorf("end-to-end NRMSE %g outside plausible range (0, 0.05]", e)
	}

	// Random access: a single slice from the middle window must equal the
	// full decode.
	cw, err := reader.ReadWindow(1)
	if err != nil {
		t.Fatal(err)
	}
	one, err := core.DecompressSlice(cw, 3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.Decompress(cw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one.Data {
		if one.Data[i] != full.Slices[3].Data[i] {
			t.Fatal("random-access slice differs from full decode")
		}
	}
}

// TestProgressiveCoderOverWaveletCoefficients layers the embedded coder on
// a real 4D-transformed window: decoding increasing prefixes must yield
// monotonically improving reconstructions of the actual field.
func TestProgressiveCoderOverWaveletCoefficients(t *testing.T) {
	f, err := synth.NewField(synth.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := f.ScalarWindow(16, 16, 16, 10, 0, 1)
	orig := w.Clone()
	spec := transform.Spec{
		SpatialKernel:  wavelet.CDF97,
		SpatialLevels:  -1,
		TemporalKernel: wavelet.CDF97,
		TemporalLevels: -1,
	}
	if err := transform.Forward4D(w, spec); err != nil {
		t.Fatal(err)
	}
	// Flatten coefficients, encode progressively.
	all := make([]float64, 0, w.TotalSamples())
	for _, s := range w.Slices {
		all = append(all, s.Data...)
	}
	stream, err := coder.Encode(all, 20)
	if err != nil {
		t.Fatal(err)
	}

	reconstructAt := func(bytes int) float64 {
		dec, err := coder.Decode(stream[:bytes])
		if err != nil {
			t.Fatal(err)
		}
		rw := grid.NewWindow(w.Dims)
		off := 0
		for i := range w.Slices {
			g := grid.NewField3D(w.Dims.Nx, w.Dims.Ny, w.Dims.Nz)
			copy(g.Data, dec[off:off+len(g.Data)])
			off += len(g.Data)
			if err := rw.Append(g, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := transform.Inverse4D(rw, spec); err != nil {
			t.Fatal(err)
		}
		ac := metrics.NewAccumulator()
		for i := range orig.Slices {
			if err := ac.Add(orig.Slices[i].Data, rw.Slices[i].Data); err != nil {
				t.Fatal(err)
			}
		}
		return ac.NRMSE()
	}

	quarter := reconstructAt(len(stream) / 4)
	half := reconstructAt(len(stream) / 2)
	full := reconstructAt(len(stream))
	if !(full <= half && half <= quarter) {
		t.Errorf("progressive errors not monotone: 1/4=%.4g 1/2=%.4g full=%.4g", quarter, half, full)
	}
	if full > 1e-4 {
		t.Errorf("full-stream NRMSE %.4g too large", full)
	}
	if quarter <= 0 {
		t.Error("quarter-stream reconstruction suspiciously exact")
	}
}

// TestWaveletVsLorenzoOnSameData compares the two compressors on identical
// simulation output at matched storage, documenting that both are credible
// and that the wavelet codec is competitive on smooth data.
func TestWaveletVsLorenzoOnSameData(t *testing.T) {
	w := ghostWindow(t, 16, 10)
	rawBytes := int64(w.TotalSamples()) * 4

	// Wavelet at 16:1.
	opts := core.DefaultOptions()
	opts.WindowSize = 10
	opts.Ratio = 16
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	recon, cw, err := comp.RoundTrip(w)
	if err != nil {
		t.Fatal(err)
	}
	acW := metrics.NewAccumulator()
	for i := range w.Slices {
		if err := acW.Add(w.Slices[i].Data, recon.Slices[i].Data); err != nil {
			t.Fatal(err)
		}
	}
	waveletErr := acW.NRMSE()
	waveletBytes := cw.IdealSizeBytes()

	// Lorenzo tuned to land near the same size by sweeping error bounds.
	rng := w.Range()
	var lorenzoErr float64
	var lorenzoBytes int64
	for _, frac := range []float64{1e-2, 3e-3, 1e-3, 3e-4, 1e-4} {
		c, err := baseline.Compress(w, frac*rng, true)
		if err != nil {
			t.Fatal(err)
		}
		if c.SizeBytes() <= waveletBytes || lorenzoBytes == 0 {
			lr, err := baseline.Decompress(c)
			if err != nil {
				t.Fatal(err)
			}
			ac := metrics.NewAccumulator()
			for i := range w.Slices {
				if err := ac.Add(w.Slices[i].Data, lr.Slices[i].Data); err != nil {
					t.Fatal(err)
				}
			}
			lorenzoErr = ac.NRMSE()
			lorenzoBytes = c.SizeBytes()
		}
	}
	t.Logf("raw %d B; wavelet: %d B, NRMSE %.3e; lorenzo: %d B, NRMSE %.3e",
		rawBytes, waveletBytes, waveletErr, lorenzoBytes, lorenzoErr)
	if waveletErr <= 0 || lorenzoErr <= 0 {
		t.Error("both compressors should be lossy at these settings")
	}
	// Sanity: both achieve real compression with bounded error.
	if waveletBytes >= rawBytes || lorenzoBytes >= rawBytes {
		t.Error("a compressor failed to compress")
	}
	if waveletErr > 0.1 || lorenzoErr > 0.1 {
		t.Error("a compressor produced implausibly large errors")
	}
}

// TestContainerFaultInjection flips bytes across a container file and
// checks that every corruption is either detected as an error or yields a
// well-formed (never panicking) result.
func TestContainerFaultInjection(t *testing.T) {
	w := ghostWindow(t, 8, 10)
	dir := t.TempDir()
	path := filepath.Join(dir, "data.stw")
	container, err := storage.CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.WindowSize = 10
	opts.Ratio = 8
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := comp.CompressWindow(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := container.Append(cw); err != nil {
		t.Fatal(err)
	}
	if err := container.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 3, 8, 20, len(data) / 2, len(data) - 10, len(data) - 1} {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0xFF
		cpath := filepath.Join(dir, "corrupt.stw")
		if err := os.WriteFile(cpath, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("corruption at byte %d caused panic: %v", pos, r)
				}
			}()
			r, err := storage.OpenContainer(cpath)
			if err != nil {
				return // detected at open: fine
			}
			defer r.Close()
			for i := 0; i < r.NumWindows(); i++ {
				cw, err := r.ReadWindow(i)
				if err != nil {
					continue // detected at read: fine
				}
				if _, err := core.Decompress(cw); err != nil {
					continue // detected at decompress: fine
				}
				// Silent corruption of float payload bits is acceptable
				// (no checksums by design); structural fields are checked.
			}
		}()
	}
}

// TestStaggeredGridsCompress verifies the CloverLeaf-style size split (N^3
// energy vs (N+1)^3 velocity) flows through the whole codec, including odd
// grid extents.
func TestStaggeredGridsCompress(t *testing.T) {
	for _, n := range []int{16, 17} { // 17 = odd extents throughout
		d := grid.Dims{Nx: n, Ny: n, Nz: n}
		w := grid.NewWindow(d)
		for ts := 0; ts < 10; ts++ {
			f := grid.NewField3D(n, n, n)
			for z := 0; z < n; z++ {
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						f.Set(x, y, z, math.Sin(0.4*float64(x)+0.3*float64(ts))*
							math.Cos(0.5*float64(y))+0.2*float64(z))
					}
				}
			}
			if err := w.Append(f, float64(ts)); err != nil {
				t.Fatal(err)
			}
		}
		opts := core.DefaultOptions()
		opts.WindowSize = 10
		opts.Ratio = 8
		comp, err := core.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		recon, _, err := comp.RoundTrip(w)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ac := metrics.NewAccumulator()
		for i := range w.Slices {
			if err := ac.Add(w.Slices[i].Data, recon.Slices[i].Data); err != nil {
				t.Fatal(err)
			}
		}
		if e := ac.NRMSE(); e > 0.05 {
			t.Errorf("n=%d: NRMSE %g", n, e)
		}
	}
}

// Package synth generates synthetic turbulence-like scalar and vector
// fields by superposing random Fourier modes with a Kolmogorov-like energy
// spectrum and eddy-turnover temporal decorrelation ("kinematic simulation"
// in the turbulence literature). It produces fields with controllable
// spatial and temporal coherence at any grid size in O(modes × gridpoints)
// time, which makes it the cheap stand-in for large production grids where
// running the real pseudo-spectral solver would be wasteful.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"stwave/internal/fbits"
	"stwave/internal/grid"
	"stwave/internal/num"
)

// Config controls the generated ensemble.
type Config struct {
	// Modes is the number of random Fourier modes (more modes, smoother
	// statistics). Typical: 32-128.
	Modes int
	// MaxWavenumber bounds |k| of the modes; higher adds finer spatial
	// detail (less spatial coherence).
	MaxWavenumber float64
	// SpectrumSlope is the exponent p in amplitude ~ |k|^{-p}. Kolmogorov
	// velocity spectra correspond to p ≈ 11/6 for component amplitudes.
	SpectrumSlope float64
	// TimeScale sets temporal decorrelation: mode frequency
	// ω = |k|^{2/3} / TimeScale. Larger means more temporal coherence.
	TimeScale float64
	// Seed fixes the random ensemble.
	Seed int64
}

// DefaultConfig returns a Ghost-like, strongly coherent configuration.
func DefaultConfig() Config {
	return Config{
		Modes:         64,
		MaxWavenumber: 8,
		SpectrumSlope: 11.0 / 6.0,
		TimeScale:     10,
		Seed:          1,
	}
}

type mode struct {
	kx, ky, kz float64
	amp        float64
	phase      float64
	omega      float64
	// dir is the unit amplitude direction for vector fields, chosen
	// perpendicular to k so the synthesized velocity is divergence-free.
	dx, dy, dz float64
}

// Field synthesizes time-varying fields from a fixed mode ensemble. It is
// safe for concurrent sampling.
type Field struct {
	cfg   Config
	modes []mode
}

// NewField draws the random ensemble.
func NewField(cfg Config) (*Field, error) {
	if cfg.Modes < 1 {
		return nil, fmt.Errorf("synth: need at least 1 mode, got %d", cfg.Modes)
	}
	if cfg.MaxWavenumber <= 0 {
		return nil, fmt.Errorf("synth: MaxWavenumber must be positive, got %g", cfg.MaxWavenumber)
	}
	if cfg.TimeScale <= 0 {
		return nil, fmt.Errorf("synth: TimeScale must be positive, got %g", cfg.TimeScale)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Field{cfg: cfg, modes: make([]mode, cfg.Modes)}
	for i := range f.modes {
		// Wavenumber magnitude log-distributed in [1, MaxWavenumber].
		kmag := math.Exp(rng.Float64() * math.Log(cfg.MaxWavenumber))
		// Uniform random direction.
		theta := math.Acos(2*rng.Float64() - 1)
		phi := 2 * math.Pi * rng.Float64()
		kx := kmag * math.Sin(theta) * math.Cos(phi)
		ky := kmag * math.Sin(theta) * math.Sin(phi)
		kz := kmag * math.Cos(theta)
		// Amplitude direction: random vector projected perpendicular to k.
		ax, ay, az := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		dot := (ax*kx + ay*ky + az*kz) / (kmag * kmag)
		ax -= dot * kx
		ay -= dot * ky
		az -= dot * kz
		norm := math.Sqrt(ax*ax + ay*ay + az*az)
		if fbits.Zero(norm) {
			ax, ay, az, norm = 1, 0, 0, 1
		}
		f.modes[i] = mode{
			kx: kx, ky: ky, kz: kz,
			amp:   math.Pow(kmag, -cfg.SpectrumSlope),
			phase: 2 * math.Pi * rng.Float64(),
			omega: math.Pow(kmag, 2.0/3.0) / cfg.TimeScale,
			dx:    ax / norm, dy: ay / norm, dz: az / norm,
		}
	}
	return f, nil
}

// ScalarAt evaluates the scalar field at physical point (x, y, z) and time
// t. Coordinates live on the unit torus scale: one spatial unit spans the
// lowest wavenumber.
func (f *Field) ScalarAt(x, y, z, t float64) float64 {
	var v float64
	for i := range f.modes {
		m := &f.modes[i]
		v += m.amp * math.Sin(m.kx*x+m.ky*y+m.kz*z+m.omega*t+m.phase)
	}
	return v
}

// VelocityAt evaluates the divergence-free synthetic velocity at a point.
func (f *Field) VelocityAt(x, y, z, t float64) (u, v, w float64) {
	for i := range f.modes {
		m := &f.modes[i]
		s := m.amp * math.Sin(m.kx*x+m.ky*y+m.kz*z+m.omega*t+m.phase)
		u += m.dx * s
		v += m.dy * s
		w += m.dz * s
	}
	return u, v, w
}

// SampleScalar fills an nx×ny×nz grid spanning [0, 2π)³ with the scalar
// field at time t.
func (f *Field) SampleScalar(nx, ny, nz int, t float64) *grid.Field3D {
	out := grid.NewField3D(nx, ny, nz)
	f.SampleScalarInto(out, t)
	return out
}

// SampleScalarInto fills dst with the scalar field at time t without
// allocating — the recycled-buffer variant the streaming ingest path
// uses. dst supplies the sampling resolution.
func (f *Field) SampleScalarInto(dst *grid.Field3D, t float64) error {
	return sampleScalarIntoOf(f, dst, t)
}

// SampleScalarInto32 is SampleScalarInto storing at float32 — the
// single-precision ingest path. The mode sum stays float64; only the
// sampled field is 4 bytes per sample.
func (f *Field) SampleScalarInto32(dst *grid.Field3D32, t float64) error {
	return sampleScalarIntoOf(f, dst, t)
}

// sampleScalarIntoOf is the precision-generic fill loop behind the two
// SampleScalarInto variants: evaluation stays float64, the store narrows
// (or not) at the fill point.
func sampleScalarIntoOf[F num.Float](f *Field, dst *grid.Field3DOf[F], t float64) error {
	if !dst.Dims.Valid() {
		return fmt.Errorf("synth: invalid dst dims %v", dst.Dims)
	}
	nx, ny, nz := dst.Dims.Nx, dst.Dims.Ny, dst.Dims.Nz
	hx := 2 * math.Pi / float64(nx)
	hy := 2 * math.Pi / float64(ny)
	hz := 2 * math.Pi / float64(nz)
	for z := 0; z < nz; z++ {
		Z := float64(z) * hz
		for y := 0; y < ny; y++ {
			Y := float64(y) * hy
			for x := 0; x < nx; x++ {
				dst.Set(x, y, z, F(f.ScalarAt(float64(x)*hx, Y, Z, t)))
			}
		}
	}
	return nil
}

// SampleVelocityX fills a grid with the X component of the synthetic
// velocity at time t.
func (f *Field) SampleVelocityX(nx, ny, nz int, t float64) *grid.Field3D {
	out := grid.NewField3D(nx, ny, nz)
	hx := 2 * math.Pi / float64(nx)
	hy := 2 * math.Pi / float64(ny)
	hz := 2 * math.Pi / float64(nz)
	for z := 0; z < nz; z++ {
		Z := float64(z) * hz
		for y := 0; y < ny; y++ {
			Y := float64(y) * hy
			for x := 0; x < nx; x++ {
				u, _, _ := f.VelocityAt(float64(x)*hx, Y, Z, t)
				out.Set(x, y, z, u)
			}
		}
	}
	return out
}

// ScalarWindow samples `count` scalar slices at interval dt starting at t0.
func (f *Field) ScalarWindow(nx, ny, nz, count int, t0, dt float64) *grid.Window {
	w := grid.NewWindow(grid.Dims{Nx: nx, Ny: ny, Nz: nz})
	for i := 0; i < count; i++ {
		t := t0 + float64(i)*dt
		if err := w.Append(f.SampleScalar(nx, ny, nz, t), t); err != nil {
			panic(err) // dims are ours by construction
		}
	}
	return w
}

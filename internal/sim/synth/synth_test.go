package synth

import (
	"math"
	"testing"
)

func TestNewFieldValidation(t *testing.T) {
	if _, err := NewField(Config{Modes: 0, MaxWavenumber: 4, TimeScale: 1}); err == nil {
		t.Error("expected error for zero modes")
	}
	if _, err := NewField(Config{Modes: 4, MaxWavenumber: 0, TimeScale: 1}); err == nil {
		t.Error("expected error for zero MaxWavenumber")
	}
	if _, err := NewField(Config{Modes: 4, MaxWavenumber: 4, TimeScale: 0}); err == nil {
		t.Error("expected error for zero TimeScale")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	f1, err := NewField(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewField(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x := float64(i) * 0.37
		if f1.ScalarAt(x, 2*x, 0.5*x, 1.0) != f2.ScalarAt(x, 2*x, 0.5*x, 1.0) {
			t.Fatal("same seed produced different fields")
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	f3, err := NewField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f1.ScalarAt(1, 2, 3, 4) == f3.ScalarAt(1, 2, 3, 4) {
		t.Error("different seeds produced identical value (vanishingly unlikely)")
	}
}

// The synthesized velocity must be (analytically) divergence-free: check
// numerically with central differences.
func TestVelocityDivergenceFree(t *testing.T) {
	f, err := NewField(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-5
	checkAt := func(x, y, z, tt float64) {
		u1, _, _ := f.VelocityAt(x+h, y, z, tt)
		u0, _, _ := f.VelocityAt(x-h, y, z, tt)
		_, v1, _ := f.VelocityAt(x, y+h, z, tt)
		_, v0, _ := f.VelocityAt(x, y-h, z, tt)
		_, _, w1 := f.VelocityAt(x, y, z+h, tt)
		_, _, w0 := f.VelocityAt(x, y, z-h, tt)
		div := (u1-u0)/(2*h) + (v1-v0)/(2*h) + (w1-w0)/(2*h)
		// Scale tolerance by a typical gradient magnitude.
		scale := math.Abs(u1-u0)/(2*h) + math.Abs(v1-v0)/(2*h) + math.Abs(w1-w0)/(2*h) + 1
		if math.Abs(div) > 1e-4*scale {
			t.Errorf("divergence %g at (%g,%g,%g,t=%g)", div, x, y, z, tt)
		}
	}
	for i := 0; i < 10; i++ {
		fi := float64(i)
		checkAt(0.3*fi, 1.1*fi, 0.7*fi, 0.5*fi)
	}
}

// Temporal coherence knob: a larger TimeScale must yield higher correlation
// between consecutive samples.
func TestTimeScaleControlsTemporalCoherence(t *testing.T) {
	corr := func(timeScale float64) float64 {
		cfg := DefaultConfig()
		cfg.TimeScale = timeScale
		f, err := NewField(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a := f.SampleScalar(12, 12, 12, 0)
		b := f.SampleScalar(12, 12, 12, 5.0)
		var num, da, db float64
		for i := range a.Data {
			num += a.Data[i] * b.Data[i]
			da += a.Data[i] * a.Data[i]
			db += b.Data[i] * b.Data[i]
		}
		return num / math.Sqrt(da*db)
	}
	coherent := corr(50)
	incoherent := corr(0.5)
	if coherent <= incoherent {
		t.Errorf("correlation with TimeScale=50 (%.3f) not above TimeScale=0.5 (%.3f)", coherent, incoherent)
	}
	if coherent < 0.9 {
		t.Errorf("long TimeScale correlation %.3f, want > 0.9", coherent)
	}
}

func TestSampleScalarMatchesPointEvaluation(t *testing.T) {
	f, err := NewField(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := f.SampleScalar(8, 6, 4, 2.5)
	if g.Dims.Nx != 8 || g.Dims.Ny != 6 || g.Dims.Nz != 4 {
		t.Fatalf("dims = %v", g.Dims)
	}
	h := 2 * math.Pi
	want := f.ScalarAt(3*h/8, 2*h/6, 1*h/4, 2.5)
	if got := g.At(3, 2, 1); got != want {
		t.Errorf("grid sample %g != point evaluation %g", got, want)
	}
}

func TestScalarWindow(t *testing.T) {
	f, err := NewField(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := f.ScalarWindow(6, 6, 6, 5, 10, 2)
	if w.Len() != 5 {
		t.Fatalf("window len = %d", w.Len())
	}
	if w.Times[0] != 10 || w.Times[4] != 18 {
		t.Errorf("times = %v", w.Times)
	}
	// Slices must differ over time but not wildly (coherence).
	var diff, norm float64
	for i := range w.Slices[0].Data {
		d := w.Slices[1].Data[i] - w.Slices[0].Data[i]
		diff += d * d
		norm += w.Slices[0].Data[i] * w.Slices[0].Data[i]
	}
	if diff == 0 {
		t.Error("consecutive slices identical")
	}
	if diff > norm {
		t.Error("consecutive slices essentially uncorrelated at default settings")
	}
}

func TestSpectrumSlopeDampsHighK(t *testing.T) {
	// With a steep slope, the field is dominated by the lowest wavenumber
	// modes, so its value changes slowly in space.
	cfg := DefaultConfig()
	cfg.SpectrumSlope = 4
	smoothF, err := NewField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SpectrumSlope = 0
	roughF, err := NewField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	variation := func(f *Field) float64 {
		var v float64
		prev := f.ScalarAt(0, 0, 0, 0)
		for i := 1; i <= 200; i++ {
			x := float64(i) * 0.05
			cur := f.ScalarAt(x, 0, 0, 0)
			v += math.Abs(cur - prev)
			prev = cur
		}
		return v
	}
	// Normalize by field amplitude.
	amp := func(f *Field) float64 {
		var a float64
		for i := 0; i < 100; i++ {
			a += math.Abs(f.ScalarAt(float64(i)*0.173, float64(i)*0.311, 0, 0))
		}
		return a / 100
	}
	smoothVar := variation(smoothF) / amp(smoothF)
	roughVar := variation(roughF) / amp(roughF)
	if smoothVar >= roughVar {
		t.Errorf("steep-spectrum variation %.3g not below flat-spectrum %.3g", smoothVar, roughVar)
	}
}

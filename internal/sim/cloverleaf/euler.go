// Package cloverleaf implements a 3D compressible Euler solver in the style
// of the CloverLeaf3D mini-app the paper evaluates on: an ideal-gas finite
// volume scheme on a uniform staggered-output grid, initialized with a
// high-energy region expanding into a low-density ambient state.
//
// The scheme is first-order Godunov with Rusanov (local Lax-Friedrichs)
// fluxes and reflective walls — deliberately simple and extremely robust,
// which is what the compression study needs: smooth, physically plausible
// energy and velocity fields evolving coherently in time.
//
// Matching the paper's Section V-A3 grid-size detail, Energy() returns the
// cell-centered field (N³) while VelocityX() returns the node-sampled field
// ((N+1)³), reproducing the 96³-energy / 97³-velocity split.
package cloverleaf

import (
	"fmt"
	"math"

	"stwave/internal/grid"
	"stwave/internal/num"
)

// gamma is the ideal-gas adiabatic index.
const gamma = 1.4

// Config parametrizes the solver.
type Config struct {
	// N is the number of cells per axis.
	N int
	// CFL is the Courant number used to pick each time step (0 < CFL < 1).
	CFL float64
	// AmbientDensity and AmbientEnergy describe the background state
	// (CloverLeaf's canonical inputs use 0.2 / 1.0).
	AmbientDensity, AmbientEnergy float64
	// BlobDensity and BlobEnergy describe the energetic initial region
	// (canonically 1.0 / 2.5) filling the low corner octant.
	BlobDensity, BlobEnergy float64
	// BlobFraction is the fraction of the domain per axis covered by the
	// energetic region (canonically 0.5).
	BlobFraction float64
	// SecondOrder enables MUSCL minmod reconstruction (see muscl.go); off
	// gives the robust first-order scheme.
	SecondOrder bool
}

// DefaultConfig mirrors the standard CloverLeaf test problem.
func DefaultConfig(n int) Config {
	return Config{
		N:              n,
		CFL:            0.4,
		AmbientDensity: 0.2,
		AmbientEnergy:  1.0,
		BlobDensity:    1.0,
		BlobEnergy:     2.5,
		BlobFraction:   0.5,
	}
}

// Solver evolves conserved variables (density, momentum, total energy) on
// an N³ cell grid spanning the unit cube.
type Solver struct {
	cfg   Config
	n     int
	dx    float64
	time  float64
	steps int

	// Conserved state, one value per cell, X-fastest.
	rho, mx, my, mz, e []float64
	// Scratch for flux updates.
	nrho, nmx, nmy, nmz, ne []float64
}

// NewSolver builds and initializes the solver.
func NewSolver(cfg Config) (*Solver, error) {
	if cfg.N < 4 {
		return nil, fmt.Errorf("cloverleaf: N must be >= 4, got %d", cfg.N)
	}
	if cfg.CFL <= 0 || cfg.CFL >= 1 {
		return nil, fmt.Errorf("cloverleaf: CFL must be in (0,1), got %g", cfg.CFL)
	}
	if cfg.AmbientDensity <= 0 || cfg.BlobDensity <= 0 {
		return nil, fmt.Errorf("cloverleaf: densities must be positive")
	}
	if cfg.AmbientEnergy <= 0 || cfg.BlobEnergy <= 0 {
		return nil, fmt.Errorf("cloverleaf: energies must be positive")
	}
	n := cfg.N
	total := n * n * n
	s := &Solver{
		cfg: cfg, n: n, dx: 1.0 / float64(n),
		rho: make([]float64, total), mx: make([]float64, total),
		my: make([]float64, total), mz: make([]float64, total),
		e: make([]float64, total), nrho: make([]float64, total),
		nmx: make([]float64, total), nmy: make([]float64, total),
		nmz: make([]float64, total), ne: make([]float64, total),
	}
	blob := int(float64(n) * cfg.BlobFraction)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				idx := (z*n+y)*n + x
				rho, eint := cfg.AmbientDensity, cfg.AmbientEnergy
				if x < blob && y < blob && z < blob {
					rho, eint = cfg.BlobDensity, cfg.BlobEnergy
				}
				s.rho[idx] = rho
				s.e[idx] = rho * eint // total energy: no initial motion
			}
		}
	}
	return s, nil
}

// idx maps cell coordinates to the linear index with reflective clamping.
func (s *Solver) idx(x, y, z int) int {
	if x < 0 {
		x = -x - 1
	}
	if x >= s.n {
		x = 2*s.n - x - 1
	}
	if y < 0 {
		y = -y - 1
	}
	if y >= s.n {
		y = 2*s.n - y - 1
	}
	if z < 0 {
		z = -z - 1
	}
	if z >= s.n {
		z = 2*s.n - z - 1
	}
	return (z*s.n+y)*s.n + x
}

// cell holds the primitive reconstruction of one cell.
type cell struct {
	rho, u, v, w, p, E float64
}

func (s *Solver) primitive(i int) cell {
	rho := s.rho[i]
	u := s.mx[i] / rho
	v := s.my[i] / rho
	w := s.mz[i] / rho
	E := s.e[i]
	kin := 0.5 * rho * (u*u + v*v + w*w)
	eint := E - kin
	if eint < 1e-12*E {
		eint = 1e-12 * E // pressure floor
	}
	p := (gamma - 1) * eint
	return cell{rho, u, v, w, p, E}
}

// soundSpeed returns c = sqrt(gamma p / rho).
func (c cell) soundSpeed() float64 { return math.Sqrt(gamma * c.p / c.rho) }

// maxWaveSpeed scans the grid for the fastest signal speed.
func (s *Solver) maxWaveSpeed() float64 {
	var m float64
	for i := range s.rho {
		c := s.primitive(i)
		sp := math.Abs(c.u) + c.soundSpeed()
		if v := math.Abs(c.v) + c.soundSpeed(); v > sp {
			sp = v
		}
		if w := math.Abs(c.w) + c.soundSpeed(); w > sp {
			sp = w
		}
		if sp > m {
			m = sp
		}
	}
	return m
}

// flux5 is a 5-component conserved flux.
type flux5 [5]float64

// rusanov computes the Rusanov numerical flux across a face between left
// and right states, for the axis whose velocity component is selected by
// vel (0=x, 1=y, 2=z).
func rusanov(l, r cell, axis int) flux5 {
	velOf := func(c cell) float64 {
		switch axis {
		case 0:
			return c.u
		case 1:
			return c.v
		default:
			return c.w
		}
	}
	physFlux := func(c cell) flux5 {
		vn := velOf(c)
		f := flux5{
			c.rho * vn,
			c.rho * vn * c.u,
			c.rho * vn * c.v,
			c.rho * vn * c.w,
			(c.E + c.p) * vn,
		}
		// Pressure contributes to the normal momentum flux only.
		f[1+axis] += c.p
		return f
	}
	fl := physFlux(l)
	fr := physFlux(r)
	smax := math.Max(math.Abs(velOf(l))+l.soundSpeed(), math.Abs(velOf(r))+r.soundSpeed())
	ul := [5]float64{l.rho, l.rho * l.u, l.rho * l.v, l.rho * l.w, l.E}
	ur := [5]float64{r.rho, r.rho * r.u, r.rho * r.v, r.rho * r.w, r.E}
	var out flux5
	for c := 0; c < 5; c++ {
		out[c] = 0.5*(fl[c]+fr[c]) - 0.5*smax*(ur[c]-ul[c])
	}
	return out
}

// Step advances one CFL-limited time step and returns the dt used.
func (s *Solver) Step() float64 {
	smax := s.maxWaveSpeed()
	dt := s.cfg.CFL * s.dx / (smax + 1e-300)
	s.advance(dt)
	return dt
}

// advance applies one first-order finite-volume update with time step dt.
func (s *Solver) advance(dt float64) {
	n := s.n
	lambda := dt / s.dx
	copy(s.nrho, s.rho)
	copy(s.nmx, s.mx)
	copy(s.nmy, s.my)
	copy(s.nmz, s.mz)
	copy(s.ne, s.e)

	apply := func(i int, f flux5, sign float64) {
		s.nrho[i] += sign * lambda * f[0]
		s.nmx[i] += sign * lambda * f[1]
		s.nmy[i] += sign * lambda * f[2]
		s.nmz[i] += sign * lambda * f[3]
		s.ne[i] += sign * lambda * f[4]
	}

	// Sweep faces along each axis. Face between cell (x,y,z) and its +axis
	// neighbour; boundary faces use the reflected ghost state.
	for axis := 0; axis < 3; axis++ {
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					i := (z*n+y)*n + x
					// +face
					var xr, yr, zr = x, y, z
					switch axis {
					case 0:
						xr++
					case 1:
						yr++
					case 2:
						zr++
					}
					outside := xr >= n || yr >= n || zr >= n
					var l, r cell
					if outside {
						// Wall: reconstruct the interior state to the face
						// and mirror it, preserving exact flux cancellation.
						l, _ = s.faceStates(x, y, z, x, y, z, axis)
						r = mirror(l, axis)
					} else {
						l, r = s.faceStates(x, y, z, xr, yr, zr, axis)
					}
					f := rusanov(l, r, axis)
					apply(i, f, -1)
					if !outside {
						apply((zr*n+yr)*n+xr, f, +1)
					}
					// -face at the domain boundary (interior -faces are the
					// previous cell's +face).
					atLow := (axis == 0 && x == 0) || (axis == 1 && y == 0) || (axis == 2 && z == 0)
					if atLow {
						_, rlow := s.faceStates(x, y, z, x, y, z, axis)
						gl := mirror(rlow, axis)
						fb := rusanov(gl, rlow, axis)
						apply(i, fb, +1)
					}
				}
			}
		}
	}
	s.rho, s.nrho = s.nrho, s.rho
	s.mx, s.nmx = s.nmx, s.mx
	s.my, s.nmy = s.nmy, s.my
	s.mz, s.nmz = s.nmz, s.mz
	s.e, s.ne = s.ne, s.e
	s.time += dt
	s.steps++
}

// Run advances by `steps` CFL-limited steps.
func (s *Solver) Run(steps int) {
	for i := 0; i < steps; i++ {
		s.Step()
	}
}

// Time returns the simulation time.
func (s *Solver) Time() float64 { return s.time }

// Steps returns the number of completed steps.
func (s *Solver) Steps() int { return s.steps }

// N returns the cell count per axis.
func (s *Solver) N() int { return s.n }

// TotalMass integrates density over the domain — conserved exactly by the
// scheme with reflective walls.
func (s *Solver) TotalMass() float64 {
	var m float64
	for _, r := range s.rho {
		m += r
	}
	return m * s.dx * s.dx * s.dx
}

// TotalEnergy integrates total energy over the domain — also conserved.
func (s *Solver) TotalEnergy() float64 {
	var e float64
	for _, v := range s.e {
		e += v
	}
	return e * s.dx * s.dx * s.dx
}

// Energy returns the cell-centered specific internal energy field (N³) —
// the paper's CloverLeaf "energy" variable.
func (s *Solver) Energy() *grid.Field3D {
	f := grid.NewField3D(s.n, s.n, s.n)
	s.EnergyInto(f)
	return f
}

// EnergyInto fills dst with the specific internal energy field without
// allocating; dst must be N³. The allocation-free variant exists for the
// streaming ingest path, which samples every step into recycled buffers.
func (s *Solver) EnergyInto(dst *grid.Field3D) error {
	if want := (grid.Dims{Nx: s.n, Ny: s.n, Nz: s.n}); dst.Dims != want {
		return fmt.Errorf("cloverleaf: dst dims %v != solver dims %v", dst.Dims, want)
	}
	for i := range dst.Data {
		c := s.primitive(i)
		dst.Data[i] = c.p / ((gamma - 1) * c.rho)
	}
	return nil
}

// VelocityX returns the X velocity sampled at cell corners ((N+1)³) by
// averaging the eight adjacent cells — reproducing the paper's staggered
// 97³ velocity grid alongside the 96³ energy grid.
func (s *Solver) VelocityX() *grid.Field3D {
	n := s.n
	f := grid.NewField3D(n+1, n+1, n+1)
	for z := 0; z <= n; z++ {
		for y := 0; y <= n; y++ {
			for x := 0; x <= n; x++ {
				var sum float64
				for dz := -1; dz <= 0; dz++ {
					for dy := -1; dy <= 0; dy++ {
						for dx := -1; dx <= 0; dx++ {
							c := s.primitive(s.idx(x+dx, y+dy, z+dz))
							sum += c.u
						}
					}
				}
				f.Set(x, y, z, sum/8)
			}
		}
	}
	return f
}

// Density returns the cell-centered density field.
func (s *Solver) Density() *grid.Field3D {
	f := grid.NewField3D(s.n, s.n, s.n)
	s.DensityInto(f)
	return f
}

// DensityInto fills dst with the cell-centered density field without
// allocating; dst must be N³.
func (s *Solver) DensityInto(dst *grid.Field3D) error {
	if want := (grid.Dims{Nx: s.n, Ny: s.n, Nz: s.n}); dst.Dims != want {
		return fmt.Errorf("cloverleaf: dst dims %v != solver dims %v", dst.Dims, want)
	}
	copy(dst.Data, s.rho)
	return nil
}

// DensityInto32 is DensityInto narrowing to float32 at the fill point —
// the single-precision ingest path. The solver marches in float64; only
// the sampled field is stored at 4 bytes per sample. dst must be N³.
func (s *Solver) DensityInto32(dst *grid.Field3D32) error {
	if want := (grid.Dims{Nx: s.n, Ny: s.n, Nz: s.n}); dst.Dims != want {
		return fmt.Errorf("cloverleaf: dst dims %v != solver dims %v", dst.Dims, want)
	}
	num.Convert(dst.Data, s.rho)
	return nil
}

package cloverleaf

import (
	"math"
	"testing"
)

func TestNewSolverValidation(t *testing.T) {
	if _, err := NewSolver(Config{N: 2, CFL: 0.4, AmbientDensity: 1, AmbientEnergy: 1, BlobDensity: 1, BlobEnergy: 1}); err == nil {
		t.Error("expected error for tiny N")
	}
	if _, err := NewSolver(Config{N: 8, CFL: 1.5, AmbientDensity: 1, AmbientEnergy: 1, BlobDensity: 1, BlobEnergy: 1}); err == nil {
		t.Error("expected error for CFL >= 1")
	}
	if _, err := NewSolver(Config{N: 8, CFL: 0.4, AmbientDensity: -1, AmbientEnergy: 1, BlobDensity: 1, BlobEnergy: 1}); err == nil {
		t.Error("expected error for negative density")
	}
	if _, err := NewSolver(Config{N: 8, CFL: 0.4, AmbientDensity: 1, AmbientEnergy: 0, BlobDensity: 1, BlobEnergy: 1}); err == nil {
		t.Error("expected error for zero energy")
	}
}

func TestInitialState(t *testing.T) {
	s, err := NewSolver(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	e := s.Energy()
	// Blob corner has high energy, far corner ambient.
	if got := e.At(0, 0, 0); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("blob energy = %g, want 2.5", got)
	}
	if got := e.At(15, 15, 15); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("ambient energy = %g, want 1.0", got)
	}
	rho := s.Density()
	if got := rho.At(0, 0, 0); got != 1.0 {
		t.Errorf("blob density = %g, want 1.0", got)
	}
	if got := rho.At(15, 15, 15); got != 0.2 {
		t.Errorf("ambient density = %g, want 0.2", got)
	}
}

func TestMassAndEnergyConservation(t *testing.T) {
	s, err := NewSolver(DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.TotalMass()
	e0 := s.TotalEnergy()
	s.Run(50)
	m1 := s.TotalMass()
	e1 := s.TotalEnergy()
	if rel := math.Abs(m1-m0) / m0; rel > 1e-12 {
		t.Errorf("mass drifted by %.3g relative", rel)
	}
	if rel := math.Abs(e1-e0) / e0; rel > 1e-12 {
		t.Errorf("energy drifted by %.3g relative", rel)
	}
}

func TestDensityStaysPositive(t *testing.T) {
	s, err := NewSolver(DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	rho := s.Density()
	for i, v := range rho.Data {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("density[%d] = %g after 100 steps", i, v)
		}
	}
}

func TestShockPropagates(t *testing.T) {
	s, err := NewSolver(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	// Ambient far corner is initially quiescent; after enough steps the
	// expansion reaches it.
	probe := func() float64 {
		e := s.Energy()
		return e.At(15, 15, 15)
	}
	before := probe()
	for i := 0; i < 300 && math.Abs(probe()-before) < 1e-6; i++ {
		s.Step()
	}
	if math.Abs(probe()-before) < 1e-6 {
		t.Error("disturbance never reached the far corner")
	}
	if s.Time() <= 0 {
		t.Error("time did not advance")
	}
}

func TestVelocityDevelops(t *testing.T) {
	s, err := NewSolver(DefaultConfig(12))
	if err != nil {
		t.Fatal(err)
	}
	u0 := s.VelocityX()
	for _, v := range u0.Data {
		if v != 0 {
			t.Fatal("initial velocity must be zero")
		}
	}
	s.Run(20)
	u := s.VelocityX()
	var maxU float64
	for _, v := range u.Data {
		if a := math.Abs(v); a > maxU {
			maxU = a
		}
	}
	if maxU == 0 {
		t.Error("no motion developed from the pressure imbalance")
	}
}

func TestStaggeredGridSizes(t *testing.T) {
	// The paper: energy is 96³ (cell-centered), X-velocity 97³ (nodes).
	s, err := NewSolver(DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	e := s.Energy()
	if e.Dims.Nx != 8 || e.Dims.Ny != 8 || e.Dims.Nz != 8 {
		t.Errorf("energy dims %v, want 8x8x8", e.Dims)
	}
	u := s.VelocityX()
	if u.Dims.Nx != 9 || u.Dims.Ny != 9 || u.Dims.Nz != 9 {
		t.Errorf("velocity dims %v, want 9x9x9", u.Dims)
	}
}

func TestUniformStateIsSteady(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.BlobDensity = cfg.AmbientDensity
	cfg.BlobEnergy = cfg.AmbientEnergy
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	e := s.Energy()
	for i, v := range e.Data {
		if math.Abs(v-cfg.AmbientEnergy) > 1e-12 {
			t.Fatalf("uniform state evolved: energy[%d] = %g", i, v)
		}
	}
	u := s.VelocityX()
	for i, v := range u.Data {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("uniform state developed velocity[%d] = %g", i, v)
		}
	}
}

func TestSymmetryAlongDiagonal(t *testing.T) {
	// The initial condition and scheme are symmetric under coordinate
	// permutation, so the solution must stay invariant when swapping axes.
	s, err := NewSolver(DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30)
	e := s.Energy()
	n := 10
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				a := e.At(x, y, z)
				b := e.At(y, x, z) // swap x and y
				if math.Abs(a-b) > 1e-10 {
					t.Fatalf("asymmetry at (%d,%d,%d): %g vs %g", x, y, z, a, b)
				}
			}
		}
	}
}

func TestDtPositiveAndBounded(t *testing.T) {
	s, err := NewSolver(DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		dt := s.Step()
		if dt <= 0 || math.IsNaN(dt) || dt > 1 {
			t.Fatalf("step %d: dt = %g", i, dt)
		}
	}
	if s.Steps() != 20 {
		t.Errorf("Steps = %d", s.Steps())
	}
}

func TestSecondOrderConservesMassAndEnergy(t *testing.T) {
	cfg := DefaultConfig(12)
	cfg.SecondOrder = true
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m0, e0 := s.TotalMass(), s.TotalEnergy()
	s.Run(50)
	if rel := math.Abs(s.TotalMass()-m0) / m0; rel > 1e-12 {
		t.Errorf("second-order mass drifted %.3g", rel)
	}
	if rel := math.Abs(s.TotalEnergy()-e0) / e0; rel > 1e-12 {
		t.Errorf("second-order energy drifted %.3g", rel)
	}
	for i, v := range s.Density().Data {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("density[%d] = %g", i, v)
		}
	}
}

func TestSecondOrderSharperThanFirst(t *testing.T) {
	// Advance both schemes to the same time and compare how much the
	// initial energy discontinuity has smeared: the limited second-order
	// scheme must retain at least as much energy variance (less numerical
	// diffusion flattens the field).
	run := func(second bool) *Solver {
		cfg := DefaultConfig(16)
		cfg.SecondOrder = second
		s, err := NewSolver(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for s.Time() < 0.05 {
			s.Step()
		}
		return s
	}
	variance := func(s *Solver) float64 {
		e := s.Energy()
		var sum, sumSq float64
		for _, v := range e.Data {
			sum += v
			sumSq += v * v
		}
		n := float64(len(e.Data))
		mean := sum / n
		return sumSq/n - mean*mean
	}
	v1 := variance(run(false))
	v2 := variance(run(true))
	if v2 < v1*0.98 {
		t.Errorf("second-order variance %.5g below first-order %.5g — more diffusive?", v2, v1)
	}
}

func TestSecondOrderSymmetry(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.SecondOrder = true
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20)
	e := s.Energy()
	for z := 0; z < 10; z++ {
		for y := 0; y < 10; y++ {
			for x := 0; x < 10; x++ {
				if d := math.Abs(e.At(x, y, z) - e.At(y, x, z)); d > 1e-10 {
					t.Fatalf("second-order asymmetry %g at (%d,%d,%d)", d, x, y, z)
				}
			}
		}
	}
}

func TestMinmod(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{1, 2, 1}, {2, 1, 1}, {-1, -3, -1}, {-3, -1, -1},
		{1, -1, 0}, {0, 5, 0}, {5, 0, 0},
	}
	for _, c := range cases {
		if got := minmod(c.a, c.b); got != c.want {
			t.Errorf("minmod(%g,%g) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

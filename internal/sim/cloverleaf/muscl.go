package cloverleaf

// Second-order MUSCL reconstruction (opt-in via Config.SecondOrder): face
// states are extrapolated from cell centers with minmod-limited slopes of
// the primitive variables, halving the numerical diffusion of the
// first-order scheme. Sharper fronts mean less spatial coherence in the
// output — a knob for studying how solver accuracy interacts with
// compression (the real CloverLeaf is second order).
//
// Wall faces keep exact conservation: the interior state is reconstructed
// to the face and the ghost is its mirror (normal velocity negated), so the
// Rusanov mass/energy fluxes cancel exactly as in the first-order scheme.

// prim5 carries the primitive variables (rho, u, v, w, p).
type prim5 [5]float64

func (s *Solver) prim5At(x, y, z int) prim5 {
	c := s.primitive(s.idx(x, y, z))
	return prim5{c.rho, c.u, c.v, c.w, c.p}
}

func minmod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if a > 0 {
		if a < b {
			return a
		}
		return b
	}
	if a > b {
		return a
	}
	return b
}

// slope5 returns the minmod-limited one-sided slope of the primitives at
// (x,y,z) along axis, using reflective neighbor indexing.
func (s *Solver) slope5(x, y, z, axis int) prim5 {
	var xm, ym, zm, xp, yp, zp = x, y, z, x, y, z
	switch axis {
	case 0:
		xm, xp = x-1, x+1
	case 1:
		ym, yp = y-1, y+1
	default:
		zm, zp = z-1, z+1
	}
	c := s.prim5At(x, y, z)
	m := s.prim5At(xm, ym, zm)
	p := s.prim5At(xp, yp, zp)
	var out prim5
	for i := 0; i < 5; i++ {
		out[i] = minmod(c[i]-m[i], p[i]-c[i])
	}
	return out
}

// toCell converts primitives to the full cell state, flooring pressure and
// density to keep reconstructed states physical.
func (p prim5) toCell() cell {
	rho, u, v, w, pr := p[0], p[1], p[2], p[3], p[4]
	if rho < 1e-12 {
		rho = 1e-12
	}
	if pr < 1e-12 {
		pr = 1e-12
	}
	e := pr/(gamma-1) + 0.5*rho*(u*u+v*v+w*w)
	return cell{rho, u, v, w, pr, e}
}

// faceStates returns the reconstructed (left, right) states at the +axis
// face of cell (x,y,z); the right cell is (xr,yr,zr). When secondOrder is
// off this reduces to the plain cell states.
func (s *Solver) faceStates(x, y, z, xr, yr, zr, axis int) (l, r cell) {
	if !s.cfg.SecondOrder {
		return s.primitive(s.idx(x, y, z)), s.primitive(s.idx(xr, yr, zr))
	}
	pl := s.prim5At(x, y, z)
	sl := s.slope5(x, y, z, axis)
	pr := s.prim5At(xr, yr, zr)
	sr := s.slope5(xr, yr, zr, axis)
	var lp, rp prim5
	for i := 0; i < 5; i++ {
		lp[i] = pl[i] + 0.5*sl[i]
		rp[i] = pr[i] - 0.5*sr[i]
	}
	return lp.toCell(), rp.toCell()
}

// mirror negates the normal velocity component — the reflective-wall ghost.
func mirror(c cell, axis int) cell {
	switch axis {
	case 0:
		c.u = -c.u
	case 1:
		c.v = -c.v
	default:
		c.w = -c.w
	}
	return c
}

package ghost

import (
	"fmt"
	"math"

	"stwave/internal/grid"
)

// Passive scalar transport: GHOST (and most spectral turbulence codes) can
// co-evolve a passive scalar θ — temperature, dye, humidity — obeying
//
//	∂θ/∂t + u·∇θ = κ∇²θ + G u_z
//
// where the G u_z source models an imposed mean background gradient (the
// standard statistically-steady forcing for scalar turbulence). The scalar
// develops sharper fronts than the velocity (no pressure smoothing), which
// makes it a usefully *different* compression workload.
//
// The scalar advances with the same RK2 scheme, using the velocity frozen
// over the step (first-order operator coupling — standard practice for
// diagnostics-grade passive scalars).

// ScalarConfig parametrizes the passive scalar.
type ScalarConfig struct {
	// Kappa is the scalar diffusivity.
	Kappa float64
	// MeanGradient is G in the source term G*u_z; 0 gives pure decay.
	MeanGradient float64
}

// scalarState holds the spectral scalar and its scratch space.
type scalarState struct {
	cfg   ScalarConfig
	th    []complex128
	rhs1  []complex128
	rhs2  []complex128
	save  []complex128
	physT []complex128
	gradT [3][]complex128
}

// EnableScalar attaches a passive scalar with a large-scale sinusoidal
// initial condition. Must be called before stepping for meaningful output;
// calling it twice resets the scalar.
func (s *Solver) EnableScalar(cfg ScalarConfig) error {
	if cfg.Kappa < 0 {
		return fmt.Errorf("ghost: scalar diffusivity must be non-negative, got %g", cfg.Kappa)
	}
	n := s.n
	total := n * n * n
	st := &scalarState{cfg: cfg}
	alloc := func() []complex128 { return make([]complex128, total) }
	st.th = alloc()
	st.rhs1 = alloc()
	st.rhs2 = alloc()
	st.save = alloc()
	st.physT = alloc()
	for j := 0; j < 3; j++ {
		st.gradT[j] = alloc()
	}
	h := 2 * math.Pi / float64(n)
	for z := 0; z < n; z++ {
		Z := float64(z) * h
		for y := 0; y < n; y++ {
			Y := float64(y) * h
			for x := 0; x < n; x++ {
				X := float64(x) * h
				st.th[(z*n+y)*n+x] = complex(math.Sin(X)+0.5*math.Cos(Y+Z), 0)
			}
		}
	}
	s.plan.Forward(st.th)
	s.scalarDealias(st.th)
	s.scalar = st
	return nil
}

// HasScalar reports whether a passive scalar is attached.
func (s *Solver) HasScalar() bool { return s.scalar != nil }

// scalarDealias zeroes scalar modes outside the 2/3 sphere.
func (s *Solver) scalarDealias(th []complex128) {
	for i, keep := range s.mask {
		if !keep {
			th[i] = 0
		}
	}
}

// scalarRHS evaluates dθ̂/dt = -FFT(u·∇θ) - κk²θ̂ + G û_z into out, with the
// physical velocity already available in s.phys (filled by the caller).
func (s *Solver) scalarRHS(th []complex128, out []complex128) {
	st := s.scalar
	n := s.n
	total := n * n * n
	// Spectral gradient of θ.
	for j := 0; j < 3; j++ {
		g := st.gradT[j]
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				base := (z*n + y) * n
				var kj float64
				switch j {
				case 1:
					kj = s.k[y]
				case 2:
					kj = s.k[z]
				}
				for x := 0; x < n; x++ {
					idx := base + x
					if j == 0 {
						kj = s.k[x]
					}
					v := th[idx]
					g[idx] = complex(-imag(v)*kj, real(v)*kj)
				}
			}
		}
		s.plan.Inverse(g)
	}
	// Advection u·∇θ in physical space.
	for i := 0; i < total; i++ {
		out[i] = complex(
			real(s.phys[0][i])*real(st.gradT[0][i])+
				real(s.phys[1][i])*real(st.gradT[1][i])+
				real(s.phys[2][i])*real(st.gradT[2][i]), 0)
	}
	s.plan.Forward(out)
	// Assemble.
	g := complex(st.cfg.MeanGradient, 0)
	for z := 0; z < n; z++ {
		kz := s.k[z]
		for y := 0; y < n; y++ {
			ky := s.k[y]
			base := (z*n + y) * n
			for x := 0; x < n; x++ {
				kx := s.k[x]
				idx := base + x
				diff := complex(st.cfg.Kappa*(kx*kx+ky*ky+kz*kz), 0)
				out[idx] = -out[idx] - diff*th[idx] + g*s.uh[2][idx]
			}
		}
	}
	s.scalarDealias(out)
}

// stepScalar advances θ by dt with RK2, using the current velocity.
func (s *Solver) stepScalar(dt float64) {
	st := s.scalar
	total := s.n * s.n * s.n
	// Physical velocity for advection (current state).
	for c := 0; c < 3; c++ {
		copy(s.phys[c], s.uh[c])
		s.plan.Inverse(s.phys[c])
	}
	s.scalarRHS(st.th, st.rhs1)
	cdt := complex(dt, 0)
	for i := 0; i < total; i++ {
		st.save[i] = st.th[i]
		st.th[i] += cdt * st.rhs1[i]
	}
	s.scalarRHS(st.th, st.rhs2)
	half := complex(dt/2, 0)
	for i := 0; i < total; i++ {
		st.th[i] = st.save[i] + half*(st.rhs1[i]+st.rhs2[i])
	}
}

// Scalar returns the physical passive-scalar field, or nil if no scalar is
// attached.
func (s *Solver) Scalar() *grid.Field3D {
	if s.scalar == nil {
		return nil
	}
	f := grid.NewField3D(s.n, s.n, s.n)
	if err := s.ScalarInto(f); err != nil {
		return nil
	}
	return f
}

// ScalarInto fills dst with the physical passive-scalar field without
// allocating — the streaming ingest path samples every solver step into a
// recycled window buffer, so the per-step allocation of Scalar would defeat
// its bounded-memory contract. dst must be N³.
func (s *Solver) ScalarInto(dst *grid.Field3D) error {
	if s.scalar == nil {
		return fmt.Errorf("ghost: no scalar attached")
	}
	want := grid.Dims{Nx: s.n, Ny: s.n, Nz: s.n}
	if dst.Dims != want {
		return fmt.Errorf("ghost: dst dims %v != solver dims %v", dst.Dims, want)
	}
	copy(s.scalar.physT, s.scalar.th)
	s.plan.Inverse(s.scalar.physT)
	for i := range dst.Data {
		dst.Data[i] = real(s.scalar.physT[i])
	}
	return nil
}

// ScalarInto32 is ScalarInto narrowing to float32 at the fill point — the
// single-precision ingest path's recycled-buffer variant. The solver state
// stays float64 (the spectral step needs the headroom); only the sampled
// field is stored at 4 bytes per sample. dst must be N³.
func (s *Solver) ScalarInto32(dst *grid.Field3D32) error {
	if s.scalar == nil {
		return fmt.Errorf("ghost: no scalar attached")
	}
	want := grid.Dims{Nx: s.n, Ny: s.n, Nz: s.n}
	if dst.Dims != want {
		return fmt.Errorf("ghost: dst dims %v != solver dims %v", dst.Dims, want)
	}
	copy(s.scalar.physT, s.scalar.th)
	s.plan.Inverse(s.scalar.physT)
	for i := range dst.Data {
		dst.Data[i] = float32(real(s.scalar.physT[i]))
	}
	return nil
}

// ScalarVariance returns the volume-averaged scalar variance <θ²> - <θ>².
func (s *Solver) ScalarVariance() float64 {
	if s.scalar == nil {
		return 0
	}
	copy(s.scalar.physT, s.scalar.th)
	s.plan.Inverse(s.scalar.physT)
	total := float64(s.n * s.n * s.n)
	var sum, sumSq float64
	for _, v := range s.scalar.physT {
		r := real(v)
		sum += r
		sumSq += r * r
	}
	mean := sum / total
	return sumSq/total - mean*mean
}

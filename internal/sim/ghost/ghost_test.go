package ghost

import (
	"math"
	"testing"
)

func TestNewSolverValidation(t *testing.T) {
	if _, err := NewSolver(Config{N: 12, Dt: 0.01}); err == nil {
		t.Error("expected error for non-power-of-two N")
	}
	if _, err := NewSolver(Config{N: 4, Dt: 0.01}); err == nil {
		t.Error("expected error for N < 8")
	}
	if _, err := NewSolver(Config{N: 16, Dt: 0}); err == nil {
		t.Error("expected error for zero Dt")
	}
	if _, err := NewSolver(Config{N: 16, Dt: 0.01, Nu: -1}); err == nil {
		t.Error("expected error for negative Nu")
	}
}

func TestDivergenceFreeInitially(t *testing.T) {
	s, err := NewSolver(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if d := s.MaxDivergence(); d > 1e-10 {
		t.Errorf("initial divergence %g, want ~0", d)
	}
}

func TestDivergenceFreeAfterSteps(t *testing.T) {
	s, err := NewSolver(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20)
	if d := s.MaxDivergence(); d > 1e-8 {
		t.Errorf("divergence after 20 steps %g, want ~0", d)
	}
	if s.Steps() != 20 {
		t.Errorf("Steps = %d", s.Steps())
	}
	if math.Abs(s.Time()-0.2) > 1e-12 {
		t.Errorf("Time = %g, want 0.2", s.Time())
	}
}

// The 2D Taylor-Green vortex embedded in 3D is an exact Navier-Stokes
// solution whose energy decays as exp(-4 nu t). With forcing off and the
// pure TG initial condition, the solver must track that rate.
func TestTaylorGreenDecayRate(t *testing.T) {
	cfg := Config{N: 16, Nu: 0.1, Dt: 0.005, ForcingAmplitude: 0}
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Override the initial condition with the pure 2D TG field.
	n := s.n
	h := 2 * math.Pi / float64(n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			Y := float64(y) * h
			for x := 0; x < n; x++ {
				X := float64(x) * h
				idx := (z*n+y)*n + x
				s.uh[0][idx] = complex(math.Sin(X)*math.Cos(Y), 0)
				s.uh[1][idx] = complex(-math.Cos(X)*math.Sin(Y), 0)
				s.uh[2][idx] = 0
			}
		}
	}
	for c := 0; c < 3; c++ {
		s.plan.Forward(s.uh[c])
	}
	s.dealias(&s.uh)
	e0 := s.KineticEnergy()
	steps := 100
	s.Run(steps)
	eT := s.KineticEnergy()
	tFinal := float64(steps) * cfg.Dt
	want := e0 * math.Exp(-4*cfg.Nu*tFinal)
	if rel := math.Abs(eT-want) / want; rel > 0.01 {
		t.Errorf("TG energy after t=%.2f: %g, analytic %g (rel err %.3g)", tFinal, eT, want, rel)
	}
}

func TestForcedRunStaysBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("long solver run")
	}
	s, err := NewSolver(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Run(20)
		e := s.KineticEnergy()
		if math.IsNaN(e) || e > 100 {
			t.Fatalf("energy diverged to %g after %d steps", e, s.Steps())
		}
		if cfl := s.CFL(); cfl > 1.5 {
			t.Fatalf("CFL %g exceeded stability range", cfl)
		}
	}
	if s.KineticEnergy() <= 0 {
		t.Error("forced flow lost all energy")
	}
}

func TestVelocityFieldsMatchSpectralState(t *testing.T) {
	s, err := NewSolver(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	u, v, w := s.Velocity()
	ux := s.VelocityX()
	for i := range u.Data {
		if u.Data[i] != ux.Data[i] {
			t.Fatal("VelocityX disagrees with Velocity()[0]")
		}
	}
	// Physical-space energy must match spectral KineticEnergy (Parseval).
	var e float64
	for i := range u.Data {
		e += u.Data[i]*u.Data[i] + v.Data[i]*v.Data[i] + w.Data[i]*w.Data[i]
	}
	e = 0.5 * e / float64(len(u.Data))
	if rel := math.Abs(e-s.KineticEnergy()) / (s.KineticEnergy() + 1e-300); rel > 1e-10 {
		t.Errorf("physical energy %g vs spectral %g", e, s.KineticEnergy())
	}
}

func TestEnstrophyNonNegativeAndNonTrivial(t *testing.T) {
	s, err := NewSolver(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	ens := s.Enstrophy()
	var sum float64
	for _, v := range ens.Data {
		if v < 0 {
			t.Fatalf("negative enstrophy density %g", v)
		}
		sum += v
	}
	if sum == 0 {
		t.Error("enstrophy identically zero in a turbulent flow")
	}
}

// Enstrophy of the pure TG vortex has a closed form: ω_z = -2 sin x sin y,
// others zero, so |ω|² = 4 sin²x sin²y.
func TestEnstrophyMatchesTaylorGreenAnalytic(t *testing.T) {
	cfg := Config{N: 16, Nu: 0, Dt: 0.01, ForcingAmplitude: 0}
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := s.n
	h := 2 * math.Pi / float64(n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			Y := float64(y) * h
			for x := 0; x < n; x++ {
				X := float64(x) * h
				idx := (z*n+y)*n + x
				s.uh[0][idx] = complex(math.Sin(X)*math.Cos(Y), 0)
				s.uh[1][idx] = complex(-math.Cos(X)*math.Sin(Y), 0)
				s.uh[2][idx] = 0
			}
		}
	}
	for c := 0; c < 3; c++ {
		s.plan.Forward(s.uh[c])
	}
	ens := s.Enstrophy()
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			Y := float64(y) * h
			for x := 0; x < n; x++ {
				X := float64(x) * h
				want := 4 * math.Sin(X) * math.Sin(X) * math.Sin(Y) * math.Sin(Y)
				got := ens.At(x, y, z)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("enstrophy(%d,%d,%d) = %g, want %g", x, y, z, got, want)
				}
			}
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() float64 {
		s, err := NewSolver(DefaultConfig(16))
		if err != nil {
			t.Fatal(err)
		}
		s.Run(10)
		return s.KineticEnergy()
	}
	if run() != run() {
		t.Error("identical configs produced different runs")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg1 := DefaultConfig(16)
	cfg2 := DefaultConfig(16)
	cfg2.Seed = 2
	s1, err := NewSolver(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSolver(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	s1.Run(5)
	s2.Run(5)
	u1 := s1.VelocityX()
	u2 := s2.VelocityX()
	same := true
	for i := range u1.Data {
		if u1.Data[i] != u2.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fields")
	}
}

func TestEnergySpectrumSumsToTotal(t *testing.T) {
	s, err := NewSolver(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	spec := s.EnergySpectrum()
	var sum float64
	for _, e := range spec {
		sum += e
	}
	total := s.KineticEnergy()
	// Modes beyond the n/2 shell cap are dealiased to zero, so the shell
	// sum equals the total energy.
	if math.Abs(sum-total)/total > 1e-10 {
		t.Errorf("spectrum sums to %g, total energy %g", sum, total)
	}
	for k, e := range spec {
		if e < 0 {
			t.Fatalf("negative spectral energy %g at shell %d", e, k)
		}
	}
}

func TestEnergySpectrumDecaysAtHighK(t *testing.T) {
	if testing.Short() {
		t.Skip("long solver run")
	}
	s, err := NewSolver(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(150) // develop the cascade
	spec := s.EnergySpectrum()
	// Energy at the largest resolved shells must be far below the
	// energy-containing range (viscous dissipation).
	lowK := spec[1] + spec[2]
	highK := spec[len(spec)-2] + spec[len(spec)-3]
	if highK >= lowK*0.05 {
		t.Errorf("no spectral decay: low-k %g vs high-k %g", lowK, highK)
	}
}

func TestIntegralScale(t *testing.T) {
	s, err := NewSolver(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20)
	l := s.IntegralScale()
	// Forced at k=1 on a 2π domain: the integral scale is order the box
	// size but must be strictly inside (0, 2π].
	if l <= 0 || l > 2*math.Pi+1e-9 {
		t.Errorf("integral scale %g outside (0, 2π]", l)
	}
}

func TestScalarValidation(t *testing.T) {
	s, err := NewSolver(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableScalar(ScalarConfig{Kappa: -1}); err == nil {
		t.Error("expected error for negative diffusivity")
	}
	if s.HasScalar() {
		t.Error("failed EnableScalar must not attach a scalar")
	}
	if s.Scalar() != nil || s.ScalarVariance() != 0 {
		t.Error("no-scalar accessors must return zero values")
	}
}

func TestScalarPureDiffusionDecay(t *testing.T) {
	// With zero velocity and no mean gradient, θ = sin(x) decays as
	// exp(-κt) (each mode k decays at κk²; k=1 here).
	cfg := Config{N: 16, Nu: 0.05, Dt: 0.01, ForcingAmplitude: 0}
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Zero the velocity entirely.
	for c := 0; c < 3; c++ {
		for i := range s.uh[c] {
			s.uh[c][i] = 0
		}
	}
	kappa := 0.2
	if err := s.EnableScalar(ScalarConfig{Kappa: kappa}); err != nil {
		t.Fatal(err)
	}
	// Overwrite IC with a single k=1 mode for a clean analytic rate.
	n := s.n
	h := 2 * math.Pi / float64(n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				s.scalar.th[(z*n+y)*n+x] = complex(math.Sin(h*float64(x)), 0)
			}
		}
	}
	s.plan.Forward(s.scalar.th)
	v0 := s.ScalarVariance()
	steps := 100
	s.Run(steps)
	vT := s.ScalarVariance()
	tFinal := float64(steps) * cfg.Dt
	want := v0 * math.Exp(-2*kappa*tFinal) // variance decays at twice the amplitude rate
	if rel := math.Abs(vT-want) / want; rel > 0.01 {
		t.Errorf("scalar variance %g, analytic %g (rel err %.3g)", vT, want, rel)
	}
}

func TestScalarStaysBoundedInTurbulence(t *testing.T) {
	s, err := NewSolver(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableScalar(ScalarConfig{Kappa: 0.08, MeanGradient: 1}); err != nil {
		t.Fatal(err)
	}
	s.Run(100)
	v := s.ScalarVariance()
	if math.IsNaN(v) || v <= 0 || v > 1e3 {
		t.Errorf("scalar variance %g after forced turbulent advection", v)
	}
	f := s.Scalar()
	if f == nil || f.Dims.Nx != 16 {
		t.Fatal("Scalar() field missing or wrong dims")
	}
	for i, val := range f.Data {
		if math.IsNaN(val) {
			t.Fatalf("NaN scalar at %d", i)
		}
	}
}

func TestScalarAdvectionConservesVarianceInviscid(t *testing.T) {
	// With κ=0 and no source, advection by an incompressible flow conserves
	// scalar variance (up to dealiasing loss, which is small over short
	// times).
	cfg := DefaultConfig(16)
	cfg.ForcingAmplitude = 0
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableScalar(ScalarConfig{Kappa: 0}); err != nil {
		t.Fatal(err)
	}
	v0 := s.ScalarVariance()
	s.Run(20)
	vT := s.ScalarVariance()
	if rel := math.Abs(vT-v0) / v0; rel > 0.05 {
		t.Errorf("inviscid scalar variance drifted %.3g (%g -> %g)", rel, v0, vT)
	}
}

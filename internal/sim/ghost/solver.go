// Package ghost implements a 3D pseudo-spectral incompressible
// Navier-Stokes solver, standing in for the GHOST (Geophysical
// High-Order Suite for Turbulence) simulation the paper draws its primary
// data set from. It solves
//
//	∂u/∂t + (u·∇)u = -∇p + ν∇²u + f,   ∇·u = 0
//
// on a 2π-periodic cube with Fourier collocation, 2/3-rule dealiasing,
// Leray projection onto divergence-free modes, second-order Runge-Kutta
// (Heun) time stepping, and steady ABC (Arnold-Beltrami-Childress) forcing
// at the largest scales — the classic recipe for forced homogeneous
// turbulence. Velocity components and the enstrophy density field match the
// variables the paper evaluates (X-velocity and enstrophy, Section V-A3).
package ghost

import (
	"fmt"
	"math"

	"stwave/internal/fbits"
	"stwave/internal/fft"
)

// Config parametrizes the solver.
type Config struct {
	// N is the grid resolution per axis; must be a power of two >= 8.
	N int
	// Nu is the kinematic viscosity.
	Nu float64
	// Dt is the time step.
	Dt float64
	// ForcingAmplitude scales the ABC forcing; 0 disables forcing
	// (decaying turbulence).
	ForcingAmplitude float64
	// ForcingWavenumber is the |k| of the ABC forcing (typically 1 or 2).
	ForcingWavenumber int
	// Seed randomizes the initial condition phase; same seed, same run.
	Seed int64
	// Workers bounds FFT parallelism; <= 0 uses all CPUs.
	Workers int
}

// DefaultConfig returns a stable forced-turbulence configuration at the
// given resolution.
func DefaultConfig(n int) Config {
	return Config{
		N:                 n,
		Nu:                0.08,
		Dt:                0.01,
		ForcingAmplitude:  0.25,
		ForcingWavenumber: 1,
		Seed:              1,
	}
}

// Solver holds the spectral state of the simulation.
type Solver struct {
	cfg   Config
	n     int
	plan  *fft.Plan3
	k     []float64 // wavenumber per index (0..n-1 mapped to signed)
	mask  []bool    // dealias mask per 3D index
	uh    [3][]complex128
	fh    [3][]complex128
	time  float64
	steps int

	// optional passive scalar (see scalar.go)
	scalar *scalarState

	// scratch
	phys [3][]complex128
	grad [3][3][]complex128
	nl   [3][]complex128
	rhs1 [3][]complex128
	rhs2 [3][]complex128
	save [3][]complex128
}

// NewSolver builds a solver with a Taylor-Green + perturbation initial
// condition.
func NewSolver(cfg Config) (*Solver, error) {
	if !fft.IsPow2(cfg.N) || cfg.N < 8 {
		return nil, fmt.Errorf("ghost: N must be a power of two >= 8, got %d", cfg.N)
	}
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("ghost: Dt must be positive, got %g", cfg.Dt)
	}
	if cfg.Nu < 0 {
		return nil, fmt.Errorf("ghost: Nu must be non-negative, got %g", cfg.Nu)
	}
	plan, err := fft.NewPlan3(cfg.N, cfg.Workers)
	if err != nil {
		return nil, err
	}
	n := cfg.N
	s := &Solver{cfg: cfg, n: n, plan: plan}
	s.k = make([]float64, n)
	for i := 0; i < n; i++ {
		if i <= n/2 {
			s.k[i] = float64(i)
		} else {
			s.k[i] = float64(i - n)
		}
	}
	total := n * n * n
	kmax := float64(n) / 3.0
	s.mask = make([]bool, total)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				idx := (z*n+y)*n + x
				s.mask[idx] = math.Abs(s.k[x]) <= kmax &&
					math.Abs(s.k[y]) <= kmax && math.Abs(s.k[z]) <= kmax
			}
		}
	}
	alloc := func() []complex128 { return make([]complex128, total) }
	for c := 0; c < 3; c++ {
		s.uh[c] = alloc()
		s.fh[c] = alloc()
		s.phys[c] = alloc()
		s.nl[c] = alloc()
		s.rhs1[c] = alloc()
		s.rhs2[c] = alloc()
		s.save[c] = alloc()
		for j := 0; j < 3; j++ {
			s.grad[c][j] = alloc()
		}
	}
	s.initCondition()
	s.initForcing()
	return s, nil
}

// initCondition seeds a Taylor-Green vortex plus a weak phase-shifted
// secondary mode so the flow transitions to 3D turbulence.
func (s *Solver) initCondition() {
	n := s.n
	h := 2 * math.Pi / float64(n)
	shift := 0.7 + 0.13*float64(s.cfg.Seed%17)
	for z := 0; z < n; z++ {
		Z := float64(z) * h
		for y := 0; y < n; y++ {
			Y := float64(y) * h
			for x := 0; x < n; x++ {
				X := float64(x) * h
				idx := (z*n+y)*n + x
				u := math.Sin(X)*math.Cos(Y)*math.Cos(Z) + 0.1*math.Sin(2*Y+shift)*math.Cos(Z)
				v := -math.Cos(X)*math.Sin(Y)*math.Cos(Z) + 0.1*math.Sin(2*Z+shift)*math.Cos(X)
				w := 0.1 * math.Sin(2*X+shift) * math.Cos(Y)
				s.uh[0][idx] = complex(u, 0)
				s.uh[1][idx] = complex(v, 0)
				s.uh[2][idx] = complex(w, 0)
			}
		}
	}
	for c := 0; c < 3; c++ {
		s.plan.Forward(s.uh[c])
	}
	s.project(&s.uh)
	s.dealias(&s.uh)
}

// initForcing precomputes the spectral ABC forcing.
func (s *Solver) initForcing() {
	if fbits.Zero(s.cfg.ForcingAmplitude) {
		return
	}
	n := s.n
	h := 2 * math.Pi / float64(n)
	k0 := float64(s.cfg.ForcingWavenumber)
	amp := s.cfg.ForcingAmplitude
	const A, B, C = 1.0, 1.0, 1.0
	for z := 0; z < n; z++ {
		Z := float64(z) * h
		for y := 0; y < n; y++ {
			Y := float64(y) * h
			for x := 0; x < n; x++ {
				X := float64(x) * h
				idx := (z*n+y)*n + x
				s.fh[0][idx] = complex(amp*(A*math.Sin(k0*Z)+C*math.Cos(k0*Y)), 0)
				s.fh[1][idx] = complex(amp*(B*math.Sin(k0*X)+A*math.Cos(k0*Z)), 0)
				s.fh[2][idx] = complex(amp*(C*math.Sin(k0*Y)+B*math.Cos(k0*X)), 0)
			}
		}
	}
	for c := 0; c < 3; c++ {
		s.plan.Forward(s.fh[c])
	}
}

// project applies the Leray projection P(v) = v - k (k·v)/|k|^2 in place,
// removing the compressive part of the spectral field.
func (s *Solver) project(v *[3][]complex128) {
	n := s.n
	for z := 0; z < n; z++ {
		kz := s.k[z]
		for y := 0; y < n; y++ {
			ky := s.k[y]
			base := (z*n + y) * n
			for x := 0; x < n; x++ {
				kx := s.k[x]
				k2 := kx*kx + ky*ky + kz*kz
				if fbits.Zero(k2) {
					continue
				}
				idx := base + x
				kdot := (complex(kx, 0)*v[0][idx] + complex(ky, 0)*v[1][idx] + complex(kz, 0)*v[2][idx]) * complex(1/k2, 0)
				v[0][idx] -= complex(kx, 0) * kdot
				v[1][idx] -= complex(ky, 0) * kdot
				v[2][idx] -= complex(kz, 0) * kdot
			}
		}
	}
}

// dealias zeroes modes outside the 2/3 sphere.
func (s *Solver) dealias(v *[3][]complex128) {
	for c := 0; c < 3; c++ {
		field := v[c]
		for i, keep := range s.mask {
			if !keep {
				field[i] = 0
			}
		}
	}
}

// rhs evaluates dû/dt into out: -P(FFT((u·∇)u)) - ν k² û + f̂.
func (s *Solver) rhs(uh *[3][]complex128, out *[3][]complex128) {
	n := s.n
	total := n * n * n
	// Physical velocity.
	for c := 0; c < 3; c++ {
		copy(s.phys[c], uh[c])
		s.plan.Inverse(s.phys[c])
	}
	// Spectral gradients: grad[c][j] = IFFT(i k_j û_c).
	for c := 0; c < 3; c++ {
		for j := 0; j < 3; j++ {
			g := s.grad[c][j]
			src := uh[c]
			for z := 0; z < n; z++ {
				for y := 0; y < n; y++ {
					base := (z*n + y) * n
					var kj float64
					switch j {
					case 1:
						kj = s.k[y]
					case 2:
						kj = s.k[z]
					}
					for x := 0; x < n; x++ {
						idx := base + x
						if j == 0 {
							kj = s.k[x]
						}
						v := src[idx]
						g[idx] = complex(-imag(v)*kj, real(v)*kj) // i*kj*v
					}
				}
			}
			s.plan.Inverse(g)
		}
	}
	// Nonlinear term N_c = sum_j u_j ∂u_c/∂x_j in physical space.
	for c := 0; c < 3; c++ {
		nl := s.nl[c]
		for i := 0; i < total; i++ {
			nl[i] = complex(
				real(s.phys[0][i])*real(s.grad[c][0][i])+
					real(s.phys[1][i])*real(s.grad[c][1][i])+
					real(s.phys[2][i])*real(s.grad[c][2][i]), 0)
		}
		s.plan.Forward(nl)
	}
	// Assemble: out = -N̂ - ν k² û + f̂, then project and dealias.
	for z := 0; z < n; z++ {
		kz := s.k[z]
		for y := 0; y < n; y++ {
			ky := s.k[y]
			base := (z*n + y) * n
			for x := 0; x < n; x++ {
				kx := s.k[x]
				idx := base + x
				visc := complex(s.cfg.Nu*(kx*kx+ky*ky+kz*kz), 0)
				for c := 0; c < 3; c++ {
					out[c][idx] = -s.nl[c][idx] - visc*uh[c][idx] + s.fh[c][idx]
				}
			}
		}
	}
	s.project(out)
	s.dealias(out)
}

// Step advances the solution by one time step (Heun / RK2).
func (s *Solver) Step() {
	dt := complex(s.cfg.Dt, 0)
	half := complex(s.cfg.Dt/2, 0)
	total := s.n * s.n * s.n
	s.rhs(&s.uh, &s.rhs1)
	for c := 0; c < 3; c++ {
		save := s.save[c]
		u := s.uh[c]
		r1 := s.rhs1[c]
		for i := 0; i < total; i++ {
			save[i] = u[i]
			u[i] += dt * r1[i]
		}
	}
	s.rhs(&s.uh, &s.rhs2)
	for c := 0; c < 3; c++ {
		save := s.save[c]
		u := s.uh[c]
		r1 := s.rhs1[c]
		r2 := s.rhs2[c]
		for i := 0; i < total; i++ {
			u[i] = save[i] + half*(r1[i]+r2[i])
		}
	}
	if s.scalar != nil {
		s.stepScalar(s.cfg.Dt)
	}
	s.time += s.cfg.Dt
	s.steps++
}

// Run advances the solver by steps time steps.
func (s *Solver) Run(steps int) {
	for i := 0; i < steps; i++ {
		s.Step()
	}
}

// Time returns the current simulation time.
func (s *Solver) Time() float64 { return s.time }

// Steps returns the number of completed time steps.
func (s *Solver) Steps() int { return s.steps }

// N returns the grid resolution.
func (s *Solver) N() int { return s.n }

package ghost

import (
	"math"

	"stwave/internal/fbits"
	"stwave/internal/grid"
)

// Velocity returns the physical-space velocity components as fresh fields.
func (s *Solver) Velocity() (u, v, w *grid.Field3D) {
	out := [3]*grid.Field3D{}
	for c := 0; c < 3; c++ {
		copy(s.phys[c], s.uh[c])
		s.plan.Inverse(s.phys[c])
		f := grid.NewField3D(s.n, s.n, s.n)
		for i := range f.Data {
			f.Data[i] = real(s.phys[c][i])
		}
		out[c] = f
	}
	return out[0], out[1], out[2]
}

// VelocityX returns only the X-velocity component — the variable the
// paper's Figure 2/3 experiments use.
func (s *Solver) VelocityX() *grid.Field3D {
	copy(s.phys[0], s.uh[0])
	s.plan.Inverse(s.phys[0])
	f := grid.NewField3D(s.n, s.n, s.n)
	for i := range f.Data {
		f.Data[i] = real(s.phys[0][i])
	}
	return f
}

// Enstrophy returns the point-wise enstrophy density |ω|² where ω = ∇×u is
// computed spectrally.
func (s *Solver) Enstrophy() *grid.Field3D {
	n := s.n
	// ω̂_x = i(k_y û_z - k_z û_y), cyclic.
	curl := func(a, b int, ka, kb func(x, y, z int) float64, dst []complex128) {
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				base := (z*n + y) * n
				for x := 0; x < n; x++ {
					idx := base + x
					va := s.uh[b][idx]
					vb := s.uh[a][idx]
					kA := ka(x, y, z)
					kB := kb(x, y, z)
					// i*(kA*u_b - kB*u_a)
					re := -(kA*imag(va) - kB*imag(vb))
					im := kA*real(va) - kB*real(vb)
					dst[idx] = complex(re, im)
				}
			}
		}
		s.plan.Inverse(dst)
	}
	kx := func(x, y, z int) float64 { return s.k[x] }
	ky := func(x, y, z int) float64 { return s.k[y] }
	kz := func(x, y, z int) float64 { return s.k[z] }

	wx := s.grad[0][0]
	wy := s.grad[0][1]
	wz := s.grad[0][2]
	curl(1, 2, ky, kz, wx) // ω_x = ∂_y u_z - ∂_z u_y
	curl(2, 0, kz, kx, wy) // ω_y = ∂_z u_x - ∂_x u_z
	curl(0, 1, kx, ky, wz) // ω_z = ∂_x u_y - ∂_y u_x

	f := grid.NewField3D(n, n, n)
	for i := range f.Data {
		ox, oy, oz := real(wx[i]), real(wy[i]), real(wz[i])
		f.Data[i] = ox*ox + oy*oy + oz*oz
	}
	return f
}

// KineticEnergy returns the volume-averaged kinetic energy (1/2)<|u|²>,
// computed spectrally via Parseval.
func (s *Solver) KineticEnergy() float64 {
	total := float64(s.n * s.n * s.n)
	var e float64
	for c := 0; c < 3; c++ {
		for _, v := range s.uh[c] {
			e += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return 0.5 * e / (total * total)
}

// MaxDivergence returns max_k |k·û(k)| / max_k |û(k)| — a normalized
// measure of how divergence-free the spectral state is (should be at
// round-off).
func (s *Solver) MaxDivergence() float64 {
	n := s.n
	var maxDiv, maxU float64
	for z := 0; z < n; z++ {
		kz := s.k[z]
		for y := 0; y < n; y++ {
			ky := s.k[y]
			base := (z*n + y) * n
			for x := 0; x < n; x++ {
				kx := s.k[x]
				idx := base + x
				div := complex(kx, 0)*s.uh[0][idx] + complex(ky, 0)*s.uh[1][idx] + complex(kz, 0)*s.uh[2][idx]
				if d := math.Hypot(real(div), imag(div)); d > maxDiv {
					maxDiv = d
				}
				for c := 0; c < 3; c++ {
					if m := math.Hypot(real(s.uh[c][idx]), imag(s.uh[c][idx])); m > maxU {
						maxU = m
					}
				}
			}
		}
	}
	if fbits.Zero(maxU) {
		return 0
	}
	return maxDiv / maxU
}

// CFL returns the current convective CFL number u_max * dt / dx; stable
// runs keep this below ~1.
func (s *Solver) CFL() float64 {
	var umax float64
	for c := 0; c < 3; c++ {
		copy(s.phys[c], s.uh[c])
		s.plan.Inverse(s.phys[c])
		for _, v := range s.phys[c] {
			if a := math.Abs(real(v)); a > umax {
				umax = a
			}
		}
	}
	dx := 2 * math.Pi / float64(s.n)
	return umax * s.cfg.Dt / dx
}

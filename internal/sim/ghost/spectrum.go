package ghost

import (
	"math"

	"stwave/internal/fbits"
)

// EnergySpectrum returns the shell-averaged kinetic energy spectrum E(k)
// for integer wavenumber shells k = 0 .. n/2: the energy of all spectral
// modes whose |k| rounds to the shell index, with the Parseval
// normalization matching KineticEnergy (sum over shells equals the total).
// Turbulence diagnostics use this to verify the forced cascade develops a
// decreasing spectrum toward the dissipation range.
func (s *Solver) EnergySpectrum() []float64 {
	n := s.n
	shells := n/2 + 1
	spec := make([]float64, shells)
	total := float64(n * n * n)
	norm := 0.5 / (total * total)
	for z := 0; z < n; z++ {
		kz := s.k[z]
		for y := 0; y < n; y++ {
			ky := s.k[y]
			base := (z*n + y) * n
			for x := 0; x < n; x++ {
				kx := s.k[x]
				shell := int(math.Round(math.Sqrt(kx*kx + ky*ky + kz*kz)))
				if shell >= shells {
					continue
				}
				idx := base + x
				var e float64
				for c := 0; c < 3; c++ {
					v := s.uh[c][idx]
					e += real(v)*real(v) + imag(v)*imag(v)
				}
				spec[shell] += e * norm
			}
		}
	}
	return spec
}

// IntegralScale returns the energy-weighted inverse wavenumber — a measure
// of the dominant eddy size, 2π/k_peak-ish, in domain units.
func (s *Solver) IntegralScale() float64 {
	spec := s.EnergySpectrum()
	var num, den float64
	for k := 1; k < len(spec); k++ {
		num += spec[k] / float64(k)
		den += spec[k]
	}
	if fbits.Zero(den) {
		return 0
	}
	return 2 * math.Pi * num / den
}

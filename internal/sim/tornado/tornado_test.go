package tornado

import (
	"math"
	"testing"

	"stwave/internal/grid"
)

func testModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(DefaultConfig(24, 24, 16))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	cfg := DefaultConfig(8, 8, 8)
	cfg.Nx = 1
	if _, err := NewModel(cfg); err == nil {
		t.Error("expected error for tiny grid")
	}
	cfg = DefaultConfig(8, 8, 8)
	cfg.Lz = 0
	if _, err := NewModel(cfg); err == nil {
		t.Error("expected error for zero domain")
	}
	cfg = DefaultConfig(8, 8, 8)
	cfg.CoreRadius = -5
	if _, err := NewModel(cfg); err == nil {
		t.Error("expected error for negative core radius")
	}
}

func TestSwirlProfile(t *testing.T) {
	rc, vmax := 350.0, 120.0
	// Peak at the core radius.
	if got := swirl(rc, rc, vmax); math.Abs(got-vmax) > 1e-9 {
		t.Errorf("swirl at rc = %g, want %g", got, vmax)
	}
	// Zero at the axis.
	if got := swirl(0, rc, vmax); got != 0 {
		t.Errorf("swirl at axis = %g", got)
	}
	// Solid-body-like inside, decaying outside.
	if swirl(rc/4, rc, vmax) >= vmax {
		t.Error("swirl inside core should be below peak")
	}
	far := swirl(10*rc, rc, vmax)
	if far >= vmax/5 || far <= 0 {
		t.Errorf("far-field swirl = %g, want small positive (potential-vortex tail)", far)
	}
	// The profile has a single maximum near rc: values bracketing rc are lower.
	if swirl(0.8*rc, rc, vmax) > vmax || swirl(1.25*rc, rc, vmax) > vmax {
		t.Error("swirl exceeds nominal peak away from rc")
	}
}

func TestVortexWindsAroundCenter(t *testing.T) {
	m := testModel(t)
	cfg := m.Config()
	cx, cy := m.center(0)
	z := cfg.Lz * 0.05 // near surface where the vortex is strongest
	// Sample at 4 compass points at the core radius: tangential flow means
	// velocity is mostly perpendicular to the radius vector.
	r := cfg.CoreRadius
	points := [][2]float64{{cx + r, cy}, {cx - r, cy}, {cx, cy + r}, {cx, cy - r}}
	for _, p := range points {
		u, v, _ := m.VelocityAt(p[0], p[1], z, 0)
		dx, dy := p[0]-cx, p[1]-cy
		speed := math.Hypot(u, v)
		if speed < 20 {
			t.Errorf("wind speed %g m/s at core radius, expected violent rotation", speed)
		}
		// Radial component must be small relative to total (mostly swirl).
		radial := (u*dx + v*dy) / r
		if math.Abs(radial) > 0.8*speed {
			t.Errorf("flow at (%g,%g) predominantly radial (%g of %g)", p[0], p[1], radial, speed)
		}
	}
}

func TestVortexTranslates(t *testing.T) {
	m := testModel(t)
	cx0, cy0 := m.center(0)
	cx1, cy1 := m.center(100)
	wantDx := m.Config().TranslationX * 100
	wantDy := m.Config().TranslationY * 100
	if math.Abs(cx1-cx0-wantDx) > 1e-9 || math.Abs(cy1-cy0-wantDy) > 1e-9 {
		t.Errorf("center moved (%g,%g), want (%g,%g)", cx1-cx0, cy1-cy0, wantDx, wantDy)
	}
}

func TestPressurePerturbationNegativeAtCore(t *testing.T) {
	m := testModel(t)
	cfg := m.Config()
	cx, cy := m.center(0)
	z := cfg.Lz * 0.05
	pCore := m.PressurePerturbationAt(cx, cy, z, 0)
	pFar := m.PressurePerturbationAt(cx+20*cfg.CoreRadius, cy, z, 0)
	if pCore >= 0 {
		t.Errorf("core pressure perturbation %g, want strongly negative", pCore)
	}
	if math.Abs(pFar) > math.Abs(pCore)/10 {
		t.Errorf("far-field pressure %g not small relative to core %g", pFar, pCore)
	}
	// F5-scale deficit: rho * vmax^2 ~ 1.1 * 120^2 ~ 16 kPa.
	if pCore > -5000 {
		t.Errorf("core deficit %g Pa too weak for an F5 vortex", pCore)
	}
}

func TestCloudMixingRatioStructure(t *testing.T) {
	m := testModel(t)
	cfg := m.Config()
	cx, cy := m.center(0)
	// In the updraft core at mid level: cloudy.
	qCore := m.CloudMixingRatioAt(cx, cy, 0.5*cfg.Lz, 0)
	// Near the surface far from the vortex: clear.
	qClear := m.CloudMixingRatioAt(cx+0.45*cfg.Lx, cy, 0.02*cfg.Lz, 0)
	if qCore < 1 {
		t.Errorf("core cloud mixing ratio %g, want >= 1 g/kg", qCore)
	}
	if qClear > 0.3 {
		t.Errorf("clear-air mixing ratio %g, want near zero", qClear)
	}
	// Never negative anywhere.
	q := m.CloudMixingRatio(0)
	for i, v := range q.Data {
		if v < 0 {
			t.Fatalf("negative mixing ratio %g at %d", v, i)
		}
	}
}

func TestSampledFieldsHaveConfiguredDims(t *testing.T) {
	m := testModel(t)
	for name, f := range map[string]*grid.Field3D{
		"vx":    m.VelocityX(0),
		"vz":    m.VelocityZ(0),
		"p":     m.PressurePerturbation(0),
		"cloud": m.CloudMixingRatio(0),
		"ens":   m.Enstrophy(0),
	} {
		if f.Dims.Nx != 24 || f.Dims.Ny != 24 || f.Dims.Nz != 16 {
			t.Errorf("%s dims = %v", name, f.Dims)
		}
	}
}

func TestEnstrophyPeaksNearVortex(t *testing.T) {
	m := testModel(t)
	ens := m.Enstrophy(0)
	cfg := m.Config()
	cx, cy := m.center(0)
	// Grid index of the vortex center.
	ci := int(cx / cfg.Lx * float64(cfg.Nx))
	cj := int(cy / cfg.Ly * float64(cfg.Ny))
	var coreMax float64
	for dj := -3; dj <= 3; dj++ {
		for di := -3; di <= 3; di++ {
			i, j := ci+di, cj+dj
			if i < 0 || j < 0 || i >= cfg.Nx || j >= cfg.Ny {
				continue
			}
			if v := ens.At(i, j, 0); v > coreMax {
				coreMax = v
			}
		}
	}
	// A far corner sample.
	far := ens.At((ci+cfg.Nx/2)%cfg.Nx, (cj+cfg.Ny/2)%cfg.Ny, 0)
	if coreMax <= far {
		t.Errorf("core enstrophy %g not above far-field %g", coreMax, far)
	}
}

func TestCurlMagnitudeSquaredOnRigidRotation(t *testing.T) {
	// u = -Ωy, v = Ωx has curl (0,0,2Ω) everywhere: |ω|² = 4Ω².
	n := 8
	omega := 0.5
	u := grid.NewField3D(n, n, n)
	v := grid.NewField3D(n, n, n)
	w := grid.NewField3D(n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				u.Set(x, y, z, -omega*float64(y))
				v.Set(x, y, z, omega*float64(x))
			}
		}
	}
	ens := CurlMagnitudeSquared(u, v, w, 1, 1, 1)
	want := 4 * omega * omega
	for i, got := range ens.Data {
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("|curl|²[%d] = %g, want %g", i, got, want)
		}
	}
}

// The temporal-coherence contrast that drives the paper's Tornado findings:
// consecutive tornado slices must correlate less than Ghost-like smooth
// fields at the same cadence (the turbulent component decorrelates fast).
func TestTornadoHasLimitedTemporalCoherence(t *testing.T) {
	m := testModel(t)
	a := m.VelocityX(0)
	b := m.VelocityX(8) // 8 seconds apart
	var num, da, db float64
	am, bm := mean(a.Data), mean(b.Data)
	for i := range a.Data {
		x := a.Data[i] - am
		y := b.Data[i] - bm
		num += x * y
		da += x * x
		db += y * y
	}
	corr := num / math.Sqrt(da*db)
	if corr > 0.999 {
		t.Errorf("tornado slices 8s apart correlate at %.4f — too coherent to exercise the paper's negative results", corr)
	}
	if corr < 0.2 {
		t.Errorf("tornado slices 8s apart correlate at %.4f — not coherent enough to be a plausible simulation output", corr)
	}
}

func mean(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

func TestDeterministic(t *testing.T) {
	m1 := testModel(t)
	m2 := testModel(t)
	a := m1.VelocityX(5)
	b := m2.VelocityX(5)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same config produced different fields")
		}
	}
}

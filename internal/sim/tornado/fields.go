package tornado

import (
	"fmt"

	"stwave/internal/grid"
	"stwave/internal/num"
)

// Cell spacing helpers: grid index i maps to physical coordinate
// (i + 0.5) * L / N (cell centers).

// CellX returns the physical X coordinate of cell index i.
func (m *Model) CellX(i int) float64 { return (float64(i) + 0.5) * m.cfg.Lx / float64(m.cfg.Nx) }

// CellY returns the physical Y coordinate of cell index j.
func (m *Model) CellY(j int) float64 { return (float64(j) + 0.5) * m.cfg.Ly / float64(m.cfg.Ny) }

// CellZ returns the physical Z coordinate of cell index k.
func (m *Model) CellZ(k int) float64 { return (float64(k) + 0.5) * m.cfg.Lz / float64(m.cfg.Nz) }

// Spacing returns the physical cell sizes (dx, dy, dz) in meters.
func (m *Model) Spacing() (dx, dy, dz float64) {
	return m.cfg.Lx / float64(m.cfg.Nx), m.cfg.Ly / float64(m.cfg.Ny), m.cfg.Lz / float64(m.cfg.Nz)
}

// sample fills a grid by evaluating fn at every cell center.
func (m *Model) sample(fn func(x, y, z float64) float64) *grid.Field3D {
	f := grid.NewField3D(m.cfg.Nx, m.cfg.Ny, m.cfg.Nz)
	m.sampleInto(f, fn)
	return f
}

// sampleInto fills dst by evaluating fn at every cell center, without
// allocating; dst must match the model grid.
func (m *Model) sampleInto(dst *grid.Field3D, fn func(x, y, z float64) float64) error {
	return sampleIntoOf(m, dst, fn)
}

// sampleIntoOf is the precision-generic fill loop behind sampleInto and
// the Into32 variants: the analytic evaluation stays float64, the store
// narrows (or not) at the fill point.
func sampleIntoOf[F num.Float](m *Model, dst *grid.Field3DOf[F], fn func(x, y, z float64) float64) error {
	if want := (grid.Dims{Nx: m.cfg.Nx, Ny: m.cfg.Ny, Nz: m.cfg.Nz}); dst.Dims != want {
		return fmt.Errorf("tornado: dst dims %v != model dims %v", dst.Dims, want)
	}
	for k := 0; k < m.cfg.Nz; k++ {
		Z := m.CellZ(k)
		for j := 0; j < m.cfg.Ny; j++ {
			Y := m.CellY(j)
			for i := 0; i < m.cfg.Nx; i++ {
				dst.Set(i, j, k, F(fn(m.CellX(i), Y, Z)))
			}
		}
	}
	return nil
}

// Velocity samples all three wind components at time t.
func (m *Model) Velocity(t float64) (u, v, w *grid.Field3D) {
	u = grid.NewField3D(m.cfg.Nx, m.cfg.Ny, m.cfg.Nz)
	v = grid.NewField3D(m.cfg.Nx, m.cfg.Ny, m.cfg.Nz)
	w = grid.NewField3D(m.cfg.Nx, m.cfg.Ny, m.cfg.Nz)
	for k := 0; k < m.cfg.Nz; k++ {
		Z := m.CellZ(k)
		for j := 0; j < m.cfg.Ny; j++ {
			Y := m.CellY(j)
			for i := 0; i < m.cfg.Nx; i++ {
				uu, vv, ww := m.VelocityAt(m.CellX(i), Y, Z, t)
				idx := u.Index(i, j, k)
				u.Data[idx] = uu
				v.Data[idx] = vv
				w.Data[idx] = ww
			}
		}
	}
	return u, v, w
}

// VelocityX samples the X wind component at time t.
func (m *Model) VelocityX(t float64) *grid.Field3D {
	return m.sample(func(x, y, z float64) float64 {
		u, _, _ := m.VelocityAt(x, y, z, t)
		return u
	})
}

// VelocityZ samples the vertical wind component at time t (the paper's
// isosurface study uses Z-velocity).
func (m *Model) VelocityZ(t float64) *grid.Field3D {
	return m.sample(func(x, y, z float64) float64 {
		_, _, w := m.VelocityAt(x, y, z, t)
		return w
	})
}

// PressurePerturbation samples the pressure deficit field at time t.
func (m *Model) PressurePerturbation(t float64) *grid.Field3D {
	return m.sample(func(x, y, z float64) float64 {
		return m.PressurePerturbationAt(x, y, z, t)
	})
}

// CloudMixingRatio samples the cloud water field at time t.
func (m *Model) CloudMixingRatio(t float64) *grid.Field3D {
	return m.sample(func(x, y, z float64) float64 {
		return m.CloudMixingRatioAt(x, y, z, t)
	})
}

// CloudMixingRatioInto samples the cloud water field at time t into dst
// without allocating — the streaming ingest path's recycled-buffer
// variant. dst must match the model grid.
func (m *Model) CloudMixingRatioInto(dst *grid.Field3D, t float64) error {
	return m.sampleInto(dst, func(x, y, z float64) float64 {
		return m.CloudMixingRatioAt(x, y, z, t)
	})
}

// CloudMixingRatioInto32 is CloudMixingRatioInto storing at float32 — the
// single-precision ingest path. The analytic evaluation stays float64;
// only the sampled field is 4 bytes per sample. dst must match the model
// grid.
func (m *Model) CloudMixingRatioInto32(dst *grid.Field3D32, t float64) error {
	return sampleIntoOf(m, dst, func(x, y, z float64) float64 {
		return m.CloudMixingRatioAt(x, y, z, t)
	})
}

// Enstrophy samples |curl u|² at time t using centered finite differences
// of the gridded velocity (matching how a post-processing tool would derive
// it from stored slices).
func (m *Model) Enstrophy(t float64) *grid.Field3D {
	u, v, w := m.Velocity(t)
	dx, dy, dz := m.Spacing()
	return CurlMagnitudeSquared(u, v, w, dx, dy, dz)
}

// CurlMagnitudeSquared computes |∇×(u,v,w)|² by centered differences with
// one-sided stencils at the boundaries. The three fields must share dims.
func CurlMagnitudeSquared(u, v, w *grid.Field3D, spacing ...float64) *grid.Field3D {
	dx, dy, dz := 1.0, 1.0, 1.0
	if len(spacing) == 3 {
		dx, dy, dz = spacing[0], spacing[1], spacing[2]
	}
	d := u.Dims
	out := grid.NewField3D(d.Nx, d.Ny, d.Nz)
	deriv := func(f *grid.Field3D, x, y, z, axis int, h float64) float64 {
		get := func(dx2, dy2, dz2 int) float64 {
			xx, yy, zz := x+dx2, y+dy2, z+dz2
			if xx < 0 {
				xx = 0
			}
			if yy < 0 {
				yy = 0
			}
			if zz < 0 {
				zz = 0
			}
			if xx >= d.Nx {
				xx = d.Nx - 1
			}
			if yy >= d.Ny {
				yy = d.Ny - 1
			}
			if zz >= d.Nz {
				zz = d.Nz - 1
			}
			return f.At(xx, yy, zz)
		}
		var plus, minus float64
		span := 2.0
		switch axis {
		case 0:
			plus, minus = get(1, 0, 0), get(-1, 0, 0)
			if x == 0 || x == d.Nx-1 {
				span = 1
			}
		case 1:
			plus, minus = get(0, 1, 0), get(0, -1, 0)
			if y == 0 || y == d.Ny-1 {
				span = 1
			}
		default:
			plus, minus = get(0, 0, 1), get(0, 0, -1)
			if z == 0 || z == d.Nz-1 {
				span = 1
			}
		}
		return (plus - minus) / (span * h)
	}
	for z := 0; z < d.Nz; z++ {
		for y := 0; y < d.Ny; y++ {
			for x := 0; x < d.Nx; x++ {
				ox := deriv(w, x, y, z, 1, dy) - deriv(v, x, y, z, 2, dz)
				oy := deriv(u, x, y, z, 2, dz) - deriv(w, x, y, z, 0, dx)
				oz := deriv(v, x, y, z, 0, dx) - deriv(u, x, y, z, 1, dy)
				out.Set(x, y, z, ox*ox+oy*oy+oz*oz)
			}
		}
	}
	return out
}

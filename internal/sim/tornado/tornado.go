// Package tornado implements a semi-analytic supercell tornado model
// standing in for the CM1 F5-tornado simulation the paper evaluates on
// (Section V-A3 and the Section VI case studies).
//
// The model composes, at every instant:
//
//   - a translating, slowly intensifying Burgers-Rott primary vortex
//     (tangential swirl with a finite core, low-level radial inflow, and a
//     core updraft that peaks at mid levels),
//   - two sub-vortices ("suction vortices") orbiting the primary core, and
//   - broadband turbulent perturbations from a kinematic Fourier-mode
//     ensemble with fast temporal decorrelation.
//
// That last ingredient is what gives the model the paper's key Tornado
// property: markedly *less* spatial and temporal coherence than the Ghost
// and CloverLeaf data, which is what drives the paper's weaker (sometimes
// negative) 4D-compression results on this data set.
//
// Derived scalar fields follow the paper's variable list: pressure
// perturbation (cyclostrophic balance with the swirl), cloud mixing ratio
// (condensation where the updraft is strong, with sharp cloud edges), and
// enstrophy (finite-difference curl magnitude squared).
package tornado

import (
	"fmt"
	"math"

	"stwave/internal/sim/synth"
)

// Config describes the model domain and vortex parameters. Distances are in
// meters, times in seconds, velocities in m/s — the units of the paper's
// Section VI analysis (e.g. deviation thresholds D in meters).
type Config struct {
	// Grid extents (cells per axis).
	Nx, Ny, Nz int
	// Physical domain size in meters. The paper's analysis subdomain is
	// 14670 x 14670 x 8370 m on a 490x490x280 grid.
	Lx, Ly, Lz float64
	// CoreRadius is the initial vortex core radius (m).
	CoreRadius float64
	// MaxSwirl is the peak tangential wind at the core radius (m/s); F5
	// tornadoes exceed 117 m/s.
	MaxSwirl float64
	// Translation is the storm motion vector (m/s).
	TranslationX, TranslationY float64
	// IntensificationPeriod is the period (s) of the slow strengthening /
	// weakening cycle of the vortex.
	IntensificationPeriod float64
	// SubVortices is the number of orbiting suction vortices.
	SubVortices int
	// TurbulenceAmplitude scales the broadband perturbation velocity
	// (m/s); this is the coherence-destroying ingredient.
	TurbulenceAmplitude float64
	// TurbulenceTimeScale sets perturbation decorrelation (s); smaller
	// means less temporal coherence.
	TurbulenceTimeScale float64
	// Seed fixes the turbulent ensemble.
	Seed int64
}

// DefaultConfig returns a domain-scaled configuration. The grid is reduced
// relative to the paper's 490²x280 so experiments run at laptop scale, but
// the physical domain and wind speeds match.
func DefaultConfig(nx, ny, nz int) Config {
	// Keep the vortex core resolved at any grid: the paper's grid puts ~12
	// cells across the core; below ~3 cells the swirl aliases into noise.
	core := 350.0
	if nx > 0 {
		if minCore := 3 * 14670.0 / float64(nx); minCore > core {
			core = minCore
		}
	}
	return Config{
		Nx: nx, Ny: ny, Nz: nz,
		Lx: 14670, Ly: 14670, Lz: 8370,
		CoreRadius:            core,
		MaxSwirl:              120,
		TranslationX:          12,
		TranslationY:          5,
		IntensificationPeriod: 300,
		SubVortices:           2,
		TurbulenceAmplitude:   9,
		TurbulenceTimeScale:   25,
		Seed:                  7,
	}
}

// Model samples the analytic tornado at arbitrary points and times.
type Model struct {
	cfg  Config
	turb *synth.Field
}

// NewModel validates cfg and builds the turbulent ensemble.
func NewModel(cfg Config) (*Model, error) {
	if cfg.Nx < 2 || cfg.Ny < 2 || cfg.Nz < 2 {
		return nil, fmt.Errorf("tornado: grid extents must be >= 2, got %dx%dx%d", cfg.Nx, cfg.Ny, cfg.Nz)
	}
	if cfg.Lx <= 0 || cfg.Ly <= 0 || cfg.Lz <= 0 {
		return nil, fmt.Errorf("tornado: domain size must be positive")
	}
	if cfg.CoreRadius <= 0 {
		return nil, fmt.Errorf("tornado: core radius must be positive")
	}
	tcfg := synth.Config{
		Modes:         48,
		MaxWavenumber: 16,
		SpectrumSlope: 11.0 / 6.0,
		TimeScale:     cfg.TurbulenceTimeScale,
		Seed:          cfg.Seed,
	}
	turb, err := synth.NewField(tcfg)
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, turb: turb}, nil
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// center returns the vortex center at time t.
func (m *Model) center(t float64) (cx, cy float64) {
	// Start at 1/3 of the domain and translate with the storm motion,
	// wrapping to stay inside.
	cx = m.cfg.Lx/3 + m.cfg.TranslationX*t
	cy = m.cfg.Ly/3 + m.cfg.TranslationY*t
	cx = math.Mod(cx, m.cfg.Lx)
	cy = math.Mod(cy, m.cfg.Ly)
	if cx < 0 {
		cx += m.cfg.Lx
	}
	if cy < 0 {
		cy += m.cfg.Ly
	}
	return cx, cy
}

// intensity returns the slow strengthening factor in [0.75, 1.25].
func (m *Model) intensity(t float64) float64 {
	return 1 + 0.25*math.Sin(2*math.Pi*t/m.cfg.IntensificationPeriod)
}

// swirl returns the Burgers-Rott tangential wind at radius r for a vortex
// with core radius rc and peak speed vmax.
func swirl(r, rc, vmax float64) float64 {
	if r < 1e-9 {
		return 0
	}
	// Burgers-Rott: v(r) = Γ/(2πr) (1 - exp(-α r²/rc²)); normalize so the
	// peak equals vmax near r = rc. α = 1.2564 puts the maximum at r = rc.
	const alpha = 1.2564312086261696
	peak := (1 - math.Exp(-alpha)) // value of the bracket at r = rc
	return vmax * (rc / r) * (1 - math.Exp(-alpha*r*r/(rc*rc))) / peak
}

// heightProfile tapers vortex strength with height: strongest near the
// surface, decaying aloft.
func (m *Model) heightProfile(z float64) float64 {
	return math.Exp(-z / (0.6 * m.cfg.Lz))
}

// VelocityAt returns the wind vector (m/s) at point (x, y, z) meters and
// time t seconds.
func (m *Model) VelocityAt(x, y, z, t float64) (u, v, w float64) {
	cx, cy := m.center(t)
	amp := m.intensity(t)
	hp := m.heightProfile(z)

	addVortex := func(vx, vy, rc, vmax, wmax float64) {
		dx := x - vx
		dy := y - vy
		r := math.Hypot(dx, dy)
		vt := swirl(r, rc, vmax) * hp
		if r > 1e-9 {
			// Tangential (counter-clockwise) + radial inflow near ground.
			inflow := -0.35 * vt * math.Exp(-z/(0.12*m.cfg.Lz))
			u += (-dy/r)*vt + (dx/r)*inflow
			v += (dx/r)*vt + (dy/r)*inflow
		}
		// Core updraft, peaking at mid level.
		zfrac := z / m.cfg.Lz
		w += wmax * math.Exp(-r*r/(2*rc*rc)) * 4 * zfrac * (1 - zfrac)
	}

	// Primary vortex.
	addVortex(cx, cy, m.cfg.CoreRadius, m.cfg.MaxSwirl*amp, 0.55*m.cfg.MaxSwirl*amp)

	// Orbiting sub-vortices.
	for sv := 0; sv < m.cfg.SubVortices; sv++ {
		phase := 2*math.Pi*float64(sv)/float64(max(m.cfg.SubVortices, 1)) +
			t*m.cfg.MaxSwirl/(2*m.cfg.CoreRadius) // orbital angular rate
		orbitR := 1.6 * m.cfg.CoreRadius
		svx := cx + orbitR*math.Cos(phase)
		svy := cy + orbitR*math.Sin(phase)
		addVortex(svx, svy, 0.35*m.cfg.CoreRadius, 0.4*m.cfg.MaxSwirl*amp, 0.25*m.cfg.MaxSwirl*amp)
	}

	// Storm-relative environmental flow plus broadband turbulence.
	u += m.cfg.TranslationX
	v += m.cfg.TranslationY
	tx, ty, tz := m.turb.VelocityAt(
		8*math.Pi*x/m.cfg.Lx, 8*math.Pi*y/m.cfg.Ly, 8*math.Pi*z/m.cfg.Lz, t)
	u += m.cfg.TurbulenceAmplitude * tx
	v += m.cfg.TurbulenceAmplitude * ty
	w += m.cfg.TurbulenceAmplitude * tz
	return u, v, w
}

// PressurePerturbationAt returns the cyclostrophic pressure deficit (Pa) at
// a point: p' ≈ -ρ v_peak² exp(-r²/rc²) scaled by the height profile, the
// closed-form balance for a Gaussian swirl core.
func (m *Model) PressurePerturbationAt(x, y, z, t float64) float64 {
	const rhoAir = 1.1
	cx, cy := m.center(t)
	amp := m.intensity(t)
	hp := m.heightProfile(z)
	dx := x - cx
	dy := y - cy
	r2 := dx*dx + dy*dy
	rc := m.cfg.CoreRadius
	vmax := m.cfg.MaxSwirl * amp * hp
	p := -rhoAir * vmax * vmax * math.Exp(-r2/(rc*rc))
	// Small broadband component so the field is not perfectly smooth.
	p += 25 * m.turb.ScalarAt(6*math.Pi*x/m.cfg.Lx, 6*math.Pi*y/m.cfg.Ly, 6*math.Pi*z/m.cfg.Lz, t)
	return p
}

// CloudMixingRatioAt returns the cloud water mixing ratio (g/kg) at a
// point. Cloud forms where the updraft exceeds a condensation threshold at
// cloud-bearing heights, producing the sharp-edged field the paper
// describes as "what the clouds look like to human eyes".
func (m *Model) CloudMixingRatioAt(x, y, z, t float64) float64 {
	_, _, w := m.VelocityAt(x, y, z, t)
	zfrac := z / m.cfg.Lz
	// Cloud base around 0.15 Lz; deep cloud above.
	heightFactor := sigmoid((zfrac - 0.15) * 20)
	// Condensation: sharp onset above ~2 m/s updraft.
	condensation := sigmoid((w - 2.0) / 1.5)
	q := 3.2 * heightFactor * condensation
	// Ambient stratiform deck aloft.
	q += 0.6 * sigmoid((zfrac-0.55)*14)
	if q < 0 {
		q = 0
	}
	return q
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

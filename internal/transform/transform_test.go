package transform

import (
	"math"
	"math/rand"
	"testing"

	"stwave/internal/grid"
	"stwave/internal/wavelet"
)

func randField(rng *rand.Rand, nx, ny, nz int) *grid.Field3D {
	f := grid.NewField3D(nx, ny, nz)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64() * 10
	}
	return f
}

func smoothField(nx, ny, nz int) *grid.Field3D {
	f := grid.NewField3D(nx, ny, nz)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				fx := float64(x) / float64(nx)
				fy := float64(y) / float64(ny)
				fz := float64(z) / float64(nz)
				f.Set(x, y, z, math.Sin(2*math.Pi*fx)*math.Cos(2*math.Pi*fy)+fz*fz)
			}
		}
	}
	return f
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestLevels3D(t *testing.T) {
	cases := []struct {
		k    wavelet.Kernel
		d    grid.Dims
		want int
	}{
		{wavelet.CDF97, grid.Dims{Nx: 512, Ny: 512, Nz: 512}, 6},
		{wavelet.CDF97, grid.Dims{Nx: 512, Ny: 512, Nz: 10}, 1},
		{wavelet.CDF97, grid.Dims{Nx: 97, Ny: 97, Nz: 97}, 4},
		{wavelet.CDF53, grid.Dims{Nx: 96, Ny: 96, Nz: 96}, 5},
		{wavelet.CDF97, grid.Dims{Nx: 8, Ny: 512, Nz: 512}, 0},
	}
	for _, c := range cases {
		if got := Levels3D(c.k, c.d); got != c.want {
			t.Errorf("Levels3D(%v, %v) = %d, want %d", c.k, c.d, got, c.want)
		}
	}
}

func TestForward3DPerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []wavelet.Kernel{wavelet.CDF97, wavelet.CDF53, wavelet.Haar} {
		for _, d := range []grid.Dims{{Nx: 16, Ny: 16, Nz: 16}, {Nx: 17, Ny: 13, Nz: 9}, {Nx: 32, Ny: 8, Nz: 24}, {Nx: 33, Ny: 1, Nz: 7}} {
			f := randField(rng, d.Nx, d.Ny, d.Nz)
			orig := f.Clone()
			levels := Levels3D(k, d)
			if err := Forward3D(f, k, levels, 1); err != nil {
				t.Fatalf("%v %v: %v", k, d, err)
			}
			if err := Inverse3D(f, k, levels, 1); err != nil {
				t.Fatalf("%v %v inverse: %v", k, d, err)
			}
			if diff := maxDiff(orig.Data, f.Data); diff > 1e-8 {
				t.Errorf("%v %v levels=%d: reconstruction error %.3g", k, d, levels, diff)
			}
		}
	}
}

func TestForward3DParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := randField(rng, 24, 20, 16)
	serial := f.Clone()
	parallel := f.Clone()
	levels := Levels3D(wavelet.CDF97, f.Dims)
	if err := Forward3D(serial, wavelet.CDF97, levels, 1); err != nil {
		t.Fatal(err)
	}
	if err := Forward3D(parallel, wavelet.CDF97, levels, 8); err != nil {
		t.Fatal(err)
	}
	if diff := maxDiff(serial.Data, parallel.Data); diff != 0 {
		t.Errorf("parallel result differs from serial by %g (must be bit-identical)", diff)
	}
}

func TestForward3DRejectsBadLevels(t *testing.T) {
	f := grid.NewField3D(16, 16, 16)
	if err := Forward3D(f, wavelet.CDF97, 5, 1); err == nil {
		t.Error("expected error: 5 levels on 16^3 with CDF 9/7")
	}
	if err := Forward3D(f, wavelet.CDF97, -1, 1); err == nil {
		t.Error("expected error for negative levels")
	}
	if err := Inverse3D(f, wavelet.CDF97, 5, 1); err == nil {
		t.Error("expected inverse error: too many levels")
	}
}

func TestForward3DCompactsSmoothField(t *testing.T) {
	f := smoothField(32, 32, 32)
	orig := f.Clone()
	levels := Levels3D(wavelet.CDF97, f.Dims)
	if err := Forward3D(f, wavelet.CDF97, levels, 0); err != nil {
		t.Fatal(err)
	}
	// Count coefficients holding 99.99% of the energy.
	var total float64
	mags := make([]float64, len(f.Data))
	for i, v := range f.Data {
		mags[i] = v * v
		total += mags[i]
	}
	// Greedy: sort descending would be cleaner, but a threshold sweep
	// suffices: count coefficients above 1e-6 of the max magnitude.
	var maxMag float64
	for _, m := range mags {
		if m > maxMag {
			maxMag = m
		}
	}
	big := 0
	var bigEnergy float64
	for _, m := range mags {
		if m > 1e-8*maxMag {
			big++
			bigEnergy += m
		}
	}
	if frac := float64(big) / float64(len(mags)); frac > 0.5 {
		t.Errorf("smooth field: %.1f%% of coefficients significant, expected < 50%%", frac*100)
	}
	if bigEnergy/total < 0.9999 {
		t.Errorf("significant coefficients hold only %.6f of energy", bigEnergy/total)
	}
	_ = orig
}

func newTestWindow(rng *rand.Rand, d grid.Dims, slices int, temporalCoherence float64) *grid.Window {
	w := grid.NewWindow(d)
	base := randField(rng, d.Nx, d.Ny, d.Nz)
	for t := 0; t < slices; t++ {
		f := base.Clone()
		for i := range f.Data {
			f.Data[i] += temporalCoherence * math.Sin(float64(t)/3+float64(i%7))
		}
		if err := w.Append(f, float64(t)); err != nil {
			panic(err)
		}
	}
	return w
}

func TestLevelsTemporalMatchesPaper(t *testing.T) {
	cases := []struct {
		k        wavelet.Kernel
		ws, want int
	}{
		{wavelet.CDF97, 10, 1}, {wavelet.CDF97, 20, 2}, {wavelet.CDF97, 40, 3},
		{wavelet.CDF53, 10, 2}, {wavelet.CDF53, 20, 3}, {wavelet.CDF53, 40, 4},
		{wavelet.CDF97, 18, 2}, // the window size used in Section VI
	}
	for _, c := range cases {
		if got := LevelsTemporal(c.k, c.ws); got != c.want {
			t.Errorf("LevelsTemporal(%v, %d) = %d, want %d", c.k, c.ws, got, c.want)
		}
	}
}

func TestTemporalPerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []wavelet.Kernel{wavelet.CDF97, wavelet.CDF53} {
		for _, ws := range []int{10, 18, 20, 40} {
			w := newTestWindow(rng, grid.Dims{Nx: 6, Ny: 5, Nz: 4}, ws, 1.0)
			orig := w.Clone()
			levels := LevelsTemporal(k, ws)
			if err := ForwardTemporal(w, k, levels, 2); err != nil {
				t.Fatalf("%v ws=%d: %v", k, ws, err)
			}
			if err := InverseTemporal(w, k, levels, 2); err != nil {
				t.Fatalf("%v ws=%d inverse: %v", k, ws, err)
			}
			for i := range w.Slices {
				if diff := maxDiff(orig.Slices[i].Data, w.Slices[i].Data); diff > 1e-9 {
					t.Errorf("%v ws=%d slice %d: error %.3g", k, ws, i, diff)
				}
			}
		}
	}
}

func TestTemporalRejectsBadLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := newTestWindow(rng, grid.Dims{Nx: 2, Ny: 2, Nz: 2}, 10, 1)
	if err := ForwardTemporal(w, wavelet.CDF97, 2, 1); err == nil {
		t.Error("expected error: 2 temporal levels with CDF 9/7 and window 10")
	}
	if err := ForwardTemporal(w, wavelet.CDF97, -1, 1); err == nil {
		t.Error("expected error for negative levels")
	}
}

func TestTemporalZeroLevelsIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := newTestWindow(rng, grid.Dims{Nx: 3, Ny: 3, Nz: 3}, 10, 1)
	orig := w.Clone()
	if err := ForwardTemporal(w, wavelet.CDF97, 0, 1); err != nil {
		t.Fatal(err)
	}
	for i := range w.Slices {
		if diff := maxDiff(orig.Slices[i].Data, w.Slices[i].Data); diff != 0 {
			t.Errorf("0-level temporal transform modified slice %d", i)
		}
	}
}

func TestForward4DPerfectReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := newTestWindow(rng, grid.Dims{Nx: 16, Ny: 12, Nz: 10}, 20, 1.0)
	orig := w.Clone()
	spec := Spec{
		SpatialKernel:  wavelet.CDF97,
		SpatialLevels:  -1,
		TemporalKernel: wavelet.CDF97,
		TemporalLevels: -1,
		Workers:        4,
	}
	if err := Forward4D(w, spec); err != nil {
		t.Fatal(err)
	}
	if err := Inverse4D(w, spec); err != nil {
		t.Fatal(err)
	}
	for i := range w.Slices {
		if diff := maxDiff(orig.Slices[i].Data, w.Slices[i].Data); diff > 1e-8 {
			t.Errorf("slice %d: reconstruction error %.3g", i, diff)
		}
	}
}

// The core claim of the paper: on temporally coherent data, the temporal
// transform concentrates energy — the detail slices (temporal highpass)
// carry far less energy than the original slices did.
func TestTemporalTransformCompactsCoherentData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	w := grid.NewWindow(d)
	base := randField(rng, d.Nx, d.Ny, d.Nz)
	for ts := 0; ts < 16; ts++ {
		f := base.Clone()
		for i := range f.Data {
			// Slowly varying in time: high temporal coherence.
			f.Data[i] *= 1 + 0.01*float64(ts)
		}
		if err := w.Append(f, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	energy := func(s *grid.Field3D) float64 {
		var e float64
		for _, v := range s.Data {
			e += v * v
		}
		return e
	}
	var beforeDetail float64
	for _, s := range w.Slices[8:] {
		beforeDetail += energy(s)
	}
	if err := ForwardTemporal(w, wavelet.CDF97, 1, 1); err != nil {
		t.Fatal(err)
	}
	var afterDetail float64
	for _, s := range w.Slices[8:] { // second half = temporal detail band
		afterDetail += energy(s)
	}
	if afterDetail > beforeDetail*0.01 {
		t.Errorf("temporal detail energy %.3g not < 1%% of original %.3g on coherent data", afterDetail, beforeDetail)
	}
}

func TestSpecResolve(t *testing.T) {
	s := Spec{
		SpatialKernel:  wavelet.CDF97,
		SpatialLevels:  -1,
		TemporalKernel: wavelet.CDF53,
		TemporalLevels: -1,
	}
	sp, tm := s.resolve(grid.Dims{Nx: 64, Ny: 64, Nz: 64}, 20)
	if sp != wavelet.MaxLevels(wavelet.CDF97, 64) {
		t.Errorf("spatial resolve = %d", sp)
	}
	if tm != 3 {
		t.Errorf("temporal resolve = %d, want 3 (CDF 5/3, window 20)", tm)
	}
	s.SpatialLevels, s.TemporalLevels = 2, 1
	sp, tm = s.resolve(grid.Dims{Nx: 64, Ny: 64, Nz: 64}, 20)
	if sp != 2 || tm != 1 {
		t.Errorf("explicit levels not honored: %d, %d", sp, tm)
	}
}

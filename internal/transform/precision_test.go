package transform

import (
	"math"
	"testing"

	"stwave/internal/grid"
	"stwave/internal/wavelet"
)

// eps32 is float32 machine epsilon (2^-23).
const eps32 = 1.1920928955078125e-07

func oracleWindows(d grid.Dims, slices int) (*grid.Window, *grid.Window32) {
	w64 := grid.NewWindow(d)
	w32 := grid.NewWindow32(d)
	for t := 0; t < slices; t++ {
		f64 := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		f32 := grid.NewField3D32(d.Nx, d.Ny, d.Nz)
		tt := float64(t) * 0.07
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 0; x < d.Nx; x++ {
					v := math.Sin(0.5*float64(x)+tt)*math.Cos(0.4*float64(y)) +
						0.3*math.Sin(0.6*float64(z)-tt)
					f64.Set(x, y, z, v)
					f32.Set(x, y, z, float32(v))
				}
			}
		}
		if err := w64.Append(f64, float64(t)); err != nil {
			panic(err)
		}
		if err := w32.Append(f32, float64(t)); err != nil {
			panic(err)
		}
	}
	return w64, w32
}

// TestForward4DFloat32MatchesOracle runs the full 4D transform at both
// precisions over every window shape the pipeline ships (1/10/20/40
// slices) and both kernels, and checks the float32 coefficients against
// the float64 oracle. The bound composes the 1D ladder bound (see
// wavelet.TestFloat32MatchesFloat64Oracle1D) over the four axis passes:
// each pass contributes O(levels*eps32) relative error against the
// largest coefficient magnitude, so the composed error stays within
// C*(spatial+temporal+1)*eps32 of the oracle; C = 512 covers the four
// passes with worst-case alignment slack.
func TestForward4DFloat32MatchesOracle(t *testing.T) {
	d := grid.Dims{Nx: 13, Ny: 11, Nz: 9}
	for _, kernel := range []wavelet.Kernel{wavelet.CDF97, wavelet.CDF53} {
		for _, slices := range []int{1, 10, 20, 40} {
			w64, w32 := oracleWindows(d, slices)
			spec := Spec{
				SpatialKernel:  kernel,
				SpatialLevels:  -1,
				TemporalKernel: kernel,
				TemporalLevels: -1,
				Workers:        2,
			}
			if err := Forward4D(w64, spec); err != nil {
				t.Fatalf("%v slices=%d: f64: %v", kernel, slices, err)
			}
			if err := Forward4D(w32, spec); err != nil {
				t.Fatalf("%v slices=%d: f32: %v", kernel, slices, err)
			}
			spatial, temporal := spec.resolve(d, slices)
			coefMax := 1.0
			for _, s := range w64.Slices {
				for _, c := range s.Data {
					if a := math.Abs(c); a > coefMax {
						coefMax = a
					}
				}
			}
			tol := 512 * eps32 * float64(spatial+temporal+1) * coefMax
			for si := range w64.Slices {
				a, b := w64.Slices[si].Data, w32.Slices[si].Data
				for i := range a {
					if diff := math.Abs(float64(b[i]) - a[i]); !(diff <= tol) {
						t.Fatalf("%v slices=%d: slice %d coeff %d: f32 %g vs f64 %g (|diff| %g > tol %g)",
							kernel, slices, si, i, b[i], a[i], diff, tol)
					}
				}
			}
		}
	}
}

package transform

import (
	"fmt"

	"stwave/internal/grid"
	"stwave/internal/wavelet"
)

// Levels3D returns the number of transform levels the paper's Equation 2
// permits for a 3D grid: the per-axis maximum evaluated at the shortest
// axis, so every axis can sustain all levels.
func Levels3D(k wavelet.Kernel, d grid.Dims) int {
	n := d.Nx
	if d.Ny < n {
		n = d.Ny
	}
	if d.Nz < n {
		n = d.Nz
	}
	return wavelet.MaxLevels(k, n)
}

// Forward3D applies `levels` passes of the non-standard decomposition to the
// field in place: each pass runs one single-level 1D transform along every X
// row, then every Y column, then every Z pencil of the current approximation
// cube, then halves the cube. workers < 1 uses all CPUs.
func Forward3D(f *grid.Field3D, k wavelet.Kernel, levels, workers int) error {
	if levels < 0 {
		return fmt.Errorf("transform: negative level count %d", levels)
	}
	if max := Levels3D(k, f.Dims); levels > max {
		return fmt.Errorf("transform: %d levels exceeds maximum %d for kernel %v on grid %v", levels, max, k, f.Dims)
	}
	nx, ny, nz := f.Dims.Nx, f.Dims.Ny, f.Dims.Nz
	cnx, cny, cnz := nx, ny, nz
	for l := 0; l < levels; l++ {
		passX(f, k, cnx, cny, cnz, workers, false)
		passY(f, k, cnx, cny, cnz, workers, false)
		passZ(f, k, cnx, cny, cnz, workers, false)
		cnx, cny, cnz = half(cnx), half(cny), half(cnz)
	}
	return nil
}

// Inverse3D undoes Forward3D with the same kernel and level count.
func Inverse3D(f *grid.Field3D, k wavelet.Kernel, levels, workers int) error {
	if levels < 0 {
		return fmt.Errorf("transform: negative level count %d", levels)
	}
	if max := Levels3D(k, f.Dims); levels > max {
		return fmt.Errorf("transform: %d levels exceeds maximum %d for kernel %v on grid %v", levels, max, k, f.Dims)
	}
	// Rebuild the dims pyramid, then invert from the coarsest level out,
	// reversing the per-level axis order: Z, Y, X.
	type cube struct{ x, y, z int }
	dims := make([]cube, levels)
	cnx, cny, cnz := f.Dims.Nx, f.Dims.Ny, f.Dims.Nz
	for l := 0; l < levels; l++ {
		dims[l] = cube{cnx, cny, cnz}
		cnx, cny, cnz = half(cnx), half(cny), half(cnz)
	}
	for l := levels - 1; l >= 0; l-- {
		c := dims[l]
		passZ(f, k, c.x, c.y, c.z, workers, true)
		passY(f, k, c.x, c.y, c.z, workers, true)
		passX(f, k, c.x, c.y, c.z, workers, true)
	}
	return nil
}

func half(n int) int { return (n + 1) / 2 }

// passX transforms the first cnx samples of every X row inside the
// (cnx, cny, cnz) approximation cube. Rows are contiguous in memory.
func passX(f *grid.Field3D, k wavelet.Kernel, cnx, cny, cnz, workers int, inverse bool) {
	if cnx < 2 {
		return
	}
	nx, ny := f.Dims.Nx, f.Dims.Ny
	lines := cny * cnz
	parallelFor(lines, workers, func(start, end int) {
		scratch := make([]float64, cnx)
		for li := start; li < end; li++ {
			y := li % cny
			z := li / cny
			row := f.Data[(z*ny+y)*nx : (z*ny+y)*nx+cnx]
			if inverse {
				wavelet.InverseStep(k, row, scratch)
			} else {
				wavelet.ForwardStep(k, row, scratch)
			}
		}
	})
}

// passY transforms strided Y lines (stride Nx) inside the approximation
// cube; lines are gathered into a contiguous buffer, transformed, and
// scattered back.
func passY(f *grid.Field3D, k wavelet.Kernel, cnx, cny, cnz, workers int, inverse bool) {
	if cny < 2 {
		return
	}
	nx, ny := f.Dims.Nx, f.Dims.Ny
	lines := cnx * cnz
	parallelFor(lines, workers, func(start, end int) {
		line := make([]float64, cny)
		scratch := make([]float64, cny)
		for li := start; li < end; li++ {
			x := li % cnx
			z := li / cnx
			base := z*ny*nx + x
			for y := 0; y < cny; y++ {
				line[y] = f.Data[base+y*nx]
			}
			if inverse {
				wavelet.InverseStep(k, line, scratch)
			} else {
				wavelet.ForwardStep(k, line, scratch)
			}
			for y := 0; y < cny; y++ {
				f.Data[base+y*nx] = line[y]
			}
		}
	})
}

// passZ transforms strided Z pencils (stride Nx*Ny) inside the approximation
// cube.
func passZ(f *grid.Field3D, k wavelet.Kernel, cnx, cny, cnz, workers int, inverse bool) {
	if cnz < 2 {
		return
	}
	nx, ny := f.Dims.Nx, f.Dims.Ny
	stride := nx * ny
	lines := cnx * cny
	parallelFor(lines, workers, func(start, end int) {
		line := make([]float64, cnz)
		scratch := make([]float64, cnz)
		for li := start; li < end; li++ {
			x := li % cnx
			y := li / cnx
			base := y*nx + x
			for z := 0; z < cnz; z++ {
				line[z] = f.Data[base+z*stride]
			}
			if inverse {
				wavelet.InverseStep(k, line, scratch)
			} else {
				wavelet.ForwardStep(k, line, scratch)
			}
			for z := 0; z < cnz; z++ {
				f.Data[base+z*stride] = line[z]
			}
		}
	})
}

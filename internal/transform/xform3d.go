package transform

import (
	"fmt"

	"stwave/internal/grid"
	"stwave/internal/num"
	"stwave/internal/par"
	"stwave/internal/scratch"
	"stwave/internal/wavelet"
)

// spatialLanes is the tile width (in X samples) of the blocked Y and Z
// passes: each tile transposes spatialLanes neighbouring strided lines
// into a contiguous slab and transforms them together. 64 lanes keep a
// 64-sample × 512-line slab pair under 512 KiB while amortizing the
// lifting loops over a full cache line of lanes.
const spatialLanes = 64

// contigSlabBytes caps (in bytes) the slab size of the contiguous fast
// paths in passY and passZ: at level 0 the grid's own memory layout
// already matches the blocked-kernel lane layout, so the transform can
// lift straight out of f.Data with no gather copy — worthwhile only
// while the region still fits in cache (256 KiB, i.e. twice the float64
// element budget when lifting float32).
const contigSlabBytes = 1 << 18

// Levels3D returns the number of transform levels the paper's Equation 2
// permits for a 3D grid: the per-axis maximum evaluated at the shortest
// axis, so every axis can sustain all levels.
func Levels3D(k wavelet.Kernel, d grid.Dims) int {
	n := d.Nx
	if d.Ny < n {
		n = d.Ny
	}
	if d.Nz < n {
		n = d.Nz
	}
	return wavelet.MaxLevels(k, n)
}

// Forward3D applies `levels` passes of the non-standard decomposition to the
// field in place: each pass runs one single-level 1D transform along every X
// row, then every Y column, then every Z pencil of the current approximation
// cube, then halves the cube. workers < 1 uses all CPUs.
func Forward3D[F num.Float](f *grid.Field3DOf[F], k wavelet.Kernel, levels, workers int) error {
	if levels < 0 {
		return fmt.Errorf("transform: negative level count %d", levels)
	}
	if max := Levels3D(k, f.Dims); levels > max {
		return fmt.Errorf("transform: %d levels exceeds maximum %d for kernel %v on grid %v", levels, max, k, f.Dims)
	}
	nx, ny, nz := f.Dims.Nx, f.Dims.Ny, f.Dims.Nz
	cnx, cny, cnz := nx, ny, nz
	for l := 0; l < levels; l++ {
		passX(f, k, cnx, cny, cnz, workers, false)
		passY(f, k, cnx, cny, cnz, workers, false)
		passZ(f, k, cnx, cny, cnz, workers, false)
		cnx, cny, cnz = half(cnx), half(cny), half(cnz)
	}
	return nil
}

// Inverse3D undoes Forward3D with the same kernel and level count.
func Inverse3D[F num.Float](f *grid.Field3DOf[F], k wavelet.Kernel, levels, workers int) error {
	if levels < 0 {
		return fmt.Errorf("transform: negative level count %d", levels)
	}
	if max := Levels3D(k, f.Dims); levels > max {
		return fmt.Errorf("transform: %d levels exceeds maximum %d for kernel %v on grid %v", levels, max, k, f.Dims)
	}
	// Rebuild the dims pyramid, then invert from the coarsest level out,
	// reversing the per-level axis order: Z, Y, X.
	type cube struct{ x, y, z int }
	dims := make([]cube, levels)
	cnx, cny, cnz := f.Dims.Nx, f.Dims.Ny, f.Dims.Nz
	for l := 0; l < levels; l++ {
		dims[l] = cube{cnx, cny, cnz}
		cnx, cny, cnz = half(cnx), half(cny), half(cnz)
	}
	for l := levels - 1; l >= 0; l-- {
		c := dims[l]
		passZ(f, k, c.x, c.y, c.z, workers, true)
		passY(f, k, c.x, c.y, c.z, workers, true)
		passX(f, k, c.x, c.y, c.z, workers, true)
	}
	return nil
}

func half(n int) int { return (n + 1) / 2 }

// passX transforms the first cnx samples of every X row inside the
// (cnx, cny, cnz) approximation cube. Rows are contiguous in memory, so
// the scalar kernel already streams; rows are batched into tasks of at
// least ~4096 samples so short rows never pay goroutine overhead.
func passX[F num.Float](f *grid.Field3DOf[F], k wavelet.Kernel, cnx, cny, cnz, workers int, inverse bool) {
	if cnx < 2 {
		return
	}
	lines := cny * cnz
	// The workers<=1 path calls the range worker directly: creating the
	// closure for par.For would heap-allocate it at every level of every
	// slice even though the sequential path never needs it.
	if workers <= 1 {
		passXRange(f, k, cnx, cny, 0, lines, inverse)
		return
	}
	// Constant byte grain: ~32 KiB of samples per task at either
	// precision, so float32 rows batch twice as many samples before
	// paying goroutine overhead.
	grain := 1 + (32768/num.SampleBytes[F]())/cnx
	par.For(lines, workers, grain, func(start, end int) {
		passXRange(f, k, cnx, cny, start, end, inverse)
	})
}

func passXRange[F num.Float](f *grid.Field3DOf[F], k wavelet.Kernel, cnx, cny, start, end int, inverse bool) {
	nx, ny := f.Dims.Nx, f.Dims.Ny
	scr := scratch.FloatsOf[F](cnx)
	for li := start; li < end; li++ {
		y := li % cny
		z := li / cny
		row := f.Data[(z*ny+y)*nx : (z*ny+y)*nx+cnx]
		if inverse {
			wavelet.InverseStep(k, row, scr)
		} else {
			wavelet.ForwardStep(k, row, scr)
		}
	}
	scratch.PutFloatsOf(scr)
}

// passY transforms strided Y lines (stride Nx) inside the approximation
// cube. Tiles of spatialLanes neighbouring X positions are transposed
// into a contiguous (cny × lanes) slab with one bulk copy per Y level,
// transformed together by the blocked kernel, and scattered back.
func passY[F num.Float](f *grid.Field3DOf[F], k wavelet.Kernel, cnx, cny, cnz, workers int, inverse bool) {
	if cny < 2 {
		return
	}
	// Contiguous fast path: when the pass covers full X rows (level 0),
	// the cny×nx plane region at each z is already laid out exactly like
	// a blocked slab with nx lanes — lift it in place, no gather.
	if nx := f.Dims.Nx; cnx == nx && cny*nx*num.SampleBytes[F]() <= contigSlabBytes {
		if workers <= 1 {
			passYContig(f, k, cny, 0, cnz, inverse)
			return
		}
		par.For(cnz, workers, 1, func(start, end int) {
			passYContig(f, k, cny, start, end, inverse)
		})
		return
	}
	ntx := (cnx + spatialLanes - 1) / spatialLanes
	tiles := ntx * cnz
	if workers <= 1 {
		passYRange(f, k, cnx, cny, ntx, 0, tiles, inverse)
		return
	}
	par.For(tiles, workers, 1, func(start, end int) {
		passYRange(f, k, cnx, cny, ntx, start, end, inverse)
	})
}

// passYContig transforms the z range [z0, z1) through the blocked kernel
// directly on f.Data: each z plane's first cny rows form a contiguous
// (cny × nx) slab. The forward kernel clobbers its source, which is fine —
// the result is copied over the same region.
func passYContig[F num.Float](f *grid.Field3DOf[F], k wavelet.Kernel, cny, z0, z1 int, inverse bool) {
	nx, ny := f.Dims.Nx, f.Dims.Ny
	scr := scratch.FloatsOf[F](cny * nx)
	for z := z0; z < z1; z++ {
		src := f.Data[z*ny*nx : z*ny*nx+cny*nx]
		if inverse {
			wavelet.InverseStepBlockTo(k, src, scr, cny, nx)
		} else {
			wavelet.ForwardStepBlockTo(k, src, scr, cny, nx)
		}
		copy(src, scr[:cny*nx])
	}
	scratch.PutFloatsOf(scr)
}

func passYRange[F num.Float](f *grid.Field3DOf[F], k wavelet.Kernel, cnx, cny, ntx, start, end int, inverse bool) {
	nx, ny := f.Dims.Nx, f.Dims.Ny
	slab := scratch.FloatsOf[F](cny * spatialLanes)
	scr := scratch.FloatsOf[F](cny * spatialLanes)
	for ti := start; ti < end; ti++ {
		x0 := (ti % ntx) * spatialLanes
		z := ti / ntx
		lanes := cnx - x0
		if lanes > spatialLanes {
			lanes = spatialLanes
		}
		base := z*ny*nx + x0
		for y := 0; y < cny; y++ {
			copy(slab[y*lanes:(y+1)*lanes], f.Data[base+y*nx:base+y*nx+lanes])
		}
		// Single level: lift straight into the second slab and scatter
		// from there — no copy-back.
		if inverse {
			wavelet.InverseStepBlockTo(k, slab, scr, cny, lanes)
		} else {
			wavelet.ForwardStepBlockTo(k, slab, scr, cny, lanes)
		}
		for y := 0; y < cny; y++ {
			copy(f.Data[base+y*nx:base+y*nx+lanes], scr[y*lanes:(y+1)*lanes])
		}
	}
	scratch.PutFloatsOf(scr)
	scratch.PutFloatsOf(slab)
}

// passZ transforms strided Z pencils (stride Nx*Ny) inside the
// approximation cube, blocked exactly like passY: lanes are neighbouring
// X positions at a fixed Y, the series runs along Z.
func passZ[F num.Float](f *grid.Field3DOf[F], k wavelet.Kernel, cnx, cny, cnz, workers int, inverse bool) {
	if cnz < 2 {
		return
	}
	// Contiguous fast path: when the pass covers the full X×Y extent
	// (level 0), the whole cnz-deep region is one blocked slab with
	// nx*ny lanes. Serial only — the tiled path below is what splits the
	// work across goroutines.
	if nx, ny := f.Dims.Nx, f.Dims.Ny; workers <= 1 && cnx == nx && cny == ny && cnz*ny*nx*num.SampleBytes[F]() <= contigSlabBytes {
		lanes := ny * nx
		scr := scratch.FloatsOf[F](cnz * lanes)
		src := f.Data[:cnz*lanes]
		if inverse {
			wavelet.InverseStepBlockTo(k, src, scr, cnz, lanes)
		} else {
			wavelet.ForwardStepBlockTo(k, src, scr, cnz, lanes)
		}
		copy(src, scr[:cnz*lanes])
		scratch.PutFloatsOf(scr)
		return
	}
	ntx := (cnx + spatialLanes - 1) / spatialLanes
	tiles := ntx * cny
	if workers <= 1 {
		passZRange(f, k, cnx, cnz, ntx, 0, tiles, inverse)
		return
	}
	par.For(tiles, workers, 1, func(start, end int) {
		passZRange(f, k, cnx, cnz, ntx, start, end, inverse)
	})
}

func passZRange[F num.Float](f *grid.Field3DOf[F], k wavelet.Kernel, cnx, cnz, ntx, start, end int, inverse bool) {
	nx, ny := f.Dims.Nx, f.Dims.Ny
	stride := nx * ny
	slab := scratch.FloatsOf[F](cnz * spatialLanes)
	scr := scratch.FloatsOf[F](cnz * spatialLanes)
	for ti := start; ti < end; ti++ {
		x0 := (ti % ntx) * spatialLanes
		y := ti / ntx
		lanes := cnx - x0
		if lanes > spatialLanes {
			lanes = spatialLanes
		}
		base := y*nx + x0
		for z := 0; z < cnz; z++ {
			copy(slab[z*lanes:(z+1)*lanes], f.Data[base+z*stride:base+z*stride+lanes])
		}
		if inverse {
			wavelet.InverseStepBlockTo(k, slab, scr, cnz, lanes)
		} else {
			wavelet.ForwardStepBlockTo(k, slab, scr, cnz, lanes)
		}
		for z := 0; z < cnz; z++ {
			copy(f.Data[base+z*stride:base+z*stride+lanes], scr[z*lanes:(z+1)*lanes])
		}
	}
	scratch.PutFloatsOf(scr)
	scratch.PutFloatsOf(slab)
}

package transform

import (
	"math"
	"testing"

	"stwave/internal/grid"
	"stwave/internal/wavelet"
)

func TestCoarseDims(t *testing.T) {
	d := grid.Dims{Nx: 64, Ny: 33, Nz: 10}
	if got := CoarseDims(d, 0); got != d {
		t.Errorf("0 levels: %v", got)
	}
	if got := CoarseDims(d, 1); got != (grid.Dims{Nx: 32, Ny: 17, Nz: 5}) {
		t.Errorf("1 level: %v", got)
	}
	if got := CoarseDims(d, 2); got != (grid.Dims{Nx: 16, Ny: 9, Nz: 3}) {
		t.Errorf("2 levels: %v", got)
	}
}

func TestCoarseApproximationConstantField(t *testing.T) {
	f := grid.NewField3D(40, 40, 40)
	f.Fill(4.25)
	for levels := 0; levels <= 2; levels++ {
		c, err := CoarseApproximation(f, wavelet.CDF97, levels, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := CoarseDims(f.Dims, levels)
		if c.Dims != want {
			t.Fatalf("levels=%d: dims %v, want %v", levels, c.Dims, want)
		}
		for i, v := range c.Data {
			if math.Abs(v-4.25) > 1e-9 {
				t.Fatalf("levels=%d: sample %d = %g, want 4.25 (constant preserved)", levels, i, v)
			}
		}
	}
}

func TestCoarseApproximationTracksSmoothField(t *testing.T) {
	f := smoothField(32, 32, 32)
	c, err := CoarseApproximation(f, wavelet.CDF97, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The level-1 approximation at (i,j,k) corresponds to the neighborhood
	// of fine sample (2i,2j,2k); for a smooth field they should be close.
	var sumErr, count float64
	for z := 1; z < c.Dims.Nz-1; z++ {
		for y := 1; y < c.Dims.Ny-1; y++ {
			for x := 1; x < c.Dims.Nx-1; x++ {
				diff := math.Abs(c.At(x, y, z) - f.At(2*x, 2*y, 2*z))
				sumErr += diff
				count++
			}
		}
	}
	if mean := sumErr / count; mean > 0.05 {
		t.Errorf("coarse preview deviates from smooth field by %.4g on average", mean)
	}
}

func TestCoarseApproximationDoesNotModifyInput(t *testing.T) {
	f := smoothField(16, 16, 16)
	orig := f.Clone()
	if _, err := CoarseApproximation(f, wavelet.CDF97, 1, 1); err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if f.Data[i] != orig.Data[i] {
			t.Fatal("input field was modified")
		}
	}
}

func TestCoarseApproximationValidation(t *testing.T) {
	f := grid.NewField3D(16, 16, 16)
	if _, err := CoarseApproximation(f, wavelet.CDF97, -1, 1); err == nil {
		t.Error("expected error for negative levels")
	}
	if _, err := CoarseApproximation(f, wavelet.CDF97, 10, 1); err == nil {
		t.Error("expected error for excessive levels")
	}
}

package transform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stwave/internal/grid"
	"stwave/internal/wavelet"
)

// Property: the full 4D transform round-trips to identity for random
// window shapes, lengths, and level choices.
func TestQuick4DRoundTrip(t *testing.T) {
	prop := func(seed int64, nxR, nyR, nzR, ntR uint8, sLvlR, tLvlR uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nx := int(nxR)%12 + 4
		ny := int(nyR)%12 + 4
		nz := int(nzR)%12 + 4
		nt := int(ntR)%15 + 2
		d := grid.Dims{Nx: nx, Ny: ny, Nz: nz}
		w := grid.NewWindow(d)
		for ts := 0; ts < nt; ts++ {
			f := grid.NewField3D(nx, ny, nz)
			for i := range f.Data {
				f.Data[i] = rng.NormFloat64()
			}
			if err := w.Append(f, float64(ts)); err != nil {
				return false
			}
		}
		orig := w.Clone()
		maxS := Levels3D(wavelet.CDF53, d)
		maxT := LevelsTemporal(wavelet.CDF53, nt)
		spec := Spec{
			SpatialKernel:  wavelet.CDF53,
			SpatialLevels:  int(sLvlR) % (maxS + 1),
			TemporalKernel: wavelet.CDF53,
			TemporalLevels: int(tLvlR) % (maxT + 1),
			Workers:        1 + int(seed)%3,
		}
		if err := Forward4D(w, spec); err != nil {
			return false
		}
		if err := Inverse4D(w, spec); err != nil {
			return false
		}
		for i := range w.Slices {
			for j := range w.Slices[i].Data {
				if math.Abs(w.Slices[i].Data[j]-orig.Slices[i].Data[j]) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the 3D transform preserves the sum of squares within the
// near-orthogonality bound of the kernels, for any dims.
func TestQuick3DEnergyStability(t *testing.T) {
	prop := func(seed int64, nxR, nyR, nzR uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nx := int(nxR)%20 + 9
		ny := int(nyR)%20 + 9
		nz := int(nzR)%20 + 9
		f := grid.NewField3D(nx, ny, nz)
		for i := range f.Data {
			f.Data[i] = rng.NormFloat64()
		}
		var e0 float64
		for _, v := range f.Data {
			e0 += v * v
		}
		levels := Levels3D(wavelet.CDF97, f.Dims)
		if err := Forward3D(f, wavelet.CDF97, levels, 1); err != nil {
			return false
		}
		var e1 float64
		for _, v := range f.Data {
			e1 += v * v
		}
		// CDF 9/7 is near-orthogonal: energy within a factor of 2 in the
		// worst case for pure noise.
		return e1 > e0/2 && e1 < e0*2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package transform

// Golden equivalence tests for the cache-blocked, parallel transform
// paths: every test reimplements the original serial algorithm (the
// pre-blocking line-at-a-time code) and asserts the production path is
// bit-identical across kernels, odd/even dims, degenerate windows, and
// worker counts. Run under -race by `make check` to also prove the
// parallel tiling is data-race free.

import (
	"math"
	"math/rand"
	"testing"

	"stwave/internal/grid"
	"stwave/internal/wavelet"
)

// refForward3D is the original serial non-standard decomposition: one
// line at a time, gather/scatter per strided pencil.
func refForward3D(f *grid.Field3D, k wavelet.Kernel, levels int) {
	cnx, cny, cnz := f.Dims.Nx, f.Dims.Ny, f.Dims.Nz
	for l := 0; l < levels; l++ {
		refPassX(f, k, cnx, cny, cnz, false)
		refPassY(f, k, cnx, cny, cnz, false)
		refPassZ(f, k, cnx, cny, cnz, false)
		cnx, cny, cnz = half(cnx), half(cny), half(cnz)
	}
}

func refInverse3D(f *grid.Field3D, k wavelet.Kernel, levels int) {
	type cube struct{ x, y, z int }
	dims := make([]cube, levels)
	cnx, cny, cnz := f.Dims.Nx, f.Dims.Ny, f.Dims.Nz
	for l := 0; l < levels; l++ {
		dims[l] = cube{cnx, cny, cnz}
		cnx, cny, cnz = half(cnx), half(cny), half(cnz)
	}
	for l := levels - 1; l >= 0; l-- {
		c := dims[l]
		refPassZ(f, k, c.x, c.y, c.z, true)
		refPassY(f, k, c.x, c.y, c.z, true)
		refPassX(f, k, c.x, c.y, c.z, true)
	}
}

func refPassX(f *grid.Field3D, k wavelet.Kernel, cnx, cny, cnz int, inverse bool) {
	if cnx < 2 {
		return
	}
	nx, ny := f.Dims.Nx, f.Dims.Ny
	scr := make([]float64, cnx)
	for z := 0; z < cnz; z++ {
		for y := 0; y < cny; y++ {
			row := f.Data[(z*ny+y)*nx : (z*ny+y)*nx+cnx]
			if inverse {
				wavelet.InverseStep(k, row, scr)
			} else {
				wavelet.ForwardStep(k, row, scr)
			}
		}
	}
}

func refPassY(f *grid.Field3D, k wavelet.Kernel, cnx, cny, cnz int, inverse bool) {
	if cny < 2 {
		return
	}
	nx, ny := f.Dims.Nx, f.Dims.Ny
	line := make([]float64, cny)
	scr := make([]float64, cny)
	for z := 0; z < cnz; z++ {
		for x := 0; x < cnx; x++ {
			base := z*ny*nx + x
			for y := 0; y < cny; y++ {
				line[y] = f.Data[base+y*nx]
			}
			if inverse {
				wavelet.InverseStep(k, line, scr)
			} else {
				wavelet.ForwardStep(k, line, scr)
			}
			for y := 0; y < cny; y++ {
				f.Data[base+y*nx] = line[y]
			}
		}
	}
}

func refPassZ(f *grid.Field3D, k wavelet.Kernel, cnx, cny, cnz int, inverse bool) {
	if cnz < 2 {
		return
	}
	nx, ny := f.Dims.Nx, f.Dims.Ny
	stride := nx * ny
	line := make([]float64, cnz)
	scr := make([]float64, cnz)
	for y := 0; y < cny; y++ {
		for x := 0; x < cnx; x++ {
			base := y*nx + x
			for z := 0; z < cnz; z++ {
				line[z] = f.Data[base+z*stride]
			}
			if inverse {
				wavelet.InverseStep(k, line, scr)
			} else {
				wavelet.ForwardStep(k, line, scr)
			}
			for z := 0; z < cnz; z++ {
				f.Data[base+z*stride] = line[z]
			}
		}
	}
}

// refTemporalPass is the original one-point-at-a-time temporal transform.
func refTemporalPass(w *grid.Window, k wavelet.Kernel, levels int, inverse bool) {
	t := w.Len()
	if levels == 0 || t < 2 {
		return
	}
	lens := temporalLens(t, levels)
	series := make([]float64, t)
	scr := make([]float64, t)
	for p := 0; p < w.Dims.Len(); p++ {
		w.GatherSeries(p, series)
		if inverse {
			for i := len(lens) - 1; i >= 0; i-- {
				wavelet.InverseStep(k, series[:lens[i]], scr)
			}
		} else {
			for _, ln := range lens {
				wavelet.ForwardStep(k, series[:ln], scr)
			}
		}
		w.ScatterSeries(p, series)
	}
}

func randomField(rng *rand.Rand, d grid.Dims) *grid.Field3D {
	f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	return f
}

func randomWindow(rng *rand.Rand, d grid.Dims, slices int) *grid.Window {
	w := grid.NewWindow(d)
	for t := 0; t < slices; t++ {
		if err := w.Append(randomField(rng, d), float64(t)); err != nil {
			panic(err)
		}
	}
	return w
}

func fieldsBitIdentical(t *testing.T, label string, got, want *grid.Field3D) {
	t.Helper()
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: sample %d: got %v, want %v (bit mismatch)", label, i, got.Data[i], want.Data[i])
		}
	}
}

func windowsBitIdentical(t *testing.T, label string, got, want *grid.Window) {
	t.Helper()
	for s := range want.Slices {
		for i := range want.Slices[s].Data {
			if math.Float64bits(got.Slices[s].Data[i]) != math.Float64bits(want.Slices[s].Data[i]) {
				t.Fatalf("%s: slice %d sample %d: got %v, want %v (bit mismatch)",
					label, s, i, got.Slices[s].Data[i], want.Slices[s].Data[i])
			}
		}
	}
}

var equivDims = []grid.Dims{
	{Nx: 1, Ny: 1, Nz: 1},
	{Nx: 2, Ny: 3, Nz: 4},
	{Nx: 9, Ny: 5, Nz: 7}, // odd everywhere
	{Nx: 8, Ny: 8, Nz: 8}, // even cube
	{Nx: 16, Ny: 12, Nz: 10},
	{Nx: 67, Ny: 4, Nz: 3},  // wider than one spatial tile
	{Nx: 130, Ny: 2, Nz: 2}, // three tiles with a short tail
}

// TestForward3DMatchesSerial pins the blocked, parallel 3D decomposition
// to the serial reference, forward and inverse, all kernels, odd/even
// dims, worker counts 1 and 4.
func TestForward3DMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []wavelet.Kernel{wavelet.CDF97, wavelet.CDF53, wavelet.Haar, wavelet.Daub4} {
		for _, d := range equivDims {
			levels := Levels3D(k, d)
			for _, workers := range []int{1, 4} {
				orig := randomField(rng, d)

				got := orig.Clone()
				if err := Forward3D(got, k, levels, workers); err != nil {
					t.Fatalf("Forward3D(%v, %v): %v", k, d, err)
				}
				want := orig.Clone()
				refForward3D(want, k, levels)
				fieldsBitIdentical(t, k.String()+" forward "+d.String(), got, want)

				if err := Inverse3D(got, k, levels, workers); err != nil {
					t.Fatalf("Inverse3D(%v, %v): %v", k, d, err)
				}
				refInverse3D(want, k, levels)
				fieldsBitIdentical(t, k.String()+" inverse "+d.String(), got, want)
			}
		}
	}
}

// TestTemporalMatchesSerial pins the cache-blocked temporal transform to
// the serial per-point reference across window sizes (including the
// paper's 10/20/40 and degenerate 1-slice windows) and kernels.
func TestTemporalMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := grid.Dims{Nx: 13, Ny: 5, Nz: 3} // 195 points: one full tile + a short tail
	for _, k := range []wavelet.Kernel{wavelet.CDF97, wavelet.CDF53, wavelet.Haar, wavelet.Daub4} {
		for _, slices := range []int{1, 2, 5, 10, 20, 40} {
			levels := LevelsTemporal(k, slices)
			for _, workers := range []int{1, 4} {
				orig := randomWindow(rng, d, slices)

				got := orig.Clone()
				if err := ForwardTemporal(got, k, levels, workers); err != nil {
					t.Fatalf("ForwardTemporal(%v, %d slices): %v", k, slices, err)
				}
				want := orig.Clone()
				refTemporalPass(want, k, levels, false)
				windowsBitIdentical(t, k.String()+" forward temporal", got, want)

				if err := InverseTemporal(got, k, levels, workers); err != nil {
					t.Fatalf("InverseTemporal(%v, %d slices): %v", k, slices, err)
				}
				refTemporalPass(want, k, levels, true)
				windowsBitIdentical(t, k.String()+" inverse temporal", got, want)
			}
		}
	}
}

// TestForward4DWorkerInvariance asserts the full 4D transform produces
// bit-identical output regardless of the worker budget — the property
// that makes the window-level parallel split safe to enable by default.
func TestForward4DWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := grid.Dims{Nx: 12, Ny: 9, Nz: 7}
	orig := randomWindow(rng, d, 10)
	spec := Spec{
		SpatialKernel: wavelet.CDF97, SpatialLevels: -1,
		TemporalKernel: wavelet.CDF53, TemporalLevels: -1,
		Workers: 1,
	}
	base := orig.Clone()
	if err := Forward4D(base, spec); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		spec.Workers = workers
		got := orig.Clone()
		if err := Forward4D(got, spec); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		windowsBitIdentical(t, "forward4d workers", got, base)

		if err := Inverse4D(got, spec); err != nil {
			t.Fatalf("inverse workers=%d: %v", workers, err)
		}
		specSerial := spec
		specSerial.Workers = 1
		back := base.Clone()
		if err := Inverse4D(back, specSerial); err != nil {
			t.Fatal(err)
		}
		windowsBitIdentical(t, "inverse4d workers", got, back)
	}
}

// TestTemporalDegenerateWindows checks 0- and 1-slice windows and level-0
// transforms are no-ops on both paths.
func TestTemporalDegenerateWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	w := randomWindow(rng, d, 1)
	orig := w.Clone()
	if err := ForwardTemporal(w, wavelet.CDF97, 0, 4); err != nil {
		t.Fatal(err)
	}
	windowsBitIdentical(t, "1-slice window", w, orig)

	empty := grid.NewWindow(d)
	if err := ForwardTemporal(empty, wavelet.CDF97, 0, 4); err != nil {
		t.Fatalf("empty window: %v", err)
	}
}

package transform

import (
	"context"
	"fmt"
	"time"

	"stwave/internal/grid"
	"stwave/internal/num"
	"stwave/internal/obs"
	"stwave/internal/par"
	"stwave/internal/scratch"
	"stwave/internal/wavelet"
)

// temporalLanes is the tile width (in grid points) of the blocked
// temporal pass: each tile transposes the time series of temporalLanes
// neighbouring grid points into a contiguous (T × lanes) slab — one bulk
// copy per slice instead of one strided load per point per slice — and
// transforms all of them per gather with the blocked lifting kernel.
const temporalLanes = 128

// LevelsTemporal returns the Equation 2 level budget for a temporal window
// of T slices under kernel k. With window 10, CDF 9/7 permits 1 level and
// CDF 5/3 permits 2, as the paper discusses in Section IV-B.
func LevelsTemporal(k wavelet.Kernel, windowSize int) int {
	return wavelet.MaxLevels(k, windowSize)
}

// ForwardTemporal applies a multi-level 1D wavelet transform along the time
// axis at every grid point of the window, in place. levels must not exceed
// LevelsTemporal(k, w.Len()).
func ForwardTemporal[F num.Float](w *grid.WindowOf[F], k wavelet.Kernel, levels, workers int) error {
	return temporalPass(w, k, levels, workers, false)
}

// InverseTemporal undoes ForwardTemporal.
func InverseTemporal[F num.Float](w *grid.WindowOf[F], k wavelet.Kernel, levels, workers int) error {
	return temporalPass(w, k, levels, workers, true)
}

// temporalLens returns the per-point pyramid lengths (identical for all
// grid points) of a levels-deep temporal transform over t slices.
func temporalLens(t, levels int) []int {
	lens := make([]int, 0, levels)
	n := t
	for l := 0; l < levels && n >= 2; l++ {
		lens = append(lens, n)
		n = (n + 1) / 2
	}
	return lens
}

func temporalPass[F num.Float](w *grid.WindowOf[F], k wavelet.Kernel, levels, workers int, inverse bool) error {
	t := w.Len()
	if levels < 0 {
		return fmt.Errorf("transform: negative temporal level count %d", levels)
	}
	if max := LevelsTemporal(k, t); levels > max {
		return fmt.Errorf("transform: %d temporal levels exceeds maximum %d for kernel %v with window %d", levels, max, k, t)
	}
	if levels == 0 || t < 2 {
		return nil
	}
	points := w.Dims.Len()
	lens := temporalLens(t, levels)
	tiles := (points + temporalLanes - 1) / temporalLanes
	if workers <= 1 {
		temporalRange(w, k, lens, t, points, 0, tiles, inverse)
		return nil
	}
	par.For(tiles, workers, 1, func(start, end int) {
		temporalRange(w, k, lens, t, points, start, end, inverse)
	})
	return nil
}

func temporalRange[F num.Float](w *grid.WindowOf[F], k wavelet.Kernel, lens []int, t, points, start, end int, inverse bool) {
	slab := scratch.FloatsOf[F](t * temporalLanes)
	scr := scratch.FloatsOf[F](t * temporalLanes)
	for tile := start; tile < end; tile++ {
		p0 := tile * temporalLanes
		lanes := points - p0
		if lanes > temporalLanes {
			lanes = temporalLanes
		}
		for ti := 0; ti < t; ti++ {
			copy(slab[ti*lanes:(ti+1)*lanes], w.Slices[ti].Data[p0:p0+lanes])
		}
		// The pyramid ping-pongs between slab and scr so no level pays
		// a full-size pre-copy. Forward: each level lifts the slab
		// prefix into scr; deeper levels only overwrite the shrinking
		// approx prefix, so every level's detail rows survive in scr and
		// the scatter reads scr alone. Inverse: each level reconstructs
		// into scr and copies back so the next (longer) level sees
		// [approx | detail] contiguous in slab; the copy is skipped for
		// the outermost level, which scatters straight from scr.
		if inverse {
			for i := len(lens) - 1; i >= 0; i-- {
				wavelet.InverseStepBlockTo(k, slab, scr, lens[i], lanes)
				if i > 0 {
					copy(slab[:lens[i]*lanes], scr[:lens[i]*lanes])
				}
			}
		} else {
			for li, ln := range lens {
				wavelet.ForwardStepBlockTo(k, slab, scr, ln, lanes)
				if li+1 < len(lens) {
					copy(slab[:lens[li+1]*lanes], scr[:lens[li+1]*lanes])
				}
			}
		}
		for ti := 0; ti < t; ti++ {
			copy(w.Slices[ti].Data[p0:p0+lanes], scr[ti*lanes:(ti+1)*lanes])
		}
	}
	scratch.PutFloatsOf(scr)
	scratch.PutFloatsOf(slab)
}

// Spec describes a full spatiotemporal transform configuration.
type Spec struct {
	// SpatialKernel and SpatialLevels configure the per-slice 3D step.
	// SpatialLevels < 0 means "maximum allowed by Equation 2".
	SpatialKernel wavelet.Kernel
	SpatialLevels int
	// TemporalKernel and TemporalLevels configure the in-time step.
	// TemporalLevels < 0 means "maximum allowed by Equation 2".
	// TemporalLevels == 0 disables the temporal step (pure 3D transform).
	TemporalKernel wavelet.Kernel
	TemporalLevels int
	// Workers bounds parallelism; < 1 uses all CPUs. The 4D entry points
	// own the budget: it is resolved once and split between window-level
	// slice parallelism and the per-slice passes, never both in full.
	Workers int
}

// resolve fills in the "maximum" placeholders for a concrete window.
func (s Spec) resolve(d grid.Dims, windowLen int) (spatial, temporal int) {
	spatial = s.SpatialLevels
	if spatial < 0 {
		spatial = Levels3D(s.SpatialKernel, d)
	}
	temporal = s.TemporalLevels
	if temporal < 0 {
		temporal = LevelsTemporal(s.TemporalKernel, windowLen)
	}
	return spatial, temporal
}

// stageDone records one per-window transform-stage timing into the
// process-wide registry, keyed by stage and kernel — the split Table I
// style cost studies need ("transform.forward_3d_seconds.cdf97", ...).
func stageDone(stage string, k wavelet.Kernel, start time.Time) {
	obs.Default().Histogram("transform." + stage + "_seconds." + k.Slug()).ObserveSince(start)
}

// Forward4D runs the paper's two-step spatiotemporal transform on the window
// in place: first the 3D non-standard decomposition on every slice, then the
// temporal transform at every grid point.
func Forward4D[F num.Float](w *grid.WindowOf[F], s Spec) error {
	return Forward4DCtx(context.Background(), w, s)
}

// Forward4DCtx is Forward4D with context propagation for tracing spans:
// each stage (per-slice 3D, then temporal) records a span under any trace
// carried by ctx and a per-window duration in the metrics registry. The
// 3D stage parallelizes across slices, handing each slice the inner share
// of the worker budget (par.Split), so the machine is never oversubscribed.
func Forward4DCtx[F num.Float](ctx context.Context, w *grid.WindowOf[F], s Spec) error {
	spatial, temporal := s.resolve(w.Dims, w.Len())
	_, sp3 := obs.Start(ctx, "xform.forward_3d")
	sp3.SetAttr("kernel", s.SpatialKernel.String())
	start := time.Now()
	err := forEachSlice(w.Slices, s.Workers, func(i int, f *grid.Field3DOf[F], inner int) error {
		if err := Forward3D(f, s.SpatialKernel, spatial, inner); err != nil {
			return fmt.Errorf("transform: slice %d: %w", i, err)
		}
		return nil
	})
	sp3.End()
	if err != nil {
		return err
	}
	stageDone("forward_3d", s.SpatialKernel, start)

	_, spT := obs.Start(ctx, "xform.forward_temporal")
	spT.SetAttr("kernel", s.TemporalKernel.String())
	start = time.Now()
	err = ForwardTemporal(w, s.TemporalKernel, temporal, s.Workers)
	if err == nil {
		stageDone("forward_temporal", s.TemporalKernel, start)
	}
	spT.End()
	return err
}

// Inverse4D undoes Forward4D: temporal inverse first, then per-slice 3D
// inverse — the order the paper notes costs random access to single slices.
func Inverse4D[F num.Float](w *grid.WindowOf[F], s Spec) error {
	return Inverse4DCtx(context.Background(), w, s)
}

// Inverse4DCtx is Inverse4D with context propagation for tracing spans
// and per-stage registry timings, mirroring Forward4DCtx (including its
// slice-parallel 3D stage and worker-budget split).
func Inverse4DCtx[F num.Float](ctx context.Context, w *grid.WindowOf[F], s Spec) error {
	spatial, temporal := s.resolve(w.Dims, w.Len())
	_, spT := obs.Start(ctx, "xform.inverse_temporal")
	spT.SetAttr("kernel", s.TemporalKernel.String())
	start := time.Now()
	if err := InverseTemporal(w, s.TemporalKernel, temporal, s.Workers); err != nil {
		spT.End()
		return err
	}
	stageDone("inverse_temporal", s.TemporalKernel, start)
	spT.End()

	_, sp3 := obs.Start(ctx, "xform.inverse_3d")
	sp3.SetAttr("kernel", s.SpatialKernel.String())
	start = time.Now()
	err := forEachSlice(w.Slices, s.Workers, func(i int, f *grid.Field3DOf[F], inner int) error {
		if err := Inverse3D(f, s.SpatialKernel, spatial, inner); err != nil {
			return fmt.Errorf("transform: slice %d: %w", i, err)
		}
		return nil
	})
	sp3.End()
	if err != nil {
		return err
	}
	stageDone("inverse_3d", s.SpatialKernel, start)
	return nil
}

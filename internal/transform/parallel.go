// Package transform implements the multi-dimensional wavelet transforms of
// the paper's Section IV-A: the 3D "non-standard decomposition" applied per
// time slice (one pass along X, then Y, then Z per level, repeated on the
// shrinking approximation cube), and the temporal 1D transform applied at
// every grid point of a time window. Line-level work is distributed across
// a worker pool.
package transform

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values < 1 mean "use all CPUs".
func Workers(requested int) int {
	if requested >= 1 {
		return requested
	}
	return runtime.NumCPU()
}

// parallelFor splits [0, n) into contiguous chunks and runs fn(start, end)
// on each from a pool of `workers` goroutines. fn is called sequentially
// when workers <= 1 or n is small.
func parallelFor(n, workers int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 || n < 64 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// Package transform implements the multi-dimensional wavelet transforms of
// the paper's Section IV-A: the 3D "non-standard decomposition" applied per
// time slice (one pass along X, then Y, then Z per level, repeated on the
// shrinking approximation cube), and the temporal 1D transform applied at
// every grid point of a time window.
//
// Parallelism follows a single-owner worker-budget model (see DESIGN.md):
// the 4D entry points resolve Spec.Workers exactly once and split the
// budget between window-level slice parallelism and the per-slice passes
// via par.Split, so nested loops can never oversubscribe the machine. The
// per-axis passes and the temporal step are cache-blocked: tiles of
// neighbouring lines (or grid-point time series) are transposed into a
// contiguous scratch slab and transformed together by the blocked lifting
// kernels in internal/wavelet.
package transform

import (
	"stwave/internal/grid"
	"stwave/internal/num"
	"stwave/internal/par"
)

// Workers resolves a requested worker count: values < 1 mean "use all CPUs".
func Workers(requested int) int {
	return par.Workers(requested)
}

// forEachSlice runs fn over every slice of the window, splitting the
// worker budget once: outer workers cooperate on slices and each call
// receives the inner per-slice budget. With a single outer worker the
// loop degenerates to a plain sequential walk with early error return and
// no goroutines or bookkeeping allocations.
func forEachSlice[F num.Float](slices []*grid.Field3DOf[F], budget int, fn func(i int, f *grid.Field3DOf[F], inner int) error) error {
	outer, inner := par.Split(budget, len(slices))
	if outer <= 1 {
		for i, f := range slices {
			if err := fn(i, f, inner); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(slices))
	par.For(len(slices), outer, 1, func(start, end int) {
		for i := start; i < end; i++ {
			errs[i] = fn(i, slices[i], inner)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

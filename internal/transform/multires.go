package transform

import (
	"fmt"
	"math"

	"stwave/internal/grid"
	"stwave/internal/num"
	"stwave/internal/wavelet"
)

// CoarseDims returns the grid extents of the approximation cube after
// `levels` levels of the non-standard decomposition.
func CoarseDims(d grid.Dims, levels int) grid.Dims {
	for l := 0; l < levels; l++ {
		d = grid.Dims{Nx: half(d.Nx), Ny: half(d.Ny), Nz: half(d.Nz)}
	}
	return d
}

// CoarseApproximation computes a reduced-resolution version of the field by
// running `levels` levels of the forward 3D transform and extracting the
// approximation cube, rescaled back to physical sample values (each level
// multiplies the approximation band by sqrt(2) per axis). This is the
// multiresolution access mode wavelet-compressed visualization systems
// (VAPOR, and the multiresolution framework of Wang et al. the paper cites)
// expose for previews: a level-L preview has 1/8^L the samples.
//
// f is not modified.
func CoarseApproximation[F num.Float](f *grid.Field3DOf[F], k wavelet.Kernel, levels, workers int) (*grid.Field3DOf[F], error) {
	if levels < 0 {
		return nil, fmt.Errorf("transform: negative level count %d", levels)
	}
	if max := Levels3D(k, f.Dims); levels > max {
		return nil, fmt.Errorf("transform: %d levels exceeds maximum %d for %v on %v", levels, max, k, f.Dims)
	}
	work := f.Clone()
	if err := Forward3D(work, k, levels, workers); err != nil {
		return nil, err
	}
	cd := CoarseDims(f.Dims, levels)
	out := grid.NewField3DOf[F](cd.Nx, cd.Ny, cd.Nz)
	// Undo the per-level sqrt(2)^3 amplitude gain of the approximation band.
	scale := math.Pow(math.Sqrt2, -3*float64(levels))
	for z := 0; z < cd.Nz; z++ {
		for y := 0; y < cd.Ny; y++ {
			srcBase := (z*f.Dims.Ny + y) * f.Dims.Nx
			dstBase := (z*cd.Ny + y) * cd.Nx
			for x := 0; x < cd.Nx; x++ {
				out.Data[dstBase+x] = work.Data[srcBase+x] * F(scale)
			}
		}
	}
	return out, nil
}

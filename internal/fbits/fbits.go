// Package fbits provides exact-bit floating-point comparisons for the
// places where the pipeline's contract really is bitwise: coefficient
// thresholding ties, configured-ratio lookups, and reconstruction checks.
// The stlint floateq analyzer rejects raw == / != on floats because a
// careless exact compare silently diverges after a lossy round-trip;
// routing the deliberate ones through this package makes the intent
// visible and the semantics explicit.
//
// All three predicates are defined on IEEE-754 bit patterns, never on
// float comparisons, so the package itself contains no operation the
// analyzer would flag.
package fbits

import "math"

const (
	expMask  = 0x7ff << 52
	signMask = 1 << 63
)

// Zero reports whether x is exactly zero of either sign. It is the
// bit-level equivalent of x == 0: true for +0 and -0, false for
// everything else including subnormals and NaN.
func Zero(x float64) bool {
	return math.Float64bits(x)&^signMask == 0
}

// Same reports whether a and b carry identical bit patterns. This is
// stricter than ==: Same(NaN, NaN) is true for identical NaN payloads,
// and Same(+0, -0) is false. Use it when "the bytes round-tripped"
// is the property under test.
func Same(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Eq reports whether a == b under IEEE-754 rules, implemented with bit
// tests: the two zeros equal each other, NaN equals nothing, and any
// other pair is equal exactly when bit-identical. Use it where exact
// equality is the contract — matching a configured compression ratio,
// detecting a threshold tie — so the comparison is visibly deliberate.
func Eq(a, b float64) bool {
	ba, bb := math.Float64bits(a), math.Float64bits(b)
	if ba&^signMask == 0 && bb&^signMask == 0 {
		return true
	}
	return ba == bb && !isNaNBits(ba)
}

// isNaNBits reports whether the bit pattern encodes a NaN: all-ones
// exponent with a non-zero mantissa.
func isNaNBits(b uint64) bool {
	return b&expMask == expMask && b&(1<<52-1) != 0
}

// Single-precision variants for the float32 fast path. Semantics mirror
// the float64 predicates exactly, defined on float32 bit patterns.

const (
	expMask32  = 0xff << 23
	signMask32 = 1 << 31
)

// Zero32 reports whether x is exactly zero of either sign.
func Zero32(x float32) bool {
	return math.Float32bits(x)&^uint32(signMask32) == 0
}

// Same32 reports whether a and b carry identical bit patterns.
func Same32(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b)
}

// Eq32 reports whether a == b under IEEE-754 rules, implemented with bit
// tests exactly like Eq.
func Eq32(a, b float32) bool {
	ba, bb := math.Float32bits(a), math.Float32bits(b)
	if ba&^uint32(signMask32) == 0 && bb&^uint32(signMask32) == 0 {
		return true
	}
	return ba == bb && !isNaNBits32(ba)
}

// isNaNBits32 reports whether the bit pattern encodes a float32 NaN.
func isNaNBits32(b uint32) bool {
	return b&expMask32 == expMask32 && b&(1<<23-1) != 0
}

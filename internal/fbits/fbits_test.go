package fbits

import (
	"math"
	"testing"
)

var (
	nan    = math.NaN()
	inf    = math.Inf(1)
	negInf = math.Inf(-1)
	neg0   = math.Copysign(0, -1)
	sub    = math.SmallestNonzeroFloat64
)

func TestZero(t *testing.T) {
	cases := []struct {
		x    float64
		want bool
	}{
		{0, true},
		{neg0, true},
		{sub, false},
		{-sub, false},
		{1, false},
		{inf, false},
		{negInf, false},
		{nan, false},
	}
	for _, tc := range cases {
		if got := Zero(tc.x); got != tc.want {
			t.Errorf("Zero(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestEqMatchesIEEE(t *testing.T) {
	vals := []float64{0, neg0, sub, -sub, 1, -1, math.Pi, inf, negInf, nan, math.MaxFloat64}
	for _, a := range vals {
		for _, b := range vals {
			want := a == b //stlint:ignore floateq the reference semantics under test
			if got := Eq(a, b); got != want {
				t.Errorf("Eq(%v, %v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestSame(t *testing.T) {
	if !Same(nan, nan) {
		t.Error("Same(NaN, NaN) = false, want true for identical payloads")
	}
	if Same(0, neg0) {
		t.Error("Same(+0, -0) = true, want false")
	}
	if !Same(math.Pi, math.Pi) {
		t.Error("Same(Pi, Pi) = false, want true")
	}
	if Same(1, 2) {
		t.Error("Same(1, 2) = true, want false")
	}
}

package compress

// Property tests pinning the parallel selection and coding paths to the
// serial reference implementations, bit for bit: ThresholdSlices against
// thresholdSerial (the original quickselect code, kept in threshold.go),
// and NewSparseBlockP/DecodeIntoP against the obvious append-growth
// encoder. Run under -race by `make check` to also prove the chunked
// passes are data-race free.

import (
	"math"
	"math/rand"
	"testing"

	"stwave/internal/fbits"
)

// refSparseBlock is the original append-growth encoder.
func refSparseBlock(coeffs []float64) *SparseBlock {
	n := len(coeffs)
	b := &SparseBlock{
		Total:  n,
		Bitmap: make([]byte, (n+7)/8),
	}
	for i, v := range coeffs {
		if !fbits.Zero(v) {
			b.Bitmap[i>>3] |= 1 << uint(i&7)
			b.Values = append(b.Values, float32(v))
		}
	}
	return b
}

// tieHeavy returns a coefficient set dominated by a handful of repeated
// magnitudes, the adversarial case for deterministic tie admission.
func tieHeavy(rng *rand.Rand, n int) []float64 {
	vals := []float64{0, 1.5, -1.5, 2.25, -2.25, 1e-300, -1e-300}
	out := make([]float64, n)
	for i := range out {
		out[i] = vals[rng.Intn(len(vals))]
	}
	return out
}

func mixed(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch rng.Intn(10) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = math.Copysign(1e-308, rng.NormFloat64()) // subnormal-adjacent
		default:
			out[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
		}
	}
	return out
}

func sliceBitIdentical(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: index %d: got %v, want %v (bit mismatch)", label, i, got[i], want[i])
		}
	}
}

// TestThresholdMatchesSerial pins the radix-select Threshold to the
// quickselect reference across sizes, keeps, distributions, and worker
// counts. The concatenated multi-slice form must equal the reference run
// on the materialized concatenation.
func TestThresholdMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gens := map[string]func(*rand.Rand, int) []float64{
		"mixed":    mixed,
		"tieheavy": tieHeavy,
		"constant": func(_ *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = 3.25
			}
			return out
		},
	}
	sizes := []int{1, 2, 7, 100, 1000, 70000} // 70000 spans three chunks
	for name, gen := range gens {
		for _, n := range sizes {
			data := gen(rng, n)
			for _, keep := range []int{0, 1, n / 3, n - 1, n, n + 5} {
				if keep < 0 {
					continue
				}
				for _, workers := range []int{1, 4} {
					want := append([]float64(nil), data...)
					wantKept := thresholdSerial(want, keep)
					got := append([]float64(nil), data...)
					gotKept := ThresholdSlices([][]float64{got}, keep, workers)
					if gotKept != wantKept {
						t.Fatalf("%s n=%d keep=%d workers=%d: kept %d, want %d", name, n, keep, workers, gotKept, wantKept)
					}
					sliceBitIdentical(t, name, got, want)
				}
			}
		}
	}
}

// TestThresholdSlicesJoint pins the multi-slice form against thresholding
// the materialized concatenation, the contract core's joint 4D budget
// relies on — including windows of 1, 10, 20, and 40 slices.
func TestThresholdSlicesJoint(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const per = 500
	for _, nslices := range []int{1, 10, 20, 40} {
		slices := make([][]float64, nslices)
		var all []float64
		for i := range slices {
			slices[i] = tieHeavy(rng, per)
			all = append(all, slices[i]...)
		}
		keep := nslices * per / 4
		wantKept := thresholdSerial(all, keep)
		gotKept := ThresholdSlices(slices, keep, 4)
		if gotKept != wantKept {
			t.Fatalf("%d slices: kept %d, want %d", nslices, gotKept, wantKept)
		}
		off := 0
		for i, s := range slices {
			sliceBitIdentical(t, "slice", s, all[off:off+len(s)])
			off += len(s)
			_ = i
		}
	}
}

// TestCutoffMagnitudeMatchesSerial pins the histogram-based cutoff against
// the quickselect reference and checks coeffs are untouched.
func TestCutoffMagnitudeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 5, 333, 40000} {
		data := mixed(rng, n)
		orig := append([]float64(nil), data...)
		for _, keep := range []int{1, n / 2, n - 1} {
			if keep < 1 {
				continue
			}
			mags := make([]float64, n)
			for i, v := range data {
				mags[i] = math.Abs(v)
			}
			var want float64
			if keep >= n {
				want = 0
			} else {
				want = selectKth(mags, keep-1)
			}
			got := CutoffMagnitude(data, keep)
			if keep < n && math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d keep=%d: cutoff %v, want %v", n, keep, got, want)
			}
		}
		sliceBitIdentical(t, "input untouched", data, orig)
	}
}

// TestSparseBlockMatchesSerial pins the counted two-pass encoder and the
// chunked decoder to the append-growth reference across sizes that cover
// empty, sub-chunk, chunk-boundary, and multi-chunk blocks.
func TestSparseBlockMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	sizes := []int{0, 1, 9, sparseChunk - 1, sparseChunk, sparseChunk + 1, 3*sparseChunk + 17}
	for _, n := range sizes {
		data := tieHeavy(rng, n)
		want := refSparseBlock(data)
		for _, workers := range []int{1, 4} {
			got := NewSparseBlockP(data, workers)
			if got.Total != want.Total {
				t.Fatalf("n=%d: total %d != %d", n, got.Total, want.Total)
			}
			if len(got.Bitmap) != len(want.Bitmap) {
				t.Fatalf("n=%d: bitmap len %d != %d", n, len(got.Bitmap), len(want.Bitmap))
			}
			for i := range want.Bitmap {
				if got.Bitmap[i] != want.Bitmap[i] {
					t.Fatalf("n=%d workers=%d: bitmap byte %d: %02x != %02x", n, workers, i, got.Bitmap[i], want.Bitmap[i])
				}
			}
			if len(got.Values) != len(want.Values) {
				t.Fatalf("n=%d: values len %d != %d", n, len(got.Values), len(want.Values))
			}
			for i := range want.Values {
				if math.Float32bits(got.Values[i]) != math.Float32bits(want.Values[i]) {
					t.Fatalf("n=%d workers=%d: value %d: %v != %v", n, workers, i, got.Values[i], want.Values[i])
				}
			}

			out := make([]float64, n)
			if err := got.DecodeIntoP(out, workers); err != nil {
				t.Fatalf("n=%d: DecodeIntoP: %v", n, err)
			}
			ref := want.Decode()
			sliceBitIdentical(t, "decode", out, ref)
		}
	}
}

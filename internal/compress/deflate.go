package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// Entropy stage: the paper's accounting stops at "retained coefficients x 4
// bytes" and cites SPECK/SPIHT/EBCOT for real coding. The cheapest honest
// improvement available from the standard library is DEFLATE over the
// sparse block bytes — the significance bitmap is highly compressible (long
// zero runs at high ratios) and float32 mantissa bytes less so. These
// helpers let the harness report a third size column: ideal, raw-encoded,
// and deflated.

// WriteDeflated serializes the block through DEFLATE, framed with the
// compressed byte length so multiple blocks can share one stream. Returns
// the total bytes written (8-byte frame header + compressed payload).
func (b *SparseBlock) WriteDeflated(w io.Writer) (int64, error) {
	var raw bytes.Buffer
	if _, err := b.WriteTo(&raw); err != nil {
		return 0, err
	}
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestCompression)
	if err != nil {
		return 0, err
	}
	if _, err := fw.Write(raw.Bytes()); err != nil {
		return 0, err
	}
	if err := fw.Close(); err != nil {
		return 0, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(comp.Len())) //stlint:ignore trunccast bytes.Buffer.Len is non-negative by construction
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(comp.Bytes())
	return 8 + int64(n), err
}

// ReadDeflatedSparseBlock reads one framed DEFLATE block written by
// WriteDeflated. It consumes exactly the frame's bytes from r.
func ReadDeflatedSparseBlock(r io.Reader) (*SparseBlock, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("compress: reading deflate frame header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > 1<<40 {
		return nil, fmt.Errorf("compress: implausible deflate frame size %d", n)
	}
	comp := make([]byte, n)
	if _, err := io.ReadFull(r, comp); err != nil {
		return nil, fmt.Errorf("compress: reading deflate frame: %w", err)
	}
	fr := flate.NewReader(bytes.NewReader(comp))
	defer fr.Close()
	raw, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("compress: inflating block: %w", err)
	}
	return ReadSparseBlock(bytes.NewReader(raw))
}

// DeflatedSizeBytes returns the framed DEFLATE size of the block without
// keeping the bytes.
func (b *SparseBlock) DeflatedSizeBytes() (int64, error) {
	var counter countingWriter
	return b.WriteDeflated(&counter)
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

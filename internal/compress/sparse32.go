package compress

import (
	"fmt"

	"stwave/internal/fbits"
	"stwave/internal/par"
	"stwave/internal/scratch"
)

// float32 encode/decode paths for SparseBlock. The on-disk layout already
// stores values as float32, so the single-precision pipeline needs no
// format change at all — only entry points that move coefficients between
// []float32 slabs and the block without a float64 intermediary. Structure
// and determinism mirror the float64 paths in sparse.go exactly.

// NewSparseBlock32P encodes a thresholded float32 coefficient slice on up
// to workers goroutines; output is identical for every worker count.
func NewSparseBlock32P(coeffs []float32, workers int) *SparseBlock {
	n := len(coeffs)
	b := &SparseBlock{
		Total:  n,
		Bitmap: make([]byte, (n+7)/8),
	}
	if n == 0 {
		return b
	}
	nch := (n + sparseChunk - 1) / sparseChunk
	counts := scratch.Uint64s(nch)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			lo, hi := ci*sparseChunk, (ci+1)*sparseChunk
			if hi > n {
				hi = n
			}
			c := 0
			for _, v := range coeffs[lo:hi] {
				if !fbits.Zero32(v) {
					c++
				}
			}
			counts[ci] = uint64(c) //stlint:ignore trunccast c is a non-negative element count
		}
	})
	k := 0
	for ci := range counts {
		c := int(counts[ci])   //stlint:ignore trunccast counts holds per-chunk tallies bounded by len(coeffs)
		counts[ci] = uint64(k) //stlint:ignore trunccast k is a running non-negative prefix sum
		k += c
	}
	if k == 0 {
		scratch.PutUint64s(counts)
		return b
	}
	b.Values = make([]float32, k)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			lo, hi := ci*sparseChunk, (ci+1)*sparseChunk
			if hi > n {
				hi = n
			}
			vi := int(counts[ci]) //stlint:ignore trunccast counts now holds prefix offsets bounded by len(b.Values)
			for i := lo; i < hi; i++ {
				v := coeffs[i]
				if !fbits.Zero32(v) {
					b.Bitmap[i>>3] |= 1 << uint(i&7)
					b.Values[vi] = v
					vi++
				}
			}
		}
	})
	scratch.PutUint64s(counts)
	return b
}

// EncodeBlocks32 encodes one block per float32 coefficient slice with all
// blocks, bitmaps, and value arrays carved from three shared allocations —
// the single-precision twin of EncodeBlocks.
func EncodeBlocks32(datas [][]float32, workers int) []*SparseBlock {
	nb := len(datas)
	blocks := make([]*SparseBlock, nb)
	if nb == 0 {
		return blocks
	}
	arr := make([]SparseBlock, nb)
	counts := scratch.Uint64s(nb)
	par.For(nb, workers, 1, func(start, end int) {
		for bi := start; bi < end; bi++ {
			k := 0
			for _, v := range datas[bi] {
				if !fbits.Zero32(v) {
					k++
				}
			}
			counts[bi] = uint64(k) //stlint:ignore trunccast k is a non-negative element count
		}
	})
	totalBits, totalVals := 0, 0
	for bi, d := range datas {
		totalBits += (len(d) + 7) / 8
		totalVals += int(counts[bi]) //stlint:ignore trunccast counts holds per-slice tallies bounded by len(datas[bi])
	}
	bitmapSlab := make([]byte, totalBits)
	valueSlab := make([]float32, totalVals)
	bo, vo := 0, 0
	for bi, d := range datas {
		bn, vn := (len(d)+7)/8, int(counts[bi]) //stlint:ignore trunccast counts holds per-slice tallies bounded by len(d)
		arr[bi] = SparseBlock{
			Total:  len(d),
			Bitmap: bitmapSlab[bo : bo+bn : bo+bn],
		}
		if vn > 0 {
			arr[bi].Values = valueSlab[vo : vo+vn : vo+vn]
		}
		blocks[bi] = &arr[bi]
		bo += bn
		vo += vn
	}
	par.For(nb, workers, 1, func(start, end int) {
		for bi := start; bi < end; bi++ {
			b := blocks[bi]
			vi := 0
			for i, v := range datas[bi] {
				if !fbits.Zero32(v) {
					b.Bitmap[i>>3] |= 1 << uint(i&7)
					b.Values[vi] = v
					vi++
				}
			}
		}
	})
	scratch.PutUint64s(counts)
	return blocks
}

// DecodeInto32 expands the block into a caller-provided float32 slice of
// length Total, bit-for-bit the stored values — no widen/narrow round
// trip.
func (b *SparseBlock) DecodeInto32(out []float32) error {
	return b.DecodeInto32P(out, 1)
}

// DecodeInto32P is DecodeInto32 on up to workers goroutines; output is
// identical for every worker count.
func (b *SparseBlock) DecodeInto32P(out []float32, workers int) error {
	if len(out) != b.Total {
		return fmt.Errorf("compress: DecodeInto32P length %d != total %d", len(out), b.Total)
	}
	n := b.Total
	if n == 0 {
		return nil
	}
	nch := (n + sparseChunk - 1) / sparseChunk
	counts := scratch.Uint64s(nch)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			lo, hi := ci*sparseChunk, (ci+1)*sparseChunk
			if hi > n {
				hi = n
			}
			pop := 0
			for _, byteV := range b.Bitmap[lo>>3 : (hi+7)>>3] {
				pop += popcount(byteV)
			}
			counts[ci] = uint64(pop) //stlint:ignore trunccast pop is a non-negative popcount
		}
	})
	vi := 0
	for ci := range counts {
		c := int(counts[ci])    //stlint:ignore trunccast counts holds per-chunk popcounts bounded by b.Total
		counts[ci] = uint64(vi) //stlint:ignore trunccast vi is a running non-negative prefix sum
		vi += c
	}
	if vi > len(b.Values) {
		scratch.PutUint64s(counts)
		return fmt.Errorf("compress: bitmap popcount %d exceeds %d stored values", vi, len(b.Values))
	}
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			lo, hi := ci*sparseChunk, (ci+1)*sparseChunk
			if hi > n {
				hi = n
			}
			vi := int(counts[ci]) //stlint:ignore trunccast counts now holds prefix offsets, checked against len(b.Values) above
			for i := lo; i < hi; i++ {
				if b.Bitmap[i>>3]&(1<<uint(i&7)) != 0 {
					out[i] = b.Values[vi]
					vi++
				} else {
					out[i] = 0
				}
			}
		}
	})
	scratch.PutUint64s(counts)
	return nil
}

package compress

import (
	"math"
	"sync"

	"stwave/internal/par"
	"stwave/internal/scratch"
)

// This file is the float32 mirror of threshold.go — the selection that
// keeps the single-precision pipeline single-precision. The histogram and
// the cut are keyed directly on float32 IEEE bit patterns: clearing the
// sign bit of a non-NaN float32 leaves a uint32 whose unsigned order
// matches the magnitude order, and shifting that key into the high half
// of a uint64 lets the bucket walk, quickselect, and tie rules reuse the
// float64 machinery (histShift, selectKthU64Desc) unchanged. Chunking,
// tie admission in index order, and the worker-count invariance argument
// are identical to the float64 implementation; the two files must be
// changed together.

// sign32Mask clears to produce the float32 magnitude key.
const sign32Mask = 1 << 31

// magKey32 is the sortable magnitude key of v: the float32 bit pattern
// with the sign cleared, widened into the top half of a uint64 so bucket
// indices and comparisons behave exactly like float64 keys.
func magKey32(v float32) uint64 {
	return uint64(math.Float32bits(v)&^uint32(sign32Mask)) << 32
}

func buildChunks32(slices [][]float32) (chunks []thChunk, total int) {
	n := 0
	for _, s := range slices {
		n += (len(s) + thresholdChunk - 1) / thresholdChunk
	}
	chunks = make([]thChunk, 0, n)
	for si, s := range slices {
		for lo := 0; lo < len(s); lo += thresholdChunk {
			hi := lo + thresholdChunk
			if hi > len(s) {
				hi = len(s)
			}
			chunks = append(chunks, thChunk{si: si, lo: lo, hi: hi})
			total += hi - lo
		}
	}
	return chunks, total
}

// cutKeySlices32 finds the magnitude-bit key of the keep-th largest
// magnitude across all slices and returns it together with the number of
// keys strictly greater than it. Requires 0 < keep <= total.
func cutKeySlices32(slices [][]float32, chunks []thChunk, keep, workers int) (cut uint64, greater int) {
	var mu sync.Mutex
	var hist [histSize]int
	par.For(len(chunks), workers, 1, func(start, end int) {
		var local [histSize]int
		for ci := start; ci < end; ci++ {
			ch := chunks[ci]
			for _, v := range slices[ch.si][ch.lo:ch.hi] {
				local[magKey32(v)>>histShift]++
			}
		}
		mu.Lock()
		for i, c := range local {
			if c != 0 {
				hist[i] += c
			}
		}
		mu.Unlock()
	})

	bucket, before := 0, 0
	for b := histSize - 1; b >= 0; b-- {
		if before+hist[b] >= keep {
			bucket = b
			break
		}
		before += hist[b]
	}

	cands := scratch.Uint64s(hist[bucket])
	ci := 0
	for _, s := range slices {
		for _, v := range s {
			if k := magKey32(v); int(k>>histShift) == bucket { //stlint:ignore trunccast the shift keeps 11 bits, far inside int range
				cands[ci] = k
				ci++
			}
		}
	}
	cut = selectKthU64Desc(cands, keep-1-before)
	greater = before
	for _, k := range cands {
		if k > cut {
			greater++
		}
	}
	scratch.PutUint64s(cands)
	return cut, greater
}

// Threshold32 zeroes, in place, all but the keep largest-magnitude entries
// of coeffs and returns the number actually retained. Ties at the cut
// magnitude are resolved in index order, deterministically.
func Threshold32(coeffs []float32, keep int) int {
	return ThresholdSlices32([][]float32{coeffs}, keep, 1)
}

// ThresholdSlices32 is ThresholdSlices at single precision: the keep
// largest magnitudes across all slices survive, ties admitted in global
// index order, output bit-identical for every worker count including 1.
func ThresholdSlices32(slices [][]float32, keep, workers int) int {
	chunks, total := buildChunks32(slices)
	if keep >= total {
		return total
	}
	if keep <= 0 {
		par.For(len(chunks), workers, 1, func(start, end int) {
			for ci := start; ci < end; ci++ {
				ch := chunks[ci]
				data := slices[ch.si][ch.lo:ch.hi]
				for j := range data {
					data[j] = 0
				}
			}
		})
		return 0
	}

	cut, totalGreater := cutKeySlices32(slices, chunks, keep, workers)

	if workers <= 1 {
		budget := keep - totalGreater
		for _, ch := range chunks {
			data := slices[ch.si][ch.lo:ch.hi]
			for j, v := range data {
				k := magKey32(v)
				if k > cut {
					continue
				}
				if k == cut && budget > 0 {
					budget--
					continue
				}
				data[j] = 0
			}
		}
		return keep
	}

	nch := len(chunks)
	ties := scratch.Uint64s(nch)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			ch := chunks[ci]
			t := 0
			for _, v := range slices[ch.si][ch.lo:ch.hi] {
				if magKey32(v) == cut {
					t++
				}
			}
			ties[ci] = uint64(t) //stlint:ignore trunccast t is a non-negative tie count
		}
	})

	budget := keep - totalGreater
	for ci := range ties {
		admit := int(ties[ci]) //stlint:ignore trunccast ties holds per-chunk tallies bounded by the chunk size
		if admit > budget {
			admit = budget
		}
		ties[ci] = uint64(admit)
		budget -= admit
	}

	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			ch := chunks[ci]
			data := slices[ch.si][ch.lo:ch.hi]
			admit := int(ties[ci]) //stlint:ignore trunccast ties holds clamped admit budgets bounded by keep
			for j, v := range data {
				k := magKey32(v)
				if k > cut {
					continue
				}
				if k == cut && admit > 0 {
					admit--
					continue
				}
				data[j] = 0
			}
		}
	})

	scratch.PutUint64s(ties)
	return keep
}

// ThresholdRatio32 discards coefficients so that a ratio:1 compression is
// achieved, returning the retained count.
func ThresholdRatio32(coeffs []float32, ratio float64) (int, error) {
	keep, err := KeepCount(len(coeffs), ratio)
	if err != nil {
		return 0, err
	}
	return Threshold32(coeffs, keep), nil
}

// CutoffMagnitude32 returns the magnitude of the keep-th largest
// coefficient without modifying coeffs.
func CutoffMagnitude32(coeffs []float32, keep int) float32 {
	if keep <= 0 || len(coeffs) == 0 {
		return float32(math.Inf(1)) //stlint:ignore trunccast IEEE +Inf is exactly representable at both widths
	}
	if keep >= len(coeffs) {
		return 0
	}
	slices := [][]float32{coeffs}
	chunks, _ := buildChunks32(slices)
	cut, _ := cutKeySlices32(slices, chunks, keep, 1)
	return math.Float32frombits(uint32(cut >> 32)) //stlint:ignore trunccast the key's low 32 bits are zero by construction
}

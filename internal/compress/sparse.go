package compress

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"stwave/internal/fbits"
	"stwave/internal/par"
	"stwave/internal/scratch"
)

// Sparse on-disk encoding of a thresholded coefficient array. Layout:
//
//	uint64  total coefficient count N
//	uint64  retained coefficient count K
//	ceil(N/8) bytes  significance bitmap (bit i set => coefficient i retained)
//	K * 4 bytes      retained values as little-endian float32, in index order
//
// This makes file sizes honest: a ratio:1 compression of N float32 samples
// costs N/8 + 4K bytes rather than the idealized 4K the paper's accounting
// uses; EncodedSizeBytes exposes both so the harness can report either.

// SparseBlock is the in-memory form of an encoded coefficient set.
type SparseBlock struct {
	Total  int
	Bitmap []byte
	Values []float32
}

// sparseChunk is the per-task granule of the parallel encode and decode
// passes. It is a multiple of 8 so no two chunks ever share a bitmap
// byte, letting chunks write their bitmap regions without coordination.
const sparseChunk = 1 << 15

// NewSparseBlock encodes a (typically thresholded) coefficient slice.
// Zero-valued coefficients are treated as discarded.
func NewSparseBlock(coeffs []float64) *SparseBlock {
	return NewSparseBlockP(coeffs, 1)
}

// NewSparseBlockP is NewSparseBlock on up to workers goroutines: a first
// pass counts survivors per fixed-size chunk, a prefix sum gives every
// chunk its exact Values segment, and a second pass fills bitmap and
// values with no appends and no coordination. Output is identical for
// every worker count.
func NewSparseBlockP(coeffs []float64, workers int) *SparseBlock {
	n := len(coeffs)
	b := &SparseBlock{
		Total:  n,
		Bitmap: make([]byte, (n+7)/8),
	}
	if n == 0 {
		return b
	}
	nch := (n + sparseChunk - 1) / sparseChunk
	counts := scratch.Uint64s(nch)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			lo, hi := ci*sparseChunk, (ci+1)*sparseChunk
			if hi > n {
				hi = n
			}
			c := 0
			for _, v := range coeffs[lo:hi] {
				if !fbits.Zero(v) {
					c++
				}
			}
			counts[ci] = uint64(c) //stlint:ignore trunccast c is a non-negative element count
		}
	})
	k := 0
	for ci := range counts {
		c := int(counts[ci])   //stlint:ignore trunccast counts holds per-chunk tallies bounded by len(coeffs)
		counts[ci] = uint64(k) //stlint:ignore trunccast k is a running non-negative prefix sum
		k += c
	}
	if k == 0 {
		scratch.PutUint64s(counts)
		return b
	}
	b.Values = make([]float32, k)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			lo, hi := ci*sparseChunk, (ci+1)*sparseChunk
			if hi > n {
				hi = n
			}
			vi := int(counts[ci]) //stlint:ignore trunccast counts now holds prefix offsets bounded by len(b.Values)
			for i := lo; i < hi; i++ {
				v := coeffs[i]
				if !fbits.Zero(v) {
					b.Bitmap[i>>3] |= 1 << uint(i&7)
					b.Values[vi] = float32(v) //stlint:ignore trunccast the sparse block stores 32-bit values by format contract (DESIGN section 5)
					vi++
				}
			}
		}
	})
	scratch.PutUint64s(counts)
	return b
}

// Retained returns the number of surviving coefficients.
func (b *SparseBlock) Retained() int { return len(b.Values) }

// EncodeBlocks encodes one block per coefficient slice, identical to
// calling NewSparseBlock on each, but with all blocks, bitmaps, and value
// arrays carved from three shared allocations sized by a parallel count
// pass — the per-window encode path allocates O(1) instead of O(slices).
func EncodeBlocks(datas [][]float64, workers int) []*SparseBlock {
	nb := len(datas)
	blocks := make([]*SparseBlock, nb)
	if nb == 0 {
		return blocks
	}
	arr := make([]SparseBlock, nb)
	counts := scratch.Uint64s(nb)
	par.For(nb, workers, 1, func(start, end int) {
		for bi := start; bi < end; bi++ {
			k := 0
			for _, v := range datas[bi] {
				if !fbits.Zero(v) {
					k++
				}
			}
			counts[bi] = uint64(k) //stlint:ignore trunccast k is a non-negative element count
		}
	})
	totalBits, totalVals := 0, 0
	for bi, d := range datas {
		totalBits += (len(d) + 7) / 8
		totalVals += int(counts[bi]) //stlint:ignore trunccast counts holds per-slice tallies bounded by len(datas[bi])
	}
	bitmapSlab := make([]byte, totalBits)
	valueSlab := make([]float32, totalVals)
	bo, vo := 0, 0
	for bi, d := range datas {
		bn, vn := (len(d)+7)/8, int(counts[bi]) //stlint:ignore trunccast counts holds per-slice tallies bounded by len(d)
		arr[bi] = SparseBlock{
			Total:  len(d),
			Bitmap: bitmapSlab[bo : bo+bn : bo+bn],
		}
		if vn > 0 {
			arr[bi].Values = valueSlab[vo : vo+vn : vo+vn]
		}
		blocks[bi] = &arr[bi]
		bo += bn
		vo += vn
	}
	par.For(nb, workers, 1, func(start, end int) {
		for bi := start; bi < end; bi++ {
			b := blocks[bi]
			vi := 0
			for i, v := range datas[bi] {
				if !fbits.Zero(v) {
					b.Bitmap[i>>3] |= 1 << uint(i&7)
					b.Values[vi] = float32(v) //stlint:ignore trunccast the sparse block stores 32-bit values by format contract (DESIGN section 5)
					vi++
				}
			}
		}
	})
	scratch.PutUint64s(counts)
	return blocks
}

// Decode expands the block back into a dense coefficient slice of length
// Total (discarded coefficients are zero).
func (b *SparseBlock) Decode() []float64 {
	out := make([]float64, b.Total)
	vi := 0
	for i := 0; i < b.Total; i++ {
		if b.Bitmap[i>>3]&(1<<uint(i&7)) != 0 {
			out[i] = float64(b.Values[vi])
			vi++
		}
	}
	return out
}

// DecodeInto is like Decode but fills a caller-provided slice, which must
// have length Total.
func (b *SparseBlock) DecodeInto(out []float64) error {
	return b.DecodeIntoP(out, 1)
}

// DecodeIntoP is DecodeInto on up to workers goroutines: a popcount pass
// over the bitmap gives every chunk its offset into Values, then chunks
// expand independently. Output is identical for every worker count.
func (b *SparseBlock) DecodeIntoP(out []float64, workers int) error {
	if len(out) != b.Total {
		return fmt.Errorf("compress: DecodeIntoP length %d != total %d", len(out), b.Total)
	}
	n := b.Total
	if n == 0 {
		return nil
	}
	nch := (n + sparseChunk - 1) / sparseChunk
	counts := scratch.Uint64s(nch)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			lo, hi := ci*sparseChunk, (ci+1)*sparseChunk
			if hi > n {
				hi = n
			}
			// Chunks are byte-aligned except possibly the final partial
			// byte, which belongs wholly to the last chunk.
			pop := 0
			for _, byteV := range b.Bitmap[lo>>3 : (hi+7)>>3] {
				pop += popcount(byteV)
			}
			counts[ci] = uint64(pop) //stlint:ignore trunccast pop is a non-negative popcount
		}
	})
	vi := 0
	for ci := range counts {
		c := int(counts[ci])    //stlint:ignore trunccast counts holds per-chunk popcounts bounded by b.Total
		counts[ci] = uint64(vi) //stlint:ignore trunccast vi is a running non-negative prefix sum
		vi += c
	}
	if vi > len(b.Values) {
		scratch.PutUint64s(counts)
		return fmt.Errorf("compress: bitmap popcount %d exceeds %d stored values", vi, len(b.Values))
	}
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			lo, hi := ci*sparseChunk, (ci+1)*sparseChunk
			if hi > n {
				hi = n
			}
			vi := int(counts[ci]) //stlint:ignore trunccast counts now holds prefix offsets, checked against len(b.Values) above
			for i := lo; i < hi; i++ {
				if b.Bitmap[i>>3]&(1<<uint(i&7)) != 0 {
					out[i] = float64(b.Values[vi])
					vi++
				} else {
					out[i] = 0
				}
			}
		}
	})
	scratch.PutUint64s(counts)
	return nil
}

// EncodedSizeBytes returns the exact serialized size of the block: header,
// bitmap, and values.
func (b *SparseBlock) EncodedSizeBytes() int64 {
	return 16 + int64(len(b.Bitmap)) + 4*int64(len(b.Values))
}

// IdealSizeBytes returns the paper's idealized accounting: 4 bytes per
// retained coefficient, ignoring significance-map overhead.
func (b *SparseBlock) IdealSizeBytes() int64 { return 4 * int64(len(b.Values)) }

// WriteTo serializes the block. It implements io.WriterTo.
func (b *SparseBlock) WriteTo(w io.Writer) (int64, error) {
	// A hand-built block with a negative Total would frame as an enormous
	// unsigned count and poison every later read; refuse to serialize it.
	if b.Total < 0 {
		return 0, fmt.Errorf("compress: negative block total %d", b.Total)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(b.Total))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(b.Values)))
	var written int64
	n, err := bw.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	n, err = bw.Write(b.Bitmap)
	written += int64(n)
	if err != nil {
		return written, err
	}
	var vb [4]byte
	for _, v := range b.Values {
		binary.LittleEndian.PutUint32(vb[:], math.Float32bits(v))
		n, err = bw.Write(vb[:])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadSparseBlock deserializes a block written by WriteTo. It reads exactly
// EncodedSizeBytes bytes from r — safe to call repeatedly on one stream —
// and deliberately avoids internal buffering for that reason.
func ReadSparseBlock(r io.Reader) (*SparseBlock, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("compress: reading sparse header: %w", err)
	}
	totalU := binary.LittleEndian.Uint64(hdr[0:8])
	kU := binary.LittleEndian.Uint64(hdr[8:16])
	// Validate the raw unsigned fields before narrowing to int: the
	// sanity cap (one block is one 3D field; 2^31 samples is a 1290³
	// grid) also bounds allocation against forged headers. The cap is
	// exclusive so an accepted total fits in int on 32-bit platforms.
	if kU > totalU {
		return nil, fmt.Errorf("compress: corrupt sparse header (total=%d retained=%d)", totalU, kU)
	}
	if totalU >= 1<<31 {
		return nil, fmt.Errorf("compress: implausible block size %d samples", totalU)
	}
	total := int(totalU)
	k := int(kU)
	b := &SparseBlock{
		Total:  total,
		Bitmap: make([]byte, (total+7)/8),
	}
	if _, err := io.ReadFull(r, b.Bitmap); err != nil {
		return nil, fmt.Errorf("compress: reading bitmap: %w", err)
	}
	// Validate population count against k before allocating the values.
	pop := 0
	for _, byteV := range b.Bitmap {
		pop += popcount(byteV)
	}
	if pop != k {
		return nil, fmt.Errorf("compress: bitmap popcount %d != retained count %d", pop, k)
	}
	b.Values = make([]float32, k)
	raw := make([]byte, 4*k)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("compress: reading %d values: %w", k, err)
	}
	for i := range b.Values {
		b.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return b, nil
}

func popcount(b byte) int {
	n := 0
	for b != 0 {
		b &= b - 1
		n++
	}
	return n
}

package compress

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"stwave/internal/fbits"
)

// Sparse on-disk encoding of a thresholded coefficient array. Layout:
//
//	uint64  total coefficient count N
//	uint64  retained coefficient count K
//	ceil(N/8) bytes  significance bitmap (bit i set => coefficient i retained)
//	K * 4 bytes      retained values as little-endian float32, in index order
//
// This makes file sizes honest: a ratio:1 compression of N float32 samples
// costs N/8 + 4K bytes rather than the idealized 4K the paper's accounting
// uses; EncodedSizeBytes exposes both so the harness can report either.

// SparseBlock is the in-memory form of an encoded coefficient set.
type SparseBlock struct {
	Total  int
	Bitmap []byte
	Values []float32
}

// NewSparseBlock encodes a (typically thresholded) coefficient slice.
// Zero-valued coefficients are treated as discarded.
func NewSparseBlock(coeffs []float64) *SparseBlock {
	n := len(coeffs)
	b := &SparseBlock{
		Total:  n,
		Bitmap: make([]byte, (n+7)/8),
	}
	for i, v := range coeffs {
		if !fbits.Zero(v) {
			b.Bitmap[i>>3] |= 1 << uint(i&7)
			b.Values = append(b.Values, float32(v))
		}
	}
	return b
}

// Retained returns the number of surviving coefficients.
func (b *SparseBlock) Retained() int { return len(b.Values) }

// Decode expands the block back into a dense coefficient slice of length
// Total (discarded coefficients are zero).
func (b *SparseBlock) Decode() []float64 {
	out := make([]float64, b.Total)
	vi := 0
	for i := 0; i < b.Total; i++ {
		if b.Bitmap[i>>3]&(1<<uint(i&7)) != 0 {
			out[i] = float64(b.Values[vi])
			vi++
		}
	}
	return out
}

// DecodeInto is like Decode but fills a caller-provided slice, which must
// have length Total.
func (b *SparseBlock) DecodeInto(out []float64) error {
	if len(out) != b.Total {
		return fmt.Errorf("compress: DecodeInto length %d != total %d", len(out), b.Total)
	}
	vi := 0
	for i := 0; i < b.Total; i++ {
		if b.Bitmap[i>>3]&(1<<uint(i&7)) != 0 {
			out[i] = float64(b.Values[vi])
			vi++
		} else {
			out[i] = 0
		}
	}
	return nil
}

// EncodedSizeBytes returns the exact serialized size of the block: header,
// bitmap, and values.
func (b *SparseBlock) EncodedSizeBytes() int64 {
	return 16 + int64(len(b.Bitmap)) + 4*int64(len(b.Values))
}

// IdealSizeBytes returns the paper's idealized accounting: 4 bytes per
// retained coefficient, ignoring significance-map overhead.
func (b *SparseBlock) IdealSizeBytes() int64 { return 4 * int64(len(b.Values)) }

// WriteTo serializes the block. It implements io.WriterTo.
func (b *SparseBlock) WriteTo(w io.Writer) (int64, error) {
	// A hand-built block with a negative Total would frame as an enormous
	// unsigned count and poison every later read; refuse to serialize it.
	if b.Total < 0 {
		return 0, fmt.Errorf("compress: negative block total %d", b.Total)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(b.Total))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(b.Values)))
	var written int64
	n, err := bw.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	n, err = bw.Write(b.Bitmap)
	written += int64(n)
	if err != nil {
		return written, err
	}
	var vb [4]byte
	for _, v := range b.Values {
		binary.LittleEndian.PutUint32(vb[:], math.Float32bits(v))
		n, err = bw.Write(vb[:])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadSparseBlock deserializes a block written by WriteTo. It reads exactly
// EncodedSizeBytes bytes from r — safe to call repeatedly on one stream —
// and deliberately avoids internal buffering for that reason.
func ReadSparseBlock(r io.Reader) (*SparseBlock, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("compress: reading sparse header: %w", err)
	}
	totalU := binary.LittleEndian.Uint64(hdr[0:8])
	kU := binary.LittleEndian.Uint64(hdr[8:16])
	// Validate the raw unsigned fields before narrowing to int: the
	// sanity cap (one block is one 3D field; 2^31 samples is a 1290³
	// grid) also bounds allocation against forged headers.
	if kU > totalU {
		return nil, fmt.Errorf("compress: corrupt sparse header (total=%d retained=%d)", totalU, kU)
	}
	if totalU > 1<<31 {
		return nil, fmt.Errorf("compress: implausible block size %d samples", totalU)
	}
	total := int(totalU)
	k := int(kU)
	b := &SparseBlock{
		Total:  total,
		Bitmap: make([]byte, (total+7)/8),
	}
	if _, err := io.ReadFull(r, b.Bitmap); err != nil {
		return nil, fmt.Errorf("compress: reading bitmap: %w", err)
	}
	// Validate population count against k before allocating the values.
	pop := 0
	for _, byteV := range b.Bitmap {
		pop += popcount(byteV)
	}
	if pop != k {
		return nil, fmt.Errorf("compress: bitmap popcount %d != retained count %d", pop, k)
	}
	b.Values = make([]float32, k)
	raw := make([]byte, 4*k)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("compress: reading %d values: %w", k, err)
	}
	for i := range b.Values {
		b.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return b, nil
}

func popcount(b byte) int {
	n := 0
	for b != 0 {
		b &= b - 1
		n++
	}
	return n
}

package compress

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKeepCount(t *testing.T) {
	cases := []struct {
		total int
		ratio float64
		want  int
	}{
		{100, 1, 100}, {100, 8, 12}, {100, 128, 1}, {1000, 16, 62},
		{0, 8, 0}, {5, 1000, 1},
	}
	for _, c := range cases {
		got, err := KeepCount(c.total, c.ratio)
		if err != nil {
			t.Errorf("KeepCount(%d, %g): %v", c.total, c.ratio, err)
			continue
		}
		if got != c.want {
			t.Errorf("KeepCount(%d, %g) = %d, want %d", c.total, c.ratio, got, c.want)
		}
	}
	if _, err := KeepCount(100, 0.5); err == nil {
		t.Error("expected error for ratio < 1")
	}
}

func TestThresholdKeepsLargest(t *testing.T) {
	coeffs := []float64{1, -9, 3, 0.5, -7, 2, 8, -0.1}
	kept := Threshold(coeffs, 3)
	if kept != 3 {
		t.Fatalf("kept = %d, want 3", kept)
	}
	want := []float64{0, -9, 0, 0, -7, 0, 8, 0}
	for i := range want {
		if coeffs[i] != want[i] {
			t.Fatalf("coeffs = %v, want %v", coeffs, want)
		}
	}
}

func TestThresholdEdgeCases(t *testing.T) {
	coeffs := []float64{1, 2, 3}
	if kept := Threshold(coeffs, 10); kept != 3 {
		t.Errorf("keep > len: kept = %d, want 3", kept)
	}
	for _, v := range coeffs {
		if v == 0 {
			t.Error("keep > len must not discard anything")
		}
	}
	if kept := Threshold(coeffs, 0); kept != 0 {
		t.Errorf("keep 0: kept = %d", kept)
	}
	for _, v := range coeffs {
		if v != 0 {
			t.Error("keep 0 must zero everything")
		}
	}
	if kept := Threshold(nil, 0); kept != 0 {
		t.Errorf("nil input: kept = %d", kept)
	}
}

func TestThresholdTiesExactBudget(t *testing.T) {
	// 6 coefficients with equal magnitude: exactly `keep` must survive.
	coeffs := []float64{5, -5, 5, -5, 5, -5}
	kept := Threshold(coeffs, 4)
	if kept != 4 {
		t.Fatalf("kept = %d, want 4", kept)
	}
	nonzero := 0
	for _, v := range coeffs {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 4 {
		t.Errorf("nonzero after tie-threshold = %d, want exactly 4", nonzero)
	}
}

func TestThresholdRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	coeffs := make([]float64, 1024)
	for i := range coeffs {
		coeffs[i] = rng.NormFloat64()
	}
	kept, err := ThresholdRatio(coeffs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 128 {
		t.Errorf("kept = %d, want 128", kept)
	}
	nonzero := 0
	for _, v := range coeffs {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 128 {
		t.Errorf("nonzero = %d, want 128", nonzero)
	}
	if _, err := ThresholdRatio(coeffs, 0); err == nil {
		t.Error("expected error for ratio 0")
	}
}

func TestSelectKthMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200) + 1
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		sorted := append([]float64(nil), a...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		k := rng.Intn(n)
		got := selectKth(append([]float64(nil), a...), k)
		if got != sorted[k] {
			t.Fatalf("selectKth(k=%d, n=%d) = %g, want %g", k, n, got, sorted[k])
		}
	}
}

func TestCutoffMagnitude(t *testing.T) {
	coeffs := []float64{1, -9, 3, 0.5, -7, 2, 8, -0.1}
	if got := CutoffMagnitude(coeffs, 3); got != 7 {
		t.Errorf("CutoffMagnitude(keep=3) = %g, want 7", got)
	}
	if got := CutoffMagnitude(coeffs, 100); got != 0 {
		t.Errorf("CutoffMagnitude(keep>=n) = %g, want 0", got)
	}
	if got := CutoffMagnitude(coeffs, 0); !math.IsInf(got, 1) {
		t.Errorf("CutoffMagnitude(keep=0) = %g, want +Inf", got)
	}
	// Original must be unmodified.
	if coeffs[1] != -9 || coeffs[6] != 8 {
		t.Error("CutoffMagnitude modified its input")
	}
}

func TestSparseBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	coeffs := make([]float64, 500)
	for i := range coeffs {
		coeffs[i] = float64(float32(rng.NormFloat64())) // float32-exact values
	}
	Threshold(coeffs, 50)
	b := NewSparseBlock(coeffs)
	if b.Retained() != 50 {
		t.Fatalf("Retained = %d, want 50", b.Retained())
	}
	var buf bytes.Buffer
	n, err := b.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != b.EncodedSizeBytes() || int64(buf.Len()) != n {
		t.Errorf("WriteTo wrote %d bytes, EncodedSizeBytes = %d, buffer = %d", n, b.EncodedSizeBytes(), buf.Len())
	}
	b2, err := ReadSparseBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dec := b2.Decode()
	for i := range coeffs {
		if dec[i] != coeffs[i] {
			t.Fatalf("decoded[%d] = %g, want %g", i, dec[i], coeffs[i])
		}
	}
}

func TestSparseBlockDecodeInto(t *testing.T) {
	coeffs := []float64{0, 1, 0, -2, 0}
	b := NewSparseBlock(coeffs)
	out := make([]float64, 5)
	// Pre-dirty the output to verify zeros are written.
	for i := range out {
		out[i] = 99
	}
	if err := b.DecodeInto(out); err != nil {
		t.Fatal(err)
	}
	for i := range coeffs {
		if out[i] != coeffs[i] {
			t.Fatalf("DecodeInto = %v, want %v", out, coeffs)
		}
	}
	if err := b.DecodeInto(make([]float64, 4)); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestSparseBlockSizes(t *testing.T) {
	coeffs := make([]float64, 800)
	coeffs[13] = 1
	coeffs[700] = -1
	b := NewSparseBlock(coeffs)
	if got := b.IdealSizeBytes(); got != 8 {
		t.Errorf("IdealSizeBytes = %d, want 8", got)
	}
	want := int64(16 + 100 + 8)
	if got := b.EncodedSizeBytes(); got != want {
		t.Errorf("EncodedSizeBytes = %d, want %d", got, want)
	}
}

func TestReadSparseBlockCorrupt(t *testing.T) {
	// Truncated header.
	if _, err := ReadSparseBlock(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("expected error on truncated header")
	}
	// Valid header, bitmap popcount disagreeing with retained count.
	var buf bytes.Buffer
	b := NewSparseBlock([]float64{1, 0, 2, 0})
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[16] = 0xFF // corrupt bitmap: 4 bits set, header says 2
	if _, err := ReadSparseBlock(bytes.NewReader(raw)); err == nil {
		t.Error("expected popcount-mismatch error")
	}
}

// Property: Threshold keeps exactly min(keep, n) coefficients, and every
// retained magnitude is >= every discarded magnitude.
func TestQuickThresholdInvariants(t *testing.T) {
	prop := func(seed int64, nRaw uint8, keepRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%100 + 1
		keep := int(keepRaw) % (n + 10)
		orig := make([]float64, n)
		for i := range orig {
			orig[i] = rng.NormFloat64()
		}
		coeffs := append([]float64(nil), orig...)
		Threshold(coeffs, keep)
		wantKept := keep
		if wantKept > n {
			wantKept = n
		}
		var minKept = math.Inf(1)
		var maxDiscarded float64
		kept := 0
		for i, v := range coeffs {
			if v != 0 {
				if v != orig[i] {
					return false // retained values must be unchanged
				}
				kept++
				if a := math.Abs(v); a < minKept {
					minKept = a
				}
			} else if a := math.Abs(orig[i]); a > maxDiscarded {
				maxDiscarded = a
			}
		}
		// Note: original zeros also count as "discarded"; with continuous
		// random data, exact zeros are improbable, so kept == wantKept.
		if kept != wantKept {
			return false
		}
		if kept > 0 && kept < n && minKept < maxDiscarded {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: sparse encode/decode is lossless for float32-representable data.
func TestQuickSparseRoundTrip(t *testing.T) {
	prop := func(seed int64, nRaw uint8, keepRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		coeffs := make([]float64, n)
		for i := range coeffs {
			coeffs[i] = float64(float32(rng.NormFloat64()))
		}
		Threshold(coeffs, int(keepRaw)%(n+1))
		b := NewSparseBlock(coeffs)
		var buf bytes.Buffer
		if _, err := b.WriteTo(&buf); err != nil {
			return false
		}
		b2, err := ReadSparseBlock(&buf)
		if err != nil {
			return false
		}
		dec := b2.Decode()
		for i := range coeffs {
			if dec[i] != coeffs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkThreshold1M(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	orig := make([]float64, 1<<20)
	for i := range orig {
		orig[i] = rng.NormFloat64()
	}
	work := make([]float64, len(orig))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, orig)
		Threshold(work, len(work)/16)
	}
}

func TestDeflatedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	coeffs := make([]float64, 2000)
	for i := range coeffs {
		coeffs[i] = float64(float32(rng.NormFloat64()))
	}
	Threshold(coeffs, 100)
	b := NewSparseBlock(coeffs)

	var buf bytes.Buffer
	n, err := b.WriteDeflated(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Errorf("WriteDeflated reported %d bytes, wrote %d", n, buf.Len())
	}
	// Append a second block to verify exact frame consumption.
	b2src := make([]float64, 500)
	b2src[7] = 1.25
	b2 := NewSparseBlock(b2src)
	if _, err := b2.WriteDeflated(&buf); err != nil {
		t.Fatal(err)
	}

	got1, err := ReadDeflatedSparseBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ReadDeflatedSparseBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dec := got1.Decode()
	for i := range coeffs {
		if dec[i] != coeffs[i] {
			t.Fatalf("block 1 sample %d mismatch", i)
		}
	}
	if got2.Decode()[7] != 1.25 {
		t.Error("block 2 corrupted")
	}
}

func TestDeflateShrinksSparseBitmaps(t *testing.T) {
	// At high ratios the bitmap is mostly zero: DEFLATE should beat the
	// raw encoding comfortably.
	coeffs := make([]float64, 1<<16)
	coeffs[100] = 1
	coeffs[60000] = -2
	b := NewSparseBlock(coeffs)
	defl, err := b.DeflatedSizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if raw := b.EncodedSizeBytes(); defl >= raw/10 {
		t.Errorf("deflate %d bytes not well below raw %d for a sparse bitmap", defl, raw)
	}
}

func TestReadDeflatedRejectsGarbage(t *testing.T) {
	if _, err := ReadDeflatedSparseBlock(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("expected error for truncated frame header")
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], 1<<50)
	if _, err := ReadDeflatedSparseBlock(bytes.NewReader(hdr[:])); err == nil {
		t.Error("expected error for implausible size")
	}
	binary.LittleEndian.PutUint64(hdr[:], 4)
	bad := append(hdr[:], 0xde, 0xad, 0xbe, 0xef)
	if _, err := ReadDeflatedSparseBlock(bytes.NewReader(bad)); err == nil {
		t.Error("expected error for invalid deflate payload")
	}
}

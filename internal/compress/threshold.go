// Package compress implements coefficient selection and coding: given a
// target compression ratio n:1, it retains the 1/n largest-magnitude wavelet
// coefficients and discards (zeroes) the rest, exactly as the paper's
// Section IV-A step three describes. It also provides a sparse on-disk
// encoding (significance bitmap + packed float32 values) so real file sizes
// can be measured, and budget helpers for per-slice (3D) versus whole-window
// (4D) coefficient accounting.
package compress

import (
	"fmt"
	"math"

	"stwave/internal/fbits"
)

// KeepCount returns how many coefficients a ratio:1 compression retains out
// of total. Ratio 1 retains everything. Always at least 1 when total > 0 so
// a reconstruction exists at extreme ratios.
func KeepCount(total int, ratio float64) (int, error) {
	if ratio < 1 {
		return 0, fmt.Errorf("compress: ratio must be >= 1, got %g", ratio)
	}
	if total <= 0 {
		return 0, nil
	}
	k := int(float64(total) / ratio)
	if k < 1 {
		k = 1
	}
	if k > total {
		k = total
	}
	return k, nil
}

// Threshold zeroes, in place, all but the keep largest-magnitude entries of
// coeffs and returns the number actually retained (== keep except for
// degenerate inputs). Ties at the cut magnitude are resolved arbitrarily but
// deterministically: exactly `keep` coefficients survive.
func Threshold(coeffs []float64, keep int) int {
	n := len(coeffs)
	if keep >= n {
		return n
	}
	if keep <= 0 {
		for i := range coeffs {
			coeffs[i] = 0
		}
		return 0
	}
	// Find the keep-th largest magnitude with quickselect over a scratch
	// copy of magnitudes.
	mags := make([]float64, n)
	for i, v := range coeffs {
		mags[i] = math.Abs(v)
	}
	cut := selectKth(mags, keep-1) // 0-indexed: (keep-1)-th in descending order

	// First pass: keep everything strictly above the cut.
	kept := 0
	for _, v := range coeffs {
		if math.Abs(v) > cut {
			kept++
		}
	}
	// Second pass: admit ties (== cut) until the budget is exhausted, then
	// zero the rest.
	remaining := keep - kept
	for i, v := range coeffs {
		a := math.Abs(v)
		if a > cut {
			continue
		}
		if fbits.Eq(a, cut) && remaining > 0 {
			remaining--
			continue
		}
		coeffs[i] = 0
	}
	return keep
}

// ThresholdRatio is the common entry point: discards coefficients so that a
// ratio:1 compression is achieved, returning the retained count.
func ThresholdRatio(coeffs []float64, ratio float64) (int, error) {
	keep, err := KeepCount(len(coeffs), ratio)
	if err != nil {
		return 0, err
	}
	return Threshold(coeffs, keep), nil
}

// selectKth returns the k-th largest element (0-indexed) of a, using
// iterative quickselect with median-of-three pivoting. a is permuted.
func selectKth(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for {
		if lo == hi {
			return a[lo]
		}
		p := partitionDesc(a, lo, hi)
		switch {
		case k == p:
			return a[p]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// partitionDesc partitions a[lo..hi] in descending order around a
// median-of-three pivot and returns the pivot's final index.
func partitionDesc(a []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: order a[lo] >= a[mid] >= a[hi] candidates.
	if a[mid] > a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] > a[lo] {
		a[hi], a[lo] = a[lo], a[hi]
	}
	if a[hi] > a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	pivot := a[mid]
	a[mid], a[hi] = a[hi], a[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if a[i] > pivot {
			a[i], a[store] = a[store], a[i]
			store++
		}
	}
	a[store], a[hi] = a[hi], a[store]
	return store
}

// CutoffMagnitude returns the magnitude of the keep-th largest coefficient
// without modifying coeffs — the threshold the paper describes finding
// relative to the largest-magnitude coefficient.
func CutoffMagnitude(coeffs []float64, keep int) float64 {
	if keep <= 0 || len(coeffs) == 0 {
		return math.Inf(1)
	}
	if keep >= len(coeffs) {
		return 0
	}
	mags := make([]float64, len(coeffs))
	for i, v := range coeffs {
		mags[i] = math.Abs(v)
	}
	return selectKth(mags, keep-1)
}

// Package compress implements coefficient selection and coding: given a
// target compression ratio n:1, it retains the 1/n largest-magnitude wavelet
// coefficients and discards (zeroes) the rest, exactly as the paper's
// Section IV-A step three describes. It also provides a sparse on-disk
// encoding (significance bitmap + packed float32 values) so real file sizes
// can be measured, and budget helpers for per-slice (3D) versus whole-window
// (4D) coefficient accounting.
package compress

import (
	"fmt"
	"math"
	"sync"

	"stwave/internal/fbits"
	"stwave/internal/par"
	"stwave/internal/scratch"
)

// KeepCount returns how many coefficients a ratio:1 compression retains out
// of total. Ratio 1 retains everything. Always at least 1 when total > 0 so
// a reconstruction exists at extreme ratios.
func KeepCount(total int, ratio float64) (int, error) {
	if ratio < 1 {
		return 0, fmt.Errorf("compress: ratio must be >= 1, got %g", ratio)
	}
	if total <= 0 {
		return 0, nil
	}
	k := int(float64(total) / ratio)
	if k < 1 {
		k = 1
	}
	if k > total {
		k = total
	}
	return k, nil
}

// Selection runs on the raw IEEE-754 bit patterns of coefficient
// magnitudes: for non-NaN doubles, clearing the sign bit leaves an
// unsigned integer whose order matches the magnitude order exactly, so
// the k-th largest magnitude is the k-th largest key. A histogram over the
// top histBits bits of the keys narrows the cut to one bucket in a single
// counting pass; only that bucket's keys (usually a small fraction of the
// input) see the quickselect. NaN payloads rank above +Inf in key order —
// a deterministic total order where float comparison has none.
const (
	histBits  = 11
	histSize  = 1 << histBits
	histShift = 64 - histBits
	signMask  = 1 << 63

	// thresholdChunk is the fixed per-task granule of the parallel passes.
	// Chunk boundaries are deterministic (independent of the worker count),
	// and tie admission follows chunk order = index order, so the output is
	// bit-identical for every worker count.
	thresholdChunk = 1 << 15
)

// thChunk is one fixed-size range of the concatenated coefficient domain,
// never straddling a slice boundary.
type thChunk struct {
	si     int // slice index
	lo, hi int // element range within slice si
}

func buildChunks(slices [][]float64) (chunks []thChunk, total int) {
	n := 0
	for _, s := range slices {
		n += (len(s) + thresholdChunk - 1) / thresholdChunk
	}
	chunks = make([]thChunk, 0, n)
	for si, s := range slices {
		for lo := 0; lo < len(s); lo += thresholdChunk {
			hi := lo + thresholdChunk
			if hi > len(s) {
				hi = len(s)
			}
			chunks = append(chunks, thChunk{si: si, lo: lo, hi: hi})
			total += hi - lo
		}
	}
	return chunks, total
}

// magKey is the sortable magnitude key of v: the IEEE-754 bit pattern with
// the sign cleared. Unsigned comparison of keys orders by |v| (NaNs sort
// above all finite magnitudes). Recomputing it per pass is two ALU ops —
// cheaper than materializing a key-per-coefficient slab and streaming it
// back through the cache in every pass.
func magKey(v float64) uint64 { return math.Float64bits(v) &^ signMask }

// cutKeySlices finds the magnitude-bit key of the keep-th largest
// magnitude across all slices and returns it together with the number of
// keys strictly greater than it. Requires 0 < keep <= total.
func cutKeySlices(slices [][]float64, chunks []thChunk, keep, workers int) (cut uint64, greater int) {
	var mu sync.Mutex
	var hist [histSize]int
	par.For(len(chunks), workers, 1, func(start, end int) {
		var local [histSize]int
		for ci := start; ci < end; ci++ {
			ch := chunks[ci]
			for _, v := range slices[ch.si][ch.lo:ch.hi] {
				local[magKey(v)>>histShift]++
			}
		}
		mu.Lock()
		for i, c := range local {
			if c != 0 {
				hist[i] += c
			}
		}
		mu.Unlock()
	})

	// Walk buckets from the largest magnitudes down to the one holding the
	// keep-th largest key.
	bucket, before := 0, 0
	for b := histSize - 1; b >= 0; b-- {
		if before+hist[b] >= keep {
			bucket = b
			break
		}
		before += hist[b]
	}

	cands := scratch.Uint64s(hist[bucket])
	ci := 0
	for _, s := range slices {
		for _, v := range s {
			if k := magKey(v); int(k>>histShift) == bucket { //stlint:ignore trunccast the shift keeps 11 bits, far inside int range
				cands[ci] = k
				ci++
			}
		}
	}
	cut = selectKthU64Desc(cands, keep-1-before)
	// Every key in a higher bucket is > cut (the bucket is the key's most
	// significant bits), so only the candidate bucket needs a scan.
	greater = before
	for _, k := range cands {
		if k > cut {
			greater++
		}
	}
	scratch.PutUint64s(cands)
	return cut, greater
}

// Threshold zeroes, in place, all but the keep largest-magnitude entries of
// coeffs and returns the number actually retained (== keep except for
// degenerate inputs). Ties at the cut magnitude are resolved in index
// order, deterministically: exactly `keep` coefficients survive.
func Threshold(coeffs []float64, keep int) int {
	return ThresholdSlices([][]float64{coeffs}, keep, 1)
}

// ThresholdSlices is Threshold over the concatenation of slices (in slice
// order) without materializing it: the keep largest magnitudes across all
// slices survive, ties admitted in global index order. The selection and
// the zeroing passes run on up to workers goroutines; the output is
// bit-identical for every worker count, including 1.
func ThresholdSlices(slices [][]float64, keep, workers int) int {
	chunks, total := buildChunks(slices)
	if keep >= total {
		return total
	}
	if keep <= 0 {
		par.For(len(chunks), workers, 1, func(start, end int) {
			for ci := start; ci < end; ci++ {
				ch := chunks[ci]
				data := slices[ch.si][ch.lo:ch.hi]
				for j := range data {
					data[j] = 0
				}
			}
		})
		return 0
	}

	cut, totalGreater := cutKeySlices(slices, chunks, keep, workers)

	if workers <= 1 {
		// Serial fast path: ties admit in index order against one running
		// budget, so the per-chunk counting pass is unnecessary.
		budget := keep - totalGreater
		for _, ch := range chunks {
			data := slices[ch.si][ch.lo:ch.hi]
			for j, v := range data {
				k := magKey(v)
				if k > cut {
					continue
				}
				if k == cut && budget > 0 {
					budget--
					continue
				}
				data[j] = 0
			}
		}
		return keep
	}

	// Count, per chunk, the ties at the cut (the strictly-greater total is
	// already known globally; only ties need a per-chunk split for the
	// prefix below).
	nch := len(chunks)
	ties := scratch.Uint64s(nch)
	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			ch := chunks[ci]
			t := 0
			for _, v := range slices[ch.si][ch.lo:ch.hi] {
				if magKey(v) == cut {
					t++
				}
			}
			ties[ci] = uint64(t) //stlint:ignore trunccast t is a non-negative tie count
		}
	})

	// Prefix over chunks in index order: chunk ci may admit only the ties
	// left after every earlier chunk took theirs — the serial tie rule.
	budget := keep - totalGreater
	for ci := range ties {
		admit := int(ties[ci]) //stlint:ignore trunccast ties holds per-chunk tallies bounded by the chunk size
		if admit > budget {
			admit = budget
		}
		ties[ci] = uint64(admit)
		budget -= admit
	}

	par.For(nch, workers, 1, func(start, end int) {
		for ci := start; ci < end; ci++ {
			ch := chunks[ci]
			data := slices[ch.si][ch.lo:ch.hi]
			admit := int(ties[ci]) //stlint:ignore trunccast ties holds clamped admit budgets bounded by keep
			for j, v := range data {
				k := magKey(v)
				if k > cut {
					continue
				}
				if k == cut && admit > 0 {
					admit--
					continue
				}
				data[j] = 0
			}
		}
	})

	scratch.PutUint64s(ties)
	return keep
}

// ThresholdRatio is the common entry point: discards coefficients so that a
// ratio:1 compression is achieved, returning the retained count.
func ThresholdRatio(coeffs []float64, ratio float64) (int, error) {
	keep, err := KeepCount(len(coeffs), ratio)
	if err != nil {
		return 0, err
	}
	return Threshold(coeffs, keep), nil
}

// selectKthU64Desc returns the k-th largest element (0-indexed) of a,
// using iterative 3-way quickselect — the equal region collapses
// duplicate-heavy inputs (the common case after the histogram narrows to
// one bucket) in a single partition instead of degrading quadratically.
// a is permuted.
func selectKthU64Desc(a []uint64, k int) uint64 {
	lo, hi := 0, len(a)-1
	for {
		if hi <= lo {
			return a[lo]
		}
		mid := lo + (hi-lo)/2
		p := medianU64(a[lo], a[mid], a[hi])
		// Partition descending into [ >p | ==p | <p ].
		i, j, m := lo, lo, hi
		for j <= m {
			switch {
			case a[j] > p:
				a[i], a[j] = a[j], a[i]
				i++
				j++
			case a[j] < p:
				a[j], a[m] = a[m], a[j]
				m--
			default:
				j++
			}
		}
		switch {
		case k < i:
			hi = i - 1
		case k <= m:
			return p
		default:
			lo = m + 1
		}
	}
}

func medianU64(a, b, c uint64) uint64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// CutoffMagnitude returns the magnitude of the keep-th largest coefficient
// without modifying coeffs — the threshold the paper describes finding
// relative to the largest-magnitude coefficient.
func CutoffMagnitude(coeffs []float64, keep int) float64 {
	if keep <= 0 || len(coeffs) == 0 {
		return math.Inf(1)
	}
	if keep >= len(coeffs) {
		return 0
	}
	slices := [][]float64{coeffs}
	chunks, _ := buildChunks(slices)
	cut, _ := cutKeySlices(slices, chunks, keep, 1)
	return math.Float64frombits(cut)
}

// thresholdSerial is the original quickselect implementation, retained
// verbatim as the reference the equivalence tests pin ThresholdSlices
// against. It must not be changed independently of Threshold's documented
// semantics.
func thresholdSerial(coeffs []float64, keep int) int {
	n := len(coeffs)
	if keep >= n {
		return n
	}
	if keep <= 0 {
		for i := range coeffs {
			coeffs[i] = 0
		}
		return 0
	}
	mags := make([]float64, n)
	for i, v := range coeffs {
		mags[i] = math.Abs(v)
	}
	cut := selectKth(mags, keep-1) // 0-indexed: (keep-1)-th in descending order

	// First pass: keep everything strictly above the cut.
	kept := 0
	for _, v := range coeffs {
		if math.Abs(v) > cut {
			kept++
		}
	}
	// Second pass: admit ties (== cut) until the budget is exhausted, then
	// zero the rest.
	remaining := keep - kept
	for i, v := range coeffs {
		a := math.Abs(v)
		if a > cut {
			continue
		}
		if fbits.Eq(a, cut) && remaining > 0 {
			remaining--
			continue
		}
		coeffs[i] = 0
	}
	return keep
}

// selectKth returns the k-th largest element (0-indexed) of a, using
// iterative quickselect with median-of-three pivoting. a is permuted.
// Retained for thresholdSerial only.
func selectKth(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for {
		if lo == hi {
			return a[lo]
		}
		p := partitionDesc(a, lo, hi)
		switch {
		case k == p:
			return a[p]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// partitionDesc partitions a[lo..hi] in descending order around a
// median-of-three pivot and returns the pivot's final index.
func partitionDesc(a []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: order a[lo] >= a[mid] >= a[hi] candidates.
	if a[mid] > a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] > a[lo] {
		a[hi], a[lo] = a[lo], a[hi]
	}
	if a[hi] > a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
	}
	pivot := a[mid]
	a[mid], a[hi] = a[hi], a[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if a[i] > pivot {
			a[i], a[store] = a[store], a[i]
			store++
		}
	}
	a[store], a[hi] = a[hi], a[store]
	return store
}

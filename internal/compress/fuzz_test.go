package compress

import (
	"bytes"
	"testing"
)

// FuzzReadSparseBlock: the sparse decoder must never panic and must only
// accept self-consistent blocks.
func FuzzReadSparseBlock(f *testing.F) {
	coeffs := make([]float64, 64)
	coeffs[3], coeffs[40] = 1.5, -2.25
	var buf bytes.Buffer
	if _, err := NewSparseBlock(coeffs).WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 16))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadSparseBlock(bytes.NewReader(data))
		if err != nil {
			return
		}
		if b.Retained() > b.Total {
			t.Fatalf("retained %d > total %d accepted", b.Retained(), b.Total)
		}
		dec := b.Decode()
		if len(dec) != b.Total {
			t.Fatalf("decoded %d values, total %d", len(dec), b.Total)
		}
	})
}

// FuzzReadDeflatedSparseBlock covers the DEFLATE framing path.
func FuzzReadDeflatedSparseBlock(f *testing.F) {
	coeffs := make([]float64, 32)
	coeffs[5] = 9
	var buf bytes.Buffer
	if _, err := NewSparseBlock(coeffs).WriteDeflated(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadDeflatedSparseBlock(bytes.NewReader(data))
		if err != nil {
			return
		}
		if b.Retained() > b.Total {
			t.Fatalf("retained %d > total %d accepted", b.Retained(), b.Total)
		}
	})
}

package server

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent calls with the same key into a single
// execution of fn — the server's guard against a decompression stampede
// when N clients ask for slices of the same uncached window at once.
//
// Unlike the classic singleflight, execution is tied to the union of the
// callers' contexts: fn runs with a context that is cancelled only when
// every waiter has abandoned the call, so one impatient client cannot
// cancel work that others still need, and work nobody wants any more stops
// holding the decompression semaphore.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	val     any
	err     error
	waiters int
	cancel  context.CancelFunc
}

// Do invokes fn once per key among concurrent callers. It returns fn's
// result, or ctx.Err() if the caller's context ends first (the call keeps
// running for the remaining waiters). coalesced is true when this caller
// joined an execution started by another.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (val any, coalesced bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return g.wait(ctx, c, true)
	}
	// This caller leads: run fn in its own goroutine so the leader can
	// still honor its own deadline while followers keep the work alive.
	workCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.m[key] = c
	g.mu.Unlock()
	go func() {
		c.val, c.err = fn(workCtx)
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		cancel()
		close(c.done)
	}()
	return g.wait(ctx, c, false)
}

func (g *flightGroup) wait(ctx context.Context, c *flightCall, coalesced bool) (any, bool, error) {
	select {
	case <-c.done:
		return c.val, coalesced, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			c.cancel()
		}
		g.mu.Unlock()
		return nil, coalesced, ctx.Err()
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"stwave/internal/grid"
	"stwave/internal/obs"
)

// TestCacheAccountingConsistent drives concurrent cacheable requests and
// checks the consolidated accounting invariant: every request counts
// exactly one cache hit or one cache miss — no double counting from the
// flight re-check, no lost counts from coalescing.
func TestCacheAccountingConsistent(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	s, ts := newTestServer(t, DefaultConfig(), d, 20, 5)

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Spread across all 20 slices so multiple windows are in
				// play and hits, misses, and coalesced joins all occur.
				resp, _ := get(t, fmt.Sprintf("%s/v1/test/slice?t=%d", ts.URL, (seed*perWorker+i)%20))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d", resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()

	m := s.Metrics()
	requests := m.Requests.Load()
	hits, misses := m.CacheHits.Load(), m.CacheMisses.Load()
	if requests != workers*perWorker {
		t.Fatalf("requests = %d, want %d", requests, workers*perWorker)
	}
	if hits+misses != requests {
		t.Errorf("hits (%d) + misses (%d) = %d, want requests (%d)", hits, misses, hits+misses, requests)
	}
	if m.Errors.Load() != 0 {
		t.Errorf("errors = %d", m.Errors.Load())
	}
}

// TestMetricsExposesPipeline checks that /metrics carries the
// process-wide pipeline registry next to the server's own counters:
// after one cold request, the storage read path and the decompression
// path must both have recorded.
func TestMetricsExposesPipeline(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	_, ts := newTestServer(t, DefaultConfig(), d, 10, 5)

	if resp, _ := get(t, ts.URL+"/v1/test/slice?t=0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("slice status %d", resp.StatusCode)
	}
	_, body := get(t, ts.URL+"/metrics")
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad /metrics JSON: %v", err)
	}
	if snap.Pipeline.Counters["core.decompress_windows_total"] < 1 {
		t.Errorf("pipeline counters = %v, want core.decompress_windows_total >= 1", snap.Pipeline.Counters)
	}
	for _, name := range []string{"storage.read_seconds", "compress.decode_mb_per_s"} {
		if snap.Pipeline.Histograms[name].Count < 1 {
			t.Errorf("pipeline histogram %q absent or empty (names: %v)", name, snap.Pipeline.Names())
		}
	}
}

// TestDebugVarsMergesRegistries checks /debug/vars serves the merged
// server + process-wide registries.
func TestDebugVarsMergesRegistries(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	_, ts := newTestServer(t, DefaultConfig(), d, 10, 5)

	if resp, _ := get(t, ts.URL+"/v1/test/slice?t=0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("slice status %d", resp.StatusCode)
	}
	_, body := get(t, ts.URL+"/debug/vars")
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad /debug/vars JSON: %v", err)
	}
	if snap.Counters["server.requests_total"] < 1 {
		t.Errorf("server.requests_total = %d, want >= 1", snap.Counters["server.requests_total"])
	}
	if snap.Counters["core.decompress_windows_total"] < 1 {
		t.Errorf("core.decompress_windows_total = %d, want >= 1", snap.Counters["core.decompress_windows_total"])
	}
}

// TestRequestTraceSpanTree enables request tracing, issues one cold
// request, and checks the recorded span tree covers the whole pipeline:
// handler -> cache lookup -> storage read -> decompress -> inverse
// transform stages.
func TestRequestTraceSpanTree(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	cfg := DefaultConfig()
	cfg.TraceRequests = true
	_, ts := newTestServer(t, cfg, d, 10, 5)

	if resp, _ := get(t, ts.URL+"/v1/test/slice?t=0"); resp.StatusCode != http.StatusOK {
		t.Fatalf("slice status %d", resp.StatusCode)
	}
	_, body := get(t, ts.URL+"/debug/traces")
	var traces []obs.SpanTree
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatalf("bad /debug/traces JSON: %v", err)
	}
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	seen := map[string]bool{}
	traces[0].Walk(func(n obs.SpanTree, depth int) { seen[n.Name] = true })
	for _, want := range []string{
		"handler /v1/test/slice",
		"cache.lookup",
		"storage.read_window",
		"core.decompress",
		"core.decode_blocks",
		"xform.inverse_3d",
		"xform.inverse_temporal",
	} {
		if !seen[want] {
			t.Errorf("span %q missing from trace (have %v)", want, seen)
		}
	}
}

// TestPprofGatedByConfig checks the profiling endpoints are absent by
// default and mounted when Config.Pprof is set.
func TestPprofGatedByConfig(t *testing.T) {
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	_, off := newTestServer(t, DefaultConfig(), d, 4, 4)
	if resp, _ := get(t, off.URL+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without opt-in: status %d, want 404", resp.StatusCode)
	}

	cfg := DefaultConfig()
	cfg.Pprof = true
	_, on := newTestServer(t, cfg, d, 4, 4)
	if resp, _ := get(t, on.URL+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with opt-in: status %d, want 200", resp.StatusCode)
	}
}

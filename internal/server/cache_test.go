package server

import (
	"fmt"
	"testing"

	"stwave/internal/grid"
)

// testCacheWindow builds a window of the given shape; size in bytes is
// d.Len()*slices*8.
func testCacheWindow(d grid.Dims, slices int) *grid.Window {
	w := grid.NewWindow(d)
	for i := 0; i < slices; i++ {
		if err := w.Append(grid.NewField3D(d.Nx, d.Ny, d.Nz), float64(i)); err != nil {
			panic(err)
		}
	}
	return w
}

func TestCacheLRUEviction(t *testing.T) {
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}       // 512 bytes/slice
	one := windowBytes(testCacheWindow(d, 2)) // 1024 bytes
	c := NewWindowCache(3 * one)

	key := func(i int) windowKey { return windowKey{dataset: "d", window: i} }
	for i := 0; i < 3; i++ {
		c.Put(key(i), cache64(testCacheWindow(d, 2)))
	}
	if st := c.Stats(); st.Windows != 3 || st.UsedBytes != 3*one {
		t.Fatalf("stats after fill: %+v", st)
	}
	// Touch window 0 so window 1 is the LRU, then insert window 3.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("window 0 missing")
	}
	c.Put(key(3), cache64(testCacheWindow(d, 2)))
	if _, ok := c.Get(key(1)); ok {
		t.Error("window 1 should have been evicted as LRU")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Errorf("window %d should still be cached", i)
		}
	}
	if st := c.Stats(); st.Windows != 3 || st.UsedBytes != 3*one {
		t.Errorf("stats after eviction: %+v", st)
	}
}

func TestCacheRejectsOversizedWindow(t *testing.T) {
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	c := NewWindowCache(1000) // one 2-slice window is 1024 bytes
	c.Put(windowKey{dataset: "d", window: 0}, cache64(testCacheWindow(d, 2)))
	if st := c.Stats(); st.Windows != 0 || st.UsedBytes != 0 {
		t.Errorf("oversized window admitted: %+v", st)
	}
	if c.Admits(1024) {
		t.Error("Admits(1024) with budget 1000")
	}
	if !c.Admits(512) {
		t.Error("!Admits(512) with budget 1000")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewWindowCache(0)
	d := grid.Dims{Nx: 2, Ny: 2, Nz: 2}
	c.Put(windowKey{dataset: "d", window: 0}, cache64(testCacheWindow(d, 1)))
	if _, ok := c.Get(windowKey{dataset: "d", window: 0}); ok {
		t.Error("zero-budget cache stored a window")
	}
}

func TestCacheReplaceAndFlush(t *testing.T) {
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	c := NewWindowCache(1 << 20)
	k := windowKey{dataset: "d", window: 0}
	c.Put(k, cache64(testCacheWindow(d, 2)))
	c.Put(k, cache64(testCacheWindow(d, 3))) // replace with a different size
	if st := c.Stats(); st.Windows != 1 || st.UsedBytes != windowBytes(testCacheWindow(d, 3)) {
		t.Errorf("stats after replace: %+v", st)
	}
	c.Flush()
	if st := c.Stats(); st.Windows != 0 || st.UsedBytes != 0 {
		t.Errorf("stats after flush: %+v", st)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	c := NewWindowCache(4 * windowBytes(testCacheWindow(d, 2)))
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := windowKey{dataset: fmt.Sprintf("d%d", g%2), window: i % 8}
				if _, ok := c.Get(k); !ok {
					c.Put(k, cache64(testCacheWindow(d, 2)))
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if st := c.Stats(); st.UsedBytes > st.BudgetBytes {
		t.Errorf("cache over budget: %+v", st)
	}
}

package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/storage"
	"stwave/internal/transform"
)

// buildProgressiveContainer writes a level-major (v4) container.
func buildProgressiveContainer(t testing.TB, d grid.Dims, numSlices, windowSize int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.stw")
	opts := core.DefaultOptions()
	opts.WindowSize = windowSize
	opts.Ratio = 8
	opts.Progressive = true
	cw, err := storage.CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := core.NewWriter(opts, d, func(w *core.CompressedWindow) error {
		_, err := cw.Append(w)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for ts := 0; ts < numSlices; ts++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		for i := range f.Data {
			f.Data[i] = math.Sin(float64(i)*0.1 + float64(ts)*0.2)
		}
		if err := writer.WriteSlice(f, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func newProgressiveServer(t testing.TB, cfg Config, d grid.Dims, numSlices, windowSize int) (*Server, *httptest.Server) {
	t.Helper()
	path := buildProgressiveContainer(t, d, numSlices, windowSize)
	s := New(cfg)
	if err := s.Mount("prog", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// decodeRawFloats parses a raw-format response body.
func decodeRawFloats(t *testing.T, body []byte) []float32 {
	t.Helper()
	if len(body)%4 != 0 {
		t.Fatalf("raw body %d bytes not a float32 multiple", len(body))
	}
	out := make([]float32, len(body)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[i*4:]))
	}
	return out
}

// TestSliceLevelsParam: levels=K serves the coarse reconstruction at the
// pyramid's dims, reads fewer bytes than the full window, and accounts
// the saving; levels=SpatialLevels matches the full-quality slice.
func TestSliceLevelsParam(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	s, ts := newProgressiveServer(t, DefaultConfig(), d, 6, 6)
	L := s.mounts["prog"].ref.SpatialLevels
	if L < 1 {
		t.Fatalf("container has %d spatial levels; need >= 1", L)
	}

	resp, body := get(t, ts.URL+"/v1/prog/slice?t=2&levels=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("levels=0: status %d: %s", resp.StatusCode, body)
	}
	coarse := transform.CoarseDims(d, L)
	if got := resp.Header.Get("X-STW-Dims"); got != coarse.String() {
		t.Errorf("levels=0 dims %q, want %q", got, coarse)
	}
	if len(body) != coarse.Len()*4 {
		t.Errorf("levels=0 body %d bytes, want %d", len(body), coarse.Len()*4)
	}
	if got := s.metrics.PartialDecodes.Load(); got != 1 {
		t.Errorf("partial_decodes = %d, want 1", got)
	}
	if saved := s.metrics.ProgressiveBytesSaved.Load(); saved <= 0 {
		t.Errorf("progressive_bytes_saved = %d, want > 0", saved)
	}

	// Full-depth levels param must match the plain slice response exactly.
	respFull, bodyFull := get(t, ts.URL+fmt.Sprintf("/v1/prog/slice?t=2&levels=%d", L))
	if respFull.StatusCode != http.StatusOK {
		t.Fatalf("levels=%d: status %d: %s", L, respFull.StatusCode, bodyFull)
	}
	respPlain, bodyPlain := get(t, ts.URL+"/v1/prog/slice?t=2")
	if respPlain.StatusCode != http.StatusOK {
		t.Fatalf("plain slice: status %d", respPlain.StatusCode)
	}
	if !bytes.Equal(bodyFull, bodyPlain) {
		t.Error("levels=SpatialLevels response differs from full-quality slice")
	}

	// Out-of-range levels fail as a client error.
	respBad, _ := get(t, ts.URL+fmt.Sprintf("/v1/prog/slice?t=2&levels=%d", L+1))
	if respBad.StatusCode != http.StatusBadRequest {
		t.Errorf("levels=%d: status %d, want 400", L+1, respBad.StatusCode)
	}
}

// TestSliceLevelsCoarseAccuracy: the coarse reconstruction must agree
// with the downsampled full reconstruction — same signal, same scaling —
// to well under the compression error budget.
func TestSliceLevelsCoarseAccuracy(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	s, ts := newProgressiveServer(t, DefaultConfig(), d, 6, 6)
	L := s.mounts["prog"].ref.SpatialLevels
	K := L - 1

	_, coarseBody := get(t, ts.URL+fmt.Sprintf("/v1/prog/slice?t=3&levels=%d", K))
	gotCoarse := decodeRawFloats(t, coarseBody)

	_, fullBody := get(t, ts.URL+"/v1/prog/slice?t=3")
	full := decodeRawFloats(t, fullBody)
	f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
	for i, v := range full {
		f.Data[i] = float64(v)
	}
	want, err := transform.CoarseApproximation(f, s.mounts["prog"].ref.SpatialKernel, L-K, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotCoarse) != len(want.Data) {
		t.Fatalf("coarse response %d samples, want %d", len(gotCoarse), len(want.Data))
	}
	var maxDiff float64
	for i, v := range gotCoarse {
		if diff := math.Abs(float64(v) - want.Data[i]); diff > maxDiff {
			maxDiff = diff
		}
	}
	// Partial decode drops detail the downsample also discards; the two
	// differ only by float ordering and the dropped-coefficient error.
	if maxDiff > 0.05 {
		t.Errorf("coarse reconstruction deviates %g from downsampled full reconstruction", maxDiff)
	}
}

// TestPreviewUsesPartialDecode is the bugfix regression: preview on a
// progressive container must take the partial-read path instead of
// decompressing the full window and throwing the detail away.
func TestPreviewUsesPartialDecode(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	s, ts := newProgressiveServer(t, DefaultConfig(), d, 6, 6)
	L := s.mounts["prog"].ref.SpatialLevels

	resp, body := get(t, ts.URL+"/v1/prog/preview?t=1&levels=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	coarse := transform.CoarseDims(d, 1)
	if got := resp.Header.Get("X-STW-Dims"); got != coarse.String() {
		t.Errorf("preview dims %q, want %q", got, coarse)
	}
	if got := s.metrics.PartialDecodes.Load(); got != 1 {
		t.Errorf("preview did not take the partial-decode path (partial_decodes = %d)", got)
	}
	if got := s.metrics.Decompressions.Load(); got != 1 {
		t.Errorf("decompressions = %d, want 1 (the partial one)", got)
	}
	// A preview deeper than the transform supports keeps answering 400
	// through the downsample fallback, exactly as before the level-major
	// layout existed.
	respDeep, _ := get(t, ts.URL+fmt.Sprintf("/v1/prog/preview?t=1&levels=%d", L+9))
	if respDeep.StatusCode != http.StatusBadRequest {
		t.Errorf("too-deep preview: status %d, want 400", respDeep.StatusCode)
	}
}

// TestWindowLevelsEndpoint: the level table JSON must tile the window
// resource, and Range requests against /window/{w} must serve exactly
// the advertised byte ranges.
func TestWindowLevelsEndpoint(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	_, ts := newProgressiveServer(t, DefaultConfig(), d, 6, 6)

	resp, body := get(t, ts.URL+"/v1/prog/window/0/levels")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var table struct {
		Window        int    `json:"window"`
		Progressive   bool   `json:"progressive"`
		SpatialLevels int    `json:"spatial_levels"`
		PayloadStart  int64  `json:"payload_start"`
		SizeBytes     int64  `json:"size_bytes"`
		Dims          string `json:"dims"`
		Levels        []struct {
			Level  int    `json:"level"`
			Offset int64  `json:"offset"`
			Length int64  `json:"length"`
			CRC    uint32 `json:"crc32"`
		} `json:"levels"`
	}
	if err := json.Unmarshal(body, &table); err != nil {
		t.Fatal(err)
	}
	if !table.Progressive || len(table.Levels) != table.SpatialLevels+1 {
		t.Fatalf("level table %+v not progressive or wrong group count", table)
	}

	// Full window fetch: size must match the table's accounting.
	respW, whole := get(t, ts.URL+"/v1/prog/window/0")
	if respW.StatusCode != http.StatusOK {
		t.Fatalf("window fetch: status %d", respW.StatusCode)
	}
	if int64(len(whole)) != table.SizeBytes {
		t.Fatalf("window is %d bytes, table says %d", len(whole), table.SizeBytes)
	}
	if respW.Header.Get("X-STW-Progressive") != "true" {
		t.Error("X-STW-Progressive header missing")
	}
	// The bytes must re-parse as a progressive window.
	if _, err := core.ReadCompressedWindowLevels(bytes.NewReader(whole), 0); err != nil {
		t.Fatalf("served window bytes do not parse: %v", err)
	}

	// Range request for the header + approximation group: the coarse
	// prefix a refining client fetches first.
	lvl0 := table.Levels[0]
	req, err := http.NewRequest("GET", ts.URL+"/v1/prog/window/0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=0-%d", lvl0.Offset+lvl0.Length-1))
	rr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	part, err := io.ReadAll(rr.Body)
	rr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rr.StatusCode != http.StatusPartialContent {
		t.Fatalf("range request: status %d, want 206", rr.StatusCode)
	}
	if int64(len(part)) != lvl0.Offset+lvl0.Length {
		t.Fatalf("range response %d bytes, want %d", len(part), lvl0.Offset+lvl0.Length)
	}
	if !bytes.Equal(part, whole[:len(part)]) {
		t.Fatal("range response bytes differ from the window prefix")
	}
	// That prefix is a complete coarse window.
	cw, err := core.ReadCompressedWindowLevels(bytes.NewReader(part), 0)
	if err != nil {
		t.Fatalf("level-0 prefix does not parse: %v", err)
	}
	if _, err := core.DecompressLevels(cw, 0); err != nil {
		t.Fatalf("level-0 prefix does not decode: %v", err)
	}
}

// TestWindowEndpointErrors: bad indices and non-numeric segments answer
// client errors, not panics or 500s.
func TestWindowEndpointErrors(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	_, ts := newProgressiveServer(t, DefaultConfig(), d, 4, 4)
	for url, want := range map[string]int{
		"/v1/prog/window/99":        http.StatusNotFound,
		"/v1/prog/window/-1":        http.StatusNotFound,
		"/v1/prog/window/x":         http.StatusBadRequest,
		"/v1/prog/window/99/levels": http.StatusNotFound,
		"/v1/nope/window/0":         http.StatusNotFound,
	} {
		resp, _ := get(t, ts.URL+url)
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", url, resp.StatusCode, want)
		}
	}
}

// TestSliceLevelsLegacyFallback: levels=K on a legacy container answers
// the same coarse dims through full decode + downsample — no partial
// reads, no errors.
func TestSliceLevelsLegacyFallback(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	s, ts := newTestServer(t, DefaultConfig(), d, 6, 6)
	L := s.mounts["test"].ref.SpatialLevels

	resp, body := get(t, ts.URL+"/v1/test/slice?t=2&levels=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	coarse := transform.CoarseDims(d, L)
	if got := resp.Header.Get("X-STW-Dims"); got != coarse.String() {
		t.Errorf("dims %q, want %q", got, coarse)
	}
	if got := s.metrics.PartialDecodes.Load(); got != 0 {
		t.Errorf("legacy container recorded %d partial decodes", got)
	}
	// The levels endpoint probes capability without erroring.
	respT, bodyT := get(t, ts.URL+"/v1/test/window/0/levels")
	if respT.StatusCode != http.StatusOK {
		t.Fatalf("levels probe: status %d", respT.StatusCode)
	}
	var probe struct {
		Progressive bool `json:"progressive"`
	}
	if err := json.Unmarshal(bodyT, &probe); err != nil {
		t.Fatal(err)
	}
	if probe.Progressive {
		t.Error("legacy window reported progressive")
	}
}

// TestLevelCacheKeys: different depths of the same window are distinct
// cache entries — a second request at the same depth hits, a request at
// another depth misses.
func TestLevelCacheKeys(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	s, ts := newProgressiveServer(t, DefaultConfig(), d, 6, 6)

	get(t, ts.URL+"/v1/prog/slice?t=0&levels=0")
	resp, _ := get(t, ts.URL+"/v1/prog/slice?t=1&levels=0")
	if got := resp.Header.Get("X-Cache"); got != string(stateHit) {
		t.Errorf("second levels=0 request: X-Cache %q, want hit", got)
	}
	resp, _ = get(t, ts.URL+"/v1/prog/slice?t=0")
	if got := resp.Header.Get("X-Cache"); got != string(stateMiss) {
		t.Errorf("full-depth request after coarse: X-Cache %q, want miss", got)
	}
	if got := s.metrics.PartialDecodes.Load(); got != 1 {
		t.Errorf("partial_decodes = %d, want 1 (second coarse request was cached)", got)
	}
}

package server

import (
	"stwave/internal/grid"
	"stwave/internal/render"
	"stwave/internal/transform"
	"stwave/internal/wavelet"
)

// sliceView is one reconstructed time slice at its native container
// precision. Exactly one of the fields is non-nil. Handlers operate on the
// view directly — crop, coarsen, render, and raw serialization all have
// native paths at both precisions — so float32 containers never pay a
// widen-then-narrow round trip on the hot path. Views share storage with
// the window cache: treat the data as read-only.
type sliceView struct {
	f64 *grid.Field3D
	f32 *grid.Field3D32
}

// view64 wraps a double-precision field.
func view64(f *grid.Field3D) sliceView { return sliceView{f64: f} }

// view32 wraps a single-precision field.
func view32(f *grid.Field3D32) sliceView { return sliceView{f32: f} }

// dims returns the field extents at either precision.
func (v sliceView) dims() grid.Dims {
	if v.f32 != nil {
		return v.f32.Dims
	}
	return v.f64.Dims
}

// samples returns the number of samples in the field.
func (v sliceView) samples() int { return v.dims().Len() }

// subVolume crops the view at its native precision.
func (v sliceView) subVolume(x0, y0, z0, nx, ny, nz int) (sliceView, error) {
	if v.f32 != nil {
		sub, err := v.f32.SubVolume(x0, y0, z0, nx, ny, nz)
		return sliceView{f32: sub}, err
	}
	sub, err := v.f64.SubVolume(x0, y0, z0, nx, ny, nz)
	return sliceView{f64: sub}, err
}

// coarse downsamples the view by the given number of wavelet levels at its
// native precision.
func (v sliceView) coarse(k wavelet.Kernel, levels, workers int) (sliceView, error) {
	if v.f32 != nil {
		c, err := transform.CoarseApproximation(v.f32, k, levels, workers)
		return sliceView{f32: c}, err
	}
	c, err := transform.CoarseApproximation(v.f64, k, levels, workers)
	return sliceView{f64: c}, err
}

// sliceImage renders the z=k plane at the view's native precision.
func (v sliceView) sliceImage(k int) (*render.Image, error) {
	if v.f32 != nil {
		return render.SliceXY(v.f32, k)
	}
	return render.SliceXY(v.f64, k)
}

// mipImage renders a maximum-intensity projection at the view's native
// precision.
func (v sliceView) mipImage(axis render.MIPAxis) (*render.Image, error) {
	if v.f32 != nil {
		return render.MIP(v.f32, axis)
	}
	return render.MIP(v.f64, axis)
}

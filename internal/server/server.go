// Package server is the online read path for compressed containers: an
// HTTP service that mounts one or more .stw containers and serves time
// slices, axis-aligned crops, multiresolution previews, and rendered
// quick-look images without the client ever touching wavelet code.
//
// The hot path is engineered around one observation: decompressing a
// window is expensive (tens to hundreds of milliseconds) while copying
// bytes out of a decompressed window is nearly free. So the server keeps a
// byte-budgeted LRU cache of decompressed windows, coalesces concurrent
// requests for the same uncached window into a single decompression
// (flightGroup), and bounds the number of decompressions in flight with a
// semaphore so a cold-cache burst degrades to queueing instead of memory
// exhaustion. Windows too large to ever fit the cache budget fall back to
// core.DecompressSlice, which skips the spatial inverse for every slice
// except the requested one.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"stwave/internal/core"
	"stwave/internal/obs"
	"stwave/internal/storage"
)

// Config tunes the server's resource envelope.
type Config struct {
	// CacheBytes bounds the decompressed-window cache (bytes of float64
	// samples). <= 0 disables caching entirely. Rule of thumb: one window
	// costs Nx*Ny*Nz*T*8 bytes; size the budget to hold the working set of
	// windows your clients scrub across.
	CacheBytes int64
	// MaxDecompress bounds concurrent window decompressions. <= 0 means
	// GOMAXPROCS.
	MaxDecompress int
	// RequestTimeout bounds each data request end to end. <= 0 disables.
	RequestTimeout time.Duration
	// Degraded makes mounts tolerate corrupt windows instead of refusing
	// the whole container: every window is checksum-verified at mount,
	// corrupt ones are excluded from serving (requests for them answer
	// 410 Gone) while keeping their span in the timeline so every other
	// window's global time index is unchanged, and the damage is surfaced
	// through /healthz and the corrupt_windows metric. Without it, a
	// mount fails on the first unreadable window header.
	Degraded bool
	// TraceRequests records a span tree for every data request (handler →
	// cache → storage → decode) into a bounded ring served at
	// /debug/traces. Off by default: each traced request allocates a few
	// spans.
	TraceRequests bool
	// Pprof mounts the net/http/pprof profiling endpoints under
	// /debug/pprof/. Off by default: profiles expose internals and cost
	// CPU while running, so production servers opt in explicitly.
	Pprof bool
}

// DefaultConfig returns a sensible laptop-scale envelope: 256 MB of cache,
// one decompression per CPU, 30 s per request.
func DefaultConfig() Config {
	return Config{
		CacheBytes:     256 << 20,
		MaxDecompress:  runtime.GOMAXPROCS(0),
		RequestTimeout: 30 * time.Second,
	}
}

// windowMeta is the per-window index built at mount time from 40-byte
// header reads: enough to map a global time index to (window, local slice)
// and to decide cache admission before decompressing anything.
type windowMeta struct {
	info       core.WindowInfo
	startSlice int
}

// mount is one dataset: a container reader plus its window index. The
// reader is shared by all requests (ReadWindow is ReadAt-based and
// goroutine-safe). bad tracks windows known corrupt — populated by the
// degraded-mount verification scan and grown at read time when a CRC
// failure is first discovered.
type mount struct {
	name    string
	path    string
	r       *storage.ContainerReader
	windows []windowMeta
	slices  int
	gaps    int             // journaled gap entries (windows shed at ingest)
	ref     core.WindowInfo // first readable window header (dims, kernels)

	mu  sync.Mutex
	bad map[int]bool
}

// markBad records window wi as corrupt, reporting whether it was newly
// discovered (so the corrupt_windows metric counts each window once).
func (m *mount) markBad(wi int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bad[wi] {
		return false
	}
	m.bad[wi] = true
	return true
}

// isBad reports whether window wi is known corrupt.
func (m *mount) isBad(wi int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bad[wi]
}

// badCount returns how many of the mount's windows are known corrupt.
func (m *mount) badCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.bad)
}

// codecNames returns the coefficient backends the mount's readable
// windows use — normally one name; mixed containers list all, sorted.
func (m *mount) codecNames() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[string]bool{}
	for i := range m.windows {
		if m.bad[i] || m.windows[i].info.Gap != nil {
			continue
		}
		seen[m.windows[i].info.Codec.String()] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// precisionNames returns the sample precisions the mount's readable
// windows use — normally one of "f64"/"f32"; mixed containers list both,
// sorted, so the census surfaces per-dataset precision at a glance.
func (m *mount) precisionNames() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[string]bool{}
	for i := range m.windows {
		if m.bad[i] || m.windows[i].info.Gap != nil {
			continue
		}
		seen[m.windows[i].info.Precision.String()] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// locate maps a global time index to (window index, slice within window).
func (m *mount) locate(t int) (int, int, error) {
	if t < 0 || t >= m.slices {
		return 0, 0, notFound("time index %d out of range [0,%d)", t, m.slices)
	}
	wi := sort.Search(len(m.windows), func(i int) bool {
		return m.windows[i].startSlice+m.windows[i].info.NumSlices > t
	})
	return wi, t - m.windows[wi].startSlice, nil
}

// Server serves mounted containers over HTTP. Create with New, add
// datasets with Mount/MountReader before serving, then expose Handler().
type Server struct {
	cfg     Config
	mounts  map[string]*mount
	order   []string
	cache   *WindowCache
	flights flightGroup
	sem     chan struct{}
	metrics *Metrics
	traces  *traceRing
}

// New creates an empty server with the given resource envelope.
func New(cfg Config) *Server {
	if cfg.MaxDecompress <= 0 {
		cfg.MaxDecompress = runtime.GOMAXPROCS(0)
	}
	m := newMetrics()
	cache := NewWindowCache(cfg.CacheBytes)
	cache.hits, cache.misses = m.CacheHits, m.CacheMisses
	return &Server{
		cfg:     cfg,
		mounts:  make(map[string]*mount),
		cache:   cache,
		sem:     make(chan struct{}, cfg.MaxDecompress),
		metrics: m,
		traces:  newTraceRing(traceRingSize),
	}
}

// Mount opens the container at path and serves it under the given dataset
// name. Not safe to call concurrently with request handling: mount the
// topology first, then serve.
func (s *Server) Mount(name, path string) error {
	r, err := storage.OpenContainer(path)
	if err != nil {
		return err
	}
	if err := s.MountReader(name, r); err != nil {
		r.Close() //stlint:ignore uncheckederr releasing a just-opened reader on an error path already being reported
		return err
	}
	s.mounts[name].path = path
	return nil
}

// MountReader serves an already-open container under the given dataset
// name. The server takes ownership of the reader (Close closes it).
func (s *Server) MountReader(name string, r *storage.ContainerReader) error {
	if name == "" {
		return fmt.Errorf("server: empty dataset name")
	}
	if _, dup := s.mounts[name]; dup {
		return fmt.Errorf("server: dataset %q already mounted", name)
	}
	if r.NumWindows() == 0 {
		return fmt.Errorf("server: dataset %q has no windows", name)
	}
	m := &mount{name: name, r: r, windows: make([]windowMeta, r.NumWindows()), bad: make(map[int]bool)}
	// First pass: read every window header, so the reference window (the
	// first readable one) is known before the timeline is laid out.
	infos := make([]*core.WindowInfo, r.NumWindows())
	haveRef := false
	for i := 0; i < r.NumWindows(); i++ {
		info, err := r.WindowInfo(i)
		if err != nil {
			if !s.cfg.Degraded {
				return fmt.Errorf("server: scanning %q: %w", name, err)
			}
			m.bad[i] = true
			s.metrics.CorruptWindows.Add(1)
			continue
		}
		infos[i] = &info
		// Gap markers (windows shed under ingest backpressure) are
		// first-class timeline entries but carry no field data, so they can
		// neither anchor the reference geometry nor be served.
		if info.Gap != nil {
			m.gaps++
			continue
		}
		if !haveRef {
			m.ref, haveRef = info, true
		}
	}
	if !haveRef {
		return fmt.Errorf("server: dataset %q has no readable windows", name)
	}
	// Second pass: lay out the timeline. A window whose header is
	// unreadable is charged the reference window's span — windows are
	// uniform in practice (the last may be shorter) — so every later
	// window keeps its global time index; its own span answers 410 Gone
	// like any corrupt window, instead of silently shifting requests onto
	// the wrong physical time step.
	for i := range infos {
		info := m.ref
		if infos[i] != nil {
			info = *infos[i]
			// Gaps have no payload to verify and are not corruption: their
			// NumSlices keeps the timeline aligned, their spans answer 410.
			if s.cfg.Degraded && info.Gap == nil {
				if err := r.VerifyWindow(i); err != nil && m.markBad(i) {
					// Payload corrupt but header intact: keep the window's
					// span in the timeline and answer its slices with 410.
					s.metrics.CorruptWindows.Add(1)
				}
			}
		}
		m.windows[i] = windowMeta{info: info, startSlice: m.slices}
		m.slices += info.NumSlices
	}
	s.mounts[name] = m
	s.order = append(s.order, name)
	return nil
}

// Close closes every mounted container.
func (s *Server) Close() error {
	var first error
	for _, name := range s.order {
		if err := s.mounts[name].r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Metrics exposes the server's counters (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache exposes the window cache (benchmarks flush it to force the cold
// path).
func (s *Server) Cache() *WindowCache { return s.cache }

// acquireSem takes one decompression slot, honoring cancellation while
// queued.
func (s *Server) acquireSem(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// cacheState labels how a request's data was obtained, surfaced in the
// X-Cache response header.
type cacheState string

const (
	stateHit       cacheState = "hit"       // served from the window cache
	stateMiss      cacheState = "miss"      // this request ran the decompression
	stateCoalesced cacheState = "coalesced" // waited on another request's decompression
	stateUncached  cacheState = "uncached"  // window exceeds cache budget; single-slice decode
)

// window returns the decompressed window wi of mount m, consulting the
// cache and coalescing concurrent misses. The returned window is shared:
// callers must not modify it.
func (s *Server) window(ctx context.Context, m *mount, wi int) (cachedWindow, cacheState, error) {
	return s.windowLevel(ctx, m, wi, -1)
}

// decompressWindow runs the full decode at the container's native
// precision: float32 windows reconstruct through the 4-byte pipeline and
// are cached at half the budget cost.
func decompressWindow(ctx context.Context, cw *core.CompressedWindow) (cachedWindow, error) {
	if cw.Precision == core.Float32 {
		w, err := core.Decompress32Ctx(ctx, cw)
		return cache32(w), err
	}
	w, err := core.DecompressCtx(ctx, cw)
	return cache64(w), err
}

// decompressWindowLevels is decompressWindow for level-bounded decodes of
// progressive windows.
func decompressWindowLevels(ctx context.Context, cw *core.CompressedWindow, maxLevel int) (cachedWindow, error) {
	if cw.Precision == core.Float32 {
		w, err := core.DecompressLevels32Ctx(ctx, cw, maxLevel)
		return cache32(w), err
	}
	w, err := core.DecompressLevelsCtx(ctx, cw, maxLevel)
	return cache64(w), err
}

// windowLevel is window generalized to level-bounded decodes of
// progressive windows: maxLevel < 0 decompresses the whole window;
// maxLevel >= 0 reads only the byte prefix covering level groups
// 0..maxLevel and reconstructs at the matching coarse dims. Each depth is
// its own cache entry and its own flight, so a level-0 preview neither
// waits on nor evicts the full reconstruction. Hit/miss accounting lives
// inside cache.Get — the flight's re-check uses the uncounted peek — so
// every call here counts exactly one hit or one miss. Callers pass
// maxLevel >= 0 only for windows whose header says Progressive.
func (s *Server) windowLevel(ctx context.Context, m *mount, wi, maxLevel int) (cachedWindow, cacheState, error) {
	levels := 0
	if maxLevel >= 0 {
		levels = maxLevel + 1
	}
	key := windowKey{dataset: m.name, window: wi, levels: levels}
	_, spc := obs.Start(ctx, "cache.lookup")
	w, ok := s.cache.Get(key)
	if ok {
		spc.SetAttr("result", "hit")
		spc.End()
		return w, stateHit, nil
	}
	spc.SetAttr("result", "miss")
	spc.End()
	flightKey := "w\x00" + m.name + "\x00" + strconv.Itoa(wi) + "\x00" + strconv.Itoa(levels)
	val, coalesced, err := s.flights.Do(ctx, flightKey, func(workCtx context.Context) (any, error) {
		// Re-check under the flight: a previous flight may have populated
		// the cache between our Get and Do. peek, not Get — this request
		// already counted its miss.
		if w, ok := s.cache.peek(key); ok {
			return w, nil
		}
		if err := s.acquireSem(workCtx); err != nil {
			return nil, err
		}
		defer func() { <-s.sem }()
		start := time.Now()
		var w cachedWindow
		if maxLevel >= 0 {
			cw, bytesRead, err := m.r.ReadWindowLevelsCtx(workCtx, wi, maxLevel)
			if err != nil {
				s.noteCorrupt(m, wi, err)
				return nil, err
			}
			w, err = decompressWindowLevels(workCtx, cw, maxLevel)
			if err != nil {
				return nil, err
			}
			s.metrics.PartialDecodes.Add(1)
			if total, err := m.r.WindowSizeBytes(wi); err == nil && total > bytesRead {
				s.metrics.ProgressiveBytesSaved.Add(total - bytesRead)
			}
		} else {
			cw, err := m.r.ReadWindowCtx(workCtx, wi)
			if err != nil {
				s.noteCorrupt(m, wi, err)
				return nil, err
			}
			w, err = decompressWindow(workCtx, cw)
			if err != nil {
				return nil, err
			}
		}
		s.metrics.Decompressions.Add(1)
		s.metrics.DecompressLatency.ObserveSince(start)
		s.cache.Put(key, w)
		return w, nil
	})
	if err != nil {
		return cachedWindow{}, stateMiss, err
	}
	state := stateMiss
	if coalesced {
		s.metrics.Coalesced.Add(1)
		state = stateCoalesced
	}
	return val.(cachedWindow), state, nil
}

// noteCorrupt records a newly discovered corrupt window in the mount and
// the corrupt_windows metric. Reads that fail for other reasons
// (transient I/O, cancellation) are not marked — only checksum failures,
// which are a durable property of the bytes on disk.
func (s *Server) noteCorrupt(m *mount, wi int, err error) {
	if errors.Is(err, storage.ErrCorrupt) && m.markBad(wi) {
		s.metrics.CorruptWindows.Add(1)
	}
}

// servable maps a global time index to (window, local slice), rejecting
// gaps and known-corrupt windows with the status the handlers surface.
func (m *mount) servable(t int) (int, int, error) {
	wi, local, err := m.locate(t)
	if err != nil {
		return 0, 0, err
	}
	info := m.windows[wi].info
	if info.Gap != nil {
		return 0, 0, gone("time index %d falls in a gap: window %d shed at ingest (%s, t=[%g,%g])",
			t, wi, info.Gap.Reason, info.Gap.T0, info.Gap.T1)
	}
	if m.isBad(wi) {
		return 0, 0, gone("time index %d falls in corrupt window %d", t, wi)
	}
	return wi, local, nil
}

// sliceLevel returns the field at global time index t reconstructed from
// only the coarsest maxLevel+1 detail levels, at the matching coarse dims
// (transform.CoarseDims of the grid at depth SpatialLevels-maxLevel).
// Progressive windows take the partial-read path — finer level groups are
// never read from disk or decompressed. Legacy windows fall back to a
// full decode followed by spatial downsampling, so the endpoint contract
// (dims, semantics) is uniform across container generations; only the
// I/O saving is progressive-only.
func (s *Server) sliceLevel(ctx context.Context, m *mount, t, maxLevel int) (sliceView, float64, cacheState, error) {
	wi, local, err := m.servable(t)
	if err != nil {
		return sliceView{}, 0, stateMiss, err
	}
	meta := m.windows[wi]
	if maxLevel < 0 || maxLevel > meta.info.SpatialLevels {
		return sliceView{}, 0, stateMiss, badRequest("levels must be in [0, %d], got %d", meta.info.SpatialLevels, maxLevel)
	}
	if maxLevel == meta.info.SpatialLevels {
		return s.slice(ctx, m, t)
	}
	if !meta.info.Progressive {
		v, tv, state, err := s.slice(ctx, m, t)
		if err != nil {
			return sliceView{}, 0, state, err
		}
		coarse, err := v.coarse(meta.info.SpatialKernel, meta.info.SpatialLevels-maxLevel, 0)
		if err != nil {
			return sliceView{}, 0, state, err
		}
		return coarse, tv, state, nil
	}
	w, state, err := s.windowLevel(ctx, m, wi, maxLevel)
	if err != nil {
		return sliceView{}, 0, state, err
	}
	return w.slice(local), w.timeAt(local, float64(t)), state, nil
}

// slice returns the field at global time index t of the named dataset. For
// cacheable windows it decompresses (or reuses) the whole window; for
// windows larger than the cache budget it decodes just the one slice. The
// returned field may be shared with other requests: treat as read-only.
func (s *Server) slice(ctx context.Context, m *mount, t int) (sliceView, float64, cacheState, error) {
	wi, local, err := m.servable(t)
	if err != nil {
		return sliceView{}, 0, stateMiss, err
	}
	meta := m.windows[wi]
	if s.cache.Admits(meta.info.RawSizeBytes()) {
		w, state, err := s.window(ctx, m, wi)
		if err != nil {
			return sliceView{}, 0, state, err
		}
		return w.slice(local), w.timeAt(local, float64(t)), state, nil
	}
	// Uncacheable path: the window can never fit the budget, so skip the
	// full decompression and reconstruct only the requested slice. Still
	// coalesced (per slice) and bounded by the semaphore.
	val, coalesced, err := s.flights.Do(ctx, "s\x00"+m.name+"\x00"+strconv.Itoa(wi)+"\x00"+strconv.Itoa(local), func(workCtx context.Context) (any, error) {
		if err := s.acquireSem(workCtx); err != nil {
			return nil, err
		}
		defer func() { <-s.sem }()
		start := time.Now()
		cw, err := m.r.ReadWindowCtx(workCtx, wi)
		if err != nil {
			s.noteCorrupt(m, wi, err)
			return nil, err
		}
		_, spd := obs.Start(workCtx, "core.decompress_slice")
		var v sliceView
		if cw.Precision == core.Float32 {
			f, derr := core.DecompressSlice32(cw, local)
			err, v = derr, view32(f)
		} else {
			f, derr := core.DecompressSlice(cw, local)
			err, v = derr, view64(f)
		}
		spd.End()
		if err != nil {
			return nil, err
		}
		s.metrics.SliceDecodes.Add(1)
		s.metrics.DecompressLatency.ObserveSince(start)
		return v, nil
	})
	if err != nil {
		return sliceView{}, 0, stateUncached, err
	}
	if coalesced {
		s.metrics.Coalesced.Add(1)
	}
	return val.(sliceView), float64(t), stateUncached, nil
}

package server

import (
	"sync/atomic"
	"time"
)

// histBuckets are the upper bounds (exclusive) of the decompress-latency
// histogram, in milliseconds, doubling per bucket; the final implicit
// bucket catches everything slower.
var histBuckets = [...]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation. Buckets are non-cumulative counts.
type Histogram struct {
	counts [len(histBuckets) + 1]atomic.Int64
	sumNs  atomic.Int64
	n      atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(histBuckets) && ms >= histBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.n.Add(1)
}

// HistogramSnapshot is the JSON-friendly view of a Histogram.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	MeanMs  float64   `json:"mean_ms"`
	UpperMs []float64 `json:"bucket_upper_ms"`
	Counts  []int64   `json:"bucket_counts"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.n.Load(),
		UpperMs: histBuckets[:],
		Counts:  make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.MeanMs = float64(h.sumNs.Load()) / float64(s.Count) / float64(time.Millisecond)
	}
	return s
}

// Metrics holds the server's expvar-style counters. All fields are safe for
// concurrent update; /metrics serves a Snapshot as JSON.
type Metrics struct {
	Requests       atomic.Int64 // data requests accepted (excludes /healthz, /metrics)
	Errors         atomic.Int64 // requests answered with a non-2xx status
	CacheHits      atomic.Int64 // window served from the decompressed-window cache
	CacheMisses    atomic.Int64 // window had to be decompressed (or fetched uncached)
	Coalesced      atomic.Int64 // requests that piggybacked on another request's decompression
	Decompressions atomic.Int64 // full-window decompressions actually executed
	SliceDecodes   atomic.Int64 // single-slice decodes on the uncacheable path
	BytesServed    atomic.Int64 // response payload bytes written
	CorruptWindows atomic.Int64 // windows known corrupt across all mounts (found at mount scan or read time)

	DecompressLatency Histogram
}

// MetricsSnapshot is the JSON document served at /metrics.
type MetricsSnapshot struct {
	Requests       int64             `json:"requests"`
	Errors         int64             `json:"errors"`
	CacheHits      int64             `json:"cache_hits"`
	CacheMisses    int64             `json:"cache_misses"`
	Coalesced      int64             `json:"coalesced"`
	Decompressions int64             `json:"decompressions"`
	SliceDecodes   int64             `json:"slice_decodes"`
	BytesServed    int64             `json:"bytes_served"`
	CorruptWindows int64             `json:"corrupt_windows"`
	Decompress     HistogramSnapshot `json:"decompress_latency"`
	Cache          CacheStats        `json:"cache"`
}

// Snapshot captures all counters at one instant (per-counter atomicity; the
// set is not a consistent cut, which is fine for monitoring).
func (m *Metrics) Snapshot(cache CacheStats) MetricsSnapshot {
	return MetricsSnapshot{
		Requests:       m.Requests.Load(),
		Errors:         m.Errors.Load(),
		CacheHits:      m.CacheHits.Load(),
		CacheMisses:    m.CacheMisses.Load(),
		Coalesced:      m.Coalesced.Load(),
		Decompressions: m.Decompressions.Load(),
		SliceDecodes:   m.SliceDecodes.Load(),
		BytesServed:    m.BytesServed.Load(),
		CorruptWindows: m.CorruptWindows.Load(),
		Decompress:     m.DecompressLatency.Snapshot(),
		Cache:          cache,
	}
}

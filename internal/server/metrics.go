package server

import (
	"stwave/internal/obs"
)

// Metrics holds the server's counters, backed by a per-Server
// obs.Registry so /metrics and /debug/vars read the same instruments.
// The registry is per-Server rather than process-wide so concurrently
// constructed servers (tests, embedders) never see each other's traffic;
// pipeline-layer metrics (transform, storage, core) land in obs.Default()
// and are surfaced separately. All fields are safe for concurrent update.
type Metrics struct {
	reg *obs.Registry

	Requests       *obs.Counter // data requests accepted (excludes /healthz, /metrics)
	Errors         *obs.Counter // requests answered with a non-2xx status
	CacheHits      *obs.Counter // window served from the decompressed-window cache
	CacheMisses    *obs.Counter // window had to be decompressed (or fetched uncached)
	Coalesced      *obs.Counter // requests that piggybacked on another request's decompression
	Decompressions *obs.Counter // full-window decompressions actually executed
	SliceDecodes   *obs.Counter // single-slice decodes on the uncacheable path
	BytesServed    *obs.Counter // response payload bytes written
	CorruptWindows *obs.Counter // windows known corrupt across all mounts (found at mount scan or read time)
	// PartialDecodes counts level-bounded decodes of progressive windows:
	// requests that read and reconstructed only a coarse byte prefix.
	PartialDecodes *obs.Counter
	// ProgressiveBytesSaved accumulates the payload bytes partial reads
	// did NOT fetch (full window size minus prefix read) — the observable
	// I/O saving of the level-major layout.
	ProgressiveBytesSaved *obs.Counter

	// DecompressLatency is the end-to-end read+decompress latency in
	// seconds, covering both full-window and single-slice paths.
	DecompressLatency *obs.Histogram
}

// newMetrics builds the server's instruments in a fresh registry, under
// the "server." name prefix the /debug/vars endpoint exposes.
func newMetrics() *Metrics {
	reg := obs.NewRegistry()
	return &Metrics{
		reg:                   reg,
		Requests:              reg.Counter("server.requests_total"),
		Errors:                reg.Counter("server.errors_total"),
		CacheHits:             reg.Counter("server.cache_hits_total"),
		CacheMisses:           reg.Counter("server.cache_misses_total"),
		Coalesced:             reg.Counter("server.coalesced_total"),
		Decompressions:        reg.Counter("server.decompressions_total"),
		SliceDecodes:          reg.Counter("server.slice_decodes_total"),
		BytesServed:           reg.Counter("server.bytes_served_total"),
		CorruptWindows:        reg.Counter("server.corrupt_windows"),
		PartialDecodes:        reg.Counter("server.partial_decodes_total"),
		ProgressiveBytesSaved: reg.Counter("server.progressive_bytes_saved_total"),
		DecompressLatency:     reg.Histogram("server.decompress_seconds"),
	}
}

// Registry exposes the server's metrics registry (for /debug/vars and
// embedders that want to merge it into their own exposition).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// MetricsSnapshot is the JSON document served at /metrics. The named
// fields are the server's own counters (stable since the first release);
// Pipeline carries the process-wide registry — transform stage timings,
// storage latencies, coder throughputs — keyed by metric name.
type MetricsSnapshot struct {
	Requests       int64                 `json:"requests"`
	Errors         int64                 `json:"errors"`
	CacheHits      int64                 `json:"cache_hits"`
	CacheMisses    int64                 `json:"cache_misses"`
	Coalesced      int64                 `json:"coalesced"`
	Decompressions int64                 `json:"decompressions"`
	SliceDecodes   int64                 `json:"slice_decodes"`
	BytesServed    int64                 `json:"bytes_served"`
	CorruptWindows int64                 `json:"corrupt_windows"`
	PartialDecodes int64                 `json:"partial_decodes"`
	BytesSaved     int64                 `json:"progressive_bytes_saved"`
	Decompress     obs.HistogramSnapshot `json:"decompress_latency"`
	Cache          CacheStats            `json:"cache"`
	Pipeline       obs.Snapshot          `json:"pipeline"`
}

// Snapshot captures all counters at one instant (per-counter atomicity;
// the set is not a consistent cut, which is fine for monitoring). It also
// refreshes the derived server.cache_hit_ratio gauge.
func (m *Metrics) Snapshot(cache CacheStats) MetricsSnapshot {
	hits, misses := m.CacheHits.Load(), m.CacheMisses.Load()
	if hits+misses > 0 {
		m.reg.Gauge("server.cache_hit_ratio").Set(float64(hits) / float64(hits+misses))
	}
	return MetricsSnapshot{
		Requests:       m.Requests.Load(),
		Errors:         m.Errors.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		Coalesced:      m.Coalesced.Load(),
		Decompressions: m.Decompressions.Load(),
		SliceDecodes:   m.SliceDecodes.Load(),
		BytesServed:    m.BytesServed.Load(),
		CorruptWindows: m.CorruptWindows.Load(),
		PartialDecodes: m.PartialDecodes.Load(),
		BytesSaved:     m.ProgressiveBytesSaved.Load(),
		Decompress:     m.DecompressLatency.Snapshot(),
		Cache:          cache,
	}
}

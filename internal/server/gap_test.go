package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/storage"
)

// gapSlice fills the same deterministic pattern buildContainer uses.
func gapSlice(d grid.Dims, ts int) *grid.Field3D {
	f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
	for i := range f.Data {
		f.Data[i] = math.Sin(float64(i)*0.1 + float64(ts)*0.2)
	}
	return f
}

// buildGapContainer writes a container whose timeline is laid out by
// layout: 'w' entries are 4-slice compressed windows, 'g' entries 4-slice
// shed-gap markers, in order, covering consecutive global time indices.
func buildGapContainer(t testing.TB, d grid.Dims, layout string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "gaps.stw")
	opts := core.DefaultOptions()
	opts.WindowSize = 4
	opts.Ratio = 8
	comp, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	slice := 0
	for _, kind := range layout {
		switch kind {
		case 'w':
			win := grid.NewWindow(d)
			for i := 0; i < 4; i++ {
				if err := win.Append(gapSlice(d, slice), float64(slice)); err != nil {
					t.Fatal(err)
				}
				slice++
			}
			cw, err := comp.CompressWindow(win)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := w.Append(cw); err != nil {
				t.Fatal(err)
			}
		case 'g':
			g := core.GapMarker{Slices: 4, T0: float64(slice), T1: float64(slice + 3), Reason: core.GapShed}
			if _, err := w.AppendGap(g); err != nil {
				t.Fatal(err)
			}
			slice += 4
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMountWithGaps: gap entries mount without Degraded mode, keep the
// timeline aligned, answer their span with 410 Gone, and are counted as
// gaps — never as corruption.
func TestMountWithGaps(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	path := buildGapContainer(t, d, "wgw")
	s := New(DefaultConfig()) // Degraded NOT set: gaps are first-class
	if err := s.Mount("test", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	// Slices on either side of the gap serve normally.
	for _, tt := range []int{0, 3, 8, 11} {
		resp, _ := get(t, ts.URL+"/v1/test/slice?t="+strconv.Itoa(tt))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("t=%d: status %d, want 200", tt, resp.StatusCode)
		}
	}
	// The gap's span answers 410 Gone — the data was shed, not lost track of.
	for _, tt := range []int{4, 7} {
		resp, _ := get(t, ts.URL+"/v1/test/slice?t="+strconv.Itoa(tt))
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("t=%d: status %d, want 410", tt, resp.StatusCode)
		}
	}
	// Timeline alignment: slice 8 (first slice after the gap) must carry
	// its own physical time, not the gap's.
	resp, body := get(t, ts.URL+"/v1/test/slice?t=8&format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json slice: status %d: %s", resp.StatusCode, body)
	}
	var js struct {
		Time float64 `json:"time"`
	}
	if err := json.Unmarshal(body, &js); err != nil {
		t.Fatal(err)
	}
	if js.Time != 8 {
		t.Fatalf("slice after gap reports time %g, want 8 (timeline shifted)", js.Time)
	}

	// Gaps are not corruption: health stays ok, corrupt_windows stays 0.
	if n := s.Metrics().CorruptWindows.Load(); n != 0 {
		t.Fatalf("corrupt_windows = %d after mounting gaps, want 0", n)
	}
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hz struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" {
		t.Fatalf("healthz status %q, want ok (gaps are not damage)", hz.Status)
	}

	// /v1/datasets reports the gap count and the full (gap-inclusive)
	// slice span.
	_, body = get(t, ts.URL+"/v1/datasets")
	var ds []struct {
		Windows int    `json:"windows"`
		Slices  int    `json:"slices"`
		Gaps    int    `json:"gap_windows"`
		Corrupt int    `json:"corrupt_windows"`
		Codec   string `json:"codec"`
	}
	if err := json.Unmarshal(body, &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Windows != 3 || ds[0].Slices != 12 || ds[0].Gaps != 1 || ds[0].Corrupt != 0 {
		t.Fatalf("datasets = %+v, want 3 entries / 12 slices / 1 gap / 0 corrupt", ds)
	}
	if ds[0].Codec != "sparse" {
		t.Fatalf("codec = %q; the gap entry must not contribute a codec name", ds[0].Codec)
	}
}

// TestMountGapFirst: a container that opens with a gap still mounts — the
// reference geometry comes from the first real window, and the gap's span
// precedes it in the timeline.
func TestMountGapFirst(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	path := buildGapContainer(t, d, "gw")
	s := New(DefaultConfig())
	if err := s.Mount("test", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	resp, _ := get(t, ts.URL+"/v1/test/slice?t=0")
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("t=0 status %d, want 410", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/test/slice?t=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("t=4 status %d, want 200", resp.StatusCode)
	}
}

// TestMountGapsDegraded: Degraded mode must not try to checksum-verify
// gap entries nor report them as corrupt.
func TestMountGapsDegraded(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	path := buildGapContainer(t, d, "wgw")
	cfg := DefaultConfig()
	cfg.Degraded = true
	s := New(cfg)
	if err := s.Mount("test", path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if n := s.Metrics().CorruptWindows.Load(); n != 0 {
		t.Fatalf("degraded mount counted %d gaps as corrupt", n)
	}
	if m := s.mounts["test"]; m.gaps != 1 || m.slices != 12 {
		t.Fatalf("mount has %d gaps / %d slices, want 1 / 12", m.gaps, m.slices)
	}
}

// TestMountAllGaps: a container of nothing but gaps has no reference
// geometry and must refuse to mount with a clear error.
func TestMountAllGaps(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	path := buildGapContainer(t, d, "gg")
	s := New(DefaultConfig())
	if err := s.Mount("test", path); err == nil {
		t.Fatal("all-gap container mounted; want no-readable-windows error")
	}
}

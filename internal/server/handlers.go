package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"stwave/internal/obs"
	"stwave/internal/render"
	"stwave/internal/storage"
)

// Handler returns the server's HTTP interface:
//
//	GET /healthz                  liveness + mount count
//	GET /metrics                  counters, latency histogram, cache stats, pipeline metrics
//	GET /debug/vars               merged obs registries (server + process-wide) as JSON
//	GET /debug/traces             recent request span trees (needs Config.TraceRequests)
//	GET /debug/pprof/...          net/http/pprof profiles (needs Config.Pprof)
//	GET /v1/datasets              list mounted datasets
//	GET /v1/{dataset}/slice       one time slice     ?t=12&format=raw|json — add &levels=K
//	                              to reconstruct from only the K+1 coarsest detail
//	                              levels (progressive containers read just that byte
//	                              prefix from disk)
//	GET /v1/{dataset}/crop        subvolume          ?t=&x0=&y0=&z0=&nx=&ny=&nz=&format=raw|json
//	GET /v1/{dataset}/preview     coarse approximation ?t=&levels=2&format=raw|json
//	GET /v1/{dataset}/render      quick-look image   ?t=&kind=slice|mip&z=&axis=x|y|z&format=pgm|ppm
//	GET /v1/{dataset}/window/{w}  raw serialized window bytes; supports HTTP Range,
//	                              so clients holding the level table can fetch
//	                              individual level groups for streamed refinement
//	GET /v1/{dataset}/window/{w}/levels  level-offset table as JSON: the byte range
//	                              and CRC of each detail level group
//
// raw responses are little-endian float32 sample streams (x fastest) with
// the extents in the X-STW-Dims header; every data response carries an
// X-Cache header saying how the window was obtained.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", obs.Handler(s.metrics.Registry(), obs.Default()))
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	if s.cfg.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	mux.HandleFunc("GET /v1/{dataset}/slice", s.data(s.handleSlice))
	mux.HandleFunc("GET /v1/{dataset}/crop", s.data(s.handleCrop))
	mux.HandleFunc("GET /v1/{dataset}/preview", s.data(s.handlePreview))
	mux.HandleFunc("GET /v1/{dataset}/render", s.data(s.handleRender))
	mux.HandleFunc("GET /v1/{dataset}/window/{w}", s.data(s.handleWindowBytes))
	mux.HandleFunc("GET /v1/{dataset}/window/{w}/levels", s.data(s.handleWindowLevels))
	return mux
}

// httpError carries a status code through the handler return path.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// gone marks data lost to corruption: unlike a 5xx, retrying will not
// bring it back, and unlike a 404 the time index is valid.
func gone(format string, args ...any) error {
	return &httpError{status: http.StatusGone, msg: fmt.Sprintf(format, args...)}
}

// countingWriter tracks payload bytes for the BytesServed counter.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.n += int64(n)
	return n, err
}

// data wraps a dataset handler with mount lookup, per-request timeout,
// metrics, request tracing, and error-to-status mapping.
func (s *Server) data(h func(http.ResponseWriter, *http.Request, *mount) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Requests.Add(1)
		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		var root *obs.Span
		if s.cfg.TraceRequests {
			ctx, root = obs.StartRoot(ctx, "handler "+r.URL.Path)
			root.SetAttr("query", r.URL.RawQuery)
			defer func() {
				root.End()
				if root != nil {
					s.traces.add(root.Tree())
				}
			}()
		}
		m, ok := s.mounts[r.PathValue("dataset")]
		if !ok {
			s.fail(w, notFound("unknown dataset %q", r.PathValue("dataset")))
			return
		}
		cw := &countingWriter{ResponseWriter: w}
		if err := h(cw, r.WithContext(ctx), m); err != nil {
			s.fail(w, err)
			return
		}
		s.metrics.BytesServed.Add(cw.n)
	}
}

// fail maps an error to an HTTP status and counts it.
func (s *Server) fail(w http.ResponseWriter, err error) {
	s.metrics.Errors.Add(1)
	var he *httpError
	switch {
	case errors.As(err, &he):
		http.Error(w, he.msg, he.status)
	case errors.Is(err, storage.ErrCorrupt):
		// The bytes on disk fail their checksum; retrying cannot help.
		http.Error(w, err.Error(), http.StatusGone)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "request timed out", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Degraded, not dead: corrupt windows mean some time indices answer
	// 410, but every intact window still serves. Orchestrators should keep
	// routing traffic and page a human to run stfsck.
	status := "ok"
	var perDataset map[string]int
	if corrupt := s.metrics.CorruptWindows.Load(); corrupt > 0 {
		status = "degraded"
		perDataset = make(map[string]int)
		for _, name := range s.order {
			if n := s.mounts[name].badCount(); n > 0 {
				perDataset[name] = n
			}
		}
	}
	resp := map[string]any{
		"status":          status,
		"datasets":        len(s.mounts),
		"corrupt_windows": s.metrics.CorruptWindows.Load(),
	}
	if perDataset != nil {
		resp["corrupt_by_dataset"] = perDataset
	}
	writeJSON(w, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot(s.cache.Stats())
	// Pipeline metrics (transform stage timings, storage latencies, coder
	// throughputs) accumulate process-wide, not per server.
	snap.Pipeline = obs.Default().Snapshot()
	writeJSON(w, snap)
}

// datasetInfo is one entry of /v1/datasets.
type datasetInfo struct {
	Name      string `json:"name"`
	Windows   int    `json:"windows"`
	Slices    int    `json:"slices"`
	Dims      string `json:"dims"`
	Codec     string `json:"codec"`
	Precision string `json:"precision"`
	Corrupt   int    `json:"corrupt_windows,omitempty"`
	Gaps      int    `json:"gap_windows,omitempty"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	out := make([]datasetInfo, 0, len(s.order))
	for _, name := range s.order {
		m := s.mounts[name]
		out = append(out, datasetInfo{
			Name:      name,
			Windows:   len(m.windows),
			Slices:    m.slices,
			Dims:      m.ref.Dims.String(),
			Codec:     m.codecNames(),
			Precision: m.precisionNames(),
			Corrupt:   m.badCount(),
			Gaps:      m.gaps,
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request, m *mount) error {
	t, err := intParam(r, "t", 0)
	if err != nil {
		return err
	}
	// levels=K bounds the reconstruction to the K+1 coarsest detail
	// levels — the progressive read path. Absent means full quality.
	levels, err := intParam(r, "levels", -1)
	if err != nil {
		return err
	}
	var (
		v     sliceView
		tv    float64
		state cacheState
	)
	if levels >= 0 {
		v, tv, state, err = s.sliceLevel(r.Context(), m, t, levels)
	} else {
		v, tv, state, err = s.fetchSlice(r.Context(), m, t)
	}
	if err != nil {
		return err
	}
	return writeField(w, r, v, tv, state)
}

func (s *Server) handleCrop(w http.ResponseWriter, r *http.Request, m *mount) error {
	t, err := intParam(r, "t", 0)
	if err != nil {
		return err
	}
	box := [6]int{}
	for i, name := range []string{"x0", "y0", "z0", "nx", "ny", "nz"} {
		v, err := intParam(r, name, -1)
		if err != nil {
			return err
		}
		if v < 0 {
			return badRequest("crop requires %s", name)
		}
		box[i] = v
	}
	v, tv, state, err := s.fetchSlice(r.Context(), m, t)
	if err != nil {
		return err
	}
	sub, err := v.subVolume(box[0], box[1], box[2], box[3], box[4], box[5])
	if err != nil {
		return badRequest("%v", err)
	}
	return writeField(w, r, sub, tv, state)
}

func (s *Server) handlePreview(w http.ResponseWriter, r *http.Request, m *mount) error {
	t, err := intParam(r, "t", 0)
	if err != nil {
		return err
	}
	levels, err := intParam(r, "levels", 1)
	if err != nil {
		return err
	}
	if levels < 1 {
		return badRequest("levels must be >= 1, got %d", levels)
	}
	// A preview downsampled by N levels is the reconstruction from only
	// the SpatialLevels-N coarsest detail levels, so route it through the
	// level-bounded path: on progressive containers that reads a byte
	// prefix instead of decompressing the full window and then throwing
	// the detail away (the pre-v4 behavior), and either way the result is
	// cached at its own (window, depth) key. Previews coarser than the
	// decomposition clamp to the approximation band.
	wi, _, err := m.servable(t)
	if err != nil {
		return err
	}
	if maxLevel := m.windows[wi].info.SpatialLevels - levels; maxLevel >= 0 {
		v, tv, state, err := s.sliceLevel(r.Context(), m, t, maxLevel)
		if err != nil {
			return err
		}
		return writeField(w, r, v, tv, state)
	}
	// Deeper than the stored decomposition: no byte prefix maps to this
	// resolution, so reconstruct the approximation band's worth and keep
	// downsampling with the same spatial kernel the container was
	// compressed with (recorded in every window header).
	v, tv, state, err := s.fetchSlice(r.Context(), m, t)
	if err != nil {
		return err
	}
	coarse, err := v.coarse(m.ref.SpatialKernel, levels, 0)
	if err != nil {
		return badRequest("%v", err)
	}
	return writeField(w, r, coarse, tv, state)
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request, m *mount) error {
	t, err := intParam(r, "t", 0)
	if err != nil {
		return err
	}
	v, _, state, err := s.fetchSlice(r.Context(), m, t)
	if err != nil {
		return err
	}
	kind := paramOr(r, "kind", "slice")
	var im *render.Image
	switch kind {
	case "slice":
		z, err := intParam(r, "z", v.dims().Nz/2)
		if err != nil {
			return err
		}
		im, err = v.sliceImage(z)
		if err != nil {
			return badRequest("%v", err)
		}
	case "mip":
		var axis render.MIPAxis
		switch paramOr(r, "axis", "z") {
		case "x":
			axis = render.AlongX
		case "y":
			axis = render.AlongY
		case "z":
			axis = render.AlongZ
		default:
			return badRequest("axis must be x, y, or z")
		}
		im, err = v.mipImage(axis)
		if err != nil {
			return badRequest("%v", err)
		}
	default:
		return badRequest("kind must be slice or mip, got %q", kind)
	}
	w.Header().Set("X-Cache", string(state))
	switch format := paramOr(r, "format", "pgm"); format {
	case "pgm":
		w.Header().Set("Content-Type", "image/x-portable-graymap")
		return im.WritePGM(w)
	case "ppm":
		w.Header().Set("Content-Type", "image/x-portable-pixmap")
		return im.WritePPM(w)
	default:
		return badRequest("format must be pgm or ppm, got %q", format)
	}
}

// windowParam parses and bounds the {w} path segment.
func (s *Server) windowParam(r *http.Request, m *mount) (int, error) {
	wi, err := strconv.Atoi(r.PathValue("w"))
	if err != nil {
		return 0, badRequest("window must be an integer, got %q", r.PathValue("w"))
	}
	if wi < 0 || wi >= len(m.windows) {
		return 0, notFound("window %d out of range [0,%d)", wi, len(m.windows))
	}
	if m.windows[wi].info.Gap != nil {
		return 0, gone("window %d is a gap marker (shed at ingest)", wi)
	}
	if m.isBad(wi) {
		return 0, gone("window %d is corrupt", wi)
	}
	return wi, nil
}

// handleWindowBytes serves window w's serialized bytes verbatim, with
// HTTP Range support: a progressive-aware client fetches the level table
// once (see handleWindowLevels), then issues Range requests for exactly
// the level groups it wants, verifying each against the table's CRC —
// streamed refinement without any server-side decode.
func (s *Server) handleWindowBytes(w http.ResponseWriter, r *http.Request, m *mount) error {
	wi, err := s.windowParam(r, m)
	if err != nil {
		return err
	}
	sec, err := m.r.WindowSection(wi)
	if err != nil {
		return err
	}
	info := m.windows[wi].info
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-STW-Progressive", strconv.FormatBool(info.Progressive))
	w.Header().Set("X-STW-Levels", strconv.Itoa(info.SpatialLevels))
	// No modification time: container windows are immutable once written,
	// and a zero time suppresses Last-Modified based caching heuristics.
	http.ServeContent(w, r, "", time.Time{}, sec)
	return nil
}

// levelRange is one entry of the /levels response: the absolute byte
// range of a level group within the /window/{w} resource, plus its CRC.
type levelRange struct {
	Level  int    `json:"level"`
	Offset int64  `json:"offset"`
	Length int64  `json:"length"`
	CRC    uint32 `json:"crc32"`
}

// handleWindowLevels serves window w's level-offset table as JSON. For
// legacy (slice-major) windows it answers progressive:false with no
// level list, so clients can probe capability without error handling.
func (s *Server) handleWindowLevels(w http.ResponseWriter, r *http.Request, m *mount) error {
	wi, err := s.windowParam(r, m)
	if err != nil {
		return err
	}
	info := m.windows[wi].info
	resp := map[string]any{
		"window":         wi,
		"progressive":    info.Progressive,
		"spatial_levels": info.SpatialLevels,
		"num_slices":     info.NumSlices,
		"dims":           info.Dims.String(),
		"codec":          info.Codec.String(),
	}
	if info.Progressive {
		_, table, payloadStart, err := m.r.WindowLevelTable(wi)
		if err != nil {
			s.noteCorrupt(m, wi, err)
			return err
		}
		ranges := make([]levelRange, len(table.Extents))
		off := payloadStart
		for g, ext := range table.Extents {
			ranges[g] = levelRange{Level: g, Offset: off, Length: ext.Length, CRC: ext.CRC}
			off += ext.Length
		}
		resp["payload_start"] = payloadStart
		resp["size_bytes"] = off
		resp["levels"] = ranges
	}
	return writeJSON(w, resp)
}

// fetchSlice is the handlers' entry into the engine.
func (s *Server) fetchSlice(ctx context.Context, m *mount, t int) (sliceView, float64, cacheState, error) {
	return s.slice(ctx, m, t)
}

// writeField emits a field as raw float32 or JSON, tagging extent, time,
// and cache-state headers. The raw wire format is little-endian float32
// regardless of container precision, so float32 views serialize without
// any widen-then-narrow round trip.
func writeField(w http.ResponseWriter, r *http.Request, v sliceView, tv float64, state cacheState) error {
	w.Header().Set("X-Cache", string(state))
	w.Header().Set("X-STW-Dims", v.dims().String())
	w.Header().Set("X-STW-Time", strconv.FormatFloat(tv, 'g', -1, 64))
	switch format := paramOr(r, "format", "raw"); format {
	case "raw":
		n := v.samples()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(n*4))
		buf := make([]byte, n*4)
		if v.f32 != nil {
			for i, s := range v.f32.Data {
				binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(s))
			}
		} else {
			for i, s := range v.f64.Data {
				binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(s)))
			}
		}
		_, err := w.Write(buf)
		return err
	case "json":
		var data any = nil
		if v.f32 != nil {
			data = v.f32.Data
		} else {
			data = v.f64.Data
		}
		return writeJSON(w, map[string]any{
			"dims": v.dims().String(),
			"time": tv,
			"data": data,
		})
	default:
		return badRequest("format must be raw or json, got %q", format)
	}
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	return enc.Encode(v)
}

// intParam parses an integer query parameter, returning def when absent.
func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, badRequest("parameter %s must be an integer, got %q", name, s)
	}
	return v, nil
}

func paramOr(r *http.Request, name, def string) string {
	if v := r.URL.Query().Get(name); v != "" {
		return v
	}
	return def
}

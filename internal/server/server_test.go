package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"stwave/internal/codec"
	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/storage"
)

// buildContainer writes a container of numSlices slices in windows of
// windowSize and returns its path.
func buildContainer(t testing.TB, d grid.Dims, numSlices, windowSize int) string {
	t.Helper()
	return buildContainerCodec(t, d, numSlices, windowSize, nil)
}

// buildContainerCodec is buildContainer with an explicit coefficient
// backend (nil means the default sparse codec).
func buildContainerCodec(t testing.TB, d grid.Dims, numSlices, windowSize int, cdc codec.Codec) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.stw")
	opts := core.DefaultOptions()
	opts.WindowSize = windowSize
	opts.Ratio = 8
	opts.Codec = cdc
	cw, err := storage.CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := core.NewWriter(opts, d, func(w *core.CompressedWindow) error {
		_, err := cw.Append(w)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for ts := 0; ts < numSlices; ts++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		for i := range f.Data {
			f.Data[i] = math.Sin(float64(i)*0.1 + float64(ts)*0.2)
		}
		if err := writer.WriteSlice(f, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestServer(t testing.TB, cfg Config, d grid.Dims, numSlices, windowSize int) (*Server, *httptest.Server) {
	t.Helper()
	path := buildContainer(t, d, numSlices, windowSize)
	s := New(cfg)
	if err := s.Mount("test", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func get(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestSliceEndpointMatchesDecompression(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	s, ts := newTestServer(t, DefaultConfig(), d, 10, 5)
	_ = s

	resp, body := get(t, ts.URL+"/v1/test/slice?t=7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-STW-Dims"); got != "8x8x8" {
		t.Errorf("X-STW-Dims = %q", got)
	}
	if len(body) != d.Len()*4 {
		t.Fatalf("body %d bytes, want %d", len(body), d.Len()*4)
	}

	// Ground truth: decompress window 1 directly; t=7 is its slice 2.
	r, err := storage.OpenContainer(buildContainerPathFromServer(s))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cw, err := r.ReadWindow(1)
	if err != nil {
		t.Fatal(err)
	}
	win, err := core.Decompress(cw)
	if err != nil {
		t.Fatal(err)
	}
	want := win.Slices[2]
	for i := range want.Data {
		got := math.Float32frombits(binary.LittleEndian.Uint32(body[i*4:]))
		if got != float32(want.Data[i]) {
			t.Fatalf("sample %d: served %g, decompressed %g", i, got, want.Data[i])
		}
	}

	// Second fetch must be a cache hit.
	resp2, _ := get(t, ts.URL+"/v1/test/slice?t=7")
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second fetch X-Cache = %q, want hit", got)
	}
}

// buildContainerPathFromServer digs the mounted path back out for ground
// truthing.
func buildContainerPathFromServer(s *Server) string {
	for _, m := range s.mounts {
		return m.path
	}
	return ""
}

func TestCropPreviewRenderEndpoints(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	_, ts := newTestServer(t, DefaultConfig(), d, 5, 5)

	resp, body := get(t, ts.URL+"/v1/test/crop?t=2&x0=4&y0=4&z0=4&nx=8&ny=8&nz=8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("crop status %d: %s", resp.StatusCode, body)
	}
	if len(body) != 8*8*8*4 {
		t.Errorf("crop body %d bytes, want %d", len(body), 8*8*8*4)
	}
	if got := resp.Header.Get("X-STW-Dims"); got != "8x8x8" {
		t.Errorf("crop X-STW-Dims = %q", got)
	}

	resp, body = get(t, ts.URL+"/v1/test/preview?t=2&levels=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preview status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-STW-Dims"); got != "8x8x8" {
		t.Errorf("preview X-STW-Dims = %q", got)
	}

	resp, body = get(t, ts.URL+"/v1/test/render?t=2&kind=slice&format=pgm")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render status %d: %s", resp.StatusCode, body)
	}
	if len(body) < 2 || body[0] != 'P' || body[1] != '5' {
		t.Errorf("render pgm does not start with P5: %q", body[:min(8, len(body))])
	}

	resp, body = get(t, ts.URL+"/v1/test/render?t=2&kind=mip&axis=y&format=ppm")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mip status %d: %s", resp.StatusCode, body)
	}
	if len(body) < 2 || body[0] != 'P' || body[1] != '6' {
		t.Errorf("render ppm does not start with P6: %q", body[:min(8, len(body))])
	}

	resp, body = get(t, ts.URL+"/v1/test/slice?t=1&format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		Dims string    `json:"dims"`
		Data []float64 `json:"data"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if doc.Dims != "16x16x16" || len(doc.Data) != d.Len() {
		t.Errorf("json dims %q, %d samples", doc.Dims, len(doc.Data))
	}
}

func TestControlEndpoints(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	_, ts := newTestServer(t, DefaultConfig(), d, 10, 5)

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Datasets != 1 {
		t.Errorf("healthz = %+v", health)
	}

	resp, body = get(t, ts.URL+"/v1/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("datasets status %d", resp.StatusCode)
	}
	var list []datasetInfo
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "test" || list[0].Slices != 10 || list[0].Windows != 2 {
		t.Errorf("datasets = %+v", list)
	}

	// Generate one request, then verify /metrics reflects it.
	get(t, ts.URL+"/v1/test/slice?t=0")
	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests < 1 || snap.Decompressions < 1 || snap.BytesServed < int64(d.Len()*4) {
		t.Errorf("metrics = %+v", snap)
	}
	if snap.Cache.Windows < 1 || snap.Cache.UsedBytes <= 0 {
		t.Errorf("cache stats = %+v", snap.Cache)
	}
	if snap.Decompress.Count < 1 {
		t.Errorf("latency histogram empty: %+v", snap.Decompress)
	}
}

func TestErrorStatuses(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	_, ts := newTestServer(t, DefaultConfig(), d, 10, 5)

	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/v1/nosuch/slice?t=0", http.StatusNotFound},
		{"/v1/test/slice?t=999", http.StatusNotFound},
		{"/v1/test/slice?t=-1", http.StatusNotFound},
		{"/v1/test/slice?t=abc", http.StatusBadRequest},
		{"/v1/test/slice?t=0&format=xml", http.StatusBadRequest},
		{"/v1/test/crop?t=0&x0=0&y0=0&z0=0&nx=99&ny=1&nz=1", http.StatusBadRequest},
		{"/v1/test/crop?t=0", http.StatusBadRequest},
		{"/v1/test/preview?t=0&levels=99", http.StatusBadRequest},
		{"/v1/test/render?t=0&kind=volume", http.StatusBadRequest},
	} {
		resp, _ := get(t, ts.URL+tc.url)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
	}
}

func TestSingleflightOneDecompressionForConcurrentRequests(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	s, ts := newTestServer(t, DefaultConfig(), d, 10, 10)

	// N concurrent requests for different slices of the same (uncached)
	// window: exactly one decompression may happen, whether a request
	// coalesced onto the in-flight decompression or arrived late and hit
	// the cache.
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/v1/test/slice?t=%d", ts.URL, i%10))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.metrics.Decompressions.Load(); got != 1 {
		t.Errorf("Decompressions = %d, want exactly 1", got)
	}
	if got := s.metrics.CacheHits.Load() + s.metrics.Coalesced.Load(); got < n-1 {
		t.Errorf("hits+coalesced = %d, want >= %d", got, n-1)
	}
}

// TestConcurrentHammer drives >= 64 concurrent requests across >= 4
// windows and all endpoints; run under -race via `make check`.
func TestConcurrentHammer(t *testing.T) {
	d := grid.Dims{Nx: 12, Ny: 12, Nz: 12}
	cfg := DefaultConfig()
	// Budget of two windows forces concurrent eviction alongside hits.
	cfg.CacheBytes = 2 * int64(d.Len()) * 5 * 8
	s, ts := newTestServer(t, cfg, d, 20, 5) // 4 windows x 5 slices

	paths := []string{
		"/v1/test/slice?t=%d",
		"/v1/test/slice?t=%d&format=json",
		"/v1/test/crop?t=%d&x0=2&y0=2&z0=2&nx=6&ny=6&nz=6",
		"/v1/test/preview?t=%d&levels=1",
		"/v1/test/render?t=%d&kind=mip",
		"/v1/test/render?t=%d&kind=slice&format=ppm",
	}
	const n = 96
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := ts.URL + fmt.Sprintf(paths[i%len(paths)], i%20)
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d", url, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.metrics.Requests.Load(); got != n {
		t.Errorf("Requests = %d, want %d", got, n)
	}
	if s.metrics.Errors.Load() != 0 {
		t.Errorf("Errors = %d", s.metrics.Errors.Load())
	}
}

func TestUncacheableWindowUsesSliceDecode(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	cfg := DefaultConfig()
	cfg.CacheBytes = 0 // nothing ever fits: every request single-slice decodes
	s, ts := newTestServer(t, cfg, d, 10, 5)

	resp, body := get(t, ts.URL+"/v1/test/slice?t=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "uncached" {
		t.Errorf("X-Cache = %q, want uncached", got)
	}
	if s.metrics.SliceDecodes.Load() != 1 || s.metrics.Decompressions.Load() != 0 {
		t.Errorf("SliceDecodes = %d, Decompressions = %d",
			s.metrics.SliceDecodes.Load(), s.metrics.Decompressions.Load())
	}
	if s.cache.Stats().Windows != 0 {
		t.Errorf("cache unexpectedly holds %d windows", s.cache.Stats().Windows)
	}
}

func TestRequestTimeout(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	cfg := DefaultConfig()
	cfg.RequestTimeout = time.Nanosecond
	_, ts := newTestServer(t, cfg, d, 5, 5)

	resp, _ := get(t, ts.URL+"/v1/test/slice?t=0")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want %d", resp.StatusCode, http.StatusGatewayTimeout)
	}
}

func TestMountValidation(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	path := buildContainer(t, d, 5, 5)
	s := New(DefaultConfig())
	defer s.Close()
	if err := s.Mount("a", path); err != nil {
		t.Fatal(err)
	}
	if err := s.Mount("a", path); err == nil {
		t.Error("duplicate mount name must fail")
	}
	if err := s.Mount("", path); err == nil {
		t.Error("empty mount name must fail")
	}
	if err := s.Mount("b", filepath.Join(t.TempDir(), "missing.stw")); err == nil {
		t.Error("missing container must fail")
	}
}

// corruptWindowPayload flips one bit in the middle of window wi's
// payload in the container at path (v3 record-framed layout).
func corruptWindowPayload(t testing.TB, path string, wi int) {
	t.Helper()
	flipInWindow(t, path, wi, -1)
}

// corruptWindowHeader flips the first byte of window wi's payload — the
// serialized window magic — so even the 40-byte header scan fails.
func corruptWindowHeader(t testing.TB, path string, wi int) {
	t.Helper()
	flipInWindow(t, path, wi, 0)
}

func flipInWindow(t testing.TB, path string, wi int, at int64) {
	t.Helper()
	r, err := storage.OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(0)
	for j := 0; j < wi; j++ {
		n, err := r.WindowSizeBytes(j)
		if err != nil {
			t.Fatal(err)
		}
		off += core.RecordHeaderSize + n
	}
	ln, err := r.WindowSizeBytes(wi)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if at < 0 {
		at = ln / 2
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[off+core.RecordHeaderSize+at] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedMount: a container with one CRC-corrupt window mounts in
// degraded mode; its time range answers 410 Gone, every other window
// serves, and the damage shows in /healthz, /metrics, and /v1/datasets.
func TestDegradedMount(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	path := buildContainer(t, d, 12, 4) // windows 0,1,2 of 4 slices
	corruptWindowPayload(t, path, 1)

	cfg := DefaultConfig()
	cfg.Degraded = true
	s := New(cfg)
	if err := s.Mount("test", path); err != nil {
		t.Fatalf("degraded mount: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	// Mount-time verification already found the damage.
	if got := s.Metrics().CorruptWindows.Load(); got != 1 {
		t.Errorf("corrupt_windows after mount = %d, want 1", got)
	}

	// The corrupt window's whole time range is 410 Gone — repeatedly, and
	// without double-counting the metric.
	for _, tt := range []int{4, 5, 6, 7, 5} {
		resp, body := get(t, fmt.Sprintf("%s/v1/test/slice?t=%d", ts.URL, tt))
		if resp.StatusCode != http.StatusGone {
			t.Errorf("t=%d: status %d (%s), want 410", tt, resp.StatusCode, body)
		}
	}
	if got := s.Metrics().CorruptWindows.Load(); got != 1 {
		t.Errorf("corrupt_windows after requests = %d, want 1", got)
	}

	// Every slice in the intact windows still serves.
	for _, tt := range []int{0, 1, 2, 3, 8, 9, 10, 11} {
		resp, body := get(t, fmt.Sprintf("%s/v1/test/slice?t=%d", ts.URL, tt))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("t=%d: status %d (%s), want 200", tt, resp.StatusCode, body)
		}
	}

	// /healthz reports degraded with a per-dataset breakdown.
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status           string         `json:"status"`
		CorruptWindows   int            `json:"corrupt_windows"`
		CorruptByDataset map[string]int `json:"corrupt_by_dataset"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.CorruptWindows != 1 || health.CorruptByDataset["test"] != 1 {
		t.Errorf("healthz = %+v", health)
	}

	// /metrics exposes the counter; /v1/datasets flags the dataset.
	_, body = get(t, ts.URL+"/metrics")
	var snap struct {
		CorruptWindows int64 `json:"corrupt_windows"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.CorruptWindows != 1 {
		t.Errorf("metrics corrupt_windows = %d", snap.CorruptWindows)
	}
	_, body = get(t, ts.URL+"/v1/datasets")
	var infos []struct {
		Name    string `json:"name"`
		Slices  int    `json:"slices"`
		Corrupt int    `json:"corrupt_windows"`
	}
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Corrupt != 1 || infos[0].Slices != 12 {
		t.Errorf("datasets = %+v", infos)
	}
}

// TestNonDegradedDiscoversCorruptionAtRead: without Degraded, payload
// corruption is invisible at mount (headers are intact) but the first
// read answers 410 and flips /healthz to degraded.
func TestNonDegradedDiscoversCorruptionAtRead(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	path := buildContainer(t, d, 8, 4)
	corruptWindowPayload(t, path, 1)

	s := New(DefaultConfig())
	if err := s.Mount("test", path); err != nil {
		t.Fatalf("mount: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	if got := s.Metrics().CorruptWindows.Load(); got != 0 {
		t.Errorf("corrupt_windows before any read = %d", got)
	}
	_, body := get(t, ts.URL+"/healthz")
	if !bytes.Contains(body, []byte(`"status":"ok"`)) && !bytes.Contains(body, []byte(`"status": "ok"`)) {
		t.Errorf("healthz before read: %s", body)
	}

	for i := 0; i < 2; i++ { // second hit takes the isBad fast path
		resp, _ := get(t, ts.URL+"/v1/test/slice?t=6")
		if resp.StatusCode != http.StatusGone {
			t.Errorf("read %d: status %d, want 410", i, resp.StatusCode)
		}
	}
	if got := s.Metrics().CorruptWindows.Load(); got != 1 {
		t.Errorf("corrupt_windows after read = %d, want 1", got)
	}
	resp, _ := get(t, ts.URL+"/v1/test/slice?t=0")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("intact window: status %d", resp.StatusCode)
	}
}

// TestDegradedMountHeaderDamage: a window whose serialized header is
// unreadable keeps its span in the timeline in degraded mode — charged
// at the reference window's slice count — so every later window's global
// time index is unchanged; its own span answers 410 Gone. Without
// Degraded the mount fails outright.
func TestDegradedMountHeaderDamage(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	path := buildContainer(t, d, 8, 4)
	corruptWindowHeader(t, path, 0)

	if err := New(DefaultConfig()).Mount("test", path); err == nil {
		t.Fatal("non-degraded mount of header-damaged container must fail")
	}

	cfg := DefaultConfig()
	cfg.Degraded = true
	s := New(cfg)
	if err := s.Mount("test", path); err != nil {
		t.Fatalf("degraded mount: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	// Window 0's span stays in the timeline (assumed 4 slices, like the
	// reference window): the dataset still spans 8 slices with 1 corrupt.
	_, body := get(t, ts.URL+"/v1/datasets")
	var infos []struct {
		Slices  int `json:"slices"`
		Corrupt int `json:"corrupt_windows"`
	}
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Slices != 8 || infos[0].Corrupt != 1 {
		t.Errorf("datasets = %+v", infos)
	}
	// The damaged span answers 410 Gone; it must NOT silently serve
	// window 1's data shifted into window 0's time range.
	for tt := 0; tt < 4; tt++ {
		resp, _ := get(t, fmt.Sprintf("%s/v1/test/slice?t=%d", ts.URL, tt))
		if resp.StatusCode != http.StatusGone {
			t.Errorf("t=%d: status %d, want 410", tt, resp.StatusCode)
		}
	}
	// Window 1's slices keep their original global indices 4..7.
	for tt := 4; tt < 8; tt++ {
		resp, _ := get(t, fmt.Sprintf("%s/v1/test/slice?t=%d", ts.URL, tt))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("t=%d: status %d, want 200", tt, resp.StatusCode)
		}
	}
	resp, _ := get(t, ts.URL+"/v1/test/slice?t=8")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("past timeline: status %d, want 404", resp.StatusCode)
	}
}

// TestDegradedMountEntropyCodec: the degraded-mount contract holds for
// entropy-coded containers exactly as for sparse ones — a corrupt entropy
// payload answers 410 Gone, intact entropy windows serve, and the dataset
// listing names the codec.
func TestDegradedMountEntropyCodec(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	path := buildContainerCodec(t, d, 12, 4, codec.Entropy())
	corruptWindowPayload(t, path, 1)

	cfg := DefaultConfig()
	cfg.Degraded = true
	s := New(cfg)
	if err := s.Mount("test", path); err != nil {
		t.Fatalf("degraded mount: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	for _, tt := range []int{4, 5, 6, 7} {
		resp, body := get(t, fmt.Sprintf("%s/v1/test/slice?t=%d", ts.URL, tt))
		if resp.StatusCode != http.StatusGone {
			t.Errorf("t=%d: status %d (%s), want 410", tt, resp.StatusCode, body)
		}
	}
	for _, tt := range []int{0, 3, 8, 11} {
		resp, body := get(t, fmt.Sprintf("%s/v1/test/slice?t=%d", ts.URL, tt))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("t=%d: status %d (%s), want 200", tt, resp.StatusCode, body)
		}
	}

	resp, body := get(t, ts.URL+"/v1/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("datasets status %d", resp.StatusCode)
	}
	var infos []struct {
		Codec   string `json:"codec"`
		Corrupt int    `json:"corrupt_windows"`
	}
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Codec != "entropy" || infos[0].Corrupt != 1 {
		t.Errorf("datasets = %+v, want codec entropy with 1 corrupt window", infos)
	}
}

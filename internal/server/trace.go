package server

import (
	"net/http"
	"sync"

	"stwave/internal/obs"
)

// traceRingSize bounds how many recent request traces /debug/traces
// retains. Small on purpose: traces are a debugging aid, not a log.
const traceRingSize = 32

// traceRing is a bounded FIFO of recent request span trees, written by
// the data-request wrapper when Config.TraceRequests is on and served at
// /debug/traces.
type traceRing struct {
	mu    sync.Mutex
	trees []obs.SpanTree
	next  int
	full  bool
}

func newTraceRing(n int) *traceRing {
	return &traceRing{trees: make([]obs.SpanTree, n)}
}

// add records one finished request trace, overwriting the oldest once
// the ring is full.
func (r *traceRing) add(t obs.SpanTree) {
	r.mu.Lock()
	r.trees[r.next] = t
	r.next = (r.next + 1) % len(r.trees)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

// snapshot returns the retained traces, oldest first.
func (r *traceRing) snapshot() []obs.SpanTree {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]obs.SpanTree(nil), r.trees[:r.next]...)
	}
	out := make([]obs.SpanTree, 0, len(r.trees))
	out = append(out, r.trees[r.next:]...)
	out = append(out, r.trees[:r.next]...)
	return out
}

// handleTraces serves the recent request traces as a JSON array, oldest
// first. Empty unless the server was started with request tracing on.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.traces.snapshot())
}

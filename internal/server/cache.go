package server

import (
	"container/list"
	"sync"

	"stwave/internal/grid"
	"stwave/internal/obs"
)

// windowKey identifies one decompressed window across all mounted
// datasets. Partial decodes of the same window at different depths are
// distinct entries: a level-0 preview and the full reconstruction have
// different dims and different costs, and evicting one must not evict
// the other.
type windowKey struct {
	dataset string
	window  int
	// levels is the number of coarse level groups a partial-decode entry
	// holds (maxLevel+1); 0 marks a full-window entry, so existing
	// full-window keys are the zero value.
	levels int
}

// WindowCache is a byte-budgeted LRU cache of decompressed windows. A
// decompressed window is large (a 64^3 x 20-slice window is ~40 MB of
// float64 samples), so the cache is bounded by total bytes rather than
// entry count. Cached windows are shared between requests and MUST be
// treated as read-only by all consumers.
type WindowCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	items  map[windowKey]*list.Element

	// hits/misses are bumped by Get — hit/miss accounting lives here, in
	// the one place every cacheable lookup passes through, so the
	// invariant hits+misses == lookups holds no matter how callers
	// coalesce. Nil counters (tests building a bare cache) are no-ops.
	hits   *obs.Counter
	misses *obs.Counter
}

// cachedWindow is the cache value: a decompressed window at its native
// container precision. Exactly one of the fields is non-nil — float32
// windows are cached as float32, so they cost half the budget and the
// cache holds twice the working set.
type cachedWindow struct {
	w64 *grid.Window
	w32 *grid.Window32
}

// cache64 wraps a double-precision window as a cache value.
func cache64(w *grid.Window) cachedWindow { return cachedWindow{w64: w} }

// cache32 wraps a single-precision window as a cache value.
func cache32(w *grid.Window32) cachedWindow { return cachedWindow{w32: w} }

// bytes is the retained size of the decompressed window at its native
// precision.
func (cw cachedWindow) bytes() int64 {
	if cw.w32 != nil {
		return int64(cw.w32.TotalSamples()) * 4
	}
	return int64(cw.w64.TotalSamples()) * 8
}

// numSlices returns the window's slice count at either precision.
func (cw cachedWindow) numSlices() int {
	if cw.w32 != nil {
		return len(cw.w32.Slices)
	}
	return len(cw.w64.Slices)
}

// timeAt returns the simulation time of local slice i, defaulting to the
// given fallback when the window carries no timeline.
func (cw cachedWindow) timeAt(i int, fallback float64) float64 {
	var times []float64
	if cw.w32 != nil {
		times = cw.w32.Times
	} else {
		times = cw.w64.Times
	}
	if times != nil && i < len(times) {
		return times[i]
	}
	return fallback
}

// slice returns local slice i as a native-precision view.
func (cw cachedWindow) slice(i int) sliceView {
	if cw.w32 != nil {
		return sliceView{f32: cw.w32.Slices[i]}
	}
	return sliceView{f64: cw.w64.Slices[i]}
}

type cacheEntry struct {
	key  windowKey
	w    cachedWindow
	size int64
}

// NewWindowCache creates a cache holding at most budget bytes of
// decompressed samples. A budget <= 0 disables caching: Put is a no-op and
// Get always misses.
func NewWindowCache(budget int64) *WindowCache {
	return &WindowCache{
		budget: budget,
		ll:     list.New(),
		items:  make(map[windowKey]*list.Element),
	}
}

// windowBytes is the retained size of a decompressed float64 window.
func windowBytes(w *grid.Window) int64 {
	return cache64(w).bytes()
}

// Get returns the cached window for key, promoting it to most recently
// used, and counts the lookup as a hit or a miss. Callers re-checking
// the cache for a lookup they already counted (the flight re-check) must
// use peek instead, so each request counts exactly once.
func (c *WindowCache) Get(key windowKey) (cachedWindow, bool) {
	w, ok := c.peek(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return w, ok
}

// peek is Get without the hit/miss accounting.
func (c *WindowCache) peek(key windowKey) (cachedWindow, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return cachedWindow{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).w, true
}

// Put inserts a decompressed window, evicting least-recently-used entries
// until the byte budget holds. A window larger than the whole budget is not
// admitted (admitting it would evict everything for a single entry that
// can never be joined by another).
func (c *WindowCache) Put(key windowKey, w cachedWindow) {
	size := w.bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return
	}
	if el, ok := c.items[key]; ok {
		// Replace in place (same key decompresses to the same bytes, but be
		// defensive about size accounting).
		ent := el.Value.(*cacheEntry)
		c.used += size - ent.size
		ent.w, ent.size = w, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, w: w, size: size})
		c.used += size
	}
	for c.used > c.budget {
		c.evictOldest()
	}
}

// evictOldest removes the LRU entry; callers hold c.mu.
func (c *WindowCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.used -= ent.size
}

// Flush drops every cached window (used by benchmarks to force the cold
// path).
func (c *WindowCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[windowKey]*list.Element)
	c.used = 0
}

// Admits reports whether a window of the given decompressed size can ever
// be cached under the budget.
func (c *WindowCache) Admits(size int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return size <= c.budget
}

// CacheStats is the cache's /metrics view.
type CacheStats struct {
	BudgetBytes int64 `json:"budget_bytes"`
	UsedBytes   int64 `json:"used_bytes"`
	Windows     int   `json:"windows"`
}

// Stats snapshots occupancy.
func (c *WindowCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{BudgetBytes: c.budget, UsedBytes: c.used, Windows: len(c.items)}
}

package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupCoalesces proves the core property deterministically: N
// concurrent Do calls with the same key execute fn exactly once. The fn
// blocks until every caller has joined, so no caller can arrive "late".
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	const n = 16
	var execs atomic.Int64
	release := make(chan struct{})

	var wg sync.WaitGroup
	coalescedCount := atomic.Int64{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, coalesced, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
				execs.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if val.(int) != 42 {
				t.Errorf("val = %v", val)
			}
			if coalesced {
				coalescedCount.Add(1)
			}
		}()
	}
	// Release only once every caller is registered on the in-flight call,
	// so all n provably share one execution.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		waiters := 0
		if c := g.m["k"]; c != nil {
			waiters = c.waiters
		}
		g.mu.Unlock()
		if waiters == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d callers joined the flight", waiters, n)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Errorf("fn executed %d times, want exactly 1", got)
	}
	if got := coalescedCount.Load(); got != n-1 {
		t.Errorf("coalesced = %d, want %d", got, n-1)
	}
}

func TestFlightGroupSequentialCallsRunSeparately(t *testing.T) {
	var g flightGroup
	var execs atomic.Int64
	for i := 0; i < 3; i++ {
		_, coalesced, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
			execs.Add(1)
			return nil, nil
		})
		if err != nil || coalesced {
			t.Fatalf("call %d: coalesced=%v err=%v", i, coalesced, err)
		}
	}
	if execs.Load() != 3 {
		t.Errorf("execs = %d, want 3", execs.Load())
	}
}

func TestFlightGroupPropagatesError(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	_, _, err := g.Do(context.Background(), "k", func(context.Context) (any, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestFlightGroupCallerCancellation(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	// Leader with a background context keeps the work alive.
	go g.Do(context.Background(), "k", func(context.Context) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started

	// A waiter with an expired context must return promptly with ctx.Err
	// while the call keeps running.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, coalesced, err := g.Do(ctx, "k", func(context.Context) (any, error) {
		t.Error("fn must not run twice")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if !coalesced {
		t.Error("waiter should report coalesced")
	}
}

func TestFlightGroupCancelsWorkWhenAllWaitersLeave(t *testing.T) {
	var g flightGroup
	workCancelled := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan struct{})
	go func() {
		defer close(done)
		g.Do(ctx, "k", func(workCtx context.Context) (any, error) {
			<-workCtx.Done()
			close(workCancelled)
			return nil, workCtx.Err()
		})
	}()

	cancel() // sole waiter leaves; the work context must be cancelled
	select {
	case <-workCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("work context never cancelled after all waiters left")
	}
	<-done
}

package server

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"

	"stwave/internal/core"
	"stwave/internal/grid"
	"stwave/internal/storage"
)

// buildContainer32 writes a single-precision container of numSlices slices
// in windows of windowSize and returns its path.
func buildContainer32(t testing.TB, d grid.Dims, numSlices, windowSize int, progressive bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data32.stw")
	opts := core.DefaultOptions()
	opts.WindowSize = windowSize
	opts.Ratio = 8
	opts.Precision = core.Float32
	opts.Progressive = progressive
	cw, err := storage.CreateContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	writer, err := core.NewWriter32(opts, d, func(w *core.CompressedWindow) error {
		_, err := cw.Append(w)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for ts := 0; ts < numSlices; ts++ {
		f := grid.NewField3D32(d.Nx, d.Ny, d.Nz)
		for i := range f.Data {
			f.Data[i] = float32(math.Sin(float64(i)*0.1 + float64(ts)*0.2))
		}
		if err := writer.WriteSlice(f, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestServer32(t testing.TB, cfg Config, d grid.Dims, numSlices, windowSize int, progressive bool) (*Server, *httptest.Server, string) {
	t.Helper()
	path := buildContainer32(t, d, numSlices, windowSize, progressive)
	s := New(cfg)
	if err := s.Mount("t32", path); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, path
}

// TestFloat32SliceServedNatively checks the served raw bytes are exactly
// the float32 samples of the decompressed window — no widen-then-narrow
// round trip can change them, but this pins the end-to-end wire format.
func TestFloat32SliceServedNatively(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	_, ts, path := newTestServer32(t, DefaultConfig(), d, 10, 5, false)

	resp, body := get(t, ts.URL+"/v1/t32/slice?t=7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-STW-Dims"); got != "8x8x8" {
		t.Errorf("X-STW-Dims = %q", got)
	}
	if len(body) != d.Len()*4 {
		t.Fatalf("body %d bytes, want %d", len(body), d.Len()*4)
	}

	r, err := storage.OpenContainer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cw, err := r.ReadWindow(1)
	if err != nil {
		t.Fatal(err)
	}
	if cw.Precision != core.Float32 {
		t.Fatalf("window precision = %v, want Float32", cw.Precision)
	}
	win, err := core.Decompress32(cw)
	if err != nil {
		t.Fatal(err)
	}
	want := win.Slices[2]
	for i := range want.Data {
		got := math.Float32frombits(binary.LittleEndian.Uint32(body[i*4:]))
		if got != want.Data[i] {
			t.Fatalf("sample %d: served %g, decompressed %g", i, got, want.Data[i])
		}
	}

	resp2, _ := get(t, ts.URL+"/v1/t32/slice?t=7")
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second fetch X-Cache = %q, want hit", got)
	}
}

// TestFloat32CropPreviewRenderEndpoints exercises every data endpoint
// against a float32 container: the handlers must crop, coarsen, and
// render at native precision without error.
func TestFloat32CropPreviewRenderEndpoints(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	_, ts, _ := newTestServer32(t, DefaultConfig(), d, 5, 5, false)

	resp, body := get(t, ts.URL+"/v1/t32/crop?t=2&x0=4&y0=4&z0=4&nx=8&ny=8&nz=8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("crop status %d: %s", resp.StatusCode, body)
	}
	if len(body) != 8*8*8*4 {
		t.Errorf("crop body %d bytes, want %d", len(body), 8*8*8*4)
	}

	resp, body = get(t, ts.URL+"/v1/t32/preview?t=2&levels=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preview status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-STW-Dims"); got != "8x8x8" {
		t.Errorf("preview X-STW-Dims = %q", got)
	}

	resp, body = get(t, ts.URL+"/v1/t32/render?t=2&kind=slice&format=pgm")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render status %d: %s", resp.StatusCode, body)
	}
	if len(body) < 2 || body[0] != 'P' || body[1] != '5' {
		t.Errorf("render pgm does not start with P5")
	}

	resp, body = get(t, ts.URL+"/v1/t32/render?t=2&kind=mip&axis=y&format=ppm")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mip status %d: %s", resp.StatusCode, body)
	}
	if len(body) < 2 || body[0] != 'P' || body[1] != '6' {
		t.Errorf("render ppm does not start with P6")
	}

	resp, body = get(t, ts.URL+"/v1/t32/slice?t=1&format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		Dims string    `json:"dims"`
		Data []float64 `json:"data"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if doc.Dims != "16x16x16" || len(doc.Data) != d.Len() {
		t.Errorf("json dims %q, %d samples", doc.Dims, len(doc.Data))
	}
}

// TestFloat32ProgressiveLevelsEndpoint hits the level-bounded read path on
// a progressive float32 container and checks the coarse dims contract.
func TestFloat32ProgressiveLevelsEndpoint(t *testing.T) {
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	_, ts, _ := newTestServer32(t, DefaultConfig(), d, 5, 5, true)

	// levels=0 serves the coarsest band: dims shrink by the full spatial
	// decomposition depth.
	resp, body := get(t, ts.URL+"/v1/t32/slice?t=2&levels=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("levels=0 status %d: %s", resp.StatusCode, body)
	}
	coarse := resp.Header.Get("X-STW-Dims")
	if coarse == "16x16x16" {
		t.Errorf("levels=0 served full-resolution dims %q", coarse)
	}
	if want := len(body); want%4 != 0 {
		t.Errorf("levels=0 body %d bytes not a float32 multiple", want)
	}

	// levels == SpatialLevels reconstructs the full field. Read the depth
	// from the levels endpoint rather than hard-coding it.
	resp, body = get(t, ts.URL+"/v1/t32/window/0/levels")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("levels table status %d: %s", resp.StatusCode, body)
	}
	var tbl struct {
		SpatialLevels int `json:"spatial_levels"`
	}
	if err := json.Unmarshal(body, &tbl); err != nil {
		t.Fatalf("levels table decode: %v", err)
	}
	resp, body = get(t, ts.URL+"/v1/t32/slice?t=2&levels="+strconv.Itoa(tbl.SpatialLevels))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("levels=max status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-STW-Dims"); got != "16x16x16" {
		t.Errorf("levels=max X-STW-Dims = %q, want full resolution", got)
	}
	if len(body) != d.Len()*4 {
		t.Errorf("levels=max body %d bytes, want %d", len(body), d.Len()*4)
	}
}

// TestFloat32UncacheableSliceDecode forces the per-slice decode path (cache
// budget below one window) and checks it serves float32 natively.
func TestFloat32UncacheableSliceDecode(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	cfg := DefaultConfig()
	cfg.CacheBytes = 64 // far below one window
	_, ts, _ := newTestServer32(t, cfg, d, 10, 5, false)

	resp, body := get(t, ts.URL+"/v1/t32/slice?t=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != string(stateUncached) {
		t.Errorf("X-Cache = %q, want %q", got, stateUncached)
	}
	if len(body) != d.Len()*4 {
		t.Errorf("body %d bytes, want %d", len(body), d.Len()*4)
	}
}

// TestDatasetPrecisionCensus mounts one container per precision and checks
// the /v1/datasets listing reports each dataset's sample precision.
func TestDatasetPrecisionCensus(t *testing.T) {
	d := grid.Dims{Nx: 8, Ny: 8, Nz: 8}
	p64 := buildContainer(t, d, 5, 5)
	p32 := buildContainer32(t, d, 5, 5, false)
	s := New(DefaultConfig())
	if err := s.Mount("d64", p64); err != nil {
		t.Fatal(err)
	}
	if err := s.Mount("d32", p32); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	resp, body := get(t, ts.URL+"/v1/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var infos []datasetInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	byName := map[string]datasetInfo{}
	for _, di := range infos {
		byName[di.Name] = di
	}
	if got := byName["d64"].Precision; got != "f64" {
		t.Errorf("d64 precision = %q, want f64", got)
	}
	if got := byName["d32"].Precision; got != "f32" {
		t.Errorf("d32 precision = %q, want f32", got)
	}
}

// TestFloat32CacheChargesHalf pins the cache accounting: a float32 window
// must cost 4 bytes per sample, half its float64 twin.
func TestFloat32CacheChargesHalf(t *testing.T) {
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	w32 := grid.NewWindow32(d)
	w64 := grid.NewWindow(d)
	for i := 0; i < 2; i++ {
		if err := w32.Append(grid.NewField3D32(d.Nx, d.Ny, d.Nz), float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := w64.Append(grid.NewField3D(d.Nx, d.Ny, d.Nz), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	b32, b64 := cache32(w32).bytes(), cache64(w64).bytes()
	if b32*2 != b64 {
		t.Errorf("cache32 bytes = %d, cache64 bytes = %d, want exactly half", b32, b64)
	}
}

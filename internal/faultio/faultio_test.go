package faultio

import (
	"errors"
	"sync"
	"syscall"
	"testing"
)

// memFile is an in-memory Backend for exercising the wrapper without disk.
type memFile struct {
	mu   sync.Mutex
	data []byte
}

func (m *memFile) grow(n int64) {
	if int64(len(m.data)) < n {
		m.data = append(m.data, make([]byte, n-int64(len(m.data)))...)
	}
}

func (m *memFile) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off >= int64(len(m.data)) {
		return 0, errors.New("memfile: read past end")
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, errors.New("memfile: short read")
	}
	return n, nil
}

func (m *memFile) WriteAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.grow(off + int64(len(p)))
	return copy(m.data[off:], p), nil
}

func (m *memFile) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < int64(len(m.data)) {
		m.data = m.data[:size]
	} else {
		m.grow(size)
	}
	return nil
}

func (m *memFile) Sync() error  { return nil }
func (m *memFile) Close() error { return nil }

func TestTransientFailuresDrainInOrder(t *testing.T) {
	f := Wrap(&memFile{})
	f.FailWrites(2)
	buf := []byte("abcd")
	for i := 0; i < 2; i++ {
		if _, err := f.WriteAt(buf, 0); err == nil {
			t.Fatalf("write %d: expected injected failure", i)
		}
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		t.Fatalf("write after faults drained: %v", err)
	}
	_, writes, _ := f.Counts()
	if writes != 3 {
		t.Fatalf("counted %d writes, want 3", writes)
	}
}

func TestTornWritePersistsPrefix(t *testing.T) {
	m := &memFile{}
	f := Wrap(m)
	f.TearAt(2)
	if _, err := f.WriteAt([]byte("abcd"), 0); err == nil {
		t.Fatal("torn write must report an error")
	}
	if got := string(m.data); got != "ab" {
		t.Fatalf("torn write persisted %q, want %q", got, "ab")
	}
	// The tear disarms after firing once.
	if _, err := f.WriteAt([]byte("wxyz"), 0); err != nil {
		t.Fatalf("second write after tear: %v", err)
	}
}

func TestBitFlipCorruptsReads(t *testing.T) {
	m := &memFile{}
	f := Wrap(m)
	if _, err := f.WriteAt([]byte{0x10, 0x20}, 0); err != nil {
		t.Fatal(err)
	}
	f.FlipBitAt(1)
	got := make([]byte, 2)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x10 || got[1] != 0x21 {
		t.Fatalf("read % x, want 10 21", got)
	}
}

// TestFreeSpaceModel pins the ENOSPC contract the ingest backpressure
// matrix builds on: an over-budget write fails whole (nothing persisted),
// the error is ENOSPC and NOT transient (the retry policy must not spin
// on a full disk), and AddFreeSpace un-wedges the next attempt.
func TestFreeSpaceModel(t *testing.T) {
	m := &memFile{}
	f := Wrap(m)
	f.SetFreeSpace(6)
	if _, err := f.WriteAt([]byte("abcd"), 0); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	_, err := f.WriteAt([]byte("wxyz"), 4)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("over-budget write: %v, want ENOSPC", err)
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) && tr.Transient() {
		t.Fatal("ENOSPC must not be transient")
	}
	if got := string(m.data); got != "abcd" {
		t.Fatalf("over-budget write persisted %q, want %q (all-or-nothing)", got, "abcd")
	}
	if left, armed := f.FreeSpace(); !armed || left != 2 {
		t.Fatalf("FreeSpace = %d,%v, want 2,true", left, armed)
	}
	f.AddFreeSpace(2)
	if _, err := f.WriteAt([]byte("wxyz"), 4); err != nil {
		t.Fatalf("write after AddFreeSpace: %v", err)
	}
	if left, _ := f.FreeSpace(); left != 0 {
		t.Fatalf("budget after refill+write = %d, want 0", left)
	}
}

// TestConcurrentFaultInjection drives reads, writes, syncs, and fault
// arming from many goroutines at once. The wrapper documents itself as
// safe for concurrent use; this is the test the race detector runs in
// make check to hold it to that.
func TestConcurrentFaultInjection(t *testing.T) {
	m := &memFile{}
	m.grow(4096)
	f := Wrap(m)

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 32)
			for i := 0; i < iters; i++ {
				off := int64((w*iters + i) % 4064)
				switch i % 5 {
				case 0:
					f.FailReads(1)
				case 1:
					f.FlipBitAt(off)
				case 2:
					// Errors here may be injected by a sibling goroutine;
					// only data races and panics are failures.
					f.WriteAt(buf, off) //stlint:ignore uncheckederr injected failures from sibling goroutines are expected
				case 3:
					f.ReadAt(buf, off) //stlint:ignore uncheckederr injected failures from sibling goroutines are expected
				case 4:
					f.Sync() //stlint:ignore uncheckederr injected failures from sibling goroutines are expected
				}
			}
		}(w)
	}
	wg.Wait()

	reads, writes, syncs := f.Counts()
	want := workers * iters / 5
	if reads < want || writes < want || syncs < want {
		t.Fatalf("counts reads=%d writes=%d syncs=%d; want at least %d each", reads, writes, syncs, want)
	}
}

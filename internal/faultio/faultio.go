// Package faultio wraps a file with scripted I/O faults — short writes,
// torn writes at chosen offsets, bit flips, and transient EIO — so the
// storage layer's crash-safety and retry behaviour can be driven through
// a test matrix instead of waiting for production hardware to fail.
//
// The wrapper implements the ReaderAt/WriterAt/Truncate/Sync/Close
// surface the container code needs, so it drops in wherever an *os.File
// would be used.
package faultio

import (
	"fmt"
	"io"
	"sync"
	"syscall"

	"stwave/internal/obs"
)

// countFault bumps the process-wide injected-fault counter, labelled by
// fault kind. The harness asserts on these to prove an injection actually
// fired, and they separate injected failures from real ones in dumps.
func countFault(kind string) {
	obs.Default().Counter("faultio.injected_faults_total." + kind).Add(1)
}

// Backend is the file surface faultio wraps. *os.File satisfies it.
type Backend interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
}

// transientError marks an injected error as retryable; the storage
// retry policy recognizes it via the Transient() method.
type transientError struct{ op string }

func (e *transientError) Error() string {
	return fmt.Sprintf("faultio: injected transient %s error", e.op)
}
func (e *transientError) Transient() bool { return true }

// permanentError is an injected hard failure (torn or short write).
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return "faultio: " + e.msg }

// File wraps a Backend with fault injection. Configure faults before
// handing the File to the code under test; all methods are safe for
// concurrent use. The zero fault configuration passes every operation
// through untouched.
type File struct {
	mu    sync.Mutex
	inner Backend

	transientReads  int   // fail the next N ReadAt calls with a transient error
	transientWrites int   // fail the next N WriteAt calls with a transient error
	transientSyncs  int   // fail the next N Sync calls with a transient error
	tornAt          int64 // absolute offset: the first write crossing it persists only the bytes below, then fails
	tornArmed       bool
	shortNext       int // next write persists only this many bytes, then fails
	shortArmed      bool
	flipAt          map[int64]struct{} // offsets whose lowest bit flips on every read
	freeSpace       int64              // remaining byte budget while freeArmed
	freeArmed       bool

	reads, writes, syncs int
}

// Wrap returns a File passing through to inner with no faults armed.
func Wrap(inner Backend) *File {
	return &File{inner: inner, flipAt: make(map[int64]struct{})}
}

// FailReads arms n transient read failures.
func (f *File) FailReads(n int) { f.mu.Lock(); f.transientReads = n; f.mu.Unlock() }

// FailWrites arms n transient write failures.
func (f *File) FailWrites(n int) { f.mu.Lock(); f.transientWrites = n; f.mu.Unlock() }

// FailSyncs arms n transient fsync failures.
func (f *File) FailSyncs(n int) { f.mu.Lock(); f.transientSyncs = n; f.mu.Unlock() }

// TearAt arms a torn write: the first write spanning absolute offset off
// persists only the bytes below off and then fails permanently —
// modelling a crash or power loss mid-write.
func (f *File) TearAt(off int64) { f.mu.Lock(); f.tornAt, f.tornArmed = off, true; f.mu.Unlock() }

// ShortWrite arms a short write: the next write persists only the first
// n bytes and then fails permanently.
func (f *File) ShortWrite(n int) { f.mu.Lock(); f.shortNext, f.shortArmed = n, true; f.mu.Unlock() }

// FlipBitAt flips the lowest bit of the byte at absolute offset off on
// every subsequent read covering it — modelling silent media corruption.
func (f *File) FlipBitAt(off int64) { f.mu.Lock(); f.flipAt[off] = struct{}{}; f.mu.Unlock() }

// SetFreeSpace arms the free-space model with a byte budget: every
// successful write consumes its length from the budget (conservatively —
// overwrites at the same offset are charged again), and a write larger
// than the remainder fails whole with ENOSPC, nothing persisted. ENOSPC
// is deliberately NOT marked transient: the retry policy must not spin on
// a full disk — that is a backpressure-policy decision, which is exactly
// what the ingest fault matrix drives through this model. Truncate does
// not refund the budget.
func (f *File) SetFreeSpace(n int64) { f.mu.Lock(); f.freeSpace, f.freeArmed = n, true; f.mu.Unlock() }

// AddFreeSpace grows the armed budget — an operator freeing disk mid-run,
// the event a stalled ingest is waiting for.
func (f *File) AddFreeSpace(n int64) { f.mu.Lock(); f.freeSpace += n; f.mu.Unlock() }

// FreeSpace reports the remaining byte budget (0, false when the model is
// not armed).
func (f *File) FreeSpace() (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.freeSpace, f.freeArmed
}

// Counts returns how many ReadAt, WriteAt, and Sync calls reached the
// wrapper (including ones that were failed).
func (f *File) Counts() (reads, writes, syncs int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads, f.writes, f.syncs
}

// ReadAt implements io.ReaderAt with transient-failure and bit-flip
// injection.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	f.reads++
	if f.transientReads > 0 {
		f.transientReads--
		f.mu.Unlock()
		countFault("transient_read")
		return 0, &transientError{op: "read"}
	}
	f.mu.Unlock()
	n, err := f.inner.ReadAt(p, off)
	f.mu.Lock()
	flipped := false
	for flip := range f.flipAt {
		if flip >= off && flip < off+int64(n) {
			p[flip-off] ^= 0x01
			flipped = true
		}
	}
	f.mu.Unlock()
	if flipped {
		countFault("bit_flip")
	}
	return n, err
}

// WriteAt implements io.WriterAt with transient, torn, and short write
// injection. Torn and short writes persist a prefix of p and return an
// error, exactly as a crash mid-write would leave the file.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	f.writes++
	if f.transientWrites > 0 {
		f.transientWrites--
		f.mu.Unlock()
		countFault("transient_write")
		return 0, &transientError{op: "write"}
	}
	if f.freeArmed && int64(len(p)) > f.freeSpace {
		f.mu.Unlock()
		countFault("enospc")
		return 0, fmt.Errorf("faultio: injected full disk: %w", syscall.ENOSPC)
	}
	if f.freeArmed {
		f.freeSpace -= int64(len(p))
	}
	if f.tornArmed && off < f.tornAt && off+int64(len(p)) > f.tornAt {
		keep := int(f.tornAt - off)
		f.tornArmed = false
		f.mu.Unlock()
		countFault("torn_write")
		n, err := f.inner.WriteAt(p[:keep], off)
		if err != nil {
			return n, err
		}
		return n, &permanentError{msg: fmt.Sprintf("torn write at offset %d", off+int64(keep))}
	}
	if f.shortArmed {
		keep := min(f.shortNext, len(p))
		f.shortArmed = false
		f.mu.Unlock()
		countFault("short_write")
		n, err := f.inner.WriteAt(p[:keep], off)
		if err != nil {
			return n, err
		}
		return n, &permanentError{msg: fmt.Sprintf("short write (%d of %d bytes)", keep, len(p))}
	}
	f.mu.Unlock()
	return f.inner.WriteAt(p, off)
}

// Truncate passes through to the backend.
func (f *File) Truncate(size int64) error { return f.inner.Truncate(size) }

// Sync implements fsync with transient-failure injection.
func (f *File) Sync() error {
	f.mu.Lock()
	f.syncs++
	if f.transientSyncs > 0 {
		f.transientSyncs--
		f.mu.Unlock()
		countFault("transient_sync")
		return &transientError{op: "sync"}
	}
	f.mu.Unlock()
	return f.inner.Sync()
}

// Close passes through to the backend.
func (f *File) Close() error { return f.inner.Close() }

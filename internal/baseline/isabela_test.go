package baseline

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"stwave/internal/grid"
	"stwave/internal/metrics"
)

func TestIsabelaValidation(t *testing.T) {
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	if _, err := CompressIsabela(grid.NewWindow(d), 1024, 30); err == nil {
		t.Error("expected error for empty window")
	}
	w := smoothWindow(d, 2)
	if _, err := CompressIsabela(w, 4, 30); err == nil {
		t.Error("expected error for tiny windowValues")
	}
	if _, err := CompressIsabela(w, 64, 2); err == nil {
		t.Error("expected error for too few knots")
	}
	if _, err := CompressIsabela(w, 64, 128); err == nil {
		t.Error("expected error for knots > windowValues")
	}
}

func TestIsabelaRoundTripAccuracy(t *testing.T) {
	w := smoothWindow(grid.Dims{Nx: 16, Ny: 16, Nz: 16}, 8)
	c, err := CompressIsabela(w, 1024, 30)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := DecompressIsabela(c)
	if err != nil {
		t.Fatal(err)
	}
	ac := metrics.NewAccumulator()
	for i := range w.Slices {
		if err := ac.Add(w.Slices[i].Data, recon.Slices[i].Data); err != nil {
			t.Fatal(err)
		}
	}
	// ISABELA on smooth data achieves low-single-percent NRMSE at its
	// canonical settings.
	if e := ac.NRMSE(); e > 0.03 {
		t.Errorf("NRMSE %g too large for smooth data", e)
	}
}

func TestIsabelaSortMakesNoiseCompressible(t *testing.T) {
	// The defining trick: pure noise, which no predictor or transform can
	// compress, still fits a B-spline well after sorting (the sorted curve
	// is the empirical quantile function — smooth).
	rng := rand.New(rand.NewSource(1))
	w := noisyWindow(rng, grid.Dims{Nx: 16, Ny: 16, Nz: 16}, 4)
	c, err := CompressIsabela(w, 1024, 30)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := DecompressIsabela(c)
	if err != nil {
		t.Fatal(err)
	}
	ac := metrics.NewAccumulator()
	for i := range w.Slices {
		if err := ac.Add(w.Slices[i].Data, recon.Slices[i].Data); err != nil {
			t.Fatal(err)
		}
	}
	if e := ac.NRMSE(); e > 0.02 {
		t.Errorf("NRMSE %g on noise; sorted-spline fit should be accurate", e)
	}
}

func TestIsabelaRatioSaturates(t *testing.T) {
	// The permutation index bounds the ratio: n values cost ~log2(window)
	// bits each regardless of content. At windowValues=1024 that is 10
	// bits/value vs 32 raw — a hard ceiling near 3.2:1 before spline
	// coefficients. Check we land in that regime, not at wavelet-style
	// 32:1.
	w := smoothWindow(grid.Dims{Nx: 24, Ny: 24, Nz: 24}, 6)
	rawBytes := int64(w.TotalSamples()) * 4
	c, err := CompressIsabela(w, 1024, 30)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rawBytes) / float64(c.SizeBytes())
	if ratio < 2 || ratio > 4 {
		t.Errorf("ISABELA ratio %.2f:1 outside the expected 2-4:1 regime", ratio)
	}
}

func TestIsabelaShortFinalWindow(t *testing.T) {
	// Total samples not divisible by windowValues exercises the padded
	// final window.
	w := smoothWindow(grid.Dims{Nx: 7, Ny: 5, Nz: 3}, 3) // 315 samples
	c, err := CompressIsabela(w, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := DecompressIsabela(c)
	if err != nil {
		t.Fatal(err)
	}
	if recon.Len() != 3 || recon.Dims != w.Dims {
		t.Fatalf("reconstructed %d slices of %v", recon.Len(), recon.Dims)
	}
	ac := metrics.NewAccumulator()
	for i := range w.Slices {
		if err := ac.Add(w.Slices[i].Data, recon.Slices[i].Data); err != nil {
			t.Fatal(err)
		}
	}
	if e := ac.NRMSE(); e > 0.05 {
		t.Errorf("short-window NRMSE %g", e)
	}
}

func TestIsabelaRejectsCorruptPermutation(t *testing.T) {
	w := smoothWindow(grid.Dims{Nx: 8, Ny: 8, Nz: 8}, 2)
	c, err := CompressIsabela(w, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	c.Perm = c.Perm[:len(c.Perm)/2]
	if _, err := DecompressIsabela(c); err == nil {
		t.Error("expected error for truncated permutation")
	}
	bad := &IsabelaCompressed{Dims: grid.Dims{}, NumSlices: 1}
	if _, err := DecompressIsabela(bad); err == nil {
		t.Error("expected error for invalid header")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPermBitIO(t *testing.T) {
	var buf bytes.Buffer
	bw := newPermWriter(&buf)
	vals := []uint64{0, 1, 5, 1023, 512, 7}
	for _, v := range vals {
		bw.write(v, 10)
	}
	bw.flush()
	br := newPermReader(bytes.NewReader(buf.Bytes()))
	for i, want := range vals {
		got, err := br.read(10)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("value %d: got %d, want %d", i, got, want)
		}
	}
}

func TestBSplineFitsExactCurves(t *testing.T) {
	// A spline with enough knots reproduces a smooth monotone curve well.
	n := 1000
	samples := make([]float64, n)
	for i := range samples {
		x := float64(i) / float64(n-1)
		samples[i] = x*x*x - 0.5*x // monotone-ish cubic
	}
	coefs := fitUniformBSpline(samples, 30)
	var worst float64
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n-1)
		got := evalUniformBSpline(coefs, x)
		if d := math.Abs(got - samples[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-3 {
		t.Errorf("cubic fit max error %g, want < 1e-3", worst)
	}
}

package baseline

// ISABELA (In-situ Sort-And-B-spline Error-bounded Lossy Abatement,
// Lakshminarasimhan et al., cited by the paper's Section III-B) compresses
// a window of values by sorting them — sorting turns arbitrary data into a
// monotone, extremely smooth curve — fitting a cubic B-spline to that
// curve, and storing the spline coefficients plus the permutation needed to
// undo the sort. The permutation index is the scheme's structural cost:
// N*ceil(log2(N)) bits regardless of data content, which is why ISABELA's
// achievable ratios saturate near 4:1 for float32 data. Reproducing that
// behaviour (not beating it) is the point of this implementation.

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"stwave/internal/fbits"
	"stwave/internal/grid"
)

// IsabelaCompressed is a window compressed with the ISABELA scheme.
type IsabelaCompressed struct {
	Dims      grid.Dims
	NumSlices int
	// WindowValues is the number of values per sort window.
	WindowValues int
	// Knots is the number of B-spline coefficients per window.
	Knots int
	// Splines holds Knots coefficients for each consecutive window.
	Splines []float64
	// Perm is the bit-packed permutation stream.
	Perm []byte
	// total values in the original data (last window may be short).
	total int
}

// SizeBytes returns the honest storage cost: float32 spline coefficients
// plus the packed permutation plus a small header.
func (c *IsabelaCompressed) SizeBytes() int64 {
	return int64(4*len(c.Splines)) + int64(len(c.Perm)) + 48
}

// CompressIsabela compresses the window's samples in sort-windows of
// windowValues values approximated by `knots` cubic B-spline coefficients
// each. Typical settings from the ISABELA paper: windowValues=1024,
// knots=30.
func CompressIsabela(w *grid.Window, windowValues, knots int) (*IsabelaCompressed, error) {
	if w.Len() == 0 {
		return nil, fmt.Errorf("baseline: empty window")
	}
	if windowValues < 8 {
		return nil, fmt.Errorf("baseline: windowValues must be >= 8, got %d", windowValues)
	}
	if knots < 4 || knots > windowValues {
		return nil, fmt.Errorf("baseline: knots must be in [4, windowValues], got %d", knots)
	}
	// Flatten the whole window: ISABELA treats the data as one stream,
	// which also captures temporal coherence (consecutive slices land in
	// nearby windows).
	total := w.TotalSamples()
	values := make([]float64, 0, total)
	for _, s := range w.Slices {
		values = append(values, s.Data...)
	}

	out := &IsabelaCompressed{
		Dims:         w.Dims,
		NumSlices:    w.Len(),
		WindowValues: windowValues,
		Knots:        knots,
		total:        total,
	}
	var permBuf bytes.Buffer
	for start := 0; start < total; start += windowValues {
		end := start + windowValues
		if end > total {
			end = total
		}
		chunk := values[start:end]
		n := len(chunk)
		// Sort with index tracking.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return chunk[idx[a]] < chunk[idx[b]] })
		sorted := make([]float64, n)
		for rank, src := range idx {
			sorted[rank] = chunk[src]
		}
		// Fit the monotone curve with a uniform cubic B-spline via
		// least-squares on a banded normal system (few knots, so a dense
		// solve is fine).
		k := knots
		if k > n {
			k = n
		}
		coefs := fitUniformBSpline(sorted, k)
		out.Splines = append(out.Splines, coefs...)
		if k < knots {
			// Pad short final window so decode indexing stays uniform.
			out.Splines = append(out.Splines, make([]float64, knots-k)...)
		}
		// Permutation: for each original position, its rank in the sorted
		// order (so decode can place spline-evaluated values back).
		rankOf := make([]int, n)
		for rank, src := range idx {
			rankOf[src] = rank
		}
		bits := bitsFor(n)
		bw := newPermWriter(&permBuf)
		for _, r := range rankOf {
			bw.write(uint64(r), bits)
		}
		bw.flush()
	}
	out.Perm = permBuf.Bytes()
	return out, nil
}

// DecompressIsabela reconstructs the window.
func DecompressIsabela(c *IsabelaCompressed) (*grid.Window, error) {
	if !c.Dims.Valid() || c.NumSlices < 1 {
		return nil, fmt.Errorf("baseline: invalid ISABELA header")
	}
	total := c.total
	if total == 0 {
		total = c.Dims.Len() * c.NumSlices
	}
	values := make([]float64, total)
	br := newPermReader(bytes.NewReader(c.Perm))
	windowIdx := 0
	for start := 0; start < total; start += c.WindowValues {
		end := start + c.WindowValues
		if end > total {
			end = total
		}
		n := end - start
		k := c.Knots
		if k > n {
			k = n
		}
		coefs := c.Splines[windowIdx*c.Knots : windowIdx*c.Knots+k]
		windowIdx++
		bits := bitsFor(n)
		for i := 0; i < n; i++ {
			rank, err := br.read(bits)
			if err != nil {
				return nil, fmt.Errorf("baseline: truncated permutation: %w", err)
			}
			if int(rank) >= n {
				return nil, fmt.Errorf("baseline: corrupt permutation rank %d >= %d", rank, n)
			}
			values[start+i] = evalUniformBSpline(coefs, float64(rank)/float64(maxInt(n-1, 1)))
		}
		br.align()
	}
	w := grid.NewWindow(c.Dims)
	per := c.Dims.Len()
	for t := 0; t < c.NumSlices; t++ {
		f := grid.NewField3D(c.Dims.Nx, c.Dims.Ny, c.Dims.Nz)
		copy(f.Data, values[t*per:(t+1)*per])
		if err := w.Append(f, float64(t)); err != nil {
			return nil, err
		}
	}
	return w, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bitsFor returns ceil(log2(n)) with a minimum of 1.
func bitsFor(n int) int {
	bits := 1
	for (1 << bits) < n {
		bits++
	}
	return bits
}

// --- cubic B-spline fitting ---------------------------------------------

// bsplineBasis evaluates the k cubic B-spline basis functions at parameter
// t in [0,1] over a uniform knot vector with clamped ends, returning the
// (at most 4) nonzero basis values and the index of the first one.
func bsplineBasis(k int, t float64) (first int, vals [4]float64) {
	if k <= 4 {
		// Degenerate: fall back to linear interpolation between control
		// points (uniform weights over all k).
		// Treat as piecewise-linear basis over k points.
		x := t * float64(k-1)
		i := int(x)
		if i >= k-1 {
			i = k - 2
		}
		if i < 0 {
			i = 0
		}
		f := x - float64(i)
		vals[0] = 1 - f
		vals[1] = f
		return i, vals
	}
	segs := k - 3 // number of cubic segments
	x := t * float64(segs)
	seg := int(x)
	if seg >= segs {
		seg = segs - 1
	}
	u := x - float64(seg)
	// Uniform cubic B-spline segment basis.
	u2 := u * u
	u3 := u2 * u
	vals[0] = (1 - 3*u + 3*u2 - u3) / 6
	vals[1] = (4 - 6*u2 + 3*u3) / 6
	vals[2] = (1 + 3*u + 3*u2 - 3*u3) / 6
	vals[3] = u3 / 6
	return seg, vals
}

// fitUniformBSpline least-squares-fits k control points to the samples
// (parameterized uniformly over [0,1]) and returns the control points.
func fitUniformBSpline(samples []float64, k int) []float64 {
	n := len(samples)
	if k >= n {
		out := make([]float64, k)
		copy(out, samples)
		return out
	}
	// Normal equations A^T A c = A^T y with banded A (4 nonzeros per row).
	ata := make([]float64, k*k)
	aty := make([]float64, k)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		first, vals := bsplineBasis(k, t)
		for a := 0; a < 4; a++ {
			ia := first + a
			if ia >= k || fbits.Zero(vals[a]) {
				continue
			}
			aty[ia] += vals[a] * samples[i]
			for b := 0; b < 4; b++ {
				ib := first + b
				if ib >= k || fbits.Zero(vals[b]) {
					continue
				}
				ata[ia*k+ib] += vals[a] * vals[b]
			}
		}
	}
	// Tiny ridge term keeps the system well-posed when some basis gets no
	// samples (very short windows).
	for i := 0; i < k; i++ {
		ata[i*k+i] += 1e-12
	}
	return solveSPD(ata, aty, k)
}

// evalUniformBSpline evaluates the fitted curve at t in [0,1].
func evalUniformBSpline(coefs []float64, t float64) float64 {
	k := len(coefs)
	if k == 1 {
		return coefs[0]
	}
	first, vals := bsplineBasis(k, t)
	var v float64
	for a := 0; a < 4; a++ {
		i := first + a
		if i < k {
			v += vals[a] * coefs[i]
		}
	}
	return v
}

// solveSPD solves the symmetric positive definite system via Cholesky.
func solveSPD(a []float64, b []float64, n int) []float64 {
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for p := 0; p < j; p++ {
				sum -= l[i*n+p] * l[j*n+p]
			}
			if i == j {
				if sum <= 0 {
					sum = 1e-300
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for p := 0; p < i; p++ {
			sum -= l[i*n+p] * y[p]
		}
		y[i] = sum / l[i*n+i]
	}
	// Back substitution L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for p := i + 1; p < n; p++ {
			sum -= l[p*n+i] * x[p]
		}
		x[i] = sum / l[i*n+i]
	}
	return x
}

// --- bit-packed permutation I/O -----------------------------------------

type permWriter struct {
	w    *bytes.Buffer
	cur  uint64
	nCur int
}

func newPermWriter(w *bytes.Buffer) *permWriter { return &permWriter{w: w} }

func (p *permWriter) write(v uint64, bits int) {
	for b := bits - 1; b >= 0; b-- {
		p.cur = p.cur<<1 | (v>>uint(b))&1
		p.nCur++
		if p.nCur == 8 {
			p.w.WriteByte(byte(p.cur))
			p.cur, p.nCur = 0, 0
		}
	}
}

func (p *permWriter) flush() {
	if p.nCur > 0 {
		p.w.WriteByte(byte(p.cur << (8 - p.nCur)))
		p.cur, p.nCur = 0, 0
	}
}

type permReader struct {
	r    *bytes.Reader
	cur  byte
	nCur int
}

func newPermReader(r *bytes.Reader) *permReader { return &permReader{r: r} }

func (p *permReader) read(bits int) (uint64, error) {
	var v uint64
	for i := 0; i < bits; i++ {
		if p.nCur == 0 {
			b, err := p.r.ReadByte()
			if err != nil {
				return 0, err
			}
			p.cur, p.nCur = b, 8
		}
		v = v<<1 | uint64(p.cur>>7)
		p.cur <<= 1
		p.nCur--
	}
	return v, nil
}

// align discards any partial byte (windows are byte-aligned on write).
func (p *permReader) align() { p.cur, p.nCur = 0, 0 }

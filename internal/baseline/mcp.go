package baseline

// Motion-compensated prediction (MCP) — the video-compression family the
// paper's Section III-B discusses as a candidate for temporal scientific
// compression. Each slice is divided into cubic blocks; every block
// searches a small neighborhood of the previous *reconstructed* slice for
// the best-matching displaced block (sum of absolute differences), stores
// the 3D motion vector, and quantizes the prediction residual with an
// absolute error bound. The first slice is intra-coded (zero predictor).
//
// On Eulerian simulation data features genuinely translate through the
// grid, so MCP's premise holds better than in natural video; the paper
// notes it is "not well understood" how its blockiness interacts with
// scientific analyses. This implementation makes such comparisons possible.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"stwave/internal/grid"
)

// MCPOptions configures the codec.
type MCPOptions struct {
	// ErrorBound is the guaranteed point-wise absolute error (> 0).
	ErrorBound float64
	// BlockSize is the cubic block edge (>= 2).
	BlockSize int
	// SearchRadius is the per-axis motion search range in cells (>= 0;
	// 0 disables motion search, degenerating to temporal delta coding).
	SearchRadius int
}

// DefaultMCPOptions returns video-codec-like settings scaled to simulation
// grids.
func DefaultMCPOptions(errorBound float64) MCPOptions {
	return MCPOptions{ErrorBound: errorBound, BlockSize: 4, SearchRadius: 2}
}

// MCPCompressed is a window compressed with motion-compensated prediction.
type MCPCompressed struct {
	Dims      grid.Dims
	NumSlices int
	Opts      MCPOptions
	// Motion holds one packed vector per (slice>=1, block): three int8
	// offsets. Intra slice 0 has no vectors.
	Motion []int8
	// Payload is the varint-encoded quantized residual stream.
	Payload []byte
}

// SizeBytes reports the storage cost: motion vectors + residuals + header.
func (c *MCPCompressed) SizeBytes() int64 {
	return int64(len(c.Motion)) + int64(len(c.Payload)) + 40
}

// CompressMCP encodes the window.
func CompressMCP(w *grid.Window, opts MCPOptions) (*MCPCompressed, error) {
	if w.Len() == 0 {
		return nil, fmt.Errorf("baseline: empty window")
	}
	if opts.ErrorBound <= 0 || math.IsNaN(opts.ErrorBound) {
		return nil, fmt.Errorf("baseline: error bound must be positive, got %g", opts.ErrorBound)
	}
	if opts.BlockSize < 2 {
		return nil, fmt.Errorf("baseline: block size must be >= 2, got %d", opts.BlockSize)
	}
	if opts.SearchRadius < 0 || opts.SearchRadius > 127 {
		return nil, fmt.Errorf("baseline: search radius must be in [0,127], got %d", opts.SearchRadius)
	}
	d := w.Dims
	c := &MCPCompressed{Dims: d, NumSlices: w.Len(), Opts: opts}
	bin := 2 * opts.ErrorBound
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte

	prevRecon := make([]float64, d.Len())
	curRecon := make([]float64, d.Len())

	for t := 0; t < w.Len(); t++ {
		src := w.Slices[t].Data
		forEachBlock(d, opts.BlockSize, func(bx, by, bz, ex, ey, ez int) {
			var mx, my, mz int
			if t > 0 && opts.SearchRadius > 0 {
				mx, my, mz = bestMotion(src, prevRecon, d, bx, by, bz, ex, ey, ez, opts.SearchRadius)
			}
			if t > 0 {
				c.Motion = append(c.Motion, int8(mx), int8(my), int8(mz))
			}
			for z := bz; z < ez; z++ {
				for y := by; y < ey; y++ {
					for x := bx; x < ex; x++ {
						idx := (z*d.Ny+y)*d.Nx + x
						var pred float64
						if t > 0 {
							pred = prevRecon[clampIdx(d, x+mx, y+my, z+mz)]
						}
						q := int64(math.Round((src[idx] - pred) / bin))
						curRecon[idx] = pred + float64(q)*bin
						n := binary.PutUvarint(tmp[:], zigzag(q))
						buf.Write(tmp[:n])
					}
				}
			}
		})
		prevRecon, curRecon = curRecon, prevRecon
	}
	c.Payload = buf.Bytes()
	return c, nil
}

// DecompressMCP reconstructs the window; every sample is within
// Opts.ErrorBound of the original.
func DecompressMCP(c *MCPCompressed) (*grid.Window, error) {
	if !c.Dims.Valid() || c.NumSlices < 1 {
		return nil, fmt.Errorf("baseline: invalid MCP header")
	}
	d := c.Dims
	bin := 2 * c.Opts.ErrorBound
	w := grid.NewWindow(d)
	r := bytes.NewReader(c.Payload)
	prev := make([]float64, d.Len())
	motionPos := 0
	for t := 0; t < c.NumSlices; t++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		var blockErr error
		forEachBlock(d, c.Opts.BlockSize, func(bx, by, bz, ex, ey, ez int) {
			if blockErr != nil {
				return
			}
			var mx, my, mz int
			if t > 0 {
				if motionPos+3 > len(c.Motion) {
					blockErr = fmt.Errorf("baseline: truncated motion stream")
					return
				}
				mx = int(c.Motion[motionPos])
				my = int(c.Motion[motionPos+1])
				mz = int(c.Motion[motionPos+2])
				motionPos += 3
			}
			for z := bz; z < ez; z++ {
				for y := by; y < ey; y++ {
					for x := bx; x < ex; x++ {
						idx := (z*d.Ny+y)*d.Nx + x
						uq, err := binary.ReadUvarint(r)
						if err != nil {
							blockErr = fmt.Errorf("baseline: truncated MCP payload: %w", err)
							return
						}
						var pred float64
						if t > 0 {
							pred = prev[clampIdx(d, x+mx, y+my, z+mz)]
						}
						f.Data[idx] = pred + float64(unzigzag(uq))*bin
					}
				}
			}
		})
		if blockErr != nil {
			return nil, blockErr
		}
		if err := w.Append(f, float64(t)); err != nil {
			return nil, err
		}
		copy(prev, f.Data)
	}
	return w, nil
}

// forEachBlock visits the grid in block raster order.
func forEachBlock(d grid.Dims, bs int, fn func(bx, by, bz, ex, ey, ez int)) {
	for bz := 0; bz < d.Nz; bz += bs {
		ez := bz + bs
		if ez > d.Nz {
			ez = d.Nz
		}
		for by := 0; by < d.Ny; by += bs {
			ey := by + bs
			if ey > d.Ny {
				ey = d.Ny
			}
			for bx := 0; bx < d.Nx; bx += bs {
				ex := bx + bs
				if ex > d.Nx {
					ex = d.Nx
				}
				fn(bx, by, bz, ex, ey, ez)
			}
		}
	}
}

// clampIdx maps possibly out-of-range coordinates to the nearest in-range
// linear index.
func clampIdx(d grid.Dims, x, y, z int) int {
	if x < 0 {
		x = 0
	} else if x >= d.Nx {
		x = d.Nx - 1
	}
	if y < 0 {
		y = 0
	} else if y >= d.Ny {
		y = d.Ny - 1
	}
	if z < 0 {
		z = 0
	} else if z >= d.Nz {
		z = d.Nz - 1
	}
	return (z*d.Ny+y)*d.Nx + x
}

// bestMotion exhaustively searches the (2R+1)^3 neighborhood for the offset
// minimizing the block SAD against the previous reconstruction.
func bestMotion(src, prev []float64, d grid.Dims, bx, by, bz, ex, ey, ez, radius int) (mx, my, mz int) {
	best := math.Inf(1)
	for dz := -radius; dz <= radius; dz++ {
		for dy := -radius; dy <= radius; dy++ {
			for dx := -radius; dx <= radius; dx++ {
				var sad float64
				for z := bz; z < ez && sad < best; z++ {
					for y := by; y < ey; y++ {
						for x := bx; x < ex; x++ {
							idx := (z*d.Ny+y)*d.Nx + x
							sad += math.Abs(src[idx] - prev[clampIdx(d, x+dx, y+dy, z+dz)])
						}
					}
				}
				if sad < best {
					best = sad
					mx, my, mz = dx, dy, dz
				}
			}
		}
	}
	return mx, my, mz
}

// Package baseline implements an error-bounded Lorenzo-predictor compressor
// — the spatiotemporal prediction scheme of Ibarria et al. that the paper's
// related work (Section III-B) positions against wavelet compression, and
// the core of SZ-style scientific compressors. It serves as an independent
// comparison point for the wavelet codec: prediction + quantization instead
// of transform + thresholding.
//
// The Lorenzo predictor estimates each sample from its already-processed
// neighbors by inclusion-exclusion over the corners of the unit cube
// (3D, 7 terms) or tesseract (4D, 15 terms). Residuals are uniformly
// quantized with bin width 2*ErrorBound — which guarantees every
// reconstructed sample is within ErrorBound of the original — and stored as
// zigzag varints. Prediction always runs on *reconstructed* values so the
// decoder stays bit-synchronized with the encoder.
package baseline

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"stwave/internal/grid"
)

// Compressed holds an error-bounded compressed window.
type Compressed struct {
	Dims grid.Dims
	// NumSlices is the temporal extent.
	NumSlices int
	// ErrorBound is the guaranteed point-wise absolute error.
	ErrorBound float64
	// FourD records whether the time dimension participated in prediction.
	FourD bool
	// Payload is the varint-encoded quantized residual stream.
	Payload []byte
}

// SizeBytes returns the compressed payload size plus a fixed header
// estimate, for comparisons against the wavelet codec's sizes.
func (c *Compressed) SizeBytes() int64 { return int64(len(c.Payload)) + 32 }

// Compress encodes a window with the Lorenzo predictor. fourD enables
// prediction across the time dimension (the spatiotemporal variant);
// otherwise each slice is predicted independently (the spatial baseline).
// errorBound must be positive.
func Compress(w *grid.Window, errorBound float64, fourD bool) (*Compressed, error) {
	if w.Len() == 0 {
		return nil, fmt.Errorf("baseline: empty window")
	}
	if errorBound <= 0 || math.IsNaN(errorBound) {
		return nil, fmt.Errorf("baseline: error bound must be positive, got %g", errorBound)
	}
	d := w.Dims
	nt := w.Len()
	recon := make([][]float64, nt)
	for t := range recon {
		recon[t] = make([]float64, d.Len())
	}
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	bin := 2 * errorBound

	for t := 0; t < nt; t++ {
		src := w.Slices[t].Data
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 0; x < d.Nx; x++ {
					idx := (z*d.Ny+y)*d.Nx + x
					pred := predict(recon, d, t, x, y, z, fourD)
					q := int64(math.Round((src[idx] - pred) / bin))
					recon[t][idx] = pred + float64(q)*bin
					n := binary.PutUvarint(tmp[:], zigzag(q))
					buf.Write(tmp[:n])
				}
			}
		}
	}
	return &Compressed{
		Dims:       d,
		NumSlices:  nt,
		ErrorBound: errorBound,
		FourD:      fourD,
		Payload:    buf.Bytes(),
	}, nil
}

// Decompress reconstructs the window. Every sample is within ErrorBound of
// the original.
func Decompress(c *Compressed) (*grid.Window, error) {
	if !c.Dims.Valid() || c.NumSlices < 1 {
		return nil, fmt.Errorf("baseline: invalid compressed header")
	}
	d := c.Dims
	w := grid.NewWindow(d)
	recon := make([][]float64, c.NumSlices)
	r := bytes.NewReader(c.Payload)
	bin := 2 * c.ErrorBound
	for t := 0; t < c.NumSlices; t++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		recon[t] = f.Data
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 0; x < d.Nx; x++ {
					idx := (z*d.Ny+y)*d.Nx + x
					uq, err := binary.ReadUvarint(r)
					if err != nil {
						return nil, fmt.Errorf("baseline: truncated payload at slice %d sample %d: %w", t, idx, err)
					}
					pred := predict(recon, d, t, x, y, z, c.FourD)
					f.Data[idx] = pred + float64(unzigzag(uq))*bin
				}
			}
		}
		if err := w.Append(f, float64(t)); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// predict evaluates the Lorenzo predictor at (t, x, y, z) over the
// reconstructed values. Out-of-range neighbors contribute zero, which makes
// the first sample of each row/plane/slice effectively delta-coded.
func predict(recon [][]float64, d grid.Dims, t, x, y, z int, fourD bool) float64 {
	at := func(tt, xx, yy, zz int) float64 {
		if tt < 0 || xx < 0 || yy < 0 || zz < 0 {
			return 0
		}
		return recon[tt][(zz*d.Ny+yy)*d.Nx+xx]
	}
	// 3D Lorenzo over the spatial cube at time t.
	p := at(t, x-1, y, z) + at(t, x, y-1, z) + at(t, x, y, z-1) -
		at(t, x-1, y-1, z) - at(t, x-1, y, z-1) - at(t, x, y-1, z-1) +
		at(t, x-1, y-1, z-1)
	if !fourD || t == 0 {
		return p
	}
	// 4D extension: inclusion-exclusion over the tesseract corner adds the
	// previous slice's cube with alternating signs.
	q := at(t-1, x, y, z) -
		at(t-1, x-1, y, z) - at(t-1, x, y-1, z) - at(t-1, x, y, z-1) +
		at(t-1, x-1, y-1, z) + at(t-1, x-1, y, z-1) + at(t-1, x, y-1, z-1) -
		at(t-1, x-1, y-1, z-1)
	return p + q
}

func zigzag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

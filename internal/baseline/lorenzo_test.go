package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stwave/internal/grid"
)

func smoothWindow(d grid.Dims, slices int) *grid.Window {
	w := grid.NewWindow(d)
	for t := 0; t < slices; t++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		tt := float64(t) * 0.1
		for z := 0; z < d.Nz; z++ {
			for y := 0; y < d.Ny; y++ {
				for x := 0; x < d.Nx; x++ {
					fx := float64(x) / float64(d.Nx)
					fy := float64(y) / float64(d.Ny)
					fz := float64(z) / float64(d.Nz)
					f.Set(x, y, z, math.Sin(2*math.Pi*(fx+tt))*math.Cos(2*math.Pi*fy)+fz)
				}
			}
		}
		if err := w.Append(f, float64(t)); err != nil {
			panic(err)
		}
	}
	return w
}

func noisyWindow(rng *rand.Rand, d grid.Dims, slices int) *grid.Window {
	w := grid.NewWindow(d)
	for t := 0; t < slices; t++ {
		f := grid.NewField3D(d.Nx, d.Ny, d.Nz)
		for i := range f.Data {
			f.Data[i] = rng.NormFloat64()
		}
		if err := w.Append(f, float64(t)); err != nil {
			panic(err)
		}
	}
	return w
}

func TestCompressValidation(t *testing.T) {
	d := grid.Dims{Nx: 4, Ny: 4, Nz: 4}
	if _, err := Compress(grid.NewWindow(d), 0.1, false); err == nil {
		t.Error("expected error for empty window")
	}
	w := smoothWindow(d, 2)
	if _, err := Compress(w, 0, false); err == nil {
		t.Error("expected error for zero bound")
	}
	if _, err := Compress(w, math.NaN(), false); err == nil {
		t.Error("expected error for NaN bound")
	}
}

func TestErrorBoundGuaranteed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, fourD := range []bool{false, true} {
		for _, eps := range []float64{0.1, 0.01, 0.001} {
			w := noisyWindow(rng, grid.Dims{Nx: 7, Ny: 6, Nz: 5}, 6)
			c, err := Compress(w, eps, fourD)
			if err != nil {
				t.Fatal(err)
			}
			recon, err := Decompress(c)
			if err != nil {
				t.Fatal(err)
			}
			for ti := range w.Slices {
				for i := range w.Slices[ti].Data {
					diff := math.Abs(w.Slices[ti].Data[i] - recon.Slices[ti].Data[i])
					if diff > eps*(1+1e-12) {
						t.Fatalf("fourD=%v eps=%g: error %g exceeds bound at slice %d sample %d",
							fourD, eps, diff, ti, i)
					}
				}
			}
		}
	}
}

func TestSmoothDataCompressesWell(t *testing.T) {
	w := smoothWindow(grid.Dims{Nx: 24, Ny: 24, Nz: 24}, 10)
	rawBytes := int64(w.TotalSamples()) * 8
	c, err := Compress(w, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(rawBytes) / float64(c.SizeBytes()); ratio < 4 {
		t.Errorf("smooth data compressed only %.1f:1, expected > 4:1", ratio)
	}
}

func Test4DPredictionHelpsOnCoherentData(t *testing.T) {
	// Slices that are near-copies of each other: the 4D predictor should
	// produce a smaller stream than per-slice 3D prediction.
	d := grid.Dims{Nx: 16, Ny: 16, Nz: 16}
	rng := rand.New(rand.NewSource(2))
	base := grid.NewField3D(d.Nx, d.Ny, d.Nz)
	for i := range base.Data {
		base.Data[i] = rng.NormFloat64()
	}
	w := grid.NewWindow(d)
	for t := 0; t < 8; t++ {
		f := base.Clone()
		for i := range f.Data {
			f.Data[i] += 0.001 * float64(t)
		}
		if err := w.Append(f, float64(t)); err != nil {
			panic(err)
		}
	}
	c3, err := Compress(w, 1e-4, false)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := Compress(w, 1e-4, true)
	if err != nil {
		t.Fatal(err)
	}
	if c4.SizeBytes() >= c3.SizeBytes() {
		t.Errorf("4D Lorenzo %d bytes not below 3D %d on temporally coherent data",
			c4.SizeBytes(), c3.SizeBytes())
	}
}

func TestTighterBoundCostsMore(t *testing.T) {
	w := smoothWindow(grid.Dims{Nx: 12, Ny: 12, Nz: 12}, 6)
	var prev int64 = -1
	for _, eps := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
		c, err := Compress(w, eps, true)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && c.SizeBytes() < prev {
			t.Errorf("eps=%g: size %d below looser bound's %d", eps, c.SizeBytes(), prev)
		}
		prev = c.SizeBytes()
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	w := smoothWindow(grid.Dims{Nx: 6, Ny: 6, Nz: 6}, 3)
	c, err := Compress(w, 1e-3, true)
	if err != nil {
		t.Fatal(err)
	}
	c.Payload = c.Payload[:len(c.Payload)/2]
	if _, err := Decompress(c); err == nil {
		t.Error("expected error for truncated payload")
	}
	bad := &Compressed{Dims: grid.Dims{}, NumSlices: 1}
	if _, err := Decompress(bad); err == nil {
		t.Error("expected error for invalid dims")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip %d -> %d", v, got)
		}
	}
}

// Property: round trip respects the bound for arbitrary data and settings.
func TestQuickErrorBound(t *testing.T) {
	prop := func(seed int64, fourD bool, epsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		eps := float64(epsRaw%50+1) / 1000
		w := noisyWindow(rng, grid.Dims{Nx: 5, Ny: 4, Nz: 3}, 4)
		c, err := Compress(w, eps, fourD)
		if err != nil {
			return false
		}
		recon, err := Decompress(c)
		if err != nil {
			return false
		}
		for ti := range w.Slices {
			for i := range w.Slices[ti].Data {
				if math.Abs(w.Slices[ti].Data[i]-recon.Slices[ti].Data[i]) > eps*(1+1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLorenzoCompress(b *testing.B) {
	w := smoothWindow(grid.Dims{Nx: 32, Ny: 32, Nz: 32}, 10)
	b.SetBytes(int64(w.TotalSamples()) * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(w, 1e-3, true); err != nil {
			b.Fatal(err)
		}
	}
}
